open Numeric

type t = Xoshiro256.t

let create seed = Xoshiro256.create (Int64.of_int seed)

(* One full 64-bit avalanche: a SplitMix64 step from the given word.
   Shared by [split] and [of_path] to derive seeding keys. *)
let mix64 z = fst (Splitmix64.next (Splitmix64.create z))

let split t =
  (* Seed the child from a fresh SplitMix64 expansion of two parent
     draws.  The former copy+jump scheme was broken for repeated
     splitting: the jump polynomial is linear over the state and
     commutes with single-stepping, so child k+1 was exactly child k
     advanced by one draw — maximally correlated sibling streams. *)
  let a = Xoshiro256.next_int64 t in
  let b = Xoshiro256.next_int64 t in
  Xoshiro256.create (mix64 (Int64.logxor a (mix64 b)))

let of_path seed path =
  let absorb key c = mix64 (Int64.logxor key (mix64 (Int64.of_int c))) in
  Xoshiro256.create (List.fold_left absorb (mix64 (Int64.of_int seed)) path)

let bits64 = Xoshiro256.next_int64

(* 61 uniform bits: [2^61] still fits in OCaml's 63-bit int, so the
   rejection limit below stays positive. *)
let bits61 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 3)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] below 2^61. *)
  let limit = (1 lsl 61) - ((1 lsl 61) mod bound) in
  let rec draw () =
    let v = bits61 t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  (* Intended float boundary: the uniform [0,1) draw itself. *)
  float_of_int mantissa *. 0x1.0p-53 (* lint: allow R2 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t = function
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let rational t ~den_bound =
  let d = int_in t 1 den_bound in
  Rational.of_ints (int_in t 0 d) d

let positive_rational t ~num_bound ~den_bound =
  Rational.of_ints (int_in t 1 num_bound) (int_in t 1 den_bound)

let simplex t ~dim ~grain =
  if dim <= 0 then invalid_arg "Rng.simplex: dim must be positive";
  if grain <= 0 then invalid_arg "Rng.simplex: grain must be positive";
  (* Stars and bars: choose dim-1 cut points with repetition in
     [0, grain], sort, take successive differences. *)
  let cuts = Array.init (dim - 1) (fun _ -> int_in t 0 grain) in
  Array.sort Int.compare cuts;
  Array.init dim (fun i ->
      let lo = if i = 0 then 0 else cuts.(i - 1) in
      let hi = if i = dim - 1 then grain else cuts.(i) in
      Rational.of_ints (hi - lo) grain)

let positive_simplex t ~dim ~grain =
  if grain < dim then invalid_arg "Rng.positive_simplex: grain must be >= dim";
  (* Give every coordinate one unit, distribute the rest freely. *)
  let rest = simplex t ~dim ~grain in
  let unit = Rational.of_ints 1 grain in
  let scale = Rational.of_ints (grain - dim) grain in
  Array.map (fun q -> Rational.add unit (Rational.mul scale q)) rest
