(** Deterministic random source for experiments.

    Wraps {!Xoshiro256} with the derived draws the experiment harness
    needs: bounded integers without modulo bias, unit floats, shuffles,
    choices and bounded-denominator rationals.  Every experiment in this
    repository threads an explicit [Rng.t] so that all reported numbers
    are reproducible from a seed. *)

type t

val create : int -> t

(** [split t] derives a generator statistically independent of [t],
    seeded from a SplitMix64 expansion of two draws from [t] ([t] is
    advanced by those two draws).  Successive splits yield mutually
    unrelated streams — in particular, sibling streams are not shifted
    copies of one another, which the earlier copy+jump scheme did not
    guarantee (the jump polynomial commutes with single-stepping). *)
val split : t -> t

(** [of_path seed path] is the generator at address [path] in a tree of
    streams rooted at [seed]: every coordinate is absorbed through a
    SplitMix64 avalanche, so [of_path seed [c; i]] for distinct [(c, i)]
    give statistically independent streams.  Purely functional — the
    same [(seed, path)] always yields the same stream.  This is the
    sharding primitive of the experiment engine: task [i] of cell [c]
    draws from [of_path seed [c; i]] no matter which domain runs it. *)
val of_path : int -> int list -> t

(** [bits64 t] is 64 uniform bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [0, bound); rejection-sampled so it has
    no modulo bias. @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument when [lo > hi]. *)
val int_in : t -> int -> int -> int

(** [float t] is uniform in [0, 1) with 53 random bits. *)
val float : t -> float

val bool : t -> bool

(** [pick t arr] is a uniformly chosen element.
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a

(** [pick_list t xs]. @raise Invalid_argument on an empty list. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [rational t ~den_bound] is a uniform rational [k/d] with
    [d] uniform in [1, den_bound] and [k] uniform in [0, d]. *)
val rational : t -> den_bound:int -> Numeric.Rational.t

(** [positive_rational t ~num_bound ~den_bound] is [k/d] with
    [k] in [1, num_bound] and [d] in [1, den_bound]. *)
val positive_rational : t -> num_bound:int -> den_bound:int -> Numeric.Rational.t

(** [simplex t ~dim ~grain] is an exact probability vector of dimension
    [dim] whose entries are multiples of [1/grain]: [dim - 1] uniform
    cut points in [0, grain] are sorted and differenced (entries may be
    zero).  The law is not exactly uniform over compositions — it is a
    simple, well-spread generator for test beliefs, not a statistical
    primitive.
    @raise Invalid_argument when [dim <= 0] or [grain <= 0]. *)
val simplex : t -> dim:int -> grain:int -> Numeric.Qvec.t

(** [positive_simplex t ~dim ~grain] is like {!simplex} but every entry
    is strictly positive. Requires [grain >= dim]. *)
val positive_simplex : t -> dim:int -> grain:int -> Numeric.Qvec.t
