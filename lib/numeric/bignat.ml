(* Little-endian arrays of 30-bit limbs, no leading-zero limb.  All limb
   arithmetic stays within the native 63-bit [int]: a limb product is at
   most (2^30-1)^2 < 2^60, leaving room for carries. *)

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero n = Array.length n = 0
let is_one n = Array.length n = 1 && n.(0) = 1

let assert_well_formed ~ctx (n : t) =
  let len = Array.length n in
  if len > 0 && n.(len - 1) = 0 then
    Sanitize.fail (ctx ^ ": Bignat with a high zero limb");
  for i = 0 to len - 1 do
    if n.(i) < 0 || n.(i) >= base then
      Sanitize.fail (Printf.sprintf "%s: Bignat limb %d = %d outside [0, 2^30)" ctx i n.(i))
  done

let guard ctx n = if !Sanitize.enabled then assert_well_formed ~ctx n
let checked ctx n = guard ctx n; n

let unsafe_of_limbs a : t = Array.copy a

(* Drop leading (high-order) zero limbs so representations are canonical. *)
let normalize (a : int array) : t =
  let len = ref (Array.length a) in
  while !len > 0 && a.(!len - 1) = 0 do decr len done;
  checked "Bignat.normalize" (if !len = Array.length a then a else Array.sub a 0 !len)

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative argument"
  else if n = 0 then zero
  else begin
    let rec count_limbs acc v = if v = 0 then acc else count_limbs (acc + 1) (v lsr base_bits) in
    let len = count_limbs 0 n in
    let a = Array.make len 0 in
    let v = ref n in
    for i = 0 to len - 1 do
      a.(i) <- !v land limb_mask;
      v := !v lsr base_bits
    done;
    checked "Bignat.of_int" a
  end

let to_int_opt n =
  (* max_int occupies 63 bits = 2 full limbs + 3 bits of a third. *)
  if Array.length n > 3 then None
  else begin
    let rec fold i acc =
      if i < 0 then Some acc
      else if acc > (max_int - n.(i)) / base then None
      else fold (i - 1) ((acc lsl base_bits) lor n.(i))
    in
    if Array.length n = 3 && n.(2) >= 8 then None
    else fold (Array.length n - 1) 0
  end

let to_int_exn n =
  match to_int_opt n with
  | Some i -> i
  | None -> failwith "Bignat.to_int_exn: value exceeds native int range"

(* Structural equality on the canonical limb arrays IS numerical
   equality; int-array contents keep the comparison monomorphic. *)
let equal (a : t) (b : t) =
  guard "Bignat.equal" a;
  guard "Bignat.equal" b;
  Array.length a = Array.length b
  &&
  let rec eq i = i < 0 || (a.(i) = b.(i) && eq (i - 1)) in
  eq (Array.length a - 1)

let compare (a : t) (b : t) =
  guard "Bignat.compare" a;
  guard "Bignat.compare" b;
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec cmp i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else cmp (i - 1)
    in
    cmp (la - 1)
  end

(* FNV-1a folded over the canonical little-endian limbs.  Hashing the
   limb list explicitly (rather than [Hashtbl.hash] on the raw array)
   keeps the hash a function of the mathematical value alone and
   independent of [Hashtbl.hash]'s traversal limits, which silently
   truncate large structures. *)
let hash (n : t) =
  guard "Bignat.hash" n;
  let h = ref 0x811C9DC5 in
  for i = 0 to Array.length n - 1 do
    h := (!h lxor n.(i)) * 0x01000193
  done;
  (!h lxor Array.length n) land max_int

let add (a : t) (b : t) : t =
  guard "Bignat.add" a;
  guard "Bignat.add" b;
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  normalize r

let sub (a : t) (b : t) : t =
  guard "Bignat.sub" a;
  guard "Bignat.sub" b;
  if compare a b < 0 then invalid_arg "Bignat.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  normalize r

let succ n = add n one
let pred n = sub n one

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land limb_mask;
        carry := cur lsr base_bits
      done;
      r.(i + lb) <- !carry
    done;
    normalize r
  end

(* [shift_limbs n k] is n * base^k. *)
let shift_limbs (n : t) k : t =
  if is_zero n || k = 0 then (if k = 0 then n else n)
  else begin
    let len = Array.length n in
    let r = Array.make (len + k) 0 in
    Array.blit n 0 r k len;
    r
  end

(* Below ~500 limbs the cache-friendly schoolbook loop wins; the
   crossover was measured with the ablation bench in bench/main.ml. *)
let karatsuba_threshold = 512

let rec mul (a : t) (b : t) : t =
  guard "Bignat.mul" a;
  guard "Bignat.mul" b;
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    (* Karatsuba: split both operands at [half] limbs.
       a = a1*B + a0, b = b1*B + b0 with B = base^half;
       a*b = a1*b1*B^2 + ((a0+a1)(b0+b1) - a1*b1 - a0*b0)*B + a0*b0. *)
    let half = max la lb / 2 in
    let split (x : t) =
      let lx = Array.length x in
      if lx <= half then (x, zero)
      else (normalize (Array.sub x 0 half), Array.sub x half (lx - half))
    in
    let a0, a1 = split a and b0, b1 = split b in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add (shift_limbs z2 (2 * half)) (shift_limbs z1 half)) z0
  end

let num_limbs (n : t) = Array.length n

let num_bits (n : t) =
  let len = Array.length n in
  if len = 0 then 0
  else begin
    let top = n.(len - 1) in
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    ((len - 1) * base_bits) + bits 0 top
  end

(* 29-bit mantissa bracket: for n > 0, [approx n] is [(mant, e)] with
   [2^28 <= mant < 2^29] and [mant·2^e <= n < (mant+1)·2^e] (the
   exponent may be negative for small values; callers only ever use
   exponent differences).  O(1): only the top two limbs contribute, and
   the truncated low limbs are absorbed by the half-open bracket. *)
(* Branch-tree bit length for a positive native value: six halving
   steps instead of one iteration per bit, because [approx] sits on the
   comparison hot path. *)
let bits_native v =
  let n = ref 0 and v = ref v in
  if !v >= 1 lsl 32 then begin v := !v lsr 32; n := !n + 32 end;
  if !v >= 1 lsl 16 then begin v := !v lsr 16; n := !n + 16 end;
  if !v >= 1 lsl 8 then begin v := !v lsr 8; n := !n + 8 end;
  if !v >= 1 lsl 4 then begin v := !v lsr 4; n := !n + 4 end;
  if !v >= 1 lsl 2 then begin v := !v lsr 2; n := !n + 2 end;
  if !v >= 2 then begin v := !v lsr 1; n := !n + 1 end;
  !n + !v

let approx (n : t) =
  let len = Array.length n in
  if len = 0 then invalid_arg "Bignat.approx: zero";
  let v, base =
    if len = 1 then (n.(0), 0)
    else ((n.(len - 1) lsl base_bits) lor n.(len - 2), (len - 2) * base_bits)
  in
  let bv = bits_native v in
  let e = base + bv - 29 in
  if bv >= 29 then (v lsr (bv - 29), e) else (v lsl (29 - bv), e)

let shift_left (n : t) k =
  if k < 0 then invalid_arg "Bignat.shift_left: negative shift";
  if is_zero n || k = 0 then n
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let len = Array.length n in
    let r = Array.make (len + limbs + 1) 0 in
    for i = 0 to len - 1 do
      let v = n.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    normalize r
  end

let shift_right (n : t) k =
  if k < 0 then invalid_arg "Bignat.shift_right: negative shift";
  if is_zero n || k = 0 then n
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let len = Array.length n in
    if limbs >= len then zero
    else begin
      let rlen = len - limbs in
      let r = Array.make rlen 0 in
      for i = 0 to rlen - 1 do
        let lo = n.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < len then (n.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask else 0 in
        r.(i) <- if bits = 0 then n.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb, most-significant first. *)
let divmod_small (a : t) (d : int) : t * t =
  let len = Array.length a in
  let q = Array.make len 0 in
  let r = ref 0 in
  for i = len - 1 downto 0 do
    let acc = (!r lsl base_bits) lor a.(i) in
    q.(i) <- acc / d;
    r := acc mod d
  done;
  (normalize q, of_int !r)

(* Knuth algorithm D for a multi-limb divisor. *)
let divmod_knuth (a : t) (b : t) : t * t =
  let n = Array.length b in
  (* Normalise: shift so the divisor's top limb has its high bit set. *)
  let rec top_bits acc v = if v = 0 then acc else top_bits (acc + 1) (v lsr 1) in
  let s = base_bits - top_bits 0 b.(n - 1) in
  let v = shift_left b s in
  let ua = shift_left a s in
  let ulen = Array.length ua in
  let u = Array.make (ulen + 1) 0 in
  Array.blit ua 0 u 0 ulen;
  let m = Array.length u - n - 1 in
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) and vsnd = v.(n - 2) in
  for j = m downto 0 do
    (* Estimate the quotient digit from the top limbs. *)
    let num2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (num2 / vtop) and rhat = ref (num2 mod vtop) in
    let continue = ref true in
    while !continue
          && (!qhat >= base
              || !qhat * vsnd > (!rhat lsl base_bits) lor u.(j + n - 2)) do
      decr qhat;
      rhat := !rhat + vtop;
      if !rhat >= base then continue := false
    done;
    (* Multiply and subtract: u[j .. j+n] -= qhat * v. *)
    let carry = ref 0 and borrowed = ref false in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      let t = u.(j + i) - (p land limb_mask) in
      if t < 0 then begin
        u.(j + i) <- t + base;
        carry := (p lsr base_bits) + 1
      end else begin
        u.(j + i) <- t;
        carry := p lsr base_bits
      end
    done;
    let t = u.(j + n) - !carry in
    if t < 0 then begin u.(j + n) <- t + base; borrowed := true end
    else u.(j + n) <- t;
    if !borrowed then begin
      (* The estimate was one too large; add the divisor back. *)
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let sum = u.(j + i) + v.(i) + !c in
        u.(j + i) <- sum land limb_mask;
        c := sum lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land limb_mask
    end;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  (normalize q, shift_right r s)

let divmod (a : t) (b : t) : t * t =
  guard "Bignat.divmod" a;
  guard "Bignat.divmod" b;
  if is_zero b then raise Division_by_zero
  else if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_small a b.(0)
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Binary GCD on non-negative native ints: no division, and the whole
   loop runs in registers.  This is the workhorse of the small-value
   fast path — every [Rational] normalisation on native-sized operands
   lands here. *)
let gcd_int a b =
  if a < 0 || b < 0 then invalid_arg "Bignat.gcd_int: negative argument";
  if a = 0 then b
  else if b = 0 then a
  else begin
    let a = ref a and b = ref b in
    let shift = ref 0 in
    while (!a lor !b) land 1 = 0 do
      a := !a lsr 1;
      b := !b lsr 1;
      incr shift
    done;
    while !a land 1 = 0 do a := !a lsr 1 done;
    let continue = ref true in
    while !continue do
      while !b land 1 = 0 do b := !b lsr 1 done;
      if !a > !b then begin
        let t = !a in
        a := !b;
        b := t
      end;
      b := !b - !a;
      if !b = 0 then continue := false
    done;
    !a lsl !shift
  end

(* Euclid on limb arrays, dropping to the native binary GCD as soon as
   both operands fit in an int (after one reduction step they almost
   always do). *)
let rec gcd a b =
  guard "Bignat.gcd" a;
  guard "Bignat.gcd" b;
  match to_int_opt a, to_int_opt b with
  | Some x, Some y -> of_int (gcd_int x y)
  | _ -> if is_zero b then a else gcd b (rem a b)

let pow b e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let decimal_chunk = 1_000_000_000 (* 10^9 < 2^30: fits in one limb *)

let to_string (n : t) =
  if is_zero n then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc n =
      if is_zero n then acc
      else begin
        let q, r = divmod_small n decimal_chunk in
        chunks (to_int_exn r :: acc) q
      end
    in
    match chunks [] n with
    | [] -> assert false
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let digits = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c >= '0' && c <= '9' then Buffer.add_char digits c
      else if c <> '_' then invalid_arg (Printf.sprintf "Bignat.of_string: %S" s))
    s;
  let d = Buffer.contents digits in
  if d = "" then invalid_arg (Printf.sprintf "Bignat.of_string: %S" s);
  let len = String.length d in
  let acc = ref zero in
  let pos = ref 0 in
  while !pos < len do
    let take = min 9 (len - !pos) in
    let chunk = int_of_string (String.sub d !pos take) in
    acc := add (mul !acc (pow (of_int 10) take)) (of_int chunk);
    pos := !pos + take
  done;
  !acc

let pp fmt n = Format.pp_print_string fmt (to_string n)

(* Intended float boundary: the one lossy exit from the exact tower. *)
let to_float (n : t) =
  Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) n 0.0 (* lint: allow R2 *)
