(** Small exact vectors of rationals.

    These are thin wrappers over [Rational.t array] used for belief
    distributions, traffic vectors and probability rows.  Operations
    are exact; nothing here is performance-critical. *)

type t = Rational.t array

val make : int -> Rational.t -> t
val init : int -> (int -> Rational.t) -> t
val of_list : Rational.t list -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : Rational.t -> t -> t

(** [dot a b]. @raise Invalid_argument on dimension mismatch. *)
val dot : t -> t -> Rational.t

val sum : t -> Rational.t
val equal : t -> t -> bool

(** [hash v] composes {!Rational.hash} entrywise, so [equal a b]
    implies [hash a = hash b]; never falls back to [Hashtbl.hash]. *)
val hash : t -> int

(** [min_index v] is the least index attaining the minimum value.
    @raise Invalid_argument on the empty vector. *)
val min_index : t -> int

(** [max_index v] is the least index attaining the maximum value.
    @raise Invalid_argument on the empty vector. *)
val max_index : t -> int

(** [is_distribution v] holds when all entries are in [0, 1] and they
    sum to exactly 1. *)
val is_distribution : t -> bool

(** [is_positive_distribution v] additionally requires all entries > 0. *)
val is_positive_distribution : t -> bool

val pp : Format.formatter -> t -> unit
