type t = { num : Bigint.t; den : Bigint.t }
(* Invariant: den > 0 and gcd(|num|, den) = 1. *)

let assert_well_formed ~ctx q =
  Bigint.assert_well_formed ~ctx q.num;
  Bigint.assert_well_formed ~ctx q.den;
  if Bigint.sign q.den <= 0 then Sanitize.fail (ctx ^ ": Rational denominator not positive");
  if not (Bigint.equal (Bigint.gcd q.num q.den) Bigint.one) then
    Sanitize.fail (ctx ^ ": Rational not in lowest terms")

let guard ctx q = if !Sanitize.enabled then assert_well_formed ~ctx q
let checked ctx q = guard ctx q; q

let unsafe_of_parts num den = { num; den }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    checked "Rational.make" { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)
let of_int n = { num = Bigint.of_int n; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let half = of_ints 1 2
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

(* Intended float boundary: the one lossy exit from the exact tower. *)
let to_float q = Bigint.to_float q.num /. Bigint.to_float q.den (* lint: allow R2 *)

let of_float_dyadic f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float_dyadic: not finite" (* lint: allow R2 *);
  let mantissa, exponent = Float.frexp f in (* lint: allow R2 *)
  (* mantissa * 2^53 is integral for every finite float. *)
  let scaled = Int64.to_int (Int64.of_float (Float.ldexp mantissa 53)) in (* lint: allow R2 *)
  let num = Bigint.of_int scaled in
  let e = exponent - 53 in
  if e >= 0 then make (Bigint.mul num (Bigint.pow (Bigint.of_int 2) e)) Bigint.one
  else make num (Bigint.pow (Bigint.of_int 2) (-e))

let is_zero q = Bigint.is_zero q.num
let is_integer q = Bigint.equal q.den Bigint.one
let sign q = Bigint.sign q.num

let equal a b =
  guard "Rational.equal" a;
  guard "Rational.equal" b;
  Bigint.equal a.num b.num && Bigint.equal a.den b.den

(* Interval filter for the cross products |na·db| vs |nb·da|: each
   factor's 29-bit mantissa bracket (Bigint.approx) bounds the product
   inside [m·m', (m+1)(m'+1)) · 2^E with mantissa products below 2^58,
   so after aligning exponents (a difference of three or more decides
   outright; smaller shifts keep everything under 2^61) the comparison
   is a few native shifts — no Bigint.mul, no allocation.  Returns the
   comparison of the magnitudes, or 0 when the intervals overlap (which
   for reduced operands essentially means the products are equal). *)
let cross_magnitude_filter na da nb db =
  let man, ean = Bigint.approx na and mad, ead = Bigint.approx da in
  let mbn, ebn = Bigint.approx nb and mbd, ebd = Bigint.approx db in
  let lo_a = man * mbd and hi_a = (man + 1) * (mbd + 1) in
  let lo_b = mbn * mad and hi_b = (mbn + 1) * (mad + 1) in
  let ea = ean + ebd and eb = ebn + ead in
  if ea >= eb then begin
    let s = ea - eb in
    if s >= 3 then 1
    else if lo_a lsl s >= hi_b then 1
    else if hi_a lsl s <= lo_b then -1
    else 0
  end
  else begin
    let s = eb - ea in
    if s >= 3 then -1
    else if lo_b lsl s >= hi_a then -1
    else if hi_b lsl s <= lo_a then 1
    else 0
  end

(* [cross_compare na da nb db] is the sign of na/da - nb/db for
   positive denominators, with no lowest-terms assumption (the fused
   sum comparison feeds unreduced fractions through here).  Exits in
   order of cost: signs, shared denominator, shared numerator, native
   cross products, the O(1) limb-size filter, the mantissa interval
   filter, and only then the exact cross multiply — with the
   denominators' common factor cancelled first so the products are as
   small as the inputs allow. *)
let cross_compare na da nb db =
  let sa = Bigint.sign na and sb = Bigint.sign nb in
  if sa <> sb then Int.compare sa sb
  else if sa = 0 then 0
  else if Bigint.equal da db then Bigint.compare na nb
  else if Bigint.equal na nb then
    (* Same (nonzero) numerator: the smaller denominator wins the
       magnitude, and the sign flips the answer. *)
    if sa > 0 then Bigint.compare db da else Bigint.compare da db
  else if
    Bigint.is_native na && Bigint.is_native da && Bigint.is_native nb && Bigint.is_native db
  then Bigint.compare (Bigint.mul na db) (Bigint.mul nb da)
  else begin
    (* For |x| of limb size w, 2^(30(w-1)) <= |x| < 2^(30w): when one
       cross product's limb size is at least two below the other's, the
       smaller product cannot reach the larger's lower bound.  Limb
       sizes are O(1), so the filter costs nothing when it fails. *)
    let wa = Bigint.size na + Bigint.size db in
    let wb = Bigint.size nb + Bigint.size da in
    if wa + 1 < wb then -sa
    else if wb + 1 < wa then sa
    else begin
      let f = cross_magnitude_filter na da nb db in
      if f <> 0 then sa * f
      else begin
        let g = Bigint.gcd da db in
        if Bigint.equal g Bigint.one then
          Bigint.compare (Bigint.mul na db) (Bigint.mul nb da)
        else Bigint.compare (Bigint.mul na (Bigint.div db g)) (Bigint.mul nb (Bigint.div da g))
      end
    end
  end

let compare_unguarded a b = cross_compare a.num a.den b.num b.den

let compare a b =
  guard "Rational.compare" a;
  guard "Rational.compare" b;
  compare_unguarded a b

(* [compare_sum a b c] decides a + b ⋚ c without materialising the sum:
   the unreduced numerator/denominator of a + b feed the same staged
   cross comparison [compare] uses, skipping the gcd normalisation and
   rational allocation of [add].  This is the Nash-inequality kernel —
   "load + weight ⋚ latency·capacity" is exactly this shape. *)
let compare_sum a b c =
  guard "Rational.compare_sum" a;
  guard "Rational.compare_sum" b;
  guard "Rational.compare_sum" c;
  if Bigint.is_zero a.num then cross_compare b.num b.den c.num c.den
  else if Bigint.is_zero b.num then cross_compare a.num a.den c.num c.den
  else if Bigint.equal a.den b.den then
    cross_compare (Bigint.add a.num b.num) a.den c.num c.den
  else
    cross_compare
      (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
      (Bigint.mul a.den b.den) c.num c.den

(* Composed from [Bigint.hash] on the canonical (num, den) pair, so the
   law [equal a b => hash a = hash b] holds across the small/big
   representation split of the underlying integers. *)
let hash q = (Bigint.hash q.num * 31) + Bigint.hash q.den

let neg q = { q with num = Bigint.neg q.num }
let abs q = { q with num = Bigint.abs q.num }

let inv q =
  if is_zero q then raise Division_by_zero;
  if Bigint.sign q.num > 0 then { num = q.den; den = q.num }
  else { num = Bigint.neg q.den; den = Bigint.neg q.num }

(* [div_g x g] with the unit-gcd division skipped: inputs stay in
   lowest terms throughout, so g is very often 1. *)
let div_g x g = if Bigint.equal g Bigint.one then x else Bigint.div x g

(* Knuth 4.5.1: with both inputs in lowest terms, only the gcd of the
   denominators (and one follow-up gcd) is needed, and when the
   denominators are coprime — in particular equal to each other's 1 —
   the result is already reduced.  The common same-denominator case
   costs one add and one gcd against the shared denominator. *)
let add a b =
  guard "Rational.add" a;
  guard "Rational.add" b;
  if Bigint.is_zero a.num then b
  else if Bigint.is_zero b.num then a
  else if Bigint.equal a.den b.den then begin
    let n = Bigint.add a.num b.num in
    if Bigint.is_zero n then zero
    else begin
      let g = Bigint.gcd n a.den in
      { num = div_g n g; den = div_g a.den g }
    end
  end
  else begin
    let g1 = Bigint.gcd a.den b.den in
    if Bigint.equal g1 Bigint.one then
      {
        num = Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den);
        den = Bigint.mul a.den b.den;
      }
    else begin
      let da = Bigint.div a.den g1 and db = Bigint.div b.den g1 in
      let t = Bigint.add (Bigint.mul a.num db) (Bigint.mul b.num da) in
      if Bigint.is_zero t then zero
      else begin
        let g2 = Bigint.gcd t g1 in
        { num = div_g t g2; den = Bigint.mul da (div_g b.den g2) }
      end
    end
  end

let sub a b = add a (neg b)

(* Cross-gcd multiplication: cancel num against the opposite den before
   multiplying, after which the product is already in lowest terms. *)
let mul a b =
  guard "Rational.mul" a;
  guard "Rational.mul" b;
  if Bigint.is_zero a.num || Bigint.is_zero b.num then zero
  else begin
    let g1 = Bigint.gcd a.num b.den and g2 = Bigint.gcd b.num a.den in
    {
      num = Bigint.mul (div_g a.num g1) (div_g b.num g2);
      den = Bigint.mul (div_g a.den g2) (div_g b.den g1);
    }
  end

let div a b = mul a (inv b)

(** [sub_mul a b c] is [a - b*c] with the frequent zero factors of
    elimination inner loops short-circuited before any allocation. *)
let sub_mul a b c =
  if Bigint.is_zero b.num || Bigint.is_zero c.num then a else sub a (mul b c)

(* Each operand is validated exactly once at the entry point; the
   underlying comparison runs unguarded so chained min/max folds do not
   pay the sanitizer twice per element. *)
let min a b =
  guard "Rational.min" a;
  guard "Rational.min" b;
  if compare_unguarded a b <= 0 then a else b

let max a b =
  guard "Rational.max" a;
  guard "Rational.max" b;
  if compare_unguarded a b >= 0 then a else b

let sum qs = List.fold_left add zero qs
let sum_array qs = Array.fold_left add zero qs

let mean = function
  | [] -> invalid_arg "Rational.mean: empty list"
  | qs -> div (sum qs) (of_int (List.length qs))

let floor q =
  let quot, rem = Bigint.divmod q.num q.den in
  if Bigint.is_zero rem || Bigint.sign q.num >= 0 then of_bigint quot
  else of_bigint (Bigint.sub quot Bigint.one)

let ceil q = neg (floor (neg q))

let of_string s =
  let s = String.trim s in
  if String.equal s "" then invalid_arg "Rational.of_string: empty string";
  match String.index_opt s '/' with
  | Some i ->
    let n = Bigint.of_string (String.sub s 0 i) in
    let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let whole = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if String.equal frac "" then invalid_arg (Printf.sprintf "Rational.of_string: %S" s);
       let negative = String.length whole > 0 && Char.equal whole.[0] '-' in
       let whole_part =
         if String.equal whole "" || String.equal whole "-" || String.equal whole "+"
         then Bigint.zero
         else Bigint.abs (Bigint.of_string whole)
       in
       let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
       let frac_part = Bigint.of_string frac in
       let total = Bigint.add (Bigint.mul whole_part scale) frac_part in
       let q = make total scale in
       if negative then neg q else q)

let to_string q =
  if is_integer q then Bigint.to_string q.num
  else Bigint.to_string q.num ^ "/" ^ Bigint.to_string q.den

let to_decimal_string q ~digits =
  if digits < 0 then invalid_arg "Rational.to_decimal_string: negative digit count";
  let num = Bigint.abs_nat q.num and den = Bigint.abs_nat q.den in
  let whole, rem = Bignat.divmod num den in
  let sign = if Bigint.sign q.num < 0 then "-" else "" in
  if digits = 0 then sign ^ Bignat.to_string whole
  else begin
    (* Scale the remainder by 10^digits and divide once more. *)
    let scaled = Bignat.mul rem (Bignat.pow (Bignat.of_int 10) digits) in
    let frac, _ = Bignat.divmod scaled den in
    let frac_str = Bignat.to_string frac in
    let padded = String.make (digits - String.length frac_str) '0' ^ frac_str in
    sign ^ Bignat.to_string whole ^ "." ^ padded
  end

let pp fmt q = Format.pp_print_string fmt (to_string q)

(* Infix aliases, defined last so the rest of the module keeps the
   standard operators in scope. *)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal

(* The comparison operators guard each operand once and then run the
   unguarded comparison — same entry-point validation as [compare],
   without stacking a second guard pass per chained use. *)
let ( < ) a b =
  guard "Rational.(<)" a;
  guard "Rational.(<)" b;
  compare_unguarded a b < 0

let ( <= ) a b =
  guard "Rational.(<=)" a;
  guard "Rational.(<=)" b;
  compare_unguarded a b <= 0

let ( > ) a b =
  guard "Rational.(>)" a;
  guard "Rational.(>)" b;
  compare_unguarded a b > 0

let ( >= ) a b =
  guard "Rational.(>=)" a;
  guard "Rational.(>=)" b;
  compare_unguarded a b >= 0
