(** Debug-build normal-form sanitizer gate.

    When {!enabled} is true, the numeric tower asserts its
    representation invariants (canonical limb arrays, the
    [Small]/[Big] split, reduced rationals with positive denominators)
    at construction and operation boundaries, raising {!Violation} on
    the first malformed value it sees.  The flag initialises from the
    [SELFISH_SANITIZE] environment variable ([1]/[true]/[yes]) so CI
    can run the whole test suite as a sanitizer pass; tests may also
    set it directly.  With the flag off the checks cost one ref read
    and branch per guarded operation. *)

exception Violation of string

(** Mutable so tests can enable checking locally; initialised from the
    [SELFISH_SANITIZE] environment variable. *)
val enabled : bool ref

(** [fail msg] raises {!Violation} with a [SELFISH_SANITIZE:] prefix. *)
val fail : string -> 'a
