type t = { data : Rational.t array array } (* rectangular, rows of equal length *)

let make rows cols q =
  if rows <= 0 || cols <= 0 then invalid_arg "Qmat.make: dimensions must be positive";
  { data = Array.init rows (fun _ -> Array.make cols q) }

let init rows cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Qmat.init: dimensions must be positive";
  { data = Array.init rows (fun i -> Array.init cols (f i)) }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Qmat.of_arrays: no rows";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Qmat.of_arrays: empty rows";
  Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Qmat.of_arrays: ragged rows") a;
  { data = Array.map Array.copy a }

let identity n =
  init n n (fun i j -> if i = j then Rational.one else Rational.zero)

let rows m = Array.length m.data
let cols m = Array.length m.data.(0)
let get m i j = m.data.(i).(j)
let set m i j q = m.data.(i).(j) <- q
let copy m = { data = Array.map Array.copy m.data }

let transpose m = init (cols m) (rows m) (fun i j -> m.data.(j).(i))

(* Composed from [Rational.hash] entrywise so [equal a b] implies
   [hash a = hash b] without ever touching [Hashtbl.hash]. *)
let hash m =
  Array.fold_left
    (fun h row ->
      Array.fold_left (fun h q -> ((h * 31) + Rational.hash q) land max_int) (h lxor 0x2545F49) row)
    (Array.length m.data)
    m.data

let equal a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 (Array.for_all2 Rational.equal) a.data b.data

let mul a b =
  if cols a <> rows b then invalid_arg "Qmat.mul: dimension mismatch";
  init (rows a) (cols b) (fun i j ->
      let acc = ref Rational.zero in
      for k = 0 to cols a - 1 do
        acc := Rational.add !acc (Rational.mul a.data.(i).(k) b.data.(k).(j))
      done;
      !acc)

let mul_vec a v =
  if cols a <> Array.length v then invalid_arg "Qmat.mul_vec: dimension mismatch";
  Array.init (rows a) (fun i ->
      let acc = ref Rational.zero in
      for k = 0 to cols a - 1 do
        acc := Rational.add !acc (Rational.mul a.data.(i).(k) v.(k))
      done;
      !acc)

(* Forward elimination into row-echelon form; returns the pivot column
   of each pivot row.  Mutates [m] (callers pass a copy). *)
let echelon (m : t) =
  let nr = rows m and nc = cols m in
  let pivots = ref [] in
  let row = ref 0 in
  let col = ref 0 in
  while !row < nr && !col < nc do
    (* Find a non-zero pivot in this column at or below [row]. *)
    let pivot = ref (-1) in
    for i = !row to nr - 1 do
      if !pivot < 0 && not (Rational.is_zero m.data.(i).(!col)) then pivot := i
    done;
    if !pivot < 0 then incr col
    else begin
      let p = !pivot in
      if p <> !row then begin
        let tmp = m.data.(p) in
        m.data.(p) <- m.data.(!row);
        m.data.(!row) <- tmp
      end;
      let inv = Rational.inv m.data.(!row).(!col) in
      for j = !col to nc - 1 do
        m.data.(!row).(j) <- Rational.mul inv m.data.(!row).(j)
      done;
      for i = 0 to nr - 1 do
        if i <> !row && not (Rational.is_zero m.data.(i).(!col)) then begin
          let factor = m.data.(i).(!col) in
          for j = !col to nc - 1 do
            m.data.(i).(j) <- Rational.sub_mul m.data.(i).(j) factor m.data.(!row).(j)
          done
        end
      done;
      pivots := !col :: !pivots;
      incr row;
      incr col
    end
  done;
  List.rev !pivots

let rank m = List.length (echelon (copy m))

let det m =
  if rows m <> cols m then invalid_arg "Qmat.det: matrix must be square";
  let n = rows m in
  let a = copy m in
  let d = ref Rational.one in
  (* Fraction-free-ish elimination tracking the determinant. *)
  (try
     for col = 0 to n - 1 do
       let pivot = ref (-1) in
       for i = col to n - 1 do
         if !pivot < 0 && not (Rational.is_zero a.data.(i).(col)) then pivot := i
       done;
       if !pivot < 0 then begin
         d := Rational.zero;
         raise Exit
       end;
       if !pivot <> col then begin
         let tmp = a.data.(!pivot) in
         a.data.(!pivot) <- a.data.(col);
         a.data.(col) <- tmp;
         d := Rational.neg !d
       end;
       d := Rational.mul !d a.data.(col).(col);
       let inv = Rational.inv a.data.(col).(col) in
       for i = col + 1 to n - 1 do
         if not (Rational.is_zero a.data.(i).(col)) then begin
           let factor = Rational.mul inv a.data.(i).(col) in
           for j = col to n - 1 do
             a.data.(i).(j) <- Rational.sub_mul a.data.(i).(j) factor a.data.(col).(j)
           done
         end
       done
     done
   with Exit -> ());
  !d

let solve a b =
  let n = rows a in
  if n <> cols a then invalid_arg "Qmat.solve: matrix must be square";
  if Array.length b <> n then invalid_arg "Qmat.solve: vector dimension mismatch";
  (* Eliminate on the augmented matrix [a | b]. *)
  let aug = init n (n + 1) (fun i j -> if j = n then b.(i) else a.data.(i).(j)) in
  let pivots = echelon aug in
  if List.length pivots <> n || List.exists (fun c -> c >= n) pivots then None
  else Some (Array.init n (fun i -> aug.data.(i).(n)))

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf fmt "[%a]@,"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ") Rational.pp)
        (Array.to_list row))
    m.data;
  Format.fprintf fmt "@]"
