type relation = Le | Ge | Eq

type constraint_ = { coeffs : Rational.t array; relation : relation; rhs : Rational.t }

type outcome =
  | Optimal of Rational.t * Rational.t array
  | Infeasible
  | Unbounded

(* Dense tableau: [rows] constraint rows over [total + 1] columns (the
   last column is the right-hand side), plus an explicit basis map.
   All pivoting is exact; Bland's smallest-index rule on both the
   entering and leaving choices prevents cycling. *)

let q0 = Rational.zero
let q1 = Rational.one

let pivot tableau basis ~row ~col =
  let nrows = Array.length tableau in
  let ncols = Array.length tableau.(0) in
  let inv = Rational.inv tableau.(row).(col) in
  for j = 0 to ncols - 1 do
    tableau.(row).(j) <- Rational.mul inv tableau.(row).(j)
  done;
  for r = 0 to nrows - 1 do
    if r <> row && not (Rational.is_zero tableau.(r).(col)) then begin
      let factor = tableau.(r).(col) in
      for j = 0 to ncols - 1 do
        tableau.(r).(j) <- Rational.sub_mul tableau.(r).(j) factor tableau.(row).(j)
      done
    end
  done;
  basis.(row) <- col

(* One simplex run for [maximize cost·x] on the current tableau.
   [allowed j] filters candidate entering columns.  Returns [`Optimal]
   or [`Unbounded]. *)
let optimize tableau basis ~cost ~allowed =
  let nrows = Array.length tableau in
  let ncols = Array.length tableau.(0) - 1 in
  let rhs_col = ncols in
  let reduced j =
    (* r_j = c_j − Σ_r c_{basis r} · T[r][j] *)
    let acc = ref cost.(j) in
    for r = 0 to nrows - 1 do
      acc := Rational.sub_mul !acc cost.(basis.(r)) tableau.(r).(j)
    done;
    !acc
  in
  let rec iterate () =
    (* Bland: smallest-index column with positive reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to ncols - 1 do
         if allowed j && Rational.sign (reduced j) > 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test; Bland tie-break on the smallest leaving basis var. *)
      let best = ref None in
      for r = 0 to nrows - 1 do
        if Rational.sign tableau.(r).(col) > 0 then begin
          let ratio = Rational.div tableau.(r).(rhs_col) tableau.(r).(col) in
          match !best with
          | Some (best_ratio, best_row) ->
            let c = Rational.compare ratio best_ratio in
            if c < 0 || (c = 0 && basis.(r) < basis.(best_row)) then best := Some (ratio, r)
          | None -> best := Some (ratio, r)
        end
      done;
      match !best with
      | None -> `Unbounded
      | Some (_, row) ->
        pivot tableau basis ~row ~col;
        iterate ()
    end
  in
  iterate ()

let maximize ~objective constraints =
  let nvars = Array.length objective in
  if nvars = 0 then invalid_arg "Simplex.maximize: no variables";
  if constraints = [] then invalid_arg "Simplex.maximize: no constraints";
  List.iter
    (fun c ->
      if Array.length c.coeffs <> nvars then
        invalid_arg "Simplex.maximize: constraint dimension mismatch")
    constraints;
  (* Normalise to non-negative right-hand sides. *)
  let constraints =
    List.map
      (fun c ->
        if Rational.sign c.rhs >= 0 then c
        else
          {
            coeffs = Array.map Rational.neg c.coeffs;
            rhs = Rational.neg c.rhs;
            relation = (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          })
      constraints
  in
  let nrows = List.length constraints in
  let n_slack = List.length (List.filter (fun c -> c.relation <> Eq) constraints) in
  let n_art = List.length (List.filter (fun c -> c.relation <> Le) constraints) in
  let total = nvars + n_slack + n_art in
  let tableau = Array.make_matrix nrows (total + 1) q0 in
  let basis = Array.make nrows (-1) in
  let art_start = nvars + n_slack in
  let slack = ref nvars and art = ref art_start in
  List.iteri
    (fun r c ->
      Array.blit c.coeffs 0 tableau.(r) 0 nvars;
      tableau.(r).(total) <- c.rhs;
      (match c.relation with
       | Le ->
         tableau.(r).(!slack) <- q1;
         basis.(r) <- !slack;
         incr slack
       | Ge ->
         tableau.(r).(!slack) <- Rational.neg q1;
         incr slack;
         tableau.(r).(!art) <- q1;
         basis.(r) <- !art;
         incr art
       | Eq ->
         tableau.(r).(!art) <- q1;
         basis.(r) <- !art;
         incr art))
    constraints;
  let is_artificial j = j >= art_start in
  (* Phase 1: maximize −Σ artificials. *)
  let feasible =
    if n_art = 0 then true
    else begin
      let phase1_cost =
        Array.init (total + 1) (fun j ->
            if j < total && is_artificial j then Rational.minus_one else q0)
      in
      match optimize tableau basis ~cost:phase1_cost ~allowed:(fun _ -> true) with
      | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
      | `Optimal ->
        let value =
          (* −Σ artificial basics' values *)
          let acc = ref q0 in
          Array.iteri
            (fun r b -> if is_artificial b then acc := Rational.add !acc tableau.(r).(total))
            basis;
          !acc
        in
        if Rational.sign value > 0 then false
        else begin
          (* Drive surviving zero-valued artificials out of the basis;
             rows that cannot pivot are redundant but harmless since the
             artificial is fixed at zero and barred from re-entering. *)
          Array.iteri
            (fun r b ->
              if is_artificial b then begin
                let col = ref (-1) in
                for j = total - 1 downto 0 do
                  if (not (is_artificial j)) && not (Rational.is_zero tableau.(r).(j)) then
                    col := j
                done;
                if !col >= 0 then pivot tableau basis ~row:r ~col:!col
              end)
            basis;
          true
        end
    end
  in
  if not feasible then Infeasible
  else begin
    let phase2_cost =
      Array.init (total + 1) (fun j -> if j < nvars then objective.(j) else q0)
    in
    match
      optimize tableau basis ~cost:phase2_cost ~allowed:(fun j -> not (is_artificial j))
    with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let x = Array.make nvars q0 in
      Array.iteri (fun r b -> if b < nvars then x.(b) <- tableau.(r).(total)) basis;
      let value = ref q0 in
      Array.iteri (fun j c -> value := Rational.add !value (Rational.mul c x.(j))) objective;
      Optimal (!value, x)
  end

let minimize ~objective constraints =
  match maximize ~objective:(Array.map Rational.neg objective) constraints with
  | Optimal (v, x) -> Optimal (Rational.neg v, x)
  | (Infeasible | Unbounded) as o -> o
