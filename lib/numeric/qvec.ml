type t = Rational.t array

let make n q = Array.make n q
let init = Array.init
let of_list = Array.of_list
let dim = Array.length

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Qvec.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> Rational.add x b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> Rational.sub x b.(i)) a

let scale k v = Array.map (Rational.mul k) v

let dot a b =
  check_dims "dot" a b;
  let acc = ref Rational.zero in
  for i = 0 to Array.length a - 1 do
    acc := Rational.add !acc (Rational.mul a.(i) b.(i))
  done;
  !acc

let sum = Rational.sum_array

let equal a b = Array.length a = Array.length b && Array.for_all2 Rational.equal a b

(* Composed from [Rational.hash] entrywise so [equal a b] implies
   [hash a = hash b] without ever touching [Hashtbl.hash]. *)
let hash v =
  Array.fold_left (fun h q -> (((h * 31) + Rational.hash q) land max_int)) (Array.length v) v

let extreme_index name better v =
  if Array.length v = 0 then invalid_arg (Printf.sprintf "Qvec.%s: empty vector" name);
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if better v.(i) v.(!best) then best := i
  done;
  !best

let min_index v = extreme_index "min_index" (fun a b -> Rational.compare a b < 0) v
let max_index v = extreme_index "max_index" (fun a b -> Rational.compare a b > 0) v

let is_distribution v =
  Array.for_all (fun q -> Rational.sign q >= 0 && Rational.compare q Rational.one <= 0) v
  && Rational.equal (sum v) Rational.one

let is_positive_distribution v =
  is_distribution v && Array.for_all (fun q -> Rational.sign q > 0) v

let pp fmt v =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") Rational.pp)
    (Array.to_list v)
