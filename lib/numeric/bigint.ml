(* Tagged small-value representation.  The canonical invariant makes
   structural equality coincide with numerical equality:

     Small i        for every value in [-max_int, max_int]  (i <> min_int)
     Big (neg, m)   only when |value| > max_int (so m never fits an int)

   Every constructor of a [Big] goes through [norm_big], which demotes a
   magnitude that fits back into [Small]; min_int itself is therefore a
   [Big] (its magnitude max_int + 1 exceeds the symmetric Small range),
   keeping [neg] total on the Small payload. *)

type t =
  | Small of int
  | Big of bool * Bignat.t (* (negative, magnitude); |value| > max_int *)

let zero = Small 0
let one = Small 1
let minus_one = Small (-1)

(* |min_int| = max_int + 1, the first magnitude that must live in a Big. *)
let min_int_mag = Bignat.succ (Bignat.of_int max_int)

let assert_well_formed ~ctx = function
  | Small i ->
    if i = min_int then
      Sanitize.fail (ctx ^ ": Small min_int (must be Big to keep the range symmetric)")
  | Big (_, m) ->
    Bignat.assert_well_formed ~ctx m;
    (match Bignat.to_int_opt m with
     | Some i ->
       Sanitize.fail
         (Printf.sprintf "%s: Big hides a native-size magnitude %d (must be Small)" ctx i)
     | None -> ())

let guard ctx n = if !Sanitize.enabled then assert_well_formed ~ctx n

let unsafe_big ~negative mag = Big (negative, mag)

let norm_big neg mag =
  match Bignat.to_int_opt mag with
  | Some i -> Small (if neg then -i else i)
  | None ->
    let r = Big (neg, mag) in
    guard "Bigint.norm_big" r;
    r

let of_nat n = norm_big false n

let of_int n = if n = min_int then Big (true, min_int_mag) else Small n

let to_int_opt = function
  | Small i -> Some i
  | Big (false, _) -> None
  | Big (true, m) ->
    (* Only min_int can be negative, too big for Small, yet native. *)
    (match Bignat.to_int_opt (Bignat.pred m) with
     | Some i when i = max_int -> Some min_int
     | _ -> None)

let to_int_exn n =
  match to_int_opt n with
  | Some i -> i
  | None -> failwith "Bigint.to_int_exn: value exceeds native int range"

let to_nat_exn = function
  | Small i -> if i < 0 then invalid_arg "Bigint.to_nat_exn: negative value" else Bignat.of_int i
  | Big (false, m) -> m
  | Big (true, _) -> invalid_arg "Bigint.to_nat_exn: negative value"

let abs_nat = function
  | Small i -> Bignat.of_int (abs i)
  | Big (_, m) -> m

let sign = function
  | Small i -> Int.compare i 0
  | Big (neg, _) -> if neg then -1 else 1

let is_zero = function Small 0 -> true | _ -> false

let equal (a : t) (b : t) =
  guard "Bigint.equal" a;
  guard "Bigint.equal" b;
  match a, b with
  | Small x, Small y -> Int.equal x y
  | Big (nx, mx), Big (ny, my) -> Bool.equal nx ny && Bignat.equal mx my
  | _ -> false

let compare a b =
  guard "Bigint.compare" a;
  guard "Bigint.compare" b;
  match a, b with
  | Small x, Small y -> Int.compare x y
  | Small _, Big (neg, _) -> if neg then 1 else -1
  | Big (neg, _), Small _ -> if neg then -1 else 1
  | Big (false, x), Big (false, y) -> Bignat.compare x y
  | Big (true, x), Big (true, y) -> Bignat.compare y x
  | Big (false, _), Big (true, _) -> 1
  | Big (true, _), Big (false, _) -> -1

(* The canonical representation makes this consistent with [equal]:
   numerically equal values share a constructor and payload.  The
   Small mix is an explicit multiply-xorshift so no code path touches
   the representation-polymorphic [Hashtbl.hash]. *)
let hash n =
  guard "Bigint.hash" n;
  match n with
  | Small i ->
    let h = i * 0x9E3779B1 in
    (h lxor (h lsr 24)) land max_int
  | Big (neg, m) ->
    let h = Bignat.hash m in
    (if neg then lnot h else h) land max_int

let num_bits = function
  | Small i ->
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    bits 0 (abs i)
  | Big (_, m) -> Bignat.num_bits m

let is_native = function Small _ -> true | Big _ -> false

(* O(1) magnitude estimate in 30-bit limbs: 2^(30(w-1)) <= |n| < 2^(30w)
   for w = size n > 0.  Three comparisons on the Small side, an array
   length on the Big side — cheap enough to gate comparisons on. *)
let size = function
  | Small 0 -> 0
  | Small i ->
    let a = Stdlib.abs i in
    if a < 0x4000_0000 then 1 else if a < 0x1000_0000_0000_0000 then 2 else 3
  | Big (_, m) -> Bignat.num_limbs m

(* 29-bit mantissa bracket of the magnitude: for n <> 0, [approx n] is
   [(mant, e)] with [2^28 <= mant < 2^29] and
   [mant·2^e <= |n| < (mant+1)·2^e] (exponents below 29-bit values are
   negative and only ever used as differences).  O(1); the bracket is
   what lets rational comparisons decide without a full multiply. *)
let approx = function
  | Small 0 -> invalid_arg "Bigint.approx: zero"
  | Small i ->
    let v = Stdlib.abs i in
    let bv = Bignat.bits_native v in
    if bv >= 29 then (v lsr (bv - 29), bv - 29) else (v lsl (29 - bv), bv - 29)
  | Big (_, m) -> Bignat.approx m

let neg = function
  | Small i -> Small (-i)
  | Big (neg, m) -> Big (not neg, m)

let abs = function
  | Small i -> Small (abs i)
  | Big (_, m) -> Big (false, m)

(* Sign + magnitude view for the limb-array fallback paths.  Only taken
   when an operand is Big or a native op overflowed, so the [of_int]
   allocation is off the hot path. *)
let decompose = function
  | Small i -> (i < 0, Bignat.of_int (Stdlib.abs i))
  | Big (neg, m) -> (neg, m)

let add_big a b =
  let na, ma = decompose a and nb, mb = decompose b in
  if na = nb then norm_big na (Bignat.add ma mb)
  else begin
    let c = Bignat.compare ma mb in
    if c = 0 then zero
    else if c > 0 then norm_big na (Bignat.sub ma mb)
    else norm_big nb (Bignat.sub mb ma)
  end

let add a b =
  guard "Bigint.add" a;
  guard "Bigint.add" b;
  match a, b with
  | Small x, Small y ->
    let s = x + y in
    (* Wrapped iff x and y agree in sign and s does not; an exact
       min_int must also promote to keep the Small range symmetric. *)
    if (x lxor s) land (y lxor s) < 0 || s = min_int then add_big a b
    else Small s
  | _ -> add_big a b

let sub a b =
  guard "Bigint.sub" a;
  guard "Bigint.sub" b;
  match a, b with
  | Small x, Small y ->
    let d = x - y in
    if (x lxor y) land (x lxor d) < 0 || d = min_int then add_big a (neg b)
    else Small d
  | _ -> add_big a (neg b)

let mul_big a b =
  let na, ma = decompose a and nb, mb = decompose b in
  norm_big (na <> nb) (Bignat.mul ma mb)

let mul a b =
  guard "Bigint.mul" a;
  guard "Bigint.mul" b;
  match a, b with
  | Small x, Small y ->
    if x = 0 || y = 0 then zero
    else if Stdlib.abs x lor Stdlib.abs y < 0x4000_0000 then
      (* Both magnitudes < 2^30: the product is < 2^60, no check needed. *)
      Small (x * y)
    else begin
      let p = x * y in
      (* p/y recovers x only when the product did not wrap: a wrapped
         product differs from the true one by a multiple of 2^63 > |y|·max. *)
      if p <> min_int && p / y = x then Small p else mul_big a b
    end
  | _ -> mul_big a b

let divmod a b =
  guard "Bigint.divmod" a;
  guard "Bigint.divmod" b;
  match a, b with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y ->
    (* Native division is truncated with remainder signed like the
       dividend — exactly this module's contract; magnitudes can only
       shrink, so no overflow check is needed. *)
    (Small (x / y), Small (x mod y))
  | _ ->
    let na, ma = decompose a and nb, mb = decompose b in
    let q, r = Bignat.divmod ma mb in
    (norm_big (na <> nb) q, norm_big na r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let gcd a b =
  guard "Bigint.gcd" a;
  guard "Bigint.gcd" b;
  match a, b with
  | Small x, Small y -> Small (Bignat.gcd_int (Stdlib.abs x) (Stdlib.abs y))
  | Small 0, n | n, Small 0 -> abs n
  | Small y, Big (_, m) | Big (_, m), Small y ->
    (* One multi-limb reduction drops into the native binary GCD. *)
    let r = Bignat.rem m (Bignat.of_int (Stdlib.abs y)) in
    Small (Bignat.gcd_int (Stdlib.abs y) (Bignat.to_int_exn r))
  | Big (_, x), Big (_, y) -> of_nat (Bignat.gcd x y)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let to_string = function
  | Small i -> string_of_int i
  | Big (false, m) -> Bignat.to_string m
  | Big (true, m) -> "-" ^ Bignat.to_string m

let of_string s =
  if s = "" then invalid_arg "Bigint.of_string: empty string"
  else if s.[0] = '-' then
    neg (of_nat (Bignat.of_string (String.sub s 1 (String.length s - 1))))
  else if s.[0] = '+' then
    of_nat (Bignat.of_string (String.sub s 1 (String.length s - 1)))
  else of_nat (Bignat.of_string s)

let pp fmt n = Format.pp_print_string fmt (to_string n)

(* Intended float boundary: the one lossy exit from the exact tower. *)
let to_float = function
  | Small i -> float_of_int i
  | Big (false, m) -> Bignat.to_float m
  | Big (true, m) -> -.Bignat.to_float m (* lint: allow R2 *)
