(* Multiplicative binomial: the running value after step [i] is
   C(n - k + i, i), so every intermediate division is exact. *)
let choose n k =
  if n < 0 then invalid_arg "Combinat.choose: negative n";
  if k < 0 || k > n then Bigint.zero
  else begin
    let k = if k > n - k then n - k else k in
    let c = ref Bigint.one in
    for i = 1 to k do
      c := Bigint.div (Bigint.mul !c (Bigint.of_int (n - k + i))) (Bigint.of_int i)
    done;
    !c
  end

(* (Σ parts)! / Π parts!  as a product of incremental binomials:
   C(p_1; p_1) · C(p_1+p_2; p_2) · … — each factor counts the ways to
   choose the next group from the users placed so far. *)
let multinomial parts =
  let acc = ref Bigint.one and placed = ref 0 in
  Array.iter
    (fun p ->
      if p < 0 then invalid_arg "Combinat.multinomial: negative part";
      placed := !placed + p;
      acc := Bigint.mul !acc (choose !placed p))
    parts;
  !acc

let factorial n =
  if n < 0 then invalid_arg "Combinat.factorial: negative n";
  let acc = ref Bigint.one in
  for i = 2 to n do
    acc := Bigint.mul !acc (Bigint.of_int i)
  done;
  !acc

let compositions ~total ~parts =
  if total < 0 then invalid_arg "Combinat.compositions: negative total";
  if parts < 1 then invalid_arg "Combinat.compositions: need at least one part";
  choose (total + parts - 1) (parts - 1)

let compositions_int ~total ~parts =
  match Bigint.to_int_opt (compositions ~total ~parts) with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf
         "Combinat.compositions_int: C(%d+%d-1, %d-1) overflows a native int" total parts parts)

let iter_compositions ~total ~parts f =
  if total < 0 then invalid_arg "Combinat.iter_compositions: negative total";
  if parts < 1 then invalid_arg "Combinat.iter_compositions: need at least one part";
  let buf = Array.make parts 0 in
  (* The last part absorbs the remainder, so the recursion depth is
     [parts - 1] and each leaf touches only the suffix it changed. *)
  let rec go i remaining =
    if i = parts - 1 then begin
      buf.(i) <- remaining;
      f buf;
      buf.(i) <- 0
    end
    else begin
      for k = 0 to remaining do
        buf.(i) <- k;
        go (i + 1) (remaining - k)
      done;
      buf.(i) <- 0
    end
  in
  go 0 total
