(** Exact rational arithmetic.

    A rational is kept in lowest terms with a positive denominator, so
    structural equality coincides with numerical equality.  This type is
    the scalar of the whole library: latencies, capacities, tolerances,
    probabilities and social costs are all exact rationals, which makes
    Nash-condition tests exact (no floating-point tie-breaking). *)

type t

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** [make num den] is [num/den] in lowest terms.
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_ints num den] is [num/den]. @raise Division_by_zero on [den = 0]. *)
val of_ints : int -> int -> t

val of_int : int -> t
val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

(** [to_float q] is the closest float obtainable by dividing the float
    images of numerator and denominator. *)
val to_float : t -> float

(** [of_float_dyadic f] is the exact rational value of a finite float.
    @raise Invalid_argument on NaN or infinities. *)
val of_float_dyadic : float -> t

val is_zero : t -> bool
val is_integer : t -> bool
val sign : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

(** [compare_sum a b c] is [compare (add a b) c] computed without
    materialising the sum: the unreduced numerator and denominator of
    [a + b] are compared against [c] through the same staged filters as
    {!compare} (sign, shared denominator, native cross products,
    limb-size and mantissa-interval prefilters), so the hot Nash
    inequality [load + weight ⋚ latency·capacity] costs no gcd
    normalisation and no rational allocation. *)
val compare_sum : t -> t -> t -> int

(** [hash q] is derived from {!Bigint.hash} on the canonical
    [(num, den)] pair, so [equal a b] implies [hash a = hash b]
    regardless of how either value was computed. *)
val hash : t -> int

(** [assert_well_formed ~ctx q] checks the invariants (well-formed
    numerator and denominator, [den > 0], lowest terms) and raises
    {!Sanitize.Violation} naming [ctx] on the first breach.  Called
    automatically at operation boundaries when {!Sanitize.enabled}. *)
val assert_well_formed : ctx:string -> t -> unit

(** [unsafe_of_parts num den] builds [num/den] with no normalization
    or checking.  Exists only so sanitizer tests can forge malformed
    values; never use it to build real numbers. *)
val unsafe_of_parts : Bigint.t -> Bigint.t -> t

val neg : t -> t
val abs : t -> t
val inv : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [div a b]. @raise Division_by_zero when [b] is zero. *)
val div : t -> t -> t

(** [sub_mul a b c] is [a - b*c], short-circuiting the zero factors
    that dominate exact Gaussian-elimination inner loops. *)
val sub_mul : t -> t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val sum : t list -> t
val sum_array : t array -> t

(** [mean qs] of a non-empty list. @raise Invalid_argument on []. *)
val mean : t list -> t

(** [floor q] is the greatest integer [<= q], as a rational. *)
val floor : t -> t

(** [ceil q] is the least integer [>= q], as a rational. *)
val ceil : t -> t

(** [of_string s] parses ["a/b"], ["a"], or a decimal like ["3.25"]
    (with optional sign). @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string

(** [to_decimal_string q ~digits] renders [q] in decimal with exactly
    [digits] fractional digits, truncated toward zero (exact long
    division — no float rounding): [to_decimal_string (1/3) ~digits:4 =
    "0.3333"]. @raise Invalid_argument when [digits < 0]. *)
val to_decimal_string : t -> digits:int -> string

val pp : Format.formatter -> t -> unit
