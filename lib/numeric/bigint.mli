(** Arbitrary-precision signed integers, layered over {!Bignat}.

    The representation is tagged: values in [[-max_int, max_int]] are a
    native [int] (no allocation, overflow-checked native arithmetic)
    and everything larger is a sign + {!Bignat} magnitude.  The split is
    canonical — a value that fits the native range is always stored
    natively — so every integer has exactly one representation and
    structural equality coincides with numerical equality.  All
    arithmetic falls back to the limb representation exactly when a
    native operation would overflow. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option
val to_int_exn : t -> int

(** [of_nat n] embeds a natural number. *)
val of_nat : Bignat.t -> t

(** [to_nat_exn n] is the magnitude of a non-negative [n].
    @raise Invalid_argument when [n < 0]. *)
val to_nat_exn : t -> Bignat.t

(** [abs_nat n] is the magnitude |n| as a natural. *)
val abs_nat : t -> Bignat.t

(** [sign n] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** [assert_well_formed ~ctx n] checks the tagged-representation
    invariants ([Small] never [min_int]; a [Big] magnitude is in
    Bignat normal form and never fits a native int) and raises
    {!Sanitize.Violation} naming [ctx] on the first breach.  Called
    automatically at operation boundaries when {!Sanitize.enabled}. *)
val assert_well_formed : ctx:string -> t -> unit

(** [unsafe_big ~negative mag] builds a [Big] with no demotion or
    checking.  Exists only so sanitizer tests can forge malformed
    values; never use it to build real numbers. *)
val unsafe_big : negative:bool -> Bignat.t -> t

(** [hash n] is consistent with {!equal} across both representations:
    the canonical small/big split guarantees numerically equal values
    hash identically. *)
val hash : t -> int

(** [num_bits n] is the bit length of |n|; [num_bits zero = 0]. *)
val num_bits : t -> int

(** [size n] is the magnitude of [n] in 30-bit limbs, in O(1):
    [2^(30(w-1)) <= |n| < 2^(30w)] for [w = size n > 0]; [size zero = 0]. *)
val size : t -> int

(** [approx n] is a 29-bit mantissa bracket [(mant, e)] of the
    magnitude of a non-zero [n]: [2^28 <= mant < 2^29] and
    [mant·2^e <= |n| < (mant+1)·2^e], with the exponent interpreted
    symbolically (negative below [2^28]).  O(1).
    @raise Invalid_argument on {!zero}. *)
val approx : t -> int * int

(** [is_native n] holds when [n] is stored in the small-value (native
    int) representation — exposed for benchmarks and fast-path gating;
    equivalent to [n] lying in [[-max_int, max_int]]. *)
val is_native : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is truncated division: the quotient rounds toward zero
    and the remainder has the sign of [a], with [a = q*b + r] and
    [|r| < |b|].  @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor. *)
val gcd : t -> t -> t

(** [pow b e] raises [b] to a non-negative exponent.
    @raise Invalid_argument when [e < 0]. *)
val pow : t -> int -> t

val of_string : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val to_float : t -> float
