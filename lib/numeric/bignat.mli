(** Arbitrary-precision natural numbers.

    Values are immutable. The representation is a little-endian array of
    30-bit limbs with no leading zero limb, so every mathematical natural
    has exactly one representation and structural equality coincides with
    numerical equality.

    This module exists because the execution environment provides no
    big-integer package; exact rational arithmetic over these naturals
    backs every Nash-condition test in the library. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative [n].
    @raise Invalid_argument if [n < 0]. *)
val of_int : int -> t

(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [to_int_exn n] is [n] as a native int.
    @raise Failure when [n] does not fit. *)
val to_int_exn : t -> int

val is_zero : t -> bool
val is_one : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

(** [bits_native v] is the bit length of a non-negative native value
    ([bits_native 0 = 0]) via a constant six-step branch tree. *)
val bits_native : int -> int

(** [approx n] is a 29-bit mantissa bracket [(mant, e)] of a non-zero
    [n]: [2^28 <= mant < 2^29] and [mant·2^e <= n < (mant+1)·2^e],
    where the exponent is interpreted symbolically (it is negative for
    values below [2^28]).  O(1) — reads only the top two limbs.
    @raise Invalid_argument on {!zero}. *)
val approx : t -> int * int

(** [hash n] folds explicitly over the canonical limb sequence, so
    [equal a b] implies [hash a = hash b] and the hash never depends on
    [Hashtbl.hash]'s representation traversal (or its size limits). *)
val hash : t -> int

(** [assert_well_formed ~ctx n] checks the canonical-representation
    invariants (no high zero limb, every limb in [[0, 2^30)]) and
    raises {!Sanitize.Violation} naming [ctx] on the first breach.
    Called automatically at construction and operation boundaries when
    {!Sanitize.enabled} is set. *)
val assert_well_formed : ctx:string -> t -> unit

(** [unsafe_of_limbs a] wraps a raw little-endian limb array with no
    normalization or checking.  Exists only so sanitizer tests can
    forge malformed values; never use it to build real numbers. *)
val unsafe_of_limbs : int array -> t

val add : t -> t -> t

(** [sub a b] is [a - b].
    @raise Invalid_argument when [b > a]. *)
val sub : t -> t -> t

val succ : t -> t

(** [pred n] is [n - 1]. @raise Invalid_argument on [zero]. *)
val pred : t -> t

val mul : t -> t -> t

(** [mul_schoolbook a b] is the quadratic multiplication used below the
    Karatsuba threshold; exposed for differential testing. *)
val mul_schoolbook : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)] with Euclidean semantics.
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the greatest common divisor; [gcd zero zero = zero]. *)
val gcd : t -> t -> t

(** [gcd_int a b] is the binary (Stein) GCD on non-negative native
    ints, the allocation-free core of the small-value fast path.
    @raise Invalid_argument when either argument is negative. *)
val gcd_int : int -> int -> int

(** [pow b e] is [b] raised to the non-negative native exponent [e].
    @raise Invalid_argument if [e < 0]. *)
val pow : t -> int -> t

(** [shift_left n k] is [n * 2^k]. @raise Invalid_argument if [k < 0]. *)
val shift_left : t -> int -> t

(** [shift_right n k] is [n / 2^k]. @raise Invalid_argument if [k < 0]. *)
val shift_right : t -> int -> t

(** [num_bits n] is the position of the highest set bit plus one;
    [num_bits zero = 0]. *)
val num_bits : t -> int

(** [num_limbs n] is the number of 30-bit limbs ([num_limbs zero = 0]);
    an O(1) magnitude estimate: [2^(30(w-1)) <= n < 2^(30w)] for
    [w = num_limbs n > 0]. *)
val num_limbs : t -> int

(** [of_string s] parses a decimal numeral (optional [_] separators).
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [to_float n] is the nearest (up to rounding in the conversion chain)
    float; large values may overflow to [infinity]. *)
val to_float : t -> float
