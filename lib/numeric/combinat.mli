(** Exact enumerative combinatorics shared by the class-compressed
    layers.

    The mixed-layer DP ({!Model.Load_dist}) and the class-based game
    form ({!Model.Cgame}) both reduce exchangeable users to counts and
    weigh every split of a class across the links by a multinomial
    coefficient.  This module is the single home for those quantities:
    binomials and multinomials over {!Bigint} (always exact, never
    overflowing) and weak-composition enumeration/counting with an
    explicit overflow guard where a native count is required. *)

(** [choose n k] is the binomial coefficient C(n, k) — [zero] when
    [k < 0] or [k > n].  Exact for any magnitude.
    @raise Invalid_argument when [n < 0]. *)
val choose : int -> int -> Bigint.t

(** [multinomial parts] is the multinomial coefficient
    [(Σ parts)! / Π parts.(i)!] — the number of ways to assign
    [Σ parts] distinguishable users to groups of the given sizes.
    [multinomial [||] = one].
    @raise Invalid_argument when any part is negative. *)
val multinomial : int array -> Bigint.t

(** [factorial n]. @raise Invalid_argument when [n < 0]. *)
val factorial : int -> Bigint.t

(** [compositions ~total ~parts] is the number of weak compositions of
    [total] into [parts] ordered non-negative parts,
    [C(total + parts - 1, parts - 1)] — the number of distinct ways a
    class of [total] exchangeable users can split across [parts] links.
    @raise Invalid_argument when [total < 0] or [parts < 1]. *)
val compositions : total:int -> parts:int -> Bigint.t

(** [compositions_int ~total ~parts] is {!compositions} as a native
    [int].
    @raise Invalid_argument (mentioning overflow) when the count does
    not fit — e.g. at the huge [n·m] a caller should never enumerate. *)
val compositions_int : total:int -> parts:int -> int

(** [iter_compositions ~total ~parts f] calls [f] on every weak
    composition of [total] into [parts] parts, in lexicographic order
    of the part vector (first part ascending).  The array passed to [f]
    is reused between calls: copy it if you retain it.
    @raise Invalid_argument when [total < 0] or [parts < 1]. *)
val iter_compositions : total:int -> parts:int -> (int array -> unit) -> unit
