(* The seed (array-only) numeric tower, kept verbatim as a differential
   oracle.  [Nat]/[Int]/[Q] are the pre-fast-path implementations of
   Bignat/Bigint/Rational: every value is a limb array (no tagged
   small-int representation), every gcd is the full Euclidean loop.

   test/test_differential.ml drives randomized op sequences against
   both towers and requires bit-for-bit agreement of the decimal
   renderings; bench/main.ml times this tower against the live one to
   produce the speedup figures in BENCH_numeric.json.  Do not "improve"
   this module: its value is that it does not change. *)

module Nat = struct
  let base_bits = 30
  let base = 1 lsl base_bits
  let limb_mask = base - 1

  type t = int array

  let zero : t = [||]
  let one : t = [| 1 |]
  let two : t = [| 2 |]

  let is_zero n = Array.length n = 0

  let normalize (a : int array) : t =
    let len = ref (Array.length a) in
    while !len > 0 && a.(!len - 1) = 0 do decr len done;
    if !len = Array.length a then a else Array.sub a 0 !len

  let of_int n =
    if n < 0 then invalid_arg "Reference.Nat.of_int: negative argument"
    else if n = 0 then zero
    else begin
      let rec count_limbs acc v = if v = 0 then acc else count_limbs (acc + 1) (v lsr base_bits) in
      let len = count_limbs 0 n in
      let a = Array.make len 0 in
      let v = ref n in
      for i = 0 to len - 1 do
        a.(i) <- !v land limb_mask;
        v := !v lsr base_bits
      done;
      a
    end

  let to_int_opt n =
    if Array.length n > 3 then None
    else begin
      let rec fold i acc =
        if i < 0 then Some acc
        else if acc > (max_int - n.(i)) / base then None
        else fold (i - 1) ((acc lsl base_bits) lor n.(i))
      in
      if Array.length n = 3 && n.(2) >= 8 then None
      else fold (Array.length n - 1) 0
    end

  let to_int_exn n =
    match to_int_opt n with
    | Some i -> i
    | None -> failwith "Reference.Nat.to_int_exn: value exceeds native int range"

  let equal (a : t) (b : t) = a = b

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Int.compare la lb
    else begin
      let rec cmp i =
        if i < 0 then 0
        else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
        else cmp (i - 1)
      in
      cmp (la - 1)
    end

  let add (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    let lr = 1 + max la lb in
    let r = Array.make lr 0 in
    let carry = ref 0 in
    for i = 0 to lr - 2 do
      let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
      r.(i) <- s land limb_mask;
      carry := s lsr base_bits
    done;
    r.(lr - 1) <- !carry;
    normalize r

  let sub (a : t) (b : t) : t =
    if compare a b < 0 then invalid_arg "Reference.Nat.sub: underflow";
    let la = Array.length a and lb = Array.length b in
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if s < 0 then begin r.(i) <- s + base; borrow := 1 end
      else begin r.(i) <- s; borrow := 0 end
    done;
    assert (!borrow = 0);
    normalize r

  let succ n = add n one
  let pred n = sub n one

  let mul (a : t) (b : t) : t =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then zero
    else begin
      let r = Array.make (la + lb) 0 in
      for i = 0 to la - 1 do
        let carry = ref 0 in
        let ai = a.(i) in
        for j = 0 to lb - 1 do
          let cur = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- cur land limb_mask;
          carry := cur lsr base_bits
        done;
        r.(i + lb) <- !carry
      done;
      normalize r
    end

  let num_bits (n : t) =
    let len = Array.length n in
    if len = 0 then 0
    else begin
      let top = n.(len - 1) in
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      ((len - 1) * base_bits) + bits 0 top
    end

  let shift_left (n : t) k =
    if k < 0 then invalid_arg "Reference.Nat.shift_left: negative shift";
    if is_zero n || k = 0 then n
    else begin
      let limbs = k / base_bits and bits = k mod base_bits in
      let len = Array.length n in
      let r = Array.make (len + limbs + 1) 0 in
      for i = 0 to len - 1 do
        let v = n.(i) lsl bits in
        r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
        r.(i + limbs + 1) <- v lsr base_bits
      done;
      normalize r
    end

  let shift_right (n : t) k =
    if k < 0 then invalid_arg "Reference.Nat.shift_right: negative shift";
    if is_zero n || k = 0 then n
    else begin
      let limbs = k / base_bits and bits = k mod base_bits in
      let len = Array.length n in
      if limbs >= len then zero
      else begin
        let rlen = len - limbs in
        let r = Array.make rlen 0 in
        for i = 0 to rlen - 1 do
          let lo = n.(i + limbs) lsr bits in
          let hi = if i + limbs + 1 < len then (n.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask else 0 in
          r.(i) <- if bits = 0 then n.(i + limbs) else lo lor hi
        done;
        normalize r
      end
    end

  let divmod_small (a : t) (d : int) : t * t =
    let len = Array.length a in
    let q = Array.make len 0 in
    let r = ref 0 in
    for i = len - 1 downto 0 do
      let acc = (!r lsl base_bits) lor a.(i) in
      q.(i) <- acc / d;
      r := acc mod d
    done;
    (normalize q, of_int !r)

  let divmod_knuth (a : t) (b : t) : t * t =
    let n = Array.length b in
    let rec top_bits acc v = if v = 0 then acc else top_bits (acc + 1) (v lsr 1) in
    let s = base_bits - top_bits 0 b.(n - 1) in
    let v = shift_left b s in
    let ua = shift_left a s in
    let ulen = Array.length ua in
    let u = Array.make (ulen + 1) 0 in
    Array.blit ua 0 u 0 ulen;
    let m = Array.length u - n - 1 in
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) and vsnd = v.(n - 2) in
    for j = m downto 0 do
      let num2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num2 / vtop) and rhat = ref (num2 mod vtop) in
      let continue = ref true in
      while !continue
            && (!qhat >= base
                || !qhat * vsnd > (!rhat lsl base_bits) lor u.(j + n - 2)) do
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then continue := false
      done;
      let carry = ref 0 and borrowed = ref false in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        let t = u.(j + i) - (p land limb_mask) in
        if t < 0 then begin
          u.(j + i) <- t + base;
          carry := (p lsr base_bits) + 1
        end else begin
          u.(j + i) <- t;
          carry := p lsr base_bits
        end
      done;
      let t = u.(j + n) - !carry in
      if t < 0 then begin u.(j + n) <- t + base; borrowed := true end
      else u.(j + n) <- t;
      if !borrowed then begin
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let sum = u.(j + i) + v.(i) + !c in
          u.(j + i) <- sum land limb_mask;
          c := sum lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land limb_mask
      end;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r s)

  let divmod (a : t) (b : t) : t * t =
    if is_zero b then raise Division_by_zero
    else if compare a b < 0 then (zero, a)
    else if Array.length b = 1 then divmod_small a b.(0)
    else divmod_knuth a b

  let div a b = fst (divmod a b)
  let rem a b = snd (divmod a b)

  let rec gcd a b = if is_zero b then a else gcd b (rem a b)

  let pow b e =
    if e < 0 then invalid_arg "Reference.Nat.pow: negative exponent";
    let rec go acc b e =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (e lsr 1)
      end
    in
    go one b e

  let decimal_chunk = 1_000_000_000

  let to_string (n : t) =
    if is_zero n then "0"
    else begin
      let buf = Buffer.create 32 in
      let rec chunks acc n =
        if is_zero n then acc
        else begin
          let q, r = divmod_small n decimal_chunk in
          chunks (to_int_exn r :: acc) q
        end
      in
      match chunks [] n with
      | [] -> assert false
      | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
        Buffer.contents buf
    end

  let of_string s =
    let digits = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        if c >= '0' && c <= '9' then Buffer.add_char digits c
        else if c <> '_' then invalid_arg (Printf.sprintf "Reference.Nat.of_string: %S" s))
      s;
    let d = Buffer.contents digits in
    if d = "" then invalid_arg (Printf.sprintf "Reference.Nat.of_string: %S" s);
    let len = String.length d in
    let acc = ref zero in
    let pos = ref 0 in
    while !pos < len do
      let take = min 9 (len - !pos) in
      let chunk = int_of_string (String.sub d !pos take) in
      acc := add (mul !acc (pow (of_int 10) take)) (of_int chunk);
      pos := !pos + take
    done;
    !acc

  let to_float (n : t) =
    Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) n 0.0
end

module Int = struct
  type t =
    | Zero
    | Pos of Nat.t
    | Neg of Nat.t

  let zero = Zero
  let one = Pos Nat.one
  let minus_one = Neg Nat.one

  let of_nat n = if Nat.is_zero n then Zero else Pos n

  let of_int n =
    if n = 0 then Zero
    else if n > 0 then Pos (Nat.of_int n)
    else if n = min_int then Neg (Nat.succ (Nat.of_int (-(n + 1))))
    else Neg (Nat.of_int (-n))

  let to_int_opt = function
    | Zero -> Some 0
    | Pos m -> Nat.to_int_opt m
    | Neg m ->
      (match Nat.to_int_opt (Nat.pred m) with
       | Some i when i < max_int -> Some (-(i + 1))
       | Some i -> Some (-i - 1)
       | None -> None)

  let abs_nat = function Zero -> Nat.zero | Pos m | Neg m -> m
  let sign = function Zero -> 0 | Pos _ -> 1 | Neg _ -> -1
  let is_zero n = n = Zero

  let equal (a : t) (b : t) =
    match a, b with
    | Zero, Zero -> true
    | Pos x, Pos y | Neg x, Neg y -> Nat.equal x y
    | _ -> false

  let compare a b =
    match a, b with
    | Zero, Zero -> 0
    | Zero, Pos _ | Neg _, (Zero | Pos _) -> -1
    | Zero, Neg _ | Pos _, (Zero | Neg _) -> 1
    | Pos x, Pos y -> Nat.compare x y
    | Neg x, Neg y -> Nat.compare y x

  let neg = function Zero -> Zero | Pos m -> Neg m | Neg m -> Pos m
  let abs = function Neg m -> Pos m | n -> n

  let add a b =
    match a, b with
    | Zero, n | n, Zero -> n
    | Pos x, Pos y -> Pos (Nat.add x y)
    | Neg x, Neg y -> Neg (Nat.add x y)
    | Pos x, Neg y | Neg y, Pos x ->
      let c = Nat.compare x y in
      if c = 0 then Zero
      else if c > 0 then Pos (Nat.sub x y)
      else Neg (Nat.sub y x)

  let sub a b = add a (neg b)

  let mul a b =
    match a, b with
    | Zero, _ | _, Zero -> Zero
    | Pos x, Pos y | Neg x, Neg y -> Pos (Nat.mul x y)
    | Pos x, Neg y | Neg x, Pos y -> Neg (Nat.mul x y)

  let divmod a b =
    if is_zero b then raise Division_by_zero;
    let q, r = Nat.divmod (abs_nat a) (abs_nat b) in
    let quotient =
      if sign a * sign b >= 0 then of_nat q
      else neg (of_nat q)
    in
    let remainder = if sign a >= 0 then of_nat r else neg (of_nat r) in
    (quotient, remainder)

  let div a b = fst (divmod a b)
  let rem a b = snd (divmod a b)
  let gcd a b = of_nat (Nat.gcd (abs_nat a) (abs_nat b))

  let pow b e =
    if e < 0 then invalid_arg "Reference.Int.pow: negative exponent";
    let mag = Nat.pow (abs_nat b) e in
    match sign b with
    | 0 -> if e = 0 then one else Zero
    | 1 -> of_nat mag
    | _ -> if e land 1 = 0 then of_nat mag else neg (of_nat mag)

  let to_string = function
    | Zero -> "0"
    | Pos m -> Nat.to_string m
    | Neg m -> "-" ^ Nat.to_string m

  let of_string s =
    if s = "" then invalid_arg "Reference.Int.of_string: empty string"
    else if s.[0] = '-' then
      neg (of_nat (Nat.of_string (String.sub s 1 (String.length s - 1))))
    else if s.[0] = '+' then
      of_nat (Nat.of_string (String.sub s 1 (String.length s - 1)))
    else of_nat (Nat.of_string s)

  let to_float = function
    | Zero -> 0.0
    | Pos m -> Nat.to_float m
    | Neg m -> -.Nat.to_float m
end

module Q = struct
  type t = { num : Int.t; den : Int.t }
  (* Invariant: den > 0 and gcd(|num|, den) = 1. *)

  let make num den =
    if Int.is_zero den then raise Division_by_zero;
    if Int.is_zero num then { num = Int.zero; den = Int.one }
    else begin
      let num, den = if Int.sign den < 0 then (Int.neg num, Int.neg den) else (num, den) in
      let g = Int.gcd num den in
      { num = Int.div num g; den = Int.div den g }
    end

  let of_ints a b = make (Int.of_int a) (Int.of_int b)
  let of_int n = { num = Int.of_int n; den = Int.one }
  let of_bigint n = { num = n; den = Int.one }

  let zero = of_int 0
  let one = of_int 1

  let num q = q.num
  let den q = q.den

  let to_float q = Int.to_float q.num /. Int.to_float q.den

  let of_float_dyadic f =
    if not (Float.is_finite f) then invalid_arg "Reference.Q.of_float_dyadic: not finite";
    let mantissa, exponent = Float.frexp f in
    let scaled = Int64.to_int (Int64.of_float (Float.ldexp mantissa 53)) in
    let num = Int.of_int scaled in
    let e = exponent - 53 in
    if e >= 0 then make (Int.mul num (Int.pow (Int.of_int 2) e)) Int.one
    else make num (Int.pow (Int.of_int 2) (-e))

  let is_zero q = Int.is_zero q.num
  let is_integer q = Int.equal q.den Int.one
  let sign q = Int.sign q.num

  let equal a b = Int.equal a.num b.num && Int.equal a.den b.den

  let compare a b =
    Int.compare (Int.mul a.num b.den) (Int.mul b.num a.den)

  let neg q = { q with num = Int.neg q.num }
  let abs q = { q with num = Int.abs q.num }

  let inv q =
    if is_zero q then raise Division_by_zero;
    if Int.sign q.num > 0 then { num = q.den; den = q.num }
    else { num = Int.neg q.den; den = Int.neg q.num }

  let add a b =
    make
      (Int.add (Int.mul a.num b.den) (Int.mul b.num a.den))
      (Int.mul a.den b.den)

  let sub a b = add a (neg b)
  let mul a b = make (Int.mul a.num b.num) (Int.mul a.den b.den)
  let div a b = mul a (inv b)

  let floor q =
    let quot, rem = Int.divmod q.num q.den in
    if Int.is_zero rem || Int.sign q.num >= 0 then of_bigint quot
    else of_bigint (Int.sub quot Int.one)

  let ceil q = neg (floor (neg q))

  let of_string s =
    let s = String.trim s in
    if String.equal s "" then invalid_arg "Reference.Q.of_string: empty string";
    match String.index_opt s '/' with
    | Some i ->
      let n = Int.of_string (String.sub s 0 i) in
      let d = Int.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make n d
    | None ->
      (match String.index_opt s '.' with
       | None -> of_bigint (Int.of_string s)
       | Some i ->
         let whole = String.sub s 0 i in
         let frac = String.sub s (i + 1) (String.length s - i - 1) in
         if String.equal frac "" then invalid_arg (Printf.sprintf "Reference.Q.of_string: %S" s);
         let negative = String.length whole > 0 && Char.equal whole.[0] '-' in
         let whole_part =
           if String.equal whole "" || String.equal whole "-" || String.equal whole "+"
           then Int.zero
           else Int.abs (Int.of_string whole)
         in
         let scale = Int.pow (Int.of_int 10) (String.length frac) in
         let frac_part = Int.of_string frac in
         let total = Int.add (Int.mul whole_part scale) frac_part in
         let q = make total scale in
         if negative then neg q else q)

  let to_string q =
    if is_integer q then Int.to_string q.num
    else Int.to_string q.num ^ "/" ^ Int.to_string q.den

  let to_decimal_string q ~digits =
    if digits < 0 then invalid_arg "Reference.Q.to_decimal_string: negative digit count";
    let num = Int.abs_nat q.num and den = Int.abs_nat q.den in
    let whole, rem = Nat.divmod num den in
    let sign = if Int.sign q.num < 0 then "-" else "" in
    if digits = 0 then sign ^ Nat.to_string whole
    else begin
      let scaled = Nat.mul rem (Nat.pow (Nat.of_int 10) digits) in
      let frac, _ = Nat.divmod scaled den in
      let frac_str = Nat.to_string frac in
      let padded = String.make (digits - String.length frac_str) '0' ^ frac_str in
      sign ^ Nat.to_string whole ^ "." ^ padded
    end
end
