exception Violation of string

let enabled =
  ref
    (match Sys.getenv_opt "SELFISH_SANITIZE" with
     | Some ("1" | "true" | "yes") -> true
     | Some _ | None -> false)

let fail msg = raise (Violation ("SELFISH_SANITIZE: " ^ msg))
