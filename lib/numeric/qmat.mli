(** Exact dense matrices of rationals with Gaussian elimination.

    Sized for the small linear systems of game solving (tens of
    unknowns): the support-enumeration solver expresses each candidate
    equilibrium as a square linear system over exact rationals, so
    singularity and positivity tests are exact. *)

type t

(** [make rows cols q] is a [rows × cols] matrix filled with [q].
    @raise Invalid_argument when a dimension is non-positive. *)
val make : int -> int -> Rational.t -> t

(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)
val init : int -> int -> (int -> int -> Rational.t) -> t

(** [of_arrays a] copies a rectangular array of rows.
    @raise Invalid_argument on ragged or empty input. *)
val of_arrays : Rational.t array array -> t

val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rational.t
val set : t -> int -> int -> Rational.t -> unit
val copy : t -> t
val transpose : t -> t
val equal : t -> t -> bool

(** [hash m] composes {!Rational.hash} entrywise, so [equal a b]
    implies [hash a = hash b]; never falls back to [Hashtbl.hash]. *)
val hash : t -> int

(** [mul a b]. @raise Invalid_argument on dimension mismatch. *)
val mul : t -> t -> t

(** [mul_vec a v]. @raise Invalid_argument on dimension mismatch. *)
val mul_vec : t -> Qvec.t -> Qvec.t

(** [solve a b] solves [a x = b] for square [a] by Gaussian elimination
    with partial (first non-zero) pivoting: [Some x] when [a] is
    non-singular, [None] otherwise.
    @raise Invalid_argument when [a] is not square or [b] has the wrong
    dimension. *)
val solve : t -> Qvec.t -> Qvec.t option

(** [rank a] is the rank of [a]. *)
val rank : t -> int

(** [det a] is the determinant of square [a].
    @raise Invalid_argument when [a] is not square. *)
val det : t -> Rational.t

val pp : Format.formatter -> t -> unit
