open Numeric
open Model

type outcome = {
  moves : int;
  users_moved : int;
  seeded_classes : int;
  seeded_links : int;
  frontier_links : int;
  fallback : bool;
  nash : bool;
}

(* First defecting candidate among classes [lo, hi), visiting occupied
   (class, link) pairs in Cbr's first-defector order.  A clean pair —
   clean class on an untouched link — kept its latency, so from an
   equilibrium start any new improving move leads into a touched link:
   only those comparisons are made.  Dirty or touched pairs get the
   full O(m) defector check.  Read-only on the view, so domains may
   share it during a scan. *)
let find_candidate v touched dirty lo hi =
  let m = Cview.links v in
  let rec classes cls =
    if cls >= hi then None
    else begin
      let found = ref None in
      let src = ref 0 in
      while !found = None && !src < m do
        let s = !src in
        if Cview.assigned v cls s > 0 then begin
          if dirty.(cls) || touched.(s) then begin
            if Cview.is_defector v ~cls ~src:s then found := Some (cls, s)
          end
          else begin
            let l = ref 0 in
            while !found = None && !l < m do
              if touched.(!l) && Cview.improves v ~cls ~src:s !l then found := Some (cls, s);
              incr l
            done
          end
        end;
        incr src
      done;
      match !found with Some _ as r -> r | None -> classes (cls + 1)
    end
  in
  classes lo

let shard_bounds k domains =
  let d = max 1 (min domains k) in
  List.init d (fun i -> ((i * k) / d, ((i + 1) * k) / d))

(* Workers receive frozen copies of the seed sets; the view itself is
   not mutated while a scan runs.  Shards are contiguous ascending
   class blocks and each reports its first candidate, so the first
   [Some] in shard order is exactly the serial scan's candidate —
   bit-identical for every domain count. *)
let scan ~domains v touched dirty =
  let k = Cview.classes v in
  if domains <= 1 then find_candidate v touched dirty 0 k
  else begin
    let tc = Array.copy touched and dc = Array.copy dirty in
    Parallel.map ~domains (fun (lo, hi) -> find_candidate v tc dc lo hi) (shard_bounds k domains)
    |> List.find_map Fun.id
  end

(* Re-apply a solved class profile to the live view as undoable block
   moves: per class, drain surplus links into deficit links with a
   two-pointer pass.  Class totals agree by construction, so the pass
   always balances. *)
let apply_profile v target =
  let k = Cview.classes v and m = Cview.links v in
  for cls = 0 to k - 1 do
    let cur = Array.init m (fun l -> Cview.assigned v cls l) in
    let s = ref 0 and d = ref 0 in
    let advance () =
      while !s < m && cur.(!s) <= target.(cls).(!s) do
        incr s
      done;
      while !d < m && cur.(!d) >= target.(cls).(!d) do
        incr d
      done
    in
    advance ();
    while !s < m && !d < m do
      let count = min (cur.(!s) - target.(cls).(!s)) (target.(cls).(!d) - cur.(!d)) in
      Cview.move v ~cls ~src:!s ~dst:!d ~count;
      cur.(!s) <- cur.(!s) - count;
      cur.(!d) <- cur.(!d) + count;
      advance ()
    done
  done

let repair_batch ?(domains = 1) ?(max_steps = 1_000_000) v batch =
  if domains <= 0 then invalid_arg "Repair.repair_batch: domains must be positive";
  if max_steps <= 0 then invalid_arg "Repair.repair_batch: max_steps must be positive";
  let k = Cview.classes v and m = Cview.links v in
  List.iter (Mutation.apply v) batch;
  let touched = Array.make m false and dirty = Array.make k false in
  let touched_count = ref 0 in
  let touch l =
    if not touched.(l) then begin
      touched.(l) <- true;
      incr touched_count
    end
  in
  (* Seed after applying: occupancy only shrinks through departures,
     which touch their own link, so each reweight's load changes are
     covered by the class's post-batch occupancy plus the per-mutation
     links.  Capacity revisions leave every load in place — only the
     revised class can see them. *)
  List.iter
    (fun mu ->
      match mu with
      | Mutation.Arrive { cls; link; _ } | Mutation.Depart { cls; link; _ } ->
        dirty.(cls) <- true;
        touch link
      | Mutation.Reweight { cls; _ } ->
        dirty.(cls) <- true;
        for l = 0 to m - 1 do
          if Cview.assigned v cls l > 0 then touch l
        done
      | Mutation.Revise_capacity { cls; _ } -> dirty.(cls) <- true)
    batch;
  let seeded_classes = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 dirty in
  let seeded_links = !touched_count in
  let moves = ref 0 and users_moved = ref 0 in
  (* [true] when the restricted scan came back clean; [false] when the
     budget ran out.  Once the frontier saturates (every link touched)
     the restricted scan IS the full first-defector scan, i.e. exactly
     Cbr's policy running in place on the warm profile — no rebuild. *)
  let rec epochs () =
    if !moves >= max_steps then false
    else
      match scan ~domains v touched dirty with
      | None -> true
      | Some (cls, src) ->
        let dst, _ = Cview.best_response_for v ~cls ~src in
        let count = Cview.max_improving_block v ~cls ~src ~dst in
        Cview.move v ~cls ~src ~dst ~count;
        touch src;
        touch dst;
        dirty.(cls) <- true;
        incr moves;
        users_moved := !users_moved + count;
        epochs ()
  in
  let clean = epochs () in
  let fallback = (not clean) || not (Cview.is_nash v) in
  if fallback then begin
    let g = Cview.to_cgame v in
    let oc = Algo.Cbr.converge ~max_steps g (Cview.profile v) in
    if not oc.Algo.Cbr.converged then
      invalid_arg "Repair.repair_batch: fallback did not converge within max_steps";
    apply_profile v oc.Algo.Cbr.profile;
    moves := !moves + oc.Algo.Cbr.steps;
    users_moved := !users_moved + oc.Algo.Cbr.users_moved;
    if not (Cview.is_nash v) then
      invalid_arg "Repair.repair_batch: repaired profile is not a Nash equilibrium"
  end;
  {
    moves = !moves;
    users_moved = !users_moved;
    seeded_classes;
    seeded_links;
    frontier_links = !touched_count;
    fallback;
    nash = true;
  }

(* Per-user restricted scan, in slot order; departed slots are
   skipped. *)
let find_user_candidate v touched dirty n =
  let m = View.links v in
  let rec go i =
    if i >= n then None
    else if not (View.is_active v i) then go (i + 1)
    else begin
      let s = View.link v i in
      if dirty.(i) || touched.(s) then if View.is_defector v i then Some i else go (i + 1)
      else begin
        let cur = View.latency v i in
        let found = ref false in
        let l = ref 0 in
        while (not !found) && !l < m do
          if
            touched.(!l) && !l <> s
            && Rational.compare (View.latency_on_link v i !l) cur < 0
          then found := true;
          incr l
        done;
        if !found then Some i else go (i + 1)
      end
    end
  in
  go 0

let repair_view ?(max_steps = 1_000_000) v ~dirty_users ~touched_links =
  if max_steps <= 0 then invalid_arg "Repair.repair_view: max_steps must be positive";
  let n = View.users v and m = View.links v in
  let touched = Array.make m false and dirty = Array.make n false in
  let touched_count = ref 0 in
  let touch l =
    if l < 0 || l >= m then invalid_arg "Repair.repair_view: link out of range";
    if not touched.(l) then begin
      touched.(l) <- true;
      incr touched_count
    end
  in
  List.iter touch touched_links;
  let seeded_links = !touched_count in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Repair.repair_view: user out of range";
      dirty.(i) <- true)
    dirty_users;
  let seeded_classes = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 dirty in
  let moves = ref 0 in
  let rec epochs restricted =
    if !moves >= max_steps then false
    else begin
      let cand =
        if restricted then find_user_candidate v touched dirty n
        else begin
          let rec full i =
            if i >= n then None
            else if View.is_active v i && View.is_defector v i then Some i
            else full (i + 1)
          in
          full 0
        end
      in
      match cand with
      | None -> true
      | Some i ->
        let dst, _ = View.best_response_for v i in
        let s = View.link v i in
        View.move v i dst;
        touch s;
        touch dst;
        dirty.(i) <- true;
        incr moves;
        epochs restricted
    end
  in
  let clean = epochs true in
  let fallback = (not clean) || not (View.is_nash v) in
  if fallback then begin
    if not (epochs false) then
      invalid_arg "Repair.repair_view: did not converge within max_steps";
    if not (View.is_nash v) then
      invalid_arg "Repair.repair_view: repaired profile is not a Nash equilibrium"
  end;
  {
    moves = !moves;
    users_moved = !moves;
    seeded_classes;
    seeded_links;
    frontier_links = !touched_count;
    fallback;
    nash = true;
  }
