(** Mutations over a class-compressed game, and their batch log.

    The streaming service's workload is a sequence of {e batches}, each
    a list of mutations applied atomically before equilibrium is
    repaired ({!Repair}).  Mutations address classes of the live
    {!Model.Cview} cursor — arrivals and departures revise a class
    count on one link, reweights rewrite a class weight, capacity
    revisions rewrite one effective capacity — exactly the structural
    deltas the view supports.

    The log has a text form (one directive per line, ['#'] comments and
    blank lines ignored, same conventions as {!Model.Game_io}) and a
    binary form ({!Wire}, kind 5):

    {v
    batch
    arrive 0 2 5       # 5 class-0 users arrive on link 2
    depart 1 0 3       # 3 class-1 users leave link 0
    batch
    reweight 0 7/2     # class 0's weight becomes 7/2
    capacity 1 2 9     # class 1's capacity on link 2 becomes 9
    v}

    Every mutation line must follow a [batch] directive; a [batch]
    directive with no mutations is a legal empty batch. *)

type t =
  | Arrive of { cls : int; link : int; count : int }
  | Depart of { cls : int; link : int; count : int }
  | Reweight of { cls : int; weight : Numeric.Rational.t }
  | Revise_capacity of { cls : int; link : int; cap : Numeric.Rational.t }

(** A log is a sequence of batches. *)
type log = t list list

(** [apply v mu] applies [mu] to the live view via the matching
    structural delta ({!Model.Cview.revise_count},
    {!Model.Cview.revise_weight}, {!Model.Cview.revise_capacity}).
    @raise Invalid_argument on a non-positive arrive/depart count or
    whenever the underlying delta rejects the revision. *)
val apply : Model.Cview.t -> t -> unit

(** [parse text] reads the text form.
    @raise Invalid_argument with a message of the form
    ["Mutation: line <n>: ..."] on malformed input, and
    ["Mutation: need at least one 'batch' directive"] on a log with no
    batches. *)
val parse : string -> log

(** [parse_file path] is {!parse} on the file's contents. *)
val parse_file : string -> log

(** [render log] is the canonical text form; [parse (render log) = log]. *)
val render : log -> string
