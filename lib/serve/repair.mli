(** Incremental equilibrium repair after a mutation batch.

    Re-solving from scratch after every mutation throws away almost
    all of the work: a small batch perturbs the loads of a handful of
    links, so only users who can {e see} the perturbation — members of
    mutated classes plus users on touched links — can have a changed
    best response.  {!repair_batch} applies a batch to a live
    {!Model.Cview} cursor positioned at an equilibrium and repairs it
    locally:

    - {b Seeding.}  Each mutation dirties its class; arrivals and
      departures touch their link, and a reweight touches every link
      the class occupies (their loads changed).  A capacity revision
      dirties its class only — loads are unaffected, so no other
      class's latencies move.
    - {b Restricted epochs.}  The scan visits occupied (class, link)
      pairs in the same class-ascending, link-ascending order as
      {!Algo.Cbr}'s first-defector policy, but a {e clean} pair — clean
      class on an untouched link — only checks moves {e into} touched
      links: starting from an equilibrium, its own latency is
      unchanged, so any new improving move must target a link whose
      load dropped.  Dirty or touched pairs get the full O(m) defector
      check.  Each block move marks its source and destination links
      touched ({e frontier expansion}) and re-enters the scan.
    - {b Saturation and fallback.}  When the frontier saturates (every
      link touched) the restricted scan degrades to exactly
      {!Algo.Cbr}'s full first-defector scan, i.e. full best-response
      convergence running in place on the warm profile.  When the move
      budget runs out, or a clean scan fails the final verification
      (non-equilibrium start), the repair falls back to
      {!Algo.Cbr.converge} on {!Model.Cview.to_cgame} from the current
      profile and re-applies the result to the live view through
      undoable block moves.
    - {b Verification.}  Every return passes the exact
      {!Model.Cview.is_nash}; a repair that cannot reach equilibrium
      raises instead of returning.

    Starting from a genuine equilibrium the restricted scan is sound —
    a clean scan implies Nash — and the final [is_nash] doubles as the
    CI-gated verdict.  From an arbitrary (non-Nash) start the scan may
    terminate early; the verification then routes into the fallback,
    so the result is an equilibrium regardless. *)

type outcome = {
  moves : int;  (** block moves performed (fallback steps included) *)
  users_moved : int;  (** users carried by those moves *)
  seeded_classes : int;  (** classes dirtied by the batch itself *)
  seeded_links : int;  (** links touched by the batch itself *)
  frontier_links : int;  (** touched links when the scan finished *)
  fallback : bool;  (** full re-solve fallback was taken *)
  nash : bool;  (** exact final verdict; [true] on every return *)
}

(** [repair_batch ?domains ?max_steps v batch] applies [batch] to [v]
    (via {!Mutation.apply}, in order) and repairs equilibrium as
    described above.  With [domains > 1] each defector scan shards the
    class range across domains — the view is only read during a scan,
    and the first candidate in shard order equals the serial scan's
    candidate, so the repair is bit-identical for every domain count.
    @raise Invalid_argument when a mutation is rejected, [domains <= 0],
    [max_steps <= 0] (default [1_000_000]), or the fallback fails to
    converge within [max_steps]. *)
val repair_batch :
  ?domains:int -> ?max_steps:int -> Model.Cview.t -> Mutation.t list -> outcome

(** [repair_view ?max_steps v ~dirty_users ~touched_links] is the
    per-user analogue over a {!Model.View} cursor: the caller applies
    its structural deltas directly ({!Model.View.add_user} and
    friends) and states which users and links they perturbed.  Runs the
    same restricted first-defector scan (departed slots are skipped;
    [moves = users_moved]); the fallback is the unrestricted scan on
    the same view.  @raise Invalid_argument on an index out of range,
    [max_steps <= 0], or a repair that exceeds [max_steps]. *)
val repair_view :
  ?max_steps:int -> Model.View.t -> dirty_users:int list -> touched_links:int list -> outcome
