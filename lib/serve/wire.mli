(** Compact binary wire format for games, profiles and mutation logs.

    The binary companion to {!Model.Game_io}'s text format: every
    payload starts with the 4-byte magic ["SRWF"], a little-endian
    [u16] format version and a [u8] payload kind, followed by a
    length-prefixed little-endian body.  Scalars are exact rationals
    encoded as two arbitrary-precision integers (sign byte, [u32] byte
    count, minimal little-endian magnitude), so the encoding is
    lossless: decoding an encoded value is the identity, and
    re-encoding a decoded payload reproduces the input bytes.

    Like the text writers, the game encoders store the reduced
    effective-capacity form (plus the presence line's worth of data
    under participation, interval endpoints under strict) — faithful to
    every latency, and byte-stable under round-trips through the text
    parser.  Games mixing uncertainty backends across users have no
    wire form.

    Decoders validate eagerly and raise [Invalid_argument] with
    offset-numbered messages in {!Model.Game_io}'s style:
    ["Wire: offset <n>: ..."] — truncated input, bad magic, unsupported
    version, unknown or mismatched payload kind, malformed integers,
    and trailing bytes are all pinned errors. *)

type kind = Game | Cgame | Profile | Cprofile | Log

val kind_name : kind -> string

(** The 4-byte magic prefix, ["SRWF"]. *)
val magic : string

(** The format version this library reads and writes. *)
val version : int

(** [is_wire s] holds when [s] starts with the wire {!magic} — the
    cheap test CLI tools use to tell binary payloads from text files. *)
val is_wire : string -> bool

(** [peek_kind s] validates the header only (magic, version) and
    returns the payload kind without decoding the body. *)
val peek_kind : string -> kind

val encode_game : Model.Game.t -> string
val decode_game : string -> Model.Game.t
val encode_cgame : Model.Cgame.t -> string
val decode_cgame : string -> Model.Cgame.t
val encode_profile : int array -> string
val decode_profile : string -> int array
val encode_cprofile : Model.Cgame.profile -> string
val decode_cprofile : string -> Model.Cgame.profile
val encode_log : Mutation.log -> string
val decode_log : string -> Mutation.log
