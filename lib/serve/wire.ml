open Numeric

type kind = Game | Cgame | Profile | Cprofile | Log

let magic = "SRWF"
let version = 1

let kind_byte = function Game -> 1 | Cgame -> 2 | Profile -> 3 | Cprofile -> 4 | Log -> 5

let kind_name = function
  | Game -> "game"
  | Cgame -> "class game"
  | Profile -> "profile"
  | Cprofile -> "class profile"
  | Log -> "mutation log"

let fail_at pos msg = invalid_arg (Printf.sprintf "Wire: offset %d: %s" pos msg)

let kind_of_byte pos = function
  | 1 -> Game
  | 2 -> Cgame
  | 3 -> Profile
  | 4 -> Cprofile
  | 5 -> Log
  | b -> fail_at pos (Printf.sprintf "unknown payload kind %d" b)

(* ------------------------------------------------------------------ *)
(* Encoding primitives                                                 *)

let add_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let add_u16 buf n =
  add_u8 buf n;
  add_u8 buf (n lsr 8)

let add_u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Wire: value %d out of u32 range" n);
  add_u8 buf n;
  add_u8 buf (n lsr 8);
  add_u8 buf (n lsr 16);
  add_u8 buf (n lsr 24)

(* Sign byte (0 non-negative, 1 negative), u32 byte count, minimal
   little-endian magnitude.  Zero is sign 0, length 0. *)
let add_bigint buf n =
  add_u8 buf (if Bigint.sign n < 0 then 1 else 0);
  let mag = Buffer.create 8 in
  (match Bigint.to_int_opt n with
   | Some v ->
     let v = ref (abs v) in
     while !v > 0 do
       Buffer.add_char mag (Char.chr (!v land 0xff));
       v := !v lsr 8
     done
   | None ->
     let b256 = Bigint.of_int 256 in
     let v = ref (Bigint.abs n) in
     while not (Bigint.is_zero !v) do
       let q, r = Bigint.divmod !v b256 in
       Buffer.add_char mag (Char.chr (Bigint.to_int_exn r));
       v := q
     done);
  add_u32 buf (Buffer.length mag);
  Buffer.add_buffer buf mag

let add_rational buf q =
  add_bigint buf (Rational.num q);
  add_bigint buf (Rational.den q)

let header buf k =
  Buffer.add_string buf magic;
  add_u16 buf version;
  add_u8 buf (kind_byte k)

(* ------------------------------------------------------------------ *)
(* Decoding primitives                                                 *)

type dec = { data : string; mutable pos : int }

let need d n =
  if d.pos + n > String.length d.data then
    fail_at d.pos
      (Printf.sprintf "truncated input (need %d more bytes, %d available)" n
         (String.length d.data - d.pos))

let u8 d =
  need d 1;
  let b = Char.code d.data.[d.pos] in
  d.pos <- d.pos + 1;
  b

let u16 d =
  need d 2;
  let b0 = Char.code d.data.[d.pos] and b1 = Char.code d.data.[d.pos + 1] in
  d.pos <- d.pos + 2;
  b0 lor (b1 lsl 8)

let u32 d =
  need d 4;
  let b i = Char.code d.data.[d.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  d.pos <- d.pos + 4;
  v

(* Element counts are read before their elements; any count larger
   than the remaining payload is corrupt, and rejecting it here keeps
   allocation proportional to the input size. *)
let checked_count d what n =
  if n > String.length d.data - d.pos then
    fail_at d.pos (Printf.sprintf "%s count %d exceeds remaining payload" what n);
  n

let dec_bigint d =
  let spos = d.pos in
  let sign = u8 d in
  if sign > 1 then fail_at spos (Printf.sprintf "bad sign byte %d" sign);
  let len = checked_count d "magnitude byte" (u32 d) in
  need d len;
  if len > 0 && d.data.[d.pos + len - 1] = '\000' then
    fail_at (d.pos + len - 1) "non-minimal integer encoding";
  let mag =
    if len = 0 then Bigint.zero
    else if len <= 7 then begin
      let n = ref 0 in
      for i = len - 1 downto 0 do
        n := (!n lsl 8) lor Char.code d.data.[d.pos + i]
      done;
      Bigint.of_int !n
    end
    else begin
      let b256 = Bigint.of_int 256 in
      let acc = ref Bigint.zero in
      for i = len - 1 downto 0 do
        acc := Bigint.add (Bigint.mul !acc b256) (Bigint.of_int (Char.code d.data.[d.pos + i]))
      done;
      !acc
    end
  in
  d.pos <- d.pos + len;
  if sign = 1 && Bigint.is_zero mag then fail_at spos "negative zero";
  if sign = 1 then Bigint.neg mag else mag

let dec_rational d =
  let num = dec_bigint d in
  let dpos = d.pos in
  let den = dec_bigint d in
  if Bigint.sign den <= 0 then fail_at dpos "denominator must be positive";
  Rational.make num den

(* [f] is applied at indices 0 .. n-1 in order (decoders carry state in
   [d.pos], so the unspecified evaluation order of [Array.init] would
   scramble the stream). *)
let read_array n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

let open_dec ?expect s =
  if String.length s < 4 then fail_at 0 "truncated input (expected 4-byte magic)";
  if String.sub s 0 4 <> magic then fail_at 0 "bad magic (not a selfish_routing wire payload)";
  let d = { data = s; pos = 4 } in
  let v = u16 d in
  if v <> version then
    fail_at 4 (Printf.sprintf "unsupported wire version %d (expected %d)" v version);
  let kpos = d.pos in
  let k = kind_of_byte kpos (u8 d) in
  (match expect with
   | Some e when e <> k ->
     fail_at kpos
       (Printf.sprintf "expected %s payload (kind %d), found %s (kind %d)" (kind_name e)
          (kind_byte e) (kind_name k) (kind_byte k))
   | _ -> ());
  (d, k)

let finish d value =
  if d.pos <> String.length d.data then fail_at d.pos "trailing bytes after payload";
  value

let is_wire s = String.length s >= 4 && String.sub s 0 4 = magic

let peek_kind s =
  let _, k = open_dec s in
  k

(* ------------------------------------------------------------------ *)
(* Games                                                               *)

let backend_byte = function
  | Model.Uncertainty.Bayesian -> 0
  | Model.Uncertainty.Participation -> 1
  | Model.Uncertainty.Strict -> 2

(* Mirrors Game_io's writer check: a payload stores one backend for the
   whole population. *)
let uniform_kind ~what count uncertainty_of =
  let k0 = Model.Uncertainty.kind (uncertainty_of 0) in
  for i = 1 to count - 1 do
    if not (Model.Uncertainty.equal_kind k0 (Model.Uncertainty.kind (uncertainty_of i))) then
      invalid_arg (what ^ ": cannot serialise mixed uncertainty backends")
  done;
  k0

let add_strict_row buf m u =
  match Model.Uncertainty.strict_bounds u with
  | None -> assert false (* only called on Strict backends *)
  | Some (lo, hi) ->
    for l = 0 to m - 1 do
      add_rational buf (Model.State.capacity lo l);
      add_rational buf (Model.State.capacity hi l)
    done

let wrap_make f = try f () with Invalid_argument msg -> invalid_arg ("Wire: " ^ msg)

let dec_strict_row d m =
  let ivs =
    read_array m (fun _ ->
        let lo = dec_rational d in
        let hi = dec_rational d in
        (lo, hi))
  in
  wrap_make (fun () -> Model.Uncertainty.strict_of_intervals ivs)

let participation_uncertainty probs rows =
  wrap_make (fun () ->
      Array.map2
        (fun p row ->
          Model.Uncertainty.participation ~presence:p
            (Model.Belief.certain (Model.State.make row)))
        probs rows)

let encode_game g =
  let n = Model.Game.users g and m = Model.Game.links g in
  let k = uniform_kind ~what:"Wire.encode_game" n (Model.Game.uncertainty g) in
  let buf = Buffer.create 256 in
  header buf Game;
  add_u8 buf (backend_byte k);
  add_u32 buf n;
  add_u32 buf m;
  for i = 0 to n - 1 do
    add_rational buf (Model.Game.weight g i)
  done;
  (match k with
   | Model.Uncertainty.Participation ->
     for i = 0 to n - 1 do
       add_rational buf (Model.Uncertainty.presence (Model.Game.uncertainty g i))
     done
   | _ -> ());
  (match k with
   | Model.Uncertainty.Strict ->
     for i = 0 to n - 1 do
       add_strict_row buf m (Model.Game.uncertainty g i)
     done
   | _ ->
     for i = 0 to n - 1 do
       let row = Model.Game.capacity_row g i in
       for l = 0 to m - 1 do
         add_rational buf row.(l)
       done
     done);
  Buffer.contents buf

let decode_game s =
  let d, _ = open_dec ~expect:Game s in
  let bpos = d.pos in
  let backend = u8 d in
  if backend > 2 then fail_at bpos (Printf.sprintf "unknown backend byte %d" backend);
  let n = checked_count d "user" (u32 d) in
  let m = checked_count d "link" (u32 d) in
  let weights = read_array n (fun _ -> dec_rational d) in
  let presence = if backend = 1 then Some (read_array n (fun _ -> dec_rational d)) else None in
  let g =
    if backend = 2 then begin
      let uncertainty = read_array n (fun _ -> dec_strict_row d m) in
      wrap_make (fun () -> Model.Game.make_uncertain ~weights ~uncertainty)
    end
    else begin
      let rows = read_array n (fun _ -> read_array m (fun _ -> dec_rational d)) in
      match presence with
      | None -> wrap_make (fun () -> Model.Game.of_capacities ~weights rows)
      | Some probs ->
        let uncertainty = participation_uncertainty probs rows in
        wrap_make (fun () -> Model.Game.make_uncertain ~weights ~uncertainty)
    end
  in
  finish d g

let encode_cgame g =
  let k = Model.Cgame.classes g and m = Model.Cgame.links g in
  let kind = uniform_kind ~what:"Wire.encode_cgame" k (Model.Cgame.uncertainty g) in
  let buf = Buffer.create 256 in
  header buf Cgame;
  add_u8 buf (backend_byte kind);
  add_u32 buf k;
  add_u32 buf m;
  for c = 0 to k - 1 do
    add_u32 buf (Model.Cgame.count g c)
  done;
  for c = 0 to k - 1 do
    add_rational buf (Model.Cgame.weight g c)
  done;
  (match kind with
   | Model.Uncertainty.Participation ->
     for c = 0 to k - 1 do
       add_rational buf (Model.Uncertainty.presence (Model.Cgame.uncertainty g c))
     done
   | _ -> ());
  (match kind with
   | Model.Uncertainty.Strict ->
     for c = 0 to k - 1 do
       add_strict_row buf m (Model.Cgame.uncertainty g c)
     done
   | _ ->
     for c = 0 to k - 1 do
       let row = Model.Cgame.capacity_row g c in
       for l = 0 to m - 1 do
         add_rational buf row.(l)
       done
     done);
  Buffer.contents buf

let decode_cgame s =
  let d, _ = open_dec ~expect:Cgame s in
  let bpos = d.pos in
  let backend = u8 d in
  if backend > 2 then fail_at bpos (Printf.sprintf "unknown backend byte %d" backend);
  let k = checked_count d "class" (u32 d) in
  let m = checked_count d "link" (u32 d) in
  let counts = read_array k (fun _ -> u32 d) in
  let weights = read_array k (fun _ -> dec_rational d) in
  let presence = if backend = 1 then Some (read_array k (fun _ -> dec_rational d)) else None in
  let g =
    if backend = 2 then begin
      let uncertainty = read_array k (fun _ -> dec_strict_row d m) in
      wrap_make (fun () -> Model.Cgame.make_uncertain ~counts ~weights ~uncertainty)
    end
    else begin
      let rows = read_array k (fun _ -> read_array m (fun _ -> dec_rational d)) in
      match presence with
      | None -> wrap_make (fun () -> Model.Cgame.of_capacities ~counts ~weights rows)
      | Some probs ->
        let uncertainty = participation_uncertainty probs rows in
        wrap_make (fun () -> Model.Cgame.make_uncertain ~counts ~weights ~uncertainty)
    end
  in
  finish d g

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)

let encode_profile p =
  let buf = Buffer.create 64 in
  header buf Profile;
  add_u32 buf (Array.length p);
  Array.iter (fun l -> add_u32 buf l) p;
  Buffer.contents buf

let decode_profile s =
  let d, _ = open_dec ~expect:Profile s in
  let n = checked_count d "user" (u32 d) in
  finish d (read_array n (fun _ -> u32 d))

let encode_cprofile x =
  let buf = Buffer.create 64 in
  header buf Cprofile;
  let k = Array.length x in
  add_u32 buf k;
  add_u32 buf (if k = 0 then 0 else Array.length x.(0));
  Array.iter (fun row -> Array.iter (fun n -> add_u32 buf n) row) x;
  Buffer.contents buf

let decode_cprofile s =
  let d, _ = open_dec ~expect:Cprofile s in
  let k = checked_count d "class" (u32 d) in
  let m = checked_count d "link" (u32 d) in
  finish d (read_array k (fun _ -> read_array m (fun _ -> u32 d)))

(* ------------------------------------------------------------------ *)
(* Mutation logs                                                       *)

let encode_log log =
  let buf = Buffer.create 128 in
  header buf Log;
  add_u32 buf (List.length log);
  List.iter
    (fun batch ->
      add_u32 buf (List.length batch);
      List.iter
        (fun mu ->
          match mu with
          | Mutation.Arrive { cls; link; count } ->
            add_u8 buf 0;
            add_u32 buf cls;
            add_u32 buf link;
            add_u32 buf count
          | Mutation.Depart { cls; link; count } ->
            add_u8 buf 1;
            add_u32 buf cls;
            add_u32 buf link;
            add_u32 buf count
          | Mutation.Reweight { cls; weight } ->
            add_u8 buf 2;
            add_u32 buf cls;
            add_rational buf weight
          | Mutation.Revise_capacity { cls; link; cap } ->
            add_u8 buf 3;
            add_u32 buf cls;
            add_u32 buf link;
            add_rational buf cap)
        batch)
    log;
  Buffer.contents buf

let decode_log s =
  let d, _ = open_dec ~expect:Log s in
  let npos = d.pos in
  let nbatches = checked_count d "batch" (u32 d) in
  if nbatches = 0 then fail_at npos "mutation log needs at least one batch";
  let batches =
    read_array nbatches (fun _ ->
        let nmut = checked_count d "mutation" (u32 d) in
        read_array nmut (fun _ ->
            let opos = d.pos in
            match u8 d with
            | 0 ->
              let cls = u32 d in
              let link = u32 d in
              let count = u32 d in
              if count = 0 then fail_at opos "arrive count must be positive";
              Mutation.Arrive { cls; link; count }
            | 1 ->
              let cls = u32 d in
              let link = u32 d in
              let count = u32 d in
              if count = 0 then fail_at opos "depart count must be positive";
              Mutation.Depart { cls; link; count }
            | 2 ->
              let cls = u32 d in
              let weight = dec_rational d in
              if Rational.sign weight <= 0 then fail_at opos "weight must be positive";
              Mutation.Reweight { cls; weight }
            | 3 ->
              let cls = u32 d in
              let link = u32 d in
              let cap = dec_rational d in
              if Rational.sign cap <= 0 then fail_at opos "capacity must be positive";
              Mutation.Revise_capacity { cls; link; cap }
            | op -> fail_at opos (Printf.sprintf "unknown mutation opcode %d" op)))
  in
  finish d (Array.to_list (Array.map Array.to_list batches))
