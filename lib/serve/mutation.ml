open Numeric
open Model

type t =
  | Arrive of { cls : int; link : int; count : int }
  | Depart of { cls : int; link : int; count : int }
  | Reweight of { cls : int; weight : Rational.t }
  | Revise_capacity of { cls : int; link : int; cap : Rational.t }

type log = t list list

let apply v = function
  | Arrive { cls; link; count } ->
    if count <= 0 then invalid_arg "Mutation.apply: arrive count must be positive";
    Cview.revise_count v ~cls ~link ~delta:count
  | Depart { cls; link; count } ->
    if count <= 0 then invalid_arg "Mutation.apply: depart count must be positive";
    Cview.revise_count v ~cls ~link ~delta:(-count)
  | Reweight { cls; weight } -> Cview.revise_weight v ~cls weight
  | Revise_capacity { cls; link; cap } -> Cview.revise_capacity v ~cls ~link cap

let fail_line lineno msg = invalid_arg (Printf.sprintf "Mutation: line %d: %s" lineno msg)

let split_words s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_int lineno what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | Some _ -> fail_line lineno (Printf.sprintf "%s must be non-negative" what)
  | None -> fail_line lineno (Printf.sprintf "bad %s %S" what s)

let parse_positive lineno what s =
  let n = parse_int lineno what s in
  if n = 0 then fail_line lineno (Printf.sprintf "%s must be positive" what);
  n

let parse_rational lineno s =
  try Rational.of_string s
  with Invalid_argument _ -> fail_line lineno (Printf.sprintf "bad number %S" s)

let parse text =
  (* [batches] holds completed batches reversed; [cur] the open batch
     reversed, [None] before the first 'batch' directive. *)
  let batches = ref [] and cur = ref None in
  let close () = match !cur with None -> () | Some b -> batches := List.rev b :: !batches in
  let push lineno mu =
    match !cur with
    | None -> fail_line lineno "mutation before first 'batch' directive"
    | Some b -> cur := Some (mu :: b)
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        match split_words line with
        | [ "batch" ] ->
          close ();
          cur := Some []
        | "batch" :: _ -> fail_line lineno "expected: batch (no arguments)"
        | [ "arrive"; cls; link; count ] ->
          push lineno
            (Arrive
               {
                 cls = parse_int lineno "class" cls;
                 link = parse_int lineno "link" link;
                 count = parse_positive lineno "count" count;
               })
        | "arrive" :: _ -> fail_line lineno "expected: arrive <class> <link> <count>"
        | [ "depart"; cls; link; count ] ->
          push lineno
            (Depart
               {
                 cls = parse_int lineno "class" cls;
                 link = parse_int lineno "link" link;
                 count = parse_positive lineno "count" count;
               })
        | "depart" :: _ -> fail_line lineno "expected: depart <class> <link> <count>"
        | [ "reweight"; cls; weight ] ->
          let weight = parse_rational lineno weight in
          if Rational.sign weight <= 0 then fail_line lineno "weight must be positive";
          push lineno (Reweight { cls = parse_int lineno "class" cls; weight })
        | "reweight" :: _ -> fail_line lineno "expected: reweight <class> <weight>"
        | [ "capacity"; cls; link; cap ] ->
          let cap = parse_rational lineno cap in
          if Rational.sign cap <= 0 then fail_line lineno "capacity must be positive";
          push lineno
            (Revise_capacity
               { cls = parse_int lineno "class" cls; link = parse_int lineno "link" link; cap })
        | "capacity" :: _ -> fail_line lineno "expected: capacity <class> <link> <capacity>"
        | word :: _ -> fail_line lineno (Printf.sprintf "unknown directive %S" word)
        | [] -> ()
      end)
    (String.split_on_char '\n' text);
  close ();
  match List.rev !batches with
  | [] -> invalid_arg "Mutation: need at least one 'batch' directive"
  | log -> log

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let render log =
  let buf = Buffer.create 256 in
  List.iter
    (fun batch ->
      Buffer.add_string buf "batch\n";
      List.iter
        (fun mu ->
          Buffer.add_string buf
            (match mu with
             | Arrive { cls; link; count } -> Printf.sprintf "arrive %d %d %d\n" cls link count
             | Depart { cls; link; count } -> Printf.sprintf "depart %d %d %d\n" cls link count
             | Reweight { cls; weight } ->
               Printf.sprintf "reweight %d %s\n" cls (Rational.to_string weight)
             | Revise_capacity { cls; link; cap } ->
               Printf.sprintf "capacity %d %d %s\n" cls link (Rational.to_string cap)))
        batch)
    log;
  Buffer.contents buf
