open Model
open Numeric

type policy = First_defector | Last_defector | Best_improvement

type outcome = { profile : Pure.profile; steps : int; converged : bool }

let gain g ?initial p i =
  let current = Pure.latency g ?initial p i in
  let _, best = Pure.best_response g ?initial p i in
  Rational.sub current best

let step g ?initial ~policy p =
  let defectors = Pure.defectors g ?initial p in
  match defectors with
  | [] -> None
  | first :: _ ->
    let mover =
      match policy with
      | First_defector -> first
      | Last_defector -> List.nth defectors (List.length defectors - 1)
      | Best_improvement ->
        let better a b = Rational.compare (gain g ?initial p a) (gain g ?initial p b) > 0 in
        List.fold_left (fun best d -> if better d best then d else best) first defectors
    in
    let target, _ = Pure.best_response g ?initial p mover in
    let next = Array.copy p in
    next.(mover) <- target;
    Some next

let converge g ?initial ?(policy = First_defector) ~max_steps p =
  let rec go p steps =
    if steps >= max_steps then { profile = p; steps; converged = Pure.is_nash g ?initial p }
    else
      match step g ?initial ~policy p with
      | None -> { profile = p; steps; converged = true }
      | Some next -> go next (steps + 1)
  in
  go (Array.copy p) 0

(* Cycle detection keys whole pure profiles.  The table is functorized
   with an explicit int-array equality and hash so no lookup falls back
   to the polymorphic [Hashtbl] structural hash (banned by the R1
   exactness lint in lib/algo); the semantics are identical because a
   profile is a plain int array. *)
module Profile_table = Hashtbl.Make (struct
  type t = Pure.profile

  let equal (a : Pure.profile) (b : Pure.profile) =
    Array.length a = Array.length b
    &&
    let rec eq i = i < 0 || (Int.equal a.(i) b.(i) && eq (i - 1)) in
    eq (Array.length a - 1)

  let hash (p : Pure.profile) =
    Array.fold_left (fun h l -> (((h * 31) + l) + 1) land max_int) (Array.length p) p
end)

let random_better_response_walk g ~rng ~max_steps p =
  let seen = Profile_table.create 64 in
  let rec go p steps =
    match Profile_table.find_opt seen p with
    | Some at -> ({ profile = p; steps; converged = false }, Some (steps - at))
    | None ->
      Profile_table.add seen (Array.copy p) steps;
      if steps >= max_steps then ({ profile = p; steps; converged = Pure.is_nash g p }, None)
      else begin
        (* Collect every improving (user, link) move and pick one
           uniformly: better-response, not best-response. *)
        let moves = ref [] in
        for i = 0 to Game.users g - 1 do
          List.iter (fun l -> moves := (i, l) :: !moves) (Pure.improving_moves g p i)
        done;
        match !moves with
        | [] -> ({ profile = p; steps; converged = true }, None)
        | moves ->
          let i, l = Prng.Rng.pick_list rng moves in
          let next = Array.copy p in
          next.(i) <- l;
          go next (steps + 1)
      end
  in
  go (Array.copy p) 0
