open Model
open Numeric

type policy = First_defector | Last_defector | Best_improvement

type outcome = { profile : Pure.profile; steps : int; converged : bool }

(* One pass over the users picks the mover and its best-response target
   under [policy].  Each user costs one O(m) [best_response_for] scan
   against the view's O(1) loads; the seed path listed the defectors
   first and then recomputed the best response of the chosen one — two
   O(n·m·n) traversals per step.  [First_defector] exits at the first
   hit; [Last_defector] remembers the latest hit in the same single
   pass (the seed walked the whole defector list a second time with
   [List.nth]).  [Best_improvement] keeps the first user attaining the
   strictly largest gain, matching the seed's fold tie-breaking. *)
let choose_move v ~policy =
  let n = View.users v in
  match policy with
  | First_defector ->
    let rec scan i =
      if i >= n then None
      else
        let target, best = View.best_response_for v i in
        if Rational.compare best (View.latency v i) < 0 then Some (i, target) else scan (i + 1)
    in
    scan 0
  | Last_defector ->
    let found = ref None in
    for i = 0 to n - 1 do
      let target, best = View.best_response_for v i in
      if Rational.compare best (View.latency v i) < 0 then found := Some (i, target)
    done;
    !found
  | Best_improvement ->
    let found = ref None and best_gain = ref Rational.zero in
    for i = 0 to n - 1 do
      let target, best = View.best_response_for v i in
      let gain = Rational.sub (View.latency v i) best in
      if Rational.sign gain > 0 && Rational.compare gain !best_gain > 0 then begin
        found := Some (i, target);
        best_gain := gain
      end
    done;
    !found

let step g ?initial ~policy p =
  let v = View.of_profile g ?initial p in
  match choose_move v ~policy with
  | None -> None
  | Some (mover, target) ->
    let next = Array.copy p in
    next.(mover) <- target;
    Some next

let converge g ?initial ?(policy = First_defector) ~max_steps p =
  let v = View.of_profile g ?initial p in
  let rec go steps =
    if steps >= max_steps then { profile = View.profile v; steps; converged = View.is_nash v }
    else
      match choose_move v ~policy with
      | None -> { profile = View.profile v; steps; converged = true }
      | Some (mover, target) ->
        View.move v mover target;
        go (steps + 1)
  in
  go 0

(* Cycle detection keys whole pure profiles.  The table is functorized
   with an explicit int-array equality and hash so no lookup falls back
   to the polymorphic [Hashtbl] structural hash (banned by the R1
   exactness lint in lib/algo); the semantics are identical because a
   profile is a plain int array. *)
module Profile_table = Hashtbl.Make (struct
  type t = Pure.profile

  let equal (a : Pure.profile) (b : Pure.profile) =
    Array.length a = Array.length b
    &&
    let rec eq i = i < 0 || (Int.equal a.(i) b.(i) && eq (i - 1)) in
    eq (Array.length a - 1)

  let hash (p : Pure.profile) =
    Array.fold_left (fun h l -> (((h * 31) + l) + 1) land max_int) (Array.length p) p
end)

let random_better_response_walk g ~rng ~max_steps p =
  let seen = Profile_table.create 64 in
  let v = View.of_profile g p in
  let rec go steps =
    let p = View.profile v in
    match Profile_table.find_opt seen p with
    | Some at -> ({ profile = p; steps; converged = false }, Some (steps - at))
    | None ->
      Profile_table.add seen p steps;
      if steps >= max_steps then ({ profile = p; steps; converged = View.is_nash v }, None)
      else begin
        (* Collect every improving (user, link) move and pick one
           uniformly: better-response, not best-response.  The move list
           is built exactly as before — ascending links per user,
           prepended over ascending users — so the RNG draw protocol is
           unchanged. *)
        let moves = ref [] in
        for i = 0 to Game.users g - 1 do
          List.iter (fun l -> moves := (i, l) :: !moves) (View.improving_moves v i)
        done;
        match !moves with
        | [] -> ({ profile = p; steps; converged = true }, None)
        | moves ->
          let i, l = Prng.Rng.pick_list rng moves in
          View.move v i l;
          go (steps + 1)
      end
  in
  go 0
