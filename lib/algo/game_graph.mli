open Model

(** Explicit game graphs over all [m^n] pure profiles.

    The paper's game graph (Section 3.1) has the game's states as nodes
    and an edge [s → s'] whenever a defecting user's move transforms [s]
    into [s'].  We build two variants: the {e best-response} graph
    (defectors move only to latency-minimising links — the graph used to
    prove the n = 3 result) and the {e better-response} graph (any
    improving move — an ordinal potential game has no cycle here). *)

type move_kind = Best_response | Better_response

(** [encode g p] bijectively maps a profile to an integer in
    [0, m^n); [decode g k] inverts it.
    @raise Invalid_argument when [m^n] overflows the native int range
    (the message names the offending [m] and [n]) — without the guard
    the mixed-radix id would silently wrap and stop being injective. *)
val encode : Game.t -> Pure.profile -> int

val decode : Game.t -> int -> Pure.profile

(** [successors g ?initial ~kind p] lists the profiles reachable by one
    move of the given kind (optionally with initial link traffic, the
    Definition 3.1 setting). *)
val successors :
  Game.t -> ?initial:Numeric.Rational.t array -> kind:move_kind -> Pure.profile ->
  Pure.profile list

(** [find_cycle g ~kind] searches the whole graph and returns a witness
    cycle (a list of successive profiles, first = last omitted) if one
    exists.  The DFS carries one incremental {!View} per root — an O(1)
    move/undo per tree edge and an id delta of [(l' - l)·m^i] — instead
    of decoding and re-materialising every node.
    @raise Invalid_argument when [m^n] exceeds [limit]
    (default [2_000_000]). *)
val find_cycle :
  ?limit:int -> ?initial:Numeric.Rational.t array -> Game.t -> kind:move_kind ->
  Pure.profile list option

(** [all_reach_nash g ~kind] holds when from every profile the dynamics
    can only terminate in a Nash equilibrium, i.e. the graph is acyclic
    (its sinks are exactly the pure Nash equilibria). *)
val all_reach_nash :
  ?limit:int -> ?initial:Numeric.Rational.t array -> Game.t -> kind:move_kind -> bool
