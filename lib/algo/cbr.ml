open Model
open Numeric

type outcome = {
  profile : Cgame.profile;
  steps : int;
  users_moved : int;
  converged : bool;
}

(* Cumulative rounding: link l gets floor(count·S_l/S) − floor(count·S_{l−1}/S)
   users, S_l the capacity prefix sum.  Exact, non-negative, sums to
   count, and tracks the capacity proportions within one user. *)
let proportional_start g =
  let k = Cgame.classes g and m = Cgame.links g in
  Array.init k (fun c ->
      let row = Cgame.capacity_row g c in
      let total = Rational.sum (Array.to_list row) in
      let count = Rational.of_int (Cgame.count g c) in
      let cum = ref Rational.zero and prev = ref 0 in
      Array.init m (fun l ->
          cum := Rational.add !cum row.(l);
          let upto =
            Bigint.to_int_exn
              (Rational.num (Rational.floor (Rational.div (Rational.mul count !cum) total)))
          in
          let here = upto - !prev in
          prev := upto;
          here))

let converge ?(max_steps = 1_000_000) g x =
  if max_steps <= 0 then invalid_arg "Cbr.converge: max_steps must be positive";
  let v = Cview.of_profile g x in
  let steps = ref 0 and users_moved = ref 0 in
  let rec loop () =
    if !steps >= max_steps then false
    else
      match Cview.first_defector v with
      | None -> true
      | Some (cls, src, dst) ->
        (* first_defector guarantees the first mover improves, so the
           maximal block is ≥ 1 and progress is made every step. *)
        let count = Cview.max_improving_block v ~cls ~src ~dst in
        Cview.move v ~cls ~src ~dst ~count;
        incr steps;
        users_moved := !users_moved + count;
        loop ()
  in
  let converged = loop () in
  { profile = Cview.profile v; steps = !steps; users_moved = !users_moved; converged }
