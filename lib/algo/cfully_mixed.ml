open Model
open Numeric

let require_two_users g =
  if Cgame.users g < 2 then
    invalid_arg "Cfully_mixed: at least two users required (the closed form divides by n-1)"

let capacity_sum g c = Rational.sum (List.init (Cgame.links g) (Cgame.capacity g c))

let equilibrium_latency g c =
  require_two_users g;
  let m = Cgame.links g in
  let num =
    Rational.add
      (Rational.mul (Rational.of_int (m - 1)) (Cgame.weight g c))
      (Cgame.total_traffic g)
  in
  Rational.div num (capacity_sum g c)

let share g c l = Rational.div (Cgame.capacity g c l) (capacity_sum g c)

(* The per-user sums Σ_i share_i(l)·w_i and Σ_i share_i(l) regrouped by
   class: every user of class c contributes the same term, so the sums
   become Σ_c n_c·share_c(l)·w_c and Σ_c n_c·share_c(l) — identical
   values under exact rational arithmetic. *)
let expected_traffic g l =
  require_two_users g;
  let n = Cgame.users g and m = Cgame.links g in
  let t = Cgame.total_traffic g in
  let weighted_shares =
    Rational.sum
      (List.init (Cgame.classes g) (fun c ->
           Rational.mul
             (Rational.of_int (Cgame.count g c))
             (Rational.mul (share g c l) (Cgame.weight g c))))
  in
  let share_sum =
    Rational.sum
      (List.init (Cgame.classes g) (fun c ->
           Rational.mul (Rational.of_int (Cgame.count g c)) (share g c l)))
  in
  Rational.div
    (Rational.sub
       (Rational.add
          (Rational.mul (Rational.of_int (m - 1)) weighted_shares)
          (Rational.mul t share_sum))
       t)
    (Rational.of_int (n - 1))

let candidate g =
  require_two_users g;
  if not (Cgame.is_load_linear g) then
    invalid_arg "Cfully_mixed.candidate: game must be load-linear (no Bernoulli participation)";
  let k = Cgame.classes g and m = Cgame.links g in
  let w_link = Array.init m (expected_traffic g) in
  let lambda = Array.init k (equilibrium_latency g) in
  Array.init k (fun c ->
      let w_c = Cgame.weight g c in
      Array.init m (fun l ->
          (* p^l_c = (W^l + w_c - c^l_c λ_c) / w_c      (equation 2) *)
          Rational.div
            (Rational.sub (Rational.add w_link.(l) w_c)
               (Rational.mul (Cgame.capacity g c l) lambda.(c)))
            w_c))

let in_open_unit q = Rational.sign q > 0 && Rational.compare q Rational.one < 0

let compute g =
  let p = candidate g in
  if Array.for_all (Array.for_all in_open_unit) p then Some p else None

let exists g = Option.is_some (compute g)
