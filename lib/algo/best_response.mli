open Model

(** Best- and better-response dynamics on pure profiles.

    These dynamics power several experiments: convergence from arbitrary
    starting points (supporting Conjecture 3.7), the search for
    better-response cycles (the game is not an ordinal potential game —
    Section 3.2, observation due to B. Monien), and the n = 3
    no-best-response-cycle claim. *)

type policy =
  | First_defector  (** move the lowest-index defector *)
  | Last_defector  (** move the highest-index defector *)
  | Best_improvement  (** move the defector with the largest latency gain *)

type outcome = {
  profile : Pure.profile;  (** final profile *)
  steps : int;  (** moves performed *)
  converged : bool;  (** final profile is a Nash equilibrium *)
}

(** [step g ?initial ~policy p] performs one best-response move, or
    returns [None] when [p] is already a Nash equilibrium.  The mover
    and its target are found in a single O(n·m) pass over a {!View}
    (one best-response scan per user), for every policy. *)
val step :
  Game.t -> ?initial:Numeric.Rational.t array -> policy:policy -> Pure.profile ->
  Pure.profile option

(** [converge g ?initial ?policy ~max_steps p] iterates best-response
    moves from [p] until equilibrium or the step budget runs out.  The
    whole run holds one incremental {!View}: each step applies an O(1)
    load delta instead of copying and re-materialising the profile. *)
val converge :
  Game.t ->
  ?initial:Numeric.Rational.t array ->
  ?policy:policy ->
  max_steps:int ->
  Pure.profile ->
  outcome

(** [random_better_response_walk g ~rng ~max_steps p] repeatedly applies
    a uniformly chosen improving move (any defector, any improving
    link).  Returns the walk's outcome together with [Some cycle_length]
    if some profile was revisited before convergence — a witness that
    the better-response graph has a cycle. *)
val random_better_response_walk :
  Game.t -> rng:Prng.Rng.t -> max_steps:int -> Pure.profile -> outcome * int option
