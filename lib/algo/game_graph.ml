open Model

type move_kind = Best_response | Better_response

(* Exact [m^n] with the multiply checked against [max_int] before it
   happens (the bin/cycle_hunt [ipow] discipline): the mixed-radix node
   ids below are only bijective while every intermediate power stays
   representable. *)
let ipow_checked name ~m ~n =
  let rec go acc i =
    if i = 0 then acc
    else if acc > max_int / m then
      invalid_arg (Printf.sprintf "Game_graph.%s: %d^%d overflows the native int range" name m n)
    else go (acc * m) (i - 1)
  in
  go 1 n

let encode g p =
  let m = Game.links g in
  ignore (ipow_checked "encode" ~m ~n:(Game.users g));
  Array.fold_right (fun l acc -> (acc * m) + l) p 0

let decode g k =
  let n = Game.users g and m = Game.links g in
  ignore (ipow_checked "decode" ~m ~n);
  let p = Array.make n 0 in
  let rest = ref k in
  for i = 0 to n - 1 do
    p.(i) <- !rest mod m;
    rest := !rest / m
  done;
  p

(* The (user, target) moves defining a node's out-edges, in the order
   [successors] has always listed them: ascending user, and within a
   user the better-response targets in descending link order. *)
let successor_moves v ~kind =
  let acc = ref [] in
  for i = View.users v - 1 downto 0 do
    match kind with
    | Best_response ->
      let target, best = View.best_response_for v i in
      if Numeric.Rational.compare best (View.latency v i) < 0 then acc := (i, target) :: !acc
    | Better_response ->
      List.iter (fun l -> acc := (i, l) :: !acc) (View.improving_moves v i)
  done;
  !acc

let successors g ?initial ~kind p =
  let v = View.of_profile g ?initial p in
  List.map
    (fun (i, l) ->
      let next = Array.copy p in
      next.(i) <- l;
      next)
    (successor_moves v ~kind)

let node_count name limit g =
  match Social.profile_count g with
  | Some c when c <= limit -> c
  | _ -> invalid_arg (Printf.sprintf "Game_graph.%s: state space exceeds the limit" name)

let find_cycle ?(limit = 2_000_000) ?initial g ~kind =
  let count = node_count "find_cycle" limit g in
  let n = Game.users g and m = Game.links g in
  (* pw.(i) = m^i: moving user i from link l to l' shifts the node id by
     (l' - l)·m^i, so the DFS never re-encodes a whole profile. *)
  let pw = Array.make (max n 1) 1 in
  for i = 1 to n - 1 do
    pw.(i) <- pw.(i - 1) * m
  done;
  (* Iterative three-colour DFS; colours: 0 unvisited, 1 on stack,
     2 done.  [parent] reconstructs the witness cycle.  One [View] per
     DFS root carries the loads down the tree: each edge is an O(1)
     [move] on descent and an [undo] on return, where the seed decoded
     and re-materialised every node from scratch. *)
  let colour = Bytes.make count '\000' in
  let parent = Array.make count (-1) in
  let cycle = ref None in
  let rec dfs v id =
    Bytes.set colour id '\001';
    List.iter
      (fun (i, l) ->
        if !cycle = None then begin
          let s = id + ((l - View.link v i) * pw.(i)) in
          match Bytes.get colour s with
          | '\000' ->
            parent.(s) <- id;
            View.move v i l;
            dfs v s;
            View.undo v
          | '\001' ->
            (* Back edge: walk parents from id back to s. *)
            let rec collect u acc = if u = s then u :: acc else collect parent.(u) (u :: acc) in
            cycle := Some (List.map (decode g) (collect id []))
          | _ -> ()
        end)
      (successor_moves v ~kind);
    if Bytes.get colour id = '\001' then Bytes.set colour id '\002'
  in
  let id = ref 0 in
  while !cycle = None && !id < count do
    if Bytes.get colour !id = '\000' then dfs (View.of_profile g ?initial (decode g !id)) !id;
    incr id
  done;
  !cycle

let all_reach_nash ?limit ?initial g ~kind = find_cycle ?limit ?initial g ~kind = None
