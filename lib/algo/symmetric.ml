open Model
open Numeric

(* With equal weights, latencies are proportional to (count on link) /
   c^ℓ_i, so the algorithm only tracks per-link occupancy counts. *)

let solve_with_stats g =
  if not (Game.is_symmetric g) then
    invalid_arg "Symmetric.solve: users must have equal weights";
  if not (Game.is_load_linear g) then
    invalid_arg "Symmetric.solve: game must be load-linear (no Bernoulli participation)";
  let n = Game.users g and m = Game.links g in
  let counts = Array.make m 0 in
  let sigma = Array.make n (-1) in
  let moves = ref 0 in
  (* Best link for user [i] given one extra unit placed on each
     candidate link: minimises (counts.(l) + 1) / c^l_i. *)
  let best_link i =
    let best = ref 0 in
    let score l = Rational.div (Rational.of_int (counts.(l) + 1)) (Game.capacity g i l) in
    let best_score = ref (score 0) in
    for l = 1 to m - 1 do
      let s = score l in
      if Rational.compare s !best_score < 0 then begin
        best := l;
        best_score := s
      end
    done;
    !best
  in
  (* A user on [l] defects when some other link beats its current
     latency: counts.(l)/c^l_k > (counts.(l')+1)/c^l'_k. *)
  let rec wants_to_leave k =
    let l = sigma.(k) in
    let here = Rational.div (Rational.of_int counts.(l)) (Game.capacity g k l) in
    let rec scan l' =
      if l' >= m then None
      else if
        l' <> l
        && Rational.compare (Rational.div (Rational.of_int (counts.(l') + 1)) (Game.capacity g k l')) here < 0
      then Some (best_link_excluding k)
      else scan (l' + 1)
    in
    scan 0
  and best_link_excluding k =
    (* The paper moves the defector to a strictly better link; we use
       its best response, which the correctness proof also covers. *)
    let l = sigma.(k) in
    let best = ref l in
    let here = Rational.div (Rational.of_int counts.(l)) (Game.capacity g k l) in
    let best_score = ref here in
    for l' = 0 to m - 1 do
      if l' <> l then begin
        let s = Rational.div (Rational.of_int (counts.(l') + 1)) (Game.capacity g k l') in
        if Rational.compare s !best_score < 0 then begin
          best := l';
          best_score := s
        end
      end
    done;
    !best
  in
  for i = 0 to n - 1 do
    let l = best_link i in
    sigma.(i) <- l;
    counts.(l) <- counts.(l) + 1;
    (* Cascade: follow defections from the link that just grew. *)
    let hot = ref l in
    let budget = ref (n * m * (i + 2)) (* safety net far above the paper's O(i) bound *) in
    let continue = ref true in
    while !continue do
      decr budget;
      if !budget < 0 then failwith "Symmetric.solve: cascade exceeded its bound (bug)";
      (* Look for a defector currently assigned to the hot link. *)
      let defector = ref None in
      for k = 0 to i do
        if !defector = None && sigma.(k) = !hot then
          match wants_to_leave k with
          | Some target when target <> sigma.(k) -> defector := Some (k, target)
          | _ -> ()
      done;
      (* The proof localises defections to the link that last grew, but
         we also sweep the rest to be safe against ties. *)
      if !defector = None then begin
        for k = 0 to i do
          if !defector = None then
            match wants_to_leave k with
            | Some target when target <> sigma.(k) -> defector := Some (k, target)
            | _ -> ()
        done
      end;
      match !defector with
      | None -> continue := false
      | Some (k, target) ->
        counts.(sigma.(k)) <- counts.(sigma.(k)) - 1;
        counts.(target) <- counts.(target) + 1;
        sigma.(k) <- target;
        hot := target;
        incr moves
    done
  done;
  (sigma, !moves)

let solve g = fst (solve_with_stats g)
