open Model
open Numeric

(* Walk the square a → b → c → d → a with balanced [move]/[undo] pairs
   on the view, reading the two movers' latencies at each corner; the
   seed allocated four profile copies and paid an O(n) load scan for
   each of the eight latencies. *)
let square_defect_v v ~i ~j ~li ~lj =
  if i = j then invalid_arg "Potential.square_defect: users must differ";
  let ai = View.latency v i and aj = View.latency v j in
  View.move v i li;
  (* at b = a[i ↦ li] *)
  let bi = View.latency v i and bj = View.latency v j in
  View.move v j lj;
  (* at c = b[j ↦ lj] *)
  let ci = View.latency v i and cj = View.latency v j in
  View.undo v;
  View.undo v;
  View.move v j lj;
  (* at d = a[j ↦ lj] *)
  let di = View.latency v i and dj = View.latency v j in
  View.undo v;
  (* Monderer–Shapley: (u_i(b) - u_i(a)) + (u_j(c) - u_j(b))
     + (u_i(d) - u_i(c)) + (u_j(a) - u_j(d)) = 0 for exact potentials. *)
  Rational.sum
    [ Rational.sub bi ai; Rational.sub cj bj; Rational.sub di ci; Rational.sub aj dj ]

let square_defect g sigma ~i ~j ~li ~lj = square_defect_v (View.of_profile g sigma) ~i ~j ~li ~lj

let find_nonzero_square ?(limit = 100_000) g =
  (match Social.profile_count g with
   | Some c when c <= limit -> ()
   | _ -> invalid_arg "Potential.find_nonzero_square: state space exceeds the limit");
  let n = Game.users g and m = Game.links g in
  let witness = ref None in
  (try
     View.sweep g (fun v ->
         for i = 0 to n - 1 do
           for j = i + 1 to n - 1 do
             for li = 0 to m - 1 do
               if li <> View.link v i then
                 for lj = 0 to m - 1 do
                   if lj <> View.link v j then
                     if not (Rational.is_zero (square_defect_v v ~i ~j ~li ~lj)) then begin
                       witness := Some (View.profile v, i, j, li, lj);
                       raise Exit
                     end
                 done
             done
           done
         done)
   with Exit -> ());
  !witness

let is_exact_potential_game ?limit g = find_nonzero_square ?limit g = None

let rosenthal g sigma =
  if not (Game.is_symmetric g) then
    invalid_arg "Potential.rosenthal: users must have equal weights";
  if not (Game.is_kp g) then invalid_arg "Potential.rosenthal: game must be a KP instance";
  Pure.validate g sigma;
  let m = Game.links g in
  let counts = Array.make m 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) sigma;
  let w = Game.weight g 0 in
  let acc = ref Rational.zero in
  for l = 0 to m - 1 do
    (* Σ_{k=1}^{N_ℓ} k·w / c^ℓ  =  w·N(N+1)/2 / c^ℓ *)
    let nl = counts.(l) in
    let tri = Rational.of_ints (nl * (nl + 1)) 2 in
    acc := Rational.add !acc (Rational.div (Rational.mul w tri) (Game.capacity g 0 l))
  done;
  !acc
