(** Fully mixed Nash equilibrium closed forms over class games —
    {!Fully_mixed} recomputed in poly(k, m).

    Every quantity is the per-user closed form with the user sums
    re-grouped by class (exact rational arithmetic makes the regrouping
    bit-identical): the candidate row of a class equals the candidate
    row {!Fully_mixed.candidate} assigns each of that class's users on
    the expanded game. *)

(** [capacity_sum g c] is [Σ_l c^l] for class [c]. *)
val capacity_sum : Model.Cgame.t -> int -> Numeric.Rational.t

(** [equilibrium_latency g c] is [λ_c = ((m−1)·w_c + T) / Σ_l c^l_c].
    @raise Invalid_argument when the game has fewer than two users. *)
val equilibrium_latency : Model.Cgame.t -> int -> Numeric.Rational.t

(** [share g c l] is [c^l_c / Σ_l c^l_c]. *)
val share : Model.Cgame.t -> int -> int -> Numeric.Rational.t

(** [expected_traffic g l] is the FMNE expected traffic [W^l].
    @raise Invalid_argument when the game has fewer than two users. *)
val expected_traffic : Model.Cgame.t -> int -> Numeric.Rational.t

(** [candidate g] is the unique FMNE candidate as a class-symmetric
    mixed profile (equation 2 of the paper, one row per class).  Rows
    may leave [0, 1]; the candidate is an equilibrium iff they do not.
    @raise Invalid_argument when the game has fewer than two users. *)
val candidate : Model.Cgame.t -> Model.Cmixed.t

(** [compute g] is [Some (candidate g)] when every entry lies in the
    open interval (0, 1) — i.e. the FMNE exists — and [None]
    otherwise. *)
val compute : Model.Cgame.t -> Model.Cmixed.t option

val exists : Model.Cgame.t -> bool
