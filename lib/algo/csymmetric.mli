(** Pure Nash equilibria for symmetric-weight class games.

    The class analogue of {!Symmetric}: with equal weights the game is
    a congestion game in the per-link counts, so block best-response
    dynamics ({!Cbr}) from the capacity-proportional start converge to
    a pure Nash equilibrium whenever an improvement potential exists —
    in particular for uniform beliefs and for classes whose capacity
    rows are positive multiples of a common vector.  Player-specific
    capacity rows in general may cycle (Milchtaich 1996); the guard
    raises instead of looping forever. *)

(** [solve ?max_steps g] is a pure Nash class profile.
    @raise Invalid_argument when class weights are not all equal.
    @raise Failure when the dynamics exhaust [max_steps] (default
    1_000_000) without reaching equilibrium. *)
val solve : ?max_steps:int -> Model.Cgame.t -> Model.Cgame.profile
