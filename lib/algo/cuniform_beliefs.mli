(** LPT scheduling over class games with uniform beliefs, in
    poly(k, m, log n).

    {!Uniform_beliefs.solve} places users heaviest-first, each on the
    lowest-index link of minimum traffic.  When [q] users share one
    weight, their [q] placements are the [q] smallest {e start heights}
    [h_{l,j} = t_l + (j−1)·w] ([j]-th consecutive placement on link
    [l]), ties broken by link index — an order statistic over [m]
    arithmetic progressions that a binary search finds without
    simulating the [q] placements.  [solve] therefore returns, class by
    class in (weight desc, class index asc) order, exactly the
    per-link counts that {!Uniform_beliefs.solve} produces on the
    expanded game. *)

(** [solve ?initial g] is the class profile of the LPT schedule
    ([initial] seeds the per-link traffics, default zero).
    @raise Invalid_argument when the game does not have uniform
    beliefs, or [initial] has the wrong length. *)
val solve :
  ?initial:Numeric.Rational.t array -> Model.Cgame.t -> Model.Cgame.profile
