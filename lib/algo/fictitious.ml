open Model
open Numeric

type outcome = {
  rounds : int;
  last_profile : Pure.profile;
  empirical : Mixed.profile;
  stabilised : bool;
}

let play g ~rounds ~window start =
  if rounds <= 0 then invalid_arg "Fictitious.play: rounds must be positive";
  if window <= 0 then invalid_arg "Fictitious.play: window must be positive";
  Pure.validate g start;
  let n = Game.users g and m = Game.links g in
  let counts = Array.make_matrix n m 0 in
  Array.iteri (fun i l -> counts.(i).(l) <- 1) start;
  let played = ref 1 in
  let current = Array.copy start in
  let streak = ref 1 in
  let finished = ref false in
  let round = ref 1 in
  while (not !finished) && !round < rounds do
    incr round;
    (* Empirical mixed profile of all users after !played rounds. *)
    let empirical =
      Array.init n (fun i -> Array.init m (fun l -> Rational.of_ints counts.(i).(l) !played))
    in
    (* One cached evaluator per round: the expected traffics W are
       shared by every (user, link) query below, so the round costs
       O(n·m) instead of the O(n²·m) of per-query traffic rescans. *)
    let eval = Mixed.Eval.make g empirical in
    let next =
      Array.init n (fun i ->
          (* Best response of user i to the others' empirical mix:
             minimise ((1-p^l_i)w_i + W^l)/c^l_i where the W include
             the opponents' empirical probabilities.  Using
             Eval.latency_on_link with i's own row set to its
             empirical frequencies is exactly that expectation. *)
          let best = ref 0 and best_v = ref (Mixed.Eval.latency_on_link eval i 0) in
          for l = 1 to m - 1 do
            let v = Mixed.Eval.latency_on_link eval i l in
            if Rational.compare v !best_v < 0 then begin
              best := l;
              best_v := v
            end
          done;
          !best)
    in
    if next = current then incr streak
    else begin
      Array.blit next 0 current 0 n;
      streak := 1
    end;
    Array.iteri (fun i l -> counts.(i).(l) <- counts.(i).(l) + 1) next;
    incr played;
    if !streak >= window && Pure.is_nash g current then finished := true
  done;
  {
    rounds = !played;
    last_profile = Array.copy current;
    empirical =
      Array.init n (fun i -> Array.init m (fun l -> Rational.of_ints counts.(i).(l) !played));
    stabilised = !finished;
  }
