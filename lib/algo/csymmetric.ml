open Model

let solve ?max_steps g =
  if not (Cgame.is_symmetric g) then
    invalid_arg "Csymmetric.solve: classes must have equal weights";
  let outcome = Cbr.converge ?max_steps g (Cbr.proportional_start g) in
  if not outcome.converged then
    failwith "Csymmetric.solve: block best-response dynamics did not converge";
  outcome.profile
