open Model
open Numeric

let require_two_users g =
  if Game.users g < 2 then
    invalid_arg "Fully_mixed: at least two users required (the closed form divides by n-1)"

let capacity_sum g i = Rational.sum (List.init (Game.links g) (Game.capacity g i))

let equilibrium_latency g i =
  require_two_users g;
  let m = Game.links g in
  let num =
    Rational.add
      (Rational.mul (Rational.of_int (m - 1)) (Game.weight g i))
      (Game.total_traffic g)
  in
  Rational.div num (capacity_sum g i)

let share g i l = Rational.div (Game.capacity g i l) (capacity_sum g i)

let expected_traffic g l =
  require_two_users g;
  let n = Game.users g and m = Game.links g in
  let t = Game.total_traffic g in
  let weighted_shares =
    Rational.sum (List.init n (fun i -> Rational.mul (share g i l) (Game.weight g i)))
  in
  let share_sum = Rational.sum (List.init n (fun i -> share g i l)) in
  Rational.div
    (Rational.sub
       (Rational.add
          (Rational.mul (Rational.of_int (m - 1)) weighted_shares)
          (Rational.mul t share_sum))
       t)
    (Rational.of_int (n - 1))

let candidate g =
  require_two_users g;
  if not (Game.is_load_linear g) then
    invalid_arg "Fully_mixed.candidate: game must be load-linear (no Bernoulli participation)";
  let n = Game.users g and m = Game.links g in
  let w_link = Array.init m (expected_traffic g) in
  let lambda = Array.init n (equilibrium_latency g) in
  Array.init n (fun i ->
      let w_i = Game.weight g i in
      Array.init m (fun l ->
          (* p^l_i = (W^l + w_i - c^l_i λ_i) / w_i      (equation 2) *)
          Rational.div
            (Rational.sub (Rational.add w_link.(l) w_i)
               (Rational.mul (Game.capacity g i l) lambda.(i)))
            w_i))

let in_open_unit q = Rational.sign q > 0 && Rational.compare q Rational.one < 0

let compute g =
  let p = candidate g in
  if Array.for_all (Array.for_all in_open_unit) p then Some p else None

let exists g = compute g <> None
