open Model
open Numeric

(* Placing q users of weight w one at a time, each on the currently
   lightest link (lowest index on ties), is a q-way merge of the m
   strictly increasing progressions h_{l,j} = t_l + (j-1)·w: the chosen
   placements are the q smallest start heights, ties by link index
   (at most one element per link can equal any given height).  We find
   the q-th smallest height λ* by binary search instead of simulating
   the q placements. *)
let place_class t q w =
  let m = Array.length t in
  let height l j = Rational.add t.(l) (Rational.mul (Rational.of_int (j - 1)) w) in
  (* Number of start heights ≤ lam, each link capped at q. *)
  let total_leq lam =
    let acc = ref 0 in
    for l = 0 to m - 1 do
      let d = Rational.div (Rational.sub lam t.(l)) w in
      if Rational.sign d >= 0 then
        if Rational.compare d (Rational.of_int q) >= 0 then acc := !acc + q
        else acc := !acc + Bigint.to_int_exn (Rational.num (Rational.floor d)) + 1
    done;
    !acc
  in
  (* Per link, the smallest of its heights that reaches rank q — the
     q-th smallest height λ* is the least such candidate.  (The link
     holding the overall largest q-th height always yields one, so the
     minimum is over a non-empty set.) *)
  let lam_star = ref None in
  for l = 0 to m - 1 do
    if total_leq (height l q) >= q then begin
      let lo = ref 1 and hi = ref q in
      while !lo < !hi do
        let mid = !lo + ((!hi - !lo) / 2) in
        if total_leq (height l mid) >= q then hi := mid else lo := mid + 1
      done;
      let cand = height l !lo in
      lam_star :=
        Some (match !lam_star with None -> cand | Some best -> Rational.min best cand)
    end
  done;
  let lam = match !lam_star with Some lam -> lam | None -> assert false in
  (* Heights strictly below λ* are all taken; the remaining placements
     go to links whose next height equals λ* exactly, lowest index
     first — the greedy tie-break. *)
  let counts = Array.make m 0 in
  let taken = ref 0 in
  for l = 0 to m - 1 do
    let d = Rational.div (Rational.sub lam t.(l)) w in
    let below =
      if Rational.sign d <= 0 then 0
      else if Rational.compare d (Rational.of_int q) >= 0 then q
      else if Rational.is_integer d then Bigint.to_int_exn (Rational.num d)
      else Bigint.to_int_exn (Rational.num (Rational.floor d)) + 1
    in
    counts.(l) <- below;
    taken := !taken + below
  done;
  let rem = ref (q - !taken) in
  for l = 0 to m - 1 do
    if !rem > 0 && counts.(l) < q && Rational.equal (height l (counts.(l) + 1)) lam then begin
      counts.(l) <- counts.(l) + 1;
      decr rem
    end
  done;
  assert (!rem = 0);
  for l = 0 to m - 1 do
    if counts.(l) > 0 then
      t.(l) <- Rational.add t.(l) (Rational.mul (Rational.of_int counts.(l)) w)
  done;
  counts

let solve ?initial g =
  if not (Cgame.has_uniform_beliefs g) then
    invalid_arg "Cuniform_beliefs.solve: game must have uniform class beliefs";
  if not (Cgame.is_load_linear g) then
    invalid_arg "Cuniform_beliefs.solve: game must be load-linear (no Bernoulli participation)";
  let k = Cgame.classes g and m = Cgame.links g in
  let t =
    match initial with
    | Some t when Array.length t = m -> Array.copy t
    | Some _ -> invalid_arg "Cuniform_beliefs.solve: initial traffic has wrong length"
    | None -> Array.make m Rational.zero
  in
  (* Heaviest classes first, ties by class index: the order in which
     the expanded game's per-user LPT meets these users (expansion is
     class-major, so equal-weight users sort into class blocks). *)
  let order = Array.init k Fun.id in
  Array.sort
    (fun a b ->
      let c = Rational.compare (Cgame.weight g b) (Cgame.weight g a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let x = Array.make k [||] in
  Array.iter (fun c -> x.(c) <- place_class t (Cgame.count g c) (Cgame.weight g c)) order;
  x
