open Model
open Numeric

let guard name limit g =
  match Social.profile_count g with
  | Some c when c <= limit -> ()
  | _ -> invalid_arg (Printf.sprintf "Enumerate.%s: state space exceeds the limit" name)

(* The exhaustive scans ride [View.sweep]: the odometer applies O(1)
   load deltas between consecutive profiles, so checking a profile is
   the O(n·m) [View.is_nash] pass instead of the seed's O(n²·m)
   recompute-per-user. *)
let pure_nash ?(limit = 10_000_000) g =
  guard "pure_nash" limit g;
  let acc = ref [] in
  View.sweep g (fun v -> if View.is_nash v then acc := View.profile v :: !acc);
  List.rev !acc

let count ?(limit = 10_000_000) g =
  guard "count" limit g;
  let acc = ref 0 in
  View.sweep g (fun v -> if View.is_nash v then incr acc);
  !acc

let exists ?(limit = 10_000_000) g =
  guard "exists" limit g;
  let exception Found in
  try
    View.sweep g (fun v -> if View.is_nash v then raise Found);
    false
  with Found -> true

let extremal_nash ?limit g ~cost =
  match pure_nash ?limit g with
  | [] -> None
  | first :: rest ->
    let value = cost g first in
    let better lo hi p =
      let v = cost g p in
      let lo = if Rational.compare v (snd lo) < 0 then (p, v) else lo in
      let hi = if Rational.compare v (snd hi) > 0 then (p, v) else hi in
      (lo, hi)
    in
    let lo, hi =
      List.fold_left (fun (lo, hi) p -> better lo hi p) ((first, value), (first, value)) rest
    in
    Some (lo, hi)
