(** Best-response dynamics over class profiles: maximal improving
    blocks instead of single users, so each step is O(k·m²) and the
    total work never scales with the population size [n].

    Each step takes the class layer's first defector — the exact
    (class, link) pair the per-user first-defector policy would pick on
    the expanded game — and moves the {e maximal improving block}
    ({!Model.Cview.max_improving_block}) of that class from its link to
    its best response.  Every such block is a sequence of strictly
    improving single-user moves, so on games admitting a potential
    (e.g. classes whose capacity rows are positive multiples of a
    common vector, as in the bench instance) the dynamics terminate at
    a pure Nash equilibrium.  Player-specific capacities in general may
    cycle (Milchtaich 1996), hence the [max_steps] guard and the
    [converged] flag rather than a guarantee. *)

type outcome = {
  profile : Model.Cgame.profile;  (** final class profile *)
  steps : int;  (** block moves performed *)
  users_moved : int;  (** total users moved, summed over blocks *)
  converged : bool;  (** [true] iff a Nash equilibrium was reached *)
}

(** [proportional_start g] assigns each class's users to links in
    proportion to the class's effective capacities (largest-remainder
    by cumulative rounding, so counts are exact and sum to the class
    count). *)
val proportional_start : Model.Cgame.t -> Model.Cgame.profile

(** [converge ?max_steps g x] runs block best-response dynamics from
    [x] (default [max_steps] 1_000_000 block moves). *)
val converge : ?max_steps:int -> Model.Cgame.t -> Model.Cgame.profile -> outcome
