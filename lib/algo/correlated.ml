open Model
open Numeric

type result = { value : Rational.t; distribution : (Pure.profile * Rational.t) list }

(* λ_i(σ) − λ_i(σ[i→b]): user i's regret for following recommendation
   σ_i instead of b, at profile σ.  Evaluated against a view positioned
   at σ, both latencies are O(1) load lookups; building one view per
   support profile up front replaces the seed's O(n) load rescan under
   every one of the n·m² constraint coefficients. *)
let deviation_gain_v v i b = Rational.sub (View.latency v i) (View.latency_on_link v i b)

let profiles g =
  let acc = ref [] in
  Social.iter_profiles g (fun p -> acc := Array.copy p :: !acc);
  Array.of_list (List.rev !acc)

let is_correlated_equilibrium g dist =
  let total = ref Rational.zero in
  List.iter
    (fun (p, prob) ->
      Pure.validate g p;
      if Rational.sign prob < 0 then
        invalid_arg "Correlated.is_correlated_equilibrium: negative probability";
      total := Rational.add !total prob)
    dist;
  if not (Rational.equal !total Rational.one) then
    invalid_arg "Correlated.is_correlated_equilibrium: probabilities must sum to 1";
  let support =
    List.filter_map
      (fun (p, prob) ->
        if Rational.is_zero prob then None else Some (p, prob, View.of_profile g p))
      dist
  in
  let n = Game.users g and m = Game.links g in
  let rec check_user i =
    if i >= n then true
    else begin
      let rec check_pair a b =
        if a >= m then true
        else if b >= m then check_pair (a + 1) 0
        else if a = b then check_pair a (b + 1)
        else begin
          (* Σ_{σ: σ_i = a} x_σ (λ_i(σ) − λ_i(σ[i→b])) ≤ 0 *)
          let acc = ref Rational.zero in
          List.iter
            (fun (p, prob, v) ->
              if p.(i) = a then
                acc := Rational.add !acc (Rational.mul prob (deviation_gain_v v i b)))
            support;
          Rational.sign !acc <= 0 && check_pair a (b + 1)
        end
      in
      check_pair 0 0 && check_user (i + 1)
    end
  in
  check_user 0

let ce_constraints g all =
  let n = Game.users g and m = Game.links g in
  let nvars = Array.length all in
  let views = Array.map (View.of_profile g) all in
  let constraints = ref [] in
  (* Normalisation: Σ x = 1. *)
  constraints :=
    Simplex.{ coeffs = Array.make nvars Rational.one; relation = Eq; rhs = Rational.one }
    :: !constraints;
  for i = 0 to n - 1 do
    for a = 0 to m - 1 do
      for b = 0 to m - 1 do
        if a <> b then begin
          let coeffs =
            Array.init nvars (fun j ->
                if all.(j).(i) = a then deviation_gain_v views.(j) i b else Rational.zero)
          in
          if Array.exists (fun q -> not (Rational.is_zero q)) coeffs then
            constraints :=
              Simplex.{ coeffs; relation = Le; rhs = Rational.zero } :: !constraints
        end
      done
    done
  done;
  !constraints

let social_cost_objective g all =
  Array.map (fun p -> Pure.social_cost1 g p) all

let optimise direction ?(limit = 4_096) g =
  (match Social.profile_count g with
   | Some c when c <= limit -> ()
   | _ -> invalid_arg "Correlated: profile space exceeds the limit");
  let all = profiles g in
  let objective = social_cost_objective g all in
  let constraints = ce_constraints g all in
  let outcome =
    match direction with
    | `Min -> Simplex.minimize ~objective constraints
    | `Max -> Simplex.maximize ~objective constraints
  in
  match outcome with
  | Simplex.Optimal (value, x) ->
    let distribution =
      List.filter_map
        (fun j -> if Rational.is_zero x.(j) then None else Some (all.(j), x.(j)))
        (List.init (Array.length all) Fun.id)
    in
    { value; distribution }
  | Simplex.Infeasible ->
    (* Impossible: a Nash equilibrium always lies in the polytope. *)
    assert false
  | Simplex.Unbounded -> assert false (* the polytope is a subset of the simplex *)

let best_social_cost ?limit g = optimise `Min ?limit g
let worst_social_cost ?limit g = optimise `Max ?limit g

let of_mixed g p =
  Mixed.validate g p;
  let acc = ref [] in
  Social.iter_profiles g (fun sigma ->
      let prob = ref Rational.one in
      Array.iteri (fun i l -> prob := Rational.mul !prob p.(i).(l)) sigma;
      if not (Rational.is_zero !prob) then acc := (Array.copy sigma, !prob) :: !acc);
  List.rev !acc
