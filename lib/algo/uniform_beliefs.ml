open Model
open Numeric

let solve ?initial g =
  if not (Game.has_uniform_beliefs g) then
    invalid_arg "Uniform_beliefs.solve: game must have uniform user beliefs";
  if not (Game.is_load_linear g) then
    invalid_arg "Uniform_beliefs.solve: game must be load-linear (no Bernoulli participation)";
  let n = Game.users g and m = Game.links g in
  let t =
    match initial with
    | Some t when Array.length t = m -> Array.copy t
    | Some _ -> invalid_arg "Uniform_beliefs.solve: initial traffic has wrong length"
    | None -> Array.make m Rational.zero
  in
  (* LPT order: heaviest users first; ties broken by index for
     determinism. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Rational.compare (Game.weight g b) (Game.weight g a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let sigma = Array.make n 0 in
  Array.iter
    (fun k ->
      (* All links look alike to user k, so its best response is any
         link with minimum current traffic. *)
      let best = ref 0 in
      for l = 1 to m - 1 do
        if Rational.compare t.(l) t.(!best) < 0 then best := l
      done;
      sigma.(k) <- !best;
      t.(!best) <- Rational.add t.(!best) (Game.weight g k))
    order;
  sigma
