open Model
open Numeric

let tolerance g ~initial ~total i j =
  let c_j = Game.capacity g i j and c_o = Game.capacity g i (1 - j) in
  let t_j = initial.(j) and t_o = initial.(1 - j) in
  (* α = (c_j·c_o / (c_j + c_o)) · ((t_o + total + w_i)/c_o - t_j/c_j) *)
  let factor = Rational.div (Rational.mul c_j c_o) (Rational.add c_j c_o) in
  let rhs =
    Rational.sub
      (Rational.div (Rational.add t_o (Rational.add total (Game.weight g i))) c_o)
      (Rational.div t_j c_j)
  in
  Rational.mul factor rhs

let solve ?initial g =
  if Game.links g <> 2 then invalid_arg "Two_links.solve: game must have exactly two links";
  if not (Game.is_load_linear g) then
    invalid_arg "Two_links.solve: game must be load-linear (no Bernoulli participation)";
  let n = Game.users g in
  let t =
    match initial with
    | Some t when Array.length t = 2 -> Array.copy t
    | Some _ -> invalid_arg "Two_links.solve: initial traffic must have length 2"
    | None -> [| Rational.zero; Rational.zero |]
  in
  let sigma = Array.make n 0 in
  let remaining = Array.make n true in
  let total = ref (Game.total_traffic g) in
  (* Each round commits the unassigned user with the largest tolerance
     to its preferred link, then shrinks the residual game. *)
  for _round = 1 to n do
    let best = ref None in
    for i = 0 to n - 1 do
      if remaining.(i) then begin
        let a0 = tolerance g ~initial:t ~total:!total i 0 in
        let a1 = tolerance g ~initial:t ~total:!total i 1 in
        let link, a = if Rational.compare a0 a1 >= 0 then (0, a0) else (1, a1) in
        match !best with
        | Some (_, _, best_a) when Rational.compare best_a a >= 0 -> ()
        | _ -> best := Some (i, link, a)
      end
    done;
    match !best with
    | None -> assert false (* one unassigned user remains per round *)
    | Some (k, link, _) ->
      sigma.(k) <- link;
      remaining.(k) <- false;
      t.(link) <- Rational.add t.(link) (Game.weight g k);
      total := Rational.sub !total (Game.weight g k)
  done;
  sigma
