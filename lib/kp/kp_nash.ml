open Model
open Numeric

let require_kp name g =
  if not (Game.is_kp g) then
    invalid_arg (Printf.sprintf "Kp_nash.%s: game is not a KP instance" name)

let solve g =
  require_kp "solve" g;
  let n = Game.users g and m = Game.links g in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Rational.compare (Game.weight g b) (Game.weight g a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let load = Array.make m Rational.zero in
  let sigma = Array.make n 0 in
  Array.iter
    (fun k ->
      (* Best response of user k against the loads placed so far:
         minimise (load + w_k)/c^l (capacities are shared in KP). *)
      let score l =
        Rational.div (Rational.add load.(l) (Game.weight g k)) (Game.capacity g k l)
      in
      let best = ref 0 and best_score = ref (score 0) in
      for l = 1 to m - 1 do
        let s = score l in
        if Rational.compare s !best_score < 0 then begin
          best := l;
          best_score := s
        end
      done;
      sigma.(k) <- !best;
      load.(!best) <- Rational.add load.(!best) (Game.weight g k))
    order;
  sigma

let nashify g p =
  require_kp "nashify" g;
  Pure.validate g p;
  let p = Array.copy p in
  let budget = ref (Game.users g * Game.users g * Game.links g * 64) in
  let rec go () =
    match Pure.defectors g p with
    | [] -> p
    | defectors ->
      decr budget;
      if !budget < 0 then failwith "Kp_nash.nashify: step budget exceeded";
      let heaviest =
        List.fold_left
          (fun best d ->
            if Rational.compare (Game.weight g d) (Game.weight g best) > 0 then d else best)
          (List.hd defectors) defectors
      in
      let target, _ = Pure.best_response g p heaviest in
      p.(heaviest) <- target;
      go ()
  in
  go ()
