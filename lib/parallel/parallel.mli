(** Deterministic fork–join parallelism over OCaml 5 domains.

    The experiment sweeps are embarrassingly parallel across instances:
    each cell derives its own PRNG from a fixed seed, so results are
    identical no matter how work is scheduled.  This module provides the
    minimal fork–join layer the harness needs — no dependency on
    domainslib (not installed in this environment).

    All functions run [f] in the calling domain when [domains <= 1], so
    code paths stay identical in serial mode. *)

(** Runtime domain-ownership sanitizer.  Under [SELFISH_OWNERSHIP=1],
    mutable structures shipped near the fork-join boundary ([View.t],
    [Cview.t], [Load_dist] accumulator tables) record the creating
    domain's id at construction and assert on every mutating entry
    point that the caller matches, raising {!Ownership.Violation}
    otherwise.  Disabled (a single bool test) by default. *)
module Ownership : sig
  (** Raised by {!guard} on a cross-domain mutation attempt.  The
      message pins the structure kind and both domain ids:
      ["SELFISH_OWNERSHIP: <what> created on domain <o> mutated from
      domain <c>"]. *)
  exception Violation of string

  (** Whether guards are active; initialised from [SELFISH_OWNERSHIP]
      ([1]/[true]/[yes]).  Tests may toggle it, but only while no
      other domain is running. *)
  val enabled : bool ref

  (** [self_id ()] is the calling domain's integer id,
      [(Domain.self () :> int)]. *)
  val self_id : unit -> int

  (** Test-only forgery hook: while [Some id], {!record} stamps new
      structures with [id] instead of the real domain, so a
      single-domain test can provoke and pin the {!Violation}
      message.  Never set this outside tests. *)
  val unsafe_forge : int option ref

  (** [record ()] is the owner id a structure created now should
      store: the forged id when {!unsafe_forge} is set, the calling
      domain's id otherwise.  Call it unconditionally at construction
      — it is cheap — so enabling the sanitizer later still has
      accurate owners. *)
  val record : unit -> int

  (** [guard what owner] raises {!Violation} when the sanitizer is
      enabled and the calling domain differs from [owner]; no-op
      otherwise.  [what] names the structure in the message, e.g.
      ["View cursor"]. *)
  val guard : string -> int -> unit
end

(** [available_domains ()] is a sensible default worker count:
    [Domain.recommended_domain_count ()]. *)
val available_domains : unit -> int

(** [fork_join ~workers work] runs [work w] for [w] in [0, workers) —
    worker [0] in the calling domain, the rest on fresh domains — and
    returns results in worker order.  Every domain is joined before
    the first failure (in worker order) is re-raised with the worker's
    backtrace.
    @raise Invalid_argument when [workers <= 0]. *)
val fork_join : workers:int -> (int -> 'a) -> 'a array

(** [map ~domains f xs] is [List.map f xs], computed by up to [domains]
    domains with a block distribution.  Results keep list order.  The
    first exception raised by any worker is re-raised.
    @raise Invalid_argument when [domains <= 0]. *)
val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_array ~domains f xs] is the array counterpart of {!map} with an
    index-interleaved distribution (better balance when cost grows along
    the array). *)
val map_array : domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [reduce ~domains ~neutral ~combine f xs] maps [f] over [xs] and
    folds the results with [combine]; [combine] must be associative and
    [neutral] its unit.  Combination order is deterministic (worker 0
    first), so non-commutative monoids are safe. *)
val reduce :
  domains:int -> neutral:'b -> combine:('b -> 'b -> 'b) -> ('a -> 'b) -> 'a list -> 'b
