(* Runtime domain-ownership sanitizer (SELFISH_OWNERSHIP=1).

   The determinism contract requires every mutable structure (View and
   Cview cursors, Load_dist accumulator tables) to stay domain-local:
   created, mutated and dropped on one domain, with only immutable
   results crossing the fork-join boundary.  The static lint (D1-D4)
   checks this syntactically; this sanitizer checks it dynamically.
   Each guarded structure records the integer id of the creating
   domain at construction, and every mutating entry point calls
   [guard], which raises [Violation] when the calling domain differs.

   Mirrors Numeric.Sanitize: disabled (zero-cost bool test) unless the
   environment opts in, with unsafe forgery hooks so tests can pin the
   failure message without actually racing. *)

exception Violation of string

(* D3: the enable flag and forgery hook are deliberate global state —
   read-mostly, set before any domain spawns (allowlisted). *)
let enabled =
  ref
    (match Sys.getenv_opt "SELFISH_OWNERSHIP" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let self_id () = (Domain.self () :> int)

(* When set, [record] stamps new structures with this id instead of
   the real one, so a single-domain test can fake a foreign owner. *)
let unsafe_forge : int option ref = ref None

let record () = match !unsafe_forge with Some id -> id | None -> self_id ()

let fail what ~owner ~caller =
  raise
    (Violation
       (Printf.sprintf "SELFISH_OWNERSHIP: %s created on domain %d mutated from domain %d" what
          owner caller))

let guard what owner =
  if !enabled then begin
    let caller = self_id () in
    if caller <> owner then fail what ~owner ~caller
  end
