module Ownership = Ownership

let available_domains () = Domain.recommended_domain_count ()

let check_domains domains =
  if domains <= 0 then invalid_arg "Parallel: domains must be positive"

(* Run [work w] for w in [0, workers) on separate domains and collect
   the results in worker order, re-raising the first failure. *)
let fork_join ~workers work =
  if workers <= 0 then invalid_arg "Parallel.fork_join: workers must be positive";
  if workers = 1 then [| work 0 |]
  else begin
    let spawned = Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> work (w + 1))) in
    (* Join every domain before re-raising, so no worker leaks when one
       fails; the first failure in worker order wins.  The backtrace is
       captured at catch time and restored on re-raise, so a worker
       failure reports the worker's stack, not this join loop. *)
    let capture f = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()) in
    let first = capture (fun () -> work 0) in
    let rest = Array.map (fun d -> capture (fun () -> Domain.join d)) spawned in
    Array.map
      (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      (Array.append [| first |] rest)
  end

let map_array ~domains f xs =
  check_domains domains;
  let len = Array.length xs in
  if len = 0 then [||]
  else begin
    let workers = min domains len in
    if workers = 1 then Array.map f xs
    else begin
      (* Interleaved: worker w takes indices w, w+workers, …  Each
         worker returns (index, value) pairs; we scatter them back. *)
      let work w =
        let rec go i acc = if i >= len then acc else go (i + workers) ((i, f xs.(i)) :: acc) in
        go w []
      in
      let chunks = fork_join ~workers work in
      let out = Array.make len None in
      Array.iter (List.iter (fun (i, v) -> out.(i) <- Some v)) chunks;
      Array.map (function Some v -> v | None -> assert false) out
    end
  end

let map ~domains f xs = Array.to_list (map_array ~domains f (Array.of_list xs))

let reduce ~domains ~neutral ~combine f xs =
  check_domains domains;
  let xs = Array.of_list xs in
  let len = Array.length xs in
  if len = 0 then neutral
  else begin
    let workers = min domains len in
    let work w =
      (* Block distribution keeps the per-worker fold order equal to the
         global order restricted to the block, so the final left-to-right
         combine of worker results reproduces the serial fold for any
         associative [combine]. *)
      let lo = w * len / workers and hi = ((w + 1) * len / workers) - 1 in
      let acc = ref neutral in
      for i = lo to hi do
        acc := combine !acc (f xs.(i))
      done;
      !acc
    in
    let partials = fork_join ~workers work in
    Array.fold_left combine neutral partials
  end
