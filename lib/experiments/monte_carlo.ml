open Model
open Numeric

let estimate_latency g sigma ~user ~samples rng =
  if samples <= 0 then invalid_arg "Monte_carlo.estimate_latency: samples must be positive";
  let b = Game.belief g user in
  let sampler = Prng.Alias.of_rationals (Belief.probs b) in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    let k = Prng.Alias.sample sampler rng in
    acc := !acc +. Rational.to_float (Pure.latency_in_state g sigma user k)
  done;
  !acc /. float_of_int samples

type row = {
  n : int;
  m : int;
  states : int;
  samples : int;
  max_rel_error : float;
  mean_rel_error : float;
}

let run ?(domains = 1) ~seed ~samples_list ~trials () =
  let n = 4 and m = 3 and states = 4 in
  Engine.sweep ~domains ~seed ~cells:samples_list ~trials
    ~task:(fun samples rng _trial ->
      let g =
        Generators.game rng ~n ~m
          ~weights:(Generators.Integer_weights 5)
          ~beliefs:(Generators.Shared_space { states; cap_bound = 6; grain = 5 })
      in
      let sigma = Array.init n (fun _ -> Prng.Rng.int rng m) in
      Array.init n (fun user ->
          let exact = Rational.to_float (Pure.latency g sigma user) in
          let estimate = estimate_latency g sigma ~user ~samples rng in
          Float.abs (estimate -. exact) /. exact))
    ~reduce:(fun samples per_trial ->
      let summary = Stats.Summary.of_array (Array.concat (Array.to_list per_trial)) in
      {
        n;
        m;
        states;
        samples;
        max_rel_error = summary.max;
        mean_rel_error = summary.mean;
      })

let table rows =
  let t = Stats.Table.create [ "n"; "m"; "states"; "samples"; "mean rel err"; "max rel err" ] in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.m;
          string_of_int r.states;
          string_of_int r.samples;
          Report.flt r.mean_rel_error;
          Report.flt r.max_rel_error;
        ])
    rows;
  t
