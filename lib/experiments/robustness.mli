(** E17 — the price of misinformation.

    The paper's model prices uncertainty into the game but never asks
    how much {e wrong} beliefs cost.  This experiment does: a ground
    truth distribution [q] over the state space is fixed, each user's
    belief is the contaminated mixture [(1-ε)·q + ε·noise_i] with
    private noise, the game is played to a pure Nash equilibrium, and
    the resulting assignment is priced under the {e true} distribution.
    The ratio against the optimum achievable under truth measures what
    belief accuracy is worth.  At [ε = 0] the game is a KP instance and
    the ratio is the ordinary price of anarchy; as [ε → 1] beliefs are
    pure noise. *)

type row = {
  epsilon : Numeric.Rational.t;  (** contamination level *)
  trials : int;
  mean_ratio : float;  (** mean realised SC1 / true OPT1 *)
  max_ratio : float;
  equilibrium_failures : int;  (** dynamics not converged (expect 0) *)
}

(** [run ~seed ~n ~m ~states ~epsilons ~trials ()] sweeps contamination
    levels; each trial draws a fresh truth, fresh noise and a fresh
    starting profile.  [noise] selects the contamination shape:
    [`Simplex] (diffuse random distributions, default) or [`Point]
    (confidently wrong: all mass on one random state).  Trials run
    through the sharded engine: rows are identical for any [domains]
    (default 1: serial). *)
val run :
  ?domains:int ->
  ?noise:[ `Simplex | `Point ] ->
  seed:int ->
  n:int ->
  m:int ->
  states:int ->
  epsilons:Numeric.Rational.t list ->
  trials:int ->
  unit ->
  row list

val table : row list -> Stats.Table.t
