(** E18 — the value of measurement.

    The paper motivates beliefs by "different sources of information
    regarding the network".  This experiment makes the pipeline
    concrete: each user estimates its belief from [k] independent
    observations of the network state (empirical distribution with
    Laplace smoothing, {!Model.Belief.from_counts}), the estimated game
    is played to equilibrium, and the assignment is priced under the
    true distribution.  As [k] grows the realised cost ratio should fall
    to the fully-informed level — quantifying what a measurement
    campaign buys. *)

type row = {
  observations : int;  (** samples per user (0 = uniform prior only) *)
  trials : int;
  mean_ratio : float;  (** mean realised SC1 / true OPT1 *)
  max_ratio : float;
  mean_belief_error : float;
      (** mean total-variation distance between the estimated belief and
          the truth *)
}

(** [run ~seed ~n ~m ~states ~observations ~trials ()] sweeps
    observation counts.  Trials run through the sharded engine: rows
    are identical for any [domains] (default 1: serial). *)
val run :
  ?domains:int ->
  seed:int ->
  n:int ->
  m:int ->
  states:int ->
  observations:int list ->
  trials:int ->
  unit ->
  row list

val table : row list -> Stats.Table.t
