(** Figure-style series: quantities swept against a size parameter.

    The paper prints no figures, but these are the curves its empirical
    section implies; `bench/main.exe` renders them as tables and ASCII
    histograms.  All series are deterministic in the seed. *)

type point = { n : int; m : int; value : float }

(** [fmne_existence ~seed ~ns ~ms ~trials] is the empirical probability
    that the fully mixed Nash equilibrium exists (Theorem 4.6 candidate
    inside (0,1)) under shared-space beliefs. *)
val fmne_existence : seed:int -> ns:int list -> ms:int list -> trials:int -> point list

(** [mean_pure_ne ~seed ~ns ~ms ~trials] is the mean number of pure Nash
    equilibria per instance. *)
val mean_pure_ne : seed:int -> ns:int list -> ms:int list -> trials:int -> point list

(** [poa_histogram ~seed ~trials ~bins] collects the SC1/OPT1 ratio of
    every pure NE over random instances into a histogram. *)
val poa_histogram : seed:int -> trials:int -> bins:int -> Stats.Histogram.t

(** [br_steps_histogram ~seed ~trials ~bins] collects best-response
    convergence lengths from random starts. *)
val br_steps_histogram : seed:int -> trials:int -> bins:int -> Stats.Histogram.t

(** [fmne_emc ~ns ~ms] is the exact expected maximum congestion
    [SC(w, P)] of the equiprobable fully mixed NE on [m] identical unit
    links with [n] unit-weight users, normalised by the perfectly-split
    load [n/m].  Deterministic (no sampling): computed by the
    load-distribution DP, which handles [n] far beyond the seed
    enumerator's [m^n] ceiling. *)
val fmne_emc : ns:int list -> ms:int list -> point list

(** [lpt_quality ~seed ~ms ~trials] checks Graham's LPT guarantee on
    identical links: for each m, the worst observed makespan ratio of
    the LPT equilibrium against the (4/3 - 1/(3m)) bound. *)
val lpt_quality : seed:int -> ms:int list -> trials:int -> (int * float * float) list

val table : string -> point list -> Stats.Table.t
