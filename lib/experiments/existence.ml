open Model

type row = {
  n : int;
  m : int;
  weights : string;
  beliefs : string;
  trials : int;
  with_pure : int;
  min_ne : int;
  mean_ne : float;
  max_ne : int;
  br_converged : int;
  mean_br_steps : float;
}

let random_profile rng g =
  Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g))

(* Per-trial outcome; folded into a row in trial order by [reduce]. *)
type outcome = { ne_count : int; converged_steps : int option }

let run ?(domains = 1) ~seed ~ns ~ms ~trials ~weights ~beliefs () =
  let cells = List.concat_map (fun n -> List.map (fun m -> (n, m)) ms) ns in
  Engine.sweep ~domains ~seed ~cells ~trials
    ~task:(fun (n, m) rng _trial ->
      let g = Generators.game rng ~n ~m ~weights ~beliefs in
      (* [count] sweeps an incremental view over all m^n profiles and
         [converge] holds one view for the whole walk — per-trial cost
         is dominated by the O(n·m) Nash checks, not load recomputes. *)
      let ne_count = Algo.Enumerate.count g in
      let start = random_profile rng g in
      let budget = 16 * n * m * (n + m) in
      let outcome = Algo.Best_response.converge g ~max_steps:budget start in
      { ne_count; converged_steps = (if outcome.converged then Some outcome.steps else None) })
    ~reduce:(fun (n, m) outcomes ->
      let with_pure = ref 0 in
      let sum = ref 0 and min_ne = ref max_int and max_ne = ref 0 in
      let br_converged = ref 0 in
      let br_steps = ref 0 in
      Array.iter
        (fun o ->
          if o.ne_count > 0 then incr with_pure;
          sum := !sum + o.ne_count;
          if o.ne_count < !min_ne then min_ne := o.ne_count;
          if o.ne_count > !max_ne then max_ne := o.ne_count;
          match o.converged_steps with
          | Some steps ->
            incr br_converged;
            br_steps := !br_steps + steps
          | None -> ())
        outcomes;
      {
        n;
        m;
        weights = Generators.weight_family_name weights;
        beliefs = Generators.belief_family_name beliefs;
        trials;
        with_pure = !with_pure;
        min_ne = !min_ne;
        mean_ne = float_of_int !sum /. float_of_int (Array.length outcomes);
        max_ne = !max_ne;
        br_converged = !br_converged;
        mean_br_steps =
          (if !br_converged = 0 then Float.nan
           else float_of_int !br_steps /. float_of_int !br_converged);
      })

let table rows =
  let t =
    Stats.Table.create
      [ "n"; "m"; "weights"; "beliefs"; "trials"; "pure NE"; "min#"; "mean#"; "max#"; "BR conv"; "BR steps" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.m;
          r.weights;
          r.beliefs;
          string_of_int r.trials;
          Report.pct r.with_pure r.trials;
          string_of_int r.min_ne;
          Report.flt r.mean_ne;
          string_of_int r.max_ne;
          Report.pct r.br_converged r.trials;
          Report.flt r.mean_br_steps;
        ])
    rows;
  t
