(** Experiment E5 (and the engine behind E4): existence of pure Nash
    equilibria on random instances — the paper's own evidence for
    Conjecture 3.7 ("simulations ran on numerous instances of the game
    … suggest the existence of pure NE", Section 3.2). *)

type row = {
  n : int;
  m : int;
  weights : string;
  beliefs : string;
  trials : int;
  with_pure : int;  (** instances possessing at least one pure NE *)
  min_ne : int;
  mean_ne : float;
  max_ne : int;
  br_converged : int;  (** best-response runs reaching a NE in budget *)
  mean_br_steps : float;
}

(** [run ~seed ~ns ~ms ~trials ~weights ~beliefs ()] enumerates pure
    Nash equilibria exhaustively on [trials] random instances for every
    (n, m) pair, and also follows best-response dynamics from a random
    start.  Every (cell, trial) derives its own generator from [seed]
    via the sharded engine, so the rows are identical for any [domains]
    (default 1: serial). *)
val run :
  ?domains:int ->
  seed:int ->
  ns:int list ->
  ms:int list ->
  trials:int ->
  weights:Generators.weight_family ->
  beliefs:Generators.belief_family ->
  unit ->
  row list

(** [table rows] renders the sweep for printing. *)
val table : row list -> Stats.Table.t
