open Model
open Numeric

type point = { n : int; m : int; value : float }

let cell_rng seed n m = Prng.Rng.create (seed + (7919 * n) + (104729 * m))

let sweep ~seed ~ns ~ms ~trials measure =
  List.concat_map
    (fun n ->
      List.map
        (fun m ->
          let rng = cell_rng seed n m in
          let acc = ref 0.0 in
          for _ = 1 to trials do
            acc := !acc +. measure rng ~n ~m
          done;
          { n; m; value = !acc /. float_of_int trials })
        ms)
    ns

let shared_space_game rng ~n ~m =
  Generators.game rng ~n ~m
    ~weights:(Generators.Integer_weights 4)
    ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })

let fmne_existence ~seed ~ns ~ms ~trials =
  sweep ~seed ~ns ~ms ~trials (fun rng ~n ~m ->
      if Algo.Fully_mixed.exists (shared_space_game rng ~n ~m) then 1.0 else 0.0)

let mean_pure_ne ~seed ~ns ~ms ~trials =
  sweep ~seed ~ns ~ms ~trials (fun rng ~n ~m ->
      float_of_int (Algo.Enumerate.count (shared_space_game rng ~n ~m)))

let poa_histogram ~seed ~trials ~bins =
  let h = Stats.Histogram.create ~lo:1.0 ~hi:3.0 ~bins in
  let rng = Prng.Rng.create seed in
  for _ = 1 to trials do
    let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
    let g = shared_space_game rng ~n ~m in
    let opt, _ = Social.opt1 g in
    List.iter
      (fun ne ->
        Stats.Histogram.add h (Rational.to_float (Rational.div (Pure.social_cost1 g ne) opt)))
      (Algo.Enumerate.pure_nash g)
  done;
  h

let br_steps_histogram ~seed ~trials ~bins =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:(float_of_int bins) ~bins in
  let rng = Prng.Rng.create seed in
  for _ = 1 to trials do
    let n = Prng.Rng.int_in rng 2 5 and m = Prng.Rng.int_in rng 2 3 in
    let g = shared_space_game rng ~n ~m in
    let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
    let o = Algo.Best_response.converge g ~max_steps:500 start in
    if o.converged then Stats.Histogram.add h (float_of_int o.steps)
  done;
  h

(* Expected maximum congestion of the equiprobable fully mixed NE
   (Theorem 4.8 / the classical KP FMNE) on identical unit links,
   normalised by the perfectly-split load n/m.  Exact via the
   load-distribution DP of [Model.Load_dist]: all n users form one
   class, so the state space is C(n + m - 1, m - 1) and n = 40 is
   instant where the seed enumerator was hard-capped at m^n <= 10^6
   (n = 12 at m = 3).  The curve is the classical Θ(log m / log log m)
   FMNE blow-up, now measurable well past the old ceiling. *)
let fmne_emc ~ns ~ms =
  List.concat_map
    (fun n ->
      List.map
        (fun m ->
          let g =
            Game.kp ~weights:(Array.make n Rational.one)
              ~capacities:(Array.make m Rational.one)
          in
          let emc = Congestion.expected_max_congestion g (Mixed.uniform g) in
          { n; m; value = Rational.to_float (Rational.div emc (Rational.of_ints n m)) })
        ms)
    ns

let lpt_quality ~seed ~ms ~trials =
  List.map
    (fun m ->
      let rng = cell_rng seed 0 m in
      let worst = ref 1.0 in
      for _ = 1 to trials do
        let n = Prng.Rng.int_in rng 2 6 in
        (* Identical links: Graham's setting. *)
        let weights =
          Array.init n (fun _ -> Rational.of_int (Prng.Rng.int_in rng 1 9))
        in
        let g = Game.kp ~weights ~capacities:(Array.make m Rational.one) in
        let sigma = Kp.Kp_nash.solve g in
        let opt, _ = Congestion.optimum g in
        let ratio =
          Rational.to_float (Rational.div (Congestion.max_congestion g sigma) opt)
        in
        worst := Float.max !worst ratio
      done;
      let bound = (4.0 /. 3.0) -. (1.0 /. (3.0 *. float_of_int m)) in
      (m, !worst, bound))
    ms

let table label points =
  let t = Stats.Table.create [ "n"; "m"; label ] in
  List.iter
    (fun p -> Stats.Table.add_row t [ string_of_int p.n; string_of_int p.m; Report.flt p.value ])
    points;
  t
