open Model
open Numeric

type row = {
  presence : Rational.t;
  trials : int;
  informed_ratio : float;
  misinformed_ratio : float;
  robust_ratio : float;
  demand_gain : float;
  expected_congestion : float;
  equilibrium_failures : int;
}

(* SCw(σ) = Σ_ℓ load_ℓ² / c*_ℓ: every user pays its weight times its
   true latency load/c*. *)
let scw ~weights ~true_caps sigma =
  let m = Array.length true_caps in
  let loads = Array.make m Rational.zero in
  Array.iteri (fun i l -> loads.(l) <- Rational.add loads.(l) weights.(i)) sigma;
  let acc = ref Rational.zero in
  for l = 0 to m - 1 do
    acc := Rational.add !acc (Rational.div (Rational.mul loads.(l) loads.(l)) true_caps.(l))
  done;
  !acc

(* min over all m^n assignments — the coordinator's optimum under the
   true capacities.  Instances are kept small enough to enumerate. *)
let opt_scw g ~weights ~true_caps =
  let best = ref None in
  Social.iter_profiles g (fun sigma ->
      let c = scw ~weights ~true_caps sigma in
      match !best with
      | Some b when Rational.compare b c <= 0 -> ()
      | _ -> best := Some c);
  match !best with Some b -> b | None -> assert false

(* The exact load-vector distribution when user [i] is present with
   probability [p] on its equilibrium link: a mixed profile of a helper
   game with one extra phantom "absent" link (capacities are irrelevant
   — loads depend only on weights), row [i] putting [p] on [σ_i] and
   [1-p] on the phantom. *)
let demand_dist ~weights ~presence ~m sigma =
  let n = Array.length weights in
  let phantom_belief = Belief.certain (State.make (Array.make (m + 1) Rational.one)) in
  let helper = Game.make ~weights ~beliefs:(Array.make n phantom_belief) in
  let q = Rational.sub Rational.one presence in
  let rows =
    Array.init n (fun i ->
        let row = Array.make (m + 1) Rational.zero in
        row.(sigma.(i)) <- presence;
        row.(m) <- Rational.add row.(m) q;
        row)
  in
  Load_dist.of_mixed helper rows

let expected_scw d ~true_caps =
  Load_dist.expect d (fun loads ->
      let acc = ref Rational.zero in
      Array.iteri
        (fun l c -> acc := Rational.add !acc (Rational.div (Rational.mul loads.(l) loads.(l)) c))
        true_caps;
      !acc)

let expected_max_congestion d ~true_caps =
  Load_dist.expect d (fun loads ->
      let worst = ref Rational.zero in
      Array.iteri (fun l c -> worst := Rational.max !worst (Rational.div loads.(l) c)) true_caps;
      !worst)

type trial = {
  t_informed : Rational.t;
  t_misinformed : Rational.t;
  t_robust : Rational.t;
  t_gain : Rational.t;
  t_congestion : Rational.t;
}

let run ?(domains = 1) ~seed ~n ~m ~states ~presences ~trials () =
  Engine.sweep ~domains ~seed ~cells:presences ~trials
    ~task:(fun presence rng _trial ->
      (* Draw every random input first, in a fixed order, so all four
         populations share one instance and one starting profile. *)
      let space = Generators.state_space rng ~m ~states ~cap_bound:6 in
      let truth = State.state space (Prng.Rng.int rng states) in
      let true_caps = State.capacities truth in
      let weights = Array.init n (fun _ -> Rational.of_int (Prng.Rng.int_in rng 1 5)) in
      let noisy =
        Array.init n (fun _ ->
            Belief.make space (Prng.Rng.positive_simplex rng ~dim:states ~grain:(states + 3)))
      in
      let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
      (* The robust population knows only the hull of the state space:
         per-link intervals from the least to the largest capacity any
         state allows — the truth always lies inside. *)
      let hull =
        Array.init m (fun l ->
            let lo = ref (State.capacity (State.state space 0) l) in
            let hi = ref !lo in
            for k = 1 to states - 1 do
              let c = State.capacity (State.state space k) l in
              lo := Rational.min !lo c;
              hi := Rational.max !hi c
            done;
            (!lo, !hi))
      in
      let budget = 64 * n * m * (n + m) in
      let solve g =
        let o = Algo.Best_response.converge g ~max_steps:budget start in
        if o.converged then Some o.profile else None
      in
      let informed_g = Game.make ~weights ~beliefs:(Array.make n (Belief.certain truth)) in
      let misinformed_g = Game.make ~weights ~beliefs:noisy in
      let robust_g =
        Game.make_uncertain ~weights
          ~uncertainty:(Array.init n (fun _ -> Uncertainty.strict_of_intervals hull))
      in
      let bernoulli_g =
        Game.make_uncertain ~weights
          ~uncertainty:
            (Array.init n (fun _ -> Uncertainty.participation ~presence (Belief.certain truth)))
      in
      match (solve informed_g, solve misinformed_g, solve robust_g, solve bernoulli_g) with
      | Some s_inf, Some s_mis, Some s_rob, Some s_ber ->
        let opt = opt_scw informed_g ~weights ~true_caps in
        let ratio sigma = Rational.div (scw ~weights ~true_caps sigma) opt in
        let d_ber = demand_dist ~weights ~presence ~m s_ber in
        let d_inf = demand_dist ~weights ~presence ~m s_inf in
        Some
          {
            t_informed = ratio s_inf;
            t_misinformed = ratio s_mis;
            t_robust = ratio s_rob;
            t_gain =
              Rational.div (expected_scw d_ber ~true_caps) (expected_scw d_inf ~true_caps);
            t_congestion = expected_max_congestion d_ber ~true_caps;
          }
      | _ -> None)
    ~reduce:(fun presence outcomes ->
      let informed = ref Stats.Welford.empty in
      let misinformed = ref Stats.Welford.empty in
      let robust = ref Stats.Welford.empty in
      let gain = ref Stats.Welford.empty in
      let congestion = ref Stats.Welford.empty in
      let failures = ref 0 in
      let add acc q = acc := Stats.Welford.add !acc (Rational.to_float q) in
      Array.iter
        (function
          | Some t ->
            add informed t.t_informed;
            add misinformed t.t_misinformed;
            add robust t.t_robust;
            add gain t.t_gain;
            add congestion t.t_congestion
          | None -> incr failures)
        outcomes;
      let mean acc = if Stats.Welford.count !acc = 0 then Float.nan else Stats.Welford.mean !acc in
      {
        presence;
        trials;
        informed_ratio = mean informed;
        misinformed_ratio = mean misinformed;
        robust_ratio = mean robust;
        demand_gain = mean gain;
        expected_congestion = mean congestion;
        equilibrium_failures = !failures;
      })

let table rows =
  let t =
    Stats.Table.create
      [
        "presence p"; "trials"; "informed SCw/OPTw"; "misinformed"; "robust (strict)";
        "demand gain"; "E[max congestion]"; "BR failures";
      ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          Rational.to_string r.presence;
          string_of_int r.trials;
          Report.flt r.informed_ratio;
          Report.flt r.misinformed_ratio;
          Report.flt r.robust_ratio;
          Report.flt r.demand_gain;
          Report.flt r.expected_congestion;
          string_of_int r.equilibrium_failures;
        ])
    rows;
  t
