(** Experiments E4 and E6: response cycles in the game graph.

    E4 (the n = 3 result of Section 3.1): every 3-user game possesses a
    pure NE and its best-response graph has no cycle — we verify both on
    random instances by exhaustive graph search.

    E6 (Section 3.2, observation of B. Monien): the game is not an
    ordinal potential game because some instance's state space contains
    a {e better-response} cycle — we search for such witnesses. *)

type row = {
  n : int;
  m : int;
  beliefs : string;
  trials : int;
  best_response_cycles : int;  (** instances with a best-response cycle *)
  better_response_cycles : int;  (** instances with a better-response cycle *)
  shortest_witness : int option;  (** length of the shortest cycle found *)
  all_have_pure_ne : bool;
}

(** [run ~seed ~ns ~ms ~trials ~weights ~beliefs ()] searches both
    graphs of every sampled instance exhaustively.  Trials run through
    the sharded engine: rows are identical for any [domains]
    (default 1: serial). *)
val run :
  ?domains:int ->
  seed:int ->
  ns:int list ->
  ms:int list ->
  trials:int ->
  weights:Generators.weight_family ->
  beliefs:Generators.belief_family ->
  unit ->
  row list

(** [find_better_response_witness ~seed ~trials] scans random small
    instances and returns the first game whose better-response graph
    contains a cycle, with the witness cycle. *)
val find_better_response_witness :
  seed:int -> trials:int -> (Model.Game.t * Model.Pure.profile list) option

val table : row list -> Stats.Table.t
