open Model
open Numeric

type row = {
  n : int;
  m : int;
  beliefs : string;
  trials : int;
  fmne_exists : int;
  candidate_rows_sum_one : int;
  fmne_is_nash : int;
  latencies_match_lemma41 : int;
  equiprobable : int;
  pure_ne_checked : int;
  dominated_by_fmne : int;
  sc_maximal : int;
}

let rows_sum_one p = Array.for_all (fun row -> Rational.equal (Qvec.sum row) Rational.one) p

let equiprobable g p =
  let share = Rational.of_ints 1 (Game.links g) in
  Array.for_all (Array.for_all (Rational.equal share)) p

(* λ_i(P) ≤ λ_i(F) for every user (Lemma 4.9), using the candidate
   comparator even when no fully mixed NE exists (Corollary 4.10).
   Both sides arrive as cached [Mixed.Eval]s: the comparator is built
   once per trial and reused across every pure NE checked against it. *)
let dominated g pure_eval comparator =
  let rec check i =
    i >= Game.users g
    || (Rational.compare (Mixed.Eval.min_latency pure_eval i)
          (Mixed.Eval.min_latency comparator i)
        <= 0
        && check (i + 1))
  in
  check 0

let sc_below pure_eval comparator =
  Rational.compare (Mixed.Eval.social_cost1 pure_eval) (Mixed.Eval.social_cost1 comparator) <= 0
  && Rational.compare (Mixed.Eval.social_cost2 pure_eval) (Mixed.Eval.social_cost2 comparator) <= 0

let run ~seed ~ns ~ms ~trials ~weights ~beliefs =
  let rng = Prng.Rng.create seed in
  List.concat_map
    (fun n ->
      List.map
        (fun m ->
          let exists = ref 0 and sums = ref 0 and nash = ref 0 in
          let lemma41 = ref 0 and equi = ref 0 in
          let checked = ref 0 and dominated_count = ref 0 and sc_max = ref 0 in
          for _ = 1 to trials do
            let g = Generators.game rng ~n ~m ~weights ~beliefs in
            let candidate = Algo.Fully_mixed.candidate g in
            if rows_sum_one candidate then incr sums;
            (* [unchecked]: candidate rows may leave [0, 1] when no
               FMNE exists — Corollary 4.10 compares against them
               anyway. *)
            let candidate_eval = Mixed.Eval.unchecked g candidate in
            (match Algo.Fully_mixed.compute g with
             | Some p ->
               incr exists;
               let p_eval = Mixed.Eval.make g p in
               if Mixed.Eval.is_nash p_eval then incr nash;
               let matches =
                 List.for_all
                   (fun i ->
                     Rational.equal (Mixed.Eval.min_latency p_eval i)
                       (Algo.Fully_mixed.equilibrium_latency g i))
                   (List.init n Fun.id)
               in
               if matches then incr lemma41;
               if equiprobable g p then incr equi
             | None -> ());
            List.iter
              (fun ne ->
                incr checked;
                let ne_eval = Mixed.Eval.make g (Mixed.of_pure g ne) in
                if dominated g ne_eval candidate_eval then incr dominated_count;
                if sc_below ne_eval candidate_eval then incr sc_max)
              (Algo.Enumerate.pure_nash g)
          done;
          {
            n;
            m;
            beliefs = Generators.belief_family_name beliefs;
            trials;
            fmne_exists = !exists;
            candidate_rows_sum_one = !sums;
            fmne_is_nash = !nash;
            latencies_match_lemma41 = !lemma41;
            equiprobable = !equi;
            pure_ne_checked = !checked;
            dominated_by_fmne = !dominated_count;
            sc_maximal = !sc_max;
          })
        ms)
    ns

let table rows =
  let t =
    Stats.Table.create
      [
        "n"; "m"; "beliefs"; "trials"; "FMNE"; "rows=1"; "is NE"; "Lem4.1"; "p=1/m";
        "pure NE"; "dominated"; "SC max";
      ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.m;
          r.beliefs;
          string_of_int r.trials;
          Report.pct r.fmne_exists r.trials;
          Report.pct r.candidate_rows_sum_one r.trials;
          Report.pct r.fmne_is_nash r.fmne_exists;
          Report.pct r.latencies_match_lemma41 r.fmne_exists;
          Report.pct r.equiprobable r.fmne_exists;
          string_of_int r.pure_ne_checked;
          Report.pct r.dominated_by_fmne r.pure_ne_checked;
          Report.pct r.sc_maximal r.pure_ne_checked;
        ])
    rows;
  t
