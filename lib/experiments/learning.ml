open Model
open Numeric

type row = {
  observations : int;
  trials : int;
  mean_ratio : float;
  max_ratio : float;
  mean_belief_error : float;
}

(* Total variation distance between an estimated belief and the truth. *)
let tv_distance estimated truth =
  let probs = Belief.probs estimated in
  let acc = ref Rational.zero in
  Array.iteri (fun k p -> acc := Rational.add !acc (Rational.abs (Rational.sub p truth.(k)))) probs;
  Rational.to_float (Rational.div !acc Rational.two)

let run ?(domains = 1) ~seed ~n ~m ~states ~observations ~trials () =
  Engine.sweep ~domains ~seed ~cells:observations ~trials
    ~task:(fun k rng _trial ->
      let space = Generators.state_space rng ~m ~states ~cap_bound:6 in
      let truth = Prng.Rng.positive_simplex rng ~dim:states ~grain:(states + 3) in
      let sampler = Prng.Alias.of_rationals truth in
      let weights = Array.init n (fun _ -> Rational.of_int (Prng.Rng.int_in rng 1 5)) in
      let tv_errors = Array.make n 0.0 in
      let beliefs =
        Array.init n (fun i ->
            let counts = Array.make states 0 in
            for _ = 1 to k do
              let s = Prng.Alias.sample sampler rng in
              counts.(s) <- counts.(s) + 1
            done;
            let b = Belief.from_counts space counts ~smoothing:Rational.one in
            tv_errors.(i) <- tv_distance b truth;
            b)
      in
      let g = Game.make ~weights ~beliefs in
      let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
      let o = Algo.Best_response.converge g ~max_steps:(64 * n * m * (n + m)) start in
      let ratio =
        if not o.converged then None
        else begin
          let true_belief = Belief.make space truth in
          let true_caps = Belief.effective_capacities true_belief in
          (* One view materialises the final loads; the realised cost
             reads them under the true capacities (the players' beliefs
             only shaped the dynamics above). *)
          let v = View.of_profile g o.profile in
          let realised =
            Rational.sum
              (List.init n (fun i ->
                   Rational.div (View.load v o.profile.(i)) true_caps.(o.profile.(i))))
          in
          let informed = Game.make ~weights ~beliefs:(Array.make n true_belief) in
          let opt, _ = Social.opt1_bb informed in
          Some (Rational.to_float (Rational.div realised opt))
        end
      in
      (tv_errors, ratio))
    ~reduce:(fun k per_trial ->
      let ratios = ref Stats.Welford.empty in
      let errors = ref Stats.Welford.empty in
      Array.iter
        (fun (tv_errors, ratio) ->
          Array.iter (fun e -> errors := Stats.Welford.add !errors e) tv_errors;
          match ratio with
          | Some r -> ratios := Stats.Welford.add !ratios r
          | None -> ())
        per_trial;
      {
        observations = k;
        trials;
        mean_ratio = Stats.Welford.mean !ratios;
        max_ratio = Stats.Welford.max !ratios;
        mean_belief_error = Stats.Welford.mean !errors;
      })

let table rows =
  let t =
    Stats.Table.create
      [ "observations/user"; "trials"; "mean realised SC1 / true OPT1"; "max"; "mean TV error" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.observations;
          string_of_int r.trials;
          Report.flt r.mean_ratio;
          Report.flt r.max_ratio;
          Report.flt r.mean_belief_error;
        ])
    rows;
  t
