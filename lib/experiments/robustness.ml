open Model
open Numeric

type row = {
  epsilon : Rational.t;
  trials : int;
  mean_ratio : float;
  max_ratio : float;
  equilibrium_failures : int;
}

(* b = (1-ε)·truth + ε·noise, exactly. *)
let contaminate ~epsilon ~truth ~noise =
  let keep = Rational.sub Rational.one epsilon in
  Array.init (Array.length truth) (fun k ->
      Rational.add (Rational.mul keep truth.(k)) (Rational.mul epsilon noise.(k)))

let run ?(domains = 1) ?(noise = `Simplex) ~seed ~n ~m ~states ~epsilons ~trials () =
  Engine.sweep ~domains ~seed ~cells:epsilons ~trials
    ~task:(fun epsilon rng _trial ->
      let space = Generators.state_space rng ~m ~states ~cap_bound:6 in
      let truth = Prng.Rng.positive_simplex rng ~dim:states ~grain:(states + 3) in
      let weights =
        Array.init n (fun _ -> Rational.of_int (Prng.Rng.int_in rng 1 5))
      in
      let beliefs =
        Array.init n (fun _ ->
            let noise_dist =
              match noise with
              | `Simplex -> Prng.Rng.positive_simplex rng ~dim:states ~grain:(states + 3)
              | `Point ->
                (* Confidently wrong: all mass on one random state. *)
                let k = Prng.Rng.int rng states in
                Array.init states (fun j -> if j = k then Rational.one else Rational.zero)
            in
            Belief.make space (contaminate ~epsilon ~truth ~noise:noise_dist))
      in
      let g = Game.make ~weights ~beliefs in
      let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
      let o = Algo.Best_response.converge g ~max_steps:(64 * n * m * (n + m)) start in
      if not o.converged then None
      else begin
        (* Price the equilibrium under the truth: one view materialises
           the final loads, read under the true capacities. *)
        let true_belief = Belief.make space truth in
        let true_caps = Belief.effective_capacities true_belief in
        let v = View.of_profile g o.profile in
        let realised =
          Rational.sum
            (List.init n (fun i ->
                 Rational.div (View.load v o.profile.(i)) true_caps.(o.profile.(i))))
        in
        (* The best any coordinator could do if everyone knew the
           truth: OPT1 of the game with the true shared belief. *)
        let informed =
          Game.make ~weights ~beliefs:(Array.make n true_belief)
        in
        let opt, _ = Social.opt1 informed in
        Some (Rational.to_float (Rational.div realised opt))
      end)
    ~reduce:(fun epsilon outcomes ->
      let ratios = ref Stats.Welford.empty in
      let failures = ref 0 in
      Array.iter
        (function
          | Some ratio -> ratios := Stats.Welford.add !ratios ratio
          | None -> incr failures)
        outcomes;
      {
        epsilon;
        trials;
        mean_ratio = (if Stats.Welford.count !ratios = 0 then Float.nan else Stats.Welford.mean !ratios);
        max_ratio = (if Stats.Welford.count !ratios = 0 then Float.nan else Stats.Welford.max !ratios);
        equilibrium_failures = !failures;
      })

let table rows =
  let t =
    Stats.Table.create
      [ "ε (contamination)"; "trials"; "mean realised SC1 / true OPT1"; "max"; "BR failures" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          Rational.to_string r.epsilon;
          string_of_int r.trials;
          Report.flt r.mean_ratio;
          Report.flt r.max_ratio;
          string_of_int r.equilibrium_failures;
        ])
    rows;
  t
