(** E18 — the price of ignorance across uncertainty backends.

    The {!Model.Uncertainty} interface prices one network three ways:
    through the true capacities (informed Bayesian point beliefs),
    through wrong beliefs (misinformed Bayesian), and through the
    adversarial hull of the state space (robust [Strict]).  This
    experiment plays all three populations — plus a Bernoulli
    population that knows the truth but faces random demand
    ([Participation] with presence [p]) — on shared sampled instances
    and prices every equilibrium under the {e true} capacities, so the
    rows compare exactly what each kind of ignorance costs.

    The cost metric is the weighted social cost
    [SCw(σ) = Σ_ℓ load_ℓ(σ)² / c*_ℓ] (every user pays its weight times
    its true latency); informed, misinformed and robust equilibria are
    reported as the exact ratio [SCw(σ)/OPTw] against the optimal
    assignment under truth, so every ratio is [≥ 1].  The Bernoulli
    column is the {e demand gain}
    [E[SCw(σ_bernoulli)] / E[SCw(σ_informed)]], both expectations over
    the same Bernoulli presence draws via the exact load-vector
    distribution ({!Model.Load_dist} over a helper game with a phantom
    "absent" link) — at [p = 1] the two profiles coincide and the gain
    is exactly [1]. *)

type row = {
  presence : Numeric.Rational.t;  (** Bernoulli presence probability *)
  trials : int;
  informed_ratio : float;  (** mean SCw(informed)/OPTw, ≥ 1 *)
  misinformed_ratio : float;  (** mean SCw(misinformed)/OPTw, ≥ 1 *)
  robust_ratio : float;  (** mean SCw(robust)/OPTw, ≥ 1 *)
  demand_gain : float;
      (** mean E[SCw(bernoulli)]/E[SCw(informed)] under random demand;
          exactly [1] at [presence = 1] *)
  expected_congestion : float;
      (** mean E[max_ℓ load_ℓ/c*_ℓ] of the Bernoulli equilibrium under
          random demand *)
  equilibrium_failures : int;  (** dynamics not converged (expect 0) *)
}

(** [run ~seed ~n ~m ~states ~presences ~trials ()] sweeps Bernoulli
    presence levels; each trial draws a fresh state space, true state,
    weights, misinformed beliefs and starting profile, shared by all
    four populations.  Trials run through the sharded engine: rows are
    identical for any [domains] (default 1: serial). *)
val run :
  ?domains:int ->
  seed:int ->
  n:int ->
  m:int ->
  states:int ->
  presences:Numeric.Rational.t list ->
  trials:int ->
  unit ->
  row list

val table : row list -> Stats.Table.t
