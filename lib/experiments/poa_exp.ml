open Model
open Numeric

type row = {
  n : int;
  m : int;
  beliefs : string;
  trials : int;
  equilibria : int;
  max_ratio1 : float;
  max_ratio2 : float;
  mean_bound1 : float;
  min_slack1 : float;
  min_slack2 : float;
  violations : int;
}

(* Per-equilibrium measurements, already rounded to float except the
   exact violation verdict (decided over rationals in the task). *)
type eq_outcome = {
  r1 : float;
  r2 : float;
  slack1 : float;
  slack2 : float;
  violated : bool;
}

type outcome = { bound_f : float; eqs : eq_outcome list }

let run ?(domains = 1) ~seed ~ns ~ms ~trials ~weights ~beliefs ~bound () =
  let cells = List.concat_map (fun n -> List.map (fun m -> (n, m)) ms) ns in
  Engine.sweep ~domains ~seed ~cells ~trials
    ~task:(fun (n, m) rng _trial ->
      let g = Generators.game rng ~n ~m ~weights ~beliefs in
      let bound_value =
        match bound with
        | `Uniform -> Bounds.theorem_4_13 g
        | `General -> Bounds.theorem_4_14 g
      in
      let opt1, _ = Social.opt1_bb g and opt2, _ = Social.opt2_bb g in
      let consider ~sc1 ~sc2 =
        let r1 = Rational.div sc1 opt1 in
        let r2 = Rational.div sc2 opt2 in
        {
          r1 = Rational.to_float r1;
          r2 = Rational.to_float r2;
          slack1 = Rational.to_float (Rational.sub bound_value r1);
          slack2 = Rational.to_float (Rational.sub bound_value r2);
          violated =
            Rational.compare r1 bound_value > 0 || Rational.compare r2 bound_value > 0;
        }
      in
      (* A pure equilibrium's mixed costs are its pure costs (the
         product measure is a point mass), so score it directly on the
         profile instead of expanding the degenerate m^n expectation
         through [Mixed.of_pure]. *)
      let pure =
        List.map
          (fun ne -> consider ~sc1:(Pure.social_cost1 g ne) ~sc2:(Pure.social_cost2 g ne))
          (Algo.Enumerate.pure_nash g)
      in
      let fm =
        match Algo.Fully_mixed.compute g with
        | Some p ->
          (* One cached evaluator serves both social costs. *)
          let e = Mixed.Eval.make g p in
          [ consider ~sc1:(Mixed.Eval.social_cost1 e) ~sc2:(Mixed.Eval.social_cost2 e) ]
        | None -> []
      in
      { bound_f = Rational.to_float bound_value; eqs = pure @ fm })
    ~reduce:(fun (n, m) outcomes ->
      let equilibria = ref 0 and violations = ref 0 in
      let max_r1 = ref neg_infinity and max_r2 = ref neg_infinity in
      let bounds = ref Stats.Welford.empty in
      let min_slack1 = ref infinity and min_slack2 = ref infinity in
      Array.iter
        (fun o ->
          bounds := Stats.Welford.add !bounds o.bound_f;
          List.iter
            (fun e ->
              incr equilibria;
              if e.violated then incr violations;
              max_r1 := Float.max !max_r1 e.r1;
              max_r2 := Float.max !max_r2 e.r2;
              min_slack1 := Float.min !min_slack1 e.slack1;
              min_slack2 := Float.min !min_slack2 e.slack2)
            o.eqs)
        outcomes;
      {
        n;
        m;
        beliefs = Generators.belief_family_name beliefs;
        trials;
        equilibria = !equilibria;
        max_ratio1 = !max_r1;
        max_ratio2 = !max_r2;
        mean_bound1 = Stats.Welford.mean !bounds;
        min_slack1 = !min_slack1;
        min_slack2 = !min_slack2;
        violations = !violations;
      })

let table rows =
  let t =
    Stats.Table.create
      [
        "n"; "m"; "beliefs"; "trials"; "equilibria"; "max SC1/OPT1"; "max SC2/OPT2";
        "mean bound"; "min slack1"; "min slack2"; "violations";
      ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.m;
          r.beliefs;
          string_of_int r.trials;
          string_of_int r.equilibria;
          Report.flt r.max_ratio1;
          Report.flt r.max_ratio2;
          Report.flt r.mean_bound1;
          Report.flt r.min_slack1;
          Report.flt r.min_slack2;
          string_of_int r.violations;
        ])
    rows;
  t
