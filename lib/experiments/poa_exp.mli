(** Experiments E11/E12: empirical price of anarchy against the bounds
    of Theorems 4.13 (uniform user beliefs) and 4.14 (general case).

    For every sampled instance, the worst coordination ratio over all
    pure Nash equilibria — and over the fully mixed equilibrium when it
    exists — is compared with the theorem's bound value.  The paper
    expects the bound to hold with slack (it conjectures the bounds are
    not tight). *)

type row = {
  n : int;
  m : int;
  beliefs : string;
  trials : int;
  equilibria : int;  (** equilibria examined in total *)
  max_ratio1 : float;  (** worst observed SC1/OPT1 *)
  max_ratio2 : float;
  mean_bound1 : float;  (** mean theorem bound over instances *)
  min_slack1 : float;  (** min over instances of bound − worst ratio *)
  min_slack2 : float;
  violations : int;  (** equilibria beating the bound — must be 0 *)
}

(** [run ~seed ~ns ~ms ~trials ~weights ~beliefs ~bound ()] sweeps with
    the chosen bound ([`Uniform] = Theorem 4.13, [`General] = Theorem
    4.14).  With [`Uniform] the generator must produce uniform-view
    games.  Trials run through the sharded engine: rows are identical
    for any [domains] (default 1: serial). *)
val run :
  ?domains:int ->
  seed:int ->
  ns:int list ->
  ms:int list ->
  trials:int ->
  weights:Generators.weight_family ->
  beliefs:Generators.belief_family ->
  bound:[ `Uniform | `General ] ->
  unit ->
  row list

val table : row list -> Stats.Table.t
