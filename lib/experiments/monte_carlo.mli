open Model

(** Monte-Carlo validation of the effective-capacity reduction.

    Section 2 computes every expected latency through the effective
    capacity [c^ℓ_i] (a belief-weighted harmonic mean).  This module
    re-estimates the same expectations the long way — sampling network
    states from each user's belief (Walker alias sampling) and averaging
    realised latencies — and reports the relative error against the
    exact value.  It doubles as an integration test of the [prng]
    substrate and as the harness a practitioner would use to plug in
    empirical state traces. *)

(** [estimate_latency g sigma ~user ~samples rng] draws [samples] states
    from the user's belief and averages the realised latencies
    [λ_{i,φ}(σ)]. *)
val estimate_latency :
  Game.t -> Pure.profile -> user:int -> samples:int -> Prng.Rng.t -> float

type row = {
  n : int;
  m : int;
  states : int;
  samples : int;
  max_rel_error : float;  (** worst relative error across users/trials *)
  mean_rel_error : float;
}

(** [run ~seed ~samples_list ~trials ()] sweeps sample counts; the
    error should shrink like 1/√samples, converging on the exact
    reduction.  Trials run through the sharded engine: rows are
    identical for any [domains] (default 1: serial). *)
val run :
  ?domains:int -> seed:int -> samples_list:int list -> trials:int -> unit -> row list

val table : row list -> Stats.Table.t
