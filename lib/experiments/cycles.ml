type row = {
  n : int;
  m : int;
  beliefs : string;
  trials : int;
  best_response_cycles : int;
  better_response_cycles : int;
  shortest_witness : int option;
  all_have_pure_ne : bool;
}

(* Per-trial outcome; folded into a row in trial order by [reduce]. *)
type outcome = { best : bool; better_len : int option; has_pure : bool }

let run ?(domains = 1) ~seed ~ns ~ms ~trials ~weights ~beliefs () =
  let cells = List.concat_map (fun n -> List.map (fun m -> (n, m)) ms) ns in
  Engine.sweep ~domains ~seed ~cells ~trials
    ~task:(fun (n, m) rng _trial ->
      let g = Generators.game rng ~n ~m ~weights ~beliefs in
      (* Both graph searches and the existence scan run on incremental
         views underneath (O(1) load deltas per edge/profile), which is
         what makes exhausting m^n states per trial affordable here. *)
      let best =
        Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Best_response <> None
      in
      let better_len =
        match Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Better_response with
        | Some c -> Some (List.length c)
        | None -> None
      in
      { best; better_len; has_pure = Algo.Enumerate.exists g })
    ~reduce:(fun (n, m) outcomes ->
      let best = ref 0 and better = ref 0 in
      let shortest = ref None in
      let all_pure = ref true in
      Array.iter
        (fun o ->
          if o.best then incr best;
          (match o.better_len with
           | Some len ->
             incr better;
             (match !shortest with
              | Some s when s <= len -> ()
              | _ -> shortest := Some len)
           | None -> ());
          if not o.has_pure then all_pure := false)
        outcomes;
      {
        n;
        m;
        beliefs = Generators.belief_family_name beliefs;
        trials;
        best_response_cycles = !best;
        better_response_cycles = !better;
        shortest_witness = !shortest;
        all_have_pure_ne = !all_pure;
      })

let find_better_response_witness ~seed ~trials =
  let rng = Prng.Rng.create seed in
  let rec go k =
    if k > trials then None
    else begin
      let n = Prng.Rng.int_in rng 3 4 and m = Prng.Rng.int_in rng 2 3 in
      let g =
        Generators.game rng ~n ~m
          ~weights:(Generators.Integer_weights 4)
          ~beliefs:(Generators.Private_point { cap_bound = 6 })
      in
      match Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Better_response with
      | Some cycle -> Some (g, cycle)
      | None -> go (k + 1)
    end
  in
  go 1

let table rows =
  let t =
    Stats.Table.create
      [ "n"; "m"; "beliefs"; "trials"; "BR cycles"; "better-resp cycles"; "shortest"; "pure NE always" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.m;
          r.beliefs;
          string_of_int r.trials;
          string_of_int r.best_response_cycles;
          string_of_int r.better_response_cycles;
          (match r.shortest_witness with None -> "-" | Some s -> string_of_int s);
          string_of_bool r.all_have_pure_ne;
        ])
    rows;
  t
