(** Deterministic sharded experiment engine.

    An experiment is expressed as independent tasks; each task receives
    its own PRNG derived from [(seed, salt, task index)] via
    {!Prng.Rng.of_path}, so the stream a task draws from depends only on
    the task's identity — never on which domain runs it or how many
    domains there are.  Results come back in task order and are merged
    with a serial left fold, so every merge happens in the same order
    for any domain count.  Consequence: engine output is bit-identical
    for any [~domains], including [1].

    The environment variable [ENGINE_DOMAINS] (a positive integer)
    overrides every [~domains] argument — CI uses it to force the
    sharded code paths under [dune runtest]. *)

(** [effective_domains requested] is the [ENGINE_DOMAINS] override when
    set to a positive integer, else [requested]. *)
val effective_domains : int -> int

(** [map_tasks ~domains ~seed ?salt ?offset ~tasks f] runs
    [f rng i] for [i] in [0, tasks), where [rng] is
    [Rng.of_path seed [salt; offset + i]] ([salt] and [offset] default
    to [0]), sharded over [domains]; results are in task order. *)
val map_tasks :
  domains:int ->
  seed:int ->
  ?salt:int ->
  ?offset:int ->
  tasks:int ->
  (Prng.Rng.t -> int -> 'a) ->
  'a array

(** [fold_tasks ~domains ~seed ?salt ~tasks ~task ~init ~combine ()]
    is [map_tasks] followed by a serial left fold of [combine] over the
    per-task results in task order.  [combine] need not be commutative;
    because the fold is serial and ordered, it need not even be
    associative for determinism to hold. *)
val fold_tasks :
  domains:int ->
  seed:int ->
  ?salt:int ->
  tasks:int ->
  task:(Prng.Rng.t -> int -> 'a) ->
  init:'b ->
  combine:('b -> 'a -> 'b) ->
  unit ->
  'b

(** [sweep ~domains ~seed ~cells ~trials ~task ~reduce] runs a
    cells-by-trials experiment grid: for every cell [c] (index [ci] in
    [cells]) and trial [t] in [0, trials), [task c rng t] runs with
    [rng = Rng.of_path seed [ci; t]]; then [reduce c results] folds each
    cell's [trials]-length result array (in trial order) into a row.
    The full [cells × trials] grid is flattened into one task pool so
    load balances across uneven cells.  Rows come back in cell order. *)
val sweep :
  domains:int ->
  seed:int ->
  cells:'c list ->
  trials:int ->
  task:('c -> Prng.Rng.t -> int -> 'a) ->
  reduce:('c -> 'a array -> 'r) ->
  'r list
