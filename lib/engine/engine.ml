let effective_domains requested =
  match Sys.getenv_opt "ENGINE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d > 0 -> d
      | _ -> requested)
  | None -> requested

let map_tasks ~domains ~seed ?(salt = 0) ?(offset = 0) ~tasks f =
  if tasks < 0 then invalid_arg "Engine.map_tasks: tasks must be non-negative";
  let domains = effective_domains domains in
  Parallel.map_array ~domains
    (fun i -> f (Prng.Rng.of_path seed [ salt; offset + i ]) i)
    (Array.init tasks Fun.id)

let fold_tasks ~domains ~seed ?(salt = 0) ~tasks ~task ~init ~combine () =
  (* The parallel part is the task map; the fold is serial and in task
     order, so the merge sequence is independent of the domain count. *)
  Array.fold_left combine init (map_tasks ~domains ~seed ~salt ~tasks task)

let sweep ~domains ~seed ~cells ~trials ~task ~reduce =
  if trials < 0 then invalid_arg "Engine.sweep: trials must be non-negative";
  let cells_arr = Array.of_list cells in
  let k = Array.length cells_arr in
  let domains = effective_domains domains in
  (* One flat pool over the whole grid: cell boundaries do not align
     with domain boundaries, so slow cells share their load. *)
  let flat =
    Parallel.map_array ~domains
      (fun g ->
        let cell = g / trials and trial = g mod trials in
        task cells_arr.(cell) (Prng.Rng.of_path seed [ cell; trial ]) trial)
      (Array.init (k * trials) Fun.id)
  in
  List.mapi (fun c cell -> reduce cell (Array.sub flat (c * trials) trials)) cells
