(** The classical KP social cost: expected maximum congestion.

    Section 2 of the paper explains that with subjective beliefs "there
    is no objective value for the latency of a link", forcing the
    departure from the standard social cost of [13, 16] — the expected
    maximum congestion.  On the KP special case (point beliefs shared by
    all users) the objective latency exists again, and this module
    implements the classical definition exactly, which lets the test
    suite connect the paper's SC1/SC2 to the older literature: e.g. the
    fully-mixed-NE conjecture of [7]/[14] can be checked on KP instances
    produced by this library.

    All functions below require [Game.is_kp g] and use the shared
    capacity vector. *)

(** [max_congestion g sigma] is [max_ℓ load(ℓ)/c^ℓ] for a pure profile.
    @raise Invalid_argument unless [g] is a KP instance. *)
val max_congestion : Game.t -> Pure.profile -> Numeric.Rational.t

(** [expected_max_congestion g p] is the exact expectation of
    {!max_congestion} over the product distribution of the mixed
    profile [p] — the classical [SC(w, P)] of Section 4.  Computed via
    the {!Load_dist} dynamic program over distinct load vectors, not by
    enumerating the [m^n] realisations, so exchangeable users (equal
    weight, equal row) cost [C(n_c + m - 1, m - 1)] states per class:
    uniform fully mixed profiles far beyond the seed enumerator's
    [m^n <= 1_000_000] range are exact and fast.  [limit] bounds the
    number of distinct load states (default [1_000_000]); [domains]
    shards each large DP layer across OCaml domains with bit-identical
    results (see {!Load_dist.of_mixed}).
    @raise Invalid_argument unless [g] is a KP instance, or when the
    load-state space exceeds [limit]. *)
val expected_max_congestion :
  ?limit:int -> ?domains:int -> Game.t -> Mixed.profile -> Numeric.Rational.t

(** [estimate g p ~samples rng] is a Monte-Carlo estimate of
    {!expected_max_congestion} usable beyond the exact limit.  The
    sample sum is accumulated exactly and converted to float once. *)
val estimate : Game.t -> Mixed.profile -> samples:int -> Prng.Rng.t -> float

(** [optimum g] is the makespan optimum: the minimum over pure profiles
    of {!max_congestion}, with an argmin (the classical OPT of [13]).
    [domains] shards the sweep across OCaml domains, bit-identically
    (see {!View.fold}).
    @raise Invalid_argument unless [g] is a KP instance or when [m^n]
    exceeds [limit]. *)
val optimum : ?limit:int -> ?domains:int -> Game.t -> Numeric.Rational.t * Pure.profile
