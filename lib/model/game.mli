(** The routing game [G = (n, m, w, B)] (Section 2).

    [n] users with positive traffics [w] route on [m] parallel links;
    user [i]'s belief [b_i] over the network's state space induces the
    effective capacities [c^ℓ_i] through which all of its expected
    latencies are computed.  The game caches the full [n × m] effective
    capacity matrix at construction.

    Two constructors are provided: {!make} from explicit beliefs (the
    generative form), and {!of_capacities} from a user-specific capacity
    matrix directly (the reduced form; each row is realised as a Dirac
    belief over a private singleton state space, so the two forms agree
    on all quantities). *)

type t

(** [make ~weights ~beliefs] validates and builds a game.
    @raise Invalid_argument when there are no users, any weight is
    non-positive, beliefs disagree on the number of links, or there are
    fewer than two links. *)
val make : weights:Numeric.Rational.t array -> beliefs:Belief.t array -> t

(** [of_capacities ~weights caps] builds the reduced form directly from
    [caps.(i).(l) = c^l_i]. @raise Invalid_argument on dimension or
    positivity violations. *)
val of_capacities : weights:Numeric.Rational.t array -> Numeric.Rational.t array array -> t

(** [kp ~weights ~capacities] is the classical KP-model instance: every
    user is certain of the same capacity vector. *)
val kp : weights:Numeric.Rational.t array -> capacities:Numeric.Rational.t array -> t

val users : t -> int
val links : t -> int

(** [weight g i] is [w_i]. *)
val weight : t -> int -> Numeric.Rational.t

val weights : t -> Numeric.Rational.t array

(** [total_traffic g] is [Σ_i w_i]. *)
val total_traffic : t -> Numeric.Rational.t

(** [belief g i] is user [i]'s belief. *)
val belief : t -> int -> Belief.t

(** [capacity g i l] is the effective capacity [c^l_i]. *)
val capacity : t -> int -> int -> Numeric.Rational.t

(** [capacity_row g i] is user [i]'s effective capacity vector. *)
val capacity_row : t -> int -> Numeric.Rational.t array

(** [capacity_matrix g] is the full [n × m] matrix (fresh copy). *)
val capacity_matrix : t -> Numeric.Rational.t array array

(** [packed_tables g] is the game's native-int packing ({!Packing}),
    computed once at construction; [None] when any component exceeds
    the native range, in which case views stay on the exact lane. *)
val packed_tables : t -> Packing.t option

(** [is_kp g] holds when all users share the same effective capacity
    vector — the game is (observationally) a KP-model instance. *)
val is_kp : t -> bool

(** [has_uniform_beliefs g] holds when every user sees all links with
    equal effective capacity (the "uniform user beliefs" model). *)
val has_uniform_beliefs : t -> bool

(** [is_symmetric g] holds when all user weights are equal. *)
val is_symmetric : t -> bool

(** [restrict g ~drop] is the sub-game without user [drop] (used by the
    recursive algorithms of Section 3).
    @raise Invalid_argument when [drop] is out of range or the game has
    a single user. *)
val restrict : t -> drop:int -> t

val pp : Format.formatter -> t -> unit
