(** The routing game [G = (n, m, w, B)] (Section 2).

    [n] users with positive traffics [w] route on [m] parallel links;
    user [i]'s belief [b_i] over the network's state space induces the
    effective capacities [c^ℓ_i] through which all of its expected
    latencies are computed.  The game caches the full [n × m] effective
    capacity matrix at construction.

    Two belief-facing constructors are provided: {!make} from explicit
    beliefs (the generative form), and {!of_capacities} from a
    user-specific capacity matrix directly (the reduced form; each row
    is realised as a Dirac belief over a private singleton state space,
    so the two forms agree on all quantities).

    More generally, {!make_uncertain} accepts any {!Uncertainty}
    backend per user; {!make} is exactly [make_uncertain] over
    {!Uncertainty.bayesian} wrappers.  Two derived per-user quantities
    drive every latency downstream:

    {ul
    {- the {e contribution} [t_i = load_factor(u_i)·w_i] — the traffic
       other users expect to meet from user [i] (its full weight except
       under Bernoulli participation);}
    {- the {e bias} [β_i = w_i − t_i] — the surcharge on user [i]'s own
       expected latency, since it is always present for itself.}}

    User [i]'s expected latency on its chosen link [ℓ] is
    [(L_ℓ + β_i)/c^ℓ_i] where [L_ℓ] sums contributions, and the
    latency after a deviation to [ℓ'] is [(L_{ℓ'} + t_i + β_i)/c^{ℓ'}_i
    = (L_{ℓ'} + w_i)/c^{ℓ'}_i].  With every bias zero ([β_i = 0], the
    {e load-linear} case) both collapse to the paper's [load/ĉ] form,
    bit-identically to the pre-backend construction. *)

type t

(** [make ~weights ~beliefs] validates and builds a game.
    @raise Invalid_argument when there are no users, any weight is
    non-positive, beliefs disagree on the number of links, or there are
    fewer than two links. *)
val make : weights:Numeric.Rational.t array -> beliefs:Belief.t array -> t

(** [make_uncertain ~weights ~uncertainty] builds a game from per-user
    uncertainty backends ({!Uncertainty}).  Same validation as {!make};
    with all-Bayesian backends the result is bit-identical to
    [make ~weights ~beliefs]. *)
val make_uncertain :
  weights:Numeric.Rational.t array -> uncertainty:Uncertainty.t array -> t

(** [of_capacities ~weights caps] builds the reduced form directly from
    [caps.(i).(l) = c^l_i]. @raise Invalid_argument on dimension or
    positivity violations. *)
val of_capacities : weights:Numeric.Rational.t array -> Numeric.Rational.t array array -> t

(** [kp ~weights ~capacities] is the classical KP-model instance: every
    user is certain of the same capacity vector. *)
val kp : weights:Numeric.Rational.t array -> capacities:Numeric.Rational.t array -> t

val users : t -> int
val links : t -> int

(** [weight g i] is [w_i]. *)
val weight : t -> int -> Numeric.Rational.t

val weights : t -> Numeric.Rational.t array

(** [total_traffic g] is [Σ_i w_i]. *)
val total_traffic : t -> Numeric.Rational.t

(** [belief g i] is the belief through which user [i] prices
    capacities: its actual belief for the Bayesian and participation
    backends, and the decision-equivalent worst-case Dirac belief for
    the strict backend ({!Uncertainty.belief}). *)
val belief : t -> int -> Belief.t

(** [uncertainty g i] is user [i]'s uncertainty backend. *)
val uncertainty : t -> int -> Uncertainty.t

(** [contribution g i] is [t_i = load_factor(u_i)·w_i], the traffic
    link loads carry for user [i]; equal (physically) to [w_i] for
    load-linear users. *)
val contribution : t -> int -> Numeric.Rational.t

(** [bias g i] is [β_i = w_i − t_i], added to user [i]'s own expected
    latency on its chosen link; zero for load-linear users. *)
val bias : t -> int -> Numeric.Rational.t

(** [is_load_linear g] holds when every user's latency has the plain
    [load/ĉ] form (all biases zero) — always true for games built with
    {!make}/{!of_capacities}/{!kp}.  The packed native-int lane and the
    closed-form/mixed-equilibrium algorithms require it. *)
val is_load_linear : t -> bool

(** [capacity g i l] is the effective capacity [c^l_i]. *)
val capacity : t -> int -> int -> Numeric.Rational.t

(** [capacity_row g i] is user [i]'s effective capacity vector. *)
val capacity_row : t -> int -> Numeric.Rational.t array

(** [capacity_matrix g] is the full [n × m] matrix (fresh copy). *)
val capacity_matrix : t -> Numeric.Rational.t array array

(** [packed_tables g] is the game's native-int packing ({!Packing}),
    computed once at construction; [None] when any component exceeds
    the native range or the game is not load-linear (the packed
    predicates assume [load/ĉ] latencies), in which case views stay on
    the exact lane. *)
val packed_tables : t -> Packing.t option

(** [is_kp g] holds when all users share the same effective capacity
    vector — the game is (observationally) a KP-model instance. *)
val is_kp : t -> bool

(** [has_uniform_beliefs g] holds when every user sees all links with
    equal effective capacity (the "uniform user beliefs" model). *)
val has_uniform_beliefs : t -> bool

(** [is_symmetric g] holds when all user weights are equal. *)
val is_symmetric : t -> bool

(** [restrict g ~drop] is the sub-game without user [drop] (used by the
    recursive algorithms of Section 3).
    @raise Invalid_argument when [drop] is out of range or the game has
    a single user. *)
val restrict : t -> drop:int -> t

val pp : Format.formatter -> t -> unit
