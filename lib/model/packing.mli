(** Native-int packing of a game's numeric data.

    The packed tables are the backing store of the [View]/[Cview] fast
    lanes: link loads as integers scaled by the lcm of the weight
    denominators, capacities as reduced [(num, den)] int pairs.  Under
    the product bound checked by {!admits}, every latency comparison in
    the packed representation is a three-factor native multiply whose
    intermediates provably fit a native int — an exact computation with
    zero allocation and zero per-operation checks.  Construction
    returns [None] whenever any component would spill the native range;
    callers then fall back to the big-rational lane, so packing never
    changes results, only speed. *)

type t = {
  scale : int;  (** lcm of the weight denominators *)
  pw : int array;  (** [pw.(r)] = weight of row [r] · [scale] *)
  cn : int array;  (** [cn.(r*m + l)] = capacity numerator, > 0 *)
  cd : int array;  (** [cd.(r*m + l)] = capacity denominator, > 0 *)
  wsum : int;  (** Σ mult_r · pw.(r): total scaled traffic *)
  maxcn : int;
  maxcd : int;
  base_ok : bool;  (** {!admits} holds at [total = wsum] (no initial traffic) *)
}

(** [build ~mults weights capacities] packs one row per weight, where
    [mults.(r)] is the row's population multiplicity (all ones for
    per-user games, class counts for compressed games).  [None] when
    any scaled component exceeds the native range. *)
val build : mults:int array -> Numeric.Rational.t array -> Numeric.Rational.t array array -> t option

(** [admits ~total ~maxcn ~maxcd] holds when
    [2·total·maxcd·maxcn <= max_int] — the single bound under which
    every packed predicate product is exact. *)
val admits : total:int -> maxcn:int -> maxcd:int -> bool

(** [rescale pk initial] extends the scale to cover initial link
    traffic: [(scale, pw, iload0, total)] with the initial loads
    pre-scaled, or [None] on spill or bound failure. *)
val rescale : t -> Numeric.Rational.t array -> (int * int array * int array * int) option
