open Numeric

(* Native-int image of a game's numeric data, shared by the packed fast
   lanes of [View] and [Cview].  Loads are stored as integers scaled by
   [scale] (the lcm of the weight denominators) and capacities as
   reduced (numerator, denominator) int pairs, so every latency
   comparison becomes a three-factor native product.  [build] refuses
   (returns [None]) whenever any component spills the native range; the
   views then stay on the exact big-rational lane, so packing is a pure
   optimisation with no semantic surface. *)

type t = {
  scale : int; (* lcm of the weight denominators *)
  pw : int array; (* pw.(r) = weight_r · scale *)
  cn : int array; (* cn.(r*m + l) = num (capacity r l) > 0 *)
  cd : int array; (* cd.(r*m + l) = den (capacity r l) > 0 *)
  wsum : int; (* Σ mult_r · pw.(r): total scaled traffic *)
  maxcn : int;
  maxcd : int;
  base_ok : bool; (* the product bound holds with no initial traffic *)
}

exception Spill

let to_native b =
  match Bigint.to_int_opt b with
  | Some v -> v
  | None -> raise Spill

(* Every packed predicate evaluates products of the shape
   (load + weight)·cden·cnum with load + weight ≤ 2·total, so the one
   bound that makes all of them (and every intermediate) exact is
   2·total·maxcd·maxcn ≤ max_int.  Checked in Bigint once per view
   construction — after which the hot path carries no overflow checks
   at all. *)
let admits ~total ~maxcn ~maxcd =
  total >= 0
  &&
  match
    Bigint.to_int_opt
      (Bigint.mul
         (Bigint.mul (Bigint.of_int 2) (Bigint.of_int total))
         (Bigint.mul (Bigint.of_int maxcd) (Bigint.of_int maxcn)))
  with
  | Some _ -> true
  | None -> false

(* [scale_lcm from dens] extends the Bigint scale [from] to a common
   multiple of every denominator in [dens]. *)
let scale_lcm from dens =
  Array.fold_left (fun acc d -> Bigint.mul acc (Bigint.div d (Bigint.gcd acc d))) from dens

let build ~mults (weights : Rational.t array) (capacities : Rational.t array array) =
  try
    let n = Array.length weights in
    let m = Array.length capacities.(0) in
    let scale_b = scale_lcm Bigint.one (Array.map Rational.den weights) in
    let scale = to_native scale_b in
    let pw =
      Array.map
        (fun w -> to_native (Bigint.mul (Rational.num w) (Bigint.div scale_b (Rational.den w))))
        weights
    in
    let wsum = ref Bigint.zero in
    Array.iteri
      (fun r p ->
        wsum := Bigint.add !wsum (Bigint.mul (Bigint.of_int mults.(r)) (Bigint.of_int p)))
      pw;
    let wsum = to_native !wsum in
    let cn = Array.make (n * m) 0 and cd = Array.make (n * m) 0 in
    let maxcn = ref 1 and maxcd = ref 1 in
    Array.iteri
      (fun r row ->
        Array.iteri
          (fun l c ->
            let a = to_native (Rational.num c) and b = to_native (Rational.den c) in
            if a <= 0 || b <= 0 then raise Spill;
            cn.((r * m) + l) <- a;
            cd.((r * m) + l) <- b;
            if a > !maxcn then maxcn := a;
            if b > !maxcd then maxcd := b)
          row)
      capacities;
    let maxcn = !maxcn and maxcd = !maxcd in
    Some { scale; pw; cn; cd; wsum; maxcn; maxcd; base_ok = admits ~total:wsum ~maxcn ~maxcd }
  with Spill -> None

(* [rescale pk initial] re-derives the per-view scale when a view
   carries initial link traffic: the scale grows to cover the initial
   denominators and the scaled weights grow with it.  Returns
   [(scale, pw, iload0, total)] or [None] on any native spill or when
   the product bound fails at the larger total. *)
let rescale pk initial =
  try
    let scale_b = scale_lcm (Bigint.of_int pk.scale) (Array.map Rational.den initial) in
    let scale = to_native scale_b in
    let factor = scale / pk.scale in
    let pw =
      if factor = 1 then pk.pw
      else
        Array.map
          (fun w -> to_native (Bigint.mul (Bigint.of_int w) (Bigint.of_int factor)))
          pk.pw
    in
    let iload0 =
      Array.map
        (fun q -> to_native (Bigint.mul (Rational.num q) (Bigint.div scale_b (Rational.den q))))
        initial
    in
    let total_b =
      Array.fold_left
        (fun acc v -> Bigint.add acc (Bigint.of_int v))
        (Bigint.mul (Bigint.of_int pk.wsum) (Bigint.of_int factor))
        iload0
    in
    let total = to_native total_b in
    if admits ~total ~maxcn:pk.maxcn ~maxcd:pk.maxcd then Some (scale, pw, iload0, total)
    else None
  with Spill -> None
