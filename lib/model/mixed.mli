(** Mixed strategy profiles: one probability distribution over links per
    user, with exact expected latencies (Section 2).

    For a profile [P], the expected traffic on link [ℓ] is
    [W^ℓ = Σ_i p^ℓ_i w_i] and user [i]'s expected latency on [ℓ] is

    {v λ^ℓ_{i,b_i}(P) = ((1 - p^ℓ_i)·w_i + W^ℓ) / c^ℓ_i v}

    [P] is a Nash equilibrium when every user puts positive probability
    only on links attaining its minimum expected latency. *)

type profile = Numeric.Qvec.t array
(** [profile.(i)] is user [i]'s distribution over the [m] links. *)

(** [validate g p] checks that [p] is an [n × m] stack of exact
    probability distributions. @raise Invalid_argument otherwise. *)
val validate : Game.t -> profile -> unit

(** [of_pure g sigma] embeds a pure profile as a 0/1 mixed profile. *)
val of_pure : Game.t -> Pure.profile -> profile

(** [uniform g] assigns every user the equiprobable distribution. *)
val uniform : Game.t -> profile

(** [expected_traffic g p l] is [W^l]. *)
val expected_traffic : Game.t -> profile -> int -> Numeric.Rational.t

(** [expected_traffics g p] is the vector [W]. *)
val expected_traffics : Game.t -> profile -> Numeric.Rational.t array

(** [latency_on_link g p i l] is [λ^l_{i,b_i}(P)]. *)
val latency_on_link : Game.t -> profile -> int -> int -> Numeric.Rational.t

(** Cached evaluator over one mixed profile — the mixed-layer analogue
    of {!View}.  [make]/[unchecked] materialise the expected-traffic
    vector [W] once in O(n·m); against it every latency is O(1), a
    user's minimum latency is O(m) and a full Nash check is O(n·m) —
    where the one-shot functions below paid an O(n) traffic rescan per
    (user, link) query, O(n²·m) for a Nash check.  Build one evaluator
    per profile whenever more than one query is made. *)
module Eval : sig
  type t

  (** [make g p] validates [p] like {!validate} and caches its
      expected traffics.  The rows are copied.
      @raise Invalid_argument on a malformed profile. *)
  val make : Game.t -> profile -> t

  (** [unchecked g p] is {!make} minus the per-row distribution check:
      only dimensions are verified.  Needed to evaluate fully mixed
      {e candidates} (Lemma 4.9 comparators) whose rows may leave
      [0, 1] when no FMNE exists; all formulas remain well-defined. *)
  val unchecked : Game.t -> profile -> t

  val game : t -> Game.t

  (** [profile e] is a fresh copy of the evaluated rows. *)
  val profile : t -> profile

  (** [expected_traffic e l] is [W^l]. O(1). *)
  val expected_traffic : t -> int -> Numeric.Rational.t

  (** [latency_on_link e i l] is [λ^l_{i,b_i}(P)]. O(1). *)
  val latency_on_link : t -> int -> int -> Numeric.Rational.t

  (** [min_latency e i] is [λ_{i,b_i}(P)]. O(m). *)
  val min_latency : t -> int -> Numeric.Rational.t

  (** [is_nash e] is the exact Nash predicate of {!Mixed.is_nash}.
      O(n·m). *)
  val is_nash : t -> bool

  (** [social_cost1 e] is [SC1]. O(n·m). *)
  val social_cost1 : t -> Numeric.Rational.t

  (** [social_cost2 e] is [SC2]. O(n·m). *)
  val social_cost2 : t -> Numeric.Rational.t
end

(** [min_latency g p i] is [λ_{i,b_i}(P) = min_l λ^l_{i,b_i}(P)].
    One-shot convenience over a transient {!Eval}.
    @deprecated in per-profile loops: build one {!Eval.t} and query it. *)
val min_latency : Game.t -> profile -> int -> Numeric.Rational.t

(** [support p i] is the set of links user [i] plays with positive
    probability. *)
val support : profile -> int -> int list

(** [is_fully_mixed p] holds when every probability is strictly
    positive. *)
val is_fully_mixed : profile -> bool

(** [is_nash g p] holds when, for every user [i] and link [l]:
    [p^l_i > 0] implies [λ^l_i = λ_i], and [p^l_i = 0] implies
    [λ^l_i >= λ_i] (exact comparisons).  O(n·m) via a transient
    {!Eval}. *)
val is_nash : Game.t -> profile -> bool

(** [social_cost1 g p] is [SC1 = Σ_i λ_{i,b_i}(P)].
    @deprecated with {!social_cost2} on the same profile: build one
    {!Eval.t} and take both costs off it. *)
val social_cost1 : Game.t -> profile -> Numeric.Rational.t

(** [social_cost2 g p] is [SC2 = max_i λ_{i,b_i}(P)].
    @deprecated with {!social_cost1} on the same profile: build one
    {!Eval.t} and take both costs off it. *)
val social_cost2 : Game.t -> profile -> Numeric.Rational.t

val equal : profile -> profile -> bool
val pp : Format.formatter -> profile -> unit
