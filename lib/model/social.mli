(** Social optimum and coordination ratio (Section 2).

    Because beliefs are subjective there is no objective congestion
    measure; the paper defines the optimum over {e pure} assignments as
    the minimum of the sum (OPT1) or the maximum (OPT2) of individual
    expected costs.  Both are computed exactly by exhaustive search over
    the [m^n] pure profiles, which is the paper's own definition; a
    guard protects against accidentally exponential calls. *)

(** [iter_profiles g f] calls [f] on every pure profile, reusing one
    mutable array (do not retain it across calls). *)
val iter_profiles : Game.t -> (Pure.profile -> unit) -> unit

(** [profile_count g] is [m^n], or [None] on overflow. *)
val profile_count : Game.t -> int option

(** [opt1 g] is [(OPT1, argmin)] — the minimum over pure profiles of
    [Σ_i λ_{i,b_i}(σ)].  The scan walks profiles in odometer order on
    an incremental {!View}, so each profile costs O(n) instead of the
    seed path's O(n²) recompute.  With [~domains > 1] the odometer is
    sharded across that many OCaml domains ({!View.fold}); the result —
    value and argmin profile, first minimum in odometer order — is
    bit-identical to the serial scan.
    @raise Invalid_argument when [m^n] exceeds [limit]
    (default [10_000_000]). *)
val opt1 : ?limit:int -> ?domains:int -> Game.t -> Numeric.Rational.t * Pure.profile

(** [opt2 g] is [(OPT2, argmin)] for the max-cost objective. *)
val opt2 : ?limit:int -> ?domains:int -> Game.t -> Numeric.Rational.t * Pure.profile

(** [ratio1 g p] is [SC1(G,P) / OPT1(G)] for a mixed profile [p]. *)
val ratio1 : ?limit:int -> Game.t -> Mixed.profile -> Numeric.Rational.t

(** [ratio2 g p] is [SC2(G,P) / OPT2(G)]. *)
val ratio2 : ?limit:int -> Game.t -> Mixed.profile -> Numeric.Rational.t

(** [opt1_bb g] / [opt2_bb g] compute the same optima by
    branch-and-bound (users in decreasing weight order; the partial cost
    is a valid lower bound because latencies only grow as users join),
    reaching well beyond the exhaustive [m^n] range.  Exact; equality
    with {!opt1}/{!opt2} is property-tested. *)
val opt1_bb : Game.t -> Numeric.Rational.t * Pure.profile

val opt2_bb : Game.t -> Numeric.Rational.t * Pure.profile
