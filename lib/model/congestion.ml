open Numeric

let require_kp name g =
  if not (Game.is_kp g) then
    invalid_arg (Printf.sprintf "Congestion.%s: the classical social cost needs a KP instance" name)

let max_congestion g sigma =
  require_kp "max_congestion" g;
  Pure.validate g sigma;
  let loads = Pure.loads g sigma in
  let best = ref (Rational.div loads.(0) (Game.capacity g 0 0)) in
  for l = 1 to Game.links g - 1 do
    best := Rational.max !best (Rational.div loads.(l) (Game.capacity g 0 l))
  done;
  !best

let guard name limit g =
  match Social.profile_count g with
  | Some c when c <= limit -> ()
  | _ -> invalid_arg (Printf.sprintf "Congestion.%s: realisation space exceeds the limit" name)

(* The max congestion of the profile a view is positioned at: O(m)
   against the view's O(1) loads (the one-shot [max_congestion] above
   pays an O(n) load materialisation instead). *)
let max_congestion_of_view g v =
  let best = ref (Rational.div (View.load v 0) (Game.capacity g 0 0)) in
  for l = 1 to Game.links g - 1 do
    best := Rational.max !best (Rational.div (View.load v l) (Game.capacity g 0 l))
  done;
  !best

(* The expectation no longer sweeps the m^n realisations: the product
   measure is pushed forward to the distribution of the load vector
   (Load_dist), whose user-class DP merges equal-load realisations, so
   [limit] now bounds distinct load states instead of m^n.  The result
   is bit-identical to the seed sweep (exact arithmetic throughout);
   test/test_load_dist.ml pins that equality differentially. *)
let expected_max_congestion ?limit ?domains g p =
  require_kp "expected_max_congestion" g;
  Mixed.validate g p;
  let caps = Game.capacity_row g 0 in
  let m = Game.links g in
  let dist = Load_dist.of_mixed ?limit ?domains g p in
  Load_dist.expect dist (fun loads ->
      let best = ref (Rational.div loads.(0) caps.(0)) in
      for l = 1 to m - 1 do
        best := Rational.max !best (Rational.div loads.(l) caps.(l))
      done;
      !best)

let estimate g p ~samples rng =
  require_kp "estimate" g;
  Mixed.validate g p;
  if samples <= 0 then invalid_arg "Congestion.estimate: samples must be positive";
  let samplers = Array.map Prng.Alias.of_rationals p in
  let n = Game.users g in
  let sigma = Array.make n 0 in
  (* The sample sum stays exact; one float conversion at the end, so
     the estimator's only error is sampling error, not accumulated
     rounding drift. *)
  let acc = ref Rational.zero in
  for _ = 1 to samples do
    for i = 0 to n - 1 do
      sigma.(i) <- Prng.Alias.sample samplers.(i) rng
    done;
    acc := Rational.add !acc (max_congestion g sigma)
  done;
  Rational.to_float (Rational.div !acc (Rational.of_int samples))

let optimum ?(limit = 1_000_000) ?(domains = 1) g =
  require_kp "optimum" g;
  guard "optimum" limit g;
  let best =
    View.fold ~domains g ~init:None
      ~f:(fun acc v ->
        let c = max_congestion_of_view g v in
        match acc with
        | Some (b, _) when Rational.compare b c <= 0 -> acc
        | _ -> Some (c, View.profile v))
      ~combine:(fun a b ->
        match a, b with
        | None, x | x, None -> x
        | Some (va, _), Some (vb, _) -> if Rational.compare va vb <= 0 then a else b)
  in
  match best with
  | Some (v, p) -> (v, p)
  | None -> assert false
