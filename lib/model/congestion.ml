open Numeric

let require_kp name g =
  if not (Game.is_kp g) then
    invalid_arg (Printf.sprintf "Congestion.%s: the classical social cost needs a KP instance" name)

let max_congestion g sigma =
  require_kp "max_congestion" g;
  Pure.validate g sigma;
  let loads = Pure.loads g sigma in
  let best = ref (Rational.div loads.(0) (Game.capacity g 0 0)) in
  for l = 1 to Game.links g - 1 do
    best := Rational.max !best (Rational.div loads.(l) (Game.capacity g 0 l))
  done;
  !best

let guard name limit g =
  match Social.profile_count g with
  | Some c when c <= limit -> ()
  | _ -> invalid_arg (Printf.sprintf "Congestion.%s: realisation space exceeds the limit" name)

(* The max congestion of the profile a view is positioned at: O(m)
   against the view's O(1) loads (the one-shot [max_congestion] above
   pays an O(n) load materialisation instead). *)
let max_congestion_of_view g v =
  let best = ref (Rational.div (View.load v 0) (Game.capacity g 0 0)) in
  for l = 1 to Game.links g - 1 do
    best := Rational.max !best (Rational.div (View.load v l) (Game.capacity g 0 l))
  done;
  !best

let expected_max_congestion ?(limit = 1_000_000) g p =
  require_kp "expected_max_congestion" g;
  Mixed.validate g p;
  guard "expected_max_congestion" limit g;
  let n = Game.users g in
  let acc = ref Rational.zero in
  View.sweep g (fun v ->
      (* Probability of this realisation under the product measure. *)
      let prob = ref Rational.one in
      for i = 0 to n - 1 do
        prob := Rational.mul !prob p.(i).(View.link v i)
      done;
      if not (Rational.is_zero !prob) then
        acc := Rational.add !acc (Rational.mul !prob (max_congestion_of_view g v)));
  !acc

let estimate g p ~samples rng =
  require_kp "estimate" g;
  Mixed.validate g p;
  if samples <= 0 then invalid_arg "Congestion.estimate: samples must be positive";
  let samplers = Array.map Prng.Alias.of_rationals p in
  let n = Game.users g in
  let sigma = Array.make n 0 in
  let acc = ref 0.0 in
  for _ = 1 to samples do
    for i = 0 to n - 1 do
      sigma.(i) <- Prng.Alias.sample samplers.(i) rng
    done;
    acc := !acc +. Rational.to_float (max_congestion g sigma)
  done;
  !acc /. float_of_int samples

let optimum ?(limit = 1_000_000) g =
  require_kp "optimum" g;
  guard "optimum" limit g;
  let best = ref None and best_profile = ref [||] in
  View.sweep g (fun v ->
      let c = max_congestion_of_view g v in
      match !best with
      | Some b when Rational.compare b c <= 0 -> ()
      | _ ->
        best := Some c;
        best_profile := View.profile v);
  match !best with
  | Some v -> (v, !best_profile)
  | None -> assert false
