(** Plain-text game descriptions for the command-line tools.

    Two forms are accepted.  The {e generative} form spells out the
    state space and one belief per user:

    {v
    # three users, two links, two possible network states
    links 2
    weights 4 3 2
    state fast 10 4
    state slow 3 4
    belief fast: 1
    belief slow: 1
    belief fast: 1/2, slow: 1/2
    v}

    The {e reduced} form gives the effective capacity matrix directly,
    one row per user:

    {v
    links 2
    weights 3 2
    capacities 2 1
    capacities 1 3
    v}

    The {e class} form describes a {!Cgame} — one row per class of
    interchangeable users, [class <count> <weight> <c_1> … <c_m>]:

    {v
    links 2
    class 1000000 1 2 1
    class 5 1/2 1 3
    v}

    Class files are parsed by {!parse_cgame}; mixing class rows with
    per-user directives is rejected in both directions.

    An optional [uncertainty <bayesian|participation|strict>] stanza
    (at most one per file, position-independent like [links]) selects
    the {!Uncertainty} backend; omitting it means [bayesian], so every
    pre-stanza file parses unchanged.  [participation] additionally
    requires a [presence p_1 … p_n] line (one probability in [(0, 1]]
    per user — per class in class files) on top of either belief or
    capacities form:

    {v
    links 2
    uncertainty participation
    weights 3 2
    presence 1/2 3/4
    capacities 2 1
    capacities 1 3
    v}

    [strict] replaces beliefs/capacities with one [interval] row per
    user carrying a [lo hi] capacity pair per link (class files carry
    the pairs on the class rows themselves):

    {v
    links 2
    uncertainty strict
    weights 3 2
    interval 1 2 3 4
    interval 2 2 1 5
    v}

    Numbers are exact rationals ([3], [1/2], [0.75]).  Lines starting
    with [#] and blank lines are ignored. *)

(** [parse text] builds the game described by [text].
    @raise Invalid_argument with a line-numbered message on malformed
    input; data starting with the binary wire magic ([SRWF], see
    [Serve.Wire]) is rejected with a pinned line-1 error pointing at
    the binary reader. *)
val parse : string -> Game.t

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> Game.t

(** [to_string g] renders [g] in the reduced form (which is always
    faithful: every latency in the game factors through the effective
    capacities — plus, under participation, the presence line);
    [parse (to_string g)] yields a game with identical dimensions,
    weights, effective capacities, contributions and biases.  Strict
    games are rendered in the interval form (their only faithful one);
    all-Bayesian games render byte-identically to the pre-stanza
    format.
    @raise Invalid_argument when users mix backend kinds (such a game
    has no file form). *)
val to_string : Game.t -> string

(** [to_generative_string g] renders [g] in the belief form, collecting
    the (structurally deduplicated) union of the users' state spaces
    under names [s1, s2, …].  [parse] of the result has the same
    dimensions, weights and effective capacities as [g].  Participation
    games carry their stanza and presence line; strict games fall back
    to the interval form.
    @raise Invalid_argument when users mix backend kinds. *)
val to_generative_string : Game.t -> string

(** [parse_cgame text] builds the class game described by [text]
    (class form only).
    @raise Invalid_argument with a line-numbered message on malformed
    input — non-integer or non-positive counts, width mismatches,
    per-user directives. *)
val parse_cgame : string -> Cgame.t

(** [parse_cgame_file path] reads and parses [path] as a class game. *)
val parse_cgame_file : string -> Cgame.t

(** [to_class_string g] renders [g] in the class form (with the
    [uncertainty] stanza and its companion data when non-Bayesian);
    [parse_cgame (to_class_string g)] yields a class game with
    identical counts, weights, effective capacities, contributions and
    biases.
    @raise Invalid_argument when classes mix backend kinds. *)
val to_class_string : Cgame.t -> string
