(** Incremental evaluation cursor over a class profile.

    The class-layer analogue of {!View}: per-link loads are
    materialised once from the [k × m] assignment counts (O(k·m)) and
    maintained under {e block moves} — [count] users of one class
    moving from one link to another — in O(1) exact rational updates,
    independent of [count] and of the population size [n].  Against the
    view, a latency is O(1), a best response is O(m), a full Nash check
    is O(k·m²) and the social costs are O(k·m): no operation ever
    scales with [n].

    All per-user predicates survive compression exactly: users of one
    class on one link are interchangeable, so "some user defects" is a
    property of the occupied (class, link) pairs.  The differential
    suite ([test/test_cgame.ml]) pins every function here bit-identical
    to its {!View}/{!Pure} counterpart through
    {!Cgame.expand}/{!Cgame.expand_profile}.

    Beyond block moves, the cursor supports {e structural deltas} —
    {!revise_count} (arrivals/departures), {!revise_weight} and
    {!revise_capacity} — each an exact O(m)-or-better load patch that
    mutates the view (never the underlying {!Cgame.t}), records an
    undo entry, and re-checks the {!Packing} product bound, spilling
    to the big-rational lane without a rebuild when the revised
    magnitudes no longer fit.  {!to_cgame} re-materialises a class
    game from the revised state.

    Like {!View}, this is a mutable cursor, not a value: share it only
    within one traversal. *)

type t

(** [packed v] holds when the view runs on the native-int fast lane
    (see {!Packing}).  Exposed for benchmarks and tests; results never
    depend on it. *)
val packed : t -> bool

(** [of_profile g ?initial x] positions a fresh view at [x], validating
    it and computing all link loads once in O(k·m).  [x] is deep-copied.
    @raise Invalid_argument when [x] or [initial] is malformed. *)
val of_profile : Cgame.t -> ?initial:Numeric.Rational.t array -> Cgame.profile -> t

(** [game v] is the game the view was constructed over.  After a
    structural delta it reflects the {e original} spec, not the revised
    one — use {!to_cgame} for the live state. *)
val game : t -> Cgame.t

val classes : t -> int
val links : t -> int

(** [assigned v c l] is the number of class-[c] users on link [l]. O(1). *)
val assigned : t -> int -> int -> int

(** [profile v] is a snapshot copy of the current class profile. *)
val profile : t -> Cgame.profile

(** [owner v] is the creating domain's id as recorded for the
    [SELFISH_OWNERSHIP] sanitizer ({!Parallel.Ownership}); {!move} and
    {!undo} raise {!Parallel.Ownership.Violation} under the sanitizer
    when called from another domain. *)
val owner : t -> int

(** [unsafe_set_owner v id] rewrites the recorded owner.  Test-only
    forgery hook; never call it in library code. *)
val unsafe_set_owner : t -> int -> unit

(** [load v l] is the current total traffic on link [l]. O(1). *)
val load : t -> int -> Numeric.Rational.t

(** [loads v] is a snapshot copy of the per-link loads. *)
val loads : t -> Numeric.Rational.t array

(** [move v ~cls ~src ~dst ~count] reassigns [count] users of class
    [cls] from link [src] to link [dst] in O(1) exact rational
    operations (one multiplication, two load updates), recording the
    move for {!undo}.  [count = 0] and [src = dst] are recorded no-ops.
    @raise Invalid_argument when an index is out of range, [count < 0],
    or [count] exceeds the users of [cls] currently on [src]. *)
val move : t -> cls:int -> src:int -> dst:int -> count:int -> unit

(** [undo v] reverts the most recent un-undone {!move} or structural
    delta — O(1) for a move, O(m) for a delta.
    @raise Invalid_argument when the history is empty. *)
val undo : t -> unit

(** [depth v] is the number of moves and structural deltas {!undo} can
    still revert. *)
val depth : t -> int

(** [weight v c] is class [c]'s current (possibly revised) weight. *)
val weight : t -> int -> Numeric.Rational.t

(** [capacity v c l] is class [c]'s current effective capacity on link
    [l], reflecting any {!revise_capacity}. *)
val capacity : t -> int -> int -> Numeric.Rational.t

(** [class_count v c] is the current number of class-[c] users, [Σ_l
    assigned v c l].  O(m). *)
val class_count : t -> int -> int

(** [revised v] holds when at least one structural delta is currently
    applied (pushed and not yet undone). *)
val revised : t -> bool

(** [revise_count v ~cls ~link ~delta] adds [delta] class-[cls] users
    on [link] ([delta < 0] removes).  One O(1) load patch; on the
    packed lane arrivals re-check the {!Packing} bound against the
    grown total and spill to the exact lane when it fails.
    @raise Invalid_argument when an index is out of range, departures
    exceed the users on the link, or the revision would empty the
    class (class counts must stay positive). *)
val revise_count : t -> cls:int -> link:int -> delta:int -> unit

(** [revise_weight v ~cls w'] rewrites class [cls]'s weight to [w'],
    patching every occupied link's load by [count·(t' − t)] (O(m));
    contribution and bias are re-derived from the class's uncertainty
    backend (whose presence is unchanged by revisions).  On the packed
    lane the new scaled weight must stay integral and within the
    product bound, else the view spills.
    @raise Invalid_argument on a class out of range or [w' ≤ 0]. *)
val revise_weight : t -> cls:int -> Numeric.Rational.t -> unit

(** [revise_capacity v ~cls ~link cap'] rewrites class [cls]'s
    effective capacity on [link].  Loads are unaffected (O(1)); the
    packed capacity pair is patched in place when [cap']'s reduced
    numerator and denominator keep the product bound, else the view
    spills.  @raise Invalid_argument on an index out of range or
    [cap' ≤ 0]. *)
val revise_capacity : t -> cls:int -> link:int -> Numeric.Rational.t -> unit

(** [to_cgame v] re-materialises a class game from the revised state:
    current counts, weights and capacity rows.  Classes with untouched
    capacity rows keep their original uncertainty backend; revised rows
    are re-wrapped as the matching certain belief (degenerate interval
    for [Strict]) — exact, since every decision factors through the
    effective capacities.  Returns the original game (same value) when
    no structural delta is applied.  [of_profile (to_cgame v)
    (profile v)] holds the same loads, latencies and Nash verdict as
    [v], bit-identically. *)
val to_cgame : t -> Cgame.t

(** [latency v c l] is the expected latency of a class-[c] user playing
    link [l] at the current loads, [load l / c^l_c].  O(1). *)
val latency : t -> int -> int -> Numeric.Rational.t

(** [latency_after_move v ~cls ~src dst] is the latency a single
    class-[cls] user currently on [src] would experience after
    unilaterally moving to [dst] (its current latency when
    [dst = src]).  O(1). *)
val latency_after_move : t -> cls:int -> src:int -> int -> Numeric.Rational.t

(** [best_response_for v ~cls ~src] is the lowest-index link minimising
    that user's post-move latency, paired with the latency.  O(m).
    Matches {!View.best_response_for} for any expanded user of class
    [cls] on [src]. *)
val best_response_for : t -> cls:int -> src:int -> int * Numeric.Rational.t

(** [is_defector v ~cls ~src] holds when a class-[cls] user on [src]
    has a strictly improving move.  Meaningful when
    [assigned v cls src > 0].  O(m). *)
val is_defector : t -> cls:int -> src:int -> bool

(** [improves v ~cls ~src dst] holds when moving one class-[cls] user
    from [src] to [dst] strictly lowers its latency — the
    single-destination restriction of {!is_defector}.  [false] when
    [dst = src].  O(1), allocation-free on the packed lane, so callers
    may probe candidate destinations one at a time. *)
val improves : t -> cls:int -> src:int -> int -> bool

(** [first_defector v] is the first occupied (class, link) pair — class
    ascending, then link ascending — whose users defect, together with
    their best-response link: exactly the move the per-user
    first-defector policy would pick on the expanded profile.
    [None] at a Nash equilibrium.  O(k·m²). *)
val first_defector : t -> (int * int * int) option

(** [is_nash v] holds when no user of any class can strictly improve by
    switching links.  O(k·m²) — independent of the population size. *)
val is_nash : t -> bool

(** [max_improving_block v ~cls ~src ~dst] is the largest [t] such that
    moving [t] class-[cls] users from [src] to [dst] one at a time is a
    strictly improving step for {e each} of them (the [j]-th mover
    compares its pre-move latency on [src] against its post-move
    latency on [dst] with [j] movers already there).  [0] when even the
    first move does not improve.  Closed form, O(1); never exceeds
    [assigned v cls src].  Requires [dst <> src]. *)
val max_improving_block : t -> cls:int -> src:int -> dst:int -> int

(** [social_cost1 v] is [SC1 = Σ_c count-weighted latencies].  O(k·m). *)
val social_cost1 : t -> Numeric.Rational.t

(** [social_cost2 v] is [SC2 = max latency over occupied (c, l)].
    O(k·m). *)
val social_cost2 : t -> Numeric.Rational.t
