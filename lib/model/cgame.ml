open Numeric

type t = {
  counts : int array;
  weights : Rational.t array;
  uncertainty : Uncertainty.t array;
  beliefs : Belief.t array; (* decision-equivalent beliefs (Uncertainty.belief) *)
  capacities : Rational.t array array; (* capacities.(c).(l) = c^l of class c *)
  contribs : Rational.t array; (* presence-discounted weight others meet *)
  biases : Rational.t array; (* w_c - contribs.(c), own-latency surcharge *)
  load_linear : bool;
  users : int; (* Σ counts, overflow-checked at construction *)
  total : Rational.t; (* Σ counts·w *)
  packed : Packing.t option; (* native-int tables for the Cview fast lane *)
}

type profile = int array array

let checked_total_users counts =
  Array.fold_left
    (fun acc c ->
      if c <= 0 then invalid_arg "Cgame.make: class counts must be positive";
      if c > max_int - acc then invalid_arg "Cgame.make: total user count overflows a native int";
      acc + c)
    0 counts

let make_uncertain ~counts ~weights ~uncertainty =
  let k = Array.length counts in
  if k = 0 then invalid_arg "Cgame.make: no classes";
  if Array.length weights <> k || Array.length uncertainty <> k then
    invalid_arg "Cgame.make: one count, weight and belief per class required";
  Array.iter
    (fun w -> if Rational.sign w <= 0 then invalid_arg "Cgame.make: traffics must be positive")
    weights;
  let m = Uncertainty.links uncertainty.(0) in
  Array.iter
    (fun u ->
      if Uncertainty.links u <> m then invalid_arg "Cgame.make: beliefs disagree on link count")
    uncertainty;
  if m < 2 then invalid_arg "Cgame.make: at least two links required";
  let users = checked_total_users counts in
  let total = ref Rational.zero in
  Array.iteri
    (fun c n -> total := Rational.add !total (Rational.mul (Rational.of_int n) weights.(c)))
    counts;
  let capacities = Array.map Uncertainty.eval_capacities uncertainty in
  (* Sharing the weight value for load-linear classes keeps every
     Bayesian class game bit-identical to the pre-backend layout. *)
  let contribs =
    Array.map2
      (fun u w -> if Uncertainty.is_load_linear u then w else Rational.mul (Uncertainty.load_factor u) w)
      uncertainty weights
  in
  let biases = Array.map2 Rational.sub weights contribs in
  let load_linear = Array.for_all Uncertainty.is_load_linear uncertainty in
  {
    counts = Array.copy counts;
    weights = Array.copy weights;
    uncertainty = Array.copy uncertainty;
    beliefs = Array.map Uncertainty.belief uncertainty;
    capacities;
    contribs;
    biases;
    load_linear;
    users;
    total = !total;
    (* The packed lane's products assume plain load/ĉ latencies, so
       only load-linear class games get tables. *)
    packed = (if load_linear then Packing.build ~mults:counts weights capacities else None);
  }

let make ~counts ~weights ~beliefs =
  make_uncertain ~counts ~weights ~uncertainty:(Array.map Uncertainty.bayesian beliefs)

let of_capacities ~counts ~weights caps =
  if Array.length caps <> Array.length counts then
    invalid_arg "Cgame.of_capacities: one capacity row per class required";
  let beliefs = Array.map (fun row -> Belief.certain (State.make row)) caps in
  make ~counts ~weights ~beliefs

let kp ~counts ~weights ~capacities =
  let st = State.make capacities in
  let beliefs = Array.map (fun _ -> Belief.certain st) weights in
  make ~counts ~weights ~beliefs

let classes g = Array.length g.counts
let links g = Array.length g.capacities.(0)
let users g = g.users

let check_class name g c =
  if c < 0 || c >= classes g then invalid_arg (Printf.sprintf "Cgame.%s: class out of range" name)

let count g c =
  check_class "count" g c;
  g.counts.(c)

let weight g c =
  check_class "weight" g c;
  g.weights.(c)

let belief g c =
  check_class "belief" g c;
  g.beliefs.(c)

let uncertainty g c =
  check_class "uncertainty" g c;
  g.uncertainty.(c)

let contribution g c =
  check_class "contribution" g c;
  g.contribs.(c)

let bias g c =
  check_class "bias" g c;
  g.biases.(c)

let is_load_linear g = g.load_linear

let capacity g c l =
  check_class "capacity" g c;
  if l < 0 || l >= links g then invalid_arg "Cgame.capacity: link out of range";
  g.capacities.(c).(l)

let capacity_row g c =
  check_class "capacity_row" g c;
  Array.copy g.capacities.(c)

let total_traffic g = g.total
let packed_tables g = g.packed

let is_kp g =
  let first = g.capacities.(0) in
  Array.for_all (fun row -> Array.for_all2 Rational.equal first row) g.capacities

let has_uniform_beliefs g =
  Array.for_all (fun row -> Array.for_all (Rational.equal row.(0)) row) g.capacities

let is_symmetric g = Array.for_all (Rational.equal g.weights.(0)) g.weights

(* Group by (weight, effective capacity row, contribution), first-seen
   order — the observational identity of a user: two users with this
   triple equal are interchangeable in every latency and every
   predicate (bias = weight − contribution is determined by the pair).
   For load-linear games the contribution equals the weight, so the
   grouping is exactly the seed's (weight, row) key. *)
let compress g =
  let n = Game.users g in
  let reps = ref [] (* class representatives, reversed *) and k = ref 0 in
  let class_of = Array.make n 0 in
  for i = 0 to n - 1 do
    let w = Game.weight g i in
    let t = Game.contribution g i in
    let row = Game.capacity_row g i in
    let rec find idx = function
      | [] -> None
      | (w', t', row', _) :: rest ->
        if Rational.equal w w' && Rational.equal t t' && Array.for_all2 Rational.equal row row'
        then Some (idx - 1)
        else find (idx - 1) rest
    in
    match find !k !reps with
    | Some c -> class_of.(i) <- c
    | None ->
      class_of.(i) <- !k;
      reps := (w, t, row, i) :: !reps;
      incr k
  done;
  let members = Array.make !k 0 in
  Array.iter (fun c -> members.(c) <- members.(c) + 1) class_of;
  let rep_users = Array.make !k 0 in
  List.iteri (fun j (_, _, _, i) -> rep_users.(!k - 1 - j) <- i) !reps;
  let cg =
    make_uncertain ~counts:members
      ~weights:(Array.map (Game.weight g) rep_users)
      ~uncertainty:(Array.map (Game.uncertainty g) rep_users)
  in
  (cg, class_of)

let expand g =
  let weights = Array.make g.users Rational.zero in
  let uncertainty = Array.make g.users g.uncertainty.(0) in
  let pos = ref 0 in
  Array.iteri
    (fun c n ->
      for _ = 1 to n do
        weights.(!pos) <- g.weights.(c);
        uncertainty.(!pos) <- g.uncertainty.(c);
        incr pos
      done)
    g.counts;
  Game.make_uncertain ~weights ~uncertainty

let validate g x =
  if Array.length x <> classes g then
    invalid_arg "Cgame.validate: profile has wrong number of classes";
  let m = links g in
  Array.iteri
    (fun c row ->
      if Array.length row <> m then
        invalid_arg "Cgame.validate: profile row has wrong number of links";
      let sum =
        Array.fold_left
          (fun acc e ->
            if e < 0 then invalid_arg "Cgame.validate: negative assignment count";
            if e > max_int - acc then
              invalid_arg "Cgame.validate: assignment counts overflow a native int";
            acc + e)
          0 row
      in
      if sum <> g.counts.(c) then
        invalid_arg
          (Printf.sprintf "Cgame.validate: class %d assigns %d users, expected %d" c sum
             g.counts.(c)))
    x

let expand_profile g x =
  validate g x;
  let p = Array.make g.users 0 in
  let pos = ref 0 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun l e ->
          for _ = 1 to e do
            p.(!pos) <- l;
            incr pos
          done)
        row)
    x;
  p

let compress_profile g ~class_of p =
  if Array.length class_of <> Array.length p then
    invalid_arg "Cgame.compress_profile: profile length differs from the class map";
  let k = classes g and m = links g in
  let x = Array.make_matrix k m 0 in
  Array.iteri
    (fun i l ->
      let c = class_of.(i) in
      if c < 0 || c >= k then invalid_arg "Cgame.compress_profile: class out of range";
      if l < 0 || l >= m then invalid_arg "Cgame.compress_profile: link out of range";
      x.(c).(l) <- x.(c).(l) + 1)
    p;
  validate g x;
  x

let pp fmt g =
  Format.fprintf fmt "cgame k=%d n=%d m=%d counts=%a" (classes g) g.users (links g)
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Format.pp_print_int)
    (Array.to_list g.counts)
