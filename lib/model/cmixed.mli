(** Class-symmetric mixed profiles and their exact evaluation in
    poly(k, m).

    A class-symmetric mixed profile gives every user of a class the
    same strategy row: [p.(c).(l)] is the probability that a class-[c]
    user plays link [l].  This covers every mixed object the class
    layer needs — fully mixed equilibria, uniform rows, and products of
    symmetric per-class strategies — while staying [k × m] instead of
    [n × m].  (A {e pure} class profile that splits one class across
    links is not class-symmetric and is handled by {!Cview} instead.)

    {!Eval} mirrors {!Mixed.Eval}: expected traffics, per-link/per-class
    expected latencies and both social-cost surrogates, all derived
    from a single O(k·m) pass and pinned bit-identical to the per-user
    evaluator on the expanded game by [test/test_cgame.ml]. *)

type t = Numeric.Rational.t array array

(** [validate g p] checks [p] is [k × m], rows non-negative and summing
    to one. @raise Invalid_argument otherwise. *)
val validate : Cgame.t -> t -> unit

(** [uniform g] is the profile assigning every class the uniform row
    [1/m]. *)
val uniform : Cgame.t -> t

(** [of_pure g x] is the degenerate profile of a class profile in which
    every class occupies a single link.
    @raise Invalid_argument when some class splits across links (such a
    profile is not class-symmetric). *)
val of_pure : Cgame.t -> Cgame.profile -> t

(** [expand g p] replicates each class row [count c] times, yielding
    the per-user mixed profile of {!Cgame.expand}'s layout. *)
val expand : Cgame.t -> t -> Numeric.Rational.t array array

module Eval : sig
  type profile = t

  (** Cached evaluation of a class-symmetric mixed profile.  All
      accessors are O(1) after the O(k·m) construction. *)
  type t

  val make : Cgame.t -> profile -> t
  val game : t -> Cgame.t

  (** [expected_traffic e l] is [E[load on l] = Σ_c n_c·w_c·p.(c).(l)]. *)
  val expected_traffic : t -> int -> Numeric.Rational.t

  (** [latency_on_link e c l] is the conditional expected latency of a
      class-[c] user on link [l]:
      [((1 - p.(c).(l))·w_c + W_l) / capacity c l] where [W_l] is the
      expected traffic on [l].  (The user's own contribution is counted
      once, not in expectation.) *)
  val latency_on_link : t -> int -> int -> Numeric.Rational.t

  (** [min_latency e c] is [min_l latency_on_link c l] — the latency a
      class-[c] user secures by best-responding. *)
  val min_latency : t -> int -> Numeric.Rational.t

  (** [social_cost1 e] is [Σ_c n_c·min_latency c] — the class-weighted
      form of {!Mixed.Eval.social_cost1}'s per-user sum. *)
  val social_cost1 : t -> Numeric.Rational.t

  (** [social_cost2 e] is [max_c min_latency c] (zero floor), matching
      {!Mixed.Eval.social_cost2}. *)
  val social_cost2 : t -> Numeric.Rational.t

  (** [is_nash e] — see the top-level {!val:is_nash}. *)
  val is_nash : t -> bool
end

(** [is_nash g p] holds when [p] is a (class-symmetric) Nash
    equilibrium: every link a class plays with positive probability
    attains that class's minimum conditional expected latency.
    Matches {!Mixed.is_nash} on the expanded profile. *)
val is_nash : Cgame.t -> t -> bool
