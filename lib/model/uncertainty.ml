open Numeric

type kind = Bayesian | Participation | Strict

(* Each backend caches its evaluation capacities at construction, so
   [Game.make_uncertain] pays the belief-weighted sums exactly once per
   user — the same cost profile as the pre-refactor
   [Belief.effective_capacities] call. *)
type t =
  | B of { belief : Belief.t; eval : Qvec.t }
  | P of { belief : Belief.t; presence : Rational.t; eval : Qvec.t }
  | S of { lo : State.t; hi : State.t; eval : Qvec.t }

let bayesian b = B { belief = b; eval = Belief.effective_capacities b }

let participation ~presence b =
  if Rational.sign presence <= 0 || Rational.compare presence Rational.one > 0 then
    invalid_arg "Uncertainty.participation: presence must lie in (0, 1]";
  P { belief = b; presence; eval = Belief.effective_capacities b }

let strict ~lo ~hi =
  let m = State.links lo in
  if State.links hi <> m then
    invalid_arg "Uncertainty.strict: interval endpoints disagree on link count";
  for l = 0 to m - 1 do
    if Rational.compare (State.capacity lo l) (State.capacity hi l) > 0 then
      invalid_arg "Uncertainty.strict: interval is empty (lo > hi) on some link"
  done;
  (* Worst case of a load-linear latency is the minimum capacity, so
     the whole backend evaluates through the lo endpoints. *)
  S { lo; hi; eval = State.capacities lo }

let strict_of_intervals ivs =
  let lo = State.make (Array.map fst ivs) and hi = State.make (Array.map snd ivs) in
  strict ~lo ~hi

let kind = function B _ -> Bayesian | P _ -> Participation | S _ -> Strict

let kind_name = function
  | Bayesian -> "bayesian"
  | Participation -> "participation"
  | Strict -> "strict"

let equal_kind a b =
  match (a, b) with
  | Bayesian, Bayesian | Participation, Participation | Strict, Strict -> true
  | (Bayesian | Participation | Strict), _ -> false

let eval = function B { eval; _ } | P { eval; _ } | S { eval; _ } -> eval
let links u = Array.length (eval u)

let eval_capacity u l =
  let e = eval u in
  if l < 0 || l >= Array.length e then invalid_arg "Uncertainty.eval_capacity: link out of range";
  e.(l)

let eval_capacities u = Array.copy (eval u)
let inverse_capacity u l = Rational.inv (eval_capacity u l)

let worst_case_inverse_capacity u l =
  if l < 0 || l >= links u then
    invalid_arg "Uncertainty.worst_case_inverse_capacity: link out of range";
  match u with
  | S { lo; _ } -> Rational.inv (State.capacity lo l)
  | B { belief; _ } | P { belief; _ } ->
    let space = Belief.space belief in
    let worst = ref Rational.zero in
    for k = 0 to State.space_size space - 1 do
      if Rational.sign (Belief.prob belief k) > 0 then
        worst := Rational.max !worst (Rational.inv (State.capacity (State.state space k) l))
    done;
    !worst

let load_factor = function
  | B _ | S _ -> Rational.one
  | P { presence; _ } -> presence

let presence = load_factor
let is_load_linear u = Rational.equal (load_factor u) Rational.one

let belief = function
  | B { belief; _ } | P { belief; _ } -> belief
  | S { lo; _ } -> Belief.certain lo

let strict_bounds = function
  | S { lo; hi; _ } -> Some (lo, hi)
  | B _ | P _ -> None

let equal a b =
  match (a, b) with
  | B { belief = ba; _ }, B { belief = bb; _ } -> Belief.equal ba bb
  | P { belief = ba; presence = pa; _ }, P { belief = bb; presence = pb; _ } ->
    Rational.equal pa pb && Belief.equal ba bb
  | S { lo = la; hi = ha; _ }, S { lo = lb; hi = hb; _ } ->
    State.equal la lb && State.equal ha hb
  | (B _ | P _ | S _), _ -> false

let pp fmt = function
  | B { belief; _ } -> Format.fprintf fmt "bayesian %a" Belief.pp belief
  | P { belief; presence; _ } ->
    Format.fprintf fmt "participation p=%a %a" Rational.pp presence Belief.pp belief
  | S { lo; hi; _ } -> Format.fprintf fmt "strict [%a, %a]" State.pp lo State.pp hi
