open Numeric

let iter_profiles g f =
  let n = Game.users g and m = Game.links g in
  let p = Array.make n 0 in
  (* Odometer enumeration of [m^n] profiles. *)
  let rec next i =
    if i < 0 then false
    else if p.(i) + 1 < m then begin
      p.(i) <- p.(i) + 1;
      true
    end
    else begin
      p.(i) <- 0;
      next (i - 1)
    end
  in
  let continue = ref true in
  while !continue do
    f p;
    continue := next (n - 1)
  done

let profile_count g =
  let n = Game.users g and m = Game.links g in
  let rec go acc i =
    if i = 0 then Some acc
    else if acc > max_int / m then None
    else go (acc * m) (i - 1)
  in
  go 1 n

let guard name limit g =
  match profile_count g with
  | Some c when c <= limit -> ()
  | _ ->
    invalid_arg
      (Printf.sprintf "Social.%s: %d^%d pure profiles exceed the limit %d" name (Game.links g)
         (Game.users g) limit)

(* Exhaustive optimisation walks the profiles in odometer order through
   an incremental [View.fold]: consecutive profiles differ by an
   amortised O(1) number of single-user moves, so the per-profile cost
   is the O(n) cost evaluation against O(1) loads — the seed path
   rebuilt every load with an O(n) scan, i.e. O(n²) per profile.
   With [~domains > 1] the odometer is sharded across domains; the
   first-wins argmin (strict improvement, earlier shard kept on ties)
   makes the parallel result bit-identical to the serial scan. *)
let optimum name cost ?(limit = 10_000_000) ?(domains = 1) g =
  guard name limit g;
  let better a b =
    match a, b with
    | None, x | x, None -> x
    | Some (va, _), Some (vb, _) -> if Rational.compare va vb <= 0 then a else b
  in
  let best =
    View.fold ~domains g ~init:None
      ~f:(fun acc v ->
        let c = cost v in
        match acc with
        | Some (b, _) when Rational.compare b c <= 0 -> acc
        | _ -> Some (c, View.profile v))
      ~combine:better
  in
  match best with
  | Some (v, p) -> (v, p)
  | None -> assert false (* the sweep visits at least one profile *)

let opt1 ?limit ?domains g = optimum "opt1" View.social_cost1 ?limit ?domains g
let opt2 ?limit ?domains g = optimum "opt2" View.social_cost2 ?limit ?domains g

let ratio1 ?limit g p =
  let opt, _ = opt1 ?limit g in
  Rational.div (Mixed.social_cost1 g p) opt

let ratio2 ?limit g p =
  let opt, _ = opt2 ?limit g in
  Rational.div (Mixed.social_cost2 g p) opt

(* Branch-and-bound over users in decreasing weight order.  The bound
   argument: once user [i] is placed on link [ℓ], its latency
   load(ℓ)/c^ℓ_i can only grow as later users join ℓ, so the partial
   cost (sum or max over placed users, at current loads) lower-bounds
   every completion.  Heavy users first makes early partial costs
   large, so pruning bites. *)
let optimum_bb name cost_of_partial g =
  let n = Game.users g and m = Game.links g in
  ignore name;
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Rational.compare (Game.weight g b) (Game.weight g a) in
      if c <> 0 then c else Int.compare a b)
    order;
  let loads = Array.make m Rational.zero in
  let assignment = Array.make n 0 in
  let best_value = ref None and best_profile = ref [||] in
  let beats_best v =
    match !best_value with Some b -> Rational.compare v b < 0 | None -> true
  in
  let rec place depth =
    if depth = n then begin
      let v = cost_of_partial g order assignment loads depth in
      if beats_best v then begin
        best_value := Some v;
        best_profile := Array.copy assignment
      end
    end
    else begin
      let user = order.(depth) in
      for l = 0 to m - 1 do
        loads.(l) <- Rational.add loads.(l) (Game.weight g user);
        assignment.(user) <- l;
        let lower = cost_of_partial g order assignment loads (depth + 1) in
        if beats_best lower then place (depth + 1);
        loads.(l) <- Rational.sub loads.(l) (Game.weight g user)
      done
    end
  in
  place 0;
  match !best_value with
  | Some v -> (v, !best_profile)
  | None -> assert false

let partial_sc1 g order assignment loads placed =
  let acc = ref Rational.zero in
  for d = 0 to placed - 1 do
    let i = order.(d) in
    acc := Rational.add !acc (Rational.div loads.(assignment.(i)) (Game.capacity g i assignment.(i)))
  done;
  !acc

let partial_sc2 g order assignment loads placed =
  let acc = ref Rational.zero in
  for d = 0 to placed - 1 do
    let i = order.(d) in
    acc := Rational.max !acc (Rational.div loads.(assignment.(i)) (Game.capacity g i assignment.(i)))
  done;
  !acc

let opt1_bb g = optimum_bb "opt1_bb" partial_sc1 g
let opt2_bb g = optimum_bb "opt2_bb" partial_sc2 g
