(** The exact distribution of the load vector under a mixed profile.

    A mixed profile [P] induces a product measure over the [m^n] pure
    realisations, but every quantity the KP social cost needs — the
    expected maximum congestion [SC(w, P)] of Section 4, and any other
    expectation of a function of the per-link loads — factors through
    the much smaller distribution of the {e load vector}
    [(load(0), …, load(m-1))].  This module computes that distribution
    exactly, by a user-by-user dynamic program:

    {ul
    {- users with equal weight and equal probability row (a {e class};
       capacities play no role — loads do not depend on them) are
       exchangeable, so a class of [n_c] users is absorbed in one step
       that enumerates its [C(n_c + m - 1, m - 1)] link-count splits
       with multinomial weights instead of its [m^{n_c}] realisations;}
    {- realisations that produce the same load vector are merged into a
       single state of a hash table keyed on the exact rational vector
       ({!Numeric.Qvec.hash}/{!Numeric.Qvec.equal}), with their
       probabilities accumulated.}}

    All arithmetic is exact, so the resulting expectations are
    bit-identical to the brute-force [m^n] sum.  For exchangeable users
    (e.g. the uniform fully mixed profiles of Theorem 4.8) the state
    space is polynomial: one class of [n] users over [m] links has at
    most [C(n + m - 1, m - 1)] states — [n = 40, m = 3] is 861 states
    where the seed enumerator faced [3^40] realisations. *)

type t

(** [of_mixed ?limit g p] is the exact distribution of the load vector
    when every user draws its link independently from its row of [p].
    Does not require a KP instance — loads depend only on weights.
    [limit] bounds the number of {e distinct load states} the dynamic
    program may hold at any point (default [1_000_000]; the seed
    enumerator's limit bounded [m^n] instead, which this bound only
    reaches when every user is its own class and no loads collide).
    With [~domains > 1], each DP layer whose frontier is large enough
    to amortise domain spawns is expanded in parallel: the frontier is
    block-sharded, workers accumulate into private tables, and the
    merge re-sums probabilities — exactly, so the distribution (and
    every expectation of it) is bit-identical to the serial DP.  The
    state limit then applies to the merged layer.
    @raise Invalid_argument when [p] is not a valid mixed profile for
    [g] or when the state space exceeds [limit]. *)
val of_mixed : ?limit:int -> ?domains:int -> Game.t -> Mixed.profile -> t

(** [links d] is the dimension of the load vectors. *)
val links : t -> int

(** [size d] is the number of distinct load vectors with positive
    probability (zero-probability realisations are never materialised). *)
val size : t -> int

(** [classes d] is the number of user classes the profile was grouped
    into — [1] for fully exchangeable users, [n] when all users are
    distinct. *)
val classes : t -> int

(** [total_probability d] is the sum of all state probabilities —
    exactly [1] by construction; exposed for tests and sanity checks. *)
val total_probability : t -> Numeric.Rational.t

(** [expect d f] is the exact expectation [Σ_v P(v)·f(v)] of a function
    of the load vector.  [f] must treat its argument as read-only (it
    is the distribution's internal state, not a copy). *)
val expect : t -> (Numeric.Rational.t array -> Numeric.Rational.t) -> Numeric.Rational.t

(** [iter d f] calls [f loads prob] on every state, in an unspecified
    (but deterministic) order.  [loads] is read-only, as in {!expect}. *)
val iter : t -> (Numeric.Rational.t array -> Numeric.Rational.t -> unit) -> unit
