(** Class-compressed games: the primary representation for large
    populations.

    Everything symmetric in the model depends only on how many users
    share a (weight, belief) profile — the same exchangeability that
    {!Load_dist} exploits inside the mixed DP.  A [Cgame.t] stores
    [k] {e classes}, each with a user count (up to [10^6] and beyond),
    one weight and one belief, instead of [n] individual users, so the
    class-aware consumers ({!Cview}, {!Cmixed}, the [C*] algorithms in
    [lib/algo]) run in poly(k, m) with no dependence on [n].

    A {e class profile} assigns per-class user counts to links:
    [x.(c).(l)] users of class [c] play link [l], with
    [Σ_l x.(c).(l) = count c].  It is the pure-strategy object of the
    class layer; {!expand_profile}/{!compress_profile} bridge it to the
    per-user {!Pure.profile} exactly (users laid out class-major, links
    ascending within a class), and the differential suite in
    [test/test_cgame.ml] pins the two layers bit-identical on every
    predicate they share. *)

type t

(** Per-class link assignment counts, [k × m]. *)
type profile = int array array

(** [make ~counts ~weights ~beliefs] validates and builds a class game:
    one positive count, positive weight and belief per class, beliefs
    agreeing on [m ≥ 2] links, and a total user count that fits a
    native [int].
    @raise Invalid_argument on any violation. *)
val make : counts:int array -> weights:Numeric.Rational.t array -> beliefs:Belief.t array -> t

(** [make_uncertain ~counts ~weights ~uncertainty] builds a class game
    from per-class uncertainty backends ({!Uncertainty}); {!make} is
    exactly this over {!Uncertainty.bayesian} wrappers, bit-identically.
    Per-class contribution and bias mirror {!Game.make_uncertain}. *)
val make_uncertain :
  counts:int array -> weights:Numeric.Rational.t array -> uncertainty:Uncertainty.t array -> t

(** [of_capacities ~counts ~weights caps] builds the reduced form from
    the per-class effective capacity matrix [caps.(c).(l)], each row
    realised as a Dirac belief (mirrors {!Game.of_capacities}). *)
val of_capacities :
  counts:int array -> weights:Numeric.Rational.t array -> Numeric.Rational.t array array -> t

(** [kp ~counts ~weights ~capacities] is the classical KP instance:
    every class is certain of the same capacity vector. *)
val kp :
  counts:int array -> weights:Numeric.Rational.t array -> capacities:Numeric.Rational.t array -> t

val classes : t -> int
val links : t -> int

(** [users g] is the total population [n = Σ_c count]. *)
val users : t -> int

(** [count g c] is the number of users in class [c]. *)
val count : t -> int -> int

(** [weight g c] is the common weight of class [c]'s users. *)
val weight : t -> int -> Numeric.Rational.t

(** [belief g c] is the belief through which class [c] prices
    capacities ({!Uncertainty.belief}). *)
val belief : t -> int -> Belief.t

(** [uncertainty g c] is class [c]'s uncertainty backend. *)
val uncertainty : t -> int -> Uncertainty.t

(** [contribution g c] is the per-user traffic link loads carry for
    class [c]'s users ({!Game.contribution}). *)
val contribution : t -> int -> Numeric.Rational.t

(** [bias g c] is the own-latency surcharge of class [c]'s users
    ({!Game.bias}); zero for load-linear classes. *)
val bias : t -> int -> Numeric.Rational.t

(** [is_load_linear g] holds when every class's latency has the plain
    [load/ĉ] form ({!Game.is_load_linear}). *)
val is_load_linear : t -> bool

(** [capacity g c l] is the effective capacity [c^l] of class [c]. *)
val capacity : t -> int -> int -> Numeric.Rational.t

(** [capacity_row g c] is class [c]'s effective capacity vector
    (fresh copy). *)
val capacity_row : t -> int -> Numeric.Rational.t array

(** [total_traffic g] is [Σ_c count_c · w_c], exactly. *)
val total_traffic : t -> Numeric.Rational.t

(** [packed_tables g] is the game's native-int packing ({!Packing},
    one row per class with count multiplicities), computed once at
    construction; [None] when any component exceeds the native range. *)
val packed_tables : t -> Packing.t option

(** [is_kp g] holds when all classes share one effective capacity
    vector. *)
val is_kp : t -> bool

(** [has_uniform_beliefs g] holds when every class sees all links with
    equal effective capacity. *)
val has_uniform_beliefs : t -> bool

(** [is_symmetric g] holds when all class weights are equal. *)
val is_symmetric : t -> bool

(** [compress g] groups the users of a per-user game into classes of
    equal weight, equal effective-capacity row and equal contribution,
    in first-seen order, and returns the class game together with the
    user → class map.
    The grouping is observational: two users whose distinct beliefs
    induce the same capacity row share a class (the class keeps the
    first user's belief), which is exact for every quantity in the
    game — all latencies factor through the effective capacities. *)
val compress : Game.t -> t * int array

(** [expand g] is the per-user game with [users g] users laid out
    class-major (class 0's users first).  Exact: weights, beliefs and
    capacity rows are replicated per class, so
    [expand (fst (compress h))] agrees with [h] on every latency —
    modulo the class-major reordering recorded by [compress]'s map.
    Intended for [n] small enough to afford O(n) arrays. *)
val expand : t -> Game.t

(** [validate g x] checks that [x] is a well-formed class profile:
    [k × m], non-negative entries, and each row summing to the class
    count. @raise Invalid_argument otherwise. *)
val validate : t -> profile -> unit

(** [expand_profile g x] is the per-user profile matching {!expand}'s
    user layout: within a class, users are assigned links in ascending
    link order ([x.(c).(0)] users on link 0, then [x.(c).(1)], …). *)
val expand_profile : t -> profile -> int array

(** [compress_profile g ~class_of p] folds a per-user profile into
    per-class counts using the user → class map (as returned by
    {!compress}).  @raise Invalid_argument when lengths or link indices
    are out of range. *)
val compress_profile : t -> class_of:int array -> int array -> profile

val pp : Format.formatter -> t -> unit
