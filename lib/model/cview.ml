open Numeric

(* The cursor: current assignment counts, current loads (initial
   traffic included), and a packed move history for [undo].  A history
   entry is two ints — [(cls * m + src) * m + dst] and [count] — so
   the stack is a flat int array that doubles on demand.  Structural
   deltas (count / weight / capacity revisions) push a sentinel meta
   [-1] paired with a variant on the [shist] side stack, so moves keep
   their two-int cost and [undo] reverts both kinds in LIFO order.

   Like [View], loads live in one of two lanes: a packed native-int
   lane backed by the game's [Packing] tables (loads scaled by a common
   denominator, capacities as reduced int pairs, every predicate a
   three-factor native product) and an exact big-rational lane taken
   whenever packing would spill.  Both lanes produce identical
   canonical rationals.  A structural delta re-checks the [Packing]
   product bound against the revised totals and, when it no longer
   holds, spills the live loads to the exact lane without rebuilding;
   the abandoned packed tables are kept in the undo entry so reverting
   the delta restores the fast lane bit-identically.

   The class tables (weights, contributions, biases, capacity rows)
   are view-local copies: revisions mutate the view, never the
   underlying [Cgame.t], and [to_cgame] re-materialises a game from
   the revised state. *)

type packed_lane = {
  pscale : int;
  mutable ppw : int array; (* scaled weight per class *)
  piload : int array; (* scaled load per link *)
  mutable pcn : int array; (* capacity numerators, row-major c*m + l *)
  mutable pcd : int array;
  mutable powned : bool; (* ppw/pcn/pcd are private copies, safe to mutate *)
  mutable pmaxcn : int; (* monotone upper bounds for the product bound *)
  mutable pmaxcd : int;
  mutable ptotal : int; (* current total scaled traffic, initial included *)
}

type lane = Exact of Rational.t array | Packed of packed_lane

(* Undo record for one structural delta.  [restore = Some lane] marks
   a delta that spilled the packed lane; reverting it reinstates the
   saved lane (whose tables were snapshotted before the delta touched
   anything, so they still hold the pre-delta values). *)
type sdelta =
  | Scount of { cls : int; link : int; delta : int; restore : lane option }
  | Sweight of {
      cls : int;
      weight : Rational.t;
      contrib : Rational.t;
      bias : Rational.t;
      ppw : int;
      restore : lane option;
    }
  | Scap of { cls : int; link : int; cap : Rational.t; pcn : int; pcd : int; restore : lane option }

type t = {
  game : Cgame.t;
  assign : int array array;
  weights : Rational.t array; (* view-local class tables *)
  contribs : Rational.t array;
  biases : Rational.t array;
  caps : Rational.t array array;
  mutable lane : lane;
  mutable hist : int array;
  mutable depth : int;
  mutable shist : sdelta list;
  mutable nrev : int; (* structural deltas currently applied *)
  mutable owner : int; (* creating domain id, for SELFISH_OWNERSHIP *)
}

let game v = v.game
let classes v = Array.length v.assign

let links v =
  match v.lane with
  | Exact loads -> Array.length loads
  | Packed pk -> Array.length pk.piload

let packed v = match v.lane with Packed _ -> true | Exact _ -> false

let of_profile g ?initial x =
  Cgame.validate g x;
  let m = Cgame.links g in
  (match initial with
   | None -> ()
   | Some t ->
     if Array.length t <> m then
       invalid_arg "Cview.of_profile: initial traffic length differs from link count";
     Array.iter
       (fun q ->
         if Rational.sign q < 0 then invalid_arg "Cview.of_profile: negative initial traffic")
       t);
  let k = Cgame.classes g in
  let contribs = Array.init k (Cgame.contribution g) in
  let lane =
    match Cgame.packed_tables g with
    | Some pk when (match initial with None -> pk.Packing.base_ok | Some _ -> true) -> begin
      let attempt =
        match initial with
        | None -> Some (pk.Packing.scale, pk.Packing.pw, Array.make m 0, pk.Packing.wsum)
        | Some t -> Packing.rescale pk t
      in
      match attempt with
      | None -> None
      | Some (scale, pw, iload, total) ->
        Array.iteri
          (fun c row -> Array.iteri (fun l e -> iload.(l) <- iload.(l) + (e * pw.(c))) row)
          x;
        Some
          (Packed
             {
               pscale = scale;
               ppw = pw;
               piload = iload;
               pcn = pk.Packing.cn;
               pcd = pk.Packing.cd;
               powned = false;
               pmaxcn = pk.Packing.maxcn;
               pmaxcd = pk.Packing.maxcd;
               ptotal = total;
             })
    end
    | _ -> None
  in
  let lane =
    match lane with
    | Some lane -> lane
    | None ->
      let loads =
        match initial with
        | None -> Array.make m Rational.zero
        | Some t -> Array.copy t
      in
      (* Loads sum per-user contributions (= weights for load-linear
         classes, presence-discounted under Bernoulli participation). *)
      Array.iteri
        (fun c row ->
          let w = contribs.(c) in
          Array.iteri
            (fun l e ->
              if e > 0 then loads.(l) <- Rational.add loads.(l) (Rational.mul (Rational.of_int e) w))
            row)
        x;
      Exact loads
  in
  {
    game = g;
    assign = Array.map Array.copy x;
    weights = Array.init k (Cgame.weight g);
    contribs;
    biases = Array.init k (Cgame.bias g);
    caps = Array.init k (Cgame.capacity_row g);
    lane;
    hist = Array.make 32 0;
    depth = 0;
    shist = [];
    nrev = 0;
    owner = Parallel.Ownership.record ();
  }

let assigned v c l = v.assign.(c).(l)
let profile v = Array.map Array.copy v.assign
let owner v = v.owner
let unsafe_set_owner v id = v.owner <- id
let weight v c = v.weights.(c)
let capacity v c l = v.caps.(c).(l)
let class_count v c = Array.fold_left ( + ) 0 v.assign.(c)
let revised v = v.nrev > 0

let load v l =
  match v.lane with
  | Exact loads -> loads.(l)
  | Packed pk -> Rational.make (Bigint.of_int pk.piload.(l)) (Bigint.of_int pk.pscale)

let loads v = Array.init (links v) (load v)
let depth v = v.depth

(* Unrecorded block reassignment shared by [move] and [undo]: one
   exact multiplication and two load updates, whatever [count] is.
   On the packed lane [count·pw] cannot wrap: it is at most the total
   scaled traffic, which fits by construction. *)
let shift v cls src dst count =
  if count > 0 && src <> dst then begin
    (match v.lane with
     | Exact loads ->
       let delta = Rational.mul (Rational.of_int count) v.contribs.(cls) in
       loads.(src) <- Rational.sub loads.(src) delta;
       loads.(dst) <- Rational.add loads.(dst) delta
     | Packed pk ->
       let delta = count * pk.ppw.(cls) in
       pk.piload.(src) <- pk.piload.(src) - delta;
       pk.piload.(dst) <- pk.piload.(dst) + delta);
    v.assign.(cls).(src) <- v.assign.(cls).(src) - count;
    v.assign.(cls).(dst) <- v.assign.(cls).(dst) + count
  end

let push v meta count =
  if 2 * v.depth = Array.length v.hist then begin
    let bigger = Array.make (4 * v.depth) 0 in
    Array.blit v.hist 0 bigger 0 (2 * v.depth);
    v.hist <- bigger
  end;
  v.hist.(2 * v.depth) <- meta;
  v.hist.((2 * v.depth) + 1) <- count;
  v.depth <- v.depth + 1

let move v ~cls ~src ~dst ~count =
  let k = classes v and m = links v in
  if cls < 0 || cls >= k then invalid_arg "Cview.move: class out of range";
  if src < 0 || src >= m || dst < 0 || dst >= m then invalid_arg "Cview.move: link out of range";
  if count < 0 then invalid_arg "Cview.move: negative count";
  if count > v.assign.(cls).(src) && src <> dst then
    invalid_arg "Cview.move: not enough users of the class on the source link";
  Parallel.Ownership.guard "Cview cursor" v.owner;
  push v (((cls * m) + src) * m + dst) count;
  shift v cls src dst count

(* Copy-on-write: the packed class tables start out shared with the
   game's [Packing] record (and with sibling views); take private
   copies before the first structural write. *)
let own pk =
  if not pk.powned then begin
    pk.ppw <- Array.copy pk.ppw;
    pk.pcn <- Array.copy pk.pcn;
    pk.pcd <- Array.copy pk.pcd;
    pk.powned <- true
  end

(* Abandon the packed lane: materialise the current loads as exact
   rationals (same canonical values the exact lane would have held)
   and switch over.  The packed record is left untouched so an undo
   entry can reinstate it. *)
let spill v pk =
  let loads =
    Array.map
      (fun s -> Rational.make (Bigint.of_int s) (Bigint.of_int pk.pscale))
      pk.piload
  in
  v.lane <- Exact loads;
  loads

(* [q·scale] as a positive native int, when integral and representable. *)
let scaled_int ~scale q =
  let d, r = Bigint.divmod (Bigint.of_int scale) (Rational.den q) in
  if not (Bigint.is_zero r) then None
  else
    match Bigint.to_int_opt (Bigint.mul (Rational.num q) d) with
    | Some x when x > 0 -> Some x
    | _ -> None

let push_structural v d =
  push v (-1) 0;
  v.shist <- d :: v.shist;
  v.nrev <- v.nrev + 1

let exact_count_patch loads link delta contrib =
  if delta <> 0 then begin
    let d = Rational.mul (Rational.of_int (abs delta)) contrib in
    loads.(link) <-
      (if delta > 0 then Rational.add loads.(link) d else Rational.sub loads.(link) d)
  end

let revise_count v ~cls ~link ~delta =
  let k = classes v and m = links v in
  if cls < 0 || cls >= k then invalid_arg "Cview.revise_count: class out of range";
  if link < 0 || link >= m then invalid_arg "Cview.revise_count: link out of range";
  if delta < 0 && v.assign.(cls).(link) + delta < 0 then
    invalid_arg "Cview.revise_count: departures exceed the users of the class on the link";
  if delta > 0 && v.assign.(cls).(link) > max_int - delta then
    invalid_arg "Cview.revise_count: arrival count overflows";
  if delta < 0 && class_count v cls + delta <= 0 then
    invalid_arg "Cview.revise_count: revision would empty the class";
  Parallel.Ownership.guard "Cview cursor" v.owner;
  let restore =
    match v.lane with
    | Exact loads ->
      exact_count_patch loads link delta v.contribs.(cls);
      None
    | Packed pk ->
      let pw = pk.ppw.(cls) in
      let fits =
        delta <= 0
        || (delta <= (max_int - pk.ptotal) / pw
            && Packing.admits ~total:(pk.ptotal + (delta * pw)) ~maxcn:pk.pmaxcn
                 ~maxcd:pk.pmaxcd)
      in
      if fits then begin
        let d = delta * pw in
        pk.piload.(link) <- pk.piload.(link) + d;
        pk.ptotal <- pk.ptotal + d;
        None
      end
      else begin
        let old = v.lane in
        let loads = spill v pk in
        exact_count_patch loads link delta v.contribs.(cls);
        Some old
      end
  in
  v.assign.(cls).(link) <- v.assign.(cls).(link) + delta;
  push_structural v (Scount { cls; link; delta; restore })

let exact_weight_patch v cls contrib' =
  match v.lane with
  | Packed _ -> assert false
  | Exact loads ->
    let d = Rational.sub contrib' v.contribs.(cls) in
    if not (Rational.is_zero d) then
      Array.iteri
        (fun l e -> if e > 0 then loads.(l) <- Rational.add loads.(l) (Rational.mul (Rational.of_int e) d))
        v.assign.(cls)

let set_class_weight v cls w contrib bias =
  v.weights.(cls) <- w;
  v.contribs.(cls) <- contrib;
  v.biases.(cls) <- bias

let revise_weight v ~cls w' =
  let k = classes v in
  if cls < 0 || cls >= k then invalid_arg "Cview.revise_weight: class out of range";
  if Rational.sign w' <= 0 then invalid_arg "Cview.revise_weight: weight must be positive";
  Parallel.Ownership.guard "Cview cursor" v.owner;
  let lf = Uncertainty.load_factor (Cgame.uncertainty v.game cls) in
  let contrib' = Rational.mul lf w' in
  let bias' = Rational.sub w' contrib' in
  let old_w = v.weights.(cls)
  and old_c = v.contribs.(cls)
  and old_b = v.biases.(cls) in
  let restore, old_ppw =
    match v.lane with
    | Exact _ ->
      exact_weight_patch v cls contrib';
      (None, 0)
    | Packed pk -> begin
      let pw = pk.ppw.(cls) in
      let occ = class_count v cls in
      (* The packed lane exists only for load-linear games, where the
         contribution is the weight itself. *)
      match scaled_int ~scale:pk.pscale w' with
      | Some pw'
        when occ <= max_int / pw'
             && pk.ptotal - (occ * pw) <= max_int - (occ * pw')
             && Packing.admits
                  ~total:(pk.ptotal - (occ * pw) + (occ * pw'))
                  ~maxcn:pk.pmaxcn ~maxcd:pk.pmaxcd ->
        own pk;
        Array.iteri
          (fun l e -> if e > 0 then pk.piload.(l) <- pk.piload.(l) + (e * (pw' - pw)))
          v.assign.(cls);
        pk.ptotal <- pk.ptotal - (occ * pw) + (occ * pw');
        pk.ppw.(cls) <- pw';
        (None, pw)
      | _ ->
        let old = v.lane in
        ignore (spill v pk);
        exact_weight_patch v cls contrib';
        (Some old, pw)
    end
  in
  set_class_weight v cls w' contrib' bias';
  push_structural v (Sweight { cls; weight = old_w; contrib = old_c; bias = old_b; ppw = old_ppw; restore })

let revise_capacity v ~cls ~link cap' =
  let k = classes v and m = links v in
  if cls < 0 || cls >= k then invalid_arg "Cview.revise_capacity: class out of range";
  if link < 0 || link >= m then invalid_arg "Cview.revise_capacity: link out of range";
  if Rational.sign cap' <= 0 then invalid_arg "Cview.revise_capacity: capacity must be positive";
  Parallel.Ownership.guard "Cview cursor" v.owner;
  let old_cap = v.caps.(cls).(link) in
  let restore, old_cn, old_cd =
    match v.lane with
    | Exact _ -> (None, 0, 0)
    | Packed pk -> begin
      let idx = (cls * m) + link in
      match (Bigint.to_int_opt (Rational.num cap'), Bigint.to_int_opt (Rational.den cap')) with
      | Some a, Some b
        when a > 0 && b > 0
             && Packing.admits ~total:pk.ptotal ~maxcn:(max pk.pmaxcn a) ~maxcd:(max pk.pmaxcd b) ->
        own pk;
        let ocn = pk.pcn.(idx) and ocd = pk.pcd.(idx) in
        pk.pcn.(idx) <- a;
        pk.pcd.(idx) <- b;
        pk.pmaxcn <- max pk.pmaxcn a;
        pk.pmaxcd <- max pk.pmaxcd b;
        (None, ocn, ocd)
      | _ ->
        let old = v.lane in
        ignore (spill v pk);
        (Some old, 0, 0)
    end
  in
  v.caps.(cls).(link) <- cap';
  push_structural v (Scap { cls; link; cap = old_cap; pcn = old_cn; pcd = old_cd; restore })

let undo_structural v =
  match v.shist with
  | [] -> assert false (* sentinel in hist implies a side-stack entry *)
  | d :: rest ->
    v.shist <- rest;
    v.nrev <- v.nrev - 1;
    (match d with
     | Scount { cls; link; delta; restore } ->
       v.assign.(cls).(link) <- v.assign.(cls).(link) - delta;
       (match restore with
        | Some lane -> v.lane <- lane
        | None ->
          (match v.lane with
           | Exact loads -> exact_count_patch loads link (-delta) v.contribs.(cls)
           | Packed pk ->
             let d = delta * pk.ppw.(cls) in
             pk.piload.(link) <- pk.piload.(link) - d;
             pk.ptotal <- pk.ptotal - d))
     | Sweight { cls; weight; contrib; bias; ppw; restore } ->
       (match restore with
        | Some lane ->
          set_class_weight v cls weight contrib bias;
          v.lane <- lane
        | None ->
          (match v.lane with
           | Exact _ ->
             exact_weight_patch v cls contrib;
             set_class_weight v cls weight contrib bias
           | Packed pk ->
             let pw' = pk.ppw.(cls) in
             let occ = class_count v cls in
             Array.iteri
               (fun l e -> if e > 0 then pk.piload.(l) <- pk.piload.(l) + (e * (ppw - pw')))
               v.assign.(cls);
             pk.ptotal <- pk.ptotal - (occ * pw') + (occ * ppw);
             pk.ppw.(cls) <- ppw;
             set_class_weight v cls weight contrib bias))
     | Scap { cls; link; cap; pcn; pcd; restore } ->
       v.caps.(cls).(link) <- cap;
       (match restore with
        | Some lane -> v.lane <- lane
        | None ->
          (match v.lane with
           | Exact _ -> ()
           | Packed pk ->
             let idx = (cls * links v) + link in
             pk.pcn.(idx) <- pcn;
             pk.pcd.(idx) <- pcd)))

let undo v =
  if v.depth = 0 then invalid_arg "Cview.undo: empty history";
  Parallel.Ownership.guard "Cview cursor" v.owner;
  v.depth <- v.depth - 1;
  let meta = v.hist.(2 * v.depth) and count = v.hist.((2 * v.depth) + 1) in
  if meta < 0 then undo_structural v
  else begin
    let m = links v in
    let dst = meta mod m in
    let src = meta / m mod m in
    let cls = meta / (m * m) in
    shift v cls dst src count
  end

let q_latency pk total idx =
  Rational.make
    (Bigint.of_int (total * pk.pcd.(idx)))
    (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int pk.pcn.(idx)))

(* A class member's own latency carries the class bias w − t (the user
   is always present for itself); zero — and skipped — for load-linear
   classes, keeping the seed's exact code path. *)
let biased v c q =
  let b = v.biases.(c) in
  if Rational.is_zero b then q else Rational.add q b

let latency v c l =
  match v.lane with
  | Exact loads -> Rational.div (biased v c loads.(l)) v.caps.(c).(l)
  | Packed pk ->
    let m = Array.length pk.piload in
    q_latency pk pk.piload.(l) ((c * m) + l)

let latency_after_move v ~cls ~src dst =
  match v.lane with
  | Exact loads ->
    let base = loads.(dst) in
    (* Deviation numerator: contribution + bias = w, the seed form. *)
    let total =
      if dst = src then biased v cls base else Rational.add base v.weights.(cls)
    in
    Rational.div total v.caps.(cls).(dst)
  | Packed pk ->
    let m = Array.length pk.piload in
    let total = pk.piload.(dst) + (if dst = src then 0 else pk.ppw.(cls)) in
    q_latency pk total ((cls * m) + dst)

(* Packed best response as the int pair (load'·cd, cn); candidate l
   beats the incumbent iff a·cn_best < best·cn_l, all within the
   packed product bound. *)
let packed_best pk ~cls ~src =
  let m = Array.length pk.piload in
  let base = cls * m and w = pk.ppw.(cls) in
  let best_link = ref 0 in
  let t0 = pk.piload.(0) + (if src = 0 then 0 else w) in
  let bnum = ref (t0 * pk.pcd.(base)) and bcn = ref pk.pcn.(base) in
  for l = 1 to m - 1 do
    let t = pk.piload.(l) + (if src = l then 0 else w) in
    let a = t * pk.pcd.(base + l) in
    if a * !bcn < !bnum * pk.pcn.(base + l) then begin
      best_link := l;
      bnum := a;
      bcn := pk.pcn.(base + l)
    end
  done;
  (!best_link, !bnum, !bcn)

let best_response_for v ~cls ~src =
  match v.lane with
  | Exact _ ->
    let best_link = ref 0 and best = ref (latency_after_move v ~cls ~src 0) in
    for l = 1 to links v - 1 do
      let lat = latency_after_move v ~cls ~src l in
      if Rational.compare lat !best < 0 then begin
        best_link := l;
        best := lat
      end
    done;
    (!best_link, !best)
  | Packed pk ->
    let best_link, bnum, bcn = packed_best pk ~cls ~src in
    ( best_link,
      Rational.make (Bigint.of_int bnum)
        (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int bcn)) )

(* The Nash inequality rides [Rational.compare_sum] on the exact lane
   ((load_l + w)/cap_l < current ⟺ load_l + w < current·cap_l) and a
   three-factor native product on the packed lane. *)
let is_defector v ~cls ~src =
  match v.lane with
  | Exact loads ->
    let current = latency v cls src in
    let w = v.weights.(cls) in
    let m = links v in
    let rec scan l =
      if l >= m then false
      else if
        l <> src
        && Rational.compare_sum loads.(l) w (Rational.mul current v.caps.(cls).(l)) < 0
      then true
      else scan (l + 1)
    in
    scan 0
  | Packed pk ->
    let m = Array.length pk.piload in
    let base = cls * m and w = pk.ppw.(cls) in
    let cnum = pk.piload.(src) * pk.pcd.(base + src) and ccn = pk.pcn.(base + src) in
    let rec scan l =
      if l >= m then false
      else if l <> src && (pk.piload.(l) + w) * pk.pcd.(base + l) * ccn < cnum * pk.pcn.(base + l)
      then true
      else scan (l + 1)
    in
    scan 0

(* Single-destination restriction of [is_defector]: does moving into
   [dst] strictly improve?  Native three-factor products on the packed
   lane, one [compare_sum] on the exact lane — no rational is built on
   the fast path, so callers may probe candidate links one at a time
   without paying for a full best-response sweep. *)
let improves v ~cls ~src dst =
  dst <> src
  && (match v.lane with
     | Exact loads ->
       let current = latency v cls src in
       Rational.compare_sum loads.(dst) v.weights.(cls)
         (Rational.mul current v.caps.(cls).(dst))
       < 0
     | Packed pk ->
       let m = Array.length pk.piload in
       let base = cls * m and w = pk.ppw.(cls) in
       (pk.piload.(dst) + w) * pk.pcd.(base + dst) * pk.pcn.(base + src)
       < pk.piload.(src) * pk.pcd.(base + src) * pk.pcn.(base + dst))

(* Class ascending, source link ascending: the exact order in which
   [Cgame.expand_profile] lays out the users, so this is the per-user
   first-defector choice computed without any per-user work. *)
let first_defector v =
  let k = classes v and m = links v in
  match v.lane with
  | Exact _ ->
    let rec over_links c l =
      if l >= m then over_classes (c + 1)
      else if v.assign.(c).(l) > 0 then begin
        let target, best = best_response_for v ~cls:c ~src:l in
        if Rational.compare best (latency v c l) < 0 then Some (c, l, target)
        else over_links c (l + 1)
      end
      else over_links c (l + 1)
    and over_classes c = if c >= k then None else over_links c 0 in
    over_classes 0
  | Packed pk ->
    let rec over_links c l =
      if l >= m then over_classes (c + 1)
      else if v.assign.(c).(l) > 0 then begin
        let target, bnum, bcn = packed_best pk ~cls:c ~src:l in
        let base = c * m in
        let cnum = pk.piload.(l) * pk.pcd.(base + l) and ccn = pk.pcn.(base + l) in
        if bnum * ccn < cnum * bcn then Some (c, l, target) else over_links c (l + 1)
      end
      else over_links c (l + 1)
    and over_classes c = if c >= k then None else over_links c 0 in
    over_classes 0

let is_nash v =
  let k = classes v and m = links v in
  let rec over_links c l =
    if l >= m then over_classes (c + 1)
    else if v.assign.(c).(l) > 0 && is_defector v ~cls:c ~src:l then false
    else over_links c (l + 1)
  and over_classes c = c >= k || over_links c 0 in
  over_classes 0

(* The j-th sequential mover (j ≥ 1) improves iff
     (load_dst + (j-1)·t + w + β)·/c_dst < (load_src - (j-1)·t + β)/c_src
   with t the class contribution and β = w − t its bias (so t = w,
   β = 0 on the seed's load-linear path) ⟺ j < q for
     q = (Δ + t/c_src) / (t·(1/c_dst + 1/c_src)),
   Δ = (load_src + β)/c_src − (load_dst + β)/c_dst.  The valid j form
   a prefix (LHS grows, RHS shrinks), so the maximal block is the
   largest integer strictly below q, clamped to the available users. *)
let max_improving_block v ~cls ~src ~dst =
  let k = classes v and m = links v in
  if cls < 0 || cls >= k then invalid_arg "Cview.max_improving_block: class out of range";
  if src < 0 || src >= m || dst < 0 || dst >= m then
    invalid_arg "Cview.max_improving_block: link out of range";
  if src = dst then invalid_arg "Cview.max_improving_block: source and destination coincide";
  let t = v.contribs.(cls) in
  let cap_s = v.caps.(cls).(src) and cap_d = v.caps.(cls).(dst) in
  let delta =
    Rational.sub
      (Rational.div (biased v cls (load v src)) cap_s)
      (Rational.div (biased v cls (load v dst)) cap_d)
  in
  let q =
    Rational.div
      (Rational.add delta (Rational.div t cap_s))
      (Rational.mul t (Rational.add (Rational.inv cap_d) (Rational.inv cap_s)))
  in
  let avail = v.assign.(cls).(src) in
  if Rational.compare q Rational.one <= 0 then 0
  else if Rational.compare q (Rational.of_int avail) > 0 then avail
  else
    (* q ∈ (1, avail]: ceil(q) − 1 ∈ [1, avail] fits a native int. *)
    Bigint.to_int_exn (Rational.num (Rational.sub (Rational.ceil q) Rational.one))

let social_cost1 v =
  let acc = ref Rational.zero in
  for c = 0 to classes v - 1 do
    for l = 0 to links v - 1 do
      let e = v.assign.(c).(l) in
      if e > 0 then acc := Rational.add !acc (Rational.mul (Rational.of_int e) (latency v c l))
    done
  done;
  !acc

let social_cost2 v =
  let acc = ref Rational.zero in
  for c = 0 to classes v - 1 do
    for l = 0 to links v - 1 do
      if v.assign.(c).(l) > 0 then acc := Rational.max !acc (latency v c l)
    done
  done;
  !acc

(* Re-materialise a class game from the revised state.  Classes whose
   capacity row is untouched keep their original uncertainty backend;
   a revised row is re-wrapped as the matching certain belief (or a
   degenerate interval for [Strict]) — exact, since every decision
   factors through the effective capacities. *)
let to_cgame v =
  if v.nrev = 0 then v.game
  else begin
    let k = classes v in
    let counts = Array.init k (class_count v) in
    let uncertainty =
      Array.init k (fun c ->
        let u = Cgame.uncertainty v.game c in
        let row = v.caps.(c) in
        let original = Cgame.capacity_row v.game c in
        if Array.for_all2 Rational.equal row original then u
        else begin
          let certain = Belief.certain (State.make (Array.copy row)) in
          match Uncertainty.kind u with
          | Uncertainty.Bayesian -> Uncertainty.bayesian certain
          | Uncertainty.Participation ->
            Uncertainty.participation ~presence:(Uncertainty.presence u) certain
          | Uncertainty.Strict ->
            Uncertainty.strict_of_intervals (Array.map (fun q -> (q, q)) row)
        end)
    in
    Cgame.make_uncertain ~counts ~weights:(Array.copy v.weights) ~uncertainty
  end
