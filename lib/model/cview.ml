open Numeric

(* The cursor: current assignment counts, current loads (initial
   traffic included), and a packed move history for [undo].  A history
   entry is two ints — [(cls * m + src) * m + dst] and [count] — so
   the stack is a flat int array that doubles on demand.

   Like [View], loads live in one of two lanes: a packed native-int
   lane backed by the game's [Packing] tables (loads scaled by a common
   denominator, capacities as reduced int pairs, every predicate a
   three-factor native product) and an exact big-rational lane taken
   whenever packing would spill.  Both lanes produce identical
   canonical rationals. *)

type packed_lane = {
  pscale : int;
  ppw : int array; (* scaled weight per class *)
  piload : int array; (* scaled load per link *)
  pcn : int array; (* capacity numerators, row-major c*m + l *)
  pcd : int array;
}

type lane = Exact of Rational.t array | Packed of packed_lane

type t = {
  game : Cgame.t;
  assign : int array array;
  lane : lane;
  mutable hist : int array;
  mutable depth : int;
  mutable owner : int; (* creating domain id, for SELFISH_OWNERSHIP *)
}

let game v = v.game
let classes v = Array.length v.assign

let links v =
  match v.lane with
  | Exact loads -> Array.length loads
  | Packed pk -> Array.length pk.piload

let packed v = match v.lane with Packed _ -> true | Exact _ -> false

let of_profile g ?initial x =
  Cgame.validate g x;
  let m = Cgame.links g in
  (match initial with
   | None -> ()
   | Some t ->
     if Array.length t <> m then
       invalid_arg "Cview.of_profile: initial traffic length differs from link count";
     Array.iter
       (fun q ->
         if Rational.sign q < 0 then invalid_arg "Cview.of_profile: negative initial traffic")
       t);
  let lane =
    match Cgame.packed_tables g with
    | Some pk when (match initial with None -> pk.Packing.base_ok | Some _ -> true) -> begin
      let attempt =
        match initial with
        | None -> Some (pk.Packing.scale, pk.Packing.pw, Array.make m 0)
        | Some t ->
          (match Packing.rescale pk t with
           | Some (scale, pw, iload0, _total) -> Some (scale, pw, iload0)
           | None -> None)
      in
      match attempt with
      | None -> None
      | Some (scale, pw, iload) ->
        Array.iteri
          (fun c row -> Array.iteri (fun l e -> iload.(l) <- iload.(l) + (e * pw.(c))) row)
          x;
        Some (Packed { pscale = scale; ppw = pw; piload = iload; pcn = pk.Packing.cn; pcd = pk.Packing.cd })
    end
    | _ -> None
  in
  let lane =
    match lane with
    | Some lane -> lane
    | None ->
      let loads =
        match initial with
        | None -> Array.make m Rational.zero
        | Some t -> Array.copy t
      in
      (* Loads sum per-user contributions (= weights for load-linear
         classes, presence-discounted under Bernoulli participation). *)
      Array.iteri
        (fun c row ->
          let w = Cgame.contribution g c in
          Array.iteri
            (fun l e ->
              if e > 0 then loads.(l) <- Rational.add loads.(l) (Rational.mul (Rational.of_int e) w))
            row)
        x;
      Exact loads
  in
  {
    game = g;
    assign = Array.map Array.copy x;
    lane;
    hist = Array.make 32 0;
    depth = 0;
    owner = Parallel.Ownership.record ();
  }

let assigned v c l = v.assign.(c).(l)
let profile v = Array.map Array.copy v.assign
let owner v = v.owner
let unsafe_set_owner v id = v.owner <- id

let load v l =
  match v.lane with
  | Exact loads -> loads.(l)
  | Packed pk -> Rational.make (Bigint.of_int pk.piload.(l)) (Bigint.of_int pk.pscale)

let loads v = Array.init (links v) (load v)
let depth v = v.depth

(* Unrecorded block reassignment shared by [move] and [undo]: one
   exact multiplication and two load updates, whatever [count] is.
   On the packed lane [count·pw] cannot wrap: it is at most the total
   scaled traffic, which fits by construction. *)
let shift v cls src dst count =
  if count > 0 && src <> dst then begin
    (match v.lane with
     | Exact loads ->
       let delta = Rational.mul (Rational.of_int count) (Cgame.contribution v.game cls) in
       loads.(src) <- Rational.sub loads.(src) delta;
       loads.(dst) <- Rational.add loads.(dst) delta
     | Packed pk ->
       let delta = count * pk.ppw.(cls) in
       pk.piload.(src) <- pk.piload.(src) - delta;
       pk.piload.(dst) <- pk.piload.(dst) + delta);
    v.assign.(cls).(src) <- v.assign.(cls).(src) - count;
    v.assign.(cls).(dst) <- v.assign.(cls).(dst) + count
  end

let push v meta count =
  if 2 * v.depth = Array.length v.hist then begin
    let bigger = Array.make (4 * v.depth) 0 in
    Array.blit v.hist 0 bigger 0 (2 * v.depth);
    v.hist <- bigger
  end;
  v.hist.(2 * v.depth) <- meta;
  v.hist.((2 * v.depth) + 1) <- count;
  v.depth <- v.depth + 1

let move v ~cls ~src ~dst ~count =
  let k = classes v and m = links v in
  if cls < 0 || cls >= k then invalid_arg "Cview.move: class out of range";
  if src < 0 || src >= m || dst < 0 || dst >= m then invalid_arg "Cview.move: link out of range";
  if count < 0 then invalid_arg "Cview.move: negative count";
  if count > v.assign.(cls).(src) && src <> dst then
    invalid_arg "Cview.move: not enough users of the class on the source link";
  Parallel.Ownership.guard "Cview cursor" v.owner;
  push v (((cls * m) + src) * m + dst) count;
  shift v cls src dst count

let undo v =
  if v.depth = 0 then invalid_arg "Cview.undo: empty history";
  Parallel.Ownership.guard "Cview cursor" v.owner;
  v.depth <- v.depth - 1;
  let meta = v.hist.(2 * v.depth) and count = v.hist.((2 * v.depth) + 1) in
  let m = links v in
  let dst = meta mod m in
  let src = meta / m mod m in
  let cls = meta / (m * m) in
  shift v cls dst src count

let q_latency pk total idx =
  Rational.make
    (Bigint.of_int (total * pk.pcd.(idx)))
    (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int pk.pcn.(idx)))

(* A class member's own latency carries the class bias w − t (the user
   is always present for itself); zero — and skipped — for load-linear
   classes, keeping the seed's exact code path. *)
let biased v c q =
  let b = Cgame.bias v.game c in
  if Rational.is_zero b then q else Rational.add q b

let latency v c l =
  match v.lane with
  | Exact loads -> Rational.div (biased v c loads.(l)) (Cgame.capacity v.game c l)
  | Packed pk ->
    let m = Array.length pk.piload in
    q_latency pk pk.piload.(l) ((c * m) + l)

let latency_after_move v ~cls ~src dst =
  match v.lane with
  | Exact loads ->
    let base = loads.(dst) in
    (* Deviation numerator: contribution + bias = w, the seed form. *)
    let total =
      if dst = src then biased v cls base else Rational.add base (Cgame.weight v.game cls)
    in
    Rational.div total (Cgame.capacity v.game cls dst)
  | Packed pk ->
    let m = Array.length pk.piload in
    let total = pk.piload.(dst) + (if dst = src then 0 else pk.ppw.(cls)) in
    q_latency pk total ((cls * m) + dst)

(* Packed best response as the int pair (load'·cd, cn); candidate l
   beats the incumbent iff a·cn_best < best·cn_l, all within the
   packed product bound. *)
let packed_best pk ~cls ~src =
  let m = Array.length pk.piload in
  let base = cls * m and w = pk.ppw.(cls) in
  let best_link = ref 0 in
  let t0 = pk.piload.(0) + (if src = 0 then 0 else w) in
  let bnum = ref (t0 * pk.pcd.(base)) and bcn = ref pk.pcn.(base) in
  for l = 1 to m - 1 do
    let t = pk.piload.(l) + (if src = l then 0 else w) in
    let a = t * pk.pcd.(base + l) in
    if a * !bcn < !bnum * pk.pcn.(base + l) then begin
      best_link := l;
      bnum := a;
      bcn := pk.pcn.(base + l)
    end
  done;
  (!best_link, !bnum, !bcn)

let best_response_for v ~cls ~src =
  match v.lane with
  | Exact _ ->
    let best_link = ref 0 and best = ref (latency_after_move v ~cls ~src 0) in
    for l = 1 to links v - 1 do
      let lat = latency_after_move v ~cls ~src l in
      if Rational.compare lat !best < 0 then begin
        best_link := l;
        best := lat
      end
    done;
    (!best_link, !best)
  | Packed pk ->
    let best_link, bnum, bcn = packed_best pk ~cls ~src in
    ( best_link,
      Rational.make (Bigint.of_int bnum)
        (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int bcn)) )

(* The Nash inequality rides [Rational.compare_sum] on the exact lane
   ((load_l + w)/cap_l < current ⟺ load_l + w < current·cap_l) and a
   three-factor native product on the packed lane. *)
let is_defector v ~cls ~src =
  match v.lane with
  | Exact loads ->
    let current = latency v cls src in
    let w = Cgame.weight v.game cls in
    let m = links v in
    let rec scan l =
      if l >= m then false
      else if
        l <> src
        && Rational.compare_sum loads.(l) w (Rational.mul current (Cgame.capacity v.game cls l)) < 0
      then true
      else scan (l + 1)
    in
    scan 0
  | Packed pk ->
    let m = Array.length pk.piload in
    let base = cls * m and w = pk.ppw.(cls) in
    let cnum = pk.piload.(src) * pk.pcd.(base + src) and ccn = pk.pcn.(base + src) in
    let rec scan l =
      if l >= m then false
      else if l <> src && (pk.piload.(l) + w) * pk.pcd.(base + l) * ccn < cnum * pk.pcn.(base + l)
      then true
      else scan (l + 1)
    in
    scan 0

(* Class ascending, source link ascending: the exact order in which
   [Cgame.expand_profile] lays out the users, so this is the per-user
   first-defector choice computed without any per-user work. *)
let first_defector v =
  let k = classes v and m = links v in
  match v.lane with
  | Exact _ ->
    let rec over_links c l =
      if l >= m then over_classes (c + 1)
      else if v.assign.(c).(l) > 0 then begin
        let target, best = best_response_for v ~cls:c ~src:l in
        if Rational.compare best (latency v c l) < 0 then Some (c, l, target)
        else over_links c (l + 1)
      end
      else over_links c (l + 1)
    and over_classes c = if c >= k then None else over_links c 0 in
    over_classes 0
  | Packed pk ->
    let rec over_links c l =
      if l >= m then over_classes (c + 1)
      else if v.assign.(c).(l) > 0 then begin
        let target, bnum, bcn = packed_best pk ~cls:c ~src:l in
        let base = c * m in
        let cnum = pk.piload.(l) * pk.pcd.(base + l) and ccn = pk.pcn.(base + l) in
        if bnum * ccn < cnum * bcn then Some (c, l, target) else over_links c (l + 1)
      end
      else over_links c (l + 1)
    and over_classes c = if c >= k then None else over_links c 0 in
    over_classes 0

let is_nash v =
  let k = classes v and m = links v in
  let rec over_links c l =
    if l >= m then over_classes (c + 1)
    else if v.assign.(c).(l) > 0 && is_defector v ~cls:c ~src:l then false
    else over_links c (l + 1)
  and over_classes c = c >= k || over_links c 0 in
  over_classes 0

(* The j-th sequential mover (j ≥ 1) improves iff
     (load_dst + (j-1)·t + w + β)·/c_dst < (load_src - (j-1)·t + β)/c_src
   with t the class contribution and β = w − t its bias (so t = w,
   β = 0 on the seed's load-linear path) ⟺ j < q for
     q = (Δ + t/c_src) / (t·(1/c_dst + 1/c_src)),
   Δ = (load_src + β)/c_src − (load_dst + β)/c_dst.  The valid j form
   a prefix (LHS grows, RHS shrinks), so the maximal block is the
   largest integer strictly below q, clamped to the available users. *)
let max_improving_block v ~cls ~src ~dst =
  let k = classes v and m = links v in
  if cls < 0 || cls >= k then invalid_arg "Cview.max_improving_block: class out of range";
  if src < 0 || src >= m || dst < 0 || dst >= m then
    invalid_arg "Cview.max_improving_block: link out of range";
  if src = dst then invalid_arg "Cview.max_improving_block: source and destination coincide";
  let t = Cgame.contribution v.game cls in
  let cap_s = Cgame.capacity v.game cls src and cap_d = Cgame.capacity v.game cls dst in
  let delta =
    Rational.sub
      (Rational.div (biased v cls (load v src)) cap_s)
      (Rational.div (biased v cls (load v dst)) cap_d)
  in
  let q =
    Rational.div
      (Rational.add delta (Rational.div t cap_s))
      (Rational.mul t (Rational.add (Rational.inv cap_d) (Rational.inv cap_s)))
  in
  let avail = v.assign.(cls).(src) in
  if Rational.compare q Rational.one <= 0 then 0
  else if Rational.compare q (Rational.of_int avail) > 0 then avail
  else
    (* q ∈ (1, avail]: ceil(q) − 1 ∈ [1, avail] fits a native int. *)
    Bigint.to_int_exn (Rational.num (Rational.sub (Rational.ceil q) Rational.one))

let social_cost1 v =
  let acc = ref Rational.zero in
  for c = 0 to classes v - 1 do
    for l = 0 to links v - 1 do
      let e = v.assign.(c).(l) in
      if e > 0 then acc := Rational.add !acc (Rational.mul (Rational.of_int e) (latency v c l))
    done
  done;
  !acc

let social_cost2 v =
  let acc = ref Rational.zero in
  for c = 0 to classes v - 1 do
    for l = 0 to links v - 1 do
      if v.assign.(c).(l) > 0 then acc := Rational.max !acc (latency v c l)
    done
  done;
  !acc
