open Numeric

(* The cursor: current profile, current loads (initial traffic
   included), and a packed move history for [undo].  A history entry
   stores [i * m + old_link] in one native int, so the stack is a flat
   int array that doubles on demand.

   Loads live in one of two lanes.  The packed lane stores them as
   native ints scaled by a common denominator, with capacities as
   reduced (num, den) int pairs from the game's [Packing] tables; under
   the bound checked at construction every latency comparison is a
   three-factor native product — exact, allocation-free, no per-op
   checks.  The exact lane keeps big-rational loads and is taken
   whenever any packed component would spill the native range, so both
   lanes compute identical answers and callers cannot observe which
   one is active (except through [packed], exposed for benchmarks). *)

type packed_lane = {
  pscale : int; (* common denominator of all loads/weights *)
  ppw : int array; (* scaled weight per user (read-only, often shared) *)
  piload : int array; (* scaled load per link (mutated by shift) *)
  pcn : int array; (* capacity numerators, row-major i*m + l *)
  pcd : int array; (* capacity denominators *)
}

type lane = Exact of Rational.t array | Packed of packed_lane

type t = {
  game : Game.t;
  prof : int array;
  lane : lane;
  mutable hist : int array;
  mutable depth : int;
  mutable owner : int; (* creating domain id, for SELFISH_OWNERSHIP *)
}

let game v = v.game
let users v = Array.length v.prof

let links v =
  match v.lane with
  | Exact loads -> Array.length loads
  | Packed pk -> Array.length pk.piload

let packed v = match v.lane with Packed _ -> true | Exact _ -> false

let of_profile g ?initial p =
  if Array.length p <> Game.users g then
    invalid_arg "View.of_profile: profile length differs from user count";
  let m = Game.links g in
  (match initial with
   | None -> ()
   | Some t ->
     if Array.length t <> m then
       invalid_arg "View.of_profile: initial traffic length differs from link count";
     Array.iter
       (fun q -> if Rational.sign q < 0 then invalid_arg "View.of_profile: negative initial traffic")
       t);
  Array.iter
    (fun l -> if l < 0 || l >= m then invalid_arg "View.of_profile: link out of range")
    p;
  let lane =
    match Game.packed_tables g with
    | Some pk when (match initial with None -> pk.Packing.base_ok | Some _ -> true) -> begin
      let attempt =
        match initial with
        | None -> Some (pk.Packing.scale, pk.Packing.pw, Array.make m 0)
        | Some t ->
          (match Packing.rescale pk t with
           | Some (scale, pw, iload0, _total) -> Some (scale, pw, iload0)
           | None -> None)
      in
      match attempt with
      | None -> None
      | Some (scale, pw, iload) ->
        Array.iteri (fun i l -> iload.(l) <- iload.(l) + pw.(i)) p;
        Some (Packed { pscale = scale; ppw = pw; piload = iload; pcn = pk.Packing.cn; pcd = pk.Packing.cd })
    end
    | _ -> None
  in
  let lane =
    match lane with
    | Some lane -> lane
    | None ->
      let loads =
        match initial with
        | None -> Array.make m Rational.zero
        | Some t -> Array.copy t
      in
      (* Loads sum contributions, not weights: other users only meet
         the presence-discounted traffic of user [i].  For load-linear
         games [contribution] is physically the weight. *)
      Array.iteri (fun i l -> loads.(l) <- Rational.add loads.(l) (Game.contribution g i)) p;
      Exact loads
  in
  {
    game = g;
    prof = Array.copy p;
    lane;
    hist = Array.make 16 0;
    depth = 0;
    owner = Parallel.Ownership.record ();
  }

let link v i = v.prof.(i)
let profile v = Array.copy v.prof
let owner v = v.owner
let unsafe_set_owner v id = v.owner <- id

(* Packed-lane rationals are rebuilt on demand through [Rational.make],
   whose canonical lowest-terms form makes them structurally identical
   to what the exact lane would have computed — lane choice is
   unobservable in results. *)
let q_of_scaled num scale = Rational.make (Bigint.of_int num) (Bigint.of_int scale)

let q_latency pk total idx =
  Rational.make
    (Bigint.of_int (total * pk.pcd.(idx)))
    (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int pk.pcn.(idx)))

let load v l =
  match v.lane with
  | Exact loads -> loads.(l)
  | Packed pk -> q_of_scaled pk.piload.(l) pk.pscale

let loads v = Array.init (links v) (load v)
let depth v = v.depth

(* Unrecorded reassignment: the O(1) delta shared by [move], [undo] and
   the sweep odometer.  Touches exactly the two affected load entries;
   both lanes are exact, so repeated shifts never drift. *)
let shift v i l =
  let old = v.prof.(i) in
  if l <> old then begin
    (match v.lane with
     | Exact loads ->
       let w = Game.contribution v.game i in
       loads.(old) <- Rational.sub loads.(old) w;
       loads.(l) <- Rational.add loads.(l) w
     | Packed pk ->
       let w = pk.ppw.(i) in
       pk.piload.(old) <- pk.piload.(old) - w;
       pk.piload.(l) <- pk.piload.(l) + w);
    v.prof.(i) <- l
  end

let push v entry =
  if v.depth = Array.length v.hist then begin
    let bigger = Array.make (2 * v.depth) 0 in
    Array.blit v.hist 0 bigger 0 v.depth;
    v.hist <- bigger
  end;
  v.hist.(v.depth) <- entry;
  v.depth <- v.depth + 1

let move v i l =
  if i < 0 || i >= users v then invalid_arg "View.move: user out of range";
  if l < 0 || l >= links v then invalid_arg "View.move: link out of range";
  Parallel.Ownership.guard "View cursor" v.owner;
  push v ((i * links v) + v.prof.(i));
  shift v i l

let undo v =
  if v.depth = 0 then invalid_arg "View.undo: empty history";
  Parallel.Ownership.guard "View cursor" v.owner;
  v.depth <- v.depth - 1;
  let entry = v.hist.(v.depth) in
  let m = links v in
  shift v (entry / m) (entry mod m)

(* User [i]'s own latency carries its bias (w_i − t_i): it is always
   present for itself, even when others only expect it with probability
   p_i.  The guard keeps load-linear games on the seed's exact code
   path (bias is physically zero there). *)
let biased v i q =
  let b = Game.bias v.game i in
  if Rational.is_zero b then q else Rational.add q b

let latency v i =
  let l = v.prof.(i) in
  match v.lane with
  | Exact loads -> Rational.div (biased v i loads.(l)) (Game.capacity v.game i l)
  | Packed pk ->
    let m = Array.length pk.piload in
    q_latency pk pk.piload.(l) ((i * m) + l)

let latency_on_link v i l =
  match v.lane with
  | Exact loads ->
    let base = loads.(l) in
    (* After a deviation the user meets its full weight: contribution +
       bias = w_i, so the moving branch is the seed expression. *)
    let total =
      if v.prof.(i) = l then biased v i base else Rational.add base (Game.weight v.game i)
    in
    Rational.div total (Game.capacity v.game i l)
  | Packed pk ->
    let m = Array.length pk.piload in
    let total = pk.piload.(l) + (if v.prof.(i) = l then 0 else pk.ppw.(i)) in
    q_latency pk total ((i * m) + l)

let best_response_for v i =
  match v.lane with
  | Exact _ ->
    let best_link = ref 0 and best = ref (latency_on_link v i 0) in
    for l = 1 to links v - 1 do
      let lat = latency_on_link v i l in
      if Rational.compare lat !best < 0 then begin
        best_link := l;
        best := lat
      end
    done;
    (!best_link, !best)
  | Packed pk ->
    (* Candidate latencies are (load'·cd)/(scale·cn): track the best as
       the int pair (load'·cd, cn) and compare by cross products, all
       within the packed bound. *)
    let m = Array.length pk.piload in
    let base = i * m and cur = v.prof.(i) and w = pk.ppw.(i) in
    let best_link = ref 0 in
    let t0 = pk.piload.(0) + (if cur = 0 then 0 else w) in
    let bnum = ref (t0 * pk.pcd.(base)) and bcn = ref pk.pcn.(base) in
    for l = 1 to m - 1 do
      let t = pk.piload.(l) + (if cur = l then 0 else w) in
      let a = t * pk.pcd.(base + l) in
      if a * !bcn < !bnum * pk.pcn.(base + l) then begin
        best_link := l;
        bnum := a;
        bcn := pk.pcn.(base + l)
      end
    done;
    ( !best_link,
      Rational.make (Bigint.of_int !bnum)
        (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int !bcn)) )

(* The Nash inequality on the exact lane rides the fused kernel:
   (load_l + w)/cap_l < current  ⟺  load_l + w < current·cap_l, i.e.
   [Rational.compare_sum load_l w (current·cap_l) < 0] — no sum is
   materialised and no division happens per candidate link.  On the
   packed lane it is a pure three-factor native product comparison.
   The kernel is backend-agnostic as written: a deviation numerator is
   load + contribution + bias = load + w for every backend, and
   [current] already carries the bias through [latency]. *)
let improving_moves v i =
  let moves = ref [] in
  (match v.lane with
   | Exact loads ->
     let current = latency v i in
     let w = Game.weight v.game i in
     for l = links v - 1 downto 0 do
       if
         l <> v.prof.(i)
         && Rational.compare_sum loads.(l) w (Rational.mul current (Game.capacity v.game i l)) < 0
       then moves := l :: !moves
     done
   | Packed pk ->
     let m = Array.length pk.piload in
     let base = i * m and cur = v.prof.(i) and w = pk.ppw.(i) in
     let cnum = pk.piload.(cur) * pk.pcd.(base + cur) and ccn = pk.pcn.(base + cur) in
     for l = m - 1 downto 0 do
       if l <> cur && (pk.piload.(l) + w) * pk.pcd.(base + l) * ccn < cnum * pk.pcn.(base + l)
       then moves := l :: !moves
     done);
  !moves

let is_defector v i =
  match v.lane with
  | Exact loads ->
    let current = latency v i in
    let w = Game.weight v.game i in
    let m = links v in
    let rec scan l =
      if l >= m then false
      else if
        l <> v.prof.(i)
        && Rational.compare_sum loads.(l) w (Rational.mul current (Game.capacity v.game i l)) < 0
      then true
      else scan (l + 1)
    in
    scan 0
  | Packed pk ->
    let m = Array.length pk.piload in
    let base = i * m and cur = v.prof.(i) and w = pk.ppw.(i) in
    let cnum = pk.piload.(cur) * pk.pcd.(base + cur) and ccn = pk.pcn.(base + cur) in
    let rec scan l =
      if l >= m then false
      else if l <> cur && (pk.piload.(l) + w) * pk.pcd.(base + l) * ccn < cnum * pk.pcn.(base + l)
      then true
      else scan (l + 1)
    in
    scan 0

let is_nash v =
  let n = users v in
  let rec check i = i >= n || ((not (is_defector v i)) && check (i + 1)) in
  check 0

let defectors v = List.filter (is_defector v) (List.init (users v) Fun.id)

let first_and_last_defector v =
  let first = ref (-1) and last = ref (-1) in
  for i = 0 to users v - 1 do
    if is_defector v i then begin
      if !first < 0 then first := i;
      last := i
    end
  done;
  if !first < 0 then None else Some (!first, !last)

let social_cost1 v =
  let acc = ref Rational.zero in
  for i = 0 to users v - 1 do
    acc := Rational.add !acc (latency v i)
  done;
  !acc

let social_cost2 v =
  let acc = ref Rational.zero in
  for i = 0 to users v - 1 do
    acc := Rational.max !acc (latency v i)
  done;
  !acc

(* The odometer of [Social.iter_profiles], expressed as moves: a
   non-carrying tick is one shift, a carry resets a suffix — 1 + 1/m
   + 1/m² + … ≤ m/(m-1) shifts amortised per profile.  Returns false
   when the odometer wraps past the last profile. *)
let tick v =
  let m = links v in
  let rec next i =
    if i < 0 then false
    else begin
      let l = v.prof.(i) in
      if l + 1 < m then begin
        shift v i (l + 1);
        true
      end
      else begin
        shift v i 0;
        next (i - 1)
      end
    end
  in
  next (users v - 1)

let sweep g ?initial f =
  let v = of_profile g ?initial (Array.make (Game.users g) 0) in
  let continue = ref true in
  while !continue do
    f v;
    continue := tick v
  done

(* [m^n] as a native int, or None on overflow (in which case a sweep
   of that size would never finish anyway and sharding is moot). *)
let profile_space g =
  let n = Game.users g and m = Game.links g in
  let rec go acc k =
    if k = 0 then Some acc
    else begin
      let next = acc * m in
      if next / m <> acc then None else go next (k - 1)
    end
  in
  go 1 n

let fold ?(domains = 1) ?initial g ~init ~f ~combine =
  let serial () =
    let acc = ref init in
    sweep g ?initial (fun v -> acc := f !acc v);
    !acc
  in
  match profile_space g with
  | Some total when domains > 1 && total > 1 ->
    let n = Game.users g and m = Game.links g in
    let workers = min domains total in
    let per = total / workers and extra = total mod workers in
    (* Shard w covers the contiguous odometer index block
       [w·per + min w extra, …) of size per (+1 for the first [extra]
       shards); each worker decodes its start index into a profile,
       builds a private view there and ticks through its block. *)
    let run_shard w =
      let lo = (w * per) + Stdlib.min w extra in
      let size = per + if w < extra then 1 else 0 in
      let p = Array.make n 0 in
      let idx = ref lo in
      for i = n - 1 downto 0 do
        p.(i) <- !idx mod m;
        idx := !idx / m
      done;
      let v = of_profile g ?initial p in
      let acc = ref (f init v) in
      for _ = 2 to size do
        ignore (tick v);
        acc := f !acc v
      done;
      !acc
    in
    let parts = Parallel.map ~domains:workers run_shard (List.init workers Fun.id) in
    List.fold_left combine init parts
  | _ -> serial ()
