open Numeric

(* The cursor: current profile, current loads (initial traffic
   included), and a packed move history for [undo].  A history entry
   stores [i * m + old_link] in one native int, so the stack is a flat
   int array that doubles on demand.  Structural deltas (arrivals,
   departures, capacity revisions) push a sentinel entry [-1] paired
   with a variant on the [shist] side stack, keeping the move path at
   its seed cost.

   Loads live in one of two lanes.  The packed lane stores them as
   native ints scaled by a common denominator, with capacities as
   reduced (num, den) int pairs from the game's [Packing] tables; under
   the bound checked at construction every latency comparison is a
   three-factor native product — exact, allocation-free, no per-op
   checks.  The exact lane keeps big-rational loads and is taken
   whenever any packed component would spill the native range, so both
   lanes compute identical answers and callers cannot observe which
   one is active (except through [packed], exposed for benchmarks).
   A structural delta re-checks the packing bound against the revised
   magnitudes and spills to the exact lane in place when it fails; the
   abandoned packed tables ride the undo entry, so reverting the delta
   restores the fast lane.

   Views are born sealed: per-user tables are read straight from the
   immutable [Game.t] and no per-user state is copied, so sweeps and
   per-move costs match the seed exactly.  The first structural delta
   unseals the view, materialising growable view-local tables
   (weights, contributions, biases, capacity rows, backends, active
   flags) in one O(n·m) pass; departures tombstone their slot (the
   [active] flag) rather than renumbering users. *)

type packed_lane = {
  pscale : int; (* common denominator of all loads/weights *)
  mutable ppw : int array; (* scaled weight per user *)
  piload : int array; (* scaled load per link (mutated by shift) *)
  mutable pcn : int array; (* capacity numerators, row-major i*m + l *)
  mutable pcd : int array; (* capacity denominators *)
  mutable powned : bool; (* ppw/pcn/pcd are private copies, safe to mutate/grow *)
  mutable pmaxcn : int; (* monotone upper bounds for the product bound *)
  mutable pmaxcd : int;
  mutable ptotal : int; (* current total scaled traffic, initial included *)
}

type lane = Exact of Rational.t array | Packed of packed_lane

(* Unsealed per-user state: parallel growable arrays of length ≥
   [slots]; slot [i] is live iff [active.(i)]. *)
type ext = {
  mutable slots : int;
  mutable nactive : int;
  mutable weights : Rational.t array;
  mutable contribs : Rational.t array;
  mutable biases : Rational.t array;
  mutable caps : Rational.t array array;
  mutable uncert : Uncertainty.t array;
  mutable active : bool array;
}

type sdelta =
  | Sadd of { restore : lane option }
  | Sremove of { user : int }
  | Scap of { user : int; link : int; cap : Rational.t; pcn : int; pcd : int; restore : lane option }

type t = {
  game : Game.t;
  mutable prof : int array;
  mutable lane : lane;
  mutable ext : ext option;
  mutable hist : int array;
  mutable depth : int;
  mutable shist : sdelta list;
  mutable owner : int; (* creating domain id, for SELFISH_OWNERSHIP *)
}

let game v = v.game

let users v =
  match v.ext with
  | None -> Array.length v.prof
  | Some e -> e.slots

let links v =
  match v.lane with
  | Exact loads -> Array.length loads
  | Packed pk -> Array.length pk.piload

let packed v = match v.lane with Packed _ -> true | Exact _ -> false

let of_profile g ?initial p =
  if Array.length p <> Game.users g then
    invalid_arg "View.of_profile: profile length differs from user count";
  let m = Game.links g in
  (match initial with
   | None -> ()
   | Some t ->
     if Array.length t <> m then
       invalid_arg "View.of_profile: initial traffic length differs from link count";
     Array.iter
       (fun q -> if Rational.sign q < 0 then invalid_arg "View.of_profile: negative initial traffic")
       t);
  Array.iter
    (fun l -> if l < 0 || l >= m then invalid_arg "View.of_profile: link out of range")
    p;
  let lane =
    match Game.packed_tables g with
    | Some pk when (match initial with None -> pk.Packing.base_ok | Some _ -> true) -> begin
      let attempt =
        match initial with
        | None -> Some (pk.Packing.scale, pk.Packing.pw, Array.make m 0, pk.Packing.wsum)
        | Some t -> Packing.rescale pk t
      in
      match attempt with
      | None -> None
      | Some (scale, pw, iload, total) ->
        Array.iteri (fun i l -> iload.(l) <- iload.(l) + pw.(i)) p;
        Some
          (Packed
             {
               pscale = scale;
               ppw = pw;
               piload = iload;
               pcn = pk.Packing.cn;
               pcd = pk.Packing.cd;
               powned = false;
               pmaxcn = pk.Packing.maxcn;
               pmaxcd = pk.Packing.maxcd;
               ptotal = total;
             })
    end
    | _ -> None
  in
  let lane =
    match lane with
    | Some lane -> lane
    | None ->
      let loads =
        match initial with
        | None -> Array.make m Rational.zero
        | Some t -> Array.copy t
      in
      (* Loads sum contributions, not weights: other users only meet
         the presence-discounted traffic of user [i].  For load-linear
         games [contribution] is physically the weight. *)
      Array.iteri (fun i l -> loads.(l) <- Rational.add loads.(l) (Game.contribution g i)) p;
      Exact loads
  in
  {
    game = g;
    prof = Array.copy p;
    lane;
    ext = None;
    hist = Array.make 16 0;
    depth = 0;
    shist = [];
    owner = Parallel.Ownership.record ();
  }

let link v i = v.prof.(i)
let profile v = Array.sub v.prof 0 (users v)
let owner v = v.owner
let unsafe_set_owner v id = v.owner <- id

(* Per-user table reads: straight from the game while sealed, from the
   view-local tables once a structural delta has unsealed the view. *)
let is_active v i = match v.ext with None -> true | Some e -> e.active.(i)
let active_users v = match v.ext with None -> Array.length v.prof | Some e -> e.nactive
let u_weight v i = match v.ext with None -> Game.weight v.game i | Some e -> e.weights.(i)

let u_contrib v i =
  match v.ext with None -> Game.contribution v.game i | Some e -> e.contribs.(i)

let u_bias v i = match v.ext with None -> Game.bias v.game i | Some e -> e.biases.(i)
let u_cap v i l = match v.ext with None -> Game.capacity v.game i l | Some e -> e.caps.(i).(l)

let u_uncertainty v i =
  match v.ext with None -> Game.uncertainty v.game i | Some e -> e.uncert.(i)

(* Packed-lane rationals are rebuilt on demand through [Rational.make],
   whose canonical lowest-terms form makes them structurally identical
   to what the exact lane would have computed — lane choice is
   unobservable in results. *)
let q_of_scaled num scale = Rational.make (Bigint.of_int num) (Bigint.of_int scale)

let q_latency pk total idx =
  Rational.make
    (Bigint.of_int (total * pk.pcd.(idx)))
    (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int pk.pcn.(idx)))

let load v l =
  match v.lane with
  | Exact loads -> loads.(l)
  | Packed pk -> q_of_scaled pk.piload.(l) pk.pscale

let loads v = Array.init (links v) (load v)
let depth v = v.depth

(* Unrecorded reassignment: the O(1) delta shared by [move], [undo] and
   the sweep odometer.  Touches exactly the two affected load entries;
   both lanes are exact, so repeated shifts never drift. *)
let shift v i l =
  let old = v.prof.(i) in
  if l <> old then begin
    (match v.lane with
     | Exact loads ->
       let w = u_contrib v i in
       loads.(old) <- Rational.sub loads.(old) w;
       loads.(l) <- Rational.add loads.(l) w
     | Packed pk ->
       let w = pk.ppw.(i) in
       pk.piload.(old) <- pk.piload.(old) - w;
       pk.piload.(l) <- pk.piload.(l) + w);
    v.prof.(i) <- l
  end

let push v entry =
  if v.depth = Array.length v.hist then begin
    let bigger = Array.make (2 * v.depth) 0 in
    Array.blit v.hist 0 bigger 0 v.depth;
    v.hist <- bigger
  end;
  v.hist.(v.depth) <- entry;
  v.depth <- v.depth + 1

let move v i l =
  if i < 0 || i >= users v then invalid_arg "View.move: user out of range";
  if l < 0 || l >= links v then invalid_arg "View.move: link out of range";
  if not (is_active v i) then invalid_arg "View.move: user has departed";
  Parallel.Ownership.guard "View cursor" v.owner;
  push v ((i * links v) + v.prof.(i));
  shift v i l

(* --- structural deltas ------------------------------------------- *)

(* Copy-on-write for the packed per-user tables (shared with the
   game's [Packing] record while sealed). *)
let own pk =
  if not pk.powned then begin
    pk.ppw <- Array.copy pk.ppw;
    pk.pcn <- Array.copy pk.pcn;
    pk.pcd <- Array.copy pk.pcd;
    pk.powned <- true
  end

(* Abandon the packed lane in place; the record is left untouched so
   an undo entry can reinstate it. *)
let spill v pk =
  let loads =
    Array.map (fun s -> Rational.make (Bigint.of_int s) (Bigint.of_int pk.pscale)) pk.piload
  in
  v.lane <- Exact loads;
  loads

(* [q·scale] as a positive native int, when integral and representable. *)
let scaled_int ~scale q =
  let d, r = Bigint.divmod (Bigint.of_int scale) (Rational.den q) in
  if not (Bigint.is_zero r) then None
  else
    match Bigint.to_int_opt (Bigint.mul (Rational.num q) d) with
    | Some x when x > 0 -> Some x
    | _ -> None

(* Materialise the view-local per-user tables.  O(n·m), paid once at
   the first structural delta; sealed views never allocate any of
   this. *)
let unseal v =
  match v.ext with
  | Some e -> e
  | None ->
    let g = v.game in
    let n = Array.length v.prof in
    let e =
      {
        slots = n;
        nactive = n;
        weights = Array.init n (Game.weight g);
        contribs = Array.init n (Game.contribution g);
        biases = Array.init n (Game.bias g);
        caps = Array.init n (Game.capacity_row g);
        uncert = Array.init n (Game.uncertainty g);
        active = Array.make n true;
      }
    in
    (match v.lane with Packed pk -> own pk | Exact _ -> ());
    v.ext <- Some e;
    e

let grow_array a len fill =
  let b = Array.make len fill in
  Array.blit a 0 b 0 (Array.length a);
  b

(* Ensure room for one more slot, doubling every parallel array
   (including the profile and, on the packed lane, the per-user
   packing tables). *)
let ensure_slot v e =
  let cap = Array.length e.active in
  if e.slots = cap then begin
    let ncap = 2 * cap in
    e.weights <- grow_array e.weights ncap e.weights.(0);
    e.contribs <- grow_array e.contribs ncap e.contribs.(0);
    e.biases <- grow_array e.biases ncap e.biases.(0);
    e.caps <- grow_array e.caps ncap e.caps.(0);
    e.uncert <- grow_array e.uncert ncap e.uncert.(0);
    e.active <- grow_array e.active ncap false;
    v.prof <- grow_array v.prof ncap 0;
    match v.lane with
    | Exact _ -> ()
    | Packed pk ->
      let m = Array.length pk.piload in
      pk.ppw <- grow_array pk.ppw ncap 0;
      pk.pcn <- grow_array pk.pcn (ncap * m) 1;
      pk.pcd <- grow_array pk.pcd (ncap * m) 1
  end

let push_structural v d =
  push v (-1);
  v.shist <- d :: v.shist

(* Reduced capacity row as native int pairs, when every entry fits. *)
let packed_caps_row caps =
  let m = Array.length caps in
  let cn = Array.make m 0 and cd = Array.make m 0 in
  let ok = ref true in
  for l = 0 to m - 1 do
    match
      (Bigint.to_int_opt (Rational.num caps.(l)), Bigint.to_int_opt (Rational.den caps.(l)))
    with
    | Some a, Some b when a > 0 && b > 0 ->
      cn.(l) <- a;
      cd.(l) <- b
    | _ -> ok := false
  done;
  if !ok then Some (cn, cd) else None

let add_user v ~weight ?uncertainty ?capacities ~link () =
  let m = links v in
  if link < 0 || link >= m then invalid_arg "View.add_user: link out of range";
  if Rational.sign weight <= 0 then invalid_arg "View.add_user: weight must be positive";
  let u =
    match (uncertainty, capacities) with
    | Some u, None -> u
    | None, Some caps ->
      if Array.length caps <> m then
        invalid_arg "View.add_user: capacity row length differs from link count";
      Array.iter
        (fun q ->
          if Rational.sign q <= 0 then invalid_arg "View.add_user: capacities must be positive")
        caps;
      Uncertainty.bayesian (Belief.certain (State.make (Array.copy caps)))
    | Some _, Some _ -> invalid_arg "View.add_user: pass either ~uncertainty or ~capacities"
    | None, None -> invalid_arg "View.add_user: one of ~uncertainty or ~capacities is required"
  in
  if Uncertainty.links u <> m then
    invalid_arg "View.add_user: uncertainty backend disagrees on the link count";
  Parallel.Ownership.guard "View cursor" v.owner;
  let e = unseal v in
  ensure_slot v e;
  let i = e.slots in
  let contrib = Rational.mul (Uncertainty.load_factor u) weight in
  let caps_row = Array.init m (Uncertainty.eval_capacity u) in
  e.weights.(i) <- weight;
  e.contribs.(i) <- contrib;
  e.biases.(i) <- Rational.sub weight contrib;
  e.caps.(i) <- caps_row;
  e.uncert.(i) <- u;
  e.active.(i) <- true;
  v.prof.(i) <- link;
  let restore =
    match v.lane with
    | Exact loads ->
      loads.(link) <- Rational.add loads.(link) contrib;
      None
    | Packed pk -> begin
      let fit =
        if not (Uncertainty.is_load_linear u) then None
        else
          match (scaled_int ~scale:pk.pscale weight, packed_caps_row caps_row) with
          | Some pw, Some (cn, cd) ->
            let maxcn = Array.fold_left max pk.pmaxcn cn
            and maxcd = Array.fold_left max pk.pmaxcd cd in
            if
              pw <= max_int - pk.ptotal
              && Packing.admits ~total:(pk.ptotal + pw) ~maxcn ~maxcd
            then Some (pw, cn, cd, maxcn, maxcd)
            else None
          | _ -> None
      in
      match fit with
      | Some (pw, cn, cd, maxcn, maxcd) ->
        pk.ppw.(i) <- pw;
        Array.blit cn 0 pk.pcn (i * m) m;
        Array.blit cd 0 pk.pcd (i * m) m;
        pk.pmaxcn <- maxcn;
        pk.pmaxcd <- maxcd;
        pk.piload.(link) <- pk.piload.(link) + pw;
        pk.ptotal <- pk.ptotal + pw;
        None
      | None ->
        let old = v.lane in
        let loads = spill v pk in
        loads.(link) <- Rational.add loads.(link) contrib;
        Some old
    end
  in
  e.slots <- e.slots + 1;
  e.nactive <- e.nactive + 1;
  push_structural v (Sadd { restore });
  i

let remove_user v i =
  if i < 0 || i >= users v then invalid_arg "View.remove_user: user out of range";
  if not (is_active v i) then invalid_arg "View.remove_user: user already departed";
  if active_users v <= 1 then invalid_arg "View.remove_user: removing the last active user";
  Parallel.Ownership.guard "View cursor" v.owner;
  let e = unseal v in
  let l = v.prof.(i) in
  (match v.lane with
   | Exact loads -> loads.(l) <- Rational.sub loads.(l) e.contribs.(i)
   | Packed pk ->
     let w = pk.ppw.(i) in
     pk.piload.(l) <- pk.piload.(l) - w;
     pk.ptotal <- pk.ptotal - w);
  e.active.(i) <- false;
  e.nactive <- e.nactive - 1;
  push_structural v (Sremove { user = i })

let revise_capacity v ~user ~link cap' =
  let m = links v in
  if user < 0 || user >= users v then invalid_arg "View.revise_capacity: user out of range";
  if link < 0 || link >= m then invalid_arg "View.revise_capacity: link out of range";
  if Rational.sign cap' <= 0 then invalid_arg "View.revise_capacity: capacity must be positive";
  Parallel.Ownership.guard "View cursor" v.owner;
  let e = unseal v in
  let old_cap = e.caps.(user).(link) in
  let restore, old_cn, old_cd =
    match v.lane with
    | Exact _ -> (None, 0, 0)
    | Packed pk -> begin
      let idx = (user * m) + link in
      match (Bigint.to_int_opt (Rational.num cap'), Bigint.to_int_opt (Rational.den cap')) with
      | Some a, Some b
        when a > 0 && b > 0
             && Packing.admits ~total:pk.ptotal ~maxcn:(max pk.pmaxcn a) ~maxcd:(max pk.pmaxcd b) ->
        let ocn = pk.pcn.(idx) and ocd = pk.pcd.(idx) in
        pk.pcn.(idx) <- a;
        pk.pcd.(idx) <- b;
        pk.pmaxcn <- max pk.pmaxcn a;
        pk.pmaxcd <- max pk.pmaxcd b;
        (None, ocn, ocd)
      | _ ->
        let old = v.lane in
        ignore (spill v pk);
        (Some old, 0, 0)
    end
  in
  e.caps.(user).(link) <- cap';
  push_structural v (Scap { user; link; cap = old_cap; pcn = old_cn; pcd = old_cd; restore })

let undo_structural v =
  match v.shist with
  | [] -> assert false (* sentinel in hist implies a side-stack entry *)
  | d :: rest ->
    v.shist <- rest;
    let e = match v.ext with Some e -> e | None -> assert false in
    (match d with
     | Sadd { restore } ->
       let i = e.slots - 1 in
       (match restore with
        | Some lane -> v.lane <- lane
        | None ->
          (match v.lane with
           | Exact loads ->
             let l = v.prof.(i) in
             loads.(l) <- Rational.sub loads.(l) e.contribs.(i)
           | Packed pk ->
             let w = pk.ppw.(i) in
             pk.piload.(v.prof.(i)) <- pk.piload.(v.prof.(i)) - w;
             pk.ptotal <- pk.ptotal - w));
       e.active.(i) <- false;
       e.slots <- i;
       e.nactive <- e.nactive - 1
     | Sremove { user } ->
       (match v.lane with
        | Exact loads ->
          let l = v.prof.(user) in
          loads.(l) <- Rational.add loads.(l) e.contribs.(user)
        | Packed pk ->
          let w = pk.ppw.(user) in
          pk.piload.(v.prof.(user)) <- pk.piload.(v.prof.(user)) + w;
          pk.ptotal <- pk.ptotal + w);
       e.active.(user) <- true;
       e.nactive <- e.nactive + 1
     | Scap { user; link; cap; pcn; pcd; restore } ->
       e.caps.(user).(link) <- cap;
       (match restore with
        | Some lane -> v.lane <- lane
        | None ->
          (match v.lane with
           | Exact _ -> ()
           | Packed pk ->
             let idx = (user * links v) + link in
             pk.pcn.(idx) <- pcn;
             pk.pcd.(idx) <- pcd)))

let undo v =
  if v.depth = 0 then invalid_arg "View.undo: empty history";
  Parallel.Ownership.guard "View cursor" v.owner;
  v.depth <- v.depth - 1;
  let entry = v.hist.(v.depth) in
  if entry < 0 then undo_structural v
  else begin
    let m = links v in
    shift v (entry / m) (entry mod m)
  end

(* --- latencies and predicates ------------------------------------ *)

(* User [i]'s own latency carries its bias (w_i − t_i): it is always
   present for itself, even when others only expect it with probability
   p_i.  The guard keeps load-linear games on the seed's exact code
   path (bias is physically zero there). *)
let biased v i q =
  let b = u_bias v i in
  if Rational.is_zero b then q else Rational.add q b

let latency v i =
  let l = v.prof.(i) in
  match v.lane with
  | Exact loads -> Rational.div (biased v i loads.(l)) (u_cap v i l)
  | Packed pk ->
    let m = Array.length pk.piload in
    q_latency pk pk.piload.(l) ((i * m) + l)

let latency_on_link v i l =
  match v.lane with
  | Exact loads ->
    let base = loads.(l) in
    (* After a deviation the user meets its full weight: contribution +
       bias = w_i, so the moving branch is the seed expression. *)
    let total =
      if v.prof.(i) = l then biased v i base else Rational.add base (u_weight v i)
    in
    Rational.div total (u_cap v i l)
  | Packed pk ->
    let m = Array.length pk.piload in
    let total = pk.piload.(l) + (if v.prof.(i) = l then 0 else pk.ppw.(i)) in
    q_latency pk total ((i * m) + l)

let best_response_for v i =
  match v.lane with
  | Exact _ ->
    let best_link = ref 0 and best = ref (latency_on_link v i 0) in
    for l = 1 to links v - 1 do
      let lat = latency_on_link v i l in
      if Rational.compare lat !best < 0 then begin
        best_link := l;
        best := lat
      end
    done;
    (!best_link, !best)
  | Packed pk ->
    (* Candidate latencies are (load'·cd)/(scale·cn): track the best as
       the int pair (load'·cd, cn) and compare by cross products, all
       within the packed bound. *)
    let m = Array.length pk.piload in
    let base = i * m and cur = v.prof.(i) and w = pk.ppw.(i) in
    let best_link = ref 0 in
    let t0 = pk.piload.(0) + (if cur = 0 then 0 else w) in
    let bnum = ref (t0 * pk.pcd.(base)) and bcn = ref pk.pcn.(base) in
    for l = 1 to m - 1 do
      let t = pk.piload.(l) + (if cur = l then 0 else w) in
      let a = t * pk.pcd.(base + l) in
      if a * !bcn < !bnum * pk.pcn.(base + l) then begin
        best_link := l;
        bnum := a;
        bcn := pk.pcn.(base + l)
      end
    done;
    ( !best_link,
      Rational.make (Bigint.of_int !bnum)
        (Bigint.mul (Bigint.of_int pk.pscale) (Bigint.of_int !bcn)) )

(* The Nash inequality on the exact lane rides the fused kernel:
   (load_l + w)/cap_l < current  ⟺  load_l + w < current·cap_l, i.e.
   [Rational.compare_sum load_l w (current·cap_l) < 0] — no sum is
   materialised and no division happens per candidate link.  On the
   packed lane it is a pure three-factor native product comparison.
   The kernel is backend-agnostic as written: a deviation numerator is
   load + contribution + bias = load + w for every backend, and
   [current] already carries the bias through [latency]. *)
let improving_moves v i =
  let moves = ref [] in
  (match v.lane with
   | Exact loads ->
     let current = latency v i in
     let w = u_weight v i in
     for l = links v - 1 downto 0 do
       if
         l <> v.prof.(i)
         && Rational.compare_sum loads.(l) w (Rational.mul current (u_cap v i l)) < 0
       then moves := l :: !moves
     done
   | Packed pk ->
     let m = Array.length pk.piload in
     let base = i * m and cur = v.prof.(i) and w = pk.ppw.(i) in
     let cnum = pk.piload.(cur) * pk.pcd.(base + cur) and ccn = pk.pcn.(base + cur) in
     for l = m - 1 downto 0 do
       if l <> cur && (pk.piload.(l) + w) * pk.pcd.(base + l) * ccn < cnum * pk.pcn.(base + l)
       then moves := l :: !moves
     done);
  !moves

let is_defector v i =
  match v.lane with
  | Exact loads ->
    let current = latency v i in
    let w = u_weight v i in
    let m = links v in
    let rec scan l =
      if l >= m then false
      else if
        l <> v.prof.(i)
        && Rational.compare_sum loads.(l) w (Rational.mul current (u_cap v i l)) < 0
      then true
      else scan (l + 1)
    in
    scan 0
  | Packed pk ->
    let m = Array.length pk.piload in
    let base = i * m and cur = v.prof.(i) and w = pk.ppw.(i) in
    let cnum = pk.piload.(cur) * pk.pcd.(base + cur) and ccn = pk.pcn.(base + cur) in
    let rec scan l =
      if l >= m then false
      else if l <> cur && (pk.piload.(l) + w) * pk.pcd.(base + l) * ccn < cnum * pk.pcn.(base + l)
      then true
      else scan (l + 1)
    in
    scan 0

let is_nash v =
  let n = users v in
  let rec check i = i >= n || (((not (is_active v i)) || not (is_defector v i)) && check (i + 1)) in
  check 0

let defectors v =
  List.filter (fun i -> is_active v i && is_defector v i) (List.init (users v) Fun.id)

let first_and_last_defector v =
  let first = ref (-1) and last = ref (-1) in
  for i = 0 to users v - 1 do
    if is_active v i && is_defector v i then begin
      if !first < 0 then first := i;
      last := i
    end
  done;
  if !first < 0 then None else Some (!first, !last)

let social_cost1 v =
  let acc = ref Rational.zero in
  for i = 0 to users v - 1 do
    if is_active v i then acc := Rational.add !acc (latency v i)
  done;
  !acc

let social_cost2 v =
  let acc = ref Rational.zero in
  for i = 0 to users v - 1 do
    if is_active v i then acc := Rational.max !acc (latency v i)
  done;
  !acc

(* Re-materialise a per-user game over the active slots, in slot
   order, together with the slot index of each new user.  Slots whose
   capacity row is untouched keep their backend; a revised row is
   re-wrapped as the matching certain belief (degenerate interval for
   [Strict]) — exact, since every decision factors through the
   effective capacities. *)
let to_game v =
  match v.ext with
  | None -> (v.game, Array.init (Array.length v.prof) Fun.id)
  | Some e ->
    let idx = Array.of_list (List.filter (fun i -> e.active.(i)) (List.init e.slots Fun.id)) in
    let weights = Array.map (fun i -> e.weights.(i)) idx in
    let uncertainty =
      Array.map
        (fun i ->
          let u = e.uncert.(i) in
          let row = e.caps.(i) in
          let untouched =
            let rec eq l =
              l >= Array.length row
              || (Rational.equal row.(l) (Uncertainty.eval_capacity u l) && eq (l + 1))
            in
            eq 0
          in
          if untouched then u
          else begin
            let certain () = Belief.certain (State.make (Array.copy row)) in
            match Uncertainty.kind u with
            | Uncertainty.Bayesian -> Uncertainty.bayesian (certain ())
            | Uncertainty.Participation ->
              Uncertainty.participation ~presence:(Uncertainty.presence u) (certain ())
            | Uncertainty.Strict ->
              Uncertainty.strict_of_intervals (Array.map (fun q -> (q, q)) row)
          end)
        idx
    in
    (Game.make_uncertain ~weights ~uncertainty, idx)

let weight = u_weight
let capacity = u_cap
let contribution = u_contrib
let uncertainty = u_uncertainty

(* The odometer of [Social.iter_profiles], expressed as moves: a
   non-carrying tick is one shift, a carry resets a suffix — 1 + 1/m
   + 1/m² + … ≤ m/(m-1) shifts amortised per profile.  Returns false
   when the odometer wraps past the last profile. *)
let tick v =
  let m = links v in
  let rec next i =
    if i < 0 then false
    else begin
      let l = v.prof.(i) in
      if l + 1 < m then begin
        shift v i (l + 1);
        true
      end
      else begin
        shift v i 0;
        next (i - 1)
      end
    end
  in
  next (users v - 1)

let sweep g ?initial f =
  let v = of_profile g ?initial (Array.make (Game.users g) 0) in
  let continue = ref true in
  while !continue do
    f v;
    continue := tick v
  done

(* [m^n] as a native int, or None on overflow (in which case a sweep
   of that size would never finish anyway and sharding is moot). *)
let profile_space g =
  let n = Game.users g and m = Game.links g in
  let rec go acc k =
    if k = 0 then Some acc
    else begin
      let next = acc * m in
      if next / m <> acc then None else go next (k - 1)
    end
  in
  go 1 n

let fold ?(domains = 1) ?initial g ~init ~f ~combine =
  let serial () =
    let acc = ref init in
    sweep g ?initial (fun v -> acc := f !acc v);
    !acc
  in
  match profile_space g with
  | Some total when domains > 1 && total > 1 ->
    let n = Game.users g and m = Game.links g in
    let workers = min domains total in
    let per = total / workers and extra = total mod workers in
    (* Shard w covers the contiguous odometer index block
       [w·per + min w extra, …) of size per (+1 for the first [extra]
       shards); each worker decodes its start index into a profile,
       builds a private view there and ticks through its block. *)
    let run_shard w =
      let lo = (w * per) + Stdlib.min w extra in
      let size = per + if w < extra then 1 else 0 in
      let p = Array.make n 0 in
      let idx = ref lo in
      for i = n - 1 downto 0 do
        p.(i) <- !idx mod m;
        idx := !idx / m
      done;
      let v = of_profile g ?initial p in
      let acc = ref (f init v) in
      for _ = 2 to size do
        ignore (tick v);
        acc := f !acc v
      done;
      !acc
    in
    let parts = Parallel.map ~domains:workers run_shard (List.init workers Fun.id) in
    List.fold_left combine init parts
  | _ -> serial ()
