open Numeric

(* The cursor: current profile, current loads (initial traffic
   included), and a packed move history for [undo].  A history entry
   stores [i * m + old_link] in one native int, so the stack is a flat
   int array that doubles on demand — no per-move allocation beyond the
   two rational load updates. *)
type t = {
  game : Game.t;
  prof : int array;
  loads : Rational.t array;
  mutable hist : int array;
  mutable depth : int;
}

let game v = v.game
let users v = Array.length v.prof
let links v = Array.length v.loads

let of_profile g ?initial p =
  if Array.length p <> Game.users g then
    invalid_arg "View.of_profile: profile length differs from user count";
  let m = Game.links g in
  let loads =
    match initial with
    | None -> Array.make m Rational.zero
    | Some t ->
      if Array.length t <> m then
        invalid_arg "View.of_profile: initial traffic length differs from link count";
      Array.iter
        (fun q -> if Rational.sign q < 0 then invalid_arg "View.of_profile: negative initial traffic")
        t;
      Array.copy t
  in
  Array.iteri
    (fun i l ->
      if l < 0 || l >= m then invalid_arg "View.of_profile: link out of range";
      loads.(l) <- Rational.add loads.(l) (Game.weight g i))
    p;
  { game = g; prof = Array.copy p; loads; hist = Array.make 16 0; depth = 0 }

let link v i = v.prof.(i)
let profile v = Array.copy v.prof
let load v l = v.loads.(l)
let loads v = Array.copy v.loads
let depth v = v.depth

(* Unrecorded reassignment: the O(1) delta shared by [move], [undo] and
   the sweep odometer.  Touches exactly the two affected load entries;
   exact rational add/sub round-trips, so repeated shifts never drift. *)
let shift v i l =
  let old = v.prof.(i) in
  if l <> old then begin
    let w = Game.weight v.game i in
    v.loads.(old) <- Rational.sub v.loads.(old) w;
    v.loads.(l) <- Rational.add v.loads.(l) w;
    v.prof.(i) <- l
  end

let push v entry =
  if v.depth = Array.length v.hist then begin
    let bigger = Array.make (2 * v.depth) 0 in
    Array.blit v.hist 0 bigger 0 v.depth;
    v.hist <- bigger
  end;
  v.hist.(v.depth) <- entry;
  v.depth <- v.depth + 1

let move v i l =
  if i < 0 || i >= users v then invalid_arg "View.move: user out of range";
  if l < 0 || l >= links v then invalid_arg "View.move: link out of range";
  push v ((i * links v) + v.prof.(i));
  shift v i l

let undo v =
  if v.depth = 0 then invalid_arg "View.undo: empty history";
  v.depth <- v.depth - 1;
  let entry = v.hist.(v.depth) in
  let m = links v in
  shift v (entry / m) (entry mod m)

let latency v i =
  let l = v.prof.(i) in
  Rational.div v.loads.(l) (Game.capacity v.game i l)

let latency_on_link v i l =
  let base = v.loads.(l) in
  let total = if v.prof.(i) = l then base else Rational.add base (Game.weight v.game i) in
  Rational.div total (Game.capacity v.game i l)

let best_response_for v i =
  let best_link = ref 0 and best = ref (latency_on_link v i 0) in
  for l = 1 to links v - 1 do
    let lat = latency_on_link v i l in
    if Rational.compare lat !best < 0 then begin
      best_link := l;
      best := lat
    end
  done;
  (!best_link, !best)

let improving_moves v i =
  let current = latency v i in
  let moves = ref [] in
  for l = links v - 1 downto 0 do
    if l <> v.prof.(i) && Rational.compare (latency_on_link v i l) current < 0 then
      moves := l :: !moves
  done;
  !moves

let is_defector v i =
  let current = latency v i in
  let m = links v in
  let rec scan l =
    if l >= m then false
    else if l <> v.prof.(i) && Rational.compare (latency_on_link v i l) current < 0 then true
    else scan (l + 1)
  in
  scan 0

let is_nash v =
  let n = users v in
  let rec check i = i >= n || ((not (is_defector v i)) && check (i + 1)) in
  check 0

let defectors v = List.filter (is_defector v) (List.init (users v) Fun.id)

let first_and_last_defector v =
  let first = ref (-1) and last = ref (-1) in
  for i = 0 to users v - 1 do
    if is_defector v i then begin
      if !first < 0 then first := i;
      last := i
    end
  done;
  if !first < 0 then None else Some (!first, !last)

let social_cost1 v =
  let acc = ref Rational.zero in
  for i = 0 to users v - 1 do
    acc := Rational.add !acc (latency v i)
  done;
  !acc

let social_cost2 v =
  let acc = ref Rational.zero in
  for i = 0 to users v - 1 do
    acc := Rational.max !acc (latency v i)
  done;
  !acc

let sweep g ?initial f =
  let v = of_profile g ?initial (Array.make (Game.users g) 0) in
  let n = users v and m = links v in
  (* The odometer of [Social.iter_profiles], expressed as moves: a
     non-carrying tick is one shift, a carry resets a suffix — 1 + 1/m
     + 1/m² + … ≤ m/(m-1) shifts amortised per profile. *)
  let rec next i =
    if i < 0 then false
    else begin
      let l = v.prof.(i) in
      if l + 1 < m then begin
        shift v i (l + 1);
        true
      end
      else begin
        shift v i 0;
        next (i - 1)
      end
    end
  in
  let continue = ref true in
  while !continue do
    f v;
    continue := next (n - 1)
  done
