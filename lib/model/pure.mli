(** Pure strategy profiles and their exact latencies.

    A pure profile assigns each user one link.  All functions accept an
    optional [?initial] per-link traffic vector [t] (defaulting to zero)
    because the paper's algorithms for two links and for uniform beliefs
    solve the more general problem with initial link loads
    (Definition 3.1, Algorithm A_uniform).

    The multi-scan predicates below ({!best_response},
    {!improving_moves}, {!is_nash}, {!defectors}, {!social_cost1},
    {!social_cost2}) delegate to a transient {!View} that materialises
    the loads once per call.  They are convenient for one-shot queries;
    code that evaluates many single-user deviations of the same profile
    — dynamics, sweeps, graph traversals — should hold a {!View.t}
    directly and use its O(1) [move]/[undo] instead. *)

type profile = int array
(** [profile.(i)] is the link chosen by user [i], in [0, m). *)

(** [validate g ?initial p] checks dimensions and ranges.
    @raise Invalid_argument when [p] or [initial] is malformed. *)
val validate : Game.t -> ?initial:Numeric.Rational.t array -> profile -> unit

(** [loads g ?initial p] is the per-link total traffic as priced by
    other users: initial traffic plus the {!Game.contribution}s of the
    users assigned there (the plain weights except under Bernoulli
    participation). *)
val loads : Game.t -> ?initial:Numeric.Rational.t array -> profile -> Numeric.Rational.t array

(** [latency g ?initial p i] is user [i]'s expected latency
    [λ_{i,b_i}(σ)]: the load of its chosen link over its effective
    capacity for that link. *)
val latency : Game.t -> ?initial:Numeric.Rational.t array -> profile -> int -> Numeric.Rational.t

(** [latency_in_state g p i k] is the latency user [i] would experience
    if state [k] of its own belief space were realised, [λ_{i,φ_k}(σ)].
    Ignores initial traffic (the paper defines it for plain games). *)
val latency_in_state : Game.t -> profile -> int -> int -> Numeric.Rational.t

(** [expected_latency_via_states g p i] recomputes [λ_{i,b_i}(σ)] by
    direct expectation over the belief; it must always equal
    {!latency} — exercised by property tests. *)
val expected_latency_via_states : Game.t -> profile -> int -> Numeric.Rational.t

(** [latency_on_link g ?initial p i l] is the expected latency user [i]
    would experience after unilaterally moving to link [l] (its current
    latency when [l] is its current link). *)
val latency_on_link :
  Game.t -> ?initial:Numeric.Rational.t array -> profile -> int -> int -> Numeric.Rational.t

(** [best_response g ?initial p i] is the lowest-index link minimising
    user [i]'s post-move latency, paired with that latency.
    @deprecated in per-step loops: use {!View.best_response_for} on a
    long-lived view. *)
val best_response :
  Game.t -> ?initial:Numeric.Rational.t array -> profile -> int -> int * Numeric.Rational.t

(** [improving_moves g ?initial p i] lists the links that would
    strictly lower user [i]'s latency.
    @deprecated in per-step loops: use {!View.improving_moves}. *)
val improving_moves :
  Game.t -> ?initial:Numeric.Rational.t array -> profile -> int -> int list

(** [is_nash g ?initial p] holds when no user can strictly improve by
    unilaterally switching links (exact comparison).  O(n·m) via a
    transient view.
    @deprecated in per-step loops: use {!View.is_nash}. *)
val is_nash : Game.t -> ?initial:Numeric.Rational.t array -> profile -> bool

(** [defectors g ?initial p] is the list of users violating the Nash
    condition in [p].
    @deprecated in per-step loops: use {!View.defectors} (or
    {!View.first_and_last_defector} for just the ends). *)
val defectors : Game.t -> ?initial:Numeric.Rational.t array -> profile -> int list

(** [social_cost1 g ?initial p] is [SC1 = Σ_i λ_{i,b_i}(σ)]. *)
val social_cost1 : Game.t -> ?initial:Numeric.Rational.t array -> profile -> Numeric.Rational.t

(** [social_cost2 g ?initial p] is [SC2 = max_i λ_{i,b_i}(σ)]. *)
val social_cost2 : Game.t -> ?initial:Numeric.Rational.t array -> profile -> Numeric.Rational.t

val equal : profile -> profile -> bool
val pp : Format.formatter -> profile -> unit
