open Numeric

type t = Rational.t array array

let validate g p =
  (* Mirrors [Mixed.validate]: expected latencies below assume the
     load-linear load/ĉ form. *)
  if not (Cgame.is_load_linear g) then
    invalid_arg "Cmixed.validate: game must be load-linear (no Bernoulli participation)";
  if Array.length p <> Cgame.classes g then
    invalid_arg "Cmixed.validate: one distribution per class required";
  Array.iter
    (fun row ->
      if Qvec.dim row <> Cgame.links g then
        invalid_arg "Cmixed.validate: distribution dimension differs from link count";
      if not (Qvec.is_distribution row) then
        invalid_arg "Cmixed.validate: rows must be probability distributions")
    p

let uniform g =
  let m = Cgame.links g in
  Array.init (Cgame.classes g) (fun _ -> Array.make m (Rational.of_ints 1 m))

let of_pure g x =
  Cgame.validate g x;
  let m = Cgame.links g in
  Array.mapi
    (fun c row ->
      let link = ref (-1) in
      Array.iteri
        (fun l e ->
          if e > 0 then
            if !link < 0 then link := l
            else
              invalid_arg
                (Printf.sprintf "Cmixed.of_pure: class %d splits across links, not class-symmetric"
                   c))
        row;
      let out = Array.make m Rational.zero in
      out.(!link) <- Rational.one;
      out)
    x

let expand g p =
  validate g p;
  let rows = Array.make (Cgame.users g) [||] in
  let pos = ref 0 in
  Array.iteri
    (fun c row ->
      for _ = 1 to Cgame.count g c do
        rows.(!pos) <- Array.copy row;
        incr pos
      done)
    p;
  rows

module Eval = struct
  type profile = t
  type nonrec t = { game : Cgame.t; rows : profile; traffics : Rational.t array }

  let make g p =
    validate g p;
    let m = Cgame.links g in
    let traffics =
      Array.init m (fun l ->
          let acc = ref Rational.zero in
          for c = 0 to Cgame.classes g - 1 do
            acc :=
              Rational.add !acc
                (Rational.mul p.(c).(l)
                   (Rational.mul (Rational.of_int (Cgame.count g c)) (Cgame.weight g c)))
          done;
          !acc)
    in
    { game = g; rows = Array.map Array.copy p; traffics }

  let game e = e.game
  let expected_traffic e l = e.traffics.(l)

  let latency_on_link e c l =
    let w = Cgame.weight e.game c in
    let own = Rational.mul (Rational.sub Rational.one e.rows.(c).(l)) w in
    Rational.div (Rational.add own e.traffics.(l)) (Cgame.capacity e.game c l)

  let min_latency e c =
    let best = ref (latency_on_link e c 0) in
    for l = 1 to Cgame.links e.game - 1 do
      best := Rational.min !best (latency_on_link e c l)
    done;
    !best

  let social_cost1 e =
    let acc = ref Rational.zero in
    for c = 0 to Cgame.classes e.game - 1 do
      acc :=
        Rational.add !acc (Rational.mul (Rational.of_int (Cgame.count e.game c)) (min_latency e c))
    done;
    !acc

  let social_cost2 e =
    let acc = ref Rational.zero in
    for c = 0 to Cgame.classes e.game - 1 do
      acc := Rational.max !acc (min_latency e c)
    done;
    !acc

  let is_nash e =
    let g = e.game in
    let rec check_class c =
      if c >= Cgame.classes g then true
      else begin
        let lambda = min_latency e c in
        let rec check_link l =
          if l >= Cgame.links g then true
          else begin
            let on_l = latency_on_link e c l in
            let ok =
              if Rational.sign e.rows.(c).(l) > 0 then Rational.equal on_l lambda
              else Rational.compare on_l lambda >= 0
            in
            ok && check_link (l + 1)
          end
        in
        check_link 0 && check_class (c + 1)
      end
    in
    check_class 0
end

let is_nash g p = Eval.is_nash (Eval.make g p)
