open Numeric

type profile = int array

let zero_initial g = Array.make (Game.links g) Rational.zero

let validate g ?initial p =
  if Array.length p <> Game.users g then
    invalid_arg "Pure.validate: profile length differs from user count";
  Array.iter
    (fun l -> if l < 0 || l >= Game.links g then invalid_arg "Pure.validate: link out of range")
    p;
  match initial with
  | None -> ()
  | Some t ->
    if Array.length t <> Game.links g then
      invalid_arg "Pure.validate: initial traffic length differs from link count";
    Array.iter
      (fun q -> if Rational.sign q < 0 then invalid_arg "Pure.validate: negative initial traffic")
      t

(* Loads sum per-user contributions (presence-discounted weights);
   for load-linear games the contribution is physically the weight, so
   the seed arithmetic is untouched. *)
let loads g ?initial p =
  let t = match initial with Some t -> Array.copy t | None -> zero_initial g in
  Array.iteri (fun i l -> t.(l) <- Rational.add t.(l) (Game.contribution g i)) p;
  t

let load_on g ?initial p l =
  let base = match initial with Some t -> t.(l) | None -> Rational.zero in
  let acc = ref base in
  Array.iteri (fun k lk -> if lk = l then acc := Rational.add !acc (Game.contribution g k)) p;
  !acc

(* User [i]'s own latency numerators carry its bias w_i − t_i: the user
   is always present for itself. *)
let biased g i q =
  let b = Game.bias g i in
  if Rational.is_zero b then q else Rational.add q b

let latency g ?initial p i =
  let l = p.(i) in
  Rational.div (biased g i (load_on g ?initial p l)) (Game.capacity g i l)

let latency_in_state g p i k =
  let b = Game.belief g i in
  let st = State.state (Belief.space b) k in
  let l = p.(i) in
  Rational.div (biased g i (load_on g p l)) (State.capacity st l)

let expected_latency_via_states g p i =
  let b = Game.belief g i in
  let acc = ref Rational.zero in
  for k = 0 to State.space_size (Belief.space b) - 1 do
    let pk = Belief.prob b k in
    if not (Rational.is_zero pk) then
      acc := Rational.add !acc (Rational.mul pk (latency_in_state g p i k))
  done;
  !acc

let latency_on_link g ?initial p i l =
  let base = load_on g ?initial p l in
  (* Deviation numerator: contribution + bias = w_i, the seed form. *)
  let load = if p.(i) = l then biased g i base else Rational.add base (Game.weight g i) in
  Rational.div load (Game.capacity g i l)

(* Everything below delegates to a transient [View]: materialise the
   loads once, then answer each query against O(1) lookups.  This keeps
   the array-based API while dropping e.g. [is_nash] from O(n²·m) to
   O(n·m); callers issuing many queries against one evolving profile
   should hold a [View.t] themselves instead of re-materialising here. *)

let best_response g ?initial p i = View.best_response_for (View.of_profile g ?initial p) i

let improving_moves g ?initial p i = View.improving_moves (View.of_profile g ?initial p) i

let is_nash g ?initial p = View.is_nash (View.of_profile g ?initial p)

let defectors g ?initial p = View.defectors (View.of_profile g ?initial p)

let social_cost1 g ?initial p = View.social_cost1 (View.of_profile g ?initial p)

let social_cost2 g ?initial p = View.social_cost2 (View.of_profile g ?initial p)

let equal (a : profile) b = a = b

let pp fmt p =
  Format.fprintf fmt "⟨%a⟩"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Format.pp_print_int)
    (Array.to_list p)
