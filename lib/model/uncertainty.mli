(** Pluggable per-user uncertainty backends.

    The paper's model is one point in a family: a user facing an
    uncertain network evaluates each link through some summary of its
    ignorance.  This module makes that summary a first-class value with
    three backends sharing one contract:

    {ul
    {- [Bayesian] — the paper's semantics.  The user holds a belief
       [b] over network states and prices link [ℓ] at its expected
       latency per unit load [Σ_φ b(φ)/c^ℓ_φ] — equivalently the
       {e effective capacity} [ĉ^ℓ = 1/Σ_φ b(φ)/c^ℓ_φ] ({!Belief}).}
    {- [Participation] — Bernoulli demand uncertainty in the style of
       Cominetti–Scarsini–Schröder–Stier-Moses (arXiv:1903.03309).
       Capacities are priced through a belief as above, but every user
       is only {e present} with probability [p] (common knowledge), so
       user [i] expects link [ℓ] to carry its own full weight plus the
       presence-discounted weights of the other users routed there.}
    {- [Strict] — distance-based non-probabilistic uncertainty in the
       style of Meir–Parkes (arXiv:1411.4943).  The user knows only a
       capacity interval [⟨lo^ℓ, hi^ℓ⟩] per link and best-responds
       against the adversarial worst case, i.e. prices link [ℓ] at
       [1/lo^ℓ] per unit load.  No probabilities anywhere.}}

    Every backend exposes the same three quantities, and {!Game} is
    built from them alone:

    {ul
    {- an exact {e expected} latency per unit load on each link
       ({!inverse_capacity}), which induces the effective-capacity-style
       link view ({!eval_capacity}) where the existing parallel-links
       machinery lives;}
    {- an exact {e worst-case} latency per unit load
       ({!worst_case_inverse_capacity}) — over the belief's support for
       the probabilistic backends, over the interval for [Strict];}
    {- a {e load factor} ({!load_factor}): the fraction of the user's
       weight that {e other} users expect to meet on its chosen link
       ([1] except for [Participation], where it is the presence
       probability).}}

    A backend is {e load-linear} when its load factor is [1]: every
    latency is then exactly [load/ĉ], the form all of the paper's
    algorithms (and the packed native-int lanes) assume.  [Bayesian]
    and [Strict] are always load-linear; [Participation] is iff
    [p = 1]. *)

type kind = Bayesian | Participation | Strict

type t

(** [bayesian b] is the paper's belief-weighted backend. *)
val bayesian : Belief.t -> t

(** [participation ~presence b] prices capacities through [b] and is
    present with probability [presence].
    @raise Invalid_argument when [presence ∉ (0, 1]]. *)
val participation : presence:Numeric.Rational.t -> Belief.t -> t

(** [strict ~lo ~hi] is worst-case (adversarial) uncertainty over the
    per-link capacity intervals [⟨lo^ℓ, hi^ℓ⟩].
    @raise Invalid_argument when [lo] and [hi] disagree on the link
    count or [lo^ℓ > hi^ℓ] on some link. *)
val strict : lo:State.t -> hi:State.t -> t

(** [strict_of_intervals ivs] builds {!strict} from per-link
    [(lo, hi)] pairs. *)
val strict_of_intervals : (Numeric.Rational.t * Numeric.Rational.t) array -> t

val kind : t -> kind
val kind_name : kind -> string
val equal_kind : kind -> kind -> bool

(** [links u] is the number of links the backend prices. *)
val links : t -> int

(** [inverse_capacity u l] is the backend's exact expected latency per
    unit load on link [l] — the quantity every decision of the user
    factors through.  For [Strict] "expected" and "worst-case"
    coincide. *)
val inverse_capacity : t -> int -> Numeric.Rational.t

(** [eval_capacity u l] is [1/inverse_capacity u l]: the
    effective-capacity-style link view of the backend. *)
val eval_capacity : t -> int -> Numeric.Rational.t

(** [eval_capacities u] is the vector of all [m] evaluation
    capacities. *)
val eval_capacities : t -> Numeric.Qvec.t

(** [worst_case_inverse_capacity u l] is the exact worst-case latency
    per unit load on link [l]: the maximum of [1/c^l] over the belief's
    support ([Bayesian]/[Participation]) or over the interval
    ([Strict], where it is [1/lo^l]). *)
val worst_case_inverse_capacity : t -> int -> Numeric.Rational.t

(** [load_factor u] is the fraction of this user's weight that other
    users expect to meet: the presence probability for
    [Participation], [1] otherwise. *)
val load_factor : t -> Numeric.Rational.t

(** [presence u] is {!load_factor} under its demand-model name. *)
val presence : t -> Numeric.Rational.t

(** [is_load_linear u] holds when {!load_factor} is [1] — every
    latency of the user is then exactly [load/ĉ]. *)
val is_load_linear : t -> bool

(** [belief u] is the belief through which the backend prices
    capacities: the user's belief for [Bayesian] and [Participation],
    and certainty of the worst-case state [lo] for [Strict] (whose
    decisions are exactly those of that Dirac belief). *)
val belief : t -> Belief.t

(** [strict_bounds u] is [Some (lo, hi)] for the [Strict] backend. *)
val strict_bounds : t -> (State.t * State.t) option

(** [equal a b] holds when [a] and [b] are the same backend with
    structurally equal data.  Backends of different kinds are never
    equal, even when observationally equivalent (e.g. a degenerate
    interval versus the matching point belief). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
