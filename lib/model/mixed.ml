open Numeric

type profile = Qvec.t array

let validate g p =
  (* The whole mixed layer computes expected latencies as
     belief-weighted load/ĉ sums; a biased (non-load-linear) game has
     no such form, so reject it here — every mixed consumer validates
     through this function or [Eval.check_dims]. *)
  if not (Game.is_load_linear g) then
    invalid_arg "Mixed.validate: game must be load-linear (no Bernoulli participation)";
  if Array.length p <> Game.users g then
    invalid_arg "Mixed.validate: one distribution per user required";
  Array.iter
    (fun row ->
      if Qvec.dim row <> Game.links g then
        invalid_arg "Mixed.validate: distribution dimension differs from link count";
      if not (Qvec.is_distribution row) then
        invalid_arg "Mixed.validate: rows must be probability distributions")
    p

let of_pure g sigma =
  Pure.validate g sigma;
  Array.map
    (fun l ->
      let row = Array.make (Game.links g) Rational.zero in
      row.(l) <- Rational.one;
      row)
    sigma

let uniform g =
  let m = Game.links g in
  Array.init (Game.users g) (fun _ -> Array.make m (Rational.of_ints 1 m))

let expected_traffic g p l =
  let acc = ref Rational.zero in
  Array.iteri (fun i row -> acc := Rational.add !acc (Rational.mul row.(l) (Game.weight g i))) p;
  !acc

let expected_traffics g p = Array.init (Game.links g) (expected_traffic g p)

let latency_on_link g p i l =
  let w_i = Game.weight g i in
  let own = Rational.mul (Rational.sub Rational.one p.(i).(l)) w_i in
  Rational.div (Rational.add own (expected_traffic g p l)) (Game.capacity g i l)

(* Cached evaluator: the mixed-layer analogue of [Model.View].  The
   expected-traffic vector W is materialised once (O(n·m)); every
   latency query is then O(1) against it, so a full Nash check is
   O(n·m) where the scan-based path paid an O(n) traffic rescan per
   (user, link) pair. *)
module Eval = struct
  type eval = { game : Game.t; rows : profile; traffics : Rational.t array }
  type t = eval

  (* Internal constructor: trusts dimensions, optionally skips the
     distribution check (the Lemma 4.9 comparator of fmne_exp evaluates
     FMNE *candidates* whose rows may leave [0, 1]). *)
  let of_rows g rows = { game = g; rows; traffics = expected_traffics g rows }

  let check_dims g p =
    if not (Game.is_load_linear g) then
      invalid_arg "Mixed.Eval: game must be load-linear (no Bernoulli participation)";
    if Array.length p <> Game.users g then
      invalid_arg "Mixed.Eval: one distribution per user required";
    Array.iter
      (fun row ->
        if Qvec.dim row <> Game.links g then
          invalid_arg "Mixed.Eval: distribution dimension differs from link count")
      p

  let make g p =
    validate g p;
    of_rows g (Array.map Array.copy p)

  let unchecked g p =
    check_dims g p;
    of_rows g (Array.map Array.copy p)

  let game e = e.game
  let profile e = Array.map Array.copy e.rows
  let expected_traffic e l = e.traffics.(l)

  let latency_on_link e i l =
    let w_i = Game.weight e.game i in
    let own = Rational.mul (Rational.sub Rational.one e.rows.(i).(l)) w_i in
    Rational.div (Rational.add own e.traffics.(l)) (Game.capacity e.game i l)

  let min_latency e i =
    let best = ref (latency_on_link e i 0) in
    for l = 1 to Game.links e.game - 1 do
      best := Rational.min !best (latency_on_link e i l)
    done;
    !best

  let is_nash e =
    let g = e.game in
    let rec check_user i =
      if i >= Game.users g then true
      else begin
        let lambda = min_latency e i in
        let rec check_link l =
          if l >= Game.links g then true
          else begin
            let on_l = latency_on_link e i l in
            let ok =
              if Rational.sign e.rows.(i).(l) > 0 then Rational.equal on_l lambda
              else Rational.compare on_l lambda >= 0
            in
            ok && check_link (l + 1)
          end
        in
        check_link 0 && check_user (i + 1)
      end
    in
    check_user 0

  let social_cost1 e = Rational.sum (List.init (Game.users e.game) (min_latency e))

  let social_cost2 e =
    List.fold_left Rational.max Rational.zero (List.init (Game.users e.game) (min_latency e))
end

(* One-shot conveniences ride a transient evaluator that shares the
   caller's rows (no copy: the eval does not outlive the call).  The
   seed paths never validated, and the Lemma 4.9 comparator relies on
   evaluating non-distribution candidates, so neither do these. *)
let transient g p =
  Eval.check_dims g p;
  Eval.of_rows g p

let min_latency g p i = Eval.min_latency (transient g p) i

let support p i =
  let row = p.(i) in
  List.filter (fun l -> Rational.sign row.(l) > 0) (List.init (Array.length row) Fun.id)

let is_fully_mixed p =
  Array.for_all (Array.for_all (fun q -> Rational.sign q > 0)) p

let is_nash g p = Eval.is_nash (transient g p)
let social_cost1 g p = Eval.social_cost1 (transient g p)
let social_cost2 g p = Eval.social_cost2 (transient g p)

let equal (a : profile) b =
  Array.length a = Array.length b && Array.for_all2 Qvec.equal a b

let pp fmt p =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Qvec.pp)
    (Array.to_list p)
