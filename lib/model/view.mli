(** Incremental evaluation cursor over a pure profile.

    Every equilibrium predicate in the paper compares [load/c^l_i]
    ratios, and almost every algorithm explores profiles by single-user
    deviations: best-response steps, better-response walks, game-graph
    DFS, exhaustive odometer sweeps.  A [View.t] materialises the
    per-link loads of one profile once ({!of_profile}, honouring
    [?initial]) and then maintains them under single-user moves in O(1)
    exact rational updates: {!move} touches exactly the two affected
    load entries and {!undo} restores them.  Against the view, a load
    lookup is O(1), a latency is O(1), a best response is O(m) and a
    full Nash check is O(n·m) — where the scan-based {!Pure} seed path
    paid an extra O(n) profile rescan per load.

    The view is a mutable cursor, not a value: share it only within one
    traversal, and treat the arrays returned by {!profile} and {!loads}
    as snapshots (they are copies).

    Loads are stored in one of two lanes chosen at construction.  When
    every scaled component of the game fits the native range (the
    {!Packing} bound), loads are flat native-int arrays and every
    equilibrium predicate is a three-factor native product — exact,
    allocation-free and check-free.  Otherwise the loads are
    big-rational values.  Both lanes compute identical canonical
    rationals; lane choice is observable only through {!packed}.

    Beyond single-user moves, the cursor supports {e structural
    deltas}: {!add_user}, {!remove_user} and {!revise_capacity}, each
    an exact O(m)-or-better load patch with undo.  Views are born
    {e sealed} — per-user data is read from the immutable {!Game.t}
    and moves cost exactly what they cost in the seed; the first
    structural delta unseals the view, materialising view-local
    per-user tables in one O(n·m) pass.  Departures tombstone their
    slot: user indices stay stable, {!users} counts slots (departed
    included) and scans skip inactive slots.  Structural deltas
    re-check the {!Packing} bound and spill to the big-rational lane
    in place when the revised magnitudes no longer fit; {!undo}
    restores the fast lane. *)

type t

(** [packed v] holds when the view runs on the native-int fast lane.
    Exposed for benchmarks and tests; results never depend on it. *)
val packed : t -> bool

(** [of_profile g ?initial p] positions a fresh view at [p], computing
    all link loads once in O(n + m).  [p] is copied; later mutation of
    the caller's array does not affect the view.
    @raise Invalid_argument when [p] or [initial] is malformed (same
    checks as {!Pure.validate}). *)
val of_profile : Game.t -> ?initial:Numeric.Rational.t array -> int array -> t

(** [game v] is the game the view was constructed over.  After a
    structural delta it reflects the {e original} spec, not the
    revised one — use {!to_game} for the live state. *)
val game : t -> Game.t

(** [users v] is the number of user {e slots}, departed users
    included; equals the game's user count until the first
    {!add_user}. *)
val users : t -> int

val links : t -> int

(** [is_active v i] holds unless user [i] has departed via
    {!remove_user} (and the departure was not undone). O(1). *)
val is_active : t -> int -> bool

(** [active_users v] is the number of live users. O(1). *)
val active_users : t -> int

(** [link v i] is the link user [i] currently plays. O(1). *)
val link : t -> int -> int

(** [profile v] is a snapshot copy of the current profile. *)
val profile : t -> int array

(** [owner v] is the id of the domain that created the view, as
    recorded for the [SELFISH_OWNERSHIP] sanitizer
    ({!Parallel.Ownership}).  Under the sanitizer, {!move} and {!undo}
    raise {!Parallel.Ownership.Violation} when called from any other
    domain. *)
val owner : t -> int

(** [unsafe_set_owner v id] rewrites the recorded owner.  Test-only
    forgery hook for pinning the sanitizer's failure message; never
    call it in library code. *)
val unsafe_set_owner : t -> int -> unit

(** [load v l] is the current total traffic on link [l] (initial
    traffic plus the weights of the users assigned there). O(1). *)
val load : t -> int -> Numeric.Rational.t

(** [loads v] is a snapshot copy of the per-link loads. *)
val loads : t -> Numeric.Rational.t array

(** [move v i l] reassigns user [i] to link [l], updating the two
    affected loads in O(1) exact rational operations and recording the
    move for {!undo}.  Moving a user to its current link is a recorded
    no-op, so move/undo sequences always balance.
    @raise Invalid_argument when [i] or [l] is out of range. *)
val move : t -> int -> int -> unit

(** [undo v] reverts the most recent un-undone {!move} or structural
    delta — O(1) for a move, O(m) for a delta.
    @raise Invalid_argument when the history is empty. *)
val undo : t -> unit

(** [depth v] is the number of moves and structural deltas that
    {!undo} can still revert. *)
val depth : t -> int

(** [weight v i], [capacity v i l], [contribution v i],
    [uncertainty v i]: user [i]'s current per-user data, reflecting
    any structural revision (read from the game while the view is
    sealed). O(1). *)
val weight : t -> int -> Numeric.Rational.t

val capacity : t -> int -> int -> Numeric.Rational.t
val contribution : t -> int -> Numeric.Rational.t
val uncertainty : t -> int -> Uncertainty.t

(** [add_user v ~weight ?uncertainty ?capacities ~link ()] appends a
    user on [link] and returns its slot index ([users v] before the
    call).  Exactly one of [~uncertainty] (any backend) or
    [~capacities] (wrapped as a certain Bayesian belief) must be
    given.  One O(1) load patch after the first unsealing; on the
    packed lane the new user's scaled weight and capacity pairs are
    admitted against the grown totals, spilling to the exact lane when
    the bound fails.
    @raise Invalid_argument on a malformed weight, row or link. *)
val add_user :
  t ->
  weight:Numeric.Rational.t ->
  ?uncertainty:Uncertainty.t ->
  ?capacities:Numeric.Rational.t array ->
  link:int ->
  unit ->
  int

(** [remove_user v i] tombstones user [i]: its contribution leaves its
    link's load (O(1)) and every scan skips it.  The slot index stays
    allocated, so indices of other users are stable and {!undo}
    restores the user in place.
    @raise Invalid_argument when [i] is out of range, already
    departed, or the last active user. *)
val remove_user : t -> int -> unit

(** [revise_capacity v ~user ~link cap'] rewrites user [user]'s
    effective capacity on [link].  Loads are unaffected (O(1)); the
    packed capacity pair is patched when the revised reduced pair
    keeps the product bound, else the view spills.
    @raise Invalid_argument on an index out of range or [cap' ≤ 0]. *)
val revise_capacity : t -> user:int -> link:int -> Numeric.Rational.t -> unit

(** [to_game v] re-materialises a per-user game over the active slots
    (in slot order) together with the slot index of each of its users.
    Untouched capacity rows keep their uncertainty backend; revised
    rows are re-wrapped as the matching certain belief (degenerate
    interval for [Strict]).  Returns the original game and the
    identity map while the view is sealed. *)
val to_game : t -> Game.t * int array

(** [latency v i] is user [i]'s expected latency [λ_{i,b_i}] at the
    current profile. O(1). *)
val latency : t -> int -> Numeric.Rational.t

(** [latency_on_link v i l] is the latency user [i] would experience
    after unilaterally moving to [l] (its current latency when [l] is
    its current link). O(1). *)
val latency_on_link : t -> int -> int -> Numeric.Rational.t

(** [best_response_for v i] is the lowest-index link minimising user
    [i]'s post-move latency, paired with that latency. O(m). *)
val best_response_for : t -> int -> int * Numeric.Rational.t

(** [improving_moves v i] lists, in increasing order, the links that
    would strictly lower user [i]'s latency. O(m). *)
val improving_moves : t -> int -> int list

(** [is_defector v i] holds when user [i] has an improving move. O(m). *)
val is_defector : t -> int -> bool

(** [defectors v] lists the users violating the Nash condition, in
    increasing order. O(n·m). *)
val defectors : t -> int list

(** [first_and_last_defector v] returns both ends of {!defectors} in a
    single pass, or [None] at a Nash equilibrium — the one-pass answer
    to the [Last_defector] best-response policy. O(n·m). *)
val first_and_last_defector : t -> (int * int) option

(** [is_nash v] holds when no user can strictly improve by switching
    links. O(n·m). *)
val is_nash : t -> bool

(** [social_cost1 v] is [SC1 = Σ_i λ_{i,b_i}]. O(n). *)
val social_cost1 : t -> Numeric.Rational.t

(** [social_cost2 v] is [SC2 = max_i λ_{i,b_i}]. O(n). *)
val social_cost2 : t -> Numeric.Rational.t

(** [sweep g ?initial f] calls [f] on a view positioned at every pure
    profile, in exactly the odometer order of
    {!Social.iter_profiles} (last user varies fastest).  Because
    consecutive odometer profiles differ by an amortised O(1) number of
    single-user moves, the whole sweep performs O(m^n) load updates
    total instead of rebuilding loads per profile — the inner loop of
    an exhaustive scan drops from O(n·m) to O(m) amortised per
    profile.  [f] may {!move}/{!undo} on the view as long as every
    move is undone before it returns; do not retain the view. *)
val sweep : Game.t -> ?initial:Numeric.Rational.t array -> (t -> unit) -> unit

(** [fold ?domains ?initial g ~init ~f ~combine] folds [f] over every
    pure profile in {!sweep} order and reduces with [combine].  With
    [domains <= 1] this is exactly the serial
    [f (… (f init v₀) …) v_last].  With [domains > 1] the odometer
    index space [0, m^n) is cut into [domains] contiguous blocks, each
    folded from [init] by a private view on its own domain, and the
    block results are combined left to right — so the result is
    bit-identical to the serial fold whenever [(init, f, combine)]
    satisfies [combine (f… init xs) (f… init ys) = f… init (xs @ ys)]
    (any associative reduction with unit [init]; first-wins argmin
    folds qualify because earlier blocks combine from the left).  [f]
    must not touch shared mutable state: it runs concurrently on
    distinct views.  Falls back to the serial path when [m^n]
    overflows a native int. *)
val fold :
  ?domains:int ->
  ?initial:Numeric.Rational.t array ->
  Game.t ->
  init:'a ->
  f:('a -> t -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
