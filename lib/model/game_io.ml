open Numeric

let fail_line lineno msg = invalid_arg (Printf.sprintf "Game_io: line %d: %s" lineno msg)

let split_words s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_rational lineno s =
  try Rational.of_string s with Invalid_argument _ -> fail_line lineno (Printf.sprintf "bad number %S" s)

type accum = {
  mutable links : int option;
  mutable weights : Rational.t array option;
  mutable states : (int * string * State.t) list; (* reversed, with lineno *)
  mutable beliefs : (int * string) list; (* reversed raw belief lines *)
  mutable capacities : (int * Rational.t array) list; (* reversed rows, with lineno *)
  mutable backend : (int * string) option; (* 'uncertainty' directive *)
  mutable presence : (int * Rational.t array) option; (* participation probabilities *)
  mutable intervals : (int * Rational.t array) list; (* reversed strict rows *)
}

(* Shared by the per-user and class scanners: the backend stanza and
   its per-form companion lines. *)
let parse_backend lineno rest =
  match rest with
  | [ ("bayesian" | "participation" | "strict") as name ] -> (lineno, name)
  | [ other ] -> fail_line lineno (Printf.sprintf "unknown uncertainty backend %S" other)
  | _ -> fail_line lineno "expected: uncertainty <bayesian|participation|strict>"

let backend_name = function Some (_, name) -> name | None -> "bayesian"

let intervals_of lineno row =
  let n = Array.length row in
  if n = 0 || n mod 2 <> 0 then
    fail_line lineno "interval row needs 'lo hi' capacity pairs, one per link";
  let ivs = Array.init (n / 2) (fun l -> (row.(2 * l), row.((2 * l) + 1))) in
  try Uncertainty.strict_of_intervals ivs with Invalid_argument m -> fail_line lineno m

(* The binary wire format (Serve.Wire) opens with this magic; catching
   it here turns a mixed-up reader into a pinned, actionable error
   instead of a "unknown directive" complaint about byte soup. *)
let reject_binary text =
  if String.length text >= 4 && String.sub text 0 4 = "SRWF" then
    fail_line 1 "binary wire payload (decode it with Serve.Wire or 'selfish_routing wire')"

let parse text =
  reject_binary text;
  let acc =
    {
      links = None;
      weights = None;
      states = [];
      beliefs = [];
      capacities = [];
      backend = None;
      presence = None;
      intervals = [];
    }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        match split_words line with
        | "links" :: rest ->
          (match rest with
           | [ n ] ->
             let n = try int_of_string n with Failure _ -> fail_line lineno "bad link count" in
             if n < 2 then fail_line lineno "need at least two links";
             acc.links <- Some n
           | _ -> fail_line lineno "expected: links <m>")
        | "weights" :: rest ->
          if rest = [] then fail_line lineno "expected at least one weight";
          acc.weights <- Some (Array.of_list (List.map (parse_rational lineno) rest))
        | "state" :: name :: caps ->
          if caps = [] then fail_line lineno "state needs capacities";
          let caps = Array.of_list (List.map (parse_rational lineno) caps) in
          if List.exists (fun (_, n, _) -> n = name) acc.states then
            fail_line lineno (Printf.sprintf "duplicate state %S" name);
          let st =
            try State.make caps with Invalid_argument m -> fail_line lineno m
          in
          acc.states <- (lineno, name, st) :: acc.states
        | "belief" :: _ ->
          (* Re-split on the original line to keep "name: prob" pairs. *)
          let body = String.sub line 6 (String.length line - 6) in
          acc.beliefs <- (lineno, body) :: acc.beliefs
        | "capacities" :: rest ->
          if rest = [] then fail_line lineno "capacities row needs entries";
          acc.capacities <- (lineno, Array.of_list (List.map (parse_rational lineno) rest)) :: acc.capacities
        | "uncertainty" :: rest ->
          (match acc.backend with
           | Some _ -> fail_line lineno "duplicate 'uncertainty' directive"
           | None -> acc.backend <- Some (parse_backend lineno rest))
        | "presence" :: rest ->
          if rest = [] then fail_line lineno "expected one presence probability per user";
          (match acc.presence with
           | Some _ -> fail_line lineno "duplicate 'presence' line"
           | None ->
             acc.presence <-
               Some (lineno, Array.of_list (List.map (parse_rational lineno) rest)))
        | "interval" :: rest ->
          if rest = [] then fail_line lineno "interval row needs 'lo hi' capacity pairs, one per link";
          acc.intervals <- (lineno, Array.of_list (List.map (parse_rational lineno) rest)) :: acc.intervals
        | "class" :: _ ->
          fail_line lineno
            "'class' rows describe a class game; use parse_cgame (or the --classes CLI flag)"
        | word :: _ -> fail_line lineno (Printf.sprintf "unknown directive %S" word)
        | [] -> ()
      end)
    lines;
  let weights =
    match acc.weights with
    | Some w -> w
    | None -> invalid_arg "Game_io: missing 'weights' line"
  in
  (* Width validation happens after the whole scan, so it applies no
     matter where (or whether) the 'links' directive appears: every
     'state' and 'capacities' row must agree with 'links' when present,
     and with each other otherwise. *)
  let expected_width = ref acc.links in
  let check_width lineno what n =
    match !expected_width with
    | Some m when n <> m ->
      fail_line lineno (Printf.sprintf "%s has wrong number of capacities (%d, expected %d)" what n m)
    | Some _ -> ()
    | None -> expected_width := Some n
  in
  List.iter
    (fun (lineno, name, st) ->
      check_width lineno (Printf.sprintf "state %S" name) (Array.length (State.capacities st)))
    (List.rev acc.states);
  List.iter
    (fun (lineno, row) -> check_width lineno "capacities row" (Array.length row))
    (List.rev acc.capacities);
  List.iter
    (fun (lineno, row) ->
      let n = Array.length row in
      if n = 0 || n mod 2 <> 0 then
        fail_line lineno "interval row needs 'lo hi' capacity pairs, one per link";
      check_width lineno "interval row" (n / 2))
    (List.rev acc.intervals);
  (* Backend coherence, order-independent like the width checks: the
     companion lines are only legal under their backend, and each
     backend requires its own form. *)
  let backend = backend_name acc.backend in
  (match acc.presence with
   | Some (lineno, _) when backend <> "participation" ->
     fail_line lineno "'presence' requires 'uncertainty participation'"
   | _ -> ());
  (match List.rev acc.intervals with
   | (lineno, _) :: _ when backend <> "strict" ->
     fail_line lineno "'interval' rows require 'uncertainty strict'"
   | _ -> ());
  if backend = "participation" && Option.is_none acc.presence then
    invalid_arg "Game_io: participation form requires a 'presence' line";
  if backend = "strict" then begin
    (match (acc.capacities, acc.beliefs, acc.states) with
     | [], [], [] -> ()
     | _ -> invalid_arg "Game_io: strict form uses 'interval' rows only");
    match List.rev acc.intervals with
    | [] -> invalid_arg "Game_io: strict form requires 'interval' rows"
    | rows ->
      let uncertainty =
        Array.of_list (List.map (fun (lineno, row) -> intervals_of lineno row) rows)
      in
      (try Game.make_uncertain ~weights ~uncertainty
       with Invalid_argument m -> invalid_arg ("Game_io: " ^ m))
  end
  else begin
  (* Bayesian and participation share the belief/capacities forms; the
     participation wrapper is applied uniformly at the end. *)
  let with_backend beliefs =
    match backend with
    | "participation" ->
      let lineno, probs = Option.get acc.presence in
      if Array.length probs <> Array.length weights then
        fail_line lineno
          (Printf.sprintf "presence line has %d entries, expected %d (one per user)"
             (Array.length probs) (Array.length weights));
      if Array.length beliefs <> Array.length weights then
        invalid_arg "Game_io: Game.make: one belief per user required";
      let uncertainty =
        Array.map2
          (fun p b ->
            try Uncertainty.participation ~presence:p b
            with Invalid_argument m -> fail_line lineno m)
          probs beliefs
      in
      (try Game.make_uncertain ~weights ~uncertainty
       with Invalid_argument m -> invalid_arg ("Game_io: " ^ m))
    | _ -> (try Game.make ~weights ~beliefs with Invalid_argument m -> invalid_arg ("Game_io: " ^ m))
  in
  match acc.capacities, acc.beliefs with
  | [], [] -> invalid_arg "Game_io: need either 'capacities' rows or 'belief' lines"
  | _ :: _, _ :: _ -> invalid_arg "Game_io: cannot mix 'capacities' and 'belief' forms"
  | rows, [] ->
    let rows = Array.of_list (List.rev_map snd rows) in
    if backend = "bayesian" then
      (try Game.of_capacities ~weights rows with Invalid_argument m -> invalid_arg ("Game_io: " ^ m))
    else begin
      Array.iter
        (fun w -> if Rational.sign w <= 0 then invalid_arg "Game_io: Game.make: traffics must be positive")
        weights;
      let beliefs =
        try Array.map (fun row -> Belief.certain (State.make row)) rows
        with Invalid_argument m -> invalid_arg ("Game_io: " ^ m)
      in
      with_backend beliefs
    end
  | [], raw_beliefs ->
    if acc.states = [] then invalid_arg "Game_io: belief form requires 'state' lines";
    let named = List.rev_map (fun (_, name, st) -> (name, st)) acc.states in
    let space = State.space (List.map snd named) in
    let index_of lineno name =
      let rec find i = function
        | [] -> fail_line lineno (Printf.sprintf "unknown state %S" name)
        | (n, _) :: rest -> if n = name then i else find (i + 1) rest
      in
      find 0 named
    in
    let parse_belief (lineno, body) =
      (* body: "fast: 1/2, slow: 1/2" *)
      let probs = Array.make (State.space_size space) Rational.zero in
      List.iter
        (fun part ->
          let part = String.trim part in
          if part <> "" then begin
            match String.index_opt part ':' with
            | None -> fail_line lineno (Printf.sprintf "expected 'state: prob' in %S" part)
            | Some i ->
              let name = String.trim (String.sub part 0 i) in
              let prob =
                parse_rational lineno (String.trim (String.sub part (i + 1) (String.length part - i - 1)))
              in
              let k = index_of lineno name in
              probs.(k) <- Rational.add probs.(k) prob
          end)
        (String.split_on_char ',' body);
      try Belief.make space probs with Invalid_argument m -> fail_line lineno m
    in
    let beliefs = Array.of_list (List.rev_map parse_belief raw_beliefs) in
    with_backend beliefs
  end

let parse_file path =
  let ic = open_in path in
  (* [Fun.protect] so the channel is closed even when reading raises
     (truncated file, I/O error) — the old code leaked it. *)
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* Class form: one 'class <count> <weight> <c_1> … <c_m>' row per
   class, optional 'links' directive, same comment/blank conventions.
   Kept as a separate scanner: class files and per-user files are
   different objects, and mixing their directives is an error in both
   directions. *)
let parse_cgame text =
  reject_binary text;
  let links = ref None in
  let backend = ref None in
  let presence = ref None in
  let rows = ref [] (* reversed (lineno, count, weight, caps) *) in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        match split_words line with
        | "links" :: rest ->
          (match rest with
           | [ n ] ->
             let n = try int_of_string n with Failure _ -> fail_line lineno "bad link count" in
             if n < 2 then fail_line lineno "need at least two links";
             links := Some n
           | _ -> fail_line lineno "expected: links <m>")
        | "class" :: count :: weight :: caps ->
          let count =
            try int_of_string count
            with Failure _ -> fail_line lineno (Printf.sprintf "bad class count %S" count)
          in
          if count <= 0 then fail_line lineno "class count must be positive";
          if caps = [] then fail_line lineno "class row needs capacities";
          let weight = parse_rational lineno weight in
          let caps = Array.of_list (List.map (parse_rational lineno) caps) in
          rows := (lineno, count, weight, caps) :: !rows
        | "class" :: _ -> fail_line lineno "expected: class <count> <weight> <c_1> ... <c_m>"
        | "uncertainty" :: rest ->
          (match !backend with
           | Some _ -> fail_line lineno "duplicate 'uncertainty' directive"
           | None -> backend := Some (parse_backend lineno rest))
        | "presence" :: rest ->
          if rest = [] then fail_line lineno "expected one presence probability per class";
          (match !presence with
           | Some _ -> fail_line lineno "duplicate 'presence' line"
           | None ->
             presence := Some (lineno, Array.of_list (List.map (parse_rational lineno) rest)))
        | ("weights" | "state" | "belief" | "capacities" | "interval") :: _ ->
          fail_line lineno "per-user directives cannot appear in a class game file"
        | word :: _ -> fail_line lineno (Printf.sprintf "unknown directive %S" word)
        | [] -> ()
      end)
    (String.split_on_char '\n' text);
  let rows = List.rev !rows in
  (match rows with [] -> invalid_arg "Game_io: need at least one 'class' row" | _ :: _ -> ());
  let backend = backend_name !backend in
  (match !presence with
   | Some (lineno, _) when backend <> "participation" ->
     fail_line lineno "'presence' requires 'uncertainty participation'"
   | _ -> ());
  if backend = "participation" && Option.is_none !presence then
    invalid_arg "Game_io: participation form requires a 'presence' line";
  (* Width check in link units: a strict class row carries a 'lo hi'
     pair per link, the other backends one capacity per link. *)
  let expected_width = ref !links in
  List.iter
    (fun (lineno, _, _, caps) ->
      let n = Array.length caps in
      let n =
        if backend <> "strict" then n
        else begin
          if n = 0 || n mod 2 <> 0 then
            fail_line lineno "strict class row needs 'lo hi' capacity pairs, one per link";
          n / 2
        end
      in
      match !expected_width with
      | Some m when n <> m ->
        fail_line lineno
          (Printf.sprintf "class row has wrong number of capacities (%d, expected %d)" n m)
      | Some _ -> ()
      | None -> expected_width := Some n)
    rows;
  let counts = Array.of_list (List.map (fun (_, c, _, _) -> c) rows) in
  let weights = Array.of_list (List.map (fun (_, _, w, _) -> w) rows) in
  match backend with
  | "strict" ->
    let uncertainty =
      Array.of_list (List.map (fun (lineno, _, _, row) -> intervals_of lineno row) rows)
    in
    (try Cgame.make_uncertain ~counts ~weights ~uncertainty
     with Invalid_argument m -> invalid_arg ("Game_io: " ^ m))
  | "participation" ->
    let lineno, probs = Option.get !presence in
    if Array.length probs <> Array.length counts then
      fail_line lineno
        (Printf.sprintf "presence line has %d entries, expected %d (one per class)"
           (Array.length probs) (Array.length counts));
    let beliefs =
      try
        Array.of_list
          (List.map (fun (_, _, _, row) -> Belief.certain (State.make row)) rows)
      with Invalid_argument m -> invalid_arg ("Game_io: " ^ m)
    in
    let uncertainty =
      Array.map2
        (fun p b ->
          try Uncertainty.participation ~presence:p b
          with Invalid_argument m -> fail_line lineno m)
        probs beliefs
    in
    (try Cgame.make_uncertain ~counts ~weights ~uncertainty
     with Invalid_argument m -> invalid_arg ("Game_io: " ^ m))
  | _ ->
    let caps = Array.of_list (List.map (fun (_, _, _, row) -> row) rows) in
    (try Cgame.of_capacities ~counts ~weights caps
     with Invalid_argument m -> invalid_arg ("Game_io: " ^ m))

let parse_cgame_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_cgame (really_input_string ic (in_channel_length ic)))

(* Writers: files carry an 'uncertainty' stanza (plus its companion
   lines) exactly when some backend is non-Bayesian, so all-Bayesian
   output is byte-identical to the pre-backend format.  A game mixing
   backend kinds across users has no file form. *)
let writer_kind ~what count uncertainty_of =
  let k0 = Uncertainty.kind (uncertainty_of 0) in
  for i = 1 to count - 1 do
    if not (Uncertainty.equal_kind k0 (Uncertainty.kind (uncertainty_of i))) then
      invalid_arg (what ^ ": cannot serialise mixed uncertainty backends")
  done;
  k0

let add_presence_line buf count presence_of =
  Buffer.add_string buf "presence";
  for i = 0 to count - 1 do
    Buffer.add_string buf (" " ^ Rational.to_string (presence_of i))
  done;
  Buffer.add_char buf '\n'

let add_interval_entries buf u =
  match Uncertainty.strict_bounds u with
  | None -> assert false (* only called on Strict backends *)
  | Some (lo, hi) ->
    for l = 0 to State.links lo - 1 do
      Buffer.add_string buf
        (Printf.sprintf " %s %s"
           (Rational.to_string (State.capacity lo l))
           (Rational.to_string (State.capacity hi l)))
    done

let to_class_string g =
  let buf = Buffer.create 256 in
  let kind = writer_kind ~what:"Game_io.to_class_string" (Cgame.classes g) (Cgame.uncertainty g) in
  Buffer.add_string buf (Printf.sprintf "links %d\n" (Cgame.links g));
  (match kind with
   | Uncertainty.Bayesian -> ()
   | k ->
     Buffer.add_string buf (Printf.sprintf "uncertainty %s\n" (Uncertainty.kind_name k));
     if Uncertainty.equal_kind k Uncertainty.Participation then
       add_presence_line buf (Cgame.classes g) (fun c ->
           Uncertainty.presence (Cgame.uncertainty g c)));
  for c = 0 to Cgame.classes g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "class %d %s" (Cgame.count g c) (Rational.to_string (Cgame.weight g c)));
    (match kind with
     | Uncertainty.Strict -> add_interval_entries buf (Cgame.uncertainty g c)
     | _ ->
       Array.iter
         (fun q -> Buffer.add_string buf (" " ^ Rational.to_string q))
         (Cgame.capacity_row g c));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* A strict game's only faithful file form is the interval form: its
   decision-equivalent beliefs would drop the hi endpoints. *)
let strict_to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "links %d\n" (Game.links g));
  Buffer.add_string buf "uncertainty strict\n";
  Buffer.add_string buf "weights";
  Array.iter (fun w -> Buffer.add_string buf (" " ^ Rational.to_string w)) (Game.weights g);
  Buffer.add_char buf '\n';
  for i = 0 to Game.users g - 1 do
    Buffer.add_string buf "interval";
    add_interval_entries buf (Game.uncertainty g i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let to_generative_string g =
  let kind = writer_kind ~what:"Game_io.to_generative_string" (Game.users g) (Game.uncertainty g) in
  match kind with
  | Uncertainty.Strict -> strict_to_string g
  | _ ->
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "links %d\n" (Game.links g));
  (match kind with
   | Uncertainty.Participation ->
     Buffer.add_string buf "uncertainty participation\n"
   | _ -> ());
  Buffer.add_string buf "weights";
  Array.iter (fun w -> Buffer.add_string buf (" " ^ Rational.to_string w)) (Game.weights g);
  Buffer.add_char buf '\n';
  (match kind with
   | Uncertainty.Participation ->
     add_presence_line buf (Game.users g) (fun i -> Uncertainty.presence (Game.uncertainty g i))
   | _ -> ());
  (* Union of states across the users' (possibly private) spaces,
     deduplicated structurally; remember each (user, local index) →
     global name. *)
  let states = ref [] in
  let count = ref 0 in
  let global_name st =
    match List.find_opt (fun (_, s) -> State.equal s st) !states with
    | Some (name, _) -> name
    | None ->
      incr count;
      let name = Printf.sprintf "s%d" !count in
      states := !states @ [ (name, st) ];
      name
  in
  let belief_lines =
    List.init (Game.users g) (fun i ->
        let b = Game.belief g i in
        let space = Belief.space b in
        let parts = ref [] in
        for k = State.space_size space - 1 downto 0 do
          let p = Belief.prob b k in
          if not (Rational.is_zero p) then begin
            let name = global_name (State.state space k) in
            parts := Printf.sprintf "%s: %s" name (Rational.to_string p) :: !parts
          end
        done;
        "belief " ^ String.concat ", " !parts)
  in
  List.iter
    (fun (name, st) ->
      Buffer.add_string buf ("state " ^ name);
      Array.iter
        (fun c -> Buffer.add_string buf (" " ^ Rational.to_string c))
        (State.capacities st);
      Buffer.add_char buf '\n')
    !states;
  List.iter (fun line -> Buffer.add_string buf (line ^ "\n")) belief_lines;
  Buffer.contents buf

let to_string g =
  let kind = writer_kind ~what:"Game_io.to_string" (Game.users g) (Game.uncertainty g) in
  match kind with
  | Uncertainty.Strict -> strict_to_string g
  | _ ->
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "links %d\n" (Game.links g));
  (match kind with
   | Uncertainty.Participation ->
     Buffer.add_string buf "uncertainty participation\n"
   | _ -> ());
  Buffer.add_string buf "weights";
  Array.iter (fun w -> Buffer.add_string buf (" " ^ Rational.to_string w)) (Game.weights g);
  Buffer.add_char buf '\n';
  (match kind with
   | Uncertainty.Participation ->
     add_presence_line buf (Game.users g) (fun i -> Uncertainty.presence (Game.uncertainty g i))
   | _ -> ());
  (* Reduced form keeps the file small and is always faithful to the
     latencies (everything factors through the effective capacities —
     plus, under participation, the presence line). *)
  for i = 0 to Game.users g - 1 do
    Buffer.add_string buf "capacities";
    Array.iter (fun c -> Buffer.add_string buf (" " ^ Rational.to_string c)) (Game.capacity_row g i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
