open Numeric

(* Keyed on the exact load vector; Qvec.hash/Qvec.equal compose the
   canonical Rational hashes, so equal vectors collide by law and the
   polymorphic hash never runs (R1). *)
module Tbl = Hashtbl.Make (struct
  type t = Qvec.t

  let equal = Qvec.equal
  let hash = Qvec.hash
end)

type t = { table : Rational.t Tbl.t; links : int; classes : int }

let links d = d.links
let size d = Tbl.length d.table
let classes d = d.classes

(* [choose n k] over Bigint with the multiplicative formula; every
   intermediate division is exact (the running value is C(n-k+i, i)). *)
let choose n k =
  let k = if k > n - k then n - k else k in
  let c = ref Bigint.one in
  for i = 1 to k do
    c := Bigint.div (Bigint.mul !c (Bigint.of_int (n - k + i))) (Bigint.of_int i)
  done;
  Rational.of_bigint !c

(* Group users into classes of equal weight and equal probability row,
   in first-seen order.  Capacities are irrelevant: the load vector is
   a function of weights and link choices only. *)
let classes_of g p =
  let n = Game.users g in
  let cls = ref [] in
  for i = n - 1 downto 0 do
    (* downto + prepend keeps first-seen order in the final list *)
    let w = Game.weight g i in
    match
      List.find_opt (fun (w', row', _) -> Rational.equal w w' && Qvec.equal p.(i) row') !cls
    with
    | Some (_, _, count) -> incr count
    | None -> cls := (w, p.(i), ref 1) :: !cls
  done;
  List.map (fun (w, row, count) -> (w, row, !count)) !cls

(* All ways to split [count] exchangeable users of weight [weight]
   across the links, as (load delta, probability mass) pairs.  The mass
   of the split (k_1, …, k_m) is the multinomial C(count; k_1 … k_m)
   times Π_l row(l)^{k_l}; links with zero probability only admit
   k_l = 0, so zero-probability realisations are never generated. *)
let class_splits ~links:m ~count ~weight ~(row : Qvec.t) =
  let pows =
    Array.map
      (fun q ->
        let a = Array.make (count + 1) Rational.one in
        for k = 1 to count do
          a.(k) <- Rational.mul a.(k - 1) q
        done;
        a)
      row
  in
  let splits = ref [] in
  let counts = Array.make m 0 in
  let emit mass =
    let delta = Qvec.init m (fun l -> Rational.mul (Rational.of_int counts.(l)) weight) in
    splits := (delta, mass) :: !splits
  in
  let rec go l remaining mass =
    if l = m - 1 then begin
      if remaining = 0 || Rational.sign row.(l) > 0 then begin
        counts.(l) <- remaining;
        emit (Rational.mul mass pows.(l).(remaining));
        counts.(l) <- 0
      end
    end
    else begin
      let top = if Rational.sign row.(l) > 0 then remaining else 0 in
      for k = 0 to top do
        counts.(l) <- k;
        go (l + 1) (remaining - k) (Rational.mul mass (Rational.mul (choose remaining k) pows.(l).(k)))
      done;
      counts.(l) <- 0
    end
  in
  go 0 count Rational.one;
  !splits

(* One DP layer: fold a class's splits into every accumulated state,
   merging states that land on the same load vector. *)
let apply ~limit table splits =
  let next = Tbl.create (2 * Tbl.length table) in
  Tbl.iter
    (fun loads prob ->
      List.iter
        (fun (delta, mass) ->
          let loads' = Qvec.add loads delta in
          let contribution = Rational.mul prob mass in
          match Tbl.find_opt next loads' with
          | Some q -> Tbl.replace next loads' (Rational.add q contribution)
          | None ->
            if Tbl.length next >= limit then
              invalid_arg "Load_dist.of_mixed: distinct load states exceed the limit";
            Tbl.add next loads' contribution)
        splits)
    table;
  next

let of_mixed ?(limit = 1_000_000) g p =
  Mixed.validate g p;
  if limit <= 0 then invalid_arg "Load_dist.of_mixed: limit must be positive";
  let m = Game.links g in
  let cls = classes_of g p in
  let table = ref (Tbl.create 16) in
  Tbl.add !table (Qvec.make m Rational.zero) Rational.one;
  List.iter
    (fun (weight, row, count) ->
      table := apply ~limit !table (class_splits ~links:m ~count ~weight ~row))
    cls;
  { table = !table; links = m; classes = List.length cls }

let total_probability d =
  let acc = ref Rational.zero in
  Tbl.iter (fun _ prob -> acc := Rational.add !acc prob) d.table;
  !acc

let expect d f =
  let acc = ref Rational.zero in
  Tbl.iter (fun loads prob -> acc := Rational.add !acc (Rational.mul prob (f loads))) d.table;
  !acc

let iter d f = Tbl.iter f d.table
