open Numeric

(* Keyed on the exact load vector; Qvec.hash/Qvec.equal compose the
   canonical Rational hashes, so equal vectors collide by law and the
   polymorphic hash never runs (R1). *)
module Tbl = Hashtbl.Make (struct
  type t = Qvec.t

  let equal = Qvec.equal
  let hash = Qvec.hash
end)

type t = { table : Rational.t Tbl.t; links : int; classes : int }

let links d = d.links
let size d = Tbl.length d.table
let classes d = d.classes

(* Group users into classes of equal weight and equal probability row,
   in first-seen order.  Capacities are irrelevant: the load vector is
   a function of weights and link choices only. *)
let classes_of g p =
  let n = Game.users g in
  let cls = ref [] in
  for i = n - 1 downto 0 do
    (* downto + prepend keeps first-seen order in the final list *)
    let w = Game.weight g i in
    match
      List.find_opt (fun (w', row', _) -> Rational.equal w w' && Qvec.equal p.(i) row') !cls
    with
    | Some (_, _, count) -> incr count
    | None -> cls := (w, p.(i), ref 1) :: !cls
  done;
  List.map (fun (w, row, count) -> (w, row, !count)) !cls

(* All ways to split [count] exchangeable users of weight [weight]
   across the links, as (load delta, probability mass) pairs.  The mass
   of the split (k_1, …, k_m) is the multinomial C(count; k_1 … k_m)
   times Π_l row(l)^{k_l} — both now computed by the shared
   [Numeric.Combinat] module.  Splits placing users on a
   zero-probability link are skipped before any arithmetic, so
   zero-mass load states are never generated (this keeps [size]
   identical to the seed enumeration). *)
let class_splits ~links:m ~count ~weight ~(row : Qvec.t) =
  let pows =
    Array.map
      (fun q ->
        let a = Array.make (count + 1) Rational.one in
        for k = 1 to count do
          a.(k) <- Rational.mul a.(k - 1) q
        done;
        a)
      row
  in
  let splits = ref [] in
  Combinat.iter_compositions ~total:count ~parts:m (fun counts ->
      let supported = ref true in
      for l = 0 to m - 1 do
        if counts.(l) > 0 && Rational.sign row.(l) = 0 then supported := false
      done;
      if !supported then begin
        let mass = ref (Rational.of_bigint (Combinat.multinomial counts)) in
        for l = 0 to m - 1 do
          mass := Rational.mul !mass pows.(l).(counts.(l))
        done;
        let delta = Qvec.init m (fun l -> Rational.mul (Rational.of_int counts.(l)) weight) in
        splits := (delta, !mass) :: !splits
      end);
  !splits

let limit_message = "Load_dist.of_mixed: distinct load states exceed the limit"

(* DP accumulator: the layer table plus the id of the domain that owns
   it, so the SELFISH_OWNERSHIP sanitizer can assert every mutation
   happens on the creating domain (worker shards build private steps;
   the merge below writes only into a fresh caller-owned step). *)
type step = { tbl : Rational.t Tbl.t; owner : int }

let fresh_step size = { tbl = Tbl.create size; owner = Parallel.Ownership.record () }

(* Fold one state's outgoing splits into an accumulator step.  A
   negative limit disables the per-insert check (used by the parallel
   shards, which bound the merged table instead). *)
let expand_into ~limit next splits loads prob =
  Parallel.Ownership.guard "Load_dist table" next.owner;
  List.iter
    (fun (delta, mass) ->
      let loads' = Qvec.add loads delta in
      let contribution = Rational.mul prob mass in
      match Tbl.find_opt next.tbl loads' with
      | Some q -> Tbl.replace next.tbl loads' (Rational.add q contribution)
      | None ->
        if limit >= 0 && Tbl.length next.tbl >= limit then invalid_arg limit_message;
        Tbl.add next.tbl loads' contribution)
    splits

(* Add every (state, probability) of [local] into [merged]; exact
   rational addition makes the result independent of merge order. *)
let merge_into merged local =
  Parallel.Ownership.guard "Load_dist table" merged.owner;
  Tbl.iter
    (fun loads' contribution ->
      match Tbl.find_opt merged.tbl loads' with
      | Some q -> Tbl.replace merged.tbl loads' (Rational.add q contribution)
      | None -> Tbl.add merged.tbl loads' contribution)
    local.tbl

(* One DP layer: fold a class's splits into every accumulated state,
   merging states that land on the same load vector.

   With [~domains > 1] and a frontier large enough to amortise domain
   spawns, the current states are snapshotted and block-sharded; each
   worker expands its block into a private table and the local tables
   are merged sequentially.  Rational addition is exact, so the merged
   probabilities are bit-identical to the serial layer whatever the
   accumulation order — sharding is observable only through speed.
   The state limit then applies to the merged layer size (the same
   "distinct states > limit" condition the serial path enforces). *)
let apply ?(domains = 1) ~limit step splits =
  let k = Tbl.length step.tbl in
  if domains <= 1 || k < 256 then begin
    let next = fresh_step (2 * k) in
    Tbl.iter (expand_into ~limit next splits) step.tbl;
    next
  end
  else begin
    let states = Array.of_seq (Tbl.to_seq step.tbl) in
    let workers = min domains k in
    let per = k / workers and extra = k mod workers in
    let shard w =
      let lo = (w * per) + Stdlib.min w extra in
      let size = per + if w < extra then 1 else 0 in
      let local = fresh_step (2 * size) in
      for j = lo to lo + size - 1 do
        let loads, prob = states.(j) in
        expand_into ~limit:(-1) local splits loads prob
      done;
      local
    in
    let locals = Parallel.map ~domains:workers shard (List.init workers Fun.id) in
    (* Worker-local tables are owned by the domains that built them, so
       the merge never touches them: everything is re-added, in worker
       order, to a fresh step owned by the calling domain.  Per-state
       probabilities accumulate in the same order as before (shard 0
       first), and rational addition is exact, so the merged layer is
       bit-identical to the serial one. *)
    let merged = fresh_step (2 * k) in
    List.iter (merge_into merged) locals;
    if Tbl.length merged.tbl > limit then invalid_arg limit_message;
    merged
  end

let of_mixed ?(limit = 1_000_000) ?domains g p =
  Mixed.validate g p;
  if limit <= 0 then invalid_arg "Load_dist.of_mixed: limit must be positive";
  let m = Game.links g in
  let cls = classes_of g p in
  let step0 = fresh_step 16 in
  Tbl.add step0.tbl (Qvec.make m Rational.zero) Rational.one;
  let step = ref step0 in
  List.iter
    (fun (weight, row, count) ->
      step := apply ?domains ~limit !step (class_splits ~links:m ~count ~weight ~row))
    cls;
  { table = (!step).tbl; links = m; classes = List.length cls }

let total_probability d =
  let acc = ref Rational.zero in
  Tbl.iter (fun _ prob -> acc := Rational.add !acc prob) d.table;
  !acc

let expect d f =
  let acc = ref Rational.zero in
  Tbl.iter (fun loads prob -> acc := Rational.add !acc (Rational.mul prob (f loads))) d.table;
  !acc

let iter d f = Tbl.iter f d.table
