open Numeric

type t = {
  weights : Rational.t array;
  uncertainty : Uncertainty.t array;
  beliefs : Belief.t array; (* decision-equivalent beliefs (Uncertainty.belief) *)
  capacities : Rational.t array array; (* capacities.(i).(l) = c^l_i *)
  contribs : Rational.t array; (* presence-discounted weight others meet *)
  biases : Rational.t array; (* w_i - contribs.(i), own-latency surcharge *)
  load_linear : bool;
  packed : Packing.t option; (* native-int tables for the View fast lane *)
}

let validate_weights weights =
  if Array.length weights = 0 then invalid_arg "Game.make: no users";
  Array.iter
    (fun w -> if Rational.sign w <= 0 then invalid_arg "Game.make: traffics must be positive")
    weights

let make_uncertain ~weights ~uncertainty =
  validate_weights weights;
  if Array.length uncertainty <> Array.length weights then
    invalid_arg "Game.make: one uncertainty backend per user required";
  let m = Uncertainty.links uncertainty.(0) in
  Array.iter
    (fun u ->
      if Uncertainty.links u <> m then invalid_arg "Game.make: beliefs disagree on link count")
    uncertainty;
  if m < 2 then invalid_arg "Game.make: at least two links required";
  let capacities = Array.map Uncertainty.eval_capacities uncertainty in
  (* Load-linear users contribute their full weight; sharing the weight
     value keeps every Bayesian game bit-identical to the pre-backend
     construction. *)
  let contribs =
    Array.map2
      (fun u w -> if Uncertainty.is_load_linear u then w else Rational.mul (Uncertainty.load_factor u) w)
      uncertainty weights
  in
  let biases = Array.map2 Rational.sub weights contribs in
  let load_linear = Array.for_all Uncertainty.is_load_linear uncertainty in
  {
    weights = Array.copy weights;
    uncertainty = Array.copy uncertainty;
    beliefs = Array.map Uncertainty.belief uncertainty;
    capacities;
    contribs;
    biases;
    load_linear;
    (* The packed lane's three-factor Nash products assume latencies of
       the exact form load/ĉ, so only load-linear games get tables. *)
    packed =
      (if load_linear then
         Packing.build ~mults:(Array.make (Array.length weights) 1) weights capacities
       else None);
  }

let make ~weights ~beliefs =
  if Array.length beliefs <> Array.length weights then
    invalid_arg "Game.make: one belief per user required";
  make_uncertain ~weights ~uncertainty:(Array.map Uncertainty.bayesian beliefs)

let of_capacities ~weights caps =
  validate_weights weights;
  if Array.length caps <> Array.length weights then
    invalid_arg "Game.of_capacities: one capacity row per user required";
  let beliefs =
    Array.map (fun row -> Belief.certain (State.make row)) caps
  in
  make ~weights ~beliefs

let kp ~weights ~capacities =
  validate_weights weights;
  let st = State.make capacities in
  let beliefs = Array.map (fun _ -> Belief.certain st) weights in
  make ~weights ~beliefs

let users g = Array.length g.weights
let links g = Array.length g.capacities.(0)

let weight g i =
  if i < 0 || i >= users g then invalid_arg "Game.weight: user out of range";
  g.weights.(i)

let weights g = Array.copy g.weights
let total_traffic g = Rational.sum_array g.weights

let belief g i =
  if i < 0 || i >= users g then invalid_arg "Game.belief: user out of range";
  g.beliefs.(i)

let uncertainty g i =
  if i < 0 || i >= users g then invalid_arg "Game.uncertainty: user out of range";
  g.uncertainty.(i)

let contribution g i =
  if i < 0 || i >= users g then invalid_arg "Game.contribution: user out of range";
  g.contribs.(i)

let bias g i =
  if i < 0 || i >= users g then invalid_arg "Game.bias: user out of range";
  g.biases.(i)

let is_load_linear g = g.load_linear

let capacity g i l =
  if i < 0 || i >= users g then invalid_arg "Game.capacity: user out of range";
  if l < 0 || l >= links g then invalid_arg "Game.capacity: link out of range";
  g.capacities.(i).(l)

let capacity_row g i =
  if i < 0 || i >= users g then invalid_arg "Game.capacity_row: user out of range";
  Array.copy g.capacities.(i)

let capacity_matrix g = Array.map Array.copy g.capacities
let packed_tables g = g.packed

let is_kp g =
  let first = g.capacities.(0) in
  Array.for_all (fun row -> Array.for_all2 Rational.equal first row) g.capacities

let has_uniform_beliefs g =
  Array.for_all (fun row -> Array.for_all (Rational.equal row.(0)) row) g.capacities

let is_symmetric g = Array.for_all (Rational.equal g.weights.(0)) g.weights

let restrict g ~drop =
  if drop < 0 || drop >= users g then invalid_arg "Game.restrict: user out of range";
  if users g <= 1 then invalid_arg "Game.restrict: cannot drop the last user";
  let keep = List.filter (fun i -> i <> drop) (List.init (users g) Fun.id) in
  let pick arr = Array.of_list (List.map (Array.get arr) keep) in
  let weights = pick g.weights and capacities = pick g.capacities in
  let uncertainty = pick g.uncertainty in
  let load_linear = Array.for_all Uncertainty.is_load_linear uncertainty in
  {
    weights;
    uncertainty;
    beliefs = pick g.beliefs;
    capacities;
    contribs = pick g.contribs;
    biases = pick g.biases;
    load_linear;
    packed =
      (if load_linear then
         Packing.build ~mults:(Array.make (Array.length weights) 1) weights capacities
       else None);
  }

let pp fmt g =
  Format.fprintf fmt "game n=%d m=%d w=%a" (users g) (links g)
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Rational.pp)
    (Array.to_list g.weights)
