open Numeric

type t = {
  weights : Rational.t array;
  beliefs : Belief.t array;
  capacities : Rational.t array array; (* capacities.(i).(l) = c^l_i *)
  packed : Packing.t option; (* native-int tables for the View fast lane *)
}

let validate_weights weights =
  if Array.length weights = 0 then invalid_arg "Game.make: no users";
  Array.iter
    (fun w -> if Rational.sign w <= 0 then invalid_arg "Game.make: traffics must be positive")
    weights

let make ~weights ~beliefs =
  validate_weights weights;
  if Array.length beliefs <> Array.length weights then
    invalid_arg "Game.make: one belief per user required";
  let m = Belief.links beliefs.(0) in
  Array.iter
    (fun b -> if Belief.links b <> m then invalid_arg "Game.make: beliefs disagree on link count")
    beliefs;
  if m < 2 then invalid_arg "Game.make: at least two links required";
  let capacities = Array.map Belief.effective_capacities beliefs in
  {
    weights = Array.copy weights;
    beliefs = Array.copy beliefs;
    capacities;
    packed = Packing.build ~mults:(Array.make (Array.length weights) 1) weights capacities;
  }

let of_capacities ~weights caps =
  validate_weights weights;
  if Array.length caps <> Array.length weights then
    invalid_arg "Game.of_capacities: one capacity row per user required";
  let beliefs =
    Array.map (fun row -> Belief.certain (State.make row)) caps
  in
  make ~weights ~beliefs

let kp ~weights ~capacities =
  validate_weights weights;
  let st = State.make capacities in
  let beliefs = Array.map (fun _ -> Belief.certain st) weights in
  make ~weights ~beliefs

let users g = Array.length g.weights
let links g = Array.length g.capacities.(0)

let weight g i =
  if i < 0 || i >= users g then invalid_arg "Game.weight: user out of range";
  g.weights.(i)

let weights g = Array.copy g.weights
let total_traffic g = Rational.sum_array g.weights

let belief g i =
  if i < 0 || i >= users g then invalid_arg "Game.belief: user out of range";
  g.beliefs.(i)

let capacity g i l =
  if i < 0 || i >= users g then invalid_arg "Game.capacity: user out of range";
  if l < 0 || l >= links g then invalid_arg "Game.capacity: link out of range";
  g.capacities.(i).(l)

let capacity_row g i =
  if i < 0 || i >= users g then invalid_arg "Game.capacity_row: user out of range";
  Array.copy g.capacities.(i)

let capacity_matrix g = Array.map Array.copy g.capacities
let packed_tables g = g.packed

let is_kp g =
  let first = g.capacities.(0) in
  Array.for_all (fun row -> Array.for_all2 Rational.equal first row) g.capacities

let has_uniform_beliefs g =
  Array.for_all (fun row -> Array.for_all (Rational.equal row.(0)) row) g.capacities

let is_symmetric g = Array.for_all (Rational.equal g.weights.(0)) g.weights

let restrict g ~drop =
  if drop < 0 || drop >= users g then invalid_arg "Game.restrict: user out of range";
  if users g <= 1 then invalid_arg "Game.restrict: cannot drop the last user";
  let keep = List.filter (fun i -> i <> drop) (List.init (users g) Fun.id) in
  let pick arr = Array.of_list (List.map (Array.get arr) keep) in
  let weights = pick g.weights and capacities = pick g.capacities in
  {
    weights;
    beliefs = pick g.beliefs;
    capacities;
    packed = Packing.build ~mults:(Array.make (Array.length weights) 1) weights capacities;
  }

let pp fmt g =
  Format.fprintf fmt "game n=%d m=%d w=%a" (users g) (links g)
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Rational.pp)
    (Array.to_list g.weights)
