(* The price of ignorance, across uncertainty backends.

   The paper prices a network through each user's belief; the
   Uncertainty interface generalises that to three backends.  Here four
   populations play the same sampled instances:

   - informed    — Bayesian point beliefs at the true state;
   - misinformed — Bayesian beliefs drawn at random;
   - robust      — Strict worst-case play over the hull of the state
                   space (the truth always lies inside the intervals);
   - bernoulli   — knows the truth but is only present with
                   probability p (Participation backend).

   Every equilibrium is priced under the TRUE capacities with the
   weighted social cost SCw(σ) = Σ_ℓ load_ℓ²/c*_ℓ.  The first three
   columns are exact ratios against the optimal assignment under truth
   (so ≥ 1); the demand-gain column compares the Bernoulli equilibrium
   with the informed one under the same random demand, via the exact
   load-vector distribution — at p = 1 it is exactly 1.

   Run with: dune exec examples/price_of_ignorance.exe *)

open Numeric

let () =
  let presences = Rational.[ one; of_ints 3 4; of_ints 1 2; of_ints 1 4 ] in
  let rows =
    Experiments.Ignorance.run ~seed:2006 ~n:4 ~m:2 ~states:3 ~presences ~trials:8 ()
  in
  print_endline "Price of ignorance (n=4, m=2, 3 states, 8 trials per presence level):";
  Stats.Table.print (Experiments.Ignorance.table rows);
  print_endline "(ratios are SCw/OPTw under the true capacities; demand gain is";
  print_endline " E[SCw bernoulli]/E[SCw informed] under the same Bernoulli demand)";

  (* The p = 1 row must have demand gain exactly 1: presence-1
     participation is bit-identical to the Bayesian backend, so both
     populations walk the same best-response trace. *)
  match rows with
  | first :: _ ->
    Printf.printf "\ndemand gain at p = 1: %g (exactly 1 by construction)\n" first.demand_gain
  | [] -> assert false
