The price-of-ignorance example compares all four uncertainty
populations on shared instances; its output is exact and seeded,
so it is pinned byte-for-byte:

  $ ../price_of_ignorance.exe
  Price of ignorance (n=4, m=2, 3 states, 8 trials per presence level):
  presence p  trials  informed SCw/OPTw  misinformed  robust (strict)  demand gain  E[max congestion]  BR failures
  ----------  ------  -----------------  -----------  ---------------  -----------  -----------------  -----------
  1           8       1.008              1.061        1.229            1            2.608              0          
  3/4         8       1.007              1.061        1.078            1            2.449              0          
  1/2         8       1.026              1.145        1.204            1.012        1.14               0          
  1/4         8       1.028              1.22         1.218            0.9877       0.7205             0          
  (ratios are SCw/OPTw under the true capacities; demand gain is
   E[SCw bernoulli]/E[SCw informed] under the same Bernoulli demand)
  
  demand gain at p = 1: 1 (exactly 1 by construction)

