(* Exactness lint for the selfish_routing tree.

   A purely syntactic pass over untyped parse trees (compiler-libs
   [Parse.implementation] + [Ast_iterator]); no type information is
   available, so every rule is a best-effort pattern on identifiers and
   literals.  The rules encode the repo's exactness contract (DESIGN
   §"Why exact arithmetic" and §10 "Static guarantees"):

     R1 (poly)   polymorphic comparison/hashing in modules that handle
                 numeric-tower values: [Stdlib.compare] (or bare
                 [compare] in files that do not define their own),
                 [Hashtbl.hash]/[seeded_hash]/[hash_param], any value
                 from the polymorphic [Hashtbl] module, and [=]/[<>]
                 applied to an operand that syntactically comes from a
                 numeric-tower module.
     R2 (float)  float literals, the [+.]/[-.]/[*.]/[/.]/[**]
                 operators, and [Float.*] values.
     R3 (nondet) ambient nondeterminism: [Random.*], [Sys.time],
                 [Unix.time], [Unix.gettimeofday], and [Domain.self]
                 outside [lib/parallel].
     R4 (io)     [open_in*]/[open_out*] (and [In_channel.open_*] /
                 [Out_channel.open_*]) in a top-level binding that
                 never mentions [Fun.protect].

   The domain-safety rules D1-D4 share this module's finding type,
   scoping policy and suppression machinery; their analysis lives in
   [Domain_core]:

     D1 (capture) closures shipped to worker domains must not capture
                  (or mutate) shared mutable state.
     D2 (domain)  raw Domain/Atomic/Mutex/Condition primitives outside
                  lib/parallel.
     D3 (global)  top-level mutable state in lib/ modules.
     D4 (clock)   wall-clock timing outside bench/.

   Suppression: a [(* lint: allow *)] comment (optionally naming rules,
   e.g. [(* lint: allow R2 nondet *)]) on the flagged line or the line
   directly above silences matching findings at that site; an allowlist
   file silences whole files per rule for incremental adoption. *)

type rule =
  | Poly
  | Float_op
  | Nondet
  | Unprotected_io
  | Capture
  | Domain_prim
  | Top_mutable
  | Wall_clock

let all_rules =
  [ Poly; Float_op; Nondet; Unprotected_io; Capture; Domain_prim; Top_mutable; Wall_clock ]

let rule_id = function
  | Poly -> "R1"
  | Float_op -> "R2"
  | Nondet -> "R3"
  | Unprotected_io -> "R4"
  | Capture -> "D1"
  | Domain_prim -> "D2"
  | Top_mutable -> "D3"
  | Wall_clock -> "D4"

let rule_mnemonic = function
  | Poly -> "poly"
  | Float_op -> "float"
  | Nondet -> "nondet"
  | Unprotected_io -> "io"
  | Capture -> "capture"
  | Domain_prim -> "domain"
  | Top_mutable -> "global"
  | Wall_clock -> "clock"

let rule_of_string s =
  match String.lowercase_ascii s with
  | "r1" | "poly" -> Some Poly
  | "r2" | "float" -> Some Float_op
  | "r3" | "nondet" -> Some Nondet
  | "r4" | "io" -> Some Unprotected_io
  | "d1" | "capture" -> Some Capture
  | "d2" | "domain" -> Some Domain_prim
  | "d3" | "global" -> Some Top_mutable
  | "d4" | "clock" -> Some Wall_clock
  | _ -> None

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
  suppressed : bool;
}

(* ------------------------------------------------------------------ *)
(* Path scoping: which rules a file is subject to by default.          *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let normalize_path p =
  if has_prefix ~prefix:"./" p then String.sub p 2 (String.length p - 2) else p

(* Modules whose values flow through Nash predicates: polymorphic
   structural operations there risk diverging from the numeric
   tower's canonical equality. *)
let poly_scoped_dirs =
  [ "lib/numeric/"; "lib/model/"; "lib/algo/"; "lib/kp/"; "lib/engine/"; "lib/serve/" ]

(* Float arithmetic is legitimate only in the statistics layer, the
   report renderer and the benchmarks. *)
let float_allowed_dirs = [ "lib/stats/"; "bench/" ]
let float_allowed_files = [ "lib/experiments/report.ml" ]

(* Ambient clocks/PRNGs would break [Rng.of_path] replayability
   everywhere except the benchmarks. *)
let nondet_allowed_dirs = [ "bench/" ]

(* Raw OCaml 5 concurrency primitives are sanctioned only inside the
   fork-join layer; everywhere else they bypass the determinism
   contract Parallel enforces. *)
let domain_prim_allowed_dirs = [ "lib/parallel/" ]

(* Wall-clock reads are measurement, and measurement lives in bench/;
   lib/experiments/scaling.ml is the documented allowlist exception. *)
let wall_clock_allowed_dirs = [ "bench/" ]

(* Top-level mutable state is the canonical cross-domain race; only
   library modules are scoped (bin/ drivers parse CLI flags into refs,
   which never cross a domain). *)
let top_mutable_scoped_dirs = [ "lib/" ]

let default_rules path =
  let path = normalize_path path in
  let in_any dirs = List.exists (fun d -> has_prefix ~prefix:d path) dirs in
  List.concat
    [
      (if in_any poly_scoped_dirs then [ Poly ] else []);
      (if in_any float_allowed_dirs || List.mem path float_allowed_files then []
       else [ Float_op ]);
      (if in_any nondet_allowed_dirs then [] else [ Nondet ]);
      [ Unprotected_io ];
      [ Capture ];
      (if in_any domain_prim_allowed_dirs then [] else [ Domain_prim ]);
      (if in_any top_mutable_scoped_dirs then [ Top_mutable ] else []);
      (if in_any wall_clock_allowed_dirs then [] else [ Wall_clock ]);
    ]

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                *)

let substring_index s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

(* [allow_rules_on_line l] is [None] when the line carries no
   suppression comment, [Some []] for a bare [(* lint: allow *)]
   (silences every rule) and [Some rules] for a rule-qualified one. *)
let allow_rules_on_line line =
  match substring_index line "lint:" with
  | None -> None
  | Some i ->
    let after = String.sub line (i + 5) (String.length line - i - 5) in
    let after = String.trim after in
    if not (has_prefix ~prefix:"allow" after) then None
    else begin
      let rest = String.sub after 5 (String.length after - 5) in
      let rest =
        match substring_index rest "*)" with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      let tokens =
        String.split_on_char ' ' rest
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      in
      Some (List.filter_map rule_of_string tokens)
    end

(* ------------------------------------------------------------------ *)
(* The AST pass                                                        *)

open Parsetree

(* Roots of the exact numeric tower as seen from call sites. *)
let numeric_modules = [ "Rational"; "Bigint"; "Bignat"; "Qvec"; "Qmat"; "Simplex"; "Numeric" ]

(* Functions of those modules that do NOT return a tower value, so a
   [=] whose operand heads here compares ints/bools/strings and is
   fine.  Untyped heuristic: err on the quiet side. *)
let non_tower_returning =
  [
    "compare"; "equal"; "hash"; "sign"; "is_zero"; "is_one"; "is_integer"; "is_native";
    "is_distribution"; "is_positive_distribution"; "to_int_opt"; "to_int_exn"; "to_float";
    "to_string"; "to_decimal_string"; "num_limbs"; "num_bits"; "size"; "dim"; "rows"; "cols";
    "min_index"; "max_index"; "pp";
  ]

let rec head_longident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some txt
  | Pexp_apply (f, _) -> head_longident f
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> head_longident e
  | _ -> None

let operand_is_tower_value e =
  match head_longident e with
  | None -> false
  | Some li ->
    (match Longident.flatten li with
     | root :: (_ :: _ as rest) when List.mem root numeric_modules ->
       let last = List.nth rest (List.length rest - 1) in
       not (List.mem last non_tower_returning)
     | _ -> false)

let channel_openers =
  [ "open_in"; "open_in_bin"; "open_in_gen"; "open_out"; "open_out_bin"; "open_out_gen" ]

let float_operators = [ "+."; "-."; "*."; "/."; "**" ]

let lint_structure ~rules ~path structure =
  let findings = ref [] in
  let has r = List.mem r rules in
  let in_parallel = has_prefix ~prefix:"lib/parallel/" (normalize_path path) in
  let report rule loc msg =
    let p = loc.Location.loc_start in
    findings :=
      {
        file = normalize_path path;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        message = msg;
        suppressed = false;
      }
      :: !findings
  in
  (* Bare [compare] in a file that binds its own [compare] anywhere
     (top level or in a submodule — the numeric modules do) refers to
     the monomorphic local one; only flag it in files that never bind
     the name.  Over-approximates scope, which errs on the quiet
     side for an untyped pass. *)
  let file_defines name =
    let found = ref false in
    let super = Ast_iterator.default_iterator in
    let value_binding self vb =
      (match vb.pvb_pat.ppat_desc with
       | Ppat_var { txt; _ } when txt = name -> found := true
       | _ -> ());
      super.value_binding self vb
    in
    let it = { super with value_binding } in
    List.iter (fun item -> it.structure_item it item) structure;
    !found
  in
  let local_compare = file_defines "compare" in
  (* R4 bookkeeping: candidate open_* sites per top-level item, and the
     set of items that mention Fun.protect anywhere. *)
  let item_index = ref (-1) in
  let protected_items = Hashtbl.create 16 in
  let r4_pending = ref [] in
  let check_ident li loc =
    let raw = Longident.flatten li in
    let qualified_stdlib = match raw with "Stdlib" :: _ -> true | _ -> false in
    let parts = match raw with "Stdlib" :: rest -> rest | parts -> parts in
    (* R1: polymorphic compare / hash / Hashtbl *)
    (match parts with
     | [ "compare" ] when has Poly && (qualified_stdlib || not local_compare) ->
       report Poly loc
         "polymorphic compare on unknown types; use the module's typed compare \
          (Rational.compare, Int.compare, ...)"
     | [ ("=" | "<>" | "<" | "<=" | ">" | ">=") as op ] when has Poly && qualified_stdlib ->
       report Poly loc
         (Printf.sprintf
            "explicitly polymorphic Stdlib.( %s ); use the typed equality/order of the operand \
             type" op)
     | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] when has Poly ->
       report Poly loc
         "Hashtbl.hash is representation-polymorphic (and truncates big structures); hash \
          canonical contents explicitly (Rational.hash, Bignat.hash, ...)"
     | [ "Hashtbl"; f ] when has Poly && f.[0] >= 'a' && f.[0] <= 'z' ->
       report Poly loc
         (Printf.sprintf
            "polymorphic Hashtbl.%s keys with Hashtbl.hash/compare; use Hashtbl.Make with \
             explicit equal/hash" f)
     | _ -> ());
    (* R2: float operators and the Float module *)
    (match parts with
     | [ op ] when has Float_op && List.mem op float_operators ->
       report Float_op loc (Printf.sprintf "float operator ( %s ) outside the float-permitted modules" op)
     | "Float" :: _ :: _ when has Float_op ->
       report Float_op loc "Float module operation outside the float-permitted modules"
     | _ -> ());
    (* R3: ambient nondeterminism *)
    (match parts with
     | "Random" :: _ :: _ when has Nondet ->
       report Nondet loc
         "ambient Stdlib.Random breaks Rng.of_path determinism; draw from an explicit Prng.Rng \
          stream"
     | [ "Sys"; "time" ] when has Nondet ->
       report Nondet loc "Sys.time is nondeterministic; confine timing to bench/"
     | [ "Unix"; "gettimeofday" ] when has Nondet ->
       report Nondet loc "Unix.gettimeofday is nondeterministic; confine timing to bench/"
     | [ "Unix"; "time" ] when has Nondet ->
       report Nondet loc "Unix.time is nondeterministic; confine timing to bench/"
     | [ "Domain"; "self" ] when has Nondet && not in_parallel ->
       report Nondet loc
         "Domain.self depends on runtime scheduling; only lib/parallel may observe domain \
          identity"
     | _ -> ());
    (* R4: channel opens, resolved per top-level item afterwards *)
    (match parts with
     | [ f ] when has Unprotected_io && List.mem f channel_openers ->
       r4_pending :=
         ( !item_index,
           loc,
           Printf.sprintf
             "%s with no Fun.protect in the same top-level binding; wrap it so the channel \
              closes when reading raises" f )
         :: !r4_pending
     | [ ("In_channel" | "Out_channel") as m; f ]
       when has Unprotected_io && has_prefix ~prefix:"open_" f ->
       r4_pending :=
         ( !item_index,
           loc,
           Printf.sprintf
             "%s.%s with no Fun.protect in the same top-level binding; wrap it so the channel \
              closes when reading raises" m f )
         :: !r4_pending
     | [ "Fun"; "protect" ] -> Hashtbl.replace protected_items !item_index ()
     | _ -> ())
  in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
     | Pexp_constant (Pconst_float _) when has Float_op ->
       report Float_op e.pexp_loc "float literal outside the float-permitted modules"
     | Pexp_ident { txt; loc } -> check_ident txt loc
     | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc }; _ }, args)
       when has Poly ->
       if List.exists (fun (_, a) -> operand_is_tower_value a) args then
         report Poly loc
           (Printf.sprintf
              "polymorphic ( %s ) on a numeric-tower value; use Rational.equal / Bigint.equal \
               / ..." op)
     | _ -> ());
    super.expr self e
  in
  let pat self p =
    (match p.ppat_desc with
     | Ppat_constant (Pconst_float _) when has Float_op ->
       report Float_op p.ppat_loc "float literal pattern outside the float-permitted modules"
     | _ -> ());
    super.pat self p
  in
  let iterator = { super with expr; pat } in
  List.iteri
    (fun i item ->
      item_index := i;
      iterator.structure_item iterator item)
    structure;
  List.iter
    (fun (item, loc, msg) ->
      if not (Hashtbl.mem protected_items item) then report Unprotected_io loc msg)
    !r4_pending;
  !findings

(* Per-site suppression: an allow comment on the finding's line or the
   line directly above.  Shared by this pass and [Domain_core]'s, so
   every rule family obeys the same comment forms. *)
let mark_suppressions content_lines findings =
  let line_text l =
    if l >= 1 && l <= Array.length content_lines then Some content_lines.(l - 1) else None
  in
  let allow_at l = match line_text l with None -> None | Some s -> allow_rules_on_line s in
  (* The line-above form only counts when the comment stands alone on
     its line; a trailing comment suppresses its own line only. *)
  let allow_above l =
    match line_text l with
    | Some s when has_prefix ~prefix:"(*" (String.trim s) -> allow_rules_on_line s
    | Some _ | None -> None
  in
  let is_suppressed f =
    let covers = function None -> false | Some [] -> true | Some rs -> List.mem f.rule rs in
    covers (allow_at f.line) || covers (allow_above (f.line - 1))
  in
  findings
  |> List.map (fun f -> { f with suppressed = is_suppressed f })
  |> List.sort (fun a b ->
         match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)

let parse_source ~path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let content_lines content = Array.of_list (String.split_on_char '\n' content)

let lint_source ~rules ~path content =
  let structure = parse_source ~path content in
  mark_suppressions (content_lines content) (lint_structure ~rules ~path structure)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ~rules path = lint_source ~rules ~path (read_file path)

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)

type allowlist_entry = { al_rule : rule option; al_path : string }

let parse_allowlist content =
  String.split_on_char '\n' content
  |> List.concat_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> "")
         with
         | [] -> []
         | [ rule_tok; path ] ->
           let al_rule =
             if rule_tok = "*" then None
             else
               match rule_of_string rule_tok with
               | Some r -> Some r
               | None -> failwith (Printf.sprintf "allowlist: unknown rule %S" rule_tok)
           in
           [ { al_rule; al_path = normalize_path path } ]
         | _ -> failwith (Printf.sprintf "allowlist: malformed line %S (want: <rule> <path>)" line))

let load_allowlist path = parse_allowlist (read_file path)

let entry_matches entry f =
  (match entry.al_rule with None -> true | Some r -> r = f.rule)
  &&
  let p = entry.al_path in
  if String.length p > 0 && p.[String.length p - 1] = '/' then has_prefix ~prefix:p f.file
  else p = f.file

let apply_allowlist entries findings =
  List.map
    (fun f ->
      if f.suppressed then f
      else { f with suppressed = List.exists (fun e -> entry_matches e f) entries })
    findings
