(** Domain-safety lint: rules D1–D4 over untyped parse trees (see
    DESIGN.md §15 "Domain-safety contract").

    - [Capture] (D1): closures passed to the parallel entry points
      ([Parallel.map]/[map_array]/[reduce]/[fork_join], [View.fold],
      [Load_dist.apply], [Engine.sweep]/[map_tasks]/[fold_tasks]) must
      not capture mutable state bound outside the closure, nor mutate
      anything they captured.
    - [Domain_prim] (D2): raw [Domain]/[Atomic]/[Mutex]/[Condition]/
      [Semaphore] primitives outside lib/parallel.
    - [Top_mutable] (D3): top-level mutable state in lib/ modules.
    - [Wall_clock] (D4): wall-clock timing outside bench/.

    Best-effort and syntactic, like {!Lint_core}: unknown constructs
    are trusted, so the pass may miss races but does not cry wolf. *)

(** [lint_structure ~rules ~path structure] is the raw D1–D4 pass:
    findings in discovery order, suppressions NOT yet marked.  Rules
    outside D1–D4 in [rules] are ignored. *)
val lint_structure :
  rules:Lint_core.rule list -> path:string -> Parsetree.structure -> Lint_core.finding list

(** [lint_source ~rules ~path content] parses [content] once and runs
    BOTH passes — {!Lint_core.lint_structure} (R1–R4) and D1–D4 —
    returning merged findings sorted by position with per-site
    [(* lint: allow ... *)] suppressions marked.
    @raise Syntaxerr.Error when the source does not parse. *)
val lint_source : rules:Lint_core.rule list -> path:string -> string -> Lint_core.finding list

(** [lint_file ~rules path] is {!lint_source} on the file's contents. *)
val lint_file : rules:Lint_core.rule list -> string -> Lint_core.finding list
