(* Domain-safety lint for the selfish_routing tree: rules D1-D4.

   The determinism contract — results bit-identical for any
   [--domains] — holds because every closure shipped to a worker
   domain is pure with respect to shared state: it builds its own
   views, tables and accumulators, and the only cross-domain
   communication is the fork-join result array.  Nothing in the
   compiler enforces that, so this pass encodes it syntactically, in
   the same untyped best-effort style as [Lint_core] (DESIGN §15):

     D1 (capture) closures passed to the parallel entry points
                  ([Parallel.map]/[map_array]/[reduce]/[fork_join],
                  and the [?domains] entry points [View.fold],
                  [Load_dist.apply], [Engine.sweep]/[map_tasks]/
                  [fold_tasks]) must not capture identifiers bound
                  outside the closure to mutable constructs ([ref],
                  [Hashtbl]/[Buffer]/[Queue]/[Stack] values — incl.
                  project-local [Hashtbl.Make] functor instances —
                  [View]/[Cview] cursors, arrays that the file
                  mutates), and must not themselves mutate anything
                  they captured.
     D2 (domain)  [Domain]/[Atomic]/[Mutex]/[Condition]/[Semaphore]
                  primitives are forbidden outside lib/parallel: the
                  fork-join layer is the only sanctioned concurrency
                  surface.
     D3 (global)  no top-level mutable state ([let r = ref …],
                  top-level [Hashtbl.create]/[Buffer.create]/array
                  bindings) in lib/ modules outside the documented
                  allowlist — a hidden global cache is the canonical
                  cross-domain race.
     D4 (clock)   wall-clock reads ([Unix.gettimeofday], [Unix.time],
                  [Sys.time]) are confined to bench/.

   Scope tracking is deliberately simple: let-bindings are classified
   by the syntactic head of their right-hand side, closure-local
   bindings shadow, and anything the pass cannot see (function
   parameters of unknown type, values returned by unknown calls) is
   trusted — the pass errs on the quiet side, like R1-R4.  Findings
   reuse [Lint_core]'s type, suppression comments and allowlist. *)

open Parsetree
open Lint_core

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let normalize_path p =
  if has_prefix ~prefix:"./" p then String.sub p 2 (String.length p - 2) else p

(* ------------------------------------------------------------------ *)
(* Identifier heads                                                    *)

let rec head_longident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some txt
  | Pexp_apply (f, _) -> head_longident f
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> head_longident e
  | Pexp_open (_, e) -> head_longident e
  | _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let last2 parts =
  match List.rev parts with f :: m :: _ -> Some (m, f) | _ -> None

(* ------------------------------------------------------------------ *)
(* D1 policy: which arguments of which entry points run on workers.    *)

(* Argument labels whose closures execute on worker domains ("" is the
   unlabelled position).  [View.fold]'s ~combine and [Engine.sweep]'s
   ~reduce fold shard results serially in the calling domain, so they
   are deliberately not scanned; [Parallel.reduce]'s ~combine runs in
   the per-worker folds and is. *)
let entry_policy =
  [
    (("Parallel", "map"), [ "" ]);
    (("Parallel", "map_array"), [ "" ]);
    (("Parallel", "reduce"), [ ""; "combine" ]);
    (("Parallel", "fork_join"), [ "" ]);
    (("View", "fold"), [ "f" ]);
    (("Load_dist", "apply"), [ "" ]);
    (("Engine", "sweep"), [ "task" ]);
    (("Engine", "map_tasks"), [ "" ]);
    (("Engine", "fold_tasks"), [ "task" ]);
  ]

let entry_of fn =
  match head_longident fn with
  | None -> None
  | Some li ->
    (match last2 (strip_stdlib (Longident.flatten li)) with
     | Some ((m, f) as key) ->
       (match List.assoc_opt key entry_policy with
        | Some labels -> Some (m ^ "." ^ f, labels)
        | None -> None)
     | None -> None)

let label_matches labels = function
  | Asttypes.Nolabel -> List.mem "" labels
  | Asttypes.Labelled l | Asttypes.Optional l -> List.mem l labels

(* ------------------------------------------------------------------ *)
(* Mutable-construct classification                                    *)

let container_modules = [ "Hashtbl"; "Buffer"; "Queue"; "Stack" ]

(* Mutating functions of those containers, used both to detect writes
   through captured names and to mark names as mutated for the weak
   (array) classification. *)
let container_mutators =
  [
    "replace"; "add"; "remove"; "reset"; "clear"; "push"; "pop"; "take"; "transfer";
    "add_string"; "add_char"; "add_buffer"; "add_subbytes"; "filter_map_inplace"; "truncate";
  ]

(* Constructors returning records with mutable fields that must stay
   domain-local (matched on the last two path components, so
   [Model.View.of_profile] counts too). *)
let cursor_constructors =
  [
    (("View", "of_profile"), "a View cursor (mutable load state)");
    (("Cview", "of_profile"), "a Cview cursor (mutable load state)");
  ]

type mutability =
  | Strong of string  (* mutable whatever happens: ref, Hashtbl.create, … *)
  | Weak of string  (* an array: racy only when something in the file writes it *)

let rec classify ~ht_modules e =
  match e.pexp_desc with
  | Pexp_array _ -> Some (Weak "an array literal")
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> classify ~ht_modules e
  (* Only applications construct: a bare [let init = Array.init] is a
     function alias, not a fresh array. *)
  | Pexp_apply _ ->
    (match head_longident e with
     | None -> None
     | Some li ->
       let parts = strip_stdlib (Longident.flatten li) in
       (match parts with
        | [ "ref" ] -> Some (Strong "a ref cell")
        | [ m; "create" ] when List.mem m container_modules || List.mem m !ht_modules ->
          Some (Strong (m ^ ".create"))
        | [ "Atomic"; "make" ] -> Some (Strong "an Atomic.t")
        | [ "Array"; ("make" | "init" | "create_float" | "of_list" | "of_seq") ]
        | [ "Bytes"; ("make" | "create" | "init") ] ->
          Some (Weak "a fresh array")
        | _ ->
          (match last2 parts with
           | Some key ->
             (match List.assoc_opt key cursor_constructors with
              | Some reason -> Some (Strong reason)
              | None -> None)
           | None -> None)))
  | _ -> None

(* [mutation_target ~ht_modules e] is [Some (name, how)] when [e]
   syntactically writes through the value bound to [name]:
   [name := …], [incr]/[decr], [name.(i) <- …] (the parser desugars
   index assignment to [Array.set]), [name.field <- …], or a mutating
   container operation with [name] as its first argument. *)
let mutation_target ~ht_modules e =
  match e.pexp_desc with
  | Pexp_setfield ({ pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ }, _, _) ->
    Some (x, "field assignment")
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    let first_ident () =
      match args with
      | (_, { pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ }) :: _ -> Some x
      | _ -> None
    in
    (match strip_stdlib (Longident.flatten txt) with
     | [ ":=" ] | [ "incr" ] | [ "decr" ] ->
       (match first_ident () with Some x -> Some (x, "ref assignment") | None -> None)
     | [ ("Array" | "Bytes"); ("set" | "unsafe_set" | "fill" | "blit") ] ->
       (match first_ident () with Some x -> Some (x, "array write") | None -> None)
     | [ m; f ]
       when (List.mem m container_modules || List.mem m !ht_modules)
            && List.mem f container_mutators ->
       (match first_ident () with Some x -> Some (x, m ^ "." ^ f) | None -> None)
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pre-passes: local Hashtbl.Make instances, names written anywhere.   *)

let collect_ht_modules structure =
  let mods = ref [] in
  let super = Ast_iterator.default_iterator in
  let module_binding self mb =
    (match mb.pmb_name.txt, mb.pmb_expr.pmod_desc with
     | Some name, Pmod_apply ({ pmod_desc = Pmod_ident { txt; _ }; _ }, _)
       when (match Longident.flatten txt with
             | [ "Hashtbl"; ("Make" | "MakeSeeded") ] -> true
             | _ -> false) ->
       mods := name :: !mods
     | _ -> ());
    super.module_binding self mb
  in
  let it = { super with module_binding } in
  List.iter (fun item -> it.structure_item it item) structure;
  mods

let collect_mutated ~ht_modules structure =
  let tbl = Hashtbl.create 16 in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    (match mutation_target ~ht_modules e with
     | Some (x, _) -> Hashtbl.replace tbl x ()
     | None -> ());
    super.expr self e
  in
  let it = { super with expr } in
  List.iter (fun item -> it.structure_item it item) structure;
  tbl

(* ------------------------------------------------------------------ *)
(* Scope-tracking walk                                                 *)

type env = {
  muts : (string * mutability) list;  (* mutable-bound names in scope *)
  funs : (string * expression) list;  (* let-bound functions, for by-name closure args *)
}

let pattern_vars p =
  let vars = ref [] in
  let super = Ast_iterator.default_iterator in
  let pat self p =
    (match p.ppat_desc with
     | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> vars := txt :: !vars
     | _ -> ());
    super.pat self p
  in
  let it = { super with pat } in
  it.pat it p;
  !vars

let remove names env =
  {
    muts = List.filter (fun (x, _) -> not (List.mem x names)) env.muts;
    funs = List.filter (fun (x, _) -> not (List.mem x names)) env.funs;
  }

let is_function e =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

(* Rebinding a name forgets whatever it meant before; a var binding
   then records what the new right-hand side constructs. *)
let bind ~ht_modules env vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = x; _ }
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt = x; _ }; _ }, _) ->
    let env = remove [ x ] env in
    let env =
      match classify ~ht_modules vb.pvb_expr with
      | Some m -> { env with muts = (x, m) :: env.muts }
      | None -> env
    in
    if is_function vb.pvb_expr then { env with funs = (x, vb.pvb_expr) :: env.funs } else env
  | _ -> remove (pattern_vars vb.pvb_pat) env

let lint_structure ~rules ~path structure =
  let has r = List.mem r rules in
  let findings = ref [] in
  let report rule loc msg =
    let p = loc.Location.loc_start in
    findings :=
      {
        file = normalize_path path;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        message = msg;
        suppressed = false;
      }
      :: !findings
  in
  let ht_modules = collect_ht_modules structure in
  let file_mutated = collect_mutated ~ht_modules structure in
  (* D2/D4: plain identifier rules, checked on every expression. *)
  let check_ident li loc =
    let parts = strip_stdlib (Longident.flatten li) in
    (match parts with
     | ("Domain" | "Atomic" | "Mutex" | "Condition" | "Semaphore") :: _ :: _
       when has Domain_prim ->
       report Domain_prim loc
         (Printf.sprintf
            "raw %s primitive outside lib/parallel; route concurrency through the Parallel \
             fork-join layer so determinism stays auditable"
            (List.hd parts))
     | _ -> ());
    match parts with
    | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] when has Wall_clock ->
      report Wall_clock loc
        (Printf.sprintf "wall-clock read %s outside bench/; timing belongs to the benchmark \
                         harness" (String.concat "." parts))
    | _ -> ()
  in
  (* D1: scan one closure that will run on worker domains.  [locals]
     are names bound inside the closure (parameters, lets, cases) —
     everything else it mentions is captured. *)
  let scan_closure entry env closure =
    let reported = Hashtbl.create 4 in
    let once x f =
      if not (Hashtbl.mem reported x) then begin
        Hashtbl.add reported x ();
        f ()
      end
    in
    let rec go locals e =
      (match mutation_target ~ht_modules e with
       | Some (x, how) when not (List.mem x locals) ->
         once x (fun () ->
             report Capture e.pexp_loc
               (Printf.sprintf
                  "closure passed to %s mutates captured '%s' (%s); cross-domain writes race — \
                   accumulate into worker-local state and merge the results"
                  entry x how))
       | _ -> ());
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; loc } when not (List.mem x locals) ->
        (match List.assoc_opt x env.muts with
         | Some (Strong reason) ->
           once x (fun () ->
               report Capture loc
                 (Printf.sprintf
                    "closure passed to %s captures '%s', bound outside the closure to %s; \
                     shared mutable state races across domains — build it inside the worker \
                     instead"
                    entry x reason))
         | Some (Weak reason) when Hashtbl.mem file_mutated x ->
           once x (fun () ->
               report Capture loc
                 (Printf.sprintf
                    "closure passed to %s captures '%s' (%s that this file mutates); shared \
                     array writes race across domains"
                    entry x reason))
         | Some (Weak _) | None -> ())
      | Pexp_ident _ -> ()
      | Pexp_fun (_, default, pat, body) ->
        Option.iter (go locals) default;
        go (pattern_vars pat @ locals) body
      | Pexp_function cases -> List.iter (case locals) cases
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go locals scrut;
        List.iter (case locals) cases
      | Pexp_let (rf, vbs, body) ->
        let bound = List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs in
        let rhs_locals = match rf with Asttypes.Recursive -> bound @ locals | _ -> locals in
        List.iter (fun vb -> go rhs_locals vb.pvb_expr) vbs;
        go (bound @ locals) body
      | Pexp_for (pat, lo, hi, _, body) ->
        go locals lo;
        go locals hi;
        go (pattern_vars pat @ locals) body
      | _ ->
        let it =
          { Ast_iterator.default_iterator with expr = (fun _ e -> go locals e) }
        in
        Ast_iterator.default_iterator.expr it e
    and case locals c =
      let locals = pattern_vars c.pc_lhs @ locals in
      Option.iter (go locals) c.pc_guard;
      go locals c.pc_rhs
    in
    go [] closure
  in
  (* The main walk threads a scope environment through expressions so
     the D1 check knows what a captured name was bound to. *)
  let rec walk_expr env e =
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } -> check_ident txt loc
     | _ -> ());
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      let env_for_rhs =
        match rf with
        | Asttypes.Recursive -> List.fold_left (bind ~ht_modules) env vbs
        | _ -> env
      in
      List.iter (fun vb -> walk_expr env_for_rhs vb.pvb_expr) vbs;
      walk_expr (List.fold_left (bind ~ht_modules) env vbs) body
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (walk_expr env) default;
      walk_expr (remove (pattern_vars pat) env) body
    | Pexp_function cases -> List.iter (walk_case env) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk_expr env scrut;
      List.iter (walk_case env) cases
    | Pexp_for (pat, lo, hi, _, body) ->
      walk_expr env lo;
      walk_expr env hi;
      walk_expr (remove (pattern_vars pat) env) body
    | Pexp_apply (fn, args) ->
      (if has Capture then
         match entry_of fn with
         | Some (entry, labels) ->
           List.iter
             (fun (lbl, arg) ->
               if label_matches labels lbl then
                 match arg.pexp_desc with
                 | Pexp_fun _ | Pexp_function _ -> scan_closure entry env arg
                 | Pexp_ident { txt = Longident.Lident f; _ } ->
                   (match List.assoc_opt f env.funs with
                    | Some body -> scan_closure entry env body
                    | None -> ())
                 | _ -> ())
             args
         | None -> ());
      walk_expr env fn;
      List.iter (fun (_, a) -> walk_expr env a) args
    | _ ->
      (* Forms that introduce no value bindings: iterate children with
         the same environment. *)
      let it = { Ast_iterator.default_iterator with expr = (fun _ e -> walk_expr env e) } in
      Ast_iterator.default_iterator.expr it e
  and walk_case env c =
    let env = remove (pattern_vars c.pc_lhs) env in
    Option.iter (walk_expr env) c.pc_guard;
    walk_expr env c.pc_rhs
  in
  let rec walk_item env item =
    match item.pstr_desc with
    | Pstr_value (rf, vbs) ->
      if has Top_mutable then
        List.iter
          (fun vb ->
            let written_in_file () =
              (* A top-level array nothing in the module writes is a
                 constant; only flag arrays the file mutates. *)
              match pattern_vars vb.pvb_pat with
              | [ x ] -> Hashtbl.mem file_mutated x
              | _ -> false
            in
            match classify ~ht_modules vb.pvb_expr with
            | Some (Strong reason) ->
              report Top_mutable vb.pvb_loc
                (Printf.sprintf
                   "top-level mutable state (%s) is shared by every domain; thread it through \
                    arguments, or allowlist this module if the sharing is the design"
                   reason)
            | Some (Weak reason) when written_in_file () ->
              report Top_mutable vb.pvb_loc
                (Printf.sprintf
                   "top-level binding of %s that this module mutates is shared state across \
                    domains; thread it through arguments or allowlist this module"
                   reason)
            | Some (Weak _) | None -> ())
          vbs;
      let env_for_rhs =
        match rf with
        | Asttypes.Recursive -> List.fold_left (bind ~ht_modules) env vbs
        | _ -> env
      in
      List.iter (fun vb -> walk_expr env_for_rhs vb.pvb_expr) vbs;
      List.fold_left (bind ~ht_modules) env vbs
    | Pstr_eval (e, _) ->
      walk_expr env e;
      env
    | Pstr_module { pmb_expr; _ } ->
      walk_module env pmb_expr;
      env
    | Pstr_recmodule mbs ->
      List.iter (fun mb -> walk_module env mb.pmb_expr) mbs;
      env
    | Pstr_include { pincl_mod; _ } ->
      walk_module env pincl_mod;
      env
    | _ -> env
  and walk_module env me =
    match me.pmod_desc with
    | Pmod_structure items -> ignore (List.fold_left walk_item env items)
    | Pmod_functor (_, body) -> walk_module env body
    | Pmod_apply (f, a) ->
      walk_module env f;
      walk_module env a
    | Pmod_constraint (me, _) -> walk_module env me
    | Pmod_unpack e -> walk_expr env e
    | _ -> ()
  in
  ignore (List.fold_left walk_item { muts = []; funs = [] } structure);
  !findings

(* ------------------------------------------------------------------ *)
(* Combined entry points: R1-R4 + D1-D4 on one parse.                  *)

let lint_source ~rules ~path content =
  let structure = Lint_core.parse_source ~path content in
  let r_findings = Lint_core.lint_structure ~rules ~path structure in
  let d_findings = lint_structure ~rules ~path structure in
  Lint_core.mark_suppressions (Lint_core.content_lines content) (r_findings @ d_findings)

let lint_file ~rules path = lint_source ~rules ~path (Lint_core.read_file path)
