(* CLI driver for the exactness + domain-safety lint (R1-R4, D1-D4).

     lint [--allowlist FILE] [--json FILE] [--show-suppressed] PATH...

   Walks every .ml under the given paths (skipping _build and dot
   directories), applies the repo scoping policy from
   [Lint_core.default_rules], prints human-readable findings and an
   optional machine-readable JSON summary, and exits 1 when any
   unsuppressed finding remains (2 on parse/usage errors). *)

let usage () =
  prerr_endline "usage: lint [--allowlist FILE] [--json FILE] [--show-suppressed] PATH...";
  exit 2

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
           else walk acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~files_scanned findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let count pred = List.length (List.filter pred findings) in
      let per_rule suppressed =
        String.concat ", "
          (List.map
             (fun r ->
               Printf.sprintf "\"%s\": %d" (Lint_core.rule_id r)
                 (count (fun f -> f.Lint_core.rule = r && f.Lint_core.suppressed = suppressed)))
             Lint_core.all_rules)
      in
      Printf.fprintf oc "{\n  \"schema\": \"exactness-lint/2\",\n";
      Printf.fprintf oc "  \"files_scanned\": %d,\n" files_scanned;
      Printf.fprintf oc "  \"unsuppressed\": %d,\n" (count (fun f -> not f.Lint_core.suppressed));
      Printf.fprintf oc "  \"suppressed\": %d,\n" (count (fun f -> f.Lint_core.suppressed));
      Printf.fprintf oc "  \"counts\": {%s},\n" (per_rule false);
      Printf.fprintf oc "  \"suppressed_counts\": {%s},\n" (per_rule true);
      Printf.fprintf oc "  \"findings\": [\n";
      List.iteri
        (fun i f ->
          Printf.fprintf oc
            "    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"name\": \
             \"%s\", \"suppressed\": %b, \"message\": \"%s\"}%s\n"
            (json_escape f.Lint_core.file) f.Lint_core.line f.Lint_core.col
            (Lint_core.rule_id f.Lint_core.rule)
            (Lint_core.rule_mnemonic f.Lint_core.rule)
            f.Lint_core.suppressed
            (json_escape f.Lint_core.message)
            (if i = List.length findings - 1 then "" else ","))
        findings;
      Printf.fprintf oc "  ]\n}\n")

let () =
  let allowlist = ref [] in
  let json_out = ref None in
  let show_suppressed = ref false in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--allowlist" :: file :: rest ->
      (allowlist := try Lint_core.load_allowlist file with Failure m -> prerr_endline m; exit 2);
      parse_args rest
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse_args rest
    | "--show-suppressed" :: rest ->
      show_suppressed := true;
      parse_args rest
    | ("--allowlist" | "--json") :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | path :: rest ->
      paths := path :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files = List.fold_left walk [] (List.rev !paths) |> List.sort String.compare in
  let errors = ref 0 in
  let findings =
    List.concat_map
      (fun file ->
        let rules = Lint_core.default_rules file in
        if rules = [] then []
        else
          try Lint_core.apply_allowlist !allowlist (Domain_core.lint_file ~rules file) with
          | Syntaxerr.Error _ ->
            incr errors;
            Printf.eprintf "%s: syntax error, cannot lint\n" file;
            []
          | Sys_error m ->
            incr errors;
            Printf.eprintf "%s\n" m;
            [])
      files
  in
  List.iter
    (fun f ->
      if (not f.Lint_core.suppressed) || !show_suppressed then
        Printf.printf "%s:%d:%d: [%s %s]%s %s\n" f.Lint_core.file f.Lint_core.line
          f.Lint_core.col
          (Lint_core.rule_id f.Lint_core.rule)
          (Lint_core.rule_mnemonic f.Lint_core.rule)
          (if f.Lint_core.suppressed then " (suppressed)" else "")
          f.Lint_core.message)
    findings;
  let unsuppressed = List.length (List.filter (fun f -> not f.Lint_core.suppressed) findings) in
  let suppressed = List.length findings - unsuppressed in
  (match !json_out with
   | Some path -> write_json path ~files_scanned:(List.length files) findings
   | None -> ());
  Printf.printf "lint: %d files, %d finding%s (%d suppressed)\n" (List.length files) unsuppressed
    (if unsuppressed = 1 then "" else "s")
    suppressed;
  if !errors > 0 then exit 2 else if unsuppressed > 0 then exit 1
