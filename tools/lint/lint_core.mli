(** Exactness lint: syntactic rules over untyped parse trees.

    Rules (see DESIGN.md §10 "Static guarantees"):
    - [Poly] (R1): polymorphic compare/hash/Hashtbl in numeric-scoped
      modules.
    - [Float_op] (R2): float literals/operators/[Float.*] outside the
      float-permitted modules.
    - [Nondet] (R3): ambient [Random]/[Sys.time]/[Unix.gettimeofday].
    - [Unprotected_io] (R4): channel opens with no [Fun.protect] in
      the same top-level binding. *)

type rule = Poly | Float_op | Nondet | Unprotected_io

val all_rules : rule list

(** [rule_id r] is the stable identifier ("R1".."R4"). *)
val rule_id : rule -> string

(** [rule_mnemonic r] is the short name accepted in allow comments
    ("poly", "float", "nondet", "io"). *)
val rule_mnemonic : rule -> string

(** [rule_of_string s] accepts ids and mnemonics, case-insensitive. *)
val rule_of_string : string -> rule option

type finding = {
  file : string;  (** normalized path as given to the linter *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : rule;
  message : string;
  suppressed : bool;  (** silenced by an allow comment or allowlist *)
}

(** [default_rules path] is the repo scoping policy: which rules apply
    to [path] (relative to the repo root). *)
val default_rules : string -> rule list

(** [lint_source ~rules ~path content] parses [content] as an
    implementation file and returns findings sorted by position, with
    per-site [(* lint: allow ... *)] suppressions already marked.
    @raise Syntaxerr.Error when the source does not parse. *)
val lint_source : rules:rule list -> path:string -> string -> finding list

(** [lint_file ~rules path] is [lint_source] on the file's contents. *)
val lint_file : rules:rule list -> string -> finding list

type allowlist_entry = { al_rule : rule option; al_path : string }

(** [load_allowlist path] parses lines of [<rule> <path>] ([#]
    comments allowed); rule [*] matches every rule, a path ending in
    [/] matches the whole subtree. @raise Failure on malformed input. *)
val load_allowlist : string -> allowlist_entry list

val parse_allowlist : string -> allowlist_entry list

(** [apply_allowlist entries findings] marks matching findings
    suppressed (never unsuppresses). *)
val apply_allowlist : allowlist_entry list -> finding list -> finding list
