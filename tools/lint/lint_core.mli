(** Exactness lint: syntactic rules over untyped parse trees.

    Rules (see DESIGN.md §10 "Static guarantees" and §15 "Domain-safety
    contract"):
    - [Poly] (R1): polymorphic compare/hash/Hashtbl in numeric-scoped
      modules.
    - [Float_op] (R2): float literals/operators/[Float.*] outside the
      float-permitted modules.
    - [Nondet] (R3): ambient [Random]/[Sys.time]/[Unix.time]/
      [Unix.gettimeofday], and [Domain.self] outside [lib/parallel].
    - [Unprotected_io] (R4): channel opens with no [Fun.protect] in
      the same top-level binding.
    - [Capture] (D1): closures shipped to worker domains capturing (or
      mutating) shared mutable state — analysis in {!Domain_core}.
    - [Domain_prim] (D2): raw [Domain]/[Atomic]/[Mutex]/[Condition]
      primitives outside [lib/parallel] — analysis in {!Domain_core}.
    - [Top_mutable] (D3): top-level mutable state in [lib/] modules —
      analysis in {!Domain_core}.
    - [Wall_clock] (D4): wall-clock timing outside [bench/] — analysis
      in {!Domain_core}.

    This module's own pass implements R1–R4 only; use
    {!Domain_core.lint_file} for the combined R+D pass. *)

type rule =
  | Poly
  | Float_op
  | Nondet
  | Unprotected_io
  | Capture
  | Domain_prim
  | Top_mutable
  | Wall_clock

val all_rules : rule list

(** [rule_id r] is the stable identifier ("R1".."R4", "D1".."D4"). *)
val rule_id : rule -> string

(** [rule_mnemonic r] is the short name accepted in allow comments
    ("poly", "float", "nondet", "io", "capture", "domain", "global",
    "clock"). *)
val rule_mnemonic : rule -> string

(** [rule_of_string s] accepts ids and mnemonics, case-insensitive. *)
val rule_of_string : string -> rule option

type finding = {
  file : string;  (** normalized path as given to the linter *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : rule;
  message : string;
  suppressed : bool;  (** silenced by an allow comment or allowlist *)
}

(** [default_rules path] is the repo scoping policy: which rules apply
    to [path] (relative to the repo root). *)
val default_rules : string -> rule list

(** [lint_structure ~rules ~path structure] is the raw R1–R4 pass over
    a parsed implementation: findings in discovery order, suppressions
    NOT yet marked.  Compose with {!mark_suppressions}. *)
val lint_structure : rules:rule list -> path:string -> Parsetree.structure -> finding list

(** [mark_suppressions lines findings] marks findings silenced by a
    per-site [(* lint: allow ... *)] comment (same line, or standing
    alone on the line above) and sorts by position. *)
val mark_suppressions : string array -> finding list -> finding list

(** [parse_source ~path content] parses [content] as an implementation
    file, attributing locations to [path].
    @raise Syntaxerr.Error when the source does not parse. *)
val parse_source : path:string -> string -> Parsetree.structure

(** [content_lines content] splits a source string for
    {!mark_suppressions}. *)
val content_lines : string -> string array

(** [lint_source ~rules ~path content] parses [content] as an
    implementation file and returns R1–R4 findings sorted by position,
    with per-site [(* lint: allow ... *)] suppressions already marked.
    @raise Syntaxerr.Error when the source does not parse. *)
val lint_source : rules:rule list -> path:string -> string -> finding list

(** [lint_file ~rules path] is [lint_source] on the file's contents. *)
val lint_file : rules:rule list -> string -> finding list

(** [read_file path] reads a whole file (binary-safe). *)
val read_file : string -> string

type allowlist_entry = { al_rule : rule option; al_path : string }

(** [load_allowlist path] parses lines of [<rule> <path>] ([#]
    comments allowed); rule [*] matches every rule, a path ending in
    [/] matches the whole subtree. @raise Failure on malformed input. *)
val load_allowlist : string -> allowlist_entry list

val parse_allowlist : string -> allowlist_entry list

(** [apply_allowlist entries findings] marks matching findings
    suppressed (never unsuppresses). *)
val apply_allowlist : allowlist_entry list -> finding list -> finding list
