(* Search for better-response cycles in the linear belief model — the
   tool behind the E6 negative result in EXPERIMENTS.md.

   The paper (Section 3.2) cites an unpublished instance of B. Monien
   whose state space contains a cycle.  This tool hunts for one, either
   by random sampling over integer weight/capacity grids or by
   exhaustive enumeration of a small grid.  Integer arithmetic keeps the
   improvement test exact ((L_Y + w_i)·c^X < L_X·c^Y) and fast enough
   for tens of millions of instances.

     cycle_hunt random --users 3-4 --links 3-4 --attempts 1000000
     cycle_hunt exhaustive --users 3 --links 3 --max-weight 3 --max-capacity 3 *)

open Cmdliner

(* Integer power for profile encoding: the old float [**] round-trip
   ([int_of_float (x ** y +. 0.5)]) loses exactness past 2^53 and trips
   the R2 float lint; m and n are small, so the loop never overflows. *)
let ipow b e =
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then acc * b else acc) (b * b) (e lsr 1)
  in
  go 1 b e

(* Three-colour DFS over the better-response graph of one instance;
   weights [w], capacities [c], [m] links.  Returns true iff cyclic.
   [p]/[loads] mirror the node the DFS sits at: decoded and refilled
   once per root, then maintained across edges by applying each move
   before recursing and reverting it after — the integer analogue of
   Model.View's O(1) move/undo, replacing the seed's per-node decode
   plus full load refill. *)
let has_cycle ~w ~c ~m =
  let n = Array.length w in
  let nodes = ipow m n in
  let colour = Bytes.make nodes '\000' in
  let pw = Array.init n (fun i -> ipow m i) in
  let cycle = ref false in
  let p = Array.make n 0 in
  let loads = Array.make m 0 in
  let rec dfs v =
    Bytes.set colour v '\001';
    for i = 0 to n - 1 do
      if not !cycle then begin
        let x = p.(i) in
        for y = 0 to m - 1 do
          if
            (not !cycle) && y <> x
            && (loads.(y) + w.(i)) * c.(i).(x) < loads.(x) * c.(i).(y)
          then begin
            let s = v + ((y - x) * pw.(i)) in
            match Bytes.get colour s with
            | '\000' ->
              (* Apply the move, explore, revert — [cycle] only ever
                 flips to true, so the revert is safe to run always. *)
              p.(i) <- y;
              loads.(x) <- loads.(x) - w.(i);
              loads.(y) <- loads.(y) + w.(i);
              dfs s;
              p.(i) <- x;
              loads.(y) <- loads.(y) - w.(i);
              loads.(x) <- loads.(x) + w.(i)
            | '\001' -> cycle := true
            | _ -> ()
          end
        done
      end
    done;
    if not !cycle then Bytes.set colour v '\002'
  in
  (try
     let v = ref 0 in
     while (not !cycle) && !v < nodes do
       if Bytes.get colour !v = '\000' then begin
         let rest = ref !v in
         for i = 0 to n - 1 do
           p.(i) <- !rest mod m;
           rest := !rest / m
         done;
         Array.fill loads 0 m 0;
         Array.iteri (fun i l -> loads.(l) <- loads.(l) + w.(i)) p;
         dfs !v
       end;
       incr v
     done
   with Stack_overflow -> prerr_endline "warning: DFS overflow; instance skipped");
  !cycle

let print_instance w c =
  Printf.printf "weights = [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int w)));
  Array.iteri
    (fun i row ->
      Printf.printf "capacities[%d] = [%s]\n" i
        (String.concat "; " (Array.to_list (Array.map string_of_int row))))
    c

let range_conv =
  let parse s =
    match String.split_on_char '-' s with
    | [ a ] -> (try Ok (int_of_string a, int_of_string a) with Failure _ -> Error (`Msg "bad range"))
    | [ a; b ] -> (try Ok (int_of_string a, int_of_string b) with Failure _ -> Error (`Msg "bad range"))
    | _ -> Error (`Msg "expected N or LO-HI")
  in
  Arg.conv (parse, fun fmt (a, b) -> Format.fprintf fmt "%d-%d" a b)

let users_arg = Arg.(value & opt range_conv (3, 4) & info [ "users" ] ~docv:"LO-HI")
let links_arg = Arg.(value & opt range_conv (3, 3) & info [ "links" ] ~docv:"LO-HI")

let run_random (n_lo, n_hi) (m_lo, m_hi) attempts w_hi c_hi seed domains =
  (* Attempt [i] draws from its own stream [Rng.of_path seed [i]], so
     the instance tested at global index [i] is the same for any domain
     count or batch size.  Batches are contiguous ascending index
     ranges, so the first batch containing a hit contains the globally
     smallest hit — the reported attempt number is deterministic. *)
  let try_one rng _index =
    let n = Prng.Rng.int_in rng n_lo n_hi and m = Prng.Rng.int_in rng m_lo m_hi in
    let w = Array.init n (fun _ -> Prng.Rng.int_in rng 1 w_hi) in
    let c = Array.init n (fun _ -> Array.init m (fun _ -> Prng.Rng.int_in rng 1 c_hi)) in
    if has_cycle ~w ~c ~m then Some (n, m, w, c) else None
  in
  let batch = max 1 (256 * domains) in
  let rec go start =
    if start >= attempts then
      Printf.printf
        "no better-response cycle in %d random instances (n=%d-%d, m=%d-%d, w<=%d, c<=%d)\n"
        attempts n_lo n_hi m_lo m_hi w_hi c_hi
    else begin
      let count = min batch (attempts - start) in
      let results = Engine.map_tasks ~domains ~seed ~offset:start ~tasks:count try_one in
      let hit = ref None in
      Array.iteri
        (fun i r ->
          match r, !hit with
          | Some found, None -> hit := Some (start + i, found)
          | _ -> ())
        results;
      match !hit with
      | Some (idx, (n, m, w, c)) ->
        Printf.printf "CYCLE FOUND at attempt %d (n=%d, m=%d):\n" (idx + 1) n m;
        print_instance w c
      | None ->
        let finished = start + count in
        if finished / 1_000_000 > start / 1_000_000 then
          Printf.printf "%d attempts...\n%!" (finished / 1_000_000 * 1_000_000);
        go finished
    end
  in
  go 0

let random_cmd =
  let attempts = Arg.(value & opt int 1_000_000 & info [ "attempts" ]) in
  let w_hi = Arg.(value & opt int 9 & info [ "max-weight" ]) in
  let c_hi = Arg.(value & opt int 40 & info [ "max-capacity" ]) in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let domains =
    Arg.(
      value
      & opt int (Parallel.available_domains ())
      & info [ "domains" ]
          ~doc:"Worker domains (default: all available cores; same hits for any value).")
  in
  let info = Cmd.info "random" ~doc:"Random sampling over an integer grid." in
  Cmd.v info Term.(const run_random $ users_arg $ links_arg $ attempts $ w_hi $ c_hi $ seed $ domains)

let run_exhaustive (n_lo, _) (m_lo, _) w_hi c_hi =
  let n = n_lo and m = m_lo in
  let w = Array.make n 1 and c = Array.init n (fun _ -> Array.make m 1) in
  let total = ref 0 and cycles = ref 0 in
  let check () =
    incr total;
    if has_cycle ~w ~c ~m then begin
      incr cycles;
      if !cycles = 1 then begin
        print_endline "CYCLE FOUND:";
        print_instance w c
      end
    end
  in
  let rec enum_caps i l =
    if i = n then check ()
    else if l = m then enum_caps (i + 1) 0
    else
      for v = 1 to c_hi do
        c.(i).(l) <- v;
        enum_caps i (l + 1)
      done
  in
  let rec enum_weights i =
    if i = n then enum_caps 0 0
    else
      for v = 1 to w_hi do
        w.(i) <- v;
        enum_weights (i + 1)
      done
  in
  enum_weights 0;
  Printf.printf "exhaustive n=%d m=%d w<=%d c<=%d: %d instances, %d with better-response cycles\n"
    n m w_hi c_hi !total !cycles

let exhaustive_cmd =
  let w_hi = Arg.(value & opt int 3 & info [ "max-weight" ]) in
  let c_hi = Arg.(value & opt int 3 & info [ "max-capacity" ]) in
  let info = Cmd.info "exhaustive" ~doc:"Enumerate every weight/capacity combination of a grid." in
  Cmd.v info Term.(const run_exhaustive $ users_arg $ links_arg $ w_hi $ c_hi)

let () =
  let doc = "Hunt for better-response cycles in the linear belief model (E6)." in
  exit (Cmd.eval (Cmd.group (Cmd.info "cycle_hunt" ~doc) [ random_cmd; exhaustive_cmd ]))
