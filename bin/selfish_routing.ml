(* Command-line interface for the network-uncertainty routing library.

   Subcommands:
     solve        compute a pure Nash equilibrium of a game file
     fmne         compute the fully mixed Nash equilibrium (Theorem 4.6)
     enumerate    list all pure Nash equilibria exhaustively
     mixed        enumerate ALL mixed Nash equilibria (support enumeration)
     correlated   optimise social cost over the correlated-equilibrium polytope
     bounds       print the price-of-anarchy bound values (Thms 4.13/4.14)
     potential    check the Monderer-Shapley exact-potential condition
     monte-carlo  cross-check exact latencies by state sampling
     fictitious   run fictitious play
     sweep        run a pure-NE existence sweep (Conjecture 3.7)
     serve        replay a mutation log, repairing equilibrium per batch
     wire         convert between the text formats and the binary wire format
     demo         generate a random instance, print and solve it *)

open Model
open Numeric
open Cmdliner

let game_arg =
  let doc = "Game description file (see the Game_io format in the README)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GAME" ~doc)

let seed_arg =
  let doc = "PRNG seed; every run is deterministic given the seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let parse_initial g = function
  | None -> None
  | Some s ->
    let parts = String.split_on_char ',' s in
    if List.length parts <> Game.links g then
      invalid_arg "initial traffic must have one entry per link";
    Some (Array.of_list (List.map Rational.of_string parts))

let initial_arg =
  let doc = "Initial per-link traffic, comma separated (e.g. 1/2,0)." in
  Arg.(value & opt (some string) None & info [ "initial" ] ~docv:"T" ~doc)

let print_profile g ?initial sigma =
  Printf.printf "profile: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int sigma)));
  Printf.printf "is Nash equilibrium: %b\n" (Pure.is_nash g ?initial sigma);
  for i = 0 to Game.users g - 1 do
    Printf.printf "  user %d: link %d, expected latency %s\n" i sigma.(i)
      (Rational.to_string (Pure.latency g ?initial sigma i))
  done;
  Printf.printf "SC1 = %s, SC2 = %s\n"
    (Rational.to_string (Pure.social_cost1 g ?initial sigma))
    (Rational.to_string (Pure.social_cost2 g ?initial sigma))

(* ------------------------------------------------------------------ *)
(* solve                                                               *)

let classes_arg =
  let doc =
    "Treat the game file as a class game ('class <count> <weight> <c_1> ... <c_m>' \
     rows) and solve it with block best-response dynamics in poly(k,m) — \
     population size does not matter."
  in
  Arg.(value & flag & info [ "classes" ] ~doc)

let uncertainty_arg =
  let backends =
    [
      ("auto", `U_auto); ("bayesian", `U_bayesian);
      ("participation", `U_participation); ("strict", `U_strict);
    ]
  in
  let doc =
    "Expected uncertainty backend of the game file (bayesian, participation \
     or strict). auto accepts whatever the file's 'uncertainty' stanza \
     declares; naming a backend fails fast when the file uses another one."
  in
  Arg.(value & opt (enum backends) `U_auto & info [ "uncertainty" ] ~docv:"BACKEND" ~doc)

(* Validate the file's backend against --uncertainty and announce it.
   The line is printed only for non-Bayesian backends or an explicit
   flag, keeping pre-stanza outputs byte-identical. *)
let check_backend flag kind =
  (match flag with
   | `U_auto -> ()
   | (`U_bayesian | `U_participation | `U_strict) as f ->
     let want =
       match f with
       | `U_bayesian -> Uncertainty.Bayesian
       | `U_participation -> Uncertainty.Participation
       | `U_strict -> Uncertainty.Strict
     in
     if not (Uncertainty.equal_kind want kind) then
       invalid_arg
         (Printf.sprintf "--uncertainty %s: the game file uses the %s backend"
            (Uncertainty.kind_name want) (Uncertainty.kind_name kind)));
  if (match flag with `U_auto -> false | _ -> true)
     || not (Uncertainty.equal_kind kind Uncertainty.Bayesian)
  then Printf.printf "uncertainty backend: %s\n" (Uncertainty.kind_name kind)

let run_solve_classes file uflag =
  let g = Game_io.parse_cgame_file file in
  check_backend uflag (Uncertainty.kind (Cgame.uncertainty g 0));
  Printf.printf "class game: %d classes, %d users, %d links\n" (Cgame.classes g)
    (Cgame.users g) (Cgame.links g);
  Printf.printf "algorithm: block best-response dynamics from the proportional start\n";
  let o = Algo.Cbr.converge g (Algo.Cbr.proportional_start g) in
  if not o.converged then
    failwith "block best-response dynamics did not converge within budget";
  Printf.printf "(converged after %d block moves, %d users moved)\n" o.steps o.users_moved;
  let v = Cview.of_profile g o.profile in
  Array.iteri
    (fun c row ->
      Printf.printf "  class %d (count %d, weight %s): [%s]\n" c (Cgame.count g c)
        (Rational.to_string (Cgame.weight g c))
        (String.concat "; " (Array.to_list (Array.map string_of_int row))))
    o.profile;
  Printf.printf "is Nash equilibrium: %b\n" (Cview.is_nash v);
  Printf.printf "SC1 = %s, SC2 = %s\n"
    (Rational.to_string (Cview.social_cost1 v))
    (Rational.to_string (Cview.social_cost2 v))

let algo_arg =
  let algos =
    [
      ("auto", `Auto); ("two-links", `Two_links); ("symmetric", `Symmetric);
      ("uniform", `Uniform); ("best-response", `Best_response);
    ]
  in
  let doc =
    "Algorithm: auto picks the paper's solver matching the instance \
     (two-links for m=2, symmetric for equal weights, uniform for \
     uniform beliefs, best-response otherwise)."
  in
  Arg.(value & opt (enum algos) `Auto & info [ "algo" ] ~docv:"ALGO" ~doc)

let pick_auto g initial =
  (* Only best-response dynamics understands biased (non-load-linear)
     latencies; the closed-form solvers all guard on load-linearity. *)
  if not (Game.is_load_linear g) then `Best_response
  else if Game.links g = 2 then `Two_links
  else if Game.has_uniform_beliefs g then `Uniform
  else if Game.is_symmetric g && initial = None then `Symmetric
  else `Best_response

let run_solve_users file uflag algo initial_str seed =
  let g = Game_io.parse_file file in
  check_backend uflag (Uncertainty.kind (Game.uncertainty g 0));
  let initial = parse_initial g initial_str in
  let algo = if algo = `Auto then pick_auto g initial else algo in
  let sigma =
    match algo with
    | `Two_links ->
      Printf.printf "algorithm: A_twolinks (Theorem 3.3)\n";
      Algo.Two_links.solve ?initial g
    | `Symmetric ->
      if initial <> None then invalid_arg "A_symmetric does not support initial traffic";
      Printf.printf "algorithm: A_symmetric (Theorem 3.5)\n";
      Algo.Symmetric.solve g
    | `Uniform ->
      Printf.printf "algorithm: A_uniform (Theorem 3.6)\n";
      Algo.Uniform_beliefs.solve ?initial g
    | `Best_response | `Auto ->
      Printf.printf "algorithm: best-response dynamics from a random start\n";
      let rng = Prng.Rng.create seed in
      let start = Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g)) in
      let budget = 64 * Game.users g * Game.links g * (Game.users g + Game.links g) in
      let o = Algo.Best_response.converge g ?initial ~max_steps:budget start in
      if not o.converged then failwith "best-response dynamics did not converge within budget";
      Printf.printf "(converged after %d moves)\n" o.steps;
      o.profile
  in
  print_profile g ?initial sigma

let run_solve file classes uflag algo initial_str seed =
  if classes then begin
    if initial_str <> None then invalid_arg "--initial is not supported with --classes";
    (match algo with
     | `Auto -> ()
     | _ -> invalid_arg "--algo is not supported with --classes");
    run_solve_classes file uflag
  end
  else run_solve_users file uflag algo initial_str seed

let solve_cmd =
  let info = Cmd.info "solve" ~doc:"Compute a pure Nash equilibrium of a game file." in
  Cmd.v info
    Term.(
      const run_solve $ game_arg $ classes_arg $ uncertainty_arg $ algo_arg $ initial_arg
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* fmne                                                                *)

let run_fmne file =
  let g = Game_io.parse_file file in
  let candidate = Algo.Fully_mixed.candidate g in
  Printf.printf "candidate probabilities (Lemma 4.3):\n";
  Array.iteri
    (fun i row ->
      Printf.printf "  user %d: [%s]\n" i
        (String.concat "; " (Array.to_list (Array.map Rational.to_string row))))
    candidate;
  match Algo.Fully_mixed.compute g with
  | None ->
    Printf.printf "no fully mixed Nash equilibrium exists (some probability leaves (0,1)).\n"
  | Some p ->
    Printf.printf "this is the unique fully mixed Nash equilibrium (Theorem 4.6).\n";
    for i = 0 to Game.users g - 1 do
      Printf.printf "  user %d equilibrium latency: %s\n" i
        (Rational.to_string (Mixed.min_latency g p i))
    done;
    Printf.printf "SC1 = %s, SC2 = %s\n"
      (Rational.to_string (Mixed.social_cost1 g p))
      (Rational.to_string (Mixed.social_cost2 g p))

let fmne_cmd =
  let info = Cmd.info "fmne" ~doc:"Compute the fully mixed Nash equilibrium (Theorem 4.6)." in
  Cmd.v info Term.(const run_fmne $ game_arg)

(* ------------------------------------------------------------------ *)
(* enumerate                                                           *)

let run_enumerate file =
  let g = Game_io.parse_file file in
  let nes = Algo.Enumerate.pure_nash g in
  Printf.printf "%d pure Nash equilibria (out of %s profiles):\n" (List.length nes)
    (match Social.profile_count g with Some c -> string_of_int c | None -> "many");
  let opt1, _ = Social.opt1 g and opt2, _ = Social.opt2 g in
  List.iter
    (fun ne ->
      Printf.printf "  [%s]  SC1=%s (ratio %s)  SC2=%s (ratio %s)\n"
        (String.concat "; " (Array.to_list (Array.map string_of_int ne)))
        (Rational.to_string (Pure.social_cost1 g ne))
        (Rational.to_string (Rational.div (Pure.social_cost1 g ne) opt1))
        (Rational.to_string (Pure.social_cost2 g ne))
        (Rational.to_string (Rational.div (Pure.social_cost2 g ne) opt2)))
    nes;
  Printf.printf "OPT1 = %s, OPT2 = %s\n" (Rational.to_string opt1) (Rational.to_string opt2)

let enumerate_cmd =
  let info = Cmd.info "enumerate" ~doc:"List all pure Nash equilibria exhaustively." in
  Cmd.v info Term.(const run_enumerate $ game_arg)

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)

let run_bounds file =
  let g = Game_io.parse_file file in
  Printf.printf "Theorem 4.14 (general) bound: %s ≈ %.4f\n"
    (Rational.to_string (Bounds.theorem_4_14 g))
    (Rational.to_float (Bounds.theorem_4_14 g));
  if Game.has_uniform_beliefs g then
    Printf.printf "Theorem 4.13 (uniform beliefs) bound: %s ≈ %.4f\n"
      (Rational.to_string (Bounds.theorem_4_13 g))
      (Rational.to_float (Bounds.theorem_4_13 g))
  else Printf.printf "Theorem 4.13 does not apply (beliefs are not uniform).\n"

let bounds_cmd =
  let info = Cmd.info "bounds" ~doc:"Print the price-of-anarchy bound values." in
  Cmd.v info Term.(const run_bounds $ game_arg)

(* ------------------------------------------------------------------ *)
(* mixed (support enumeration)                                         *)

let run_mixed file =
  let g = Game_io.parse_file file in
  let result = Algo.Support_enum.all_nash g in
  Printf.printf "%d mixed Nash equilibria found by support enumeration"
    (List.length result.equilibria);
  if result.degenerate_supports > 0 then
    Printf.printf " (%d singular support systems skipped)" result.degenerate_supports;
  print_newline ();
  List.iter
    (fun (f : Algo.Support_enum.finding) ->
      Printf.printf "  supports %s:\n"
        (String.concat " "
           (Array.to_list
              (Array.map
                 (fun s -> "{" ^ String.concat "," (List.map string_of_int s) ^ "}")
                 f.supports)));
      Array.iteri
        (fun i row ->
          Printf.printf "    user %d: [%s]  λ=%s\n" i
            (String.concat "; " (Array.to_list (Array.map Rational.to_string row)))
            (Rational.to_string f.latencies.(i)))
        f.profile)
    result.equilibria

let mixed_cmd =
  let info =
    Cmd.info "mixed" ~doc:"Enumerate all mixed Nash equilibria by support enumeration."
  in
  Cmd.v info Term.(const run_mixed $ game_arg)

(* ------------------------------------------------------------------ *)
(* potential                                                           *)

let run_potential file =
  let g = Game_io.parse_file file in
  match Algo.Potential.find_nonzero_square g with
  | None ->
    Printf.printf
      "the exact-potential condition (Monderer–Shapley) HOLDS on every deviation square.\n"
  | Some (sigma, i, j, li, lj) ->
    Printf.printf "NOT an exact potential game (Section 3.2): witness square\n";
    Printf.printf "  at profile [%s], user %d: %d→%d, user %d: %d→%d, defect %s\n"
      (String.concat "; " (Array.to_list (Array.map string_of_int sigma)))
      i sigma.(i) li j sigma.(j) lj
      (Rational.to_string (Algo.Potential.square_defect g sigma ~i ~j ~li ~lj))

let potential_cmd =
  let info =
    Cmd.info "potential" ~doc:"Check the Monderer–Shapley exact-potential condition."
  in
  Cmd.v info Term.(const run_potential $ game_arg)

(* ------------------------------------------------------------------ *)
(* monte-carlo                                                         *)

let run_monte_carlo file samples seed =
  let g = Game_io.parse_file file in
  let rng = Prng.Rng.create seed in
  let start = Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g)) in
  let o = Algo.Best_response.converge g ~max_steps:1000 start in
  Printf.printf "profile [%s] (%s):\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int o.profile)))
    (if o.converged then "equilibrium" else "non-equilibrium");
  for i = 0 to Game.users g - 1 do
    let exact = Rational.to_float (Pure.latency g o.profile i) in
    let estimate =
      Experiments.Monte_carlo.estimate_latency g o.profile ~user:i ~samples rng
    in
    Printf.printf "  user %d: exact %.6f, %d-sample estimate %.6f (rel err %.2e)\n" i exact
      samples estimate
      (Float.abs (estimate -. exact) /. exact)
  done

let monte_carlo_cmd =
  let samples =
    Arg.(value & opt int 100_000 & info [ "samples" ] ~doc:"States sampled per user.")
  in
  let info =
    Cmd.info "monte-carlo"
      ~doc:"Cross-check exact expected latencies against state sampling."
  in
  Cmd.v info Term.(const run_monte_carlo $ game_arg $ samples $ seed_arg)

(* ------------------------------------------------------------------ *)
(* correlated                                                          *)

let run_correlated file =
  let g = Game_io.parse_file file in
  let show label (r : Algo.Correlated.result) =
    Printf.printf "%s SC1 = %s (%s):\n" label
      (Rational.to_string r.value)
      (Rational.to_decimal_string r.value ~digits:4);
    List.iter
      (fun (p, prob) ->
        Printf.printf "  P[%s] = %s\n"
          (String.concat "; " (Array.to_list (Array.map string_of_int p)))
          (Rational.to_string prob))
      r.distribution
  in
  show "best correlated equilibrium," (Algo.Correlated.best_social_cost g);
  show "worst correlated equilibrium," (Algo.Correlated.worst_social_cost g);
  let opt1, _ = Social.opt1 g in
  Printf.printf "OPT1 = %s\n" (Rational.to_string opt1)

let correlated_cmd =
  let info =
    Cmd.info "correlated"
      ~doc:"Optimise the social cost over the correlated-equilibrium polytope (exact LP)."
  in
  Cmd.v info Term.(const run_correlated $ game_arg)

(* ------------------------------------------------------------------ *)
(* fictitious                                                          *)

let run_fictitious file rounds seed =
  let g = Game_io.parse_file file in
  let rng = Prng.Rng.create seed in
  let start = Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g)) in
  let o = Algo.Fictitious.play g ~rounds ~window:10 start in
  Printf.printf "fictitious play: %d rounds, stabilised at a pure NE: %b\n" o.rounds o.stabilised;
  Printf.printf "last round actions: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int o.last_profile)));
  Printf.printf "empirical frequencies:\n";
  Array.iteri
    (fun i row ->
      Printf.printf "  user %d: [%s]\n" i
        (String.concat "; "
           (Array.to_list (Array.map (fun q -> Rational.to_decimal_string q ~digits:3) row))))
    o.empirical

let fictitious_cmd =
  let rounds = Arg.(value & opt int 5000 & info [ "rounds" ] ~doc:"Maximum rounds to play.") in
  let info =
    Cmd.info "fictitious" ~doc:"Run fictitious play (simultaneous best responses to history)."
  in
  Cmd.v info Term.(const run_fictitious $ game_arg $ rounds $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let run_sweep seed trials n_hi m_hi domains =
  let ns = List.init (n_hi - 1) (fun i -> i + 2) in
  let ms = List.init (m_hi - 1) (fun i -> i + 2) in
  let rows =
    Experiments.Existence.run ~domains ~seed ~ns ~ms ~trials
      ~weights:(Experiments.Generators.Rational_weights 5)
      ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 })
      ()
  in
  Stats.Table.print (Experiments.Existence.table rows)

let sweep_cmd =
  let trials = Arg.(value & opt int 50 & info [ "trials" ] ~doc:"Instances per (n,m) cell.") in
  let n_hi = Arg.(value & opt int 5 & info [ "max-users" ] ~doc:"Largest n (from 2).") in
  let m_hi = Arg.(value & opt int 3 & info [ "max-links" ] ~doc:"Largest m (from 2).") in
  let domains =
    Arg.(
      value
      & opt int (Parallel.available_domains ())
      & info [ "domains" ]
          ~doc:
            "Worker domains (default: all available cores; results are \
             bit-identical for any value).")
  in
  let info =
    Cmd.info "sweep" ~doc:"Pure-NE existence sweep over random instances (Conjecture 3.7)."
  in
  Cmd.v info Term.(const run_sweep $ seed_arg $ trials $ n_hi $ m_hi $ domains)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let read_binary_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_cgame path =
  let data = read_binary_file path in
  if Serve.Wire.is_wire data then Serve.Wire.decode_cgame data else Game_io.parse_cgame data

let load_log path =
  let data = read_binary_file path in
  if Serve.Wire.is_wire data then Serve.Wire.decode_log data else Serve.Mutation.parse data

let run_serve game_file log_file domains max_moves =
  let g = load_cgame game_file in
  let log = load_log log_file in
  Printf.printf "class game: %d classes, %d users, %d links; %d mutation batches\n"
    (Cgame.classes g) (Cgame.users g) (Cgame.links g) (List.length log);
  let o = Algo.Cbr.converge g (Algo.Cbr.proportional_start g) in
  if not o.converged then failwith "initial solve did not converge within budget";
  Printf.printf "initial equilibrium: %d block moves, %d users moved\n" o.steps o.users_moved;
  let v = Cview.of_profile g o.profile in
  List.iteri
    (fun idx batch ->
      let r = Serve.Repair.repair_batch ~domains ~max_steps:max_moves v batch in
      let users = ref 0 in
      for c = 0 to Cview.classes v - 1 do
        users := !users + Cview.class_count v c
      done;
      Printf.printf
        "{\"batch\":%d,\"mutations\":%d,\"moves\":%d,\"users_moved\":%d,\
         \"seeded_classes\":%d,\"seeded_links\":%d,\"frontier_links\":%d,\
         \"fallback\":%b,\"nash\":%b,\"users\":%d,\"sc1\":\"%s\"}\n"
        (idx + 1) (List.length batch) r.Serve.Repair.moves r.Serve.Repair.users_moved
        r.Serve.Repair.seeded_classes r.Serve.Repair.seeded_links r.Serve.Repair.frontier_links
        r.Serve.Repair.fallback r.Serve.Repair.nash !users
        (Rational.to_string (Cview.social_cost1 v)))
    log

let serve_cmd =
  let log_arg =
    let doc = "Mutation log: text directives (batch/arrive/depart/reweight/capacity) or \
               the binary wire form."
    in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"MUTLOG" ~doc)
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Worker domains for the repair scans (results are bit-identical \
             for any value).")
  in
  let max_moves =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-moves" ] ~doc:"Block-move budget per batch repair.")
  in
  let doc =
    "Replay a mutation log against a class game, repairing equilibrium after \
     each batch and emitting per-batch stats as JSON lines."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve $ game_arg $ log_arg $ domains $ max_moves)

(* ------------------------------------------------------------------ *)
(* wire                                                                *)

(* Text payloads are told apart by their directives: mutation logs use
   batch/arrive/depart, class games have 'class' rows, everything else
   is a per-user game.  Parse errors then carry their native
   line-numbered messages. *)
let classify_text text =
  let starts p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let lines =
    String.split_on_char '\n' text |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  if List.exists (fun l -> l = "batch" || starts "arrive " l || starts "depart " l) lines
  then `Log
  else if List.exists (fun l -> starts "class " l) lines then `Cgame
  else `Game

let run_wire file out =
  let data = read_binary_file file in
  let write_out content =
    match out with
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)
    | None -> print_string content
  in
  if Serve.Wire.is_wire data then begin
    match Serve.Wire.peek_kind data with
    | Serve.Wire.Game -> write_out (Game_io.to_string (Serve.Wire.decode_game data))
    | Serve.Wire.Cgame -> write_out (Game_io.to_class_string (Serve.Wire.decode_cgame data))
    | Serve.Wire.Log -> write_out (Serve.Mutation.render (Serve.Wire.decode_log data))
    | Serve.Wire.Profile | Serve.Wire.Cprofile ->
      invalid_arg "wire: profile payloads have no text form"
  end
  else
    match out with
    | None -> invalid_arg "wire: refusing to write binary data to stdout; pass --out FILE"
    | Some _ ->
      write_out
        (match classify_text data with
         | `Log -> Serve.Wire.encode_log (Serve.Mutation.parse data)
         | `Cgame -> Serve.Wire.encode_cgame (Game_io.parse_cgame data)
         | `Game -> Serve.Wire.encode_game (Game_io.parse data))

let wire_cmd =
  let file_arg =
    let doc = "Input file, either text (game, class game, mutation log) or binary wire." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Output path.  Required when encoding text to binary." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH" ~doc)
  in
  let doc =
    "Convert between the text formats and the binary wire format (SRWF): \
     binary inputs are decoded to text, text inputs are encoded to binary."
  in
  Cmd.v (Cmd.info "wire" ~doc) Term.(const run_wire $ file_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

let run_demo seed =
  let rng = Prng.Rng.create seed in
  let g =
    Experiments.Generators.game rng ~n:4 ~m:3
      ~weights:(Experiments.Generators.Integer_weights 5)
      ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 })
  in
  Printf.printf "# random instance (seed %d), reduced form:\n%s\n" seed (Game_io.to_string g);
  let start = Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g)) in
  let o = Algo.Best_response.converge g ~max_steps:500 start in
  Printf.printf "best-response dynamics converged after %d moves\n" o.steps;
  print_profile g o.profile

let demo_cmd =
  let info = Cmd.info "demo" ~doc:"Generate a random instance and solve it end to end." in
  Cmd.v info Term.(const run_demo $ seed_arg)

let main_cmd =
  let doc = "Selfish routing under network uncertainty (Georgiou, Pavlides, Philippou 2006)." in
  let info = Cmd.info "selfish_routing" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      solve_cmd; fmne_cmd; enumerate_cmd; mixed_cmd; correlated_cmd; bounds_cmd;
      potential_cmd; monte_carlo_cmd; fictitious_cmd; sweep_cmd; serve_cmd; wire_cmd;
      demo_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
