(* The gap between general player-specific games and the belief model
   (Section 3 of the paper).

   Milchtaich (1996) showed that weighted congestion games with
   player-specific payoff functions may possess no pure Nash equilibrium
   at all — with as few as three players and three links.  The paper
   proves that its belief-induced subclass escapes this for three users,
   and conjectures it always does (Conjecture 3.7).

   This example finds a concrete no-pure-NE player-specific instance by
   adaptive search, prints its best-response cycle, and contrasts it
   with belief-model games of the same shape, all of which have pure
   equilibria.

   Run with: dune exec examples/milchtaich_gap.exe *)

open Numeric

let () =
  (* 1. A weighted player-specific game with NO pure Nash equilibrium. *)
  let rng = Prng.Rng.create 5 in
  let weights = [| 1; 2; 3 |] in
  (match Kp.Milchtaich.Weighted.search_no_pure_nash rng ~weights ~links:3 ~attempts:5000 with
   | None -> print_endline "Search failed (unexpected with this seed)."
   | Some (t, steps) ->
     Printf.printf "Found a 3-player/3-link weighted player-specific game with NO pure NE\n";
     Printf.printf "(after %d search steps; player weights 1, 2, 3).\n" steps;
     Printf.printf "Pure NE count (exhaustive over 27 profiles): %d\n"
       (List.length (Kp.Milchtaich.Weighted.pure_nash t));
     (* Follow best responses from some profile: the dynamics must cycle. *)
     let p = ref [| 0; 0; 0 |] in
     Printf.printf "Best-response walk (must cycle since no profile is stable):\n";
     let seen = Hashtbl.create 32 in
     let step = ref 0 in
     (try
        while true do
          let key = Array.to_list !p in
          (match Hashtbl.find_opt seen key with
           | Some at ->
             Printf.printf "  -> profile revisited after %d moves: cycle of length %d\n" !step (!step - at);
             raise Exit
           | None -> Hashtbl.add seen key !step);
          (* Move the first player with an improving deviation to its
             best link. *)
          let moved = ref false in
          for i = 0 to 2 do
            if not !moved then begin
              let here = Kp.Milchtaich.Weighted.latency t !p i in
              let best = ref (-1) and best_v = ref here in
              for l = 0 to 2 do
                if l <> !p.(i) then begin
                  let p' = Array.copy !p in
                  p'.(i) <- l;
                  let v = Kp.Milchtaich.Weighted.latency t p' i in
                  if Rational.compare v !best_v < 0 then begin
                    best := l;
                    best_v := v
                  end
                end
              done;
              if !best >= 0 then begin
                let p' = Array.copy !p in
                p'.(i) <- !best;
                Printf.printf "  step %2d: player %d moves %d -> %d\n" !step i !p.(i) !best;
                p := p';
                moved := true
              end
            end
          done;
          incr step;
          if not !moved then begin
            Printf.printf "  reached a stable profile (bug!)\n";
            raise Exit
          end
        done
      with Exit -> ()));

  (* 2. Belief-model games of the same shape always have a pure NE. *)
  print_newline ();
  let rng = Prng.Rng.create 17 in
  let trials = 500 in
  let all_have = ref true in
  for _ = 1 to trials do
    let g =
      Experiments.Generators.game rng ~n:3 ~m:3
        ~weights:(Experiments.Generators.Integer_weights 3)
        ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 })
    in
    if not (Algo.Enumerate.exists g) then all_have := false
  done;
  Printf.printf
    "Belief-model games (3 users, 3 links, %d random instances): pure NE always exists = %b\n"
    trials !all_have;
  print_endline "— matching the paper's n = 3 theorem and supporting Conjecture 3.7."
