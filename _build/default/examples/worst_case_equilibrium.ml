(* The worst-case equilibrium (Section 4.2): among ALL Nash equilibria
   of a game, the fully mixed one maximises both social costs
   (Lemma 4.9, Theorems 4.11/4.12).

   We enumerate every mixed equilibrium by support enumeration (exact
   linear systems) and rank them by social cost — the fully mixed
   equilibrium must come out on top.

   Run with: dune exec examples/worst_case_equilibrium.exe *)

open Model
open Numeric

let qi = Rational.of_int

let () =
  let g =
    Game.of_capacities ~weights:[| qi 2; qi 3 |] [| [| qi 2; qi 2 |]; [| qi 2; qi 3 |] |]
  in
  Printf.printf "Game: 2 users (weights 2, 3), 2 links, user-specific capacities.\n\n";

  let result = Algo.Support_enum.all_nash g in
  Printf.printf "%d Nash equilibria (all supports enumerated):\n\n" (List.length result.equilibria);

  let describe (f : Algo.Support_enum.finding) =
    let kind =
      if Array.for_all (fun s -> List.length s = 1) f.supports then "pure       "
      else if Mixed.is_fully_mixed f.profile then "fully mixed"
      else "partly mixed"
    in
    Printf.printf "  %s  SC1 = %-8s SC2 = %-8s" kind
      (Rational.to_string (Mixed.social_cost1 g f.profile))
      (Rational.to_string (Mixed.social_cost2 g f.profile));
    Array.iteri
      (fun i row ->
        Printf.printf "  p_%d = [%s]" i
          (String.concat "," (Array.to_list (Array.map Rational.to_string row))))
      f.profile;
    print_newline ()
  in
  let ranked =
    List.sort
      (fun (a : Algo.Support_enum.finding) b ->
        Rational.compare (Mixed.social_cost1 g a.profile) (Mixed.social_cost1 g b.profile))
      result.equilibria
  in
  List.iter describe ranked;

  (match Algo.Fully_mixed.compute g with
   | None -> print_endline "\n(no fully mixed equilibrium for this game)"
   | Some fm ->
     let sc1 = Mixed.social_cost1 g fm in
     let worst =
       List.fold_left
         (fun acc (f : Algo.Support_enum.finding) ->
           Rational.max acc (Mixed.social_cost1 g f.profile))
         Rational.zero result.equilibria
     in
     Printf.printf
       "\nFully mixed SC1 = %s equals the maximum over all equilibria (%s): Theorem 4.11 in action.\n"
       (Rational.to_string sc1) (Rational.to_string worst));

  let opt1, opt_profile = Social.opt1 g in
  Printf.printf "\nSocial optimum OPT1 = %s at pure profile [%s].\n" (Rational.to_string opt1)
    (String.concat "; " (Array.to_list (Array.map string_of_int opt_profile)));
  Printf.printf "Worst-equilibrium coordination ratio: %s (Theorem 4.14 bound: %s)\n"
    (Rational.to_string
       (Rational.div
          (List.fold_left
             (fun acc (f : Algo.Support_enum.finding) ->
               Rational.max acc (Mixed.social_cost1 g f.profile))
             Rational.zero result.equilibria)
          opt1))
    (Rational.to_string (Bounds.theorem_4_14 g))
