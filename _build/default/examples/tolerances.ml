(* A step-by-step trace of Algorithm A_twolinks (Figure 1 of the paper)
   on a small game, showing the tolerance values of Definition 3.1 that
   drive each greedy commitment.

   The tolerance α^j_i is the largest total load on link j (own weight
   included) that user i accepts while staying on j; the algorithm
   repeatedly commits the user with the highest tolerance, which the
   Theorem 3.3 induction shows can never be regretted.

   Run with: dune exec examples/tolerances.exe *)

open Model
open Numeric

let qi = Rational.of_int

let () =
  let g =
    Game.of_capacities
      ~weights:[| qi 4; qi 3; qi 2; qi 1 |]
      [|
        [| qi 3; qi 2 |];
        [| qi 2; qi 3 |];
        [| qi 4; qi 1 |];
        [| qi 1; qi 1 |];
      |]
  in
  let n = Game.users g in
  Printf.printf "Game: %d users on 2 links, weights " n;
  Array.iter (fun w -> Printf.printf "%s " (Rational.to_string w)) (Game.weights g);
  print_newline ();

  (* Replay the algorithm by hand, printing each round's tolerances. *)
  let t = [| Rational.zero; Rational.zero |] in
  let remaining = Array.make n true in
  let total = ref (Game.total_traffic g) in
  let sigma = Array.make n (-1) in
  for round = 1 to n do
    Printf.printf "\nround %d: link loads t = (%s, %s), remaining traffic T = %s\n" round
      (Rational.to_string t.(0)) (Rational.to_string t.(1)) (Rational.to_string !total);
    let best = ref None in
    for i = 0 to n - 1 do
      if remaining.(i) then begin
        let a0 = Algo.Two_links.tolerance g ~initial:t ~total:!total i 0 in
        let a1 = Algo.Two_links.tolerance g ~initial:t ~total:!total i 1 in
        Printf.printf "  user %d: α^0 = %-8s α^1 = %-8s\n" i (Rational.to_string a0)
          (Rational.to_string a1);
        let link, a = if Rational.compare a0 a1 >= 0 then (0, a0) else (1, a1) in
        match !best with
        | Some (_, _, b) when Rational.compare b a >= 0 -> ()
        | _ -> best := Some (i, link, a)
      end
    done;
    match !best with
    | None -> assert false
    | Some (k, link, a) ->
      Printf.printf "  -> commit user %d to link %d (tolerance %s)\n" k link (Rational.to_string a);
      sigma.(k) <- link;
      remaining.(k) <- false;
      t.(link) <- Rational.add t.(link) (Game.weight g k);
      total := Rational.sub !total (Game.weight g k)
  done;

  Printf.printf "\nfinal profile: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int sigma)));
  Printf.printf "is a Nash equilibrium: %b\n" (Pure.is_nash g sigma);
  let reference = Algo.Two_links.solve g in
  Printf.printf "matches Algo.Two_links.solve: %b\n" (Pure.equal sigma reference)
