(* Quickstart: build a routing game with network uncertainty, compute a
   pure Nash equilibrium with the paper's two-link algorithm, and
   compare it with the fully mixed equilibrium.

   Run with: dune exec examples/quickstart.exe *)

open Model
open Numeric

let q = Rational.of_ints
let qi = Rational.of_int

let () =
  (* The network has two parallel links whose capacity is uncertain:
     either the fast state ⟨10, 4⟩ or the degraded state ⟨3, 4⟩. *)
  let fast = State.make [| qi 10; qi 4 |] in
  let degraded = State.make [| qi 3; qi 4 |] in
  let space = State.space [ fast; degraded ] in

  (* Three users with different information about the network. *)
  let optimist = Belief.point space 0 in
  let pessimist = Belief.point space 1 in
  let realist = Belief.make space [| q 1 2; q 1 2 |] in

  let g =
    Game.make ~weights:[| qi 4; qi 3; qi 2 |] ~beliefs:[| optimist; pessimist; realist |]
  in

  Printf.printf "A game with %d users and %d links.\n" (Game.users g) (Game.links g);
  Printf.printf "Effective capacities (belief-weighted harmonic means):\n";
  for i = 0 to Game.users g - 1 do
    Printf.printf "  user %d: link0 = %s, link1 = %s\n" i
      (Rational.to_string (Game.capacity g i 0))
      (Rational.to_string (Game.capacity g i 1))
  done;

  (* A pure Nash equilibrium via Algorithm A_twolinks (Theorem 3.3). *)
  let sigma = Algo.Two_links.solve g in
  Printf.printf "\nA_twolinks equilibrium: user links = [%s]  (is NE: %b)\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int sigma)))
    (Pure.is_nash g sigma);
  for i = 0 to Game.users g - 1 do
    Printf.printf "  user %d expected latency: %s\n" i (Rational.to_string (Pure.latency g sigma i))
  done;

  (* The fully mixed Nash equilibrium (Theorem 4.6), when it exists. *)
  (match Algo.Fully_mixed.compute g with
   | None -> Printf.printf "\nNo fully mixed equilibrium exists for this game.\n"
   | Some p ->
     Printf.printf "\nFully mixed equilibrium probabilities:\n";
     Array.iteri
       (fun i row ->
         Printf.printf "  user %d: [%s]\n" i
           (String.concat "; " (Array.to_list (Array.map Rational.to_string row))))
       p);

  (* Social costs and the price of anarchy. *)
  let opt1, best = Social.opt1 g in
  Printf.printf "\nOPT1 = %s at profile [%s]\n" (Rational.to_string opt1)
    (String.concat "; " (Array.to_list (Array.map string_of_int best)));
  let ratio = Social.ratio1 g (Mixed.of_pure g sigma) in
  Printf.printf "SC1(equilibrium)/OPT1 = %s (Theorem 4.14 bound: %s)\n"
    (Rational.to_string ratio)
    (Rational.to_string (Bounds.theorem_4_14 g))
