(* Link-failure uncertainty: the motivation the paper gives for beliefs
   — "complex paths created by routers which are constructed differently
   on separate occasions according to the presence of congestion or link
   failures".

   Two links; link 1 fails partially with some probability, dropping its
   capacity from 8 to 2.  We sweep the failure probability and show how
   a user's belief accuracy changes its realised (ground-truth) latency:
   the equilibrium chosen under wrong beliefs is evaluated under the
   true distribution.

   Run with: dune exec examples/link_failures.exe *)

open Model
open Numeric

let q = Rational.of_ints
let qi = Rational.of_int

let () =
  let healthy = State.make [| qi 6; qi 8 |] in
  let failed = State.make [| qi 6; qi 2 |] in
  let space = State.space [ healthy; failed ] in

  let table = Stats.Table.create
      [ "P(fail)"; "profile"; "optimist λ (true)"; "pessimist λ (true)"; "realist λ (true)" ]
  in
  List.iter
    (fun percent ->
      let p_fail = q percent 100 in
      let truth = Belief.make space [| Rational.sub Rational.one p_fail; p_fail |] in
      (* Three equal-weight users: the optimist assumes no failure, the
         pessimist assumes failure, the realist knows the distribution. *)
      let optimist = Belief.point space 0 in
      let pessimist = Belief.point space 1 in
      let g =
        Game.make ~weights:[| qi 3; qi 3; qi 3 |] ~beliefs:[| optimist; pessimist; truth |]
      in
      let sigma = Algo.Two_links.solve g in
      assert (Pure.is_nash g sigma);
      (* Evaluate each user's chosen link under the TRUE distribution:
         realised latency = load / effective capacity under truth. *)
      let true_cap = Belief.effective_capacities truth in
      let loads = Pure.loads g sigma in
      let realised i = Rational.div loads.(sigma.(i)) true_cap.(sigma.(i)) in
      Stats.Table.add_row table
        [
          Printf.sprintf "%d%%" percent;
          String.concat "," (Array.to_list (Array.map string_of_int sigma));
          Printf.sprintf "%.3f" (Rational.to_float (realised 0));
          Printf.sprintf "%.3f" (Rational.to_float (realised 1));
          Printf.sprintf "%.3f" (Rational.to_float (realised 2));
        ])
    [ 0; 10; 25; 50; 75; 90; 100 ];
  print_endline "Equilibria under belief disagreement, evaluated under the true failure rate:";
  Stats.Table.print table;
  print_endline "(user order in 'profile': optimist, pessimist, realist)";

  (* When everyone holds the true belief the game is a KP instance and
     the model degenerates as Section 2 promises. *)
  let p_fail = q 25 100 in
  let truth = Belief.make space [| Rational.sub Rational.one p_fail; p_fail |] in
  let kp_game =
    Game.make ~weights:[| qi 3; qi 3; qi 3 |] ~beliefs:[| truth; truth; truth |]
  in
  Printf.printf "\nShared true beliefs give a KP instance: %b\n" (Game.is_kp kp_game);
  let sigma = Kp.Kp_nash.solve kp_game in
  Printf.printf "KP baseline equilibrium: [%s] (is NE: %b)\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int sigma)))
    (Pure.is_nash kp_game sigma)
