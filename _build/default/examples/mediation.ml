(* Mediation under belief disagreement (experiment E20).

   A correlated equilibrium is a lottery over pure assignments run by a
   trusted coordinator: each user hears only its own recommended link
   and must not gain by deviating, judged under its own belief.  This
   example computes the best and worst correlated equilibria of a small
   game with the exact simplex solver and compares them with the Nash
   equilibria and the social optimum.

   Run with: dune exec examples/mediation.exe *)

open Model
open Numeric

let qi = Rational.of_int

let () =
  (* Uniform-beliefs game: three users who agree on capacities but have
     different traffic volumes. *)
  let g =
    Game.of_capacities
      ~weights:[| qi 5; qi 4; qi 3 |]
      [| [| qi 2; qi 2 |]; [| qi 3; qi 3 |]; [| qi 1; qi 1 |] |]
  in
  Printf.printf "Game: 3 users (weights 5, 4, 3) on 2 links; per-user capacities 2, 3, 1.\n\n";

  let opt1, opt_profile = Social.opt1 g in
  Printf.printf "social optimum OPT1 = %s at [%s]\n" (Rational.to_string opt1)
    (String.concat "; " (Array.to_list (Array.map string_of_int opt_profile)));

  (match Algo.Enumerate.extremal_nash g ~cost:(fun g p -> Pure.social_cost1 g p) with
   | None -> print_endline "no pure Nash equilibrium (unexpected)"
   | Some ((best_p, best), (worst_p, worst)) ->
     Printf.printf "best pure NE: SC1 = %s at [%s]\n" (Rational.to_string best)
       (String.concat "; " (Array.to_list (Array.map string_of_int best_p)));
     Printf.printf "worst pure NE: SC1 = %s at [%s]\n" (Rational.to_string worst)
       (String.concat "; " (Array.to_list (Array.map string_of_int worst_p))));

  let show label (r : Algo.Correlated.result) =
    Printf.printf "%s: SC1 = %s (≈ %s)\n" label (Rational.to_string r.value)
      (Rational.to_decimal_string r.value ~digits:4);
    List.iter
      (fun (p, prob) ->
        Printf.printf "    recommend [%s] with probability %s\n"
          (String.concat "; " (Array.to_list (Array.map string_of_int p)))
          (Rational.to_string prob))
      r.distribution
  in
  print_newline ();
  show "best correlated equilibrium" (Algo.Correlated.best_social_cost g);
  show "worst correlated equilibrium" (Algo.Correlated.worst_social_cost g);

  print_newline ();
  print_endline
    "The mediator's lottery correlates the users' links: no user profits by ignoring its\n\
     recommendation (judged under its own belief), yet the expected social cost can beat\n\
     the best Nash equilibrium — and the worst correlated equilibrium shows correlation\n\
     can also coordinate on collectively bad patterns."
