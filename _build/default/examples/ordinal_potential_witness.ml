(* The ordinal-potential witness (Section 3.2 / experiment E6).

   The paper remarks — crediting B. Monien — that the state space of
   some instance of the belief model contains a cycle, so the game is
   not an ordinal potential game.  The instance was never published;
   this project's `cycle_hunt` search found one at 6 users after tens of
   millions of smaller instances had none.  This example prints the
   witness and walks its better-response cycle move by move.

   Run with: dune exec examples/ordinal_potential_witness.exe *)

open Model
open Numeric

let () =
  let g = Algo.Witness.better_response_cycle_game () in
  Printf.printf "The witness (reduced form):\n%s\n" (Game_io.to_string g);

  (match Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Better_response with
   | None -> print_endline "unexpected: no cycle!"
   | Some cycle ->
     Printf.printf "A better-response cycle of length %d:\n" (List.length cycle);
     let arr = Array.of_list cycle in
     let steps = Array.length arr in
     for k = 0 to steps - 1 do
       let here = arr.(k) and next = arr.((k + 1) mod steps) in
       (* Identify the mover and its latency improvement. *)
       let mover = ref (-1) in
       Array.iteri (fun i l -> if l <> next.(i) then mover := i) here;
       let i = !mover in
       Printf.printf "  [%s]  user %d moves %d->%d  (latency %s -> %s)\n"
         (String.concat ";" (Array.to_list (Array.map string_of_int here)))
         i here.(i) next.(i)
         (Rational.to_decimal_string (Pure.latency g here i) ~digits:3)
         (Rational.to_decimal_string (Pure.latency g next i) ~digits:3)
     done;
     print_endline "  ... and back to the start: every move strictly improves the mover,";
     print_endline "  so no ordinal potential function can exist for this game.");

  (* The same instance still behaves well in the two senses the paper
     cares about. *)
  Printf.printf "\npure Nash equilibria of the witness: %d (Conjecture 3.7 intact)\n"
    (Algo.Enumerate.count g);
  Printf.printf "best-response graph acyclic: %b (cycles need non-best improving moves)\n"
    (Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Best_response = None);
  Printf.printf "exact potential exists: %b (it never does for belief games — E14)\n"
    (Algo.Potential.is_exact_potential_game g);

  (* Only three of the six users ever move: the static ones are really
     initial link traffic (Definition 3.1), which reduces the witness to
     THREE users. *)
  let g3, initial = Algo.Witness.better_response_cycle_with_initial () in
  Printf.printf
    "\nreduced witness: 3 users (weights 6, 8, 3) with initial link traffic (%s, %s, %s):\n"
    (Rational.to_string initial.(0))
    (Rational.to_string initial.(1))
    (Rational.to_string initial.(2));
  Printf.printf "  better-response cycle with the initial traffic: %b\n"
    (Algo.Game_graph.find_cycle ~initial g3 ~kind:Algo.Game_graph.Better_response <> None);
  Printf.printf "  better-response cycle without it:               %b\n"
    (Algo.Game_graph.find_cycle g3 ~kind:Algo.Game_graph.Better_response <> None);
  print_endline
    "  — so in the paper's generalised (initial-traffic) setting, ordinal potentials\n\
    \  already fail at three users, even though plain 3-user games appear acyclic."
