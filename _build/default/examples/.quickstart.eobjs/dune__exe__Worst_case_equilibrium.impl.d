examples/worst_case_equilibrium.ml: Algo Array Bounds Game List Mixed Model Numeric Printf Rational Social String
