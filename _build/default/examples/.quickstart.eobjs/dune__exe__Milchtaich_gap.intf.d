examples/milchtaich_gap.mli:
