examples/mediation.ml: Algo Array Game List Model Numeric Printf Pure Rational Social String
