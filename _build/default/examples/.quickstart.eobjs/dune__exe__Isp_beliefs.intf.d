examples/isp_beliefs.mli:
