examples/tolerances.mli:
