examples/link_failures.ml: Algo Array Belief Game Kp List Model Numeric Printf Pure Rational State Stats String
