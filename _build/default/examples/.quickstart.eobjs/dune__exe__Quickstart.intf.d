examples/quickstart.mli:
