examples/milchtaich_gap.ml: Algo Array Experiments Hashtbl Kp List Numeric Printf Prng Rational
