examples/tolerances.ml: Algo Array Game Model Numeric Printf Pure Rational String
