examples/mediation.mli:
