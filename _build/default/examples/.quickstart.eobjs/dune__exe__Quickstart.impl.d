examples/quickstart.ml: Algo Array Belief Bounds Game Mixed Model Numeric Printf Pure Rational Social State String
