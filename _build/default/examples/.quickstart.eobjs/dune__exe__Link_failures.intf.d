examples/link_failures.mli:
