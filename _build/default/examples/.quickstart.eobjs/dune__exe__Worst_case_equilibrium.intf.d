examples/worst_case_equilibrium.mli:
