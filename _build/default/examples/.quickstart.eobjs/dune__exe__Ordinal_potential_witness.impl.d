examples/ordinal_potential_witness.ml: Algo Array Game_io List Model Numeric Printf Pure Rational String
