examples/isp_beliefs.ml: Algo Array Belief Bounds Game List Mixed Model Numeric Printf Pure Rational Social State String
