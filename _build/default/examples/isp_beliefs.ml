(* ISP scenario from the paper's introduction: network links are complex
   router paths whose effective capacity depends on congestion and
   failures, and users estimate it from different measurement sources.

   Four tenants of a hosting provider route bulk traffic over three
   uplinks.  The uplinks realise one of three states (off-peak, peak,
   maintenance).  Each tenant's monitoring gives it a different belief,
   so each perceives different effective capacities and the game has
   user-specific payoffs.

   Run with: dune exec examples/isp_beliefs.exe *)

open Model
open Numeric

let q = Rational.of_ints
let qi = Rational.of_int

let () =
  let off_peak = State.make [| qi 10; qi 8; qi 6 |] in
  let peak = State.make [| qi 5; qi 6; qi 6 |] in
  let maintenance = State.make [| qi 10; qi 2; qi 6 |] in
  let space = State.space [ off_peak; peak; maintenance ] in

  (* Tenants and their monitoring-derived beliefs. *)
  let tenants =
    [|
      ("cdn-cache   (trusts historical averages)", qi 6, Belief.make space [| q 1 2; q 1 4; q 1 4 |]);
      ("backup-sync (measures only at night)", qi 5, Belief.make space [| q 9 10; q 1 20; q 1 20 |]);
      ("analytics   (pessimistic SLA planner)", qi 3, Belief.make space [| q 1 10; q 2 5; q 1 2 |]);
      ("web-frontend (live probing, uniform)", qi 2, Belief.uniform space);
    |]
  in
  let weights = Array.map (fun (_, w, _) -> w) tenants in
  let beliefs = Array.map (fun (_, _, b) -> b) tenants in
  let g = Game.make ~weights ~beliefs in

  Printf.printf "Perceived (effective) uplink capacities per tenant:\n";
  Array.iteri
    (fun i (name, w, _) ->
      Printf.printf "  %-40s w=%-3s caps = [%s]\n" name (Rational.to_string w)
        (String.concat "; "
           (List.init 3 (fun l -> Printf.sprintf "%.2f" (Rational.to_float (Game.capacity g i l))))))
    tenants;

  (* Best-response dynamics from "everyone on uplink 0". *)
  let outcome = Algo.Best_response.converge g ~max_steps:200 [| 0; 0; 0; 0 |] in
  Printf.printf "\nBest-response dynamics from all-on-uplink-0: %d moves, converged = %b\n"
    outcome.steps outcome.converged;
  Printf.printf "Equilibrium assignment:\n";
  Array.iteri
    (fun i (name, _, _) ->
      Printf.printf "  %-40s -> uplink %d (latency %.3f)\n" name outcome.profile.(i)
        (Rational.to_float (Pure.latency g outcome.profile i)))
    tenants;

  (* How many pure equilibria does this game have, and how far can the
     worst one be from the social optimum? *)
  let nes = Algo.Enumerate.pure_nash g in
  Printf.printf "\nThis game has %d pure Nash equilibria.\n" (List.length nes);
  let opt1, _ = Social.opt1 g in
  let worst =
    List.fold_left
      (fun acc ne -> Rational.max acc (Pure.social_cost1 g ne))
      Rational.zero nes
  in
  Printf.printf "OPT1 = %.3f; worst equilibrium SC1 = %.3f; empirical PoA = %.3f\n"
    (Rational.to_float opt1) (Rational.to_float worst)
    (Rational.to_float (Rational.div worst opt1));
  Printf.printf "Theorem 4.14 upper bound on the coordination ratio: %.3f\n"
    (Rational.to_float (Bounds.theorem_4_14 g));

  (* The fully mixed equilibrium is the worst-case equilibrium
     (Theorems 4.11/4.12): compare its social cost. *)
  match Algo.Fully_mixed.compute g with
  | None ->
    Printf.printf "\nNo fully mixed equilibrium exists here (Theorem 4.6 candidate leaves (0,1)).\n"
  | Some p ->
    Printf.printf "\nFully mixed equilibrium SC1 = %.3f >= every pure equilibrium's SC1.\n"
      (Rational.to_float (Mixed.social_cost1 g p))
