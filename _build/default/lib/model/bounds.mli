(** Price-of-anarchy upper bounds (Theorems 4.13 and 4.14).

    Both theorems bound [SC_i(G,P) / OPT_i(G)] for every Nash
    equilibrium [P], [i ∈ {1,2}]; the bound values depend only on the
    effective capacity matrix and the dimensions, so they are computed
    exactly as rationals. *)

(** [capacity_extremes g] is [(cmax, cmin)] over all users and links. *)
val capacity_extremes : Game.t -> Numeric.Rational.t * Numeric.Rational.t

(** [theorem_4_13 g] is [(cmax/cmin) · (m + n - 1)/m], the bound for the
    model of uniform user beliefs.
    @raise Invalid_argument when [g] does not have uniform beliefs
    (the theorem's hypothesis). *)
val theorem_4_13 : Game.t -> Numeric.Rational.t

(** [theorem_4_14 g] is
    [(cmax² / cmin) · (m + n - 1) / Σ_j c^j_min] with
    [c^j_min = min_i c^j_i] — the general-case bound. *)
val theorem_4_14 : Game.t -> Numeric.Rational.t
