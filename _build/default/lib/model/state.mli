(** Network states and state spaces (Section 2 of the paper).

    A {e state} assigns a positive capacity to each of the [m] parallel
    links; the {e state space} [Φ] is the finite, non-empty set of
    states the network may realise.  Users do not observe the realised
    state — they hold beliefs over the space ({!Belief}). *)

type t
(** A capacity vector [⟨c^1, …, c^m⟩] with every [c^ℓ > 0]. *)

type space
(** A non-empty set of states over the same number of links. *)

(** [make caps] validates a capacity vector.
    @raise Invalid_argument when [caps] is empty or any entry is
    non-positive. *)
val make : Numeric.Rational.t array -> t

(** [of_ints caps] builds a state from positive integer capacities. *)
val of_ints : int array -> t

(** [links s] is the number of links [m]. *)
val links : t -> int

(** [capacity s l] is [c^l], for [l] in [0, m).
    @raise Invalid_argument when [l] is out of range. *)
val capacity : t -> int -> Numeric.Rational.t

val capacities : t -> Numeric.Rational.t array
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [space states] validates a state space: non-empty, all states over
    the same link count.
    @raise Invalid_argument otherwise. *)
val space : t list -> space

(** [singleton s] is the space containing exactly [s] (the certainty
    case that recovers the KP-model). *)
val singleton : t -> space

val space_links : space -> int
val space_size : space -> int

(** [state space k] is the [k]-th state.
    @raise Invalid_argument when [k] is out of range. *)
val state : space -> int -> t

val states : space -> t list
val pp_space : Format.formatter -> space -> unit
