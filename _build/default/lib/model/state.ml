open Numeric

type t = Rational.t array
type space = t array

let make caps =
  if Array.length caps = 0 then invalid_arg "State.make: no links";
  Array.iter
    (fun c -> if Rational.sign c <= 0 then invalid_arg "State.make: capacities must be positive")
    caps;
  Array.copy caps

let of_ints caps = make (Array.map Rational.of_int caps)

let links = Array.length

let capacity s l =
  if l < 0 || l >= Array.length s then invalid_arg "State.capacity: link out of range";
  s.(l)

let capacities = Array.copy
let equal a b = Array.length a = Array.length b && Array.for_all2 Rational.equal a b

let pp fmt s =
  Format.fprintf fmt "⟨%a⟩"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Rational.pp)
    (Array.to_list s)

let space = function
  | [] -> invalid_arg "State.space: empty state space"
  | first :: _ as states ->
    let m = links first in
    List.iter
      (fun s -> if links s <> m then invalid_arg "State.space: inconsistent link counts")
      states;
    Array.of_list states

let singleton s = [| s |]
let space_links sp = links sp.(0)
let space_size = Array.length

let state sp k =
  if k < 0 || k >= Array.length sp then invalid_arg "State.state: index out of range";
  sp.(k)

let states = Array.to_list

let pp_space fmt sp =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp)
    (Array.to_list sp)
