open Numeric

let capacity_extremes g =
  let cmax = ref (Game.capacity g 0 0) and cmin = ref (Game.capacity g 0 0) in
  for i = 0 to Game.users g - 1 do
    for l = 0 to Game.links g - 1 do
      let c = Game.capacity g i l in
      cmax := Rational.max !cmax c;
      cmin := Rational.min !cmin c
    done
  done;
  (!cmax, !cmin)

let theorem_4_13 g =
  if not (Game.has_uniform_beliefs g) then
    invalid_arg "Bounds.theorem_4_13: game does not have uniform user beliefs";
  let cmax, cmin = capacity_extremes g in
  let n = Game.users g and m = Game.links g in
  Rational.mul (Rational.div cmax cmin) (Rational.of_ints (m + n - 1) m)

let theorem_4_14 g =
  let cmax, cmin = capacity_extremes g in
  let n = Game.users g and m = Game.links g in
  let link_min l =
    let acc = ref (Game.capacity g 0 l) in
    for i = 1 to Game.users g - 1 do
      acc := Rational.min !acc (Game.capacity g i l)
    done;
    !acc
  in
  let sum_min = Rational.sum (List.init m link_min) in
  Rational.div
    (Rational.mul (Rational.mul cmax cmax) (Rational.of_int (m + n - 1)))
    (Rational.mul cmin sum_min)
