open Numeric

type profile = int array

let zero_initial g = Array.make (Game.links g) Rational.zero

let validate g ?initial p =
  if Array.length p <> Game.users g then
    invalid_arg "Pure.validate: profile length differs from user count";
  Array.iter
    (fun l -> if l < 0 || l >= Game.links g then invalid_arg "Pure.validate: link out of range")
    p;
  match initial with
  | None -> ()
  | Some t ->
    if Array.length t <> Game.links g then
      invalid_arg "Pure.validate: initial traffic length differs from link count";
    Array.iter
      (fun q -> if Rational.sign q < 0 then invalid_arg "Pure.validate: negative initial traffic")
      t

let loads g ?initial p =
  let t = match initial with Some t -> Array.copy t | None -> zero_initial g in
  Array.iteri (fun i l -> t.(l) <- Rational.add t.(l) (Game.weight g i)) p;
  t

let load_on g ?initial p l =
  let base = match initial with Some t -> t.(l) | None -> Rational.zero in
  let acc = ref base in
  Array.iteri (fun k lk -> if lk = l then acc := Rational.add !acc (Game.weight g k)) p;
  !acc

let latency g ?initial p i =
  let l = p.(i) in
  Rational.div (load_on g ?initial p l) (Game.capacity g i l)

let latency_in_state g p i k =
  let b = Game.belief g i in
  let st = State.state (Belief.space b) k in
  let l = p.(i) in
  Rational.div (load_on g p l) (State.capacity st l)

let expected_latency_via_states g p i =
  let b = Game.belief g i in
  let acc = ref Rational.zero in
  for k = 0 to State.space_size (Belief.space b) - 1 do
    let pk = Belief.prob b k in
    if not (Rational.is_zero pk) then
      acc := Rational.add !acc (Rational.mul pk (latency_in_state g p i k))
  done;
  !acc

let latency_on_link g ?initial p i l =
  let base = load_on g ?initial p l in
  let load = if p.(i) = l then base else Rational.add base (Game.weight g i) in
  Rational.div load (Game.capacity g i l)

let best_response g ?initial p i =
  let best_link = ref 0 and best = ref (latency_on_link g ?initial p i 0) in
  for l = 1 to Game.links g - 1 do
    let lat = latency_on_link g ?initial p i l in
    if Rational.compare lat !best < 0 then begin
      best_link := l;
      best := lat
    end
  done;
  (!best_link, !best)

let improving_moves g ?initial p i =
  let current = latency g ?initial p i in
  let moves = ref [] in
  for l = Game.links g - 1 downto 0 do
    if l <> p.(i) && Rational.compare (latency_on_link g ?initial p i l) current < 0 then
      moves := l :: !moves
  done;
  !moves

let is_defector g ?initial p i =
  let current = latency g ?initial p i in
  let rec scan l =
    if l >= Game.links g then false
    else if l <> p.(i) && Rational.compare (latency_on_link g ?initial p i l) current < 0 then true
    else scan (l + 1)
  in
  scan 0

let is_nash g ?initial p =
  let rec check i = i >= Game.users g || ((not (is_defector g ?initial p i)) && check (i + 1)) in
  check 0

let defectors g ?initial p =
  List.filter (is_defector g ?initial p) (List.init (Game.users g) Fun.id)

let social_cost1 g ?initial p =
  Rational.sum (List.init (Game.users g) (latency g ?initial p))

let social_cost2 g ?initial p =
  List.fold_left Rational.max Rational.zero (List.init (Game.users g) (latency g ?initial p))

let equal (a : profile) b = a = b

let pp fmt p =
  Format.fprintf fmt "⟨%a⟩"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Format.pp_print_int)
    (Array.to_list p)
