open Numeric

type profile = Qvec.t array

let validate g p =
  if Array.length p <> Game.users g then
    invalid_arg "Mixed.validate: one distribution per user required";
  Array.iter
    (fun row ->
      if Qvec.dim row <> Game.links g then
        invalid_arg "Mixed.validate: distribution dimension differs from link count";
      if not (Qvec.is_distribution row) then
        invalid_arg "Mixed.validate: rows must be probability distributions")
    p

let of_pure g sigma =
  Pure.validate g sigma;
  Array.map
    (fun l ->
      let row = Array.make (Game.links g) Rational.zero in
      row.(l) <- Rational.one;
      row)
    sigma

let uniform g =
  let m = Game.links g in
  Array.init (Game.users g) (fun _ -> Array.make m (Rational.of_ints 1 m))

let expected_traffic g p l =
  let acc = ref Rational.zero in
  Array.iteri (fun i row -> acc := Rational.add !acc (Rational.mul row.(l) (Game.weight g i))) p;
  !acc

let expected_traffics g p = Array.init (Game.links g) (expected_traffic g p)

let latency_on_link g p i l =
  let w_i = Game.weight g i in
  let own = Rational.mul (Rational.sub Rational.one p.(i).(l)) w_i in
  Rational.div (Rational.add own (expected_traffic g p l)) (Game.capacity g i l)

let min_latency g p i =
  let best = ref (latency_on_link g p i 0) in
  for l = 1 to Game.links g - 1 do
    best := Rational.min !best (latency_on_link g p i l)
  done;
  !best

let support p i =
  let row = p.(i) in
  List.filter (fun l -> Rational.sign row.(l) > 0) (List.init (Array.length row) Fun.id)

let is_fully_mixed p =
  Array.for_all (Array.for_all (fun q -> Rational.sign q > 0)) p

let is_nash g p =
  let rec check_user i =
    if i >= Game.users g then true
    else begin
      let lambda = min_latency g p i in
      let rec check_link l =
        if l >= Game.links g then true
        else begin
          let on_l = latency_on_link g p i l in
          let ok =
            if Rational.sign p.(i).(l) > 0 then Rational.equal on_l lambda
            else Rational.compare on_l lambda >= 0
          in
          ok && check_link (l + 1)
        end
      in
      check_link 0 && check_user (i + 1)
    end
  in
  check_user 0

let social_cost1 g p = Rational.sum (List.init (Game.users g) (min_latency g p))

let social_cost2 g p =
  List.fold_left Rational.max Rational.zero (List.init (Game.users g) (min_latency g p))

let equal (a : profile) b =
  Array.length a = Array.length b && Array.for_all2 Qvec.equal a b

let pp fmt p =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Qvec.pp)
    (Array.to_list p)
