(** User beliefs: probability distributions over a state space.

    The paper's central quantity is the {e effective capacity}

    {v c^ℓ_i = 1 / Σ_φ b_i(φ) / c^ℓ_φ v}

    — the belief-weighted harmonic capacity of link [ℓ] under belief
    [b_i].  Every expected latency in the game factors through it
    (Section 2), which reduces the uncertain game to a parallel-links
    game with user-specific capacities. *)

type t

(** [make space probs] pairs a state space with an exact distribution
    over it. @raise Invalid_argument when [probs] has the wrong
    dimension or is not a probability distribution. *)
val make : State.space -> Numeric.Qvec.t -> t

(** [point space k] is certainty of state [k] (a Dirac belief); with a
    shared [point] belief for all users the model degenerates to the
    KP-model. @raise Invalid_argument when [k] is out of range. *)
val point : State.space -> int -> t

(** [certain state] is certainty of [state] over the singleton space. *)
val certain : State.t -> t

(** [uniform space] spreads probability equally over all states. *)
val uniform : State.space -> t

(** [mixture a b ~weight] is [(1-weight)·a + weight·b] over a shared
    space. @raise Invalid_argument when the beliefs live on different
    spaces (compared structurally) or [weight ∉ [0, 1]]. *)
val mixture : t -> t -> weight:Numeric.Rational.t -> t

(** [from_counts space counts ~smoothing] is the empirical belief of a
    user who observed state [k] [counts.(k)] times, with additive
    (Laplace) smoothing: probability [(counts.(k) + smoothing) /
    (total + states·smoothing)].  With [smoothing = 0] some states may
    get probability zero (then [total] must be positive).
    @raise Invalid_argument on negative counts or smoothing, a count
    vector of the wrong length, or an all-zero unsmoothed vector. *)
val from_counts : State.space -> int array -> smoothing:Numeric.Rational.t -> t

(** [condition b ~event] is the Bayesian posterior of [b] given that the
    realised state satisfies [event] (a predicate on state indices):
    probabilities outside the event are zeroed and the rest renormalised
    exactly.  Models a user receiving a coarse signal about the network
    (e.g. "a failure occurred").
    @raise Invalid_argument when the event has prior probability zero. *)
val condition : t -> event:(int -> bool) -> t

val space : t -> State.space
val probs : t -> Numeric.Qvec.t

(** [prob b k] is [b(φ_k)]. *)
val prob : t -> int -> Numeric.Rational.t

(** [links b] is the number of links of the underlying space. *)
val links : t -> int

(** [effective_capacity b l] is [c^l] under belief [b]. *)
val effective_capacity : t -> int -> Numeric.Rational.t

(** [effective_capacities b] is the vector of all [m] effective
    capacities. *)
val effective_capacities : t -> Numeric.Qvec.t

(** [is_uniform_link_view b] holds when the belief induces equal
    effective capacity on every link — the "uniform user beliefs" model
    of Section 3.1. *)
val is_uniform_link_view : t -> bool

(** [expected_inverse_capacity b l] is [Σ_φ b(φ)/c^l_φ], the exact
    expected latency per unit load on link [l]. *)
val expected_inverse_capacity : t -> int -> Numeric.Rational.t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
