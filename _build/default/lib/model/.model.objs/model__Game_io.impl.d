lib/model/game_io.ml: Array Belief Buffer Game List Numeric Printf Rational State String
