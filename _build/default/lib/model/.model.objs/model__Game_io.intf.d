lib/model/game_io.mli: Game
