lib/model/social.mli: Game Mixed Numeric Pure
