lib/model/pure.ml: Array Belief Format Fun Game List Numeric Rational State
