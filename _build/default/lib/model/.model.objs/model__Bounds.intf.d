lib/model/bounds.mli: Game Numeric
