lib/model/mixed.ml: Array Format Fun Game List Numeric Pure Qvec Rational
