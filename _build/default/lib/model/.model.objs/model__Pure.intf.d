lib/model/pure.mli: Format Game Numeric
