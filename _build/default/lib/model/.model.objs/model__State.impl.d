lib/model/state.ml: Array Format List Numeric Rational
