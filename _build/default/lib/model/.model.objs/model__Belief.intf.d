lib/model/belief.mli: Format Numeric State
