lib/model/congestion.mli: Game Mixed Numeric Prng Pure
