lib/model/bounds.ml: Game List Numeric Rational
