lib/model/state.mli: Format Numeric
