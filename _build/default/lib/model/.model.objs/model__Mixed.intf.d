lib/model/mixed.mli: Format Game Numeric Pure
