lib/model/social.ml: Array Fun Game Mixed Numeric Printf Pure Rational Stdlib
