lib/model/game.mli: Belief Format Numeric
