lib/model/congestion.ml: Array Game Mixed Numeric Printf Prng Pure Rational Social
