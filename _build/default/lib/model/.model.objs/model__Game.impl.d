lib/model/game.ml: Array Belief Format Fun List Numeric Rational State
