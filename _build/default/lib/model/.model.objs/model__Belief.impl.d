lib/model/belief.ml: Array Format Numeric Qvec Rational State
