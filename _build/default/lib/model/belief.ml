open Numeric

type t = { space : State.space; probs : Qvec.t }

let make space probs =
  if Qvec.dim probs <> State.space_size space then
    invalid_arg "Belief.make: distribution dimension differs from state-space size";
  if not (Qvec.is_distribution probs) then
    invalid_arg "Belief.make: probabilities must be non-negative and sum to 1";
  { space; probs = Array.copy probs }

let point space k =
  if k < 0 || k >= State.space_size space then invalid_arg "Belief.point: state index out of range";
  let probs = Array.make (State.space_size space) Rational.zero in
  probs.(k) <- Rational.one;
  { space; probs }

let certain st = point (State.singleton st) 0

let uniform space =
  let size = State.space_size space in
  { space; probs = Array.make size (Rational.of_ints 1 size) }

let space b = b.space
let probs b = Array.copy b.probs

let same_space a b =
  State.space_size a.space = State.space_size b.space
  && (let rec states_equal k =
        k >= State.space_size a.space
        || (State.equal (State.state a.space k) (State.state b.space k) && states_equal (k + 1))
      in
      states_equal 0)

let mixture a b ~weight =
  if not (same_space a b) then invalid_arg "Belief.mixture: beliefs live on different spaces";
  if Rational.sign weight < 0 || Rational.compare weight Rational.one > 0 then
    invalid_arg "Belief.mixture: weight outside [0, 1]";
  let keep = Rational.sub Rational.one weight in
  {
    space = a.space;
    probs =
      Array.init (Array.length a.probs) (fun k ->
          Rational.add (Rational.mul keep a.probs.(k)) (Rational.mul weight b.probs.(k)));
  }

let from_counts space counts ~smoothing =
  let states = State.space_size space in
  if Array.length counts <> states then
    invalid_arg "Belief.from_counts: one count per state required";
  Array.iter (fun c -> if c < 0 then invalid_arg "Belief.from_counts: negative count") counts;
  if Rational.sign smoothing < 0 then invalid_arg "Belief.from_counts: negative smoothing";
  let total = Array.fold_left ( + ) 0 counts in
  let denom =
    Rational.add (Rational.of_int total) (Rational.mul (Rational.of_int states) smoothing)
  in
  if Rational.is_zero denom then
    invalid_arg "Belief.from_counts: no observations and no smoothing";
  {
    space;
    probs =
      Array.map (fun c -> Rational.div (Rational.add (Rational.of_int c) smoothing) denom) counts;
  }

let prob b k =
  if k < 0 || k >= Array.length b.probs then invalid_arg "Belief.prob: state index out of range";
  b.probs.(k)

let links b = State.space_links b.space

let expected_inverse_capacity b l =
  let acc = ref Rational.zero in
  Array.iteri
    (fun k p ->
      if not (Rational.is_zero p) then
        acc := Rational.add !acc (Rational.div p (State.capacity (State.state b.space k) l)))
    b.probs;
  !acc

let effective_capacity b l = Rational.inv (expected_inverse_capacity b l)
let effective_capacities b = Array.init (links b) (effective_capacity b)

let is_uniform_link_view b =
  let caps = effective_capacities b in
  Array.for_all (Rational.equal caps.(0)) caps

let condition b ~event =
  let mass = ref Rational.zero in
  Array.iteri (fun k p -> if event k then mass := Rational.add !mass p) b.probs;
  if Rational.is_zero !mass then
    invalid_arg "Belief.condition: event has prior probability zero";
  {
    space = b.space;
    probs =
      Array.mapi
        (fun k p -> if event k then Rational.div p !mass else Rational.zero)
        b.probs;
  }

let equal a b = same_space a b && Qvec.equal a.probs b.probs

let pp fmt b =
  Format.fprintf fmt "belief%a over %a" Qvec.pp b.probs State.pp_space b.space
