open Model

(** Embedding of the uncertainty game into Milchtaich's class.

    Section 2 of the paper observes that the belief game is an instance
    of weighted congestion games with player-specific payoff functions:
    player [i]'s cost on link [l] under load [L] is [L / c^l_i].  For
    games with integral weights this module materialises that embedding
    as a {!Milchtaich.Weighted} cost table, giving an independent
    implementation of the same game whose equilibria must coincide —
    exercised by cross-validation tests. *)

(** [to_weighted g] is the player-specific image of [g], or [None] when
    some weight is not an integer (the table representation needs
    integral loads). *)
val to_weighted : Game.t -> Milchtaich.Weighted.t option
