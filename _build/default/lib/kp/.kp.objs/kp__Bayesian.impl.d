lib/kp/bayesian.ml: Array List Numeric Prng Qvec Rational
