lib/kp/milchtaich.ml: Array Bytes Fun List Numeric Prng Rational
