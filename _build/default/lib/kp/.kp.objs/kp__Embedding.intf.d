lib/kp/embedding.mli: Game Milchtaich Model
