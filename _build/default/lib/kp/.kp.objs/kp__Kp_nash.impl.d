lib/kp/kp_nash.ml: Array Fun Game List Model Numeric Printf Pure Rational Stdlib
