lib/kp/bayesian.mli: Numeric Prng
