lib/kp/embedding.ml: Array Bigint Game List Milchtaich Model Numeric Rational
