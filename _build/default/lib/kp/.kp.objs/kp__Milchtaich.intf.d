lib/kp/milchtaich.mli: Numeric Prng
