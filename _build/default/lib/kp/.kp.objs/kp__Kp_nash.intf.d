lib/kp/kp_nash.mli: Game Model Pure
