open Numeric

(* Shared profile enumeration: all links^players assignments. *)
let iter_profiles ~players ~links f =
  let p = Array.make players 0 in
  let rec next i =
    if i < 0 then false
    else if p.(i) + 1 < links then begin
      p.(i) <- p.(i) + 1;
      true
    end
    else begin
      p.(i) <- 0;
      next (i - 1)
    end
  in
  let continue = ref true in
  while !continue do
    f p;
    continue := next (players - 1)
  done

(* Three-colour DFS for a cycle in an abstract successor graph over
   integer-encoded profiles; shared by both game variants. *)
let graph_cycle ~nodes ~successors =
  let colour = Bytes.make nodes '\000' in
  let cycle = ref None in
  let rec dfs v =
    Bytes.set colour v '\001';
    List.iter
      (fun s ->
        if !cycle = None then
          match Bytes.get colour s with
          | '\000' -> dfs s
          | '\001' -> cycle := Some s
          | _ -> ())
      (successors v);
    if !cycle = None then Bytes.set colour v '\002'
  in
  let v = ref 0 in
  while !cycle = None && !v < nodes do
    if Bytes.get colour !v = '\000' then dfs !v;
    incr v
  done;
  !cycle <> None

let encode ~links p = Array.fold_right (fun l acc -> (acc * links) + l) p 0

let decode ~players ~links k =
  let p = Array.make players 0 in
  let rest = ref k in
  for i = 0 to players - 1 do
    p.(i) <- !rest mod links;
    rest := !rest / links
  done;
  p

let pow_int b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

module Unweighted = struct
  type t = { cost : Rational.t array array array }

  let make cost =
    let players = Array.length cost in
    if players = 0 then invalid_arg "Milchtaich.Unweighted.make: no players";
    let links = Array.length cost.(0) in
    if links < 2 then invalid_arg "Milchtaich.Unweighted.make: at least two links required";
    Array.iter
      (fun rows ->
        if Array.length rows <> links then
          invalid_arg "Milchtaich.Unweighted.make: ragged link dimension";
        Array.iter
          (fun col ->
            if Array.length col <> players then
              invalid_arg "Milchtaich.Unweighted.make: table must cover congestions 1..players";
            for k = 1 to players - 1 do
              if Rational.compare col.(k) col.(k - 1) < 0 then
                invalid_arg "Milchtaich.Unweighted.make: costs must be non-decreasing in congestion"
            done)
          rows)
      cost;
    { cost = Array.map (Array.map Array.copy) cost }

  let players t = Array.length t.cost
  let links t = Array.length t.cost.(0)

  let cost t ~player ~link ~occupancy =
    if occupancy < 1 || occupancy > players t then
      invalid_arg "Milchtaich.Unweighted.cost: occupancy out of range";
    t.cost.(player).(link).(occupancy - 1)

  let occupancy p l =
    Array.fold_left (fun acc lk -> if lk = l then acc + 1 else acc) 0 p

  let latency t p i = t.cost.(i).(p.(i)).(occupancy p p.(i) - 1)

  let is_nash t p =
    let n = players t and m = links t in
    let rec check_player i =
      if i >= n then true
      else begin
        let here = latency t p i in
        let rec check_link l =
          if l >= m then true
          else if l = p.(i) then check_link (l + 1)
          else begin
            let there = t.cost.(i).(l).(occupancy p l) (* +1 occupant, 0-based *) in
            Rational.compare there here >= 0 && check_link (l + 1)
          end
        in
        check_link 0 && check_player (i + 1)
      end
    in
    check_player 0

  let pure_nash t =
    let acc = ref [] in
    iter_profiles ~players:(players t) ~links:(links t) (fun p ->
        if is_nash t p then acc := Array.copy p :: !acc);
    List.rev !acc

  let exists_pure_nash t =
    let exception Found in
    try
      iter_profiles ~players:(players t) ~links:(links t) (fun p ->
          if is_nash t p then raise Found);
      false
    with Found -> true

  let random rng ~players ~links ~value_bound =
    let monotone_column () =
      let acc = ref Rational.zero in
      Array.init players (fun _ ->
          acc := Rational.add !acc (Prng.Rng.positive_rational rng ~num_bound:value_bound ~den_bound:value_bound);
          !acc)
    in
    make (Array.init players (fun _ -> Array.init links (fun _ -> monotone_column ())))

  let improving_moves t p i =
    let here = latency t p i in
    List.filter
      (fun l -> l <> p.(i) && Rational.compare t.cost.(i).(l).(occupancy p l) here < 0)
      (List.init (links t) Fun.id)

  let has_better_response_cycle t =
    let n = players t and m = links t in
    let nodes = pow_int m n in
    let successors v =
      let p = decode ~players:n ~links:m v in
      List.concat_map
        (fun i ->
          List.map
            (fun l ->
              let q = Array.copy p in
              q.(i) <- l;
              encode ~links:m q)
            (improving_moves t p i))
        (List.init n Fun.id)
    in
    graph_cycle ~nodes ~successors
end

module Weighted = struct
  type t = { weights : int array; cost : Rational.t array array array }

  let total_weight weights = Array.fold_left ( + ) 0 weights

  let make ~weights cost =
    let players = Array.length weights in
    if players = 0 then invalid_arg "Milchtaich.Weighted.make: no players";
    Array.iter
      (fun w -> if w <= 0 then invalid_arg "Milchtaich.Weighted.make: weights must be positive")
      weights;
    if Array.length cost <> players then
      invalid_arg "Milchtaich.Weighted.make: one cost table per player required";
    let links = Array.length cost.(0) in
    if links < 2 then invalid_arg "Milchtaich.Weighted.make: at least two links required";
    let loads = total_weight weights in
    Array.iter
      (fun rows ->
        if Array.length rows <> links then invalid_arg "Milchtaich.Weighted.make: ragged link dimension";
        Array.iter
          (fun col ->
            if Array.length col <> loads + 1 then
              invalid_arg "Milchtaich.Weighted.make: table must cover loads 0..total weight";
            for k = 1 to loads do
              if Rational.compare col.(k) col.(k - 1) < 0 then
                invalid_arg "Milchtaich.Weighted.make: costs must be non-decreasing in load"
            done)
          rows)
      cost;
    { weights = Array.copy weights; cost = Array.map (Array.map Array.copy) cost }

  let players t = Array.length t.weights
  let links t = Array.length t.cost.(0)

  let weight t i = t.weights.(i)

  let load t p l =
    let acc = ref 0 in
    Array.iteri (fun i lk -> if lk = l then acc := !acc + t.weights.(i)) p;
    !acc

  let latency t p i = t.cost.(i).(p.(i)).(load t p p.(i))

  let is_nash t p =
    let n = players t and m = links t in
    let rec check_player i =
      if i >= n then true
      else begin
        let here = latency t p i in
        let rec check_link l =
          if l >= m then true
          else if l = p.(i) then check_link (l + 1)
          else begin
            let there = t.cost.(i).(l).(load t p l + t.weights.(i)) in
            Rational.compare there here >= 0 && check_link (l + 1)
          end
        in
        check_link 0 && check_player (i + 1)
      end
    in
    check_player 0

  let pure_nash t =
    let acc = ref [] in
    iter_profiles ~players:(players t) ~links:(links t) (fun p ->
        if is_nash t p then acc := Array.copy p :: !acc);
    List.rev !acc

  let exists_pure_nash t =
    let exception Found in
    try
      iter_profiles ~players:(players t) ~links:(links t) (fun p ->
          if is_nash t p then raise Found);
      false
    with Found -> true

  let random rng ~weights ~links ~value_bound =
    let loads = total_weight weights in
    let monotone_column () =
      let acc = ref Rational.zero in
      Array.init (loads + 1) (fun k ->
          if k > 0 then
            acc :=
              Rational.add !acc
                (Prng.Rng.positive_rational rng ~num_bound:value_bound ~den_bound:value_bound);
          !acc)
    in
    make ~weights
      (Array.init (Array.length weights) (fun _ ->
           Array.init links (fun _ -> monotone_column ())))

  (* Local search that destroys equilibria one at a time: while the
     instance has a pure NE, pick one, pick a player in it, and lower
     that player's cost on some other link just below its current
     latency (repairing monotonicity), so the chosen profile stops being
     an equilibrium.  Blind rejection sampling essentially never finds
     such instances (random monotone tables have a pure NE with
     overwhelming probability), whereas this walk succeeds quickly. *)
  let kill_equilibrium rng t ne =
    let i = Prng.Rng.int rng (players t) in
    let m = links t in
    let l' = (ne.(i) + 1 + Prng.Rng.int rng (m - 1)) mod m in
    let here = latency t ne i in
    let target_load = load t ne l' + t.weights.(i) in
    (* Aim strictly below the current latency; 3/4 keeps values positive. *)
    let v = Rational.mul here (Rational.of_ints 3 4) in
    let col = t.cost.(i).(l') in
    col.(target_load) <- v;
    for k = 0 to target_load - 1 do
      if Rational.compare col.(k) v > 0 then col.(k) <- v
    done;
    for k = target_load + 1 to Array.length col - 1 do
      if Rational.compare col.(k) v < 0 then col.(k) <- v
    done

  let search_no_pure_nash rng ~weights ~links ~attempts =
    let t = ref (random rng ~weights ~links ~value_bound:8) in
    let rec go k =
      if k > attempts then None
      else
        match pure_nash !t with
        | [] -> Some (!t, k)
        | nes ->
          (* Occasional restarts escape regions where killing one
             equilibrium keeps creating another. *)
          if k mod 512 = 0 then t := random rng ~weights ~links ~value_bound:8
          else kill_equilibrium rng !t (Prng.Rng.pick_list rng nes);
          go (k + 1)
    in
    go 1
end
