open Numeric

type t = {
  capacities : Rational.t array;
  traffics : Rational.t array array; (* traffics.(i).(k) *)
  probs : Rational.t array array; (* probs.(i).(k) *)
}

let make ~capacities ~types =
  if Array.length capacities < 2 then invalid_arg "Bayesian.make: at least two links required";
  Array.iter
    (fun c -> if Rational.sign c <= 0 then invalid_arg "Bayesian.make: capacities must be positive")
    capacities;
  if Array.length types = 0 then invalid_arg "Bayesian.make: no users";
  let traffics =
    Array.map
      (fun tys ->
        if tys = [] then invalid_arg "Bayesian.make: empty type list";
        Array.of_list (List.map fst tys))
      types
  in
  let probs = Array.map (fun tys -> Array.of_list (List.map snd tys)) types in
  Array.iter
    (Array.iter (fun w ->
         if Rational.sign w <= 0 then invalid_arg "Bayesian.make: traffics must be positive"))
    traffics;
  Array.iter
    (fun p ->
      if not (Qvec.is_distribution p) then
        invalid_arg "Bayesian.make: type probabilities must form a distribution")
    probs;
  { capacities = Array.copy capacities; traffics; probs }

let users t = Array.length t.traffics
let links t = Array.length t.capacities
let type_count t i = Array.length t.traffics.(i)
let traffic t i k = t.traffics.(i).(k)
let type_prob t i k = t.probs.(i).(k)

type strategy = int array array

let validate t s =
  if Array.length s <> users t then invalid_arg "Bayesian.validate: one row per user required";
  Array.iteri
    (fun i row ->
      if Array.length row <> type_count t i then
        invalid_arg "Bayesian.validate: one choice per type required";
      Array.iter
        (fun l -> if l < 0 || l >= links t then invalid_arg "Bayesian.validate: link out of range")
        row)
    s

let expected_foreign_load t s ~user l =
  let acc = ref Rational.zero in
  for k = 0 to users t - 1 do
    if k <> user then
      Array.iteri
        (fun ty link ->
          if link = l then
            acc := Rational.add !acc (Rational.mul t.probs.(k).(ty) t.traffics.(k).(ty)))
        s.(k)
  done;
  !acc

let latency t s ~user ~ty l =
  Rational.div
    (Rational.add t.traffics.(user).(ty) (expected_foreign_load t s ~user l))
    t.capacities.(l)

let best_response t s ~user ~ty =
  let best = ref 0 and best_v = ref (latency t s ~user ~ty 0) in
  for l = 1 to links t - 1 do
    let v = latency t s ~user ~ty l in
    if Rational.compare v !best_v < 0 then begin
      best := l;
      best_v := v
    end
  done;
  (!best, !best_v)

let is_nash t s =
  let rec user_ok i =
    if i >= users t then true
    else begin
      let rec ty_ok ty =
        if ty >= type_count t i then true
        else begin
          let current = latency t s ~user:i ~ty s.(i).(ty) in
          let _, best = best_response t s ~user:i ~ty in
          Rational.compare best current >= 0 && ty_ok (ty + 1)
        end
      in
      ty_ok 0 && user_ok (i + 1)
    end
  in
  user_ok 0

let solve t =
  let s = Array.init (users t) (fun i -> Array.make (type_count t i) 0) in
  let total_types = Array.fold_left (fun acc row -> acc + Array.length row) 0 s in
  let budget = ref (256 * total_types * total_types * links t) in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to users t - 1 do
      for ty = 0 to type_count t i - 1 do
        let current = latency t s ~user:i ~ty s.(i).(ty) in
        let target, best = best_response t s ~user:i ~ty in
        if Rational.compare best current < 0 then begin
          decr budget;
          if !budget < 0 then failwith "Bayesian.solve: step budget exceeded";
          s.(i).(ty) <- target;
          improved := true
        end
      done
    done
  done;
  s

let exists_pure_nash ?(limit = 1_000_000) t =
  let m = links t in
  let slots = ref [] in
  for i = users t - 1 downto 0 do
    for ty = type_count t i - 1 downto 0 do
      slots := (i, ty) :: !slots
    done
  done;
  let slots = Array.of_list !slots in
  let total = Array.length slots in
  let rec count acc i =
    if i = 0 then Some acc else if acc > limit then None else count (acc * m) (i - 1)
  in
  (match count 1 total with
   | Some c when c <= limit -> ()
   | _ -> invalid_arg "Bayesian.exists_pure_nash: strategy space exceeds the limit");
  let s = Array.init (users t) (fun i -> Array.make (type_count t i) 0) in
  let rec next idx =
    if idx < 0 then false
    else begin
      let i, ty = slots.(idx) in
      if s.(i).(ty) + 1 < m then begin
        s.(i).(ty) <- s.(i).(ty) + 1;
        true
      end
      else begin
        s.(i).(ty) <- 0;
        next (idx - 1)
      end
    end
  in
  let rec scan () = if is_nash t s then true else if next (total - 1) then scan () else false in
  scan ()

let random rng ~n ~m ~max_types ~bound =
  let capacities = Array.init m (fun _ -> Rational.of_int (Prng.Rng.int_in rng 1 bound)) in
  let types =
    Array.init n (fun _ ->
        let k = Prng.Rng.int_in rng 1 max_types in
        let probs = Prng.Rng.positive_simplex rng ~dim:k ~grain:(k + 3) in
        List.init k (fun ty ->
            (Rational.of_int (Prng.Rng.int_in rng 1 bound), probs.(ty))))
  in
  make ~capacities ~types
