open Model
open Numeric

let to_weighted g =
  let n = Game.users g and m = Game.links g in
  let int_weight i =
    let w = Game.weight g i in
    if Rational.is_integer w then Bigint.to_int_opt (Rational.num w) else None
  in
  let rec collect i acc =
    if i >= n then Some (List.rev acc)
    else
      match int_weight i with
      | Some w -> collect (i + 1) (w :: acc)
      | None -> None
  in
  match collect 0 [] with
  | None -> None
  | Some ws ->
    let weights = Array.of_list ws in
    let total = Array.fold_left ( + ) 0 weights in
    let cost =
      Array.init n (fun i ->
          Array.init m (fun l ->
              let c = Game.capacity g i l in
              Array.init (total + 1) (fun load -> Rational.div (Rational.of_int load) c)))
    in
    Some (Milchtaich.Weighted.make ~weights cost)
