(** Congestion games with player-specific payoff functions
    (Milchtaich, Games and Economic Behavior 1996).

    The uncertainty game of the paper is an instance of this class, so
    the class itself is implemented as a substrate:

    - {!Unweighted}: every player contributes one unit of congestion and
      player [i]'s cost on link [l] with [k] occupants is a monotone
      table entry.  Milchtaich proved these games {e always} possess a
      pure Nash equilibrium; our engine checks that claim exhaustively
      in tests.
    - {!Weighted}: players carry integer weights and costs depend on the
      total load.  Here pure equilibria can fail to exist (Milchtaich's
      3-player/3-link counterexample); {!Weighted.search_no_pure_nash}
      finds such instances, which is what experiment E7 contrasts with
      the belief-induced games of the paper (where the n = 3 case is
      proven to always have one). *)

module Unweighted : sig
  type t

  (** [make cost] wraps [cost.(i).(l).(k-1)] = cost to player [i] on
      link [l] shared by [k] players.
      @raise Invalid_argument on ragged tables, tables not covering
      congestions [1..players], or costs decreasing in [k]. *)
  val make : Numeric.Rational.t array array array -> t

  val players : t -> int
  val links : t -> int
  val cost : t -> player:int -> link:int -> occupancy:int -> Numeric.Rational.t

  (** [latency t p i] is player [i]'s cost under profile [p]. *)
  val latency : t -> int array -> int -> Numeric.Rational.t

  val is_nash : t -> int array -> bool
  val pure_nash : t -> int array list
  val exists_pure_nash : t -> bool

  (** [random rng ~players ~links ~value_bound] draws monotone cost
      tables with rational entries. *)
  val random : Prng.Rng.t -> players:int -> links:int -> value_bound:int -> t

  (** [improving_moves t p i] lists the links that strictly lower
      player [i]'s cost from profile [p]. *)
  val improving_moves : t -> int array -> int -> int list

  (** [has_better_response_cycle t] holds when the improvement graph of
      [t] has a cycle — i.e. the game lacks the finite improvement
      property.  Milchtaich showed this can happen even though a pure
      NE always exists in the unweighted case. *)
  val has_better_response_cycle : t -> bool
end

module Weighted : sig
  type t

  (** [make ~weights cost] wraps a weighted game: [weights.(i)] is a
      positive integer weight, and [cost.(i).(l).(load)] is defined for
      all loads [0..Σ weights] and non-decreasing in [load].
      @raise Invalid_argument on malformed input. *)
  val make : weights:int array -> Numeric.Rational.t array array array -> t

  val players : t -> int
  val links : t -> int
  val weight : t -> int -> int

  val latency : t -> int array -> int -> Numeric.Rational.t
  val is_nash : t -> int array -> bool
  val pure_nash : t -> int array list
  val exists_pure_nash : t -> bool

  (** [random rng ~weights ~links ~value_bound] draws a weighted
      player-specific game with monotone cost tables. *)
  val random : Prng.Rng.t -> weights:int array -> links:int -> value_bound:int -> t

  (** [search_no_pure_nash rng ~weights ~links ~attempts] looks for an
      instance without any pure Nash equilibrium by an adaptive local
      search (repeatedly making some equilibrium profile unstable, with
      periodic restarts), returning the witness instance and the number
      of steps used.  Blind sampling is hopeless here: random monotone
      tables almost always admit a pure NE. *)
  val search_no_pure_nash :
    Prng.Rng.t -> weights:int array -> links:int -> attempts:int -> (t * int) option
end
