open Model

(** Pure Nash equilibria for the classical KP-model (the point-belief
    special case of the uncertainty game).

    [solve] is the greedy algorithm of Fotakis et al. [6] — a variant of
    Graham's LPT rule for related links: process users in order of
    decreasing weight and give each its best response against the users
    already placed.  For KP instances this yields a pure Nash
    equilibrium in O(n(log n + m)).

    [nashify] converts an arbitrary pure profile into a Nash equilibrium
    by max-weight-first best-response moves (in the spirit of
    Feldmann et al. [4]); for KP instances the dynamics terminate. *)

(** [solve g] is a pure Nash equilibrium.
    @raise Invalid_argument unless [Game.is_kp g]. *)
val solve : Game.t -> Pure.profile

(** [nashify g p] upgrades [p] to a Nash equilibrium by repeatedly
    moving the heaviest defector to its best response.
    @raise Invalid_argument unless [Game.is_kp g].
    @raise Failure if the dynamics exceed a generous step budget
    (cannot happen on KP instances). *)
val nashify : Game.t -> Pure.profile -> Pure.profile
