(** The complementary incomplete-information model of Gairing, Monien
    and Tiemann (SPAA 2005), cited by the paper as [8]: a KP network
    with {e common} link capacities where the uncertainty is about the
    {e traffics} of the users, not the capacities.

    Each user has a finite set of possible traffic values (types) with a
    commonly known distribution and knows only its own realisation; a
    pure Bayesian strategy maps each type to a link.  The paper situates
    its contribution against this model ("complementary to our work"),
    so the reproduction implements it as a baseline: [8] proves a pure
    Bayesian Nash equilibrium always exists, which experiment E14 checks
    side by side with Conjecture 3.7 for the capacity-uncertainty
    model. *)

type t

(** [make ~capacities ~types] builds an instance; [types.(i)] lists the
    [(traffic, probability)] pairs of user [i].
    @raise Invalid_argument when capacities are not positive, a type
    list is empty, traffics are not positive, or probabilities are not
    an exact distribution. *)
val make :
  capacities:Numeric.Rational.t array ->
  types:(Numeric.Rational.t * Numeric.Rational.t) list array ->
  t

val users : t -> int
val links : t -> int

(** [type_count t i] is the number of types of user [i]. *)
val type_count : t -> int -> int

(** [traffic t i k] and [type_prob t i k] describe type [k] of user [i]. *)
val traffic : t -> int -> int -> Numeric.Rational.t

val type_prob : t -> int -> int -> Numeric.Rational.t

type strategy = int array array
(** [strategy.(i).(k)] is the link chosen by user [i] when its type is
    [k]. *)

(** [validate t s]. @raise Invalid_argument on malformed strategies. *)
val validate : t -> strategy -> unit

(** [expected_foreign_load t s ~user l] is
    [Σ_{k≠user} E[w_k · 1(s_k = l)]] — the expected traffic others put
    on link [l]. *)
val expected_foreign_load : t -> strategy -> user:int -> int -> Numeric.Rational.t

(** [latency t s ~user ~ty l] is the conditional expected latency of
    user [user] with realised type [ty] on link [l]. *)
val latency : t -> strategy -> user:int -> ty:int -> int -> Numeric.Rational.t

(** [is_nash t s] holds when every type of every user best-responds. *)
val is_nash : t -> strategy -> bool

(** [solve t] runs best-response dynamics over (user, type) pairs from
    the all-on-link-0 strategy.  [8] proves pure equilibria always
    exist; on identical links the dynamics provably converge, and a
    generous step budget guards the general case.
    @raise Failure if the budget is exhausted (never observed). *)
val solve : t -> strategy

(** [exists_pure_nash t] checks exhaustively over all [m^{Σ|T_i|}]
    strategies. @raise Invalid_argument when that count exceeds [limit]
    (default [1_000_000]). *)
val exists_pure_nash : ?limit:int -> t -> bool

(** [random rng ~n ~m ~max_types ~bound] draws a random instance with
    integer capacities and traffics in [1, bound]. *)
val random : Prng.Rng.t -> n:int -> m:int -> max_types:int -> bound:int -> t
