(** Exact linear programming (two-phase primal simplex, Bland's rule).

    Everything is over rationals, so optima are exact and cycling is
    impossible (Bland).  Built for the correlated-equilibrium
    computations in {!Algo.Correlated}: those LPs are small (hundreds of
    variables) but need exact feasibility — a float LP cannot certify
    that an incentive constraint holds with equality.

    Problems are stated as: optimise [objective · x] subject to the
    given constraints and [x >= 0]. *)

type relation = Le | Ge | Eq

type constraint_ = {
  coeffs : Rational.t array;  (** one coefficient per variable *)
  relation : relation;
  rhs : Rational.t;
}

type outcome =
  | Optimal of Rational.t * Rational.t array  (** value and a solution *)
  | Infeasible
  | Unbounded

(** [maximize ~objective constraints] solves
    [max objective·x  s.t.  constraints, x >= 0].
    @raise Invalid_argument on dimension mismatches or an empty
    problem. *)
val maximize : objective:Rational.t array -> constraint_ list -> outcome

(** [minimize ~objective constraints] is
    [maximize ~objective:(-objective)] with the value negated back. *)
val minimize : objective:Rational.t array -> constraint_ list -> outcome
