type t =
  | Zero
  | Pos of Bignat.t (* invariant: magnitude non-zero *)
  | Neg of Bignat.t (* invariant: magnitude non-zero *)

let zero = Zero
let one = Pos Bignat.one
let minus_one = Neg Bignat.one

let of_nat n = if Bignat.is_zero n then Zero else Pos n

let of_int n =
  if n = 0 then Zero
  else if n > 0 then Pos (Bignat.of_int n)
  else if n = min_int then
    (* [-min_int] overflows; build from the magnitude of [min_int + 1]. *)
    Neg (Bignat.succ (Bignat.of_int (-(n + 1))))
  else Neg (Bignat.of_int (-n))

let to_int_opt = function
  | Zero -> Some 0
  | Pos m -> Bignat.to_int_opt m
  | Neg m ->
    (match Bignat.to_int_opt (Bignat.pred m) with
     | Some i when i < max_int -> Some (-(i + 1))
     | Some i -> Some (-i - 1)
     | None -> None)

let to_int_exn n =
  match to_int_opt n with
  | Some i -> i
  | None -> failwith "Bigint.to_int_exn: value exceeds native int range"

let to_nat_exn = function
  | Zero -> Bignat.zero
  | Pos m -> m
  | Neg _ -> invalid_arg "Bigint.to_nat_exn: negative value"

let abs_nat = function Zero -> Bignat.zero | Pos m | Neg m -> m
let sign = function Zero -> 0 | Pos _ -> 1 | Neg _ -> -1
let is_zero n = n = Zero

let equal (a : t) (b : t) =
  match a, b with
  | Zero, Zero -> true
  | Pos x, Pos y | Neg x, Neg y -> Bignat.equal x y
  | _ -> false

let compare a b =
  match a, b with
  | Zero, Zero -> 0
  | Zero, Pos _ | Neg _, (Zero | Pos _) -> -1
  | Zero, Neg _ | Pos _, (Zero | Neg _) -> 1
  | Pos x, Pos y -> Bignat.compare x y
  | Neg x, Neg y -> Bignat.compare y x

let hash = function
  | Zero -> 0
  | Pos m -> Bignat.hash m
  | Neg m -> lnot (Bignat.hash m)

let neg = function Zero -> Zero | Pos m -> Neg m | Neg m -> Pos m
let abs = function Neg m -> Pos m | n -> n

let add a b =
  match a, b with
  | Zero, n | n, Zero -> n
  | Pos x, Pos y -> Pos (Bignat.add x y)
  | Neg x, Neg y -> Neg (Bignat.add x y)
  | Pos x, Neg y | Neg y, Pos x ->
    let c = Bignat.compare x y in
    if c = 0 then Zero
    else if c > 0 then Pos (Bignat.sub x y)
    else Neg (Bignat.sub y x)

let sub a b = add a (neg b)

let mul a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | Pos x, Pos y | Neg x, Neg y -> Pos (Bignat.mul x y)
  | Pos x, Neg y | Neg x, Pos y -> Neg (Bignat.mul x y)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  let q, r = Bignat.divmod (abs_nat a) (abs_nat b) in
  let quotient =
    if sign a * sign b >= 0 then of_nat q
    else neg (of_nat q)
  in
  let remainder = if sign a >= 0 then of_nat r else neg (of_nat r) in
  (quotient, remainder)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)
let gcd a b = of_nat (Bignat.gcd (abs_nat a) (abs_nat b))

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let mag = Bignat.pow (abs_nat b) e in
  match sign b with
  | 0 -> if e = 0 then one else Zero
  | 1 -> of_nat mag
  | _ -> if e land 1 = 0 then of_nat mag else neg (of_nat mag)

let to_string = function
  | Zero -> "0"
  | Pos m -> Bignat.to_string m
  | Neg m -> "-" ^ Bignat.to_string m

let of_string s =
  if s = "" then invalid_arg "Bigint.of_string: empty string"
  else if s.[0] = '-' then
    neg (of_nat (Bignat.of_string (String.sub s 1 (String.length s - 1))))
  else if s.[0] = '+' then
    of_nat (Bignat.of_string (String.sub s 1 (String.length s - 1)))
  else of_nat (Bignat.of_string s)

let pp fmt n = Format.pp_print_string fmt (to_string n)

let to_float = function
  | Zero -> 0.0
  | Pos m -> Bignat.to_float m
  | Neg m -> -.Bignat.to_float m
