type t = { num : Bigint.t; den : Bigint.t }
(* Invariant: den > 0 and gcd(|num|, den) = 1. *)

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)
let of_int n = { num = Bigint.of_int n; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let half = of_ints 1 2
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

let to_float q = Bigint.to_float q.num /. Bigint.to_float q.den

let of_float_dyadic f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float_dyadic: not finite";
  let mantissa, exponent = Float.frexp f in
  (* mantissa * 2^53 is integral for every finite float. *)
  let scaled = Int64.to_int (Int64.of_float (Float.ldexp mantissa 53)) in
  let num = Bigint.of_int scaled in
  let e = exponent - 53 in
  if e >= 0 then make (Bigint.mul num (Bigint.pow (Bigint.of_int 2) e)) Bigint.one
  else make num (Bigint.pow (Bigint.of_int 2) (-e))

let is_zero q = Bigint.is_zero q.num
let is_integer q = Bigint.equal q.den Bigint.one
let sign q = Bigint.sign q.num

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den  (dens > 0) *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let hash q = (Bigint.hash q.num * 31) + Bigint.hash q.den

let neg q = { q with num = Bigint.neg q.num }
let abs q = { q with num = Bigint.abs q.num }

let inv q =
  if is_zero q then raise Division_by_zero;
  if Bigint.sign q.num > 0 then { num = q.den; den = q.num }
  else { num = Bigint.neg q.den; den = Bigint.neg q.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let sum qs = List.fold_left add zero qs
let sum_array qs = Array.fold_left add zero qs

let mean = function
  | [] -> invalid_arg "Rational.mean: empty list"
  | qs -> div (sum qs) (of_int (List.length qs))

let floor q =
  let quot, rem = Bigint.divmod q.num q.den in
  if Bigint.is_zero rem || Bigint.sign q.num >= 0 then of_bigint quot
  else of_bigint (Bigint.sub quot Bigint.one)

let ceil q = neg (floor (neg q))

let of_string s =
  let s = String.trim s in
  if String.equal s "" then invalid_arg "Rational.of_string: empty string";
  match String.index_opt s '/' with
  | Some i ->
    let n = Bigint.of_string (String.sub s 0 i) in
    let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let whole = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if String.equal frac "" then invalid_arg (Printf.sprintf "Rational.of_string: %S" s);
       let negative = String.length whole > 0 && Char.equal whole.[0] '-' in
       let whole_part =
         if String.equal whole "" || String.equal whole "-" || String.equal whole "+"
         then Bigint.zero
         else Bigint.abs (Bigint.of_string whole)
       in
       let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
       let frac_part = Bigint.of_string frac in
       let total = Bigint.add (Bigint.mul whole_part scale) frac_part in
       let q = make total scale in
       if negative then neg q else q)

let to_string q =
  if is_integer q then Bigint.to_string q.num
  else Bigint.to_string q.num ^ "/" ^ Bigint.to_string q.den

let to_decimal_string q ~digits =
  if digits < 0 then invalid_arg "Rational.to_decimal_string: negative digit count";
  let num = Bigint.abs_nat q.num and den = Bigint.abs_nat q.den in
  let whole, rem = Bignat.divmod num den in
  let sign = if Bigint.sign q.num < 0 then "-" else "" in
  if digits = 0 then sign ^ Bignat.to_string whole
  else begin
    (* Scale the remainder by 10^digits and divide once more. *)
    let scaled = Bignat.mul rem (Bignat.pow (Bignat.of_int 10) digits) in
    let frac, _ = Bignat.divmod scaled den in
    let frac_str = Bignat.to_string frac in
    let padded = String.make (digits - String.length frac_str) '0' ^ frac_str in
    sign ^ Bignat.to_string whole ^ "." ^ padded
  end

let pp fmt q = Format.pp_print_string fmt (to_string q)

(* Infix aliases, defined last so the rest of the module keeps the
   standard operators in scope. *)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
