lib/numeric/qmat.mli: Format Qvec Rational
