lib/numeric/bignat.mli: Format
