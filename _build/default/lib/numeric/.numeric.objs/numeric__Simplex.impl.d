lib/numeric/simplex.ml: Array List Rational
