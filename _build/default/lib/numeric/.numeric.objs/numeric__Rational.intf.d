lib/numeric/rational.mli: Bigint Format
