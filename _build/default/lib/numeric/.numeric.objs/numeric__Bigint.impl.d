lib/numeric/bigint.ml: Bignat Format String
