lib/numeric/simplex.mli: Rational
