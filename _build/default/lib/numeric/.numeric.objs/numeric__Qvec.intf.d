lib/numeric/qvec.mli: Format Rational
