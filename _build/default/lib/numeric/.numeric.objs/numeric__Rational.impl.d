lib/numeric/rational.ml: Array Bigint Bignat Char Float Format Int64 List Printf String
