lib/numeric/bigint.mli: Bignat Format
