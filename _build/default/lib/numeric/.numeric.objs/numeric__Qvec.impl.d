lib/numeric/qvec.ml: Array Format Printf Rational
