lib/numeric/bignat.ml: Array Buffer Format Hashtbl List Printf Stdlib String
