lib/numeric/qmat.ml: Array Format List Rational
