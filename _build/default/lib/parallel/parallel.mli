(** Deterministic fork–join parallelism over OCaml 5 domains.

    The experiment sweeps are embarrassingly parallel across instances:
    each cell derives its own PRNG from a fixed seed, so results are
    identical no matter how work is scheduled.  This module provides the
    minimal fork–join layer the harness needs — no dependency on
    domainslib (not installed in this environment).

    All functions run [f] in the calling domain when [domains <= 1], so
    code paths stay identical in serial mode. *)

(** [available_domains ()] is a sensible default worker count:
    [Domain.recommended_domain_count ()]. *)
val available_domains : unit -> int

(** [map ~domains f xs] is [List.map f xs], computed by up to [domains]
    domains with a block distribution.  Results keep list order.  The
    first exception raised by any worker is re-raised.
    @raise Invalid_argument when [domains <= 0]. *)
val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_array ~domains f xs] is the array counterpart of {!map} with an
    index-interleaved distribution (better balance when cost grows along
    the array). *)
val map_array : domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [reduce ~domains ~neutral ~combine f xs] maps [f] over [xs] and
    folds the results with [combine]; [combine] must be associative and
    [neutral] its unit.  Combination order is deterministic (worker 0
    first), so non-commutative monoids are safe. *)
val reduce :
  domains:int -> neutral:'b -> combine:('b -> 'b -> 'b) -> ('a -> 'b) -> 'a list -> 'b
