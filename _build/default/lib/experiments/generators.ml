open Model
open Numeric

type weight_family = Unit_weights | Integer_weights of int | Rational_weights of int

type belief_family =
  | Shared_point of { cap_bound : int }
  | Private_point of { cap_bound : int }
  | Shared_space of { states : int; cap_bound : int; grain : int }
  | Uniform_link_view of { cap_bound : int }
  | Signal_posterior of { states : int; cap_bound : int; grain : int }

let weight_family_name = function
  | Unit_weights -> "unit"
  | Integer_weights b -> Printf.sprintf "int<=%d" b
  | Rational_weights b -> Printf.sprintf "rat<=%d" b

let belief_family_name = function
  | Shared_point _ -> "shared-point(KP)"
  | Private_point _ -> "private-point"
  | Shared_space { states; _ } -> Printf.sprintf "shared-space(%d)" states
  | Uniform_link_view _ -> "uniform-view"
  | Signal_posterior { states; _ } -> Printf.sprintf "signal(%d)" states

let weights rng ~n family =
  Array.init n (fun _ ->
      match family with
      | Unit_weights -> Rational.one
      | Integer_weights bound -> Rational.of_int (Prng.Rng.int_in rng 1 bound)
      | Rational_weights bound -> Prng.Rng.positive_rational rng ~num_bound:bound ~den_bound:bound)

let random_state rng ~m ~cap_bound =
  State.make (Array.init m (fun _ -> Rational.of_int (Prng.Rng.int_in rng 1 cap_bound)))

let state_space rng ~m ~states ~cap_bound =
  State.space (List.init states (fun _ -> random_state rng ~m ~cap_bound))

let game rng ~n ~m ~weights:wf ~beliefs =
  let w = weights rng ~n wf in
  let bs =
    match beliefs with
    | Shared_point { cap_bound } ->
      let st = random_state rng ~m ~cap_bound in
      Array.init n (fun _ -> Belief.certain st)
    | Private_point { cap_bound } ->
      Array.init n (fun _ -> Belief.certain (random_state rng ~m ~cap_bound))
    | Shared_space { states; cap_bound; grain } ->
      let space = state_space rng ~m ~states ~cap_bound in
      Array.init n (fun _ ->
          Belief.make space (Prng.Rng.positive_simplex rng ~dim:states ~grain))
    | Uniform_link_view { cap_bound } ->
      Array.init n (fun _ ->
          let c = Rational.of_int (Prng.Rng.int_in rng 1 cap_bound) in
          Belief.certain (State.make (Array.make m c)))
    | Signal_posterior { states; cap_bound; grain } ->
      let space = state_space rng ~m ~states ~cap_bound in
      let prior = Belief.make space (Prng.Rng.positive_simplex rng ~dim:states ~grain) in
      Array.init n (fun _ ->
          (* A private signal: a non-empty random subset of states said
             to contain the truth; the user holds the posterior. *)
          let keep = Array.init states (fun _ -> Prng.Rng.bool rng) in
          keep.(Prng.Rng.int rng states) <- true;
          Belief.condition prior ~event:(fun k -> keep.(k)))
  in
  Game.make ~weights:w ~beliefs:bs
