open Model

(** Random instance families for the experiment sweeps.

    Everything is driven by an explicit {!Prng.Rng.t}, so all reported
    rows are reproducible from a seed.  Capacities and belief
    probabilities are exact rationals with small denominators, keeping
    exact arithmetic fast while exercising ties. *)

type weight_family =
  | Unit_weights  (** all weights 1 (the symmetric model) *)
  | Integer_weights of int  (** uniform in [1, bound] *)
  | Rational_weights of int  (** ratio of uniform ints in [1, bound] *)

type belief_family =
  | Shared_point of { cap_bound : int }
      (** all users certain of one common state — exactly the KP-model *)
  | Private_point of { cap_bound : int }
      (** each user certain of its own private state — maximal
          disagreement, the reduced player-specific form *)
  | Shared_space of { states : int; cap_bound : int; grain : int }
      (** a common state space; each user holds a private
          strictly-positive belief with denominators dividing [grain] *)
  | Uniform_link_view of { cap_bound : int }
      (** each user sees every link with the same capacity — the
          "uniform user beliefs" model of Section 3.1 *)
  | Signal_posterior of { states : int; cap_bound : int; grain : int }
      (** all users share a positive prior over a common space, but each
          observes a private random signal (a subset of states known to
          contain the truth) and holds the Bayesian posterior
          ({!Model.Belief.condition}) — heterogeneous beliefs from a
          common prior *)

val weight_family_name : weight_family -> string
val belief_family_name : belief_family -> string

(** [weights rng ~n family] draws a traffic vector. *)
val weights : Prng.Rng.t -> n:int -> weight_family -> Numeric.Rational.t array

(** [state_space rng ~m ~states ~cap_bound] draws [states] capacity
    vectors with integer capacities in [1, cap_bound]. *)
val state_space : Prng.Rng.t -> m:int -> states:int -> cap_bound:int -> State.space

(** [game rng ~n ~m ~weights ~beliefs] draws a full instance. *)
val game :
  Prng.Rng.t -> n:int -> m:int -> weights:weight_family -> beliefs:belief_family -> Game.t
