lib/experiments/report.ml: Numeric Printf
