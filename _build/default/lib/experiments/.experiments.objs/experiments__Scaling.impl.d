lib/experiments/scaling.ml: Algo Generators List Prng Report Stats Sys
