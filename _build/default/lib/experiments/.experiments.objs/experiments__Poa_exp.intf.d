lib/experiments/poa_exp.mli: Generators Stats
