lib/experiments/learning.mli: Stats
