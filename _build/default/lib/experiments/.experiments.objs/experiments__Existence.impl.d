lib/experiments/existence.ml: Algo Array Float Game Generators List Model Parallel Prng Report Stats
