lib/experiments/generators.ml: Array Belief Game List Model Numeric Printf Prng Rational State
