lib/experiments/generators.mli: Game Model Numeric Prng State
