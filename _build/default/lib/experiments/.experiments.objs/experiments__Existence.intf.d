lib/experiments/existence.mli: Generators Stats
