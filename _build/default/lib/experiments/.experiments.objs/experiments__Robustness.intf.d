lib/experiments/robustness.mli: Numeric Stats
