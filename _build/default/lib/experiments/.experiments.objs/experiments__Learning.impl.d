lib/experiments/learning.ml: Algo Array Belief Game Generators List Model Numeric Prng Pure Rational Report Social Stats
