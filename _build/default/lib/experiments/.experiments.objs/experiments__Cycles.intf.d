lib/experiments/cycles.mli: Generators Model Stats
