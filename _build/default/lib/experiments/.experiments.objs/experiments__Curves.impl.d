lib/experiments/curves.ml: Algo Array Congestion Float Game Generators Kp List Model Numeric Prng Pure Rational Report Social Stats
