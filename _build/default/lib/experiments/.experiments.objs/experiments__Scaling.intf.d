lib/experiments/scaling.mli: Stats
