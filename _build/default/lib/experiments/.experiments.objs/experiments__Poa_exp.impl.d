lib/experiments/poa_exp.ml: Algo Bounds Float Generators List Mixed Model Numeric Prng Rational Report Social Stats
