lib/experiments/robustness.ml: Algo Array Belief Float Game Generators Hashtbl List Model Numeric Prng Pure Rational Report Social Stats
