lib/experiments/monte_carlo.mli: Game Model Prng Pure Stats
