lib/experiments/monte_carlo.ml: Array Belief Float Game Generators List Model Numeric Prng Pure Rational Report Stats
