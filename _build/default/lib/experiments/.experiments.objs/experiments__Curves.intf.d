lib/experiments/curves.mli: Stats
