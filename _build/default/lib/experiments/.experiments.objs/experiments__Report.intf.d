lib/experiments/report.mli: Numeric
