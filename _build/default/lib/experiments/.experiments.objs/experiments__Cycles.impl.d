lib/experiments/cycles.ml: Algo Generators List Prng Stats
