lib/experiments/fmne_exp.ml: Algo Array Fun Game Generators List Mixed Model Numeric Prng Qvec Rational Report Stats
