lib/experiments/fmne_exp.mli: Generators Stats
