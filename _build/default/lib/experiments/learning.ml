open Model
open Numeric

type row = {
  observations : int;
  trials : int;
  mean_ratio : float;
  max_ratio : float;
  mean_belief_error : float;
}

(* Total variation distance between an estimated belief and the truth. *)
let tv_distance estimated truth =
  let probs = Belief.probs estimated in
  let acc = ref Rational.zero in
  Array.iteri (fun k p -> acc := Rational.add !acc (Rational.abs (Rational.sub p truth.(k)))) probs;
  Rational.to_float (Rational.div !acc Rational.two)

let run ~seed ~n ~m ~states ~observations ~trials =
  List.map
    (fun k ->
      let rng = Prng.Rng.create (seed + (7919 * k)) in
      let ratios = ref Stats.Welford.empty in
      let errors = ref Stats.Welford.empty in
      for _ = 1 to trials do
        let space = Generators.state_space rng ~m ~states ~cap_bound:6 in
        let truth = Prng.Rng.positive_simplex rng ~dim:states ~grain:(states + 3) in
        let sampler = Prng.Alias.of_rationals truth in
        let weights = Array.init n (fun _ -> Rational.of_int (Prng.Rng.int_in rng 1 5)) in
        let beliefs =
          Array.init n (fun _ ->
              let counts = Array.make states 0 in
              for _ = 1 to k do
                let s = Prng.Alias.sample sampler rng in
                counts.(s) <- counts.(s) + 1
              done;
              let b = Belief.from_counts space counts ~smoothing:Rational.one in
              errors := Stats.Welford.add !errors (tv_distance b truth);
              b)
        in
        let g = Game.make ~weights ~beliefs in
        let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
        let o = Algo.Best_response.converge g ~max_steps:(64 * n * m * (n + m)) start in
        if o.converged then begin
          let true_belief = Belief.make space truth in
          let true_caps = Belief.effective_capacities true_belief in
          let loads = Pure.loads g o.profile in
          let realised =
            Rational.sum
              (List.init n (fun i ->
                   Rational.div loads.(o.profile.(i)) true_caps.(o.profile.(i))))
          in
          let informed = Game.make ~weights ~beliefs:(Array.make n true_belief) in
          let opt, _ = Social.opt1_bb informed in
          ratios := Stats.Welford.add !ratios (Rational.to_float (Rational.div realised opt))
        end
      done;
      {
        observations = k;
        trials;
        mean_ratio = Stats.Welford.mean !ratios;
        max_ratio = Stats.Welford.max !ratios;
        mean_belief_error = Stats.Welford.mean !errors;
      })
    observations

let table rows =
  let t =
    Stats.Table.create
      [ "observations/user"; "trials"; "mean realised SC1 / true OPT1"; "max"; "mean TV error" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.observations;
          string_of_int r.trials;
          Report.flt r.mean_ratio;
          Report.flt r.max_ratio;
          Report.flt r.mean_belief_error;
        ])
    rows;
  t
