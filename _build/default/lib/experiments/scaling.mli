(** Experiments E1–E3 and E8: measured running time of the paper's
    polynomial-time algorithms as problem size grows.

    The theorems claim O(n²) for A_twolinks, O(n²m) for A_symmetric,
    O(n(log n + m)) for A_uniform and O(nm) for the fully mixed closed
    form.  These rows report wall-clock time per call; the *shape*
    (low-order polynomial growth) is what reproduces the claims —
    absolute numbers depend on the machine and on exact-arithmetic
    costs. *)

type row = {
  algorithm : string;
  n : int;
  m : int;
  microseconds : float;  (** mean time per solved instance *)
  repetitions : int;
}

(** [time_call f] runs [f ()] repeatedly until enough clock time
    accumulates and returns (microseconds per call, repetitions). *)
val time_call : (unit -> unit) -> float * int

(** [run ~seed ~sizes] measures all four algorithms on random instances
    for each [(n, m)] in [sizes]. *)
val run : seed:int -> sizes:(int * int) list -> row list

val table : row list -> Stats.Table.t
