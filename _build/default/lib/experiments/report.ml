let pct hits trials =
  if trials = 0 then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int hits /. float_of_int trials)

let flt x = Printf.sprintf "%.4g" x

let rat q = flt (Numeric.Rational.to_float q)

let heading id title =
  Printf.printf "\n=== %s: %s ===\n" id title
