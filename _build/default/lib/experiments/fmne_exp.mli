(** Experiments E8–E10: fully mixed Nash equilibria.

    E8 (Theorem 4.6 / Corollary 4.7): the closed-form candidate, when
    inside (0,1)^{n×m}, is a Nash equilibrium (checked against the exact
    Nash predicate) with equal per-user latencies matching Lemma 4.1.

    E9 (Theorem 4.8): under uniform user beliefs the fully mixed
    equilibrium assigns every link probability exactly 1/m.

    E10 (Lemma 4.9, Theorems 4.11/4.12): the fully mixed comparator
    dominates every pure Nash equilibrium user-by-user, hence maximises
    both social costs among equilibria. *)

type row = {
  n : int;
  m : int;
  beliefs : string;
  trials : int;
  fmne_exists : int;
  candidate_rows_sum_one : int;  (** Remark 4.4 sanity *)
  fmne_is_nash : int;  (** of those existing, pass [Mixed.is_nash] *)
  latencies_match_lemma41 : int;
  equiprobable : int;  (** FMNE equals the 1/m matrix (E9) *)
  pure_ne_checked : int;  (** pure NE compared in total (E10) *)
  dominated_by_fmne : int;  (** pure NE with λ_i(P) ≤ λ_i(F) for all i *)
  sc_maximal : int;  (** pure NE with SC1/SC2 ≤ the comparator's *)
}

val run :
  seed:int ->
  ns:int list ->
  ms:int list ->
  trials:int ->
  weights:Generators.weight_family ->
  beliefs:Generators.belief_family ->
  row list

val table : row list -> Stats.Table.t
