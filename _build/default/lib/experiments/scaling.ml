type row = { algorithm : string; n : int; m : int; microseconds : float; repetitions : int }

let time_call f =
  (* Warm up once, then repeat until >= 20ms of CPU time accumulates so
     Sys.time's resolution does not dominate. *)
  f ();
  let start = Sys.time () in
  let reps = ref 0 in
  let elapsed () = Sys.time () -. start in
  while elapsed () < 0.02 && !reps < 1_000_000 do
    f ();
    incr reps
  done;
  (elapsed () *. 1e6 /. float_of_int (max 1 !reps), !reps)

let run ~seed ~sizes =
  let rng = Prng.Rng.create seed in
  List.concat_map
    (fun (n, m) ->
      let cap = 8 in
      let measure name f =
        let us, reps = time_call f in
        { algorithm = name; n; m; microseconds = us; repetitions = reps }
      in
      let rows = ref [] in
      if m = 2 then begin
        let g =
          Generators.game rng ~n ~m ~weights:(Generators.Integer_weights cap)
            ~beliefs:(Generators.Private_point { cap_bound = cap })
        in
        rows := measure "A_twolinks (Thm 3.3)" (fun () -> ignore (Algo.Two_links.solve g)) :: !rows
      end;
      let sym =
        Generators.game rng ~n ~m ~weights:Generators.Unit_weights
          ~beliefs:(Generators.Private_point { cap_bound = cap })
      in
      rows := measure "A_symmetric (Thm 3.5)" (fun () -> ignore (Algo.Symmetric.solve sym)) :: !rows;
      let uni =
        Generators.game rng ~n ~m ~weights:(Generators.Integer_weights cap)
          ~beliefs:(Generators.Uniform_link_view { cap_bound = cap })
      in
      rows := measure "A_uniform (Thm 3.6)" (fun () -> ignore (Algo.Uniform_beliefs.solve uni)) :: !rows;
      let fm =
        Generators.game rng ~n ~m ~weights:(Generators.Integer_weights cap)
          ~beliefs:(Generators.Private_point { cap_bound = cap })
      in
      rows := measure "FMNE closed form (Cor 4.7)" (fun () -> ignore (Algo.Fully_mixed.candidate fm)) :: !rows;
      List.rev !rows)
    sizes

let table rows =
  let t = Stats.Table.create [ "algorithm"; "n"; "m"; "µs/call"; "reps" ] in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          r.algorithm;
          string_of_int r.n;
          string_of_int r.m;
          Report.flt r.microseconds;
          string_of_int r.repetitions;
        ])
    rows;
  t
