open Model

type row = {
  n : int;
  m : int;
  weights : string;
  beliefs : string;
  trials : int;
  with_pure : int;
  min_ne : int;
  mean_ne : float;
  max_ne : int;
  br_converged : int;
  mean_br_steps : float;
}

let random_profile rng g =
  Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g))

let run ?(domains = 1) ~seed ~ns ~ms ~trials ~weights ~beliefs () =
  let cells = List.concat_map (fun n -> List.map (fun m -> (n, m)) ms) ns in
  Parallel.map ~domains
    (fun (n, m) ->
          (* Each cell derives its own generator, so results do not
             depend on scheduling. *)
          let rng = Prng.Rng.create (seed + (7919 * n) + (104729 * m)) in
          let with_pure = ref 0 in
          let counts = ref [] in
          let br_converged = ref 0 in
          let br_steps = ref 0 in
          for _ = 1 to trials do
            let g = Generators.game rng ~n ~m ~weights ~beliefs in
            let ne_count = Algo.Enumerate.count g in
            if ne_count > 0 then incr with_pure;
            counts := ne_count :: !counts;
            let start = random_profile rng g in
            let budget = 16 * n * m * (n + m) in
            let outcome = Algo.Best_response.converge g ~max_steps:budget start in
            if outcome.converged then begin
              incr br_converged;
              br_steps := !br_steps + outcome.steps
            end
          done;
          let counts = !counts in
          {
            n;
            m;
            weights = Generators.weight_family_name weights;
            beliefs = Generators.belief_family_name beliefs;
            trials;
            with_pure = !with_pure;
            min_ne = List.fold_left min max_int counts;
            mean_ne =
              float_of_int (List.fold_left ( + ) 0 counts) /. float_of_int (List.length counts);
            max_ne = List.fold_left max 0 counts;
            br_converged = !br_converged;
            mean_br_steps =
              (if !br_converged = 0 then Float.nan
               else float_of_int !br_steps /. float_of_int !br_converged);
          })
    cells

let table rows =
  let t =
    Stats.Table.create
      [ "n"; "m"; "weights"; "beliefs"; "trials"; "pure NE"; "min#"; "mean#"; "max#"; "BR conv"; "BR steps" ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row t
        [
          string_of_int r.n;
          string_of_int r.m;
          r.weights;
          r.beliefs;
          string_of_int r.trials;
          Report.pct r.with_pure r.trials;
          string_of_int r.min_ne;
          Report.flt r.mean_ne;
          string_of_int r.max_ne;
          Report.pct r.br_converged r.trials;
          Report.flt r.mean_br_steps;
        ])
    rows;
  t
