(** Shared formatting helpers for experiment tables. *)

(** [pct hits trials] renders e.g. ["100.0%"]. *)
val pct : int -> int -> string

(** [flt x] renders a float with 4 significant digits. *)
val flt : float -> string

(** [rat q] renders a rational as a float with 4 significant digits. *)
val rat : Numeric.Rational.t -> string

(** [heading id title] prints the experiment banner used by
    [bench/main.exe]. *)
val heading : string -> string -> unit
