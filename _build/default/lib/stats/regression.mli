(** Least-squares line fitting.

    Used by the scaling experiments to turn (size, time) measurements
    into an empirical complexity exponent: fitting
    [log t = a + b·log n] estimates [t = e^a · n^b], so [b] is directly
    comparable to the theorems' O(n^k) claims. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** coefficient of determination in [0, 1] *)
}

(** [linear points] fits [y = intercept + slope·x] by ordinary least
    squares. @raise Invalid_argument with fewer than two points or when
    all x coincide. *)
val linear : (float * float) list -> fit

(** [log_log points] fits a power law [y = e^intercept · x^slope] by
    regressing [log y] on [log x].
    @raise Invalid_argument on non-positive coordinates or fewer than
    two points. *)
val log_log : (float * float) list -> fit
