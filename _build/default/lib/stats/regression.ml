type fit = { slope : float; intercept : float; r_squared : float }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) ** 2.0)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0.0 points in
  if sxx = 0.0 then invalid_arg "Regression.linear: all x values coincide";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res =
    List.fold_left (fun a (x, y) -> a +. ((y -. intercept -. (slope *. x)) ** 2.0)) 0.0 points
  in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. my) ** 2.0)) 0.0 points in
  let r_squared = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared }

let log_log points =
  List.iter
    (fun (x, y) ->
      if x <= 0.0 || y <= 0.0 then invalid_arg "Regression.log_log: coordinates must be positive")
    points;
  linear (List.map (fun (x, y) -> (log x, log y)) points)
