(** Fixed-width histograms with ASCII rendering for experiment output. *)

type t

(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal cells plus
    underflow/overflow counters.
    @raise Invalid_argument when [bins <= 0] or [hi <= lo]. *)
val create : lo:float -> hi:float -> bins:int -> t

val add : t -> float -> unit
val add_many : t -> float list -> unit
val count : t -> int
val underflow : t -> int
val overflow : t -> int

(** [counts t] is a copy of the per-bin counters. *)
val counts : t -> int array

(** [render t] is a multi-line bar chart, one line per bin. *)
val render : t -> string
