type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; bins = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let n = Array.length t.bins in
    let i = int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo)) in
    let i = if i >= n then n - 1 else i in
    t.bins.(i) <- t.bins.(i) + 1
  end

let add_many t xs = List.iter (add t) xs
let count t = t.total
let underflow t = t.underflow
let overflow t = t.overflow
let counts t = Array.copy t.bins

let render t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left max 1 t.bins in
  let width = 40 in
  let n = Array.length t.bins in
  let cell = (t.hi -. t.lo) /. float_of_int n in
  Array.iteri
    (fun i c ->
      let bar = String.make (c * width / peak) '#' in
      Buffer.add_string buf
        (Printf.sprintf "[%8.3g, %8.3g) %6d %s\n"
           (t.lo +. (cell *. float_of_int i))
           (t.lo +. (cell *. float_of_int (i + 1)))
           c bar))
    t.bins;
  if t.underflow > 0 then Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.underflow);
  if t.overflow > 0 then Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.overflow);
  Buffer.contents buf
