type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let quantile xs p =
  if Array.length xs = 0 then invalid_arg "Summary.quantile: empty sample";
  if p < 0.0 || p > 1.0 then invalid_arg "Summary.quantile: p outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array xs =
  if Array.length xs = 0 then invalid_arg "Summary.of_array: empty sample";
  let w = Array.fold_left Welford.add Welford.empty xs in
  {
    count = Array.length xs;
    mean = Welford.mean w;
    stddev = Welford.stddev w;
    min = Welford.min w;
    p25 = quantile xs 0.25;
    median = quantile xs 0.5;
    p75 = quantile xs 0.75;
    max = Welford.max w;
  }

let of_list xs = of_array (Array.of_list xs)

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g max=%.4g" t.count t.mean t.stddev
    t.min t.median t.max
