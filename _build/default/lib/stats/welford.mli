(** Online mean and variance (Welford's algorithm).

    Numerically stable single-pass accumulation; used by sweeps that
    stream thousands of per-instance measurements without storing them. *)

type t

val empty : t
val add : t -> float -> t
val add_many : t -> float list -> t
val count : t -> int

(** [mean t]. @raise Invalid_argument when no samples were added. *)
val mean : t -> float

(** [variance t] is the unbiased sample variance; 0 for fewer than two
    samples. @raise Invalid_argument when no samples were added. *)
val variance : t -> float

val stddev : t -> float

(** [min t] / [max t]. @raise Invalid_argument when empty. *)
val min : t -> float

val max : t -> float
