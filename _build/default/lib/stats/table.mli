(** Aligned ASCII tables.

    Every experiment in [bench/main.exe] prints its results through this
    module so the reproduction rows have a uniform, diffable format. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** [add_row t cells] appends a row.
    @raise Invalid_argument when the arity differs from the header. *)
val add_row : t -> string list -> unit

(** [render t] lays the table out with a header separator and columns
    padded to their widest cell. *)
val render : t -> string

(** [print t] writes [render t] to standard output. *)
val print : t -> unit
