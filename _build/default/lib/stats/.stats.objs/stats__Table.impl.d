lib/stats/table.ml: List Printf String
