lib/stats/welford.mli:
