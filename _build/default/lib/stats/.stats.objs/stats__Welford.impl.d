lib/stats/welford.ml: Float List
