lib/stats/regression.ml: List
