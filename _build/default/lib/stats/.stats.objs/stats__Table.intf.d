lib/stats/table.mli:
