lib/stats/regression.mli:
