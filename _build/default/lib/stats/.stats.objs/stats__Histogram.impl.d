lib/stats/histogram.ml: Array Buffer List Printf String
