lib/stats/histogram.mli:
