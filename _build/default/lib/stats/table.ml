type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (List.length t.headers)
         (List.length cells));
  t.rows <- cells :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line cells =
    String.concat "  "
      (List.map2 (fun cell w -> cell ^ String.make (w - String.length cell) ' ') cells widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line t.headers :: sep :: List.map line rows) @ [ "" ])

let print t = print_string (render t)
