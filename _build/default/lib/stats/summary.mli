(** Descriptive statistics of a stored sample. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

(** [of_list xs]. @raise Invalid_argument on the empty list. *)
val of_list : float list -> t

(** [of_array xs]. @raise Invalid_argument on the empty array; does not
    mutate [xs]. *)
val of_array : float array -> t

(** [quantile xs p] is the [p]-quantile (linear interpolation between
    order statistics), [0. <= p <= 1.].
    @raise Invalid_argument on empty input or [p] outside [0, 1]. *)
val quantile : float array -> float -> float

val pp : Format.formatter -> t -> unit
