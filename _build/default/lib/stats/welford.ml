type t = { n : int; mean : float; m2 : float; min : float; max : float }

let empty = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  let n = t.n + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int n) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  { n; mean; m2; min = Float.min t.min x; max = Float.max t.max x }

let add_many t xs = List.fold_left add t xs

let count t = t.n

let require_nonempty name t = if t.n = 0 then invalid_arg ("Welford." ^ name ^ ": no samples")

let mean t =
  require_nonempty "mean" t;
  t.mean

let variance t =
  require_nonempty "variance" t;
  if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t =
  require_nonempty "min" t;
  t.min

let max t =
  require_nonempty "max" t;
  t.max
