open Model
open Numeric

let guard name limit g =
  match Social.profile_count g with
  | Some c when c <= limit -> ()
  | _ -> invalid_arg (Printf.sprintf "Enumerate.%s: state space exceeds the limit" name)

let pure_nash ?(limit = 10_000_000) g =
  guard "pure_nash" limit g;
  let acc = ref [] in
  Social.iter_profiles g (fun p -> if Pure.is_nash g p then acc := Array.copy p :: !acc);
  List.rev !acc

let count ?(limit = 10_000_000) g =
  guard "count" limit g;
  let acc = ref 0 in
  Social.iter_profiles g (fun p -> if Pure.is_nash g p then incr acc);
  !acc

let exists ?(limit = 10_000_000) g =
  guard "exists" limit g;
  let exception Found in
  try
    Social.iter_profiles g (fun p -> if Pure.is_nash g p then raise Found);
    false
  with Found -> true

let extremal_nash ?limit g ~cost =
  match pure_nash ?limit g with
  | [] -> None
  | first :: rest ->
    let value = cost g first in
    let better lo hi p =
      let v = cost g p in
      let lo = if Rational.compare v (snd lo) < 0 then (p, v) else lo in
      let hi = if Rational.compare v (snd hi) > 0 then (p, v) else hi in
      (lo, hi)
    in
    let lo, hi =
      List.fold_left (fun (lo, hi) p -> better lo hi p) ((first, value), (first, value)) rest
    in
    Some (lo, hi)
