open Model

(** Concrete witness instances found by this project's searches.

    The headline artefact is {!better_response_cycle_game}: an instance
    of the belief model whose {e better-response} graph contains a cycle
    — computational confirmation of the Section 3.2 observation
    (attributed to B. Monien, personal communication, and never
    published) that the game is {e not an ordinal potential game}.

    The instance was found by [bin/cycle_hunt.exe] (seed 14, attempt
    1 783 374 at n = 6, m = 4) after ≈68 million random instances with
    n ≤ 4 users — plus 1.5 million exhaustively enumerated small grids —
    contained none; it was then shrunk by greedy delta-debugging while
    preserving the cycle (dropping a link but no user: all six users
    carry the displacement pattern).  Notably it still possesses pure
    Nash equilibria (supporting Conjecture 3.7) and its
    {e best-response} graph is acyclic. *)

(** [better_response_cycle_game ()] is the minimised 6-user/3-link
    witness (reduced form, integer effective capacities). *)
val better_response_cycle_game : unit -> Game.t

(** [original_cycle_game ()] is the unminimised 6-user/4-link instance
    exactly as found by the random hunt (seed 14, attempt 1 783 374). *)
val original_cycle_game : unit -> Game.t

(** [better_response_cycle_with_initial ()] is the sharpest form of the
    witness: only three of the six users ever move in the cycle, so the
    static ones collapse into {e initial link traffic} (the generalised
    setting of Definition 3.1).  Returns the 3-user game and the initial
    traffic vector [⟨3, 0, 7⟩]; its better-response graph (with that
    traffic) has a 7-cycle, while the same game {e without} initial
    traffic is acyclic.  So in the initial-traffic model, ordinal
    potentials already fail at three users. *)
val better_response_cycle_with_initial : unit -> Game.t * Numeric.Rational.t array
