open Model

(** Potential-function analysis (Section 3.2).

    The paper reports (citing its technical report [9]) that the
    uncertainty game is {e not} an exact potential game, and (citing
    B. Monien) not an ordinal potential game either, so Rosenthal-style
    existence arguments cannot apply.  This module makes the first claim
    checkable: by Monderer–Shapley (1996), a game admits an exact
    potential iff around every 2-player/2-deviation square the four cost
    differences sum to zero.  We evaluate that defect exactly.

    For contrast, {!rosenthal} implements the classical potential of the
    {e unweighted common-capacity} special case, where it does certify
    convergence. *)

(** [square_defect g sigma ~i ~j ~li ~lj] is the Monderer–Shapley sum
    around the square where user [i] deviates [sigma.(i) → li] and user
    [j] deviates [sigma.(j) → lj] (other users fixed).  Non-zero for
    some square ⟺ no exact potential exists. *)
val square_defect :
  Game.t -> Pure.profile -> i:int -> j:int -> li:int -> lj:int -> Numeric.Rational.t

(** [find_nonzero_square g] searches all profiles and deviation squares
    and returns a witness [(sigma, i, j, li, lj)] with non-zero defect,
    or [None] if the game satisfies the exact-potential condition.
    @raise Invalid_argument when [m^n] exceeds [limit]
    (default [100_000]). *)
val find_nonzero_square :
  ?limit:int -> Game.t -> (Pure.profile * int * int * int * int) option

(** [is_exact_potential_game g] is [find_nonzero_square g = None]. *)
val is_exact_potential_game : ?limit:int -> Game.t -> bool

(** [rosenthal g sigma] is the Rosenthal potential
    [Σ_ℓ Σ_{k=1}^{N_ℓ} k / c^ℓ] for {e unweighted KP} games (all
    weights equal, all users sharing the capacities).  Any improvement
    move strictly decreases it (property-tested), which is the classical
    existence proof the paper's model escapes.
    @raise Invalid_argument unless the game is symmetric and KP. *)
val rosenthal : Game.t -> Pure.profile -> Numeric.Rational.t
