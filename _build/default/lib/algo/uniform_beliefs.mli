open Model

(** Algorithm A_uniform (Figure 3, Theorem 3.6).

    For the model of {e uniform user beliefs} — every user sees all
    links with the same effective capacity [c_i] — a pure Nash
    equilibrium is computed in O(n(log n + m)) by a variant of Graham's
    LPT rule: process users in decreasing weight order, placing each on
    a link with minimum current traffic (initial traffic included). *)

(** [solve ?initial g] is a pure Nash equilibrium of [g] with respect
    to [initial] (default zero).
    @raise Invalid_argument unless every user's effective capacities
    are equal across links. *)
val solve : ?initial:Numeric.Rational.t array -> Game.t -> Pure.profile
