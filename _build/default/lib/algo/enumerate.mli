open Model

(** Exhaustive enumeration of pure Nash equilibria.

    The ground truth for the existence experiments (E4, E5) and the
    worst-case-equilibrium experiments (E10–E12): exact search over all
    [m^n] pure profiles. *)

(** [pure_nash g] lists all pure Nash equilibria of [g].
    @raise Invalid_argument when [m^n] exceeds [limit]
    (default [10_000_000]). *)
val pure_nash : ?limit:int -> Game.t -> Pure.profile list

(** [count g] is the number of pure Nash equilibria. *)
val count : ?limit:int -> Game.t -> int

(** [exists g] holds when at least one pure Nash equilibrium exists —
    Conjecture 3.7 asserts this is always true. *)
val exists : ?limit:int -> Game.t -> bool

(** [extremal_nash g ~cost] is [Some (best, worst)] — the equilibria
    minimising and maximising [cost] — or [None] when no pure Nash
    equilibrium exists. *)
val extremal_nash :
  ?limit:int ->
  Game.t ->
  cost:(Game.t -> Pure.profile -> Numeric.Rational.t) ->
  ((Pure.profile * Numeric.Rational.t) * (Pure.profile * Numeric.Rational.t)) option
