open Model
open Numeric

let game w c = Game.of_capacities ~weights:(Array.map Rational.of_int w) (Array.map (Array.map Rational.of_int) c)

let better_response_cycle_game () =
  game
    [| 3; 6; 8; 4; 3; 3 |]
    [|
      [| 1; 1; 1 |];
      [| 21; 1; 37 |];
      [| 1; 20; 38 |];
      [| 1; 1; 1 |];
      [| 1; 1; 1 |];
      [| 26; 14; 21 |];
    |]

let better_response_cycle_with_initial () =
  ( game
      [| 6; 8; 3 |]
      [| [| 21; 1; 37 |]; [| 1; 20; 38 |]; [| 26; 14; 21 |] |],
    [| Rational.of_int 3; Rational.zero; Rational.of_int 7 |] )

let original_cycle_game () =
  game
    [| 3; 6; 8; 4; 3; 3 |]
    [|
      [| 20; 14; 25; 30 |];
      [| 21; 34; 37; 1 |];
      [| 15; 20; 38; 13 |];
      [| 20; 30; 8; 37 |];
      [| 26; 10; 3; 3 |];
      [| 28; 15; 22; 6 |];
    |]
