open Model
open Numeric

type finding = {
  profile : Mixed.profile;
  supports : int list array;
  latencies : Rational.t array;
}

type result = { equilibria : finding list; degenerate_supports : int }

type outcome = Equilibrium of finding | Rejected | Degenerate

let links_of_mask m mask =
  List.filter (fun l -> mask land (1 lsl l) <> 0) (List.init m Fun.id)

let classify g supports =
  let n = Game.users g and m = Game.links g in
  if Array.length supports <> n then invalid_arg "Support_enum.solve_support: wrong arity";
  Array.iter
    (fun s ->
      if s = [] then invalid_arg "Support_enum.solve_support: empty support";
      List.iter
        (fun l -> if l < 0 || l >= m then invalid_arg "Support_enum.solve_support: link out of range")
        s)
    supports;
  (* Variable layout: the probabilities p^l_i for l ∈ S_i (in support
     order, user-major), followed by the latencies λ_0 … λ_{n-1}. *)
  let offsets = Array.make n 0 in
  let total_p = ref 0 in
  Array.iteri
    (fun i s ->
      offsets.(i) <- !total_p;
      total_p := !total_p + List.length s)
    supports;
  let nvars = !total_p + n in
  let var_p i l =
    let rec pos k = function
      | [] -> invalid_arg "Support_enum: link not in support"
      | x :: rest -> if x = l then k else pos (k + 1) rest
    in
    offsets.(i) + pos 0 supports.(i)
  in
  let var_lambda i = !total_p + i in
  let matrix = Qmat.make nvars nvars Rational.zero in
  let rhs = Array.make nvars Rational.zero in
  let row = ref 0 in
  (* Equal-latency equations: for i and l ∈ S_i,
     -w_i·p^l_i + Σ_{k : l ∈ S_k} w_k·p^l_k - c^l_i·λ_i = -w_i. *)
  for i = 0 to n - 1 do
    List.iter
      (fun l ->
        let r = !row in
        Qmat.set matrix r (var_p i l) (Rational.neg (Game.weight g i));
        for k = 0 to n - 1 do
          if List.mem l supports.(k) then begin
            let c = var_p k l in
            Qmat.set matrix r c (Rational.add (Qmat.get matrix r c) (Game.weight g k))
          end
        done;
        Qmat.set matrix r (var_lambda i) (Rational.neg (Game.capacity g i l));
        rhs.(r) <- Rational.neg (Game.weight g i);
        incr row)
      supports.(i)
  done;
  (* Normalisation: Σ_{l ∈ S_i} p^l_i = 1. *)
  for i = 0 to n - 1 do
    let r = !row in
    List.iter (fun l -> Qmat.set matrix r (var_p i l) Rational.one) supports.(i);
    rhs.(r) <- Rational.one;
    incr row
  done;
  match Qmat.solve matrix rhs with
  | None -> Degenerate
  | Some x ->
    let profile =
      Array.init n (fun i ->
          Array.init m (fun l -> if List.mem l supports.(i) then x.(var_p i l) else Rational.zero))
    in
    let positive =
      List.for_all
        (fun i -> List.for_all (fun l -> Rational.sign profile.(i).(l) > 0) supports.(i))
        (List.init n Fun.id)
    in
    if positive && Mixed.is_nash g profile then
      Equilibrium
        {
          profile;
          supports = Array.map (fun s -> s) supports;
          latencies = Array.init n (fun i -> x.(var_lambda i));
        }
    else Rejected

let solve_support g supports =
  match classify g supports with Equilibrium f -> Some f | Rejected | Degenerate -> None

let all_nash ?(limit = 200_000) g =
  let n = Game.users g and m = Game.links g in
  let masks = (1 lsl m) - 1 in
  (* masks^n support profiles in total. *)
  let rec count acc i =
    if i = 0 then Some acc
    else if acc > limit then None
    else count (acc * masks) (i - 1)
  in
  (match count 1 n with
   | Some c when c <= limit -> ()
   | _ -> invalid_arg "Support_enum.all_nash: support space exceeds the limit");
  let current = Array.make n 1 in
  let equilibria = ref [] and degenerate = ref 0 in
  let rec next i =
    if i < 0 then false
    else if current.(i) + 1 <= masks then begin
      current.(i) <- current.(i) + 1;
      true
    end
    else begin
      current.(i) <- 1;
      next (i - 1)
    end
  in
  let continue = ref true in
  while !continue do
    (match classify g (Array.map (links_of_mask m) current) with
     | Equilibrium f -> equilibria := f :: !equilibria
     | Degenerate -> incr degenerate
     | Rejected -> ());
    continue := next (n - 1)
  done;
  { equilibria = List.rev !equilibria; degenerate_supports = !degenerate }
