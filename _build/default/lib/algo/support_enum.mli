open Model

(** All mixed Nash equilibria by support enumeration.

    For a fixed support profile [S_1, …, S_n] (the sets of links each
    user plays with positive probability), the Nash conditions of
    Section 2 are linear: for every user [i] there is a latency level
    [λ_i] with

    {v ((1 - p^l_i)·w_i + W^l) / c^l_i = λ_i   for l ∈ S_i v}

    together with [Σ_{l∈S_i} p^l_i = 1], where
    [W^l = Σ_k p^l_k w_k].  This module enumerates all
    [(2^m - 1)^n] support profiles, solves each square system exactly
    (see {!Numeric.Qmat}), and keeps the solutions that are genuine
    equilibria (positive on support, no profitable off-support link).

    It is exponential and meant for small games; its value is
    cross-validation: the singleton-support solutions must be exactly
    the pure Nash equilibria, and the full-support solution must be the
    closed-form fully mixed equilibrium of Theorem 4.6 — both checked in
    the test suite, giving an independent derivation of the paper's
    formulas. *)

type finding = {
  profile : Mixed.profile;
  supports : int list array;  (** the support of each user *)
  latencies : Numeric.Rational.t array;  (** λ_i at the equilibrium *)
}

type result = {
  equilibria : finding list;
  degenerate_supports : int;
      (** support profiles whose linear system was singular — possible
          equilibrium components that the square-system method cannot
          enumerate (reported, not silently dropped) *)
}

(** [all_nash g] enumerates every support profile.
    @raise Invalid_argument when [(2^m - 1)^n] exceeds [limit]
    (default [200_000]). *)
val all_nash : ?limit:int -> Game.t -> result

(** [solve_support g supports] solves the equal-latency system for one
    support profile: [Some finding] when the system is non-singular and
    the solution satisfies all Nash conditions. *)
val solve_support : Game.t -> int list array -> finding option
