open Model

(** Algorithm A_twolinks (Figure 1, Theorem 3.3).

    Computes a pure Nash equilibrium of any game on [m = 2] links in
    O(n²), even with initial link traffic.  Greedy on {e tolerances}
    (Definition 3.1): the tolerance [α^j_i] is the largest total load on
    link [j] (own weight included) that user [i] accepts while routing
    on [j]; the algorithm repeatedly commits the user with the highest
    tolerance to its preferred link. *)

(** [tolerance g ~initial ~total i j] is [α^j_i] for the game whose
    remaining users carry total traffic [total] and whose links carry
    initial traffic [initial] (length 2): the unique solution of

    {v (t_j + α)/c^j_i = (t_{j⊕1} + total - α + w_i)/c^{j⊕1}_i v} *)
val tolerance :
  Game.t ->
  initial:Numeric.Rational.t array ->
  total:Numeric.Rational.t ->
  int ->
  int ->
  Numeric.Rational.t

(** [solve ?initial g] is a pure Nash equilibrium of [g] (with respect
    to [initial], default zero).
    @raise Invalid_argument unless [g] has exactly two links. *)
val solve : ?initial:Numeric.Rational.t array -> Game.t -> Pure.profile
