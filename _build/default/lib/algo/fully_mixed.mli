open Model

(** Fully mixed Nash equilibria (Section 4, Lemmas 4.1–4.3,
    Theorem 4.6, Corollary 4.7).

    In a fully mixed equilibrium every user plays every link with
    positive probability, so all of a user's per-link expected latencies
    coincide.  Solving the resulting linear system in closed form gives,
    with [S_i = Σ_ℓ c^ℓ_i], [d^ℓ_i = c^ℓ_i/S_i] and [T = Σ_k w_k]:

    - [λ_i = ((m-1)·w_i + T) / S_i]                       (Lemma 4.1)
    - [W^ℓ = ((m-1)·Σ_i d^ℓ_i w_i + T·Σ_i d^ℓ_i - T)/(n-1)]  (Lemma 4.2)
    - [p^ℓ_i = (W^ℓ + w_i - c^ℓ_i·λ_i) / w_i]             (equation 2)

    Theorem 4.6: a fully mixed Nash equilibrium exists iff all these
    candidate probabilities lie in (0,1); when it exists it is unique
    and equals the candidate.  Everything costs O(nm) exact operations
    (Corollary 4.7). *)

(** [equilibrium_latency g i] is [λ_{i,b_i}] of Lemma 4.1.
    @raise Invalid_argument when [g] has fewer than two users. *)
val equilibrium_latency : Game.t -> int -> Numeric.Rational.t

(** [expected_traffic g l] is [W^l] of Lemma 4.2. *)
val expected_traffic : Game.t -> int -> Numeric.Rational.t

(** [candidate g] is the full candidate probability matrix of
    Lemma 4.3/Remark 4.4; rows always sum to exactly 1 but entries may
    fall outside (0,1), in which case no fully mixed equilibrium exists
    (the matrix is still the comparator used by Corollary 4.10). *)
val candidate : Game.t -> Mixed.profile

(** [compute g] is [Some p] with the unique fully mixed Nash
    equilibrium, or [None] when none exists (Theorem 4.6). *)
val compute : Game.t -> Mixed.profile option

(** [exists g] is [compute g <> None]. *)
val exists : Game.t -> bool
