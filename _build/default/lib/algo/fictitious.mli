open Model

(** Fictitious play in the uncertainty game.

    Each round every user best-responds to the {e empirical mixed
    profile} of the others (the frequency of links they played so far).
    Fictitious play provably converges for potential games and zero-sum
    games; the paper's game is neither ([9]/Monien, Section 3.2), so its
    behaviour here is an empirical question the library lets you probe.
    Beliefs stay fixed — this is learning about opponents, not about the
    network (contrast {!Experiments.Learning}).

    Play is simultaneous: all users best-respond to the round's
    empirical profile before any counts are updated. *)

type outcome = {
  rounds : int;  (** rounds actually played *)
  last_profile : Pure.profile;  (** actions of the final round *)
  empirical : Mixed.profile;  (** empirical frequencies (exact rationals) *)
  stabilised : bool;
      (** the last action profile repeated for the requested window and
          is a pure Nash equilibrium *)
}

(** [play g ~rounds ~window start] runs fictitious play from the pure
    profile [start].  It stops early once the action profile has been
    constant for [window] consecutive rounds {e and} that profile is a
    pure Nash equilibrium; [stabilised] records whether that happened.
    @raise Invalid_argument when [rounds <= 0] or [window <= 0]. *)
val play : Game.t -> rounds:int -> window:int -> Pure.profile -> outcome
