open Model
type move_kind = Best_response | Better_response

let encode g p =
  let m = Game.links g in
  Array.fold_right (fun l acc -> (acc * m) + l) p 0

let decode g k =
  let n = Game.users g and m = Game.links g in
  let p = Array.make n 0 in
  let rest = ref k in
  for i = 0 to n - 1 do
    p.(i) <- !rest mod m;
    rest := !rest / m
  done;
  p

let successors g ?initial ~kind p =
  let acc = ref [] in
  for i = Game.users g - 1 downto 0 do
    match kind with
    | Best_response ->
      let target, best = Pure.best_response g ?initial p i in
      if Numeric.Rational.compare best (Pure.latency g ?initial p i) < 0 then begin
        let next = Array.copy p in
        next.(i) <- target;
        acc := next :: !acc
      end
    | Better_response ->
      List.iter
        (fun l ->
          let next = Array.copy p in
          next.(i) <- l;
          acc := next :: !acc)
        (Pure.improving_moves g ?initial p i)
  done;
  !acc

let node_count name limit g =
  match Social.profile_count g with
  | Some c when c <= limit -> c
  | _ -> invalid_arg (Printf.sprintf "Game_graph.%s: state space exceeds the limit" name)

let find_cycle ?(limit = 2_000_000) ?initial g ~kind =
  let count = node_count "find_cycle" limit g in
  (* Iterative three-colour DFS; colours: 0 unvisited, 1 on stack,
     2 done.  [parent] reconstructs the witness cycle. *)
  let colour = Bytes.make count '\000' in
  let parent = Array.make count (-1) in
  let cycle = ref None in
  let rec dfs v =
    Bytes.set colour v '\001';
    let succs = successors g ?initial ~kind (decode g v) in
    List.iter
      (fun sp ->
        if !cycle = None then begin
          let s = encode g sp in
          match Bytes.get colour s with
          | '\000' ->
            parent.(s) <- v;
            dfs s
          | '\001' ->
            (* Back edge: walk parents from v back to s. *)
            let rec collect u acc = if u = s then u :: acc else collect parent.(u) (u :: acc) in
            cycle := Some (List.map (decode g) (collect v []))
          | _ -> ()
        end)
      succs;
    if Bytes.get colour v = '\001' then Bytes.set colour v '\002'
  in
  let v = ref 0 in
  while !cycle = None && !v < count do
    if Bytes.get colour !v = '\000' then dfs !v;
    incr v
  done;
  !cycle

let all_reach_nash ?limit ?initial g ~kind = find_cycle ?limit ?initial g ~kind = None
