open Model

(** Algorithm A_symmetric (Figure 2, Theorem 3.5).

    Computes a pure Nash equilibrium for games with {e symmetric}
    (equal-weight) users on any number of links in O(n²m): users are
    inserted one by one on a latency-minimising link, and each insertion
    is followed by a cascade of best-response moves.  The paper's
    potential-free induction shows each existing user defects at most
    once per insertion, so the cascade is finite. *)

(** [solve g] is a pure Nash equilibrium of [g].
    @raise Invalid_argument unless all users have equal weights. *)
val solve : Game.t -> Pure.profile

(** [solve_with_stats g] also reports the total number of defection
    moves performed across all cascades (used by the complexity
    experiment E2; the paper's bound is O(n²)). *)
val solve_with_stats : Game.t -> Pure.profile * int
