open Model

(** Correlated equilibria of the uncertainty game (extension).

    A correlated equilibrium (Aumann) is a distribution [x] over pure
    profiles such that no user, told its own recommended link, gains by
    deviating.  In the belief model each user evaluates deviations under
    its own belief, giving the {e subjective} correlated-equilibrium
    polytope:

    {v Σ_{σ : σ_i = a} x_σ · (λ_{i,b_i}(σ) − λ_{i,b_i}(σ[i→b])) ≤ 0 v}

    for every user [i] and link pair [a ≠ b], plus [x ≥ 0, Σx = 1].
    Every Nash equilibrium (pure as a point mass, mixed as a product)
    lies in this polytope — property-tested — so it is never empty, and
    optimising a linear social cost over it with the exact simplex
    solver ({!Numeric.Simplex}) answers how much a mediator could help
    or hurt: the {e mediation value} experiment E20. *)

type result = {
  value : Numeric.Rational.t;  (** optimal SC1 over the CE polytope *)
  distribution : (Pure.profile * Numeric.Rational.t) list;
      (** the optimising distribution's support *)
}

(** [is_correlated_equilibrium g x] checks the CE inequalities exactly
    for a distribution given as (profile, probability) pairs (absent
    profiles have probability 0).
    @raise Invalid_argument when probabilities are negative or do not
    sum to 1, or a profile is malformed. *)
val is_correlated_equilibrium : Game.t -> (Pure.profile * Numeric.Rational.t) list -> bool

(** [best_social_cost g] minimises [SC1 = Σ_σ x_σ Σ_i λ_{i,b_i}(σ)]
    over the CE polytope.
    @raise Invalid_argument when [m^n] exceeds [limit]
    (default [4_096] — the LP has one variable per profile). *)
val best_social_cost : ?limit:int -> Game.t -> result

(** [worst_social_cost g] maximises the same objective (the polytope is
    bounded, so this always exists). *)
val worst_social_cost : ?limit:int -> Game.t -> result

(** [of_mixed g p] is the product distribution of a mixed profile, as a
    support list (for feeding Nash equilibria to the checker). *)
val of_mixed : Game.t -> Mixed.profile -> (Pure.profile * Numeric.Rational.t) list
