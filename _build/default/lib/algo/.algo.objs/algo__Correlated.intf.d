lib/algo/correlated.mli: Game Mixed Model Numeric Pure
