lib/algo/uniform_beliefs.ml: Array Fun Game Model Numeric Rational Stdlib
