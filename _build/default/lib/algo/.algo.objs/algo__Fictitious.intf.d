lib/algo/fictitious.mli: Game Mixed Model Pure
