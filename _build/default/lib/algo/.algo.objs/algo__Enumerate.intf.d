lib/algo/enumerate.mli: Game Model Numeric Pure
