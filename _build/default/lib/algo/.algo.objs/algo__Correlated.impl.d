lib/algo/correlated.ml: Array Fun Game List Mixed Model Numeric Pure Rational Simplex Social
