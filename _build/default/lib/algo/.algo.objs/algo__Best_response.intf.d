lib/algo/best_response.mli: Game Model Numeric Prng Pure
