lib/algo/potential.mli: Game Model Numeric Pure
