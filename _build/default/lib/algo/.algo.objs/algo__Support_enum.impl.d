lib/algo/support_enum.ml: Array Fun Game List Mixed Model Numeric Qmat Rational
