lib/algo/symmetric.mli: Game Model Pure
