lib/algo/game_graph.mli: Game Model Numeric Pure
