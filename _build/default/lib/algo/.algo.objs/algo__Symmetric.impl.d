lib/algo/symmetric.ml: Array Game Model Numeric Rational
