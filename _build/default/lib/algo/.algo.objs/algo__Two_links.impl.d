lib/algo/two_links.ml: Array Game Model Numeric Rational
