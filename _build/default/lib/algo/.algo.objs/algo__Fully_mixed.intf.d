lib/algo/fully_mixed.mli: Game Mixed Model Numeric
