lib/algo/support_enum.mli: Game Mixed Model Numeric
