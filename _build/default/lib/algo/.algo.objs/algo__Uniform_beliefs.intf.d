lib/algo/uniform_beliefs.mli: Game Model Numeric Pure
