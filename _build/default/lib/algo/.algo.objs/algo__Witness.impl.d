lib/algo/witness.ml: Array Game Model Numeric Rational
