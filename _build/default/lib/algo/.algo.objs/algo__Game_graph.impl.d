lib/algo/game_graph.ml: Array Bytes Game List Model Numeric Printf Pure Social
