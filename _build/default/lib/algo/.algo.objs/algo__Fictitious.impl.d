lib/algo/fictitious.ml: Array Game Mixed Model Numeric Pure Rational
