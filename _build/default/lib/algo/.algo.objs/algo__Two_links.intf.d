lib/algo/two_links.mli: Game Model Numeric Pure
