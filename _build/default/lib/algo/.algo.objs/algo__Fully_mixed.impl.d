lib/algo/fully_mixed.ml: Array Game List Model Numeric Rational
