lib/algo/best_response.ml: Array Game Hashtbl List Model Numeric Prng Pure Rational
