lib/algo/potential.ml: Array Game Model Numeric Pure Rational Social
