lib/algo/witness.mli: Game Model Numeric
