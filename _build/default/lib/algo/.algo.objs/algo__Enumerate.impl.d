lib/algo/enumerate.ml: Array List Model Numeric Printf Pure Rational Social
