type t = { prob : float array; alias : int array }

let of_weights ws =
  let k = Array.length ws in
  if k = 0 then invalid_arg "Alias.of_weights: empty distribution";
  Array.iter (fun w -> if w < 0.0 || Float.is_nan w then invalid_arg "Alias.of_weights: negative weight") ws;
  let total = Array.fold_left ( +. ) 0.0 ws in
  if total <= 0.0 then invalid_arg "Alias.of_weights: all weights are zero";
  (* Scale to mean 1 and split into under- and over-full buckets. *)
  let scaled = Array.map (fun w -> w *. float_of_int k /. total) ws in
  let prob = Array.make k 1.0 and alias = Array.init k (fun i -> i) in
  let small = ref [] and large = ref [] in
  Array.iteri (fun i p -> if p < 1.0 then small := i :: !small else large := i :: !large) scaled;
  let rec pair () =
    match !small, !large with
    | s :: srest, l :: lrest ->
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) -. (1.0 -. scaled.(s));
      small := srest;
      large := lrest;
      if scaled.(l) < 1.0 then small := l :: !small else large := l :: !large;
      pair ()
    | _ -> ()
  in
  pair ();
  { prob; alias }

let of_rationals qs = of_weights (Array.map Numeric.Rational.to_float qs)

let size t = Array.length t.prob

let sample t rng =
  let i = Rng.int rng (Array.length t.prob) in
  if Rng.float rng < t.prob.(i) then i else t.alias.(i)
