lib/prng/alias.mli: Numeric Rng
