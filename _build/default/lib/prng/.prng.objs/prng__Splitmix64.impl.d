lib/prng/splitmix64.ml: Int64
