lib/prng/xoshiro256.ml: Array Int64 Splitmix64
