lib/prng/rng.mli: Numeric
