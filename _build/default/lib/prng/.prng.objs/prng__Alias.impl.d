lib/prng/alias.ml: Array Float Numeric Rng
