lib/prng/rng.ml: Array Int64 List Numeric Rational Stdlib Xoshiro256
