type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let create seed =
  let sm = Splitmix64.create seed in
  let s0, sm = Splitmix64.next sm in
  let s1, sm = Splitmix64.next sm in
  let s2, sm = Splitmix64.next sm in
  let s3, _ = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let jump_table = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next_int64 t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
