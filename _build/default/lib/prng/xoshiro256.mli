(** xoshiro256++ pseudo-random generator (Blackman & Vigna 2019).

    256 bits of state, period 2^256 - 1, excellent statistical quality.
    State is mutable and owned by a single simulation thread; create
    independent generators (via distinct seeds or {!jump}) for
    independent experiment streams. *)

type t

(** [create seed] initialises the state by expanding [seed] through
    SplitMix64, as recommended by the authors. *)
val create : int64 -> t

(** [copy t] is an independent generator with identical state. *)
val copy : t -> t

(** [next_int64 t] advances the state and returns 64 uniform bits. *)
val next_int64 : t -> int64

(** [jump t] advances the state by 2^128 steps in place, yielding a
    stream independent of the original for any realistic usage. *)
val jump : t -> unit
