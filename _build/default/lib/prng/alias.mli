(** Walker's alias method for O(1) categorical sampling.

    Preprocesses a finite discrete distribution into two tables in
    O(k) time; each draw then costs one bounded integer and one float.
    Used by Monte-Carlo experiments that repeatedly realise network
    states from user beliefs. *)

type t

(** [of_weights ws] builds a sampler for the distribution proportional
    to [ws]. @raise Invalid_argument if [ws] is empty, any weight is
    negative, or all weights are zero. *)
val of_weights : float array -> t

(** [of_rationals qs] builds a sampler proportional to exact weights. *)
val of_rationals : Numeric.Rational.t array -> t

(** [size t] is the number of categories. *)
val size : t -> int

(** [sample t rng] draws a category index. *)
val sample : t -> Rng.t -> int
