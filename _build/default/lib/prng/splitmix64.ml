type t = int64

let create seed = seed

let golden_gamma = 0x9E3779B97F4A7C15L

let next state =
  let z = Int64.add state golden_gamma in
  let z' = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z'' = Int64.mul (Int64.logxor z' (Int64.shift_right_logical z' 27)) 0x94D049BB133111EBL in
  (Int64.logxor z'' (Int64.shift_right_logical z'' 31), z)
