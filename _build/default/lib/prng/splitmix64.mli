(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    A tiny, fast generator with a single 64-bit word of state.  Its main
    job here is to expand a user-supplied seed into the 256-bit state of
    {!Xoshiro256}, which is the recommended seeding procedure for the
    xoshiro family. *)

type t

val create : int64 -> t

(** [next s] is the next 64-bit output and the advanced state. *)
val next : t -> int64 * t
