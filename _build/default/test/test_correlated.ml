(* Tests for the exact LP solver and the correlated-equilibrium layer
   built on it. *)

open Model
open Numeric

let q = Rational.of_ints
let qi = Rational.of_int
let check_q = Alcotest.testable Rational.pp Rational.equal

let prop name ?(count = 50) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

let c coeffs relation rhs = Simplex.{ coeffs; relation; rhs }

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)

let test_lp_textbook () =
  (* max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6). *)
  match
    Simplex.maximize ~objective:[| qi 3; qi 5 |]
      [
        c [| qi 1; qi 0 |] Simplex.Le (qi 4);
        c [| qi 0; qi 2 |] Simplex.Le (qi 12);
        c [| qi 3; qi 2 |] Simplex.Le (qi 18);
      ]
  with
  | Simplex.Optimal (v, x) ->
    Alcotest.check check_q "value" (qi 36) v;
    Alcotest.check check_q "x" (qi 2) x.(0);
    Alcotest.check check_q "y" (qi 6) x.(1)
  | _ -> Alcotest.fail "expected an optimum"

let test_lp_minimize_with_ge () =
  match
    Simplex.minimize ~objective:[| qi 1; qi 1 |]
      [ c [| qi 1; qi 1 |] Simplex.Ge (qi 2); c [| qi 1; qi 0 |] Simplex.Le (qi 10) ]
  with
  | Simplex.Optimal (v, _) -> Alcotest.check check_q "value" (qi 2) v
  | _ -> Alcotest.fail "expected an optimum"

let test_lp_infeasible () =
  Alcotest.(check bool) "infeasible detected" true
    (Simplex.maximize ~objective:[| qi 1 |]
       [ c [| qi 1 |] Simplex.Le (qi 1); c [| qi 1 |] Simplex.Ge (qi 2) ]
     = Simplex.Infeasible)

let test_lp_unbounded () =
  Alcotest.(check bool) "unbounded detected" true
    (Simplex.maximize ~objective:[| qi 1; qi 0 |]
       [ c [| qi 1; qi (-1) |] Simplex.Le (qi 1) ]
     = Simplex.Unbounded)

let test_lp_equality_and_fractions () =
  (match Simplex.maximize ~objective:[| qi 1; qi 2 |] [ c [| qi 1; qi 1 |] Simplex.Eq (qi 1) ] with
   | Simplex.Optimal (v, _) -> Alcotest.check check_q "equality LP" (qi 2) v
   | _ -> Alcotest.fail "expected an optimum");
  match Simplex.maximize ~objective:[| qi 1 |] [ c [| qi 3 |] Simplex.Le (qi 2) ] with
  | Simplex.Optimal (v, _) -> Alcotest.check check_q "fractional optimum" (q 2 3) v
  | _ -> Alcotest.fail "expected an optimum"

let test_lp_beale_no_cycling () =
  (* Beale's classic degenerate LP that cycles without an anti-cycling
     rule; the optimum is 1/20. *)
  match
    Simplex.maximize
      ~objective:[| q 3 4; qi (-150); q 1 50; qi (-6) |]
      [
        c [| q 1 4; qi (-60); q (-1) 25; qi 9 |] Simplex.Le (qi 0);
        c [| q 1 2; qi (-90); q (-1) 50; qi 3 |] Simplex.Le (qi 0);
        c [| qi 0; qi 0; qi 1; qi 0 |] Simplex.Le (qi 1);
      ]
  with
  | Simplex.Optimal (v, _) -> Alcotest.check check_q "Beale optimum" (q 1 20) v
  | _ -> Alcotest.fail "expected an optimum"

let test_lp_validation () =
  Alcotest.check_raises "no constraints" (Invalid_argument "Simplex.maximize: no constraints")
    (fun () -> ignore (Simplex.maximize ~objective:[| qi 1 |] []));
  Alcotest.check_raises "dimension" (Invalid_argument "Simplex.maximize: constraint dimension mismatch")
    (fun () -> ignore (Simplex.maximize ~objective:[| qi 1 |] [ c [| qi 1; qi 2 |] Simplex.Le (qi 1) ]))

let lp_properties =
  [
    prop "optimal solutions are feasible" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let nvars = Prng.Rng.int_in rng 1 4 and nrows = Prng.Rng.int_in rng 1 4 in
        let objective = Array.init nvars (fun _ -> qi (Prng.Rng.int_in rng (-3) 3)) in
        let constraints =
          List.init nrows (fun _ ->
              c
                (Array.init nvars (fun _ -> qi (Prng.Rng.int_in rng (-3) 3)))
                (match Prng.Rng.int rng 3 with 0 -> Simplex.Le | 1 -> Simplex.Ge | _ -> Simplex.Eq)
                (qi (Prng.Rng.int_in rng (-3) 3)))
        in
        match Simplex.maximize ~objective constraints with
        | Simplex.Infeasible | Simplex.Unbounded -> true
        | Simplex.Optimal (v, x) ->
          Array.for_all (fun q -> Rational.sign q >= 0) x
          && List.for_all
               (fun (ct : Simplex.constraint_) ->
                 let lhs = ref Rational.zero in
                 Array.iteri
                   (fun j a -> lhs := Rational.add !lhs (Rational.mul a x.(j)))
                   ct.coeffs;
                 match ct.relation with
                 | Simplex.Le -> Rational.compare !lhs ct.rhs <= 0
                 | Simplex.Ge -> Rational.compare !lhs ct.rhs >= 0
                 | Simplex.Eq -> Rational.equal !lhs ct.rhs)
               constraints
          && Rational.equal v
               (let acc = ref Rational.zero in
                Array.iteri (fun j o -> acc := Rational.add !acc (Rational.mul o x.(j))) objective;
                !acc));
  ]

(* ------------------------------------------------------------------ *)
(* Correlated equilibria                                               *)

let random_game seed =
  let rng = Prng.Rng.create seed in
  let n = Prng.Rng.int_in rng 2 3 and m = Prng.Rng.int_in rng 2 3 in
  Experiments.Generators.game rng ~n ~m
    ~weights:(Experiments.Generators.Integer_weights 4)
    ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })

let test_ce_validation () =
  let g = Game.kp ~weights:[| qi 1; qi 1 |] ~capacities:[| qi 1; qi 2 |] in
  Alcotest.check_raises "not a distribution"
    (Invalid_argument "Correlated.is_correlated_equilibrium: probabilities must sum to 1")
    (fun () ->
      ignore (Algo.Correlated.is_correlated_equilibrium g [ ([| 0; 0 |], q 1 2) ]))

let test_ce_rejects_non_equilibrium () =
  (* Both users on the slow link with probability 1 is not a CE. *)
  let g = Game.kp ~weights:[| qi 1; qi 1 |] ~capacities:[| qi 10; qi 1 |] in
  Alcotest.(check bool) "pile on slow link rejected" false
    (Algo.Correlated.is_correlated_equilibrium g [ ([| 1; 1 |], Rational.one) ])

let test_ce_traffic_light () =
  (* The classic mediation pattern: a fair coin between the two opposite
     pure equilibria is a CE. *)
  let g = Game.kp ~weights:[| qi 1; qi 1 |] ~capacities:[| qi 1; qi 1 |] in
  Alcotest.(check bool) "traffic light is a CE" true
    (Algo.Correlated.is_correlated_equilibrium g
       [ ([| 0; 1 |], q 1 2); ([| 1; 0 |], q 1 2) ])

let ce_properties =
  [
    prop "every pure NE is a correlated equilibrium" seed_gen (fun seed ->
        let g = random_game seed in
        List.for_all
          (fun ne -> Algo.Correlated.is_correlated_equilibrium g [ (ne, Rational.one) ])
          (Algo.Enumerate.pure_nash g));
    prop "the FMNE product distribution is a correlated equilibrium" seed_gen (fun seed ->
        let g = random_game seed in
        match Algo.Fully_mixed.compute g with
        | None -> true
        | Some p ->
          Algo.Correlated.is_correlated_equilibrium g (Algo.Correlated.of_mixed g p));
    prop "OPT1 <= best CE <= best pure NE (mediation sandwich)" seed_gen (fun seed ->
        let g = random_game seed in
        let best_ce = Algo.Correlated.best_social_cost g in
        let opt1, _ = Social.opt1 g in
        match Algo.Enumerate.extremal_nash g ~cost:(fun g p -> Pure.social_cost1 g p) with
        | None -> true
        | Some ((_, best_ne), _) ->
          Rational.compare opt1 best_ce.value <= 0
          && Rational.compare best_ce.value best_ne <= 0);
    prop "optimising distributions are genuine correlated equilibria" seed_gen (fun seed ->
        let g = random_game seed in
        let best = Algo.Correlated.best_social_cost g in
        let worst = Algo.Correlated.worst_social_cost g in
        Algo.Correlated.is_correlated_equilibrium g best.distribution
        && Algo.Correlated.is_correlated_equilibrium g worst.distribution
        && Rational.compare best.value worst.value <= 0);
  ]

let suite =
  [
    ("LP textbook maximum", `Quick, test_lp_textbook);
    ("LP minimisation with >=", `Quick, test_lp_minimize_with_ge);
    ("LP infeasible", `Quick, test_lp_infeasible);
    ("LP unbounded", `Quick, test_lp_unbounded);
    ("LP equality and fractions", `Quick, test_lp_equality_and_fractions);
    ("LP Beale degeneracy (no cycling)", `Quick, test_lp_beale_no_cycling);
    ("LP validation", `Quick, test_lp_validation);
    ("CE validation", `Quick, test_ce_validation);
    ("CE rejects non-equilibrium", `Quick, test_ce_rejects_non_equilibrium);
    ("CE traffic light", `Quick, test_ce_traffic_light);
  ]

let () =
  Alcotest.run "correlated"
    [ ("unit", suite); ("simplex", lp_properties); ("polytope", ce_properties) ]
