(* Tests for the KP baseline and the player-specific (Milchtaich)
   substrate: the LPT-style solver, nashification, the subsumption of
   the KP-model under point beliefs (E13), Milchtaich's existence
   theorem for unweighted games, the no-pure-NE search for weighted
   games (E7), and the embedding cross-validation. *)

open Model
open Numeric

let qi = Rational.of_int
let q = Rational.of_ints

let prop name ?(count = 100) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

let random_kp seed ~n_hi ~m_hi =
  let rng = Prng.Rng.create seed in
  let n = Prng.Rng.int_in rng 2 n_hi and m = Prng.Rng.int_in rng 2 m_hi in
  ( rng,
    Experiments.Generators.game rng ~n ~m
      ~weights:(Experiments.Generators.Rational_weights 6)
      ~beliefs:(Experiments.Generators.Shared_point { cap_bound = 6 }) )

(* ------------------------------------------------------------------ *)
(* KP solver                                                           *)

let test_kp_solve_hand_case () =
  (* Classic related links: capacities 3 and 1, weights 4, 2, 2. *)
  let g = Game.kp ~weights:[| qi 4; qi 2; qi 2 |] ~capacities:[| qi 3; qi 1 |] in
  let sigma = Kp.Kp_nash.solve g in
  Alcotest.(check bool) "NE" true (Pure.is_nash g sigma);
  (* LPT: 4 → link0 (4/3 < 4); 2 → link0 (2 vs 6/3=2: tie, link0 first);
     2 → link1 (2 vs 8/3). *)
  Alcotest.(check (array int)) "placement" [| 0; 0; 1 |] sigma

let test_kp_solve_rejects_non_kp () =
  let g = Game.of_capacities ~weights:[| qi 1; qi 1 |] [| [| qi 1; qi 2 |]; [| qi 2; qi 1 |] |] in
  Alcotest.check_raises "non-KP rejected"
    (Invalid_argument "Kp_nash.solve: game is not a KP instance") (fun () ->
      ignore (Kp.Kp_nash.solve g))

let test_nashify_fixes_profile () =
  let g = Game.kp ~weights:[| qi 4; qi 2; qi 2 |] ~capacities:[| qi 3; qi 1 |] in
  let bad = [| 1; 1; 1 |] in
  Alcotest.(check bool) "start is not a NE" false (Pure.is_nash g bad);
  let fixed = Kp.Kp_nash.nashify g bad in
  Alcotest.(check bool) "nashified" true (Pure.is_nash g fixed)

let kp_properties =
  [
    prop "KP solver returns a pure NE" seed_gen (fun seed ->
        let _, g = random_kp seed ~n_hi:8 ~m_hi:5 in
        Pure.is_nash g (Kp.Kp_nash.solve g));
    prop "nashify reaches a NE from any start" seed_gen (fun seed ->
        let rng, g = random_kp seed ~n_hi:6 ~m_hi:4 in
        let start = Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g)) in
        Pure.is_nash g (Kp.Kp_nash.nashify g start));
    prop "point beliefs subsume the KP-model (Section 2, E13)" seed_gen (fun seed ->
        (* A game whose users all hold the same point belief must agree,
           on every quantity we compute, with the directly constructed
           KP instance. *)
        let rng = Prng.Rng.create seed in
        let n = Prng.Rng.int_in rng 2 5 and m = Prng.Rng.int_in rng 2 3 in
        let caps = Array.init m (fun _ -> qi (Prng.Rng.int_in rng 1 6)) in
        let weights = Array.init n (fun _ -> qi (Prng.Rng.int_in rng 1 6)) in
        let st = State.make caps in
        let via_beliefs =
          Game.make ~weights ~beliefs:(Array.init n (fun _ -> Belief.certain st))
        in
        let direct = Game.kp ~weights ~capacities:caps in
        Game.is_kp via_beliefs
        && List.map Array.to_list (Algo.Enumerate.pure_nash via_beliefs)
           = List.map Array.to_list (Algo.Enumerate.pure_nash direct));
  ]

(* ------------------------------------------------------------------ *)
(* Milchtaich unweighted                                               *)

let unweighted_fixture () =
  (* Two players, two links; player 0 strongly prefers link 0, player 1
     prefers link 1 unless shared. cost.(i).(l).(k-1). *)
  Kp.Milchtaich.Unweighted.make
    [|
      [| [| qi 1; qi 4 |]; [| qi 3; qi 5 |] |];
      [| [| qi 3; qi 5 |]; [| qi 1; qi 4 |] |];
    |]

let test_unweighted_validation () =
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Milchtaich.Unweighted.make: costs must be non-decreasing in congestion")
    (fun () ->
      ignore
        (Kp.Milchtaich.Unweighted.make
           [|
             [| [| qi 2; qi 1 |]; [| qi 1; qi 1 |] |];
             [| [| qi 1; qi 1 |]; [| qi 1; qi 1 |] |];
           |]));
  Alcotest.check_raises "no players" (Invalid_argument "Milchtaich.Unweighted.make: no players")
    (fun () -> ignore (Kp.Milchtaich.Unweighted.make [||]))

let test_unweighted_nash () =
  let t = unweighted_fixture () in
  Alcotest.(check bool) "split is NE" true (Kp.Milchtaich.Unweighted.is_nash t [| 0; 1 |]);
  (* The swapped split is also stable: moving onto an occupied link
     costs 4 > 3 for both players. *)
  Alcotest.(check bool) "swap is also NE" true (Kp.Milchtaich.Unweighted.is_nash t [| 1; 0 |]);
  Alcotest.(check bool) "piling up is not" false (Kp.Milchtaich.Unweighted.is_nash t [| 0; 0 |]);
  let nes = Kp.Milchtaich.Unweighted.pure_nash t in
  Alcotest.(check int) "exactly the two splits" 2 (List.length nes);
  Alcotest.(check bool) "exists" true (Kp.Milchtaich.Unweighted.exists_pure_nash t)

let test_unweighted_latency () =
  let t = unweighted_fixture () in
  Alcotest.(check bool) "alone cost" true
    (Rational.equal (Kp.Milchtaich.Unweighted.latency t [| 0; 1 |] 0) (qi 1));
  Alcotest.(check bool) "shared cost" true
    (Rational.equal (Kp.Milchtaich.Unweighted.latency t [| 0; 0 |] 0) (qi 4))

let unweighted_properties =
  [
    prop "unweighted player-specific games always have a pure NE (Milchtaich 1996)"
      seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let players = Prng.Rng.int_in rng 2 4 and links = Prng.Rng.int_in rng 2 4 in
        let t = Kp.Milchtaich.Unweighted.random rng ~players ~links ~value_bound:6 in
        Kp.Milchtaich.Unweighted.exists_pure_nash t);
    prop "improving moves strictly lower the mover's cost" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let players = Prng.Rng.int_in rng 2 4 and links = Prng.Rng.int_in rng 2 4 in
        let t = Kp.Milchtaich.Unweighted.random rng ~players ~links ~value_bound:6 in
        let p = Array.init players (fun _ -> Prng.Rng.int rng links) in
        List.for_all
          (fun i ->
            List.for_all
              (fun l ->
                let p' = Array.copy p in
                p'.(i) <- l;
                Rational.compare
                  (Kp.Milchtaich.Unweighted.latency t p' i)
                  (Kp.Milchtaich.Unweighted.latency t p i)
                < 0)
              (Kp.Milchtaich.Unweighted.improving_moves t p i))
          (List.init players Fun.id));
  ]

let test_unweighted_cycles_exist () =
  (* Milchtaich: unweighted games lack the finite improvement property;
     our searcher finds a cyclic instance quickly (seeded). *)
  let rng = Prng.Rng.create 123 in
  let found = ref false in
  let attempts = ref 0 in
  while (not !found) && !attempts < 500 do
    incr attempts;
    let t = Kp.Milchtaich.Unweighted.random rng ~players:3 ~links:3 ~value_bound:6 in
    if Kp.Milchtaich.Unweighted.has_better_response_cycle t then found := true
  done;
  Alcotest.(check bool) "cyclic unweighted instance found" true !found

(* ------------------------------------------------------------------ *)
(* Milchtaich weighted: the no-pure-NE phenomenon (E7)                 *)

let test_weighted_validation () =
  Alcotest.check_raises "weights positive"
    (Invalid_argument "Milchtaich.Weighted.make: weights must be positive") (fun () ->
      ignore (Kp.Milchtaich.Weighted.make ~weights:[| 0 |] [||]));
  Alcotest.check_raises "table span"
    (Invalid_argument "Milchtaich.Weighted.make: table must cover loads 0..total weight")
    (fun () ->
      ignore
        (Kp.Milchtaich.Weighted.make ~weights:[| 1; 1 |]
           [| [| [| qi 0 |]; [| qi 0 |] |]; [| [| qi 0 |]; [| qi 0 |] |] |]))

let test_weighted_no_pure_nash_search () =
  (* With three distinct weights the adaptive search finds an instance
     without any pure NE — the phenomenon of [17] that the paper
     contrasts with its own three-user existence result. *)
  let rng = Prng.Rng.create 5 in
  match Kp.Milchtaich.Weighted.search_no_pure_nash rng ~weights:[| 1; 2; 3 |] ~links:3 ~attempts:5000 with
  | None -> Alcotest.fail "expected to find a no-pure-NE weighted instance"
  | Some (t, _) ->
    Alcotest.(check bool) "really has no pure NE" false
      (Kp.Milchtaich.Weighted.exists_pure_nash t);
    Alcotest.(check int) "three players" 3 (Kp.Milchtaich.Weighted.players t);
    Alcotest.(check int) "three links" 3 (Kp.Milchtaich.Weighted.links t)

let test_weighted_load_semantics () =
  let t =
    Kp.Milchtaich.Weighted.make ~weights:[| 1; 2 |]
      [|
        [| Array.init 4 (fun l -> qi l); Array.init 4 (fun l -> qi (2 * l)) |];
        [| Array.init 4 (fun l -> qi l); Array.init 4 (fun l -> qi (2 * l)) |];
      |]
  in
  (* Both on link 0: load 3, player 0 pays cost(3) = 3. *)
  Alcotest.(check bool) "load includes both weights" true
    (Rational.equal (Kp.Milchtaich.Weighted.latency t [| 0; 0 |] 0) (qi 3));
  Alcotest.(check bool) "split load" true
    (Rational.equal (Kp.Milchtaich.Weighted.latency t [| 0; 1 |] 1) (qi 4))

let weighted_properties =
  [
    prop "embedding: belief games and their player-specific image have identical NE sets"
      seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
        let g =
          Experiments.Generators.game rng ~n ~m
            ~weights:(Experiments.Generators.Integer_weights 4)
            ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })
        in
        match Kp.Embedding.to_weighted g with
        | None -> false (* integer weights must embed *)
        | Some t ->
          List.map Array.to_list (Algo.Enumerate.pure_nash g)
          = List.map Array.to_list (Kp.Milchtaich.Weighted.pure_nash t));
    prop "embedding refuses non-integral weights" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let g =
          Game.of_capacities
            ~weights:[| q 1 2; qi 1 |]
            [| [| qi 1; qi 2 |]; [| qi (1 + Prng.Rng.int rng 3); qi 1 |] |]
        in
        Kp.Embedding.to_weighted g = None);
  ]

let suite =
  [
    ("KP solver hand case", `Quick, test_kp_solve_hand_case);
    ("KP solver rejects non-KP", `Quick, test_kp_solve_rejects_non_kp);
    ("nashify fixes a profile", `Quick, test_nashify_fixes_profile);
    ("unweighted validation", `Quick, test_unweighted_validation);
    ("unweighted nash", `Quick, test_unweighted_nash);
    ("unweighted latency", `Quick, test_unweighted_latency);
    ("unweighted improvement cycles exist", `Quick, test_unweighted_cycles_exist);
    ("weighted validation", `Quick, test_weighted_validation);
    ("weighted no-pure-NE search (E7)", `Slow, test_weighted_no_pure_nash_search);
    ("weighted load semantics", `Quick, test_weighted_load_semantics);
  ]

let () =
  Alcotest.run "kp"
    [
      ("unit", suite);
      ("kp", kp_properties);
      ("unweighted", unweighted_properties);
      ("weighted", weighted_properties);
    ]
