(* Tests for the equilibrium-structure extensions: support enumeration
   (all mixed Nash equilibria via exact linear systems) and the
   potential-function analysis of Section 3.2. *)

open Model
open Numeric

let qi = Rational.of_int
let check_q = Alcotest.testable Rational.pp Rational.equal

let prop name ?(count = 60) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

let random_game seed =
  let rng = Prng.Rng.create seed in
  let n = Prng.Rng.int_in rng 2 3 and m = Prng.Rng.int_in rng 2 3 in
  Experiments.Generators.game rng ~n ~m
    ~weights:(Experiments.Generators.Integer_weights 4)
    ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })

(* ------------------------------------------------------------------ *)
(* Support enumeration                                                 *)

let fixture () =
  Game.of_capacities ~weights:[| qi 2; qi 3 |] [| [| qi 2; qi 2 |]; [| qi 2; qi 3 |] |]

let test_solve_support_pure () =
  let g = fixture () in
  (* Singleton supports {0},{1}: the pure profile ⟨0,1⟩. *)
  match Algo.Support_enum.solve_support g [| [ 0 ]; [ 1 ] |] with
  | None -> Alcotest.fail "expected the pure equilibrium"
  | Some f ->
    Alcotest.(check bool) "profile is pure ⟨0,1⟩" true
      (Mixed.equal f.profile (Mixed.of_pure g [| 0; 1 |]));
    Alcotest.check check_q "λ_0 is its latency" (Pure.latency g [| 0; 1 |] 0) f.latencies.(0)

let test_solve_support_full () =
  let g = fixture () in
  match Algo.Support_enum.solve_support g [| [ 0; 1 ]; [ 0; 1 ] |] with
  | None -> Alcotest.fail "expected the fully mixed equilibrium"
  | Some f ->
    (match Algo.Fully_mixed.compute g with
     | None -> Alcotest.fail "closed form should exist here"
     | Some fm ->
       Alcotest.(check bool) "agrees with the closed form" true (Mixed.equal f.profile fm);
       Alcotest.check check_q "λ agrees with Lemma 4.1"
         (Algo.Fully_mixed.equilibrium_latency g 0)
         f.latencies.(0))

let test_solve_support_rejects () =
  let g =
    (* User 0 vastly prefers link 0: no equilibrium puts it on link 1
       alone. *)
    Game.of_capacities ~weights:[| qi 1; qi 1 |] [| [| qi 100; qi 1 |]; [| qi 1; qi 1 |] |]
  in
  Alcotest.(check bool) "unsupported support rejected" true
    (Algo.Support_enum.solve_support g [| [ 1 ]; [ 1 ] |] = None)

let test_solve_support_validation () =
  let g = fixture () in
  Alcotest.check_raises "empty support"
    (Invalid_argument "Support_enum.solve_support: empty support") (fun () ->
      ignore (Algo.Support_enum.solve_support g [| []; [ 0 ] |]));
  Alcotest.check_raises "bad link"
    (Invalid_argument "Support_enum.solve_support: link out of range") (fun () ->
      ignore (Algo.Support_enum.solve_support g [| [ 5 ]; [ 0 ] |]))

let test_all_nash_limit () =
  let g = fixture () in
  Alcotest.check_raises "limit guard"
    (Invalid_argument "Support_enum.all_nash: support space exceeds the limit") (fun () ->
      ignore (Algo.Support_enum.all_nash ~limit:2 g))

let support_properties =
  [
    prop "singleton-support equilibria are exactly the pure NE" seed_gen (fun seed ->
        let g = random_game seed in
        let result = Algo.Support_enum.all_nash g in
        let singleton =
          List.filter_map
            (fun (f : Algo.Support_enum.finding) ->
              if Array.for_all (fun s -> List.length s = 1) f.supports then
                Some (Array.to_list (Array.map List.hd f.supports))
              else None)
            result.equilibria
          |> List.sort compare
        in
        let direct =
          Algo.Enumerate.pure_nash g |> List.map Array.to_list |> List.sort compare
        in
        singleton = direct);
    prop "full-support solution equals the Theorem 4.6 closed form" seed_gen (fun seed ->
        let g = random_game seed in
        let result = Algo.Support_enum.all_nash g in
        let full =
          List.filter
            (fun (f : Algo.Support_enum.finding) ->
              Array.for_all (fun s -> List.length s = Game.links g) f.supports)
            result.equilibria
        in
        match Algo.Fully_mixed.compute g, full with
        | Some fm, [ f ] -> Mixed.equal f.profile fm
        | None, [] -> true
        | Some _, [] | None, _ :: _ -> false
        | Some _, _ :: _ :: _ -> false);
    prop "every enumerated equilibrium passes the exact Nash predicate" seed_gen (fun seed ->
        let g = random_game seed in
        let result = Algo.Support_enum.all_nash g in
        List.for_all
          (fun (f : Algo.Support_enum.finding) ->
            Mixed.is_nash g f.profile
            && List.for_all
                 (fun i -> Rational.equal (Mixed.min_latency g f.profile i) f.latencies.(i))
                 (List.init (Game.users g) Fun.id))
          result.equilibria);
  ]

(* ------------------------------------------------------------------ *)
(* Potential functions                                                 *)

let test_square_defect_zero_for_kp_unweighted () =
  let g = Game.kp ~weights:[| qi 1; qi 1; qi 1 |] ~capacities:[| qi 2; qi 3 |] in
  (* Unweighted KP games are exact potential games (Rosenthal). *)
  Alcotest.(check bool) "exact potential" true (Algo.Potential.is_exact_potential_game g)

let test_square_defect_nonzero_for_beliefs () =
  let g =
    Game.of_capacities ~weights:[| qi 1; qi 2 |] [| [| qi 1; qi 3 |]; [| qi 2; qi 1 |] |]
  in
  match Algo.Potential.find_nonzero_square g with
  | None -> Alcotest.fail "expected a non-zero Monderer–Shapley square"
  | Some (sigma, i, j, li, lj) ->
    let defect = Algo.Potential.square_defect g sigma ~i ~j ~li ~lj in
    Alcotest.(check bool) "witness defect non-zero" true (not (Rational.is_zero defect))

let test_square_defect_same_user_rejected () =
  let g = fixture () in
  Alcotest.check_raises "i = j" (Invalid_argument "Potential.square_defect: users must differ")
    (fun () -> ignore (Algo.Potential.square_defect g [| 0; 0 |] ~i:1 ~j:1 ~li:1 ~lj:1))

let test_rosenthal_guards () =
  let weighted = Game.kp ~weights:[| qi 1; qi 2 |] ~capacities:[| qi 1; qi 1 |] in
  Alcotest.check_raises "weighted rejected"
    (Invalid_argument "Potential.rosenthal: users must have equal weights") (fun () ->
      ignore (Algo.Potential.rosenthal weighted [| 0; 0 |]));
  let non_kp = Game.of_capacities ~weights:[| qi 1; qi 1 |] [| [| qi 1; qi 2 |]; [| qi 2; qi 1 |] |] in
  Alcotest.check_raises "non-KP rejected"
    (Invalid_argument "Potential.rosenthal: game must be a KP instance") (fun () ->
      ignore (Algo.Potential.rosenthal non_kp [| 0; 0 |]))

let potential_properties =
  [
    prop "belief games with user-specific views fail the exact-potential condition"
      seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let g =
          Experiments.Generators.game rng ~n:3 ~m:3
            ~weights:(Experiments.Generators.Integer_weights 4)
            ~beliefs:(Experiments.Generators.Private_point { cap_bound = 6 })
        in
        (* Users with genuinely different capacity views (generic case):
           no exact potential — the Section 3.2 claim. *)
        Game.is_kp g || not (Algo.Potential.is_exact_potential_game g));
    prop "unweighted KP games satisfy the exact-potential condition" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let g =
          Experiments.Generators.game rng ~n:3 ~m:3 ~weights:Experiments.Generators.Unit_weights
            ~beliefs:(Experiments.Generators.Shared_point { cap_bound = 6 })
        in
        Algo.Potential.is_exact_potential_game g);
    prop "Rosenthal potential strictly decreases on improvement moves" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let g =
          Experiments.Generators.game rng ~n:4 ~m:3 ~weights:Experiments.Generators.Unit_weights
            ~beliefs:(Experiments.Generators.Shared_point { cap_bound = 6 })
        in
        let p = Array.init 4 (fun _ -> Prng.Rng.int rng 3) in
        List.for_all
          (fun i ->
            List.for_all
              (fun l ->
                let p' = Array.copy p in
                p'.(i) <- l;
                Rational.compare (Algo.Potential.rosenthal g p') (Algo.Potential.rosenthal g p) < 0)
              (Pure.improving_moves g p i))
          (List.init 4 Fun.id));
  ]

(* ------------------------------------------------------------------ *)
(* The better-response-cycle witness (Section 3.2 / E6)                *)

let test_witness_has_better_response_cycle () =
  let g = Algo.Witness.better_response_cycle_game () in
  Alcotest.(check bool) "better-response cycle exists" true
    (Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Better_response <> None);
  (* It is a counterexample to ordinal potentials only — pure equilibria
     survive, and best responses stay acyclic. *)
  Alcotest.(check bool) "still has a pure NE (Conjecture 3.7)" true (Algo.Enumerate.exists g);
  Alcotest.(check bool) "best-response graph acyclic" true
    (Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Best_response = None)

let test_witness_with_initial_traffic () =
  let g, initial = Algo.Witness.better_response_cycle_with_initial () in
  Alcotest.(check int) "three users suffice" 3 (Game.users g);
  Alcotest.(check bool) "cycle with initial traffic" true
    (Algo.Game_graph.find_cycle ~initial g ~kind:Algo.Game_graph.Better_response <> None);
  Alcotest.(check bool) "acyclic without initial traffic" true
    (Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Better_response = None);
  (* A pure NE still exists even with the initial traffic. *)
  let found = ref false in
  Social.iter_profiles g (fun p -> if Pure.is_nash g ~initial p then found := true);
  Alcotest.(check bool) "pure NE with initial traffic" true !found

let test_original_witness () =
  let g = Algo.Witness.original_cycle_game () in
  Alcotest.(check bool) "original instance is cyclic too" true
    (Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Better_response <> None);
  Alcotest.(check bool) "and not an exact potential game" true
    (Algo.Potential.find_nonzero_square g <> None)

let suite =
  [
    ("witness: better-response cycle (Monien/E6)", `Quick, test_witness_has_better_response_cycle);
    ("witness: 3 users + initial traffic", `Quick, test_witness_with_initial_traffic);
    ("witness: original unminimised instance", `Slow, test_original_witness);
    ("solve support: pure", `Quick, test_solve_support_pure);
    ("solve support: full = closed form", `Quick, test_solve_support_full);
    ("solve support: rejection", `Quick, test_solve_support_rejects);
    ("solve support: validation", `Quick, test_solve_support_validation);
    ("all_nash limit guard", `Quick, test_all_nash_limit);
    ("exact potential holds for unweighted KP", `Quick, test_square_defect_zero_for_kp_unweighted);
    ("exact potential fails for belief games", `Quick, test_square_defect_nonzero_for_beliefs);
    ("square defect validation", `Quick, test_square_defect_same_user_rejected);
    ("rosenthal guards", `Quick, test_rosenthal_guards);
  ]

let () =
  Alcotest.run "equilibria"
    [ ("unit", suite); ("support_enum", support_properties); ("potential", potential_properties) ]
