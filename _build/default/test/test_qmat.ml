(* Tests for exact linear algebra: Gaussian elimination, rank,
   determinant and solving, with random-matrix properties. *)

open Numeric

let q = Rational.of_ints
let qi = Rational.of_int
let check_q = Alcotest.testable Rational.pp Rational.equal

let prop name ?(count = 150) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let test_construction () =
  let m = Qmat.of_arrays [| [| qi 1; qi 2 |]; [| qi 3; qi 4 |] |] in
  Alcotest.(check int) "rows" 2 (Qmat.rows m);
  Alcotest.(check int) "cols" 2 (Qmat.cols m);
  Alcotest.check check_q "get" (qi 3) (Qmat.get m 1 0);
  Alcotest.check_raises "ragged" (Invalid_argument "Qmat.of_arrays: ragged rows") (fun () ->
      ignore (Qmat.of_arrays [| [| qi 1 |]; [| qi 1; qi 2 |] |]));
  Alcotest.check_raises "empty" (Invalid_argument "Qmat.of_arrays: no rows") (fun () ->
      ignore (Qmat.of_arrays [||]))

let test_identity_and_mul () =
  let a = Qmat.of_arrays [| [| qi 1; qi 2 |]; [| qi 3; qi 4 |] |] in
  Alcotest.(check bool) "I*a = a" true (Qmat.equal (Qmat.mul (Qmat.identity 2) a) a);
  Alcotest.(check bool) "a*I = a" true (Qmat.equal (Qmat.mul a (Qmat.identity 2)) a);
  let b = Qmat.of_arrays [| [| qi 0; qi 1 |]; [| qi 1; qi 0 |] |] in
  let ab = Qmat.mul a b in
  Alcotest.check check_q "swap columns" (qi 2) (Qmat.get ab 0 0);
  Alcotest.check check_q "swap columns'" (qi 1) (Qmat.get ab 0 1)

let test_transpose () =
  let a = Qmat.of_arrays [| [| qi 1; qi 2; qi 3 |] |] in
  let t = Qmat.transpose a in
  Alcotest.(check int) "rows" 3 (Qmat.rows t);
  Alcotest.check check_q "entry" (qi 2) (Qmat.get t 1 0)

let test_solve_known_system () =
  (* x + y = 3, x - y = 1  →  x = 2, y = 1. *)
  let a = Qmat.of_arrays [| [| qi 1; qi 1 |]; [| qi 1; qi (-1) |] |] in
  match Qmat.solve a [| qi 3; qi 1 |] with
  | None -> Alcotest.fail "expected a solution"
  | Some x ->
    Alcotest.check check_q "x" (qi 2) x.(0);
    Alcotest.check check_q "y" (qi 1) x.(1)

let test_solve_singular () =
  let a = Qmat.of_arrays [| [| qi 1; qi 2 |]; [| qi 2; qi 4 |] |] in
  Alcotest.(check bool) "singular" true (Qmat.solve a [| qi 1; qi 2 |] = None);
  Alcotest.(check int) "rank 1" 1 (Qmat.rank a);
  Alcotest.check check_q "det 0" Rational.zero (Qmat.det a)

let test_det_known () =
  let a = Qmat.of_arrays [| [| qi 1; qi 2 |]; [| qi 3; qi 4 |] |] in
  Alcotest.check check_q "2x2 det" (qi (-2)) (Qmat.det a);
  let b =
    Qmat.of_arrays
      [| [| qi 2; qi 0; qi 0 |]; [| qi 0; q 1 2; qi 0 |]; [| qi 0; qi 0; qi 5 |] |]
  in
  Alcotest.check check_q "diagonal det" (qi 5) (Qmat.det b);
  Alcotest.check check_q "identity det" Rational.one (Qmat.det (Qmat.identity 4))

let test_rank_full () =
  Alcotest.(check int) "identity rank" 3 (Qmat.rank (Qmat.identity 3));
  let wide = Qmat.of_arrays [| [| qi 1; qi 0; qi 2 |]; [| qi 0; qi 1; qi 3 |] |] in
  Alcotest.(check int) "wide rank" 2 (Qmat.rank wide)

(* Random small integer matrices. *)
let mat_gen dim =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Prng.Rng.create seed in
        Qmat.init dim dim (fun _ _ -> Rational.of_int (Prng.Rng.int_in rng (-5) 5)))
      (int_bound 1_000_000))

let qmat_properties =
  [
    prop "solve produces a genuine solution" (mat_gen 4) (fun a ->
        let rng = Prng.Rng.create (Qmat.rows a) in
        let b = Array.init 4 (fun _ -> Rational.of_int (Prng.Rng.int_in rng (-5) 5)) in
        match Qmat.solve a b with
        | None -> Rational.is_zero (Qmat.det a)
        | Some x -> Array.for_all2 Rational.equal (Qmat.mul_vec a x) b);
    prop "unique solvability iff det non-zero" (mat_gen 3) (fun a ->
        (* The solver reports None for singular systems even when they
           are consistent (no unique solution), so this is exact. *)
        (Qmat.solve a (Array.make 3 Rational.one) <> None)
        = not (Rational.is_zero (Qmat.det a)));
    prop "det of product = product of dets" QCheck2.Gen.(pair (mat_gen 3) (mat_gen 3))
      (fun (a, b) ->
        Rational.equal (Qmat.det (Qmat.mul a b)) (Rational.mul (Qmat.det a) (Qmat.det b)));
    prop "rank bounded by dimension" (mat_gen 4) (fun a -> Qmat.rank a <= 4);
    prop "transpose is involutive" (mat_gen 3) (fun a ->
        Qmat.equal (Qmat.transpose (Qmat.transpose a)) a);
    prop "det invariant under transpose" (mat_gen 3) (fun a ->
        Rational.equal (Qmat.det a) (Qmat.det (Qmat.transpose a)));
  ]

let suite =
  [
    ("construction", `Quick, test_construction);
    ("identity and mul", `Quick, test_identity_and_mul);
    ("transpose", `Quick, test_transpose);
    ("solve known system", `Quick, test_solve_known_system);
    ("solve singular", `Quick, test_solve_singular);
    ("det known values", `Quick, test_det_known);
    ("rank", `Quick, test_rank_full);
  ]

let () = Alcotest.run "qmat" [ ("unit", suite); ("properties", qmat_properties) ]
