test/test_equilibria.mli:
