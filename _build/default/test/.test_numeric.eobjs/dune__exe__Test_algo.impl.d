test/test_algo.ml: Alcotest Algo Array Bigint Experiments Fun Game List Mixed Model Numeric Printf Prng Pure QCheck2 QCheck_alcotest Qvec Rational Social
