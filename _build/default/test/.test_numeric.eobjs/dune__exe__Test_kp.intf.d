test/test_kp.mli:
