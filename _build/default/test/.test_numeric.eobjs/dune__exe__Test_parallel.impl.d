test/test_parallel.ml: Alcotest Array Char Experiments Fun List Parallel Printf QCheck2 QCheck_alcotest String
