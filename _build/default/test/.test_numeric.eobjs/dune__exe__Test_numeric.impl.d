test/test_numeric.ml: Alcotest Bigint Bignat Float List Numeric Printf QCheck2 QCheck_alcotest Qvec Rational
