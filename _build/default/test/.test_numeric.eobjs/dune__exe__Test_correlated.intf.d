test/test_correlated.mli:
