test/test_congestion.mli:
