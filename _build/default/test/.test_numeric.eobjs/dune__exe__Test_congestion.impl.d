test/test_congestion.ml: Alcotest Algo Array Congestion Experiments Float Game List Mixed Model Numeric Prng Pure QCheck2 QCheck_alcotest Rational Social
