test/test_equilibria.ml: Alcotest Algo Array Experiments Fun Game List Mixed Model Numeric Prng Pure QCheck2 QCheck_alcotest Rational Social
