test/test_correlated.ml: Alcotest Algo Array Experiments Game List Model Numeric Prng Pure QCheck2 QCheck_alcotest Rational Simplex Social
