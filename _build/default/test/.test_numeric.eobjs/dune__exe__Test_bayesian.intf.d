test/test_bayesian.mli:
