test/test_stats.ml: Alcotest Float List QCheck2 QCheck_alcotest Stats String
