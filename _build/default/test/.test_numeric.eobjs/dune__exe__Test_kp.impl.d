test/test_kp.ml: Alcotest Algo Array Belief Experiments Fun Game Kp List Model Numeric Prng Pure QCheck2 QCheck_alcotest Rational State
