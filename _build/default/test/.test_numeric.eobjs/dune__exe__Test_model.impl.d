test/test_model.ml: Alcotest Algo Array Belief Bounds Experiments Fun Game List Mixed Model Numeric Prng Pure QCheck2 QCheck_alcotest Rational Social State
