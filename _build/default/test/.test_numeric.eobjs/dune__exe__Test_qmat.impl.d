test/test_qmat.ml: Alcotest Array Numeric Prng QCheck2 QCheck_alcotest Qmat Rational
