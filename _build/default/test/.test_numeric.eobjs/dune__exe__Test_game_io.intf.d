test/test_game_io.mli:
