test/test_game_io.ml: Alcotest Experiments Fun Game Game_io List Model Numeric Prng QCheck2 QCheck_alcotest Rational String
