test/test_bayesian.ml: Alcotest Array Kp Model Numeric Prng QCheck2 QCheck_alcotest Rational
