test/test_stress.ml: Alcotest Algo Array Bignat Char Experiments Model Numeric Prng Pure Qvec Rational Social String
