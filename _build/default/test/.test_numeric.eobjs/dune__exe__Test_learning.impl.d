test/test_learning.ml: Alcotest Algo Array Belief Experiments Game Model Numeric Prng Pure QCheck2 QCheck_alcotest Qvec Rational State
