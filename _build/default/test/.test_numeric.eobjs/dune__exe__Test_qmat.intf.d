test/test_qmat.mli:
