test/test_prng.ml: Alcotest Array Float Fun List Numeric Prng QCheck2 QCheck_alcotest Qvec Rational
