test/test_experiments.ml: Alcotest Array Experiments Fun Game List Model Numeric Printf Prng Pure QCheck2 QCheck_alcotest Rational Stats String Sys
