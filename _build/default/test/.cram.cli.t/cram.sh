  $ SR=../../bin/selfish_routing.exe
  $ cat > quickstart.game <<'GAME'
  > links 2
  > weights 4 3 2
  > state fast 10 4
  > state slow 3 4
  > belief fast: 1
  > belief slow: 1
  > belief fast: 1/2, slow: 1/2
  > GAME
  $ $SR solve quickstart.game
  $ cat > uniform.game <<'GAME'
  > links 2
  > weights 5 4 3
  > capacities 2 2
  > capacities 3 3
  > capacities 1 1
  > GAME
  $ $SR fmne uniform.game
  $ $SR enumerate quickstart.game
  $ $SR bounds quickstart.game
  $ $SR bounds uniform.game
  $ $SR solve --initial 10,0 quickstart.game
  $ cat > broken.game <<'GAME'
  > links 2
  > weights 1 x
  > GAME
  $ $SR solve broken.game
  $ $SR sweep --trials 5 --max-users 3 --max-links 2 --seed 7 | head -3
  $ $SR mixed uniform.game | head -4
  $ $SR potential quickstart.game
  $ $SR fictitious quickstart.game --rounds 500 --seed 2 | head -2
  $ cat > witness.game <<'GAME'
  > links 3
  > weights 3 6 8 4 3 3
  > capacities 1 1 1
  > capacities 21 1 37
  > capacities 1 20 38
  > capacities 1 1 1
  > capacities 1 1 1
  > capacities 26 14 21
  > GAME
  $ $SR solve --algo best-response --seed 4 witness.game | tail -1
