(* Tests for the statistics helpers: Welford vs direct two-pass
   computation, quantiles, histograms and table layout. *)

let prop name ?(count = 200) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let close = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Welford                                                             *)

let test_welford_basic () =
  let w = Stats.Welford.add_many Stats.Welford.empty [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 (Stats.Welford.count w);
  close "mean" 2.5 (Stats.Welford.mean w);
  close "variance" (5.0 /. 3.0) (Stats.Welford.variance w);
  close "min" 1.0 (Stats.Welford.min w);
  close "max" 4.0 (Stats.Welford.max w)

let test_welford_single () =
  let w = Stats.Welford.add Stats.Welford.empty 7.0 in
  close "mean" 7.0 (Stats.Welford.mean w);
  close "variance" 0.0 (Stats.Welford.variance w)

let test_welford_empty () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Welford.mean: no samples") (fun () ->
      ignore (Stats.Welford.mean Stats.Welford.empty))

let welford_properties =
  [
    prop "welford matches two-pass mean/variance"
      QCheck2.Gen.(list_size (int_range 2 50) (float_bound_inclusive 1000.0))
      (fun xs ->
        let n = List.length xs in
        let w = Stats.Welford.add_many Stats.Welford.empty xs in
        let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
        let var =
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int (n - 1)
        in
        Float.abs (Stats.Welford.mean w -. mean) < 1e-6
        && Float.abs (Stats.Welford.variance w -. var) < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)

let test_summary_known () =
  let s = Stats.Summary.of_list [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check int) "count" 4 s.count;
  close "mean" 2.5 s.mean;
  close "min" 1.0 s.min;
  close "max" 4.0 s.max;
  close "median" 2.5 s.median;
  close "p25" 1.75 s.p25;
  close "p75" 3.25 s.p75

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty sample") (fun () ->
      ignore (Stats.Summary.of_array [||]))

let test_quantile_edges () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  close "q0 is min" 10.0 (Stats.Summary.quantile xs 0.0);
  close "q1 is max" 30.0 (Stats.Summary.quantile xs 1.0);
  close "q0.5 is median" 20.0 (Stats.Summary.quantile xs 0.5);
  Alcotest.check_raises "p out of range" (Invalid_argument "Summary.quantile: p outside [0, 1]")
    (fun () -> ignore (Stats.Summary.quantile xs 1.5))

let test_quantile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.Summary.quantile xs 0.5);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] xs

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram_binning () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Stats.Histogram.add_many h [ 0.0; 1.9; 2.0; 5.5; 9.99 ];
  Alcotest.(check (array int)) "bins" [| 2; 1; 1; 0; 1 |] (Stats.Histogram.counts h);
  Alcotest.(check int) "count" 5 (Stats.Histogram.count h);
  Stats.Histogram.add h (-1.0);
  Stats.Histogram.add h 10.0;
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow (hi is exclusive)" 1 (Stats.Histogram.overflow h)

let test_histogram_validation () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "range" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Stats.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3))

let test_histogram_render () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:2.0 ~bins:2 in
  Stats.Histogram.add_many h [ 0.5; 0.6; 1.5 ];
  let s = Stats.Histogram.render h in
  Alcotest.(check bool) "has bars" true (String.length s > 0 && String.contains s '#')

(* ------------------------------------------------------------------ *)
(* Regression                                                          *)

let test_regression_exact_line () =
  let fit = Stats.Regression.linear [ (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ] in
  close "slope" 2.0 fit.slope;
  close "intercept" 1.0 fit.intercept;
  close "perfect fit" 1.0 fit.r_squared

let test_regression_power_law () =
  (* y = 3·x² sampled exactly: slope 2, intercept log 3. *)
  let points = List.map (fun x -> (x, 3.0 *. (x ** 2.0))) [ 1.0; 2.0; 4.0; 8.0 ] in
  let fit = Stats.Regression.log_log points in
  close "exponent" 2.0 fit.slope;
  close "coefficient" (log 3.0) fit.intercept;
  close "r2" 1.0 fit.r_squared

let test_regression_validation () =
  Alcotest.check_raises "one point" (Invalid_argument "Regression.linear: need at least two points")
    (fun () -> ignore (Stats.Regression.linear [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical" (Invalid_argument "Regression.linear: all x values coincide")
    (fun () -> ignore (Stats.Regression.linear [ (1.0, 1.0); (1.0, 2.0) ]));
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Regression.log_log: coordinates must be positive") (fun () ->
      ignore (Stats.Regression.log_log [ (0.0, 1.0); (2.0, 2.0) ]))

let regression_properties =
  [
    prop "recovers a noiseless affine relation"
      QCheck2.Gen.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)
                     (list_size (int_range 3 20) (float_range (-100.0) 100.0)))
      (fun (a, b, xs) ->
        let xs = List.sort_uniq compare xs in
        List.length xs < 2
        ||
        let fit = Stats.Regression.linear (List.map (fun x -> (x, a +. (b *. x))) xs) in
        Float.abs (fit.slope -. b) < 1e-6 && Float.abs (fit.intercept -. a) < 1e-5);
  ]

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_layout () =
  let t = Stats.Table.create [ "name"; "value" ] in
  Stats.Table.add_row t [ "alpha"; "1" ];
  Stats.Table.add_row t [ "b"; "22222" ];
  let rendered = Stats.Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
   | header :: sep :: rows ->
     Alcotest.(check bool) "header contains name" true
       (String.length header >= 4 && String.sub header 0 4 = "name");
     Alcotest.(check bool) "separator dashes" true (String.for_all (fun c -> c = '-' || c = ' ') sep);
     Alcotest.(check int) "two data rows plus trailing" 3 (List.length rows)
   | _ -> Alcotest.fail "unexpected layout");
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: expected 2 cells, got 1")
    (fun () -> Stats.Table.add_row t [ "only" ])

let test_table_rows_in_order () =
  let t = Stats.Table.create [ "i" ] in
  List.iter (fun i -> Stats.Table.add_row t [ string_of_int i ]) [ 1; 2; 3 ];
  let rendered = Stats.Table.render t in
  let idx c =
    match String.index_opt rendered c with
    | Some i -> i
    | None -> Alcotest.failf "missing cell %c" c
  in
  Alcotest.(check bool) "1 before 2 before 3" true (idx '1' < idx '2' && idx '2' < idx '3')

let suite =
  [
    ("welford basic", `Quick, test_welford_basic);
    ("welford single", `Quick, test_welford_single);
    ("welford empty", `Quick, test_welford_empty);
    ("summary known", `Quick, test_summary_known);
    ("summary empty", `Quick, test_summary_empty);
    ("quantile edges", `Quick, test_quantile_edges);
    ("quantile pure", `Quick, test_quantile_does_not_mutate);
    ("histogram binning", `Quick, test_histogram_binning);
    ("histogram validation", `Quick, test_histogram_validation);
    ("histogram render", `Quick, test_histogram_render);
    ("regression exact line", `Quick, test_regression_exact_line);
    ("regression power law", `Quick, test_regression_power_law);
    ("regression validation", `Quick, test_regression_validation);
    ("table layout", `Quick, test_table_layout);
    ("table order", `Quick, test_table_rows_in_order);
  ]

let () =
  Alcotest.run "stats"
    [ ("unit", suite); ("properties", welford_properties); ("regression", regression_properties) ]
