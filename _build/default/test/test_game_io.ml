(* Tests for the plain-text game format used by the CLI. *)

open Model
open Numeric

let qi = Rational.of_int
let q = Rational.of_ints
let check_q = Alcotest.testable Rational.pp Rational.equal

let generative_example =
  {|
# three users, two links, two possible network states
links 2
weights 4 3 2
state fast 10 4
state slow 3 4
belief fast: 1
belief slow: 1
belief fast: 1/2, slow: 1/2
|}

let reduced_example = {|
links 2
weights 3 2
capacities 2 1
capacities 1 3
|}

let test_parse_generative () =
  let g = Game_io.parse generative_example in
  Alcotest.(check int) "users" 3 (Game.users g);
  Alcotest.(check int) "links" 2 (Game.links g);
  Alcotest.check check_q "weight" (qi 4) (Game.weight g 0);
  Alcotest.check check_q "optimist capacity" (qi 10) (Game.capacity g 0 0);
  Alcotest.check check_q "pessimist capacity" (qi 3) (Game.capacity g 1 0);
  (* realist: harmonic mean of 10 and 3 → 1/(1/20 + 1/6) = 60/13. *)
  Alcotest.check check_q "realist capacity" (q 60 13) (Game.capacity g 2 0)

let test_parse_reduced () =
  let g = Game_io.parse reduced_example in
  Alcotest.(check int) "users" 2 (Game.users g);
  Alcotest.check check_q "cap" (qi 3) (Game.capacity g 1 1)

let test_roundtrip () =
  let g = Game_io.parse generative_example in
  let g' = Game_io.parse (Game_io.to_string g) in
  Alcotest.(check int) "users preserved" (Game.users g) (Game.users g');
  for i = 0 to Game.users g - 1 do
    Alcotest.check check_q "weights preserved" (Game.weight g i) (Game.weight g' i);
    for l = 0 to Game.links g - 1 do
      Alcotest.check check_q "capacities preserved" (Game.capacity g i l) (Game.capacity g' i l)
    done
  done

let check_invalid name text fragment =
  ( name,
    `Quick,
    fun () ->
      match Game_io.parse text with
      | exception Invalid_argument msg ->
        if
          not
            (String.length msg >= String.length fragment
            &&
            let rec contains i =
              i + String.length fragment <= String.length msg
              && (String.sub msg i (String.length fragment) = fragment || contains (i + 1))
            in
            contains 0)
        then Alcotest.failf "expected %S in %S" fragment msg
      | _ -> Alcotest.fail "expected Invalid_argument" )

let error_cases =
  [
    check_invalid "missing weights" "links 2\ncapacities 1 1\n" "missing 'weights'";
    check_invalid "no body" "links 2\nweights 1 2\n" "need either";
    check_invalid "mixed forms"
      "links 2\nweights 1\nstate a 1 1\nbelief a: 1\ncapacities 1 1\n" "cannot mix";
    check_invalid "bad number" "links 2\nweights 1 x\n" "bad number";
    check_invalid "unknown state" "links 2\nweights 1\nstate a 1 1\nbelief b: 1\n" "unknown state";
    check_invalid "bad distribution" "links 2\nweights 1\nstate a 1 1\nbelief a: 1/2\n"
      "probabilities";
    check_invalid "unknown directive" "links 2\nfrobnicate 3\n" "unknown directive";
    check_invalid "duplicate state" "links 2\nweights 1\nstate a 1 1\nstate a 2 2\nbelief a: 1\n"
      "duplicate state";
    check_invalid "wrong capacity count" "links 2\nweights 1\nstate a 1\nbelief a: 1\n"
      "wrong number";
    check_invalid "one link" "links 1\nweights 1\ncapacities 1\n" "at least two links";
  ]

let test_comments_and_blanks () =
  let g = Game_io.parse "# header\n\nlinks 2\n\nweights 1 1\n# middle\ncapacities 1 2\ncapacities 2 1\n" in
  Alcotest.(check int) "parsed through noise" 2 (Game.users g)

let test_belief_accumulates () =
  (* Repeating a state in one belief line accumulates probability. *)
  let g =
    Game_io.parse "links 2\nweights 1\nstate a 1 2\nbelief a: 1/2, a: 1/2\n"
  in
  Alcotest.check check_q "capacity from accumulated belief" (qi 2) (Game.capacity g 0 1)

let test_generative_roundtrip () =
  let g = Game_io.parse generative_example in
  let g' = Game_io.parse (Game_io.to_generative_string g) in
  Alcotest.(check int) "users preserved" (Game.users g) (Game.users g');
  for i = 0 to Game.users g - 1 do
    for l = 0 to Game.links g - 1 do
      Alcotest.check check_q "capacities preserved" (Game.capacity g i l) (Game.capacity g' i l)
    done
  done

let roundtrip_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"random games roundtrip through both forms" ~count:100
         QCheck2.Gen.(int_bound 1_000_000)
         (fun seed ->
           let rng = Prng.Rng.create seed in
           let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
           let g =
             Experiments.Generators.game rng ~n ~m
               ~weights:(Experiments.Generators.Rational_weights 5)
               ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })
           in
           let same g' =
             Game.users g' = n && Game.links g' = m
             && List.for_all
                  (fun i ->
                    Rational.equal (Game.weight g i) (Game.weight g' i)
                    && List.for_all
                         (fun l -> Rational.equal (Game.capacity g i l) (Game.capacity g' i l))
                         (List.init m Fun.id))
                  (List.init n Fun.id)
           in
           same (Game_io.parse (Game_io.to_string g))
           && same (Game_io.parse (Game_io.to_generative_string g))));
  ]

let suite =
  [
    ("parse generative form", `Quick, test_parse_generative);
    ("parse reduced form", `Quick, test_parse_reduced);
    ("roundtrip through to_string", `Quick, test_roundtrip);
    ("comments and blanks", `Quick, test_comments_and_blanks);
    ("belief probabilities accumulate", `Quick, test_belief_accumulates);
    ("generative roundtrip", `Quick, test_generative_roundtrip);
  ]
  @ error_cases

let () = Alcotest.run "game_io" [ ("unit", suite); ("roundtrip", roundtrip_properties) ]
