(* Tests for the Gairing–Monien–Tiemann baseline: the KP-model with
   incomplete information about user traffics ([8] in the paper). *)

open Numeric

let qi = Rational.of_int
let q = Rational.of_ints
let check_q = Alcotest.testable Rational.pp Rational.equal

let prop name ?(count = 100) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

(* Two links; user 0 is small with certainty, user 1 is large with
   probability 1/2. *)
let fixture () =
  Kp.Bayesian.make
    ~capacities:[| qi 2; qi 1 |]
    ~types:[| [ (qi 1, Rational.one) ]; [ (qi 1, q 1 2); (qi 4, q 1 2) ] |]

let test_validation () =
  Alcotest.check_raises "one link" (Invalid_argument "Bayesian.make: at least two links required")
    (fun () -> ignore (Kp.Bayesian.make ~capacities:[| qi 1 |] ~types:[| [ (qi 1, Rational.one) ] |]));
  Alcotest.check_raises "empty types" (Invalid_argument "Bayesian.make: empty type list")
    (fun () -> ignore (Kp.Bayesian.make ~capacities:[| qi 1; qi 1 |] ~types:[| [] |]));
  Alcotest.check_raises "bad distribution"
    (Invalid_argument "Bayesian.make: type probabilities must form a distribution") (fun () ->
      ignore
        (Kp.Bayesian.make ~capacities:[| qi 1; qi 1 |] ~types:[| [ (qi 1, q 1 3) ] |]));
  Alcotest.check_raises "bad traffic" (Invalid_argument "Bayesian.make: traffics must be positive")
    (fun () ->
      ignore
        (Kp.Bayesian.make ~capacities:[| qi 1; qi 1 |] ~types:[| [ (qi 0, Rational.one) ] |]))

let test_accessors () =
  let t = fixture () in
  Alcotest.(check int) "users" 2 (Kp.Bayesian.users t);
  Alcotest.(check int) "links" 2 (Kp.Bayesian.links t);
  Alcotest.(check int) "types of user 1" 2 (Kp.Bayesian.type_count t 1);
  Alcotest.check check_q "traffic" (qi 4) (Kp.Bayesian.traffic t 1 1);
  Alcotest.check check_q "prob" (q 1 2) (Kp.Bayesian.type_prob t 1 1)

let test_expected_load () =
  let t = fixture () in
  (* Strategy: user 0 always link 0; user 1 type0→0, type1→1. *)
  let s = [| [| 0 |]; [| 0; 1 |] |] in
  Kp.Bayesian.validate t s;
  (* From user 0's view: foreign load on link 0 = (1/2)·1 = 1/2; on
     link 1 = (1/2)·4 = 2. *)
  Alcotest.check check_q "foreign on 0" (q 1 2) (Kp.Bayesian.expected_foreign_load t s ~user:0 0);
  Alcotest.check check_q "foreign on 1" (qi 2) (Kp.Bayesian.expected_foreign_load t s ~user:0 1);
  (* Its latency on link 0: (1 + 1/2)/2 = 3/4. *)
  Alcotest.check check_q "latency" (q 3 4) (Kp.Bayesian.latency t s ~user:0 ~ty:0 0)

let test_solve_converges () =
  let t = fixture () in
  let s = Kp.Bayesian.solve t in
  Alcotest.(check bool) "solution is a Bayesian NE" true (Kp.Bayesian.is_nash t s)

let test_exhaustive_guard () =
  let t = fixture () in
  Alcotest.check_raises "limit"
    (Invalid_argument "Bayesian.exists_pure_nash: strategy space exceeds the limit") (fun () ->
      ignore (Kp.Bayesian.exists_pure_nash ~limit:2 t))

let bayesian_properties =
  [
    prop "best-response dynamics reach a Bayesian NE ([8])" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let t = Kp.Bayesian.random rng ~n:3 ~m:3 ~max_types:3 ~bound:6 in
        Kp.Bayesian.is_nash t (Kp.Bayesian.solve t));
    prop "a pure Bayesian NE always exists ([8], exhaustive check)" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let t = Kp.Bayesian.random rng ~n:3 ~m:2 ~max_types:2 ~bound:5 in
        Kp.Bayesian.exists_pure_nash t);
    prop "single-type instances behave like complete-information KP" seed_gen (fun seed ->
        (* With one type per user the Bayesian game is the KP game: the
           equilibrium strategy of [solve] must match a pure NE of the
           corresponding Game.kp instance. *)
        let rng = Prng.Rng.create seed in
        let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
        let caps = Array.init m (fun _ -> qi (Prng.Rng.int_in rng 1 5)) in
        let weights = Array.init n (fun _ -> qi (Prng.Rng.int_in rng 1 5)) in
        let bay =
          Kp.Bayesian.make ~capacities:caps
            ~types:(Array.map (fun w -> [ (w, Rational.one) ]) weights)
        in
        let s = Kp.Bayesian.solve bay in
        let profile = Array.map (fun row -> row.(0)) s in
        let g = Model.Game.kp ~weights ~capacities:caps in
        Model.Pure.is_nash g profile);
  ]

let suite =
  [
    ("validation", `Quick, test_validation);
    ("accessors", `Quick, test_accessors);
    ("expected load and latency", `Quick, test_expected_load);
    ("solve converges", `Quick, test_solve_converges);
    ("exhaustive guard", `Quick, test_exhaustive_guard);
  ]

let () = Alcotest.run "bayesian" [ ("unit", suite); ("properties", bayesian_properties) ]
