(* Stress tests: larger sizes than the randomised suites use, checking
   that the implementations hold up and stay exact at scale. *)

open Model
open Numeric

let test_uniform_large () =
  (* 5000 users on 16 links: A_uniform is O(n(log n + m)). *)
  let n = 5000 and m = 16 in
  let rng = Prng.Rng.create 1 in
  let g =
    Experiments.Generators.game rng ~n ~m
      ~weights:(Experiments.Generators.Integer_weights 50)
      ~beliefs:(Experiments.Generators.Uniform_link_view { cap_bound = 9 })
  in
  let sigma = Algo.Uniform_beliefs.solve g in
  (* Checking the full Nash property is O(n·m) exact divisions. *)
  Alcotest.(check bool) "large LPT instance is a NE" true (Pure.is_nash g sigma)

let test_two_links_large () =
  let n = 400 in
  let rng = Prng.Rng.create 2 in
  let g =
    Experiments.Generators.game rng ~n ~m:2
      ~weights:(Experiments.Generators.Integer_weights 20)
      ~beliefs:(Experiments.Generators.Private_point { cap_bound = 12 })
  in
  let sigma = Algo.Two_links.solve g in
  Alcotest.(check bool) "400-user two-link instance is a NE" true (Pure.is_nash g sigma)

let test_symmetric_large () =
  let n = 300 and m = 8 in
  let rng = Prng.Rng.create 3 in
  let g =
    Experiments.Generators.game rng ~n ~m ~weights:Experiments.Generators.Unit_weights
      ~beliefs:(Experiments.Generators.Private_point { cap_bound = 12 })
  in
  let sigma, moves = Algo.Symmetric.solve_with_stats g in
  Alcotest.(check bool) "300-user symmetric instance is a NE" true (Pure.is_nash g sigma);
  Alcotest.(check bool) "moves within the n(n-1)/2 bound" true (moves <= n * (n - 1) / 2)

let test_fmne_large () =
  let n = 64 and m = 16 in
  let rng = Prng.Rng.create 4 in
  let g =
    Experiments.Generators.game rng ~n ~m
      ~weights:(Experiments.Generators.Integer_weights 9)
      ~beliefs:(Experiments.Generators.Private_point { cap_bound = 9 })
  in
  let candidate = Algo.Fully_mixed.candidate g in
  Alcotest.(check bool) "64x16 candidate rows sum to one" true
    (Array.for_all (fun row -> Rational.equal (Qvec.sum row) Rational.one) candidate)

let test_bignat_huge () =
  (* 10 000-digit numbers: string I/O and the division invariant. *)
  let digits k seed =
    String.init k (fun i -> Char.chr (Char.code '0' + ((seed + (7 * i) + (i * i mod 11)) mod 10)))
  in
  let a = Bignat.of_string ("9" ^ digits 9_999 3) in
  let b = Bignat.of_string ("7" ^ digits 4_999 5) in
  Alcotest.(check int) "a has 10000 digits" 10_000 (String.length (Bignat.to_string a));
  let quot, rem = Bignat.divmod a b in
  Alcotest.(check bool) "division invariant at 10k digits" true
    (Bignat.equal a (Bignat.add (Bignat.mul quot b) rem) && Bignat.compare rem b < 0);
  let product = Bignat.mul a b in
  Alcotest.(check bool) "karatsuba path round trips" true
    (Bignat.equal product (Bignat.of_string (Bignat.to_string product)))

let test_alias_many_categories () =
  let k = 100_000 in
  let rng = Prng.Rng.create 6 in
  let weights = Array.init k (fun i -> 1.0 +. float_of_int (i mod 17)) in
  let alias = Prng.Alias.of_weights weights in
  for _ = 1 to 10_000 do
    let i = Prng.Alias.sample alias rng in
    if i < 0 || i >= k then Alcotest.fail "sample out of range"
  done

let test_enumerate_medium () =
  (* n=10 users on 2 links: 1024 profiles, exact NE filter. *)
  let rng = Prng.Rng.create 7 in
  let g =
    Experiments.Generators.game rng ~n:10 ~m:2
      ~weights:(Experiments.Generators.Integer_weights 6)
      ~beliefs:(Experiments.Generators.Private_point { cap_bound = 8 })
  in
  Alcotest.(check bool) "pure NE exists at n=10" true (Algo.Enumerate.exists g)

let test_bb_optimum_medium () =
  (* Branch-and-bound handles n=12 on 3 links (3^12 ≈ 531k leaves pruned
     heavily); cross-check SC at the argmin. *)
  let rng = Prng.Rng.create 8 in
  let g =
    Experiments.Generators.game rng ~n:12 ~m:3
      ~weights:(Experiments.Generators.Integer_weights 9)
      ~beliefs:(Experiments.Generators.Private_point { cap_bound = 9 })
  in
  let v1, p1 = Social.opt1_bb g in
  Alcotest.(check bool) "argmin consistent" true
    (Rational.equal v1 (Pure.social_cost1 g p1));
  let v2, p2 = Social.opt2_bb g in
  Alcotest.(check bool) "argmin consistent (max)" true
    (Rational.equal v2 (Pure.social_cost2 g p2))

let suite =
  [
    ("A_uniform with 5000 users", `Slow, test_uniform_large);
    ("A_twolinks with 400 users", `Slow, test_two_links_large);
    ("A_symmetric with 300 users", `Slow, test_symmetric_large);
    ("FMNE candidate at 64x16", `Slow, test_fmne_large);
    ("bignat at 10k digits", `Slow, test_bignat_huge);
    ("alias with 100k categories", `Slow, test_alias_many_categories);
    ("enumeration at n=10", `Slow, test_enumerate_medium);
    ("branch-and-bound at n=12", `Slow, test_bb_optimum_medium);
  ]

let () = Alcotest.run "stress" [ ("stress", suite) ]
