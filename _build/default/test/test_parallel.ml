(* Tests for the fork–join layer: determinism across worker counts,
   ordering, exception propagation, and a real parallel sweep. *)

let prop name ?(count = 50) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let test_map_identity_scheduling () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "domains=%d" domains)
        expected
        (Parallel.map ~domains (fun x -> x * x) xs))
    [ 1; 2; 3; 8; 200 ]

let test_map_empty () =
  Alcotest.(check (list int)) "empty list" [] (Parallel.map ~domains:4 (fun x -> x) []);
  Alcotest.(check int) "empty array" 0 (Array.length (Parallel.map_array ~domains:4 Fun.id [||]))

let test_map_array_order () =
  let xs = Array.init 37 string_of_int in
  let out = Parallel.map_array ~domains:4 (fun s -> s ^ "!") xs in
  Array.iteri
    (fun i s -> Alcotest.(check string) "order kept" (string_of_int i ^ "!") s)
    out

let test_invalid_domains () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Parallel: domains must be positive")
    (fun () -> ignore (Parallel.map ~domains:0 Fun.id [ 1 ]))

let test_exception_propagates () =
  let boom = Failure "worker exploded" in
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "domains=%d" domains)
        boom
        (fun () ->
          ignore (Parallel.map ~domains (fun x -> if x = 41 then raise boom else x) (List.init 64 Fun.id))))
    [ 1; 4 ]

let test_reduce_non_commutative () =
  (* String concatenation is associative but not commutative: the fold
     order must match the serial one for every worker count. *)
  let xs = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
  let serial = String.concat "" xs in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "domains=%d" domains)
        serial
        (Parallel.reduce ~domains ~neutral:"" ~combine:( ^ ) Fun.id xs))
    [ 1; 2; 3; 7; 100 ]

let test_reduce_empty () =
  Alcotest.(check int) "neutral on empty" 42
    (Parallel.reduce ~domains:4 ~neutral:42 ~combine:( + ) Fun.id [])

let test_available_domains () =
  Alcotest.(check bool) "at least one" true (Parallel.available_domains () >= 1)

let test_existence_sweep_parallel_deterministic () =
  let run domains =
    Experiments.Existence.run ~domains ~seed:11 ~ns:[ 2; 3 ] ~ms:[ 2; 3 ] ~trials:5
      ~weights:(Experiments.Generators.Integer_weights 4)
      ~beliefs:(Experiments.Generators.Shared_space { states = 2; cap_bound = 4; grain = 3 })
      ()
  in
  Alcotest.(check bool) "serial equals parallel" true (run 1 = run 4)

let parallel_properties =
  [
    prop "map agrees with List.map for any worker count"
      QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 0 50) (int_bound 1000)))
      (fun (domains, xs) -> Parallel.map ~domains (fun x -> x + 1) xs = List.map (fun x -> x + 1) xs);
    prop "reduce agrees with fold_left for any worker count"
      QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 0 50) (int_bound 1000)))
      (fun (domains, xs) ->
        Parallel.reduce ~domains ~neutral:0 ~combine:( + ) (fun x -> 2 * x) xs
        = List.fold_left (fun acc x -> acc + (2 * x)) 0 xs);
  ]

let suite =
  [
    ("map identical across scheduling", `Quick, test_map_identity_scheduling);
    ("map empty", `Quick, test_map_empty);
    ("map_array keeps order", `Quick, test_map_array_order);
    ("invalid domains", `Quick, test_invalid_domains);
    ("exceptions propagate", `Quick, test_exception_propagates);
    ("reduce non-commutative monoid", `Quick, test_reduce_non_commutative);
    ("reduce empty", `Quick, test_reduce_empty);
    ("available domains", `Quick, test_available_domains);
    ("existence sweep deterministic under parallelism", `Slow, test_existence_sweep_parallel_deterministic);
  ]

let () = Alcotest.run "parallel" [ ("unit", suite); ("properties", parallel_properties) ]
