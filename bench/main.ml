(* Benchmark & reproduction harness.

   Running this executable regenerates every experiment row of the
   reproduction (E1–E13 in DESIGN.md): the paper has no numbered tables
   or figures (theory venue), so each measurable claim — each algorithm
   theorem, the n = 3 result, Conjecture 3.7's simulations, the fully
   mixed equilibrium theorems and the price-of-anarchy bounds — gets a
   table here.  A Bechamel timing section at the end measures the
   polynomial-time algorithms.

   QUICK=1 dune exec bench/main.exe  — reduced trial counts. *)

open Model
open Numeric
open Experiments

let quick = Sys.getenv_opt "QUICK" <> None

(* Fit t = C·n^b over a scaling table's rows and print the exponent,
   making the O(n^k) claims directly comparable to measurements. *)
let print_exponent label rows =
  match rows with
  | _ :: _ :: _ ->
    let points =
      List.map (fun (r : Scaling.row) -> (float_of_int r.n, r.microseconds)) rows
    in
    let fit = Stats.Regression.log_log points in
    Printf.printf "fitted %s ~ n^%.2f (R² = %.3f)\n" label fit.slope fit.r_squared
  | _ -> ()


let trials base = if quick then max 5 (base / 10) else base

(* ------------------------------------------------------------------ *)
(* E1–E3: the paper's polynomial-time algorithms                       *)

let correctness_table ~name ~solve ~make_game ~with_initial ~seed ~count =
  let rng = Prng.Rng.create seed in
  let ok = ref 0 and ok_initial = ref 0 in
  for _ = 1 to count do
    let g = make_game rng in
    let sigma = solve ?initial:None g in
    if Pure.is_nash g sigma then incr ok;
    if with_initial then begin
      let initial =
        Array.init (Game.links g) (fun _ -> Prng.Rng.rational rng ~den_bound:4)
      in
      let sigma = solve ?initial:(Some initial) g in
      if Pure.is_nash g ~initial sigma then incr ok_initial
    end
  done;
  let t = Stats.Table.create [ "algorithm"; "instances"; "pure NE"; "pure NE (initial traffic)" ] in
  Stats.Table.add_row t
    [
      name; string_of_int count; Report.pct !ok count;
      (if with_initial then Report.pct !ok_initial count else "n/a");
    ];
  Stats.Table.print t

let e1 () =
  Report.heading "E1" "Algorithm A_twolinks computes a pure NE in O(n^2) (Theorem 3.3)";
  correctness_table ~name:"A_twolinks" ~seed:101 ~count:(trials 300) ~with_initial:true
    ~solve:(fun ?initial g -> Algo.Two_links.solve ?initial g)
    ~make_game:(fun rng ->
      let n = Prng.Rng.int_in rng 2 10 in
      Generators.game rng ~n ~m:2 ~weights:(Generators.Rational_weights 6)
        ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 }));
  let rows =
    Scaling.run ~seed:102 ~sizes:(List.map (fun n -> (n, 2)) [ 4; 8; 16; 32; 64 ])
    |> List.filter (fun (r : Scaling.row) -> r.algorithm = "A_twolinks (Thm 3.3)")
  in
  Stats.Table.print (Scaling.table rows);
  print_exponent "A_twolinks time (theorem: n^2 of exact ops)" rows

let e2 () =
  Report.heading "E2" "Algorithm A_symmetric computes a pure NE in O(n^2 m) (Theorem 3.5)";
  correctness_table ~name:"A_symmetric" ~seed:103 ~count:(trials 300) ~with_initial:false
    ~solve:(fun ?initial g ->
      assert (initial = None);
      Algo.Symmetric.solve g)
    ~make_game:(fun rng ->
      let n = Prng.Rng.int_in rng 2 10 and m = Prng.Rng.int_in rng 2 5 in
      Generators.game rng ~n ~m ~weights:Generators.Unit_weights
        ~beliefs:(Generators.Private_point { cap_bound = 8 }));
  (* The proof bounds total defection moves by n(n-1)/2. *)
  let rng = Prng.Rng.create 104 in
  let worst_ratio = ref 0.0 in
  for _ = 1 to trials 300 do
    let n = Prng.Rng.int_in rng 3 12 and m = Prng.Rng.int_in rng 2 5 in
    let g =
      Generators.game rng ~n ~m ~weights:Generators.Unit_weights
        ~beliefs:(Generators.Private_point { cap_bound = 8 })
    in
    let _, moves = Algo.Symmetric.solve_with_stats g in
    let bound = float_of_int (n * (n - 1) / 2) in
    if bound > 0.0 then worst_ratio := Float.max !worst_ratio (float_of_int moves /. bound)
  done;
  Printf.printf "worst observed defections / (n(n-1)/2) = %.3f (theorem requires <= 1)\n" !worst_ratio;
  let rows =
    Scaling.run ~seed:105 ~sizes:[ (8, 4); (16, 4); (32, 4); (64, 4) ]
    |> List.filter (fun (r : Scaling.row) -> r.algorithm = "A_symmetric (Thm 3.5)")
  in
  Stats.Table.print (Scaling.table rows);
  print_exponent "A_symmetric time (theorem: n^2·m)" rows

let e3 () =
  Report.heading "E3" "Algorithm A_uniform computes a pure NE in O(n(log n + m)) (Theorem 3.6)";
  correctness_table ~name:"A_uniform" ~seed:106 ~count:(trials 300) ~with_initial:true
    ~solve:(fun ?initial g -> Algo.Uniform_beliefs.solve ?initial g)
    ~make_game:(fun rng ->
      let n = Prng.Rng.int_in rng 2 12 and m = Prng.Rng.int_in rng 2 5 in
      Generators.game rng ~n ~m ~weights:(Generators.Rational_weights 6)
        ~beliefs:(Generators.Uniform_link_view { cap_bound = 6 }));
  let rows =
    Scaling.run ~seed:107 ~sizes:[ (16, 4); (64, 4); (256, 4) ]
    |> List.filter (fun (r : Scaling.row) -> r.algorithm = "A_uniform (Thm 3.6)")
  in
  Stats.Table.print (Scaling.table rows);
  print_exponent "A_uniform time (theorem: n·(log n + m))" rows

(* ------------------------------------------------------------------ *)
(* E4: three users — no best-response cycles, pure NE always           *)

let e4 () =
  Report.heading "E4" "n = 3: no best-response cycles; a pure NE always exists (Section 3.1)";
  let rows =
    Cycles.run ~domains:(Parallel.available_domains ()) ~seed:108 ~ns:[ 3 ]
      ~ms:[ 2; 3; 4 ] ~trials:(trials 200)
      ~weights:(Generators.Rational_weights 6)
      ~beliefs:(Generators.Private_point { cap_bound = 9 })
      ()
  in
  Stats.Table.print (Cycles.table rows)

(* ------------------------------------------------------------------ *)
(* E5: Conjecture 3.7 — the paper's existence simulations              *)

let e5 () =
  Report.heading "E5"
    "Pure NE existence on random instances (Conjecture 3.7; reproduces the paper's simulations)";
  List.iter
    (fun (weights, beliefs) ->
      let rows =
        Existence.run ~domains:(Parallel.available_domains ()) ~seed:109
          ~ns:[ 2; 3; 4; 5 ] ~ms:[ 2; 3 ] ~trials:(trials 100) ~weights ~beliefs ()
      in
      Stats.Table.print (Existence.table rows))
    [
      (Generators.Rational_weights 5, Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 });
      (Generators.Integer_weights 5, Generators.Private_point { cap_bound = 8 });
      (Generators.Integer_weights 5, Generators.Signal_posterior { states = 4; cap_bound = 6; grain = 5 });
    ]

(* ------------------------------------------------------------------ *)
(* E6: better-response cycles (ordinal potential, Section 3.2)         *)

let e6 () =
  Report.heading "E6"
    "Better-response cycles: belief model vs. general player-specific games (Section 3.2)";
  let rows =
    Cycles.run ~domains:(Parallel.available_domains ()) ~seed:110 ~ns:[ 3; 4 ]
      ~ms:[ 2; 3 ] ~trials:(trials 200)
      ~weights:(Generators.Integer_weights 6)
      ~beliefs:(Generators.Private_point { cap_bound = 12 })
      ()
  in
  Stats.Table.print (Cycles.table rows);
  (* Contrast: in Milchtaich's general (non-linear) unweighted class,
     better-response cycles are common. *)
  let rng = Prng.Rng.create 111 in
  let cyclic = ref 0 in
  let count = trials 2000 in
  for _ = 1 to count do
    let t = Kp.Milchtaich.Unweighted.random rng ~players:3 ~links:3 ~value_bound:6 in
    if Kp.Milchtaich.Unweighted.has_better_response_cycle t then incr cyclic
  done;
  Printf.printf
    "contrast — general player-specific (3 players, 3 links, monotone tables): %s have a \
     better-response cycle\n"
    (Report.pct !cyclic count);
  (* The witness: a 6-user instance of the belief model whose
     better-response graph IS cyclic, found by bin/cycle_hunt.exe after
     ~68M smaller instances had none.  This reproduces the paper's
     Section 3.2 claim (B. Monien's unpublished observation). *)
  let witness = Algo.Witness.better_response_cycle_game () in
  Printf.printf
    "witness (found by cycle_hunt, minimised to n=%d, m=%d): better-response cycle %b, \
     pure NE count %d, best-response cycle %b\n"
    (Game.users witness) (Game.links witness)
    (Algo.Game_graph.find_cycle witness ~kind:Algo.Game_graph.Better_response <> None)
    (Algo.Enumerate.count witness)
    (Algo.Game_graph.find_cycle witness ~kind:Algo.Game_graph.Best_response <> None);
  print_endline
    "=> the belief model is NOT an ordinal potential game (Section 3.2), yet the witness\n\
     still has pure NE and an acyclic best-response graph. No cycle exists among ~68M\n\
     random instances with n <= 4 nor 1.5M exhaustive small grids; see EXPERIMENTS.md."

(* ------------------------------------------------------------------ *)
(* E7: Milchtaich's non-existence vs the belief model                  *)

let e7 () =
  Report.heading "E7"
    "Weighted player-specific games may lack a pure NE; belief games do not (Section 3)";
  let rng = Prng.Rng.create 5 in
  (match Kp.Milchtaich.Weighted.search_no_pure_nash rng ~weights:[| 1; 2; 3 |] ~links:3 ~attempts:5000 with
   | None -> print_endline "no-pure-NE search FAILED (unexpected)"
   | Some (t, steps) ->
     Printf.printf
       "no-pure-NE witness: 3 players (weights 1,2,3), 3 links, found after %d adaptive steps; \
        exhaustive check: %d pure NE\n"
       steps
       (List.length (Kp.Milchtaich.Weighted.pure_nash t)));
  let rng = Prng.Rng.create 112 in
  let count = trials 500 in
  let all = ref 0 in
  for _ = 1 to count do
    let g =
      Generators.game rng ~n:3 ~m:3 ~weights:(Generators.Integer_weights 3)
        ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 })
    in
    if Algo.Enumerate.exists g then incr all
  done;
  Printf.printf "belief-model games of the same shape with a pure NE: %s\n" (Report.pct !all count)

(* ------------------------------------------------------------------ *)
(* E8–E10: fully mixed equilibria                                      *)

let e8_to_e10 () =
  Report.heading "E8–E10"
    "Fully mixed NE: closed form is a unique NE (Thm 4.6), equiprobable under uniform beliefs \
     (Thm 4.8), and maximises both social costs (Lemma 4.9, Thms 4.11/4.12)";
  List.iter
    (fun (label, beliefs) ->
      print_endline label;
      let rows =
        Fmne_exp.run ~seed:113 ~ns:[ 2; 3; 4 ] ~ms:[ 2; 3 ] ~trials:(trials 100)
          ~weights:(Generators.Integer_weights 4) ~beliefs
      in
      Stats.Table.print (Fmne_exp.table rows))
    [
      ("shared-space beliefs:", Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 });
      ("uniform user beliefs (E9):", Generators.Uniform_link_view { cap_bound = 5 });
    ];
  (* FMNE computation is O(nm) (Corollary 4.7): timing. *)
  Stats.Table.print
    (Scaling.table
       (Scaling.run ~seed:114 ~sizes:[ (8, 4); (16, 8); (32, 8) ]
        |> List.filter (fun (r : Scaling.row) -> r.algorithm = "FMNE closed form (Cor 4.7)")))

(* ------------------------------------------------------------------ *)
(* E11/E12: price of anarchy vs the theorem bounds                     *)

let e11 () =
  Report.heading "E11" "Empirical coordination ratio vs the Theorem 4.13 bound (uniform beliefs)";
  let rows =
    Poa_exp.run ~domains:(Parallel.available_domains ()) ~seed:115 ~ns:[ 2; 3; 4 ]
      ~ms:[ 2; 3 ] ~trials:(trials 60)
      ~weights:(Generators.Integer_weights 4)
      ~beliefs:(Generators.Uniform_link_view { cap_bound = 4 })
      ~bound:`Uniform ()
  in
  Stats.Table.print (Poa_exp.table rows)

let e12 () =
  Report.heading "E12" "Empirical coordination ratio vs the Theorem 4.14 bound (general case)";
  let rows =
    Poa_exp.run ~domains:(Parallel.available_domains ()) ~seed:116 ~ns:[ 2; 3; 4; 6 ]
      ~ms:[ 2; 3 ] ~trials:(trials 60)
      ~weights:(Generators.Integer_weights 4)
      ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })
      ~bound:`General ()
  in
  Stats.Table.print (Poa_exp.table rows)

(* ------------------------------------------------------------------ *)
(* E13: point beliefs subsume the KP-model                             *)

let e13 () =
  Report.heading "E13" "Point beliefs coincide with the KP-model (Section 2)";
  let rng = Prng.Rng.create 117 in
  let count = trials 300 in
  let agree = ref 0 and lpt_ok = ref 0 in
  for _ = 1 to count do
    let n = Prng.Rng.int_in rng 2 5 and m = Prng.Rng.int_in rng 2 3 in
    let g =
      Generators.game rng ~n ~m ~weights:(Generators.Rational_weights 5)
        ~beliefs:(Generators.Shared_point { cap_bound = 6 })
    in
    let direct = Game.kp ~weights:(Game.weights g) ~capacities:(Game.capacity_row g 0) in
    if
      List.map Array.to_list (Algo.Enumerate.pure_nash g)
      = List.map Array.to_list (Algo.Enumerate.pure_nash direct)
    then incr agree;
    if Pure.is_nash g (Kp.Kp_nash.solve g) then incr lpt_ok
  done;
  let t = Stats.Table.create [ "instances"; "NE sets agree with direct KP"; "KP LPT solver returns NE" ] in
  Stats.Table.add_row t [ string_of_int count; Report.pct !agree count; Report.pct !lpt_ok count ];
  Stats.Table.print t

(* ------------------------------------------------------------------ *)
(* E14: not an exact potential game (Section 3.2)                      *)

let e14 () =
  Report.heading "E14"
    "The game admits no exact potential (Section 3.2 / technical report [9])";
  let rng = Prng.Rng.create 119 in
  let count = trials 300 in
  let belief_fail = ref 0 and kp_unweighted_hold = ref 0 in
  for _ = 1 to count do
    let g =
      Generators.game rng ~n:3 ~m:3 ~weights:(Generators.Integer_weights 4)
        ~beliefs:(Generators.Private_point { cap_bound = 6 })
    in
    if Game.is_kp g || not (Algo.Potential.is_exact_potential_game g) then incr belief_fail;
    let kp =
      Generators.game rng ~n:3 ~m:3 ~weights:Generators.Unit_weights
        ~beliefs:(Generators.Shared_point { cap_bound = 6 })
    in
    if Algo.Potential.is_exact_potential_game kp then incr kp_unweighted_hold
  done;
  let t =
    Stats.Table.create
      [ "instances"; "belief games failing exact-potential"; "unweighted KP satisfying it" ]
  in
  Stats.Table.add_row t [ string_of_int count; Report.pct !belief_fail count; Report.pct !kp_unweighted_hold count ];
  Stats.Table.print t;
  print_endline
    "ordinal potentials are ruled out too: see the E6 witness (a 6-user instance with a\n\
     better-response cycle, Algo.Witness.better_response_cycle_game)."

(* ------------------------------------------------------------------ *)
(* E15: support enumeration cross-validates the Section 4 formulas     *)

let e15 () =
  Report.heading "E15"
    "All mixed equilibria by support enumeration; the full-support one matches Theorem 4.6";
  let rng = Prng.Rng.create 120 in
  let count = trials 150 in
  let pure_agree = ref 0 and fmne_agree = ref 0 and fmne_seen = ref 0 in
  let mixed_counts = ref Stats.Welford.empty in
  for _ = 1 to count do
    let n = Prng.Rng.int_in rng 2 3 and m = Prng.Rng.int_in rng 2 3 in
    let g =
      Generators.game rng ~n ~m ~weights:(Generators.Integer_weights 4)
        ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })
    in
    let result = Algo.Support_enum.all_nash g in
    mixed_counts := Stats.Welford.add !mixed_counts (float_of_int (List.length result.equilibria));
    let singleton =
      List.filter_map
        (fun (f : Algo.Support_enum.finding) ->
          if Array.for_all (fun s -> List.length s = 1) f.supports then
            Some (Array.to_list (Array.map List.hd f.supports))
          else None)
        result.equilibria
      |> List.sort compare
    in
    if singleton = (Algo.Enumerate.pure_nash g |> List.map Array.to_list |> List.sort compare)
    then incr pure_agree;
    match Algo.Fully_mixed.compute g with
    | None -> ()
    | Some fm ->
      incr fmne_seen;
      let full =
        List.filter
          (fun (f : Algo.Support_enum.finding) ->
            Array.for_all (fun s -> List.length s = Game.links g) f.supports)
          result.equilibria
      in
      (match full with [ f ] when Mixed.equal f.profile fm -> incr fmne_agree | _ -> ())
  done;
  let t =
    Stats.Table.create
      [ "instances"; "mean NE count"; "pure sets agree"; "FMNE agrees with closed form" ]
  in
  Stats.Table.add_row t
    [
      string_of_int count;
      Report.flt (Stats.Welford.mean !mixed_counts);
      Report.pct !pure_agree count;
      Report.pct !fmne_agree !fmne_seen;
    ];
  Stats.Table.print t

(* ------------------------------------------------------------------ *)
(* E16: the complementary model of [8] and Monte-Carlo validation      *)

let e16 () =
  Report.heading "E16"
    "Baseline [8] (traffic uncertainty): pure Bayesian NE always exist; Monte-Carlo check of \
     the capacity reduction";
  let rng = Prng.Rng.create 121 in
  let count = trials 200 in
  let converged = ref 0 and exhaustive = ref 0 in
  for _ = 1 to count do
    let t = Kp.Bayesian.random rng ~n:3 ~m:2 ~max_types:2 ~bound:6 in
    (try if Kp.Bayesian.is_nash t (Kp.Bayesian.solve t) then incr converged with Failure _ -> ());
    if Kp.Bayesian.exists_pure_nash t then incr exhaustive
  done;
  let t = Stats.Table.create [ "instances"; "BR dynamics reach a Bayesian NE"; "pure Bayesian NE exists" ] in
  Stats.Table.add_row t [ string_of_int count; Report.pct !converged count; Report.pct !exhaustive count ];
  Stats.Table.print t;
  Stats.Table.print
    (Monte_carlo.table
       (Monte_carlo.run ~domains:(Parallel.available_domains ()) ~seed:122
          ~samples_list:[ 100; 1_000; 10_000 ] ~trials:(trials 10) ()))

(* ------------------------------------------------------------------ *)
(* E17: the price of misinformation                                    *)

let e17 () =
  Report.heading "E17"
    "The price of misinformation: equilibria under contaminated beliefs, priced under the truth";
  let epsilons = List.map (fun (a, b) -> Rational.of_ints a b) [ (0, 1); (1, 4); (1, 2); (3, 4); (1, 1) ] in
  print_endline "diffuse noise (random distributions):";
  Stats.Table.print
    (Robustness.table
       (Robustness.run ~domains:(Parallel.available_domains ()) ~seed:135 ~n:4 ~m:3
          ~states:3 ~epsilons ~trials:(trials 150) ()));
  print_endline "confidently wrong (point-mass noise):";
  Stats.Table.print
    (Robustness.table
       (Robustness.run ~domains:(Parallel.available_domains ()) ~noise:`Point ~seed:136
          ~n:4 ~m:3 ~states:3 ~epsilons ~trials:(trials 150) ()))

(* ------------------------------------------------------------------ *)
(* E18/E19: learning — measurement value and fictitious play           *)

let e18 () =
  Report.heading "E18"
    "The value of measurement: beliefs estimated from k state observations, priced under truth";
  Stats.Table.print
    (Learning.table
       (Learning.run ~domains:(Parallel.available_domains ()) ~seed:137 ~n:4 ~m:3
          ~states:3 ~observations:[ 0; 2; 8; 32; 128 ] ~trials:(trials 120) ()))

let e19 () =
  Report.heading "E19"
    "Fictitious play: the game is not a potential game, yet play stabilises at pure NE";
  let rng = Prng.Rng.create 138 in
  let count = trials 300 in
  let stabilised = ref 0 and rounds = ref Stats.Welford.empty in
  for _ = 1 to count do
    let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
    let g =
      Generators.game rng ~n ~m ~weights:(Generators.Integer_weights 4)
        ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })
    in
    let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
    let o = Algo.Fictitious.play g ~rounds:5000 ~window:10 start in
    if o.stabilised then begin
      incr stabilised;
      rounds := Stats.Welford.add !rounds (float_of_int o.rounds)
    end
  done;
  let t =
    Stats.Table.create [ "instances"; "stabilised at a pure NE"; "mean rounds"; "max rounds" ]
  in
  Stats.Table.add_row t
    [
      string_of_int count;
      Report.pct !stabilised count;
      Report.flt (Stats.Welford.mean !rounds);
      Report.flt (Stats.Welford.max !rounds);
    ];
  Stats.Table.print t

(* ------------------------------------------------------------------ *)
(* E20: the value of mediation (correlated equilibria)                 *)

let e20 () =
  Report.heading "E20"
    "Mediation value: optimal correlated equilibria vs Nash equilibria (exact LP)";
  let t =
    Stats.Table.create
      [
        "beliefs"; "instances"; "OPT <= bestCE <= bestNE"; "mean bestNE/bestCE";
        "max bestNE/bestCE"; "mediator strictly helps"; "mean worstCE/worstNE";
      ]
  in
  List.iter (fun beliefs ->
  let rng = Prng.Rng.create 139 in
  let count = trials 100 in
  let sandwich_ok = ref 0 in
  let strict_help = ref 0 in
  let gain_over_best_ne = ref Stats.Welford.empty in
  let worst_ce_vs_fmne = ref Stats.Welford.empty in
  for _ = 1 to count do
    let n = Prng.Rng.int_in rng 2 3 and m = Prng.Rng.int_in rng 2 3 in
    let g = Generators.game rng ~n ~m ~weights:(Generators.Integer_weights 4) ~beliefs in
    let best_ce = Algo.Correlated.best_social_cost g in
    let worst_ce = Algo.Correlated.worst_social_cost g in
    let opt1, _ = Social.opt1 g in
    (match Algo.Enumerate.extremal_nash g ~cost:(fun g p -> Pure.social_cost1 g p) with
     | Some ((_, best_ne), (_, worst_ne)) ->
       if
         Rational.compare opt1 best_ce.value <= 0
         && Rational.compare best_ce.value best_ne <= 0
       then incr sandwich_ok;
       if Rational.compare best_ce.value best_ne < 0 then incr strict_help;
       gain_over_best_ne :=
         Stats.Welford.add !gain_over_best_ne
           (Rational.to_float (Rational.div best_ne (Rational.max best_ce.value opt1)));
       worst_ce_vs_fmne :=
         Stats.Welford.add !worst_ce_vs_fmne
           (Rational.to_float (Rational.div worst_ce.value worst_ne))
     | None -> ())
  done;
  Stats.Table.add_row t
    [
      Generators.belief_family_name beliefs;
      string_of_int count;
      Report.pct !sandwich_ok count;
      Report.flt (Stats.Welford.mean !gain_over_best_ne);
      Report.flt (Stats.Welford.max !gain_over_best_ne);
      Report.pct !strict_help count;
      Report.flt (Stats.Welford.mean !worst_ce_vs_fmne);
    ])
    [ Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 };
      Generators.Uniform_link_view { cap_bound = 5 } ];
  Stats.Table.print t;
  print_endline
    "bestNE/bestCE > 1 would mean a mediator strictly beats every pure Nash equilibrium;\n\
     worstCE/worstNE >= 1 always (Nash points lie inside the CE polytope)."

(* ------------------------------------------------------------------ *)
(* Figure-style series                                                 *)

let figures () =
  Report.heading "FIGURES" "Series the paper's empirical section implies";
  print_endline "F1 — probability that the fully mixed NE exists (shared-space beliefs):";
  Stats.Table.print
    (Curves.table "P(FMNE exists)"
       (Curves.fmne_existence ~seed:130 ~ns:[ 2; 3; 4; 5 ] ~ms:[ 2; 3; 4 ] ~trials:(trials 100)));
  print_endline "F2 — mean number of pure Nash equilibria per instance:";
  Stats.Table.print
    (Curves.table "mean #pure NE"
       (Curves.mean_pure_ne ~seed:131 ~ns:[ 2; 3; 4; 5 ] ~ms:[ 2; 3 ] ~trials:(trials 100)));
  print_endline "F3 — distribution of SC1/OPT1 over all pure NE of random instances:";
  print_string (Stats.Histogram.render (Curves.poa_histogram ~seed:132 ~trials:(trials 400) ~bins:10));
  print_endline "F4 — distribution of best-response convergence lengths:";
  print_string
    (Stats.Histogram.render (Curves.br_steps_histogram ~seed:133 ~trials:(trials 600) ~bins:12));
  print_endline "F5 — Graham LPT quality on identical links (ties to reference [10]):";
  let t = Stats.Table.create [ "m"; "worst makespan ratio"; "4/3 - 1/(3m) bound" ] in
  List.iter
    (fun (m, worst, bound) ->
      Stats.Table.add_row t [ string_of_int m; Report.flt worst; Report.flt bound ])
    (Curves.lpt_quality ~seed:134 ~ms:[ 2; 3; 4 ] ~trials:(trials 300));
  Stats.Table.print t;
  print_endline
    "F6 — exact E[SC] of the equiprobable FMNE on identical unit links, normalised by n/m:";
  Stats.Table.print
    (Curves.table "E[SC] / (n/m)" (Curves.fmne_emc ~ns:[ 4; 8; 16; 32 ] ~ms:[ 2; 3; 4 ]))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablations () =
  Report.heading "ABLATION" "Design-choice ablations";
  (* 1. Best-response policies: moves needed to converge. *)
  let rng = Prng.Rng.create 123 in
  let count = trials 300 in
  let policy_stats =
    List.map
      (fun (name, policy) ->
        let steps = ref Stats.Welford.empty in
        let rng = Prng.Rng.create 124 in
        for _ = 1 to count do
          let n = Prng.Rng.int_in rng 3 6 and m = Prng.Rng.int_in rng 2 4 in
          let g =
            Generators.game rng ~n ~m ~weights:(Generators.Rational_weights 5)
              ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 })
          in
          let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
          let o = Algo.Best_response.converge g ~policy ~max_steps:2000 start in
          if o.converged then steps := Stats.Welford.add !steps (float_of_int o.steps)
        done;
        (name, !steps))
      [
        ("first defector", Algo.Best_response.First_defector);
        ("last defector", Algo.Best_response.Last_defector);
        ("best improvement", Algo.Best_response.Best_improvement);
      ]
  in
  let t = Stats.Table.create [ "policy"; "mean moves"; "max moves" ] in
  List.iter
    (fun (name, w) ->
      Stats.Table.add_row t
        [ name; Report.flt (Stats.Welford.mean w); Report.flt (Stats.Welford.max w) ])
    policy_stats;
  Stats.Table.print t;
  ignore rng;
  (* 2. Karatsuba vs schoolbook multiplication. *)
  let big k = Numeric.Bignat.pow (Numeric.Bignat.of_int 1000003) k in
  let t = Stats.Table.create [ "operand limbs"; "karatsuba µs"; "schoolbook µs" ] in
  List.iter
    (fun k ->
      let a = big k and b = big (k + 1) in
      let kara, _ = Scaling.time_call (fun () -> ignore (Numeric.Bignat.mul a b)) in
      let school, _ = Scaling.time_call (fun () -> ignore (Numeric.Bignat.mul_schoolbook a b)) in
      Stats.Table.add_row t
        [
          string_of_int (Numeric.Bignat.num_bits a / 30);
          Report.flt kara;
          Report.flt school;
        ])
    [ 150; 600; 1500 ];
  Stats.Table.print t;
  (* 3. Alias-method sampling vs linear scan. *)
  let rng = Prng.Rng.create 125 in
  let dim = 64 in
  let weights = Array.init dim (fun _ -> Prng.Rng.float rng +. 0.01) in
  let alias = Prng.Alias.of_weights weights in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let linear_scan () =
    let x = Prng.Rng.float rng *. total in
    let acc = ref 0.0 and hit = ref (dim - 1) in
    (try
       Array.iteri
         (fun i w ->
           acc := !acc +. w;
           if !acc >= x then begin
             hit := i;
             raise Exit
           end)
         weights
     with Exit -> ());
    !hit
  in
  let a_us, _ = Scaling.time_call (fun () -> ignore (Prng.Alias.sample alias rng)) in
  let l_us, _ = Scaling.time_call (fun () -> ignore (linear_scan ())) in
  let t = Stats.Table.create [ "sampler (64 categories)"; "µs/draw" ] in
  Stats.Table.add_row t [ "alias method"; Report.flt a_us ];
  Stats.Table.add_row t [ "linear scan"; Report.flt l_us ];
  Stats.Table.print t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let bechamel_section () =
  Report.heading "TIMING" "Bechamel micro-benchmarks (ns per call, OLS on monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let rng = Prng.Rng.create 118 in
  let two_links n =
    let g =
      Generators.game rng ~n ~m:2 ~weights:(Generators.Integer_weights 6)
        ~beliefs:(Generators.Private_point { cap_bound = 8 })
    in
    Test.make ~name:(Printf.sprintf "A_twolinks/n=%d" n) (Staged.stage (fun () -> Algo.Two_links.solve g))
  in
  let symmetric (n, m) =
    let g =
      Generators.game rng ~n ~m ~weights:Generators.Unit_weights
        ~beliefs:(Generators.Private_point { cap_bound = 8 })
    in
    Test.make ~name:(Printf.sprintf "A_symmetric/n=%d,m=%d" n m)
      (Staged.stage (fun () -> Algo.Symmetric.solve g))
  in
  let uniform (n, m) =
    let g =
      Generators.game rng ~n ~m ~weights:(Generators.Integer_weights 6)
        ~beliefs:(Generators.Uniform_link_view { cap_bound = 6 })
    in
    Test.make ~name:(Printf.sprintf "A_uniform/n=%d,m=%d" n m)
      (Staged.stage (fun () -> Algo.Uniform_beliefs.solve g))
  in
  let fmne (n, m) =
    let g =
      Generators.game rng ~n ~m ~weights:(Generators.Integer_weights 6)
        ~beliefs:(Generators.Private_point { cap_bound = 8 })
    in
    Test.make ~name:(Printf.sprintf "fmne_candidate/n=%d,m=%d" n m)
      (Staged.stage (fun () -> Algo.Fully_mixed.candidate g))
  in
  let enumerate (n, m) =
    let g =
      Generators.game rng ~n ~m ~weights:(Generators.Integer_weights 6)
        ~beliefs:(Generators.Private_point { cap_bound = 8 })
    in
    Test.make ~name:(Printf.sprintf "enumerate_nash/n=%d,m=%d" n m)
      (Staged.stage (fun () -> Algo.Enumerate.count g))
  in
  let rational_ops =
    let a = Rational.of_ints 355 113 and b = Rational.of_ints 22 7 in
    Test.make ~name:"rational/add+mul" (Staged.stage (fun () -> Rational.add (Rational.mul a b) a))
  in
  let bignat_ops =
    let a = Bignat.of_string "123456789012345678901234567890" in
    let b = Bignat.of_string "987654321098765432109" in
    Test.make ~name:"bignat/divmod-30x7-limbs" (Staged.stage (fun () -> Bignat.divmod a b))
  in
  let tests =
    Test.make_grouped ~name:"selfish_routing"
      ([ rational_ops; bignat_ops ]
      @ List.map two_links [ 4; 16; 64 ]
      @ List.map symmetric [ (8, 3); (32, 3) ]
      @ List.map uniform [ (16, 4); (256, 4) ]
      @ List.map fmne [ (4, 3); (16, 8) ]
      @ List.map enumerate [ (4, 3); (6, 3) ])
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then 0.2 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Stats.Table.create [ "benchmark"; "ns/call" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> Printf.sprintf "%.0f" est
        | _ -> "n/a"
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter (fun (name, ns) -> Stats.Table.add_row table [ name; ns ])
    (List.sort compare !rows);
  Stats.Table.print table

(* ------------------------------------------------------------------ *)
(* Numeric-tower benchmark: BENCH_numeric.json artefact                *)

(* Times the live tagged tower against Numeric.Reference (the seed
   array-only implementation) on identical operand pools, at small and
   multi-limb magnitudes, plus an end-to-end [Pure.is_nash] throughput
   figure.  Writes machine-readable JSON (schema documented in
   README.md) to BENCH_numeric.json, or to $BENCH_JSON if set.
   BENCH_NUMERIC_ONLY=1 runs just this section. *)
let bench_numeric_json () =
  Report.heading "NUMERIC" "tagged fast path vs reference tower (emits BENCH_numeric.json)";
  let module R = Reference in
  let rng = Prng.Rng.create 0xBE7C in
  let bench_pairs pairs f =
    let k = Array.length pairs in
    let us, _ =
      Scaling.time_call (fun () ->
          for i = 0 to k - 1 do
            let a, b = pairs.(i) in
            ignore (Sys.opaque_identity (f a b))
          done)
    in
    us *. 1000.0 /. float_of_int k
  in
  let digits n =
    let b = Buffer.create n in
    Buffer.add_char b (Char.chr (Char.code '1' + Prng.Rng.int rng 9));
    for _ = 2 to n do
      Buffer.add_char b (Char.chr (Char.code '0' + Prng.Rng.int rng 10))
    done;
    Buffer.contents b
  in
  let q_pool count gen =
    Array.init count (fun _ ->
        let s1 = gen () and s2 = gen () in
        ((Rational.of_string s1, Rational.of_string s2), (R.Q.of_string s1, R.Q.of_string s2)))
  in
  let i_pool count gen =
    Array.init count (fun _ ->
        let s1 = gen () and s2 = gen () in
        ((Bigint.of_string s1, Bigint.of_string s2), (R.Int.of_string s1, R.Int.of_string s2)))
  in
  let small_q () =
    Printf.sprintf "%d/%d" (Prng.Rng.int_in rng (-999) 999) (1 + Prng.Rng.int rng 999)
  in
  let large_q () =
    Printf.sprintf "%s%s/%s" (if Prng.Rng.bool rng then "-" else "") (digits 25) (digits 25)
  in
  let small_i () = string_of_int (1 + Prng.Rng.int rng 1_000_000_000) in
  let large_i () = digits 40 in
  let results = ref [] in
  let record op magnitude fast_ns ref_ns =
    results := (op, magnitude, fast_ns, ref_ns) :: !results
  in
  let run_q op magnitude pool fast slow =
    record op magnitude
      (bench_pairs (Array.map fst pool) fast)
      (bench_pairs (Array.map snd pool) slow)
  in
  let sq = q_pool 256 small_q and lq = q_pool 64 large_q in
  run_q "rational_add" "small" sq Rational.add R.Q.add;
  run_q "rational_add" "large" lq Rational.add R.Q.add;
  run_q "rational_mul" "small" sq Rational.mul R.Q.mul;
  run_q "rational_mul" "large" lq Rational.mul R.Q.mul;
  run_q "rational_compare" "small" sq Rational.compare R.Q.compare;
  run_q "rational_compare" "large" lq Rational.compare R.Q.compare;
  let si = i_pool 256 small_i and li = i_pool 64 large_i in
  run_q "bigint_gcd" "small" si Bigint.gcd R.Int.gcd;
  run_q "bigint_gcd" "large" li Bigint.gcd R.Int.gcd;
  let results = List.rev !results in
  (* End-to-end: Nash verification over solved two-link games. *)
  let n_users = 16 and n_links = 2 in
  let games =
    List.init 20 (fun _ ->
        let g =
          Generators.game rng ~n:n_users ~m:n_links ~weights:(Generators.Integer_weights 6)
            ~beliefs:(Generators.Private_point { cap_bound = 8 })
        in
        (g, Algo.Two_links.solve g))
  in
  let nash_us, _ =
    Scaling.time_call (fun () ->
        List.iter (fun (g, sigma) -> ignore (Sys.opaque_identity (Pure.is_nash g sigma))) games)
  in
  let calls_per_sec = 1e6 /. (nash_us /. float_of_int (List.length games)) in
  (* Human-readable summary. *)
  let t = Stats.Table.create [ "op"; "magnitude"; "fast ns/op"; "reference ns/op"; "speedup" ] in
  List.iter
    (fun (op, mag, f, r) ->
      Stats.Table.add_row t
        [ op; mag; Report.flt f; Report.flt r; Printf.sprintf "%.2fx" (r /. f) ])
    results;
  Stats.Table.print t;
  Printf.printf "is_nash (n=%d, m=%d): %.0f calls/s\n" n_users n_links calls_per_sec;
  (* JSON artefact. *)
  let out = Buffer.create 2048 in
  Buffer.add_string out "{\n";
  Buffer.add_string out "  \"schema\": \"bench-numeric/1\",\n";
  Printf.bprintf out "  \"quick\": %b,\n" quick;
  Buffer.add_string out "  \"results\": [\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i (op, mag, f, r) ->
      Printf.bprintf out
        "    {\"op\": \"%s\", \"magnitude\": \"%s\", \"fast_ns_per_op\": %.3f, \
         \"reference_ns_per_op\": %.3f, \"speedup\": %.3f}%s\n"
        op mag f r (r /. f)
        (if i = last then "" else ","))
    results;
  Buffer.add_string out "  ],\n";
  Printf.bprintf out
    "  \"is_nash\": {\"games\": %d, \"users\": %d, \"links\": %d, \"calls_per_sec\": %.1f}\n"
    (List.length games) n_users n_links calls_per_sec;
  Buffer.add_string out "}\n";
  let path = Option.value (Sys.getenv_opt "BENCH_JSON") ~default:"BENCH_numeric.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents out);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Engine benchmark: BENCH_engine.json artefact                        *)

(* Serial vs sharded wall time for every engine-backed experiment
   driver.  Identity of the two result lists doubles as an end-to-end
   determinism check ([compare] not [=]: rows may hold NaN fields).
   Wall clock, not [Sys.time] — CPU time sums over domains and would
   hide the speedup.  Writes schema bench-engine/1 to BENCH_engine.json
   or $BENCH_ENGINE_JSON.  BENCH_ENGINE_ONLY=1 runs just this section. *)
let bench_engine_json () =
  Report.heading "ENGINE" "serial vs sharded experiment drivers (emits BENCH_engine.json)";
  let sharded = Parallel.available_domains () in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let measure name run =
    let serial_v, serial_ms = wall (fun () -> run 1) in
    let sharded_v, sharded_ms = wall (fun () -> run sharded) in
    let identical = compare serial_v sharded_v = 0 in
    (name, serial_ms, sharded_ms, identical)
  in
  let t = trials in
  let rows =
    [
      measure "cycles" (fun domains ->
          ignore
            (Sys.opaque_identity
               (Cycles.run ~domains ~seed:201 ~ns:[ 3 ] ~ms:[ 2; 3 ] ~trials:(t 100)
                  ~weights:(Generators.Integer_weights 6)
                  ~beliefs:(Generators.Private_point { cap_bound = 9 })
                  ())));
      measure "existence" (fun domains ->
          ignore
            (Sys.opaque_identity
               (Existence.run ~domains ~seed:202 ~ns:[ 3; 4 ] ~ms:[ 2; 3 ] ~trials:(t 60)
                  ~weights:(Generators.Integer_weights 5)
                  ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 })
                  ())));
      measure "poa_exp" (fun domains ->
          ignore
            (Sys.opaque_identity
               (Poa_exp.run ~domains ~seed:203 ~ns:[ 2; 3 ] ~ms:[ 2; 3 ] ~trials:(t 40)
                  ~weights:(Generators.Integer_weights 4)
                  ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 })
                  ~bound:`General ())));
      measure "robustness" (fun domains ->
          ignore
            (Sys.opaque_identity
               (Robustness.run ~domains ~seed:204 ~n:4 ~m:3 ~states:3
                  ~epsilons:(List.map (fun (a, b) -> Rational.of_ints a b) [ (0, 1); (1, 2); (1, 1) ])
                  ~trials:(t 60) ())));
      measure "learning" (fun domains ->
          ignore
            (Sys.opaque_identity
               (Learning.run ~domains ~seed:205 ~n:4 ~m:3 ~states:3
                  ~observations:[ 0; 8; 32 ] ~trials:(t 60) ())));
      measure "monte_carlo" (fun domains ->
          ignore
            (Sys.opaque_identity
               (Monte_carlo.run ~domains ~seed:206 ~samples_list:[ 100; 1_000 ] ~trials:(t 10) ())));
    ]
  in
  let tbl = Stats.Table.create [ "driver"; "serial ms"; "sharded ms"; "speedup"; "identical" ] in
  List.iter
    (fun (name, s, p, ident) ->
      Stats.Table.add_row tbl
        [ name; Report.flt s; Report.flt p; Printf.sprintf "%.2fx" (s /. p); string_of_bool ident ])
    rows;
  Stats.Table.print tbl;
  let out = Buffer.create 1024 in
  Buffer.add_string out "{\n";
  Buffer.add_string out "  \"schema\": \"bench-engine/1\",\n";
  Printf.bprintf out "  \"quick\": %b,\n" quick;
  Printf.bprintf out "  \"domains\": %d,\n" sharded;
  Buffer.add_string out "  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, s, p, ident) ->
      Printf.bprintf out
        "    {\"driver\": \"%s\", \"serial_ms\": %.3f, \"sharded_ms\": %.3f, \
         \"speedup\": %.3f, \"identical\": %b}%s\n"
        name s p (s /. p) ident
        (if i = last then "" else ","))
    rows;
  Buffer.add_string out "  ]\n";
  Buffer.add_string out "}\n";
  let path = Option.value (Sys.getenv_opt "BENCH_ENGINE_JSON") ~default:"BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents out);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Incremental-evaluation benchmark: BENCH_walk.json artefact          *)

(* Old-vs-new evaluation core.  [Seed_eval] reimplements the seed's
   recompute-from-scratch semantics exactly as shipped before the
   incremental [Model.View] existed — every latency pays an O(n) load
   scan, every step re-lists the defectors and then re-derives the
   mover's best response — because [Pure] itself now delegates to
   views, so timing [Pure] would no longer measure the old core.  Two
   fixed workloads run through both cores and must agree exactly: a
   First_defector best-response walk and an exhaustive OPT1 sweep.
   Writes schema bench-walk/1 to BENCH_walk.json or $BENCH_WALK_JSON.
   BENCH_WALK_ONLY=1 runs just this section. *)
module Seed_eval = struct
  let load_on g p l =
    let acc = ref Rational.zero in
    Array.iteri (fun k lk -> if lk = l then acc := Rational.add !acc (Game.weight g k)) p;
    !acc

  let latency g p i = Rational.div (load_on g p p.(i)) (Game.capacity g i p.(i))

  let latency_on_link g p i l =
    let base = load_on g p l in
    let load = if p.(i) = l then base else Rational.add base (Game.weight g i) in
    Rational.div load (Game.capacity g i l)

  let best_response g p i =
    let best_link = ref 0 and best = ref (latency_on_link g p i 0) in
    for l = 1 to Game.links g - 1 do
      let lat = latency_on_link g p i l in
      if Rational.compare lat !best < 0 then begin
        best_link := l;
        best := lat
      end
    done;
    (!best_link, !best)

  let is_defector g p i =
    let current = latency g p i in
    let rec scan l =
      if l >= Game.links g then false
      else if l <> p.(i) && Rational.compare (latency_on_link g p i l) current < 0 then true
      else scan (l + 1)
    in
    scan 0

  let defectors g p = List.filter (is_defector g p) (List.init (Game.users g) Fun.id)
  let social_cost1 g p = Rational.sum (List.init (Game.users g) (fun i -> latency g p i))

  let step g p =
    match defectors g p with
    | [] -> None
    | mover :: _ ->
      let target, _ = best_response g p mover in
      let next = Array.copy p in
      next.(mover) <- target;
      Some next

  let converge g ~max_steps p =
    let rec go p steps =
      if steps >= max_steps then (p, steps)
      else match step g p with None -> (p, steps) | Some next -> go next (steps + 1)
    in
    go (Array.copy p) 0

  let opt1 g =
    let best = ref None and best_profile = ref [||] in
    Social.iter_profiles g (fun p ->
        let c = social_cost1 g p in
        match !best with
        | Some b when Rational.compare b c <= 0 -> ()
        | _ ->
          best := Some c;
          best_profile := Array.copy p);
    (Option.get !best, !best_profile)
end

let bench_walk_json () =
  Report.heading "WALK" "seed recompute vs incremental view (emits BENCH_walk.json)";
  let ms_of f =
    let us, _ = Scaling.time_call f in
    us /. 1000.0
  in
  (* Workload 1: a fixed First_defector best-response walk. *)
  let n_walk = if quick then 8 else 12 and m_walk = 4 in
  let rng = Prng.Rng.create 0x11A1 in
  let g_walk =
    Generators.game rng ~n:n_walk ~m:m_walk
      ~weights:(Generators.Rational_weights 6)
      ~beliefs:(Generators.Shared_space { states = 3; cap_bound = 6; grain = 4 })
  in
  let start = Array.make n_walk 0 in
  let budget = 64 * n_walk * m_walk * (n_walk + m_walk) in
  let seed_final = ref [||] and seed_steps = ref 0 in
  let walk_seed_ms =
    ms_of (fun () ->
        let p, k = Seed_eval.converge g_walk ~max_steps:budget start in
        seed_final := p;
        seed_steps := k)
  in
  let inc_outcome = ref None in
  let walk_inc_ms =
    ms_of (fun () -> inc_outcome := Some (Algo.Best_response.converge g_walk ~max_steps:budget start))
  in
  let inc = Option.get !inc_outcome in
  let walk_identical =
    inc.Algo.Best_response.converged
    && Pure.equal !seed_final inc.Algo.Best_response.profile
    && !seed_steps = inc.Algo.Best_response.steps
  in
  (* Workload 2: a fixed exhaustive OPT1 sweep over all m^n profiles. *)
  let n_opt = if quick then 7 else 9 and m_opt = 3 in
  let g_opt =
    Generators.game rng ~n:n_opt ~m:m_opt
      ~weights:(Generators.Integer_weights 5)
      ~beliefs:(Generators.Private_point { cap_bound = 6 })
  in
  let seed_opt = ref None in
  let opt_seed_ms = ms_of (fun () -> seed_opt := Some (Seed_eval.opt1 g_opt)) in
  let inc_opt = ref None in
  let opt_inc_ms = ms_of (fun () -> inc_opt := Some (Social.opt1 g_opt)) in
  let sv, sp = Option.get !seed_opt and iv, ip = Option.get !inc_opt in
  let opt_identical = Rational.equal sv iv && Pure.equal sp ip in
  let profiles = int_of_float (float_of_int m_opt ** float_of_int n_opt) in
  (* Workload 3: Nash verification throughput — the seed's
     recompute-per-latency check against the live packed-lane
     [Pure.is_nash], same games, same profiles, verdicts compared. *)
  let n_nash = 16 and m_nash = 3 in
  let reps = if quick then 40 else 200 in
  let nash_batch =
    List.init 25 (fun _ ->
        let g =
          Generators.game rng ~n:n_nash ~m:m_nash
            ~weights:(Generators.Integer_weights 6)
            ~beliefs:(Generators.Private_point { cap_bound = 8 })
        in
        (g, Array.init n_nash (fun _ -> Prng.Rng.int rng m_nash)))
  in
  let seed_verdicts = List.map (fun (g, sigma) -> Seed_eval.defectors g sigma = []) nash_batch in
  let live_verdicts = List.map (fun (g, sigma) -> Pure.is_nash g sigma) nash_batch in
  let nash_identical = seed_verdicts = live_verdicts in
  let nash_seed_ms =
    ms_of (fun () ->
        for _ = 1 to reps do
          List.iter
            (fun (g, sigma) -> ignore (Sys.opaque_identity (Seed_eval.defectors g sigma = [])))
            nash_batch
        done)
  in
  let nash_live_ms =
    ms_of (fun () ->
        for _ = 1 to reps do
          List.iter
            (fun (g, sigma) -> ignore (Sys.opaque_identity (Pure.is_nash g sigma)))
            nash_batch
        done)
  in
  let nash_checks = reps * List.length nash_batch in
  (* Workload 4: the same OPT1 sweep sharded across domains — the
     multi-core row.  "seed" is the serial View-based scan, so the
     speedup isolates domain parallelism; value and argmin must be
     bit-identical. *)
  let n_par = if quick then 8 else 10 and m_par = 3 in
  let g_par =
    Generators.game rng ~n:n_par ~m:m_par
      ~weights:(Generators.Integer_weights 5)
      ~beliefs:(Generators.Private_point { cap_bound = 6 })
  in
  let domains = max 2 (min 8 (Parallel.available_domains ())) in
  (* Wall clock, not CPU time: parallel work accumulates CPU time on
     every domain, so [Sys.time] would hide the very speedup this row
     measures.  One warmed timed run — the workloads are >= 10 ms. *)
  let wall_ms_of f =
    f ();
    let start = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. start) *. 1000.0
  in
  let serial_par = ref None in
  let par_serial_ms = wall_ms_of (fun () -> serial_par := Some (Social.opt1 g_par)) in
  let multi_par = ref None in
  let par_multi_ms = wall_ms_of (fun () -> multi_par := Some (Social.opt1 ~domains g_par)) in
  let psv, psp = Option.get !serial_par and pmv, pmp = Option.get !multi_par in
  let par_identical = Rational.equal psv pmv && Pure.equal psp pmp in
  let par_profiles = int_of_float (float_of_int m_par ** float_of_int n_par) in
  let rows =
    [
      ("br_walk", n_walk, m_walk, !seed_steps, 1, walk_seed_ms, walk_inc_ms, walk_identical);
      ("opt1_sweep", n_opt, m_opt, profiles, 1, opt_seed_ms, opt_inc_ms, opt_identical);
      ("is_nash_check", n_nash, m_nash, nash_checks, 1, nash_seed_ms, nash_live_ms, nash_identical);
      ("opt1_multicore", n_par, m_par, par_profiles, domains, par_serial_ms, par_multi_ms,
       par_identical);
    ]
  in
  let t =
    Stats.Table.create
      [ "workload"; "n"; "m"; "work"; "domains"; "seed ms"; "incremental ms"; "speedup"; "identical" ]
  in
  List.iter
    (fun (name, n, m, work, d, s, i, ident) ->
      Stats.Table.add_row t
        [
          name; string_of_int n; string_of_int m; string_of_int work; string_of_int d;
          Report.flt s; Report.flt i; Printf.sprintf "%.2fx" (s /. i); string_of_bool ident;
        ])
    rows;
  Stats.Table.print t;
  Printf.printf "is_nash (n=%d, m=%d): %.0f checks/s live vs %.0f checks/s seed\n" n_nash m_nash
    (1000.0 *. float_of_int nash_checks /. nash_live_ms)
    (1000.0 *. float_of_int nash_checks /. nash_seed_ms);
  let out = Buffer.create 1024 in
  Buffer.add_string out "{\n";
  Buffer.add_string out "  \"schema\": \"bench-walk/2\",\n";
  Printf.bprintf out "  \"quick\": %b,\n" quick;
  Buffer.add_string out "  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun idx (name, n, m, work, d, s, i, ident) ->
      Printf.bprintf out
        "    {\"workload\": \"%s\", \"n\": %d, \"m\": %d, \"work\": %d, \"domains\": %d, \
         \"seed_ms\": %.3f, \"incremental_ms\": %.3f, \"speedup\": %.3f, \"identical\": %b}%s\n"
        name n m work d s i (s /. i) ident
        (if idx = last then "" else ","))
    rows;
  Buffer.add_string out "  ]\n";
  Buffer.add_string out "}\n";
  let path = Option.value (Sys.getenv_opt "BENCH_WALK_JSON") ~default:"BENCH_walk.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents out);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Mixed-layer benchmark: BENCH_mixed.json artefact                    *)

(* Old-vs-new exact expectation engine for the classical KP social
   cost E[max congestion].  [seed_expected_max_congestion] reimplements
   the seed semantics exactly as shipped — a View.sweep over all m^n
   realisations, each weighted by its product-measure probability —
   because the live [Congestion.expected_max_congestion] now rides the
   [Model.Load_dist] user-class DP over distinct load vectors.  Both
   engines run on the same instances and their exact rationals must be
   bit-identical before times are reported; instances whose m^n exceeds
   the seed's 10^6 realisation cap run the DP only and record the state
   count that made them feasible.  Writes schema bench-mixed/1 to
   BENCH_mixed.json or $BENCH_MIXED_JSON.  BENCH_MIXED_ONLY=1 runs just
   this section. *)
let seed_expected_max_congestion g p =
  let n = Game.users g and m = Game.links g in
  let caps = Game.capacity_row g 0 in
  let acc = ref Rational.zero in
  View.sweep g (fun v ->
      let prob = ref Rational.one in
      for i = 0 to n - 1 do
        prob := Rational.mul !prob p.(i).(View.link v i)
      done;
      if not (Rational.is_zero !prob) then begin
        let best = ref (Rational.div (View.load v 0) caps.(0)) in
        for l = 1 to m - 1 do
          best := Rational.max !best (Rational.div (View.load v l) caps.(l))
        done;
        acc := Rational.add !acc (Rational.mul !prob !best)
      end);
  !acc

let bench_mixed_json () =
  Report.heading "MIXED" "seed m^n enumerator vs load-distribution DP (emits BENCH_mixed.json)";
  let ms_of f =
    let us, _ = Scaling.time_call f in
    us /. 1000.0
  in
  let caps3 = [| Rational.one; Rational.two; Rational.of_int 3 |] in
  let uniform_kp n = Game.kp ~weights:(Array.make n Rational.one) ~capacities:caps3 in
  let two_class_kp n =
    Game.kp
      ~weights:(Array.init n (fun i -> if i < n / 2 then Rational.one else Rational.two))
      ~capacities:caps3
  in
  (* Three classes of distinct power-of-two weights: enough distinct
     load vectors that the DP frontier crosses the parallel-expansion
     threshold and the multi-core columns measure real sharding. *)
  let three_class_kp n =
    Game.kp
      ~weights:(Array.init n (fun i -> Rational.of_int (1 lsl (3 * i / n))))
      ~capacities:caps3
  in
  let domains = max 2 (min 8 (Parallel.available_domains ())) in
  (* (instance label, game, profile, m^n within the seed's cap?) *)
  let instances =
    [
      ("uniform_n12", uniform_kp 12, `Uniform, true);
      ("two_classes_n12", two_class_kp 12, `Uniform, true);
      ("uniform_n20", uniform_kp 20, `Uniform, false);
      ("uniform_n40", uniform_kp 40, `Uniform, false);
      ("three_classes_n24", three_class_kp 24, `Uniform, false);
    ]
  in
  let rows =
    List.map
      (fun (name, g, prof, seed_feasible) ->
        let p = match prof with `Uniform -> Mixed.uniform g in
        let dist = Load_dist.of_mixed g p in
        let dp_value = ref Rational.zero in
        let dp_ms = ms_of (fun () -> dp_value := Congestion.expected_max_congestion g p) in
        (* Wall clock for the sharded DP: CPU time would sum over
           domains and hide the parallel speedup. *)
        let dp_par_value = ref Rational.zero in
        let wall_ms_of f =
          f ();
          let start = Unix.gettimeofday () in
          f ();
          (Unix.gettimeofday () -. start) *. 1000.0
        in
        let dp_par_ms =
          wall_ms_of (fun () -> dp_par_value := Congestion.expected_max_congestion ~domains g p)
        in
        let par_identical = Rational.equal !dp_value !dp_par_value in
        let seed =
          if not seed_feasible then None
          else begin
            let seed_value = ref Rational.zero in
            let seed_ms = ms_of (fun () -> seed_value := seed_expected_max_congestion g p) in
            Some (seed_ms, Rational.equal !seed_value !dp_value)
          end
        in
        ( name,
          Game.users g,
          Game.links g,
          Load_dist.classes dist,
          Load_dist.size dist,
          dp_ms,
          (dp_par_ms, par_identical),
          seed,
          Rational.to_string !dp_value ))
      instances
  in
  let t =
    Stats.Table.create
      [ "instance"; "n"; "m"; "classes"; "states"; "seed ms"; "DP ms";
        Printf.sprintf "DP ms (%dd)" domains; "speedup"; "identical"; "par identical" ]
  in
  List.iter
    (fun (name, n, m, classes, states, dp_ms, (dp_par_ms, par_ident), seed, _) ->
      let seed_ms, speedup, identical =
        match seed with
        | Some (s, ident) -> (Report.flt s, Printf.sprintf "%.1fx" (s /. dp_ms), string_of_bool ident)
        | None -> ("beyond m^n cap", "n/a", "n/a")
      in
      Stats.Table.add_row t
        [
          name; string_of_int n; string_of_int m; string_of_int classes;
          string_of_int states; seed_ms; Report.flt dp_ms; Report.flt dp_par_ms; speedup;
          identical; string_of_bool par_ident;
        ])
    rows;
  Stats.Table.print t;
  let out = Buffer.create 1024 in
  Buffer.add_string out "{\n";
  Buffer.add_string out "  \"schema\": \"bench-mixed/2\",\n";
  Printf.bprintf out "  \"quick\": %b,\n" quick;
  Printf.bprintf out "  \"domains\": %d,\n" domains;
  Buffer.add_string out "  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun idx (name, n, m, classes, states, dp_ms, (dp_par_ms, par_ident), seed, value) ->
      let seed_ms, speedup, identical =
        match seed with
        | Some (s, ident) ->
          ( Printf.sprintf "%.3f" s,
            Printf.sprintf "%.3f" (s /. dp_ms),
            string_of_bool ident )
        | None -> ("null", "null", "null")
      in
      Printf.bprintf out
        "    {\"instance\": \"%s\", \"n\": %d, \"m\": %d, \"classes\": %d, \"states\": %d, \
         \"seed_ms\": %s, \"dp_ms\": %.3f, \"dp_par_ms\": %.3f, \"par_identical\": %b, \
         \"speedup\": %s, \"identical\": %s, \"exceeds_seed_limit\": %b, \"value\": \"%s\"}%s\n"
        name n m classes states seed_ms dp_ms dp_par_ms par_ident speedup identical (seed = None)
        value
        (if idx = last then "" else ","))
    rows;
  Buffer.add_string out "  ]\n";
  Buffer.add_string out "}\n";
  let path = Option.value (Sys.getenv_opt "BENCH_MIXED_JSON") ~default:"BENCH_mixed.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents out);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Class-layer benchmark: BENCH_class.json artefact                    *)

(* Exact equilibria at population scale.  The same k = 8, m = 4 class
   family is instantiated at n ≈ 10^3 and n ≈ 10^6 (per-class counts
   proportional to the class index); every per-class capacity row is a
   rational multiple of one common base vector, so block best-response
   dynamics ride a weighted potential and must converge.  Each row
   times [Algo.Cbr.converge] from the proportional start and
   [Model.Cview.is_nash] on the result — both poly(k, m), so the two
   sizes should cost the same — and at the small size the verdict is
   cross-checked against the per-user [Pure.is_nash] on the expanded
   game.  Writes schema bench-class/1 to BENCH_class.json or
   $BENCH_CLASS_JSON.  BENCH_CLASS_ONLY=1 runs just this section. *)
let bench_class_json () =
  Report.heading "CLASS" "exact equilibria for millions of users (emits BENCH_class.json)";
  let ms_of f =
    let us, _ = Scaling.time_call f in
    us /. 1000.0
  in
  let k = 8 and m = 4 in
  let base = [| Rational.of_int 5; Rational.of_int 4; Rational.of_int 3; Rational.two |] in
  let class_game per_class =
    (* counts proportional to c+1, weights 1..k, rows (c+2)/2 · base *)
    let counts = Array.init k (fun c -> per_class * (c + 1)) in
    let weights = Array.init k (fun c -> Rational.of_int (c + 1)) in
    let caps =
      Array.init k (fun c ->
          Array.map (fun b -> Rational.mul (Rational.of_ints (c + 2) 2) b) base)
    in
    Cgame.of_capacities ~counts ~weights caps
  in
  let sizes = [ ("k8_m4_small", 28); ("k8_m4_million", 27_778) ] in
  let rows =
    List.map
      (fun (name, per_class) ->
        let g = class_game per_class in
        let n = Cgame.users g in
        let start = Algo.Cbr.proportional_start g in
        let o = Algo.Cbr.converge g start in
        if not o.Algo.Cbr.converged then
          failwith "bench_class: dynamics did not converge on a potential game";
        let v = Cview.of_profile g o.Algo.Cbr.profile in
        let nash = Cview.is_nash v in
        let converge_ms = ms_of (fun () -> ignore (Algo.Cbr.converge g start)) in
        let is_nash_us, _ = Scaling.time_call (fun () -> ignore (Cview.is_nash v)) in
        let expand_agrees =
          if n > 2_000 then None
          else
            let eg = Cgame.expand g in
            let ep = Cgame.expand_profile g o.Algo.Cbr.profile in
            Some (Pure.is_nash eg ep = nash)
        in
        (name, n, o.Algo.Cbr.steps, o.Algo.Cbr.users_moved, converge_ms, is_nash_us, nash,
         expand_agrees))
      sizes
  in
  let t =
    Stats.Table.create
      [ "instance"; "n"; "k"; "m"; "steps"; "users moved"; "converge ms"; "is_nash µs";
        "nash"; "per-user agrees" ]
  in
  List.iter
    (fun (name, n, steps, moved, converge_ms, is_nash_us, nash, agrees) ->
      Stats.Table.add_row t
        [
          name; string_of_int n; string_of_int k; string_of_int m; string_of_int steps;
          string_of_int moved; Report.flt converge_ms; Report.flt is_nash_us;
          string_of_bool nash;
          (match agrees with Some b -> string_of_bool b | None -> "skipped (n large)");
        ])
    rows;
  Stats.Table.print t;
  let ratio small big = if small > 0.0 then big /. small else 0.0 in
  let pick f = match rows with [ s; b ] -> ratio (f s) (f b) | _ -> 0.0 in
  let is_nash_ratio = pick (fun (_, _, _, _, _, us, _, _) -> us) in
  let converge_ratio = pick (fun (_, _, _, _, ms, _, _, _) -> ms) in
  Printf.printf "cost flatness across 1000x population growth: is_nash %.2fx, converge %.2fx\n"
    is_nash_ratio converge_ratio;
  let out = Buffer.create 1024 in
  Buffer.add_string out "{\n";
  Buffer.add_string out "  \"schema\": \"bench-class/1\",\n";
  Printf.bprintf out "  \"quick\": %b,\n" quick;
  Buffer.add_string out "  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun idx (name, n, steps, moved, converge_ms, is_nash_us, nash, agrees) ->
      Printf.bprintf out
        "    {\"instance\": \"%s\", \"n\": %d, \"k\": %d, \"m\": %d, \"steps\": %d, \
         \"users_moved\": %d, \"converge_ms\": %.4f, \"is_nash_us\": %.3f, \
         \"converged\": true, \"nash\": %b, \"expand_agrees\": %s}%s\n"
        name n k m steps moved converge_ms is_nash_us nash
        (match agrees with Some b -> string_of_bool b | None -> "null")
        (if idx = last then "" else ","))
    rows;
  Buffer.add_string out "  ],\n";
  Printf.bprintf out
    "  \"flatness\": {\"is_nash_ratio\": %.3f, \"converge_ratio\": %.3f}\n"
    is_nash_ratio converge_ratio;
  Buffer.add_string out "}\n";
  let path = Option.value (Sys.getenv_opt "BENCH_CLASS_JSON") ~default:"BENCH_class.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents out);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Price-of-ignorance benchmark: BENCH_ignorance.json artefact         *)

(* Four populations — informed Bayesian, misinformed Bayesian, robust
   Strict and Bernoulli Participation — play shared sampled instances;
   every equilibrium is priced under the true capacities (see
   Experiments.Ignorance).  All arithmetic is exact, so the rows are
   bit-identical across runs and domain counts; the JSON records the
   exact ratios.  Writes schema bench-ignorance/1 to
   BENCH_ignorance.json or $BENCH_IGNORANCE_JSON.  BENCH_IGNORANCE_ONLY=1
   runs just this section. *)
let bench_ignorance_json () =
  Report.heading "IGNORANCE"
    "price of ignorance across uncertainty backends (emits BENCH_ignorance.json)";
  let presences = Rational.[ one; of_ints 3 4; of_ints 1 2; of_ints 1 4 ] in
  let t = trials 40 in
  let rows = Ignorance.run ~seed:2006 ~n:4 ~m:2 ~states:3 ~presences ~trials:t () in
  Stats.Table.print (Ignorance.table rows);
  let out = Buffer.create 1024 in
  Buffer.add_string out "{\n";
  Buffer.add_string out "  \"schema\": \"bench-ignorance/1\",\n";
  Printf.bprintf out "  \"quick\": %b,\n" quick;
  Buffer.add_string out "  \"results\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun idx (r : Ignorance.row) ->
      Printf.bprintf out
        "    {\"presence\": \"%s\", \"trials\": %d, \"informed_ratio\": %.6f, \
         \"misinformed_ratio\": %.6f, \"robust_ratio\": %.6f, \"demand_gain\": %.6f, \
         \"expected_congestion\": %.6f, \"equilibrium_failures\": %d}%s\n"
        (Rational.to_string r.presence)
        r.trials r.informed_ratio r.misinformed_ratio r.robust_ratio r.demand_gain
        r.expected_congestion r.equilibrium_failures
        (if idx = last then "" else ","))
    rows;
  Buffer.add_string out "  ]\n";
  Buffer.add_string out "}\n";
  let path =
    Option.value (Sys.getenv_opt "BENCH_IGNORANCE_JSON") ~default:"BENCH_ignorance.json"
  in
  let oc = open_out path in
  output_string oc (Buffer.contents out);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Streaming-repair benchmark: BENCH_serve.json artefact               *)

(* A rolling 10^5-user class game absorbs a deterministic mutation
   stream (arrivals, departures, reweights, whole-row capacity
   rescalings); after every batch the equilibrium is repaired in place
   by [Serve.Repair.repair_batch] AND re-solved from scratch
   ([Cview.to_cgame] + proportional start + [Algo.Cbr.converge] +
   [Cview.is_nash]), and both verdicts must agree — the headline is
   the repair-vs-resolve wall-clock ratio and the sustained
   mutations/sec.  Capacity revisions rescale a class's whole row, so
   every row stays a rational multiple of one common base vector and
   block best-response dynamics keep their weighted potential.  Each
   side is timed single-shot per batch (repair mutates the view, so it
   cannot be replayed) and aggregated over the stream.  Writes schema
   bench-serve/1 to BENCH_serve.json or $BENCH_SERVE_JSON.
   BENCH_SERVE_ONLY=1 runs just this section. *)
let bench_serve_json () =
  Report.heading "SERVE"
    "incremental repair vs re-solve under mutation streams (emits BENCH_serve.json)";
  (* All weights carry denominator 4 so the view's packed lane survives
     reweights (the packing scale is the lcm of weight denominators and
     is fixed at view creation); all capacity rows are rational
     multiples of one [base] vector, so block best response rides a
     weighted potential and Cbr converges on both sides. *)
  let k = 96 and m = 8 in
  let base = Array.init m (fun l -> Rational.of_int (m + 1 - l)) in
  let counts = Array.init k (fun _ -> 1050) in
  let weights = Array.init k (fun c -> Rational.of_ints ((4 * ((c mod 16) + 1)) + 1) 4) in
  let row_scale c = Rational.of_ints ((c mod 5) + 2) 2 in
  let caps = Array.init k (fun c -> Array.map (Rational.mul (row_scale c)) base) in
  let g = Cgame.of_capacities ~counts ~weights caps in
  let users_initial = Cgame.users g in
  let o = Algo.Cbr.converge g (Algo.Cbr.proportional_start g) in
  if not o.Algo.Cbr.converged then failwith "bench_serve: initial solve did not converge";
  let v = Cview.of_profile g o.Algo.Cbr.profile in
  let rng = Prng.Rng.create 2006 in
  let batches = if quick then 40 else 200 in
  let cur_users () =
    let t = ref 0 in
    for c = 0 to k - 1 do
      t := !t + Cview.class_count v c
    done;
    !t
  in
  (* The stream is generated against the live view so departures always
     name an occupied link and never empty a class; when the rolling
     population touches the 10^5 floor the next batch is forced to be
     an arrival. *)
  let gen_batch () =
    let kind = if cur_users () <= 100_100 then 0 else Prng.Rng.int rng 4 in
    match kind with
    | 0 ->
      let cls = Prng.Rng.int rng k and link = Prng.Rng.int rng m in
      [ Serve.Mutation.Arrive { cls; link; count = 1 + Prng.Rng.int rng 8 } ]
    | 1 ->
      let cls = Prng.Rng.int rng k in
      let off = Prng.Rng.int rng m in
      let link = ref (-1) in
      for i = 0 to m - 1 do
        let l = (off + i) mod m in
        if !link < 0 && Cview.assigned v cls l > 0 then link := l
      done;
      let l = !link in
      let avail = min (Cview.assigned v cls l) (Cview.class_count v cls - 1) in
      let avail = min avail 8 in
      if avail <= 0 then [ Serve.Mutation.Arrive { cls; link = l; count = 1 } ]
      else [ Serve.Mutation.Depart { cls; link = l; count = 1 + Prng.Rng.int rng avail } ]
    | 2 ->
      (* bounded nudge: the class keeps its magnitude (base + r/4 for
         r in {1..3}) and the denominator keeps dividing the packing
         scale, so the fast lane survives *)
      let cls = Prng.Rng.int rng k in
      let b = (cls mod 16) + 1 in
      [ Serve.Mutation.Reweight
          { cls; weight = Rational.of_ints ((4 * b) + 1 + Prng.Rng.int rng 3) 4 } ]
    | _ ->
      (* rescale the whole row by a factor in [3/4, 5/4]: rows stay
         proportional to [base] *)
      let cls = Prng.Rng.int rng k in
      let scale =
        Rational.mul (row_scale cls) (Rational.of_ints (6 + Prng.Rng.int rng 5) 8)
      in
      List.init m (fun link ->
          Serve.Mutation.Revise_capacity { cls; link; cap = Rational.mul scale base.(link) })
  in
  let repair_total = ref 0.0 and resolve_total = ref 0.0 in
  let total_mutations = ref 0 and repair_moves = ref 0 and repair_users_moved = ref 0 in
  let fallbacks = ref 0 and resolve_steps = ref 0 in
  let min_users = ref (cur_users ()) and max_users = ref (cur_users ()) in
  let verdicts_ok = ref true in
  for _b = 1 to batches do
    let batch = gen_batch () in
    total_mutations := !total_mutations + List.length batch;
    let t0 = Unix.gettimeofday () in
    let r = Serve.Repair.repair_batch v batch in
    let t1 = Unix.gettimeofday () in
    repair_total := !repair_total +. (t1 -. t0);
    repair_moves := !repair_moves + r.Serve.Repair.moves;
    repair_users_moved := !repair_users_moved + r.Serve.Repair.users_moved;
    if r.Serve.Repair.fallback then incr fallbacks;
    let t2 = Unix.gettimeofday () in
    let g' = Cview.to_cgame v in
    let o' = Algo.Cbr.converge g' (Algo.Cbr.proportional_start g') in
    let rv = Cview.of_profile g' o'.Algo.Cbr.profile in
    let nash' = o'.Algo.Cbr.converged && Cview.is_nash rv in
    let t3 = Unix.gettimeofday () in
    resolve_total := !resolve_total +. (t3 -. t2);
    resolve_steps := !resolve_steps + o'.Algo.Cbr.steps;
    if not (r.Serve.Repair.nash && nash') then verdicts_ok := false;
    let u = cur_users () in
    if u < !min_users then min_users := u;
    if u > !max_users then max_users := u
  done;
  if not !verdicts_ok then failwith "bench_serve: repair and re-solve verdicts diverged";
  let speedup = if !repair_total > 0.0 then !resolve_total /. !repair_total else 0.0 in
  let mutations_per_sec =
    if !repair_total > 0.0 then float_of_int !total_mutations /. !repair_total else 0.0
  in
  let t =
    Stats.Table.create
      [ "batches"; "mutations"; "repair ms"; "resolve ms"; "speedup"; "mutations/s";
        "repair moves"; "fallbacks"; "users min..max" ]
  in
  Stats.Table.add_row t
    [
      string_of_int batches; string_of_int !total_mutations;
      Report.flt (!repair_total *. 1000.0); Report.flt (!resolve_total *. 1000.0);
      Report.flt speedup; Report.flt mutations_per_sec; string_of_int !repair_moves;
      string_of_int !fallbacks; Printf.sprintf "%d..%d" !min_users !max_users;
    ];
  Stats.Table.print t;
  Printf.printf "repair-vs-resolve speedup over %d batches: %.1fx (verdicts identical: %b)\n"
    batches speedup !verdicts_ok;
  let out = Buffer.create 1024 in
  Buffer.add_string out "{\n";
  Buffer.add_string out "  \"schema\": \"bench-serve/1\",\n";
  Printf.bprintf out "  \"quick\": %b,\n" quick;
  Printf.bprintf out "  \"instance\": {\"k\": %d, \"m\": %d, \"users_initial\": %d},\n" k m
    users_initial;
  Printf.bprintf out "  \"batches\": %d,\n" batches;
  Printf.bprintf out "  \"mutations\": %d,\n" !total_mutations;
  Printf.bprintf out "  \"repair_ms\": %.4f,\n" (!repair_total *. 1000.0);
  Printf.bprintf out "  \"resolve_ms\": %.4f,\n" (!resolve_total *. 1000.0);
  Printf.bprintf out "  \"speedup\": %.3f,\n" speedup;
  Printf.bprintf out "  \"mutations_per_sec\": %.1f,\n" mutations_per_sec;
  Printf.bprintf out "  \"repair_moves\": %d,\n" !repair_moves;
  Printf.bprintf out "  \"repair_users_moved\": %d,\n" !repair_users_moved;
  Printf.bprintf out "  \"fallbacks\": %d,\n" !fallbacks;
  Printf.bprintf out "  \"resolve_steps\": %d,\n" !resolve_steps;
  Printf.bprintf out "  \"users\": {\"min\": %d, \"max\": %d, \"final\": %d},\n" !min_users
    !max_users (cur_users ());
  Printf.bprintf out "  \"verdicts_identical\": %b\n" !verdicts_ok;
  Buffer.add_string out "}\n";
  let path = Option.value (Sys.getenv_opt "BENCH_SERVE_JSON") ~default:"BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents out);
  close_out oc;
  Printf.printf "wrote %s\n" path

let main () =
  Printf.printf "Network Uncertainty in Selfish Routing — reproduction harness%s\n"
    (if quick then " (QUICK mode)" else "");
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8_to_e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ();
  e20 ();
  figures ();
  ablations ();
  bechamel_section ();
  bench_numeric_json ();
  bench_engine_json ();
  bench_walk_json ();
  bench_mixed_json ();
  bench_class_json ();
  bench_ignorance_json ();
  bench_serve_json ();
  print_endline "\nAll experiment tables regenerated. See EXPERIMENTS.md for the paper-vs-measured record."

let () =
  if Sys.getenv_opt "BENCH_NUMERIC_ONLY" <> None then bench_numeric_json ()
  else if Sys.getenv_opt "BENCH_ENGINE_ONLY" <> None then bench_engine_json ()
  else if Sys.getenv_opt "BENCH_WALK_ONLY" <> None then bench_walk_json ()
  else if Sys.getenv_opt "BENCH_MIXED_ONLY" <> None then bench_mixed_json ()
  else if Sys.getenv_opt "BENCH_CLASS_ONLY" <> None then bench_class_json ()
  else if Sys.getenv_opt "BENCH_IGNORANCE_ONLY" <> None then bench_ignorance_json ()
  else if Sys.getenv_opt "BENCH_SERVE_ONLY" <> None then bench_serve_json ()
  else main ()
