(* Tests for the sharded experiment engine: the determinism contract
   (bit-identical output for any domain count), task-order results and
   folds, and the per-task seed-derivation scheme.  Driver results are
   compared with [compare] rather than [=] because rows can contain NaN
   fields (e.g. mean over zero converged trials). *)

open Experiments

(* The engine determinism contract, checked end to end: [runs d] must
   produce bit-identical output for d ∈ {1, 2, 5}. *)
let check_domains name runs =
  let reference = runs 1 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: domains=%d equals serial" name domains)
        true
        (compare reference (runs domains) = 0))
    [ 2; 5 ]

(* --- engine primitives ------------------------------------------------ *)

let test_map_tasks_order () =
  List.iter
    (fun domains ->
      let out = Engine.map_tasks ~domains ~seed:1 ~tasks:23 (fun _rng i -> 3 * i) in
      Alcotest.(check (array int)) (Printf.sprintf "domains=%d" domains)
        (Array.init 23 (fun i -> 3 * i))
        out)
    [ 1; 2; 5 ]

let test_map_tasks_rng_by_index () =
  (* The stream a task sees depends only on (seed, salt, offset+index),
     never on the domain count. *)
  let draws ~domains ~salt ~offset =
    Engine.map_tasks ~domains ~seed:7 ~salt ~offset ~tasks:6 (fun rng _ -> Prng.Rng.bits64 rng)
  in
  Alcotest.(check bool) "domain count does not change streams" true
    (draws ~domains:1 ~salt:0 ~offset:0 = draws ~domains:4 ~salt:0 ~offset:0);
  Alcotest.(check bool) "offset shifts the stream table" true
    (Array.sub (draws ~domains:1 ~salt:0 ~offset:0) 2 4
    = Array.sub (draws ~domains:1 ~salt:0 ~offset:2) 0 4);
  Alcotest.(check bool) "salt separates task families" true
    (draws ~domains:1 ~salt:0 ~offset:0 <> draws ~domains:1 ~salt:1 ~offset:0);
  (* Matches the documented derivation exactly. *)
  let direct = Array.init 6 (fun i -> Prng.Rng.bits64 (Prng.Rng.of_path 7 [ 0; i ])) in
  Alcotest.(check bool) "rng is of_path seed [salt; offset+i]" true
    (direct = draws ~domains:1 ~salt:0 ~offset:0)

let test_fold_tasks_serial_order () =
  (* A non-commutative combine: the fold must follow task order for
     every domain count. *)
  let run domains =
    Engine.fold_tasks ~domains ~seed:3 ~tasks:26
      ~task:(fun _rng i -> String.make 1 (Char.chr (Char.code 'a' + i)))
      ~init:"" ~combine:( ^ ) ()
  in
  Alcotest.(check string) "serial fold" "abcdefghijklmnopqrstuvwxyz" (run 1);
  check_domains "fold_tasks" run

let test_sweep_cell_rows () =
  let run domains =
    Engine.sweep ~domains ~seed:5 ~cells:[ 10; 20; 30 ] ~trials:4
      ~task:(fun cell rng t -> (cell, t, Prng.Rng.bits64 rng))
      ~reduce:(fun cell results -> (cell, Array.to_list results))
  in
  (match run 1 with
   | [ (10, r0); (20, _); (30, _) ] ->
     List.iteri
       (fun t (cell, trial, _) ->
         Alcotest.(check int) "cell threaded" 10 cell;
         Alcotest.(check int) "trial order" t trial)
       r0
   | _ -> Alcotest.fail "expected three rows in cell order");
  check_domains "sweep" run

let test_engine_domains_override () =
  (* ENGINE_DOMAINS overrides valid positive values and ignores junk.
     [Unix.putenv] mutates this process's environment — restore it. *)
  let original = Sys.getenv_opt "ENGINE_DOMAINS" in
  let with_env value f =
    Unix.putenv "ENGINE_DOMAINS" value;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "ENGINE_DOMAINS" (Option.value original ~default:""))
      f
  in
  with_env "3" (fun () ->
      Alcotest.(check int) "override wins" 3 (Engine.effective_domains 1));
  with_env "0" (fun () ->
      Alcotest.(check int) "non-positive ignored" 4 (Engine.effective_domains 4));
  with_env "junk" (fun () ->
      Alcotest.(check int) "junk ignored" 4 (Engine.effective_domains 4));
  with_env "" (fun () ->
      Alcotest.(check int) "empty ignored" 4 (Engine.effective_domains 4))

(* --- every refactored driver, bit-identical across domain counts ------ *)

let test_cycles_deterministic () =
  check_domains "cycles" (fun domains ->
      Cycles.run ~domains ~seed:3 ~ns:[ 3 ] ~ms:[ 2 ] ~trials:6
        ~weights:(Generators.Integer_weights 4)
        ~beliefs:(Generators.Private_point { cap_bound = 6 })
        ())

let test_existence_deterministic () =
  check_domains "existence" (fun domains ->
      Existence.run ~domains ~seed:11 ~ns:[ 2; 3 ] ~ms:[ 2 ] ~trials:6
        ~weights:(Generators.Integer_weights 4)
        ~beliefs:(Generators.Shared_space { states = 2; cap_bound = 4; grain = 3 })
        ())

let test_robustness_deterministic () =
  let epsilons = [ Numeric.Rational.zero; Numeric.Rational.of_ints 1 2 ] in
  check_domains "robustness" (fun domains ->
      Robustness.run ~domains ~seed:5 ~n:3 ~m:2 ~states:2 ~epsilons ~trials:6 ())

let test_monte_carlo_deterministic () =
  check_domains "monte_carlo" (fun domains ->
      Monte_carlo.run ~domains ~seed:23 ~samples_list:[ 50; 100 ] ~trials:2 ())

let test_poa_exp_deterministic () =
  check_domains "poa_exp" (fun domains ->
      Poa_exp.run ~domains ~seed:13 ~ns:[ 2; 3 ] ~ms:[ 2 ] ~trials:5
        ~weights:(Generators.Integer_weights 4)
        ~beliefs:(Generators.Shared_space { states = 2; cap_bound = 4; grain = 3 })
        ~bound:`General ())

let test_learning_deterministic () =
  check_domains "learning" (fun domains ->
      Learning.run ~domains ~seed:3 ~n:3 ~m:2 ~states:2 ~observations:[ 0; 8 ] ~trials:5 ())

let suite =
  [
    ("map_tasks keeps task order", `Quick, test_map_tasks_order);
    ("map_tasks rng depends only on index", `Quick, test_map_tasks_rng_by_index);
    ("fold_tasks folds serially in task order", `Quick, test_fold_tasks_serial_order);
    ("sweep rows in cell order, trials threaded", `Quick, test_sweep_cell_rows);
    ("ENGINE_DOMAINS override", `Quick, test_engine_domains_override);
    ("cycles bit-identical across domains", `Slow, test_cycles_deterministic);
    ("existence bit-identical across domains", `Slow, test_existence_deterministic);
    ("robustness bit-identical across domains", `Slow, test_robustness_deterministic);
    ("monte_carlo bit-identical across domains", `Slow, test_monte_carlo_deterministic);
    ("poa_exp bit-identical across domains", `Slow, test_poa_exp_deterministic);
    ("learning bit-identical across domains", `Slow, test_learning_deterministic);
  ]

let () = Alcotest.run "engine" [ ("unit", suite) ]
