(* Tests for the fork–join layer: determinism across worker counts,
   ordering, exception propagation, and a real parallel sweep. *)

let prop name ?(count = 50) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let test_map_identity_scheduling () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "domains=%d" domains)
        expected
        (Parallel.map ~domains (fun x -> x * x) xs))
    [ 1; 2; 3; 8; 200 ]

let test_map_empty () =
  Alcotest.(check (list int)) "empty list" [] (Parallel.map ~domains:4 (fun x -> x) []);
  Alcotest.(check int) "empty array" 0 (Array.length (Parallel.map_array ~domains:4 Fun.id [||]))

let test_map_array_order () =
  let xs = Array.init 37 string_of_int in
  let out = Parallel.map_array ~domains:4 (fun s -> s ^ "!") xs in
  Array.iteri
    (fun i s -> Alcotest.(check string) "order kept" (string_of_int i ^ "!") s)
    out

let test_invalid_domains () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Parallel: domains must be positive")
    (fun () -> ignore (Parallel.map ~domains:0 Fun.id [ 1 ]))

let test_exception_propagates () =
  let boom = Failure "worker exploded" in
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "domains=%d" domains)
        boom
        (fun () ->
          ignore (Parallel.map ~domains (fun x -> if x = 41 then raise boom else x) (List.init 64 Fun.id))))
    [ 1; 4 ]

let test_map_array_more_domains_than_elements () =
  (* workers is clamped to [len], so oversubscription must change
     neither the result nor its order — and repeated runs must agree. *)
  let xs = Array.init 7 (fun i -> i * 3) in
  let serial = Array.map (fun x -> x + 1) xs in
  List.iter
    (fun domains ->
      let once = Parallel.map_array ~domains (fun x -> x + 1) xs in
      let twice = Parallel.map_array ~domains (fun x -> x + 1) xs in
      Alcotest.(check (array int)) (Printf.sprintf "domains=%d result" domains) serial once;
      Alcotest.(check (array int)) (Printf.sprintf "domains=%d repeat" domains) once twice)
    [ 8; 64; 1000 ]

let test_exception_more_domains_than_elements () =
  let boom = Failure "oversubscribed worker exploded" in
  Alcotest.check_raises "domains=64 len=5" boom (fun () ->
      ignore
        (Parallel.map_array ~domains:64
           (fun x -> if x = 2 then raise boom else x)
           (Array.init 5 Fun.id)))

let test_first_failure_in_worker_order_wins () =
  (* With workers=4 over 64 interleaved indices, index 41 belongs to
     worker 1 and index 3 to worker 3.  The contract re-raises the first
     failure in *worker* order, so worker 1's exception must win even
     though index 3 fails "earlier" in array order — and every domain
     must have been joined before the re-raise, so the two clean workers
     (0 and 2) have finished all their indices by the time we catch. *)
  let len = 64 and workers = 4 in
  let processed = Array.make len false in
  let exn_a = Failure "index 3 (worker 3)" in
  let exn_b = Failure "index 41 (worker 1)" in
  (match
     Parallel.map_array ~domains:workers
       (fun i ->
         if i = 3 then raise exn_a
         else if i = 41 then raise exn_b
         else begin
           processed.(i) <- true;
           i
         end)
       (Array.init len Fun.id)
   with
   | _ -> Alcotest.fail "expected an exception"
   | exception e -> Alcotest.(check string) "worker 1 wins" (Printexc.to_string exn_b) (Printexc.to_string e));
  for i = 0 to len - 1 do
    if i mod workers = 0 || i mod workers = 2 then
      Alcotest.(check bool) (Printf.sprintf "clean worker finished index %d" i) true processed.(i)
  done

let test_oversubscribed_machine () =
  (* More domains than the machine has: results must not depend on how
     the runtime schedules the excess. *)
  let domains = 4 * Parallel.available_domains () in
  let xs = List.init ((2 * domains) + 3) Fun.id in
  Alcotest.(check (list int))
    (Printf.sprintf "domains=%d > available" domains)
    (List.map (fun x -> x * 7) xs)
    (Parallel.map ~domains (fun x -> x * 7) xs);
  Alcotest.(check int) "reduce oversubscribed"
    (List.fold_left ( + ) 0 xs)
    (Parallel.reduce ~domains ~neutral:0 ~combine:( + ) Fun.id xs)

let test_fork_join_direct () =
  Alcotest.(check (array int)) "worker order" [| 0; 10; 20; 30 |]
    (Parallel.fork_join ~workers:4 (fun w -> 10 * w));
  Alcotest.(check (array int)) "single worker" [| 7 |] (Parallel.fork_join ~workers:1 (fun _ -> 7));
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Parallel.fork_join: workers must be positive") (fun () ->
      ignore (Parallel.fork_join ~workers:0 (fun w -> w)))

(* Kept out-of-line so the worker's stack has a recognisable frame to
   carry through the nested re-raises. *)
let[@inline never] rec deep_boom n =
  if n = 0 then failwith "nested worker exploded" else 1 + deep_boom (n - 1)

let test_nested_fork_join_exception_backtrace () =
  (* A worker exception thrown inside an inner fork_join must cross
     BOTH joins — re-raised by the inner call on its worker domain,
     then again by the outer call — with the worker's backtrace, not
     the join loop's. *)
  let outer_saw = Array.make 2 false in
  let was_recording = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was_recording)
    (fun () ->
      match
        Parallel.fork_join ~workers:2 (fun w ->
            outer_saw.(w) <- true;
            if w = 1 then
              Array.fold_left ( + ) 0 (Parallel.fork_join ~workers:2 (fun u ->
                  if u = 1 then deep_boom 3 else 0))
            else 0)
      with
      | _ -> Alcotest.fail "expected the nested worker exception"
      | exception Failure msg ->
        let bt = Printexc.get_backtrace () in
        Alcotest.(check string) "inner worker failure surfaces" "nested worker exploded" msg;
        Alcotest.(check bool) "both outer workers ran" true (outer_saw.(0) && outer_saw.(1));
        Alcotest.(check bool) "backtrace survives double re-raise"
          true
          (String.length bt > 0
          && String.split_on_char '\n' bt
             |> List.exists (fun line ->
                    let has_frag frag =
                      let fl = String.length frag and ll = String.length line in
                      let rec scan i = i + fl <= ll && (String.sub line i fl = frag || scan (i + 1)) in
                      fl <= ll && scan 0
                    in
                    has_frag "deep_boom" || has_frag "test_parallel")))

(* ---------------------------------------------------------------- *)
(* Ownership sanitizer (SELFISH_OWNERSHIP)                           *)

module Ownership = Parallel.Ownership

(* Run [f] with the sanitizer forced to [enabled], restoring both the
   enable flag and the forgery hook afterwards. *)
let with_sanitizer enabled f =
  let saved_enabled = !Ownership.enabled and saved_forge = !Ownership.unsafe_forge in
  Ownership.enabled := enabled;
  Fun.protect
    ~finally:(fun () ->
      Ownership.enabled := saved_enabled;
      Ownership.unsafe_forge := saved_forge)
    f

let test_ownership_same_domain_passes () =
  with_sanitizer true (fun () ->
      let owner = Ownership.record () in
      Alcotest.(check int) "record is self" (Ownership.self_id ()) owner;
      Ownership.guard "test widget" owner (* must not raise *))

let test_ownership_violation_message () =
  with_sanitizer true (fun () ->
      Ownership.unsafe_forge := Some 4242;
      let owner = Ownership.record () in
      Alcotest.(check int) "forged owner recorded" 4242 owner;
      Alcotest.check_raises "cross-domain mutation pinned"
        (Ownership.Violation
           (Printf.sprintf "SELFISH_OWNERSHIP: test widget created on domain 4242 mutated from \
                            domain %d" (Ownership.self_id ())))
        (fun () -> Ownership.guard "test widget" owner))

let test_ownership_disabled_is_noop () =
  with_sanitizer false (fun () ->
      (* A blatantly foreign owner: no check runs when disabled. *)
      Ownership.guard "test widget" (-1))

let test_ownership_real_cross_domain () =
  (* Worker 0 of a fork-join runs in the calling domain and may touch
     the structure; worker 1 runs on a fresh domain and must trip the
     guard.  This exercises the sanitizer against real domains rather
     than the forgery hook. *)
  with_sanitizer true (fun () ->
      let owner = Ownership.record () in
      let verdicts =
        Parallel.map ~domains:2
          (fun w ->
            ignore w;
            match Ownership.guard "test widget" owner with
            | () -> false
            | exception Ownership.Violation _ -> true)
          [ 0; 1 ]
      in
      Alcotest.(check (list bool)) "only the spawned domain trips" [ false; true ] verdicts)

let test_reduce_non_commutative () =
  (* String concatenation is associative but not commutative: the fold
     order must match the serial one for every worker count. *)
  let xs = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
  let serial = String.concat "" xs in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "domains=%d" domains)
        serial
        (Parallel.reduce ~domains ~neutral:"" ~combine:( ^ ) Fun.id xs))
    [ 1; 2; 3; 7; 100 ]

let test_reduce_empty () =
  Alcotest.(check int) "neutral on empty" 42
    (Parallel.reduce ~domains:4 ~neutral:42 ~combine:( + ) Fun.id [])

let test_available_domains () =
  Alcotest.(check bool) "at least one" true (Parallel.available_domains () >= 1)

let test_existence_sweep_parallel_deterministic () =
  let run domains =
    Experiments.Existence.run ~domains ~seed:11 ~ns:[ 2; 3 ] ~ms:[ 2; 3 ] ~trials:5
      ~weights:(Experiments.Generators.Integer_weights 4)
      ~beliefs:(Experiments.Generators.Shared_space { states = 2; cap_bound = 4; grain = 3 })
      ()
  in
  Alcotest.(check bool) "serial equals parallel" true (run 1 = run 4)

let parallel_properties =
  [
    prop "map agrees with List.map for any worker count"
      QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 0 50) (int_bound 1000)))
      (fun (domains, xs) -> Parallel.map ~domains (fun x -> x + 1) xs = List.map (fun x -> x + 1) xs);
    prop "reduce agrees with fold_left for any worker count"
      QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 0 50) (int_bound 1000)))
      (fun (domains, xs) ->
        Parallel.reduce ~domains ~neutral:0 ~combine:( + ) (fun x -> 2 * x) xs
        = List.fold_left (fun acc x -> acc + (2 * x)) 0 xs);
  ]

let suite =
  [
    ("map identical across scheduling", `Quick, test_map_identity_scheduling);
    ("map empty", `Quick, test_map_empty);
    ("map_array keeps order", `Quick, test_map_array_order);
    ("invalid domains", `Quick, test_invalid_domains);
    ("exceptions propagate", `Quick, test_exception_propagates);
    ("map_array with more domains than elements", `Quick, test_map_array_more_domains_than_elements);
    ("exception with more domains than elements", `Quick, test_exception_more_domains_than_elements);
    ("first failure in worker order wins", `Quick, test_first_failure_in_worker_order_wins);
    ("oversubscribed beyond available_domains", `Quick, test_oversubscribed_machine);
    ("fork_join direct", `Quick, test_fork_join_direct);
    ("nested fork_join exception backtrace", `Quick, test_nested_fork_join_exception_backtrace);
    ("reduce non-commutative monoid", `Quick, test_reduce_non_commutative);
    ("reduce empty", `Quick, test_reduce_empty);
    ("available domains", `Quick, test_available_domains);
    ("existence sweep deterministic under parallelism", `Slow, test_existence_sweep_parallel_deterministic);
  ]

let ownership_suite =
  [
    ("same-domain mutation passes", `Quick, test_ownership_same_domain_passes);
    ("violation message via forgery hook", `Quick, test_ownership_violation_message);
    ("disabled sanitizer is a no-op", `Quick, test_ownership_disabled_is_noop);
    ("real cross-domain violation", `Quick, test_ownership_real_cross_domain);
  ]

let () =
  Alcotest.run "parallel"
    [ ("unit", suite); ("ownership", ownership_suite); ("properties", parallel_properties) ]
