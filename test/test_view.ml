(* Differential testing of the incremental evaluation core
   (Model.View) against recompute-from-scratch semantics.  [Seed]
   reimplements the pre-View evaluation path — every query
   re-materialises the loads with a full O(n) scan — and randomized
   move/undo sequences drive both in lockstep: after every operation
   the view's loads and latencies must equal the seed recompute, and
   periodic full checks compare [is_nash], [defectors],
   [improving_moves] and [best_response_for] for every user.  Episodes
   span KP (shared point beliefs), private point beliefs and
   heterogeneous shared-space beliefs, with and without non-zero
   initial traffic.

   The operation budget (>= 50_000 move/undo ops) is what ISSUE.md's
   differential-test acceptance gate refers to; shrink it only with a
   matching change there. *)

open Numeric
open Model
open Experiments
module Rng = Prng.Rng

let episodes = 1_200
let min_total_ops = 50_000

(* ------------------------------------------------------------------ *)
(* Seed reference: recompute everything from scratch on every query.   *)

module Seed = struct
  let loads g ?initial p =
    let t =
      match initial with
      | Some t -> Array.copy t
      | None -> Array.make (Game.links g) Rational.zero
    in
    Array.iteri (fun i l -> t.(l) <- Rational.add t.(l) (Game.weight g i)) p;
    t

  let latency g ?initial p i =
    let loads = loads g ?initial p in
    Rational.div loads.(p.(i)) (Game.capacity g i p.(i))

  let latency_on_link g ?initial p i l =
    let loads = loads g ?initial p in
    let load = if p.(i) = l then loads.(l) else Rational.add loads.(l) (Game.weight g i) in
    Rational.div load (Game.capacity g i l)

  let best_response g ?initial p i =
    let best_link = ref 0 and best = ref (latency_on_link g ?initial p i 0) in
    for l = 1 to Game.links g - 1 do
      let lat = latency_on_link g ?initial p i l in
      if Rational.compare lat !best < 0 then begin
        best_link := l;
        best := lat
      end
    done;
    (!best_link, !best)

  let improving_moves g ?initial p i =
    let current = latency g ?initial p i in
    let moves = ref [] in
    for l = Game.links g - 1 downto 0 do
      if l <> p.(i) && Rational.compare (latency_on_link g ?initial p i l) current < 0 then
        moves := l :: !moves
    done;
    !moves

  let is_defector g ?initial p i = improving_moves g ?initial p i <> []
  let defectors g ?initial p = List.filter (is_defector g ?initial p) (List.init (Array.length p) Fun.id)
  let is_nash g ?initial p = defectors g ?initial p = []
end

(* ------------------------------------------------------------------ *)
(* Random games across the three belief families                       *)

let random_game rng =
  let n = Rng.int_in rng 2 6 and m = Rng.int_in rng 2 4 in
  let weights =
    match Rng.int rng 3 with
    | 0 -> Generators.Unit_weights
    | 1 -> Generators.Integer_weights 5
    | _ -> Generators.Rational_weights 6
  in
  let beliefs =
    match Rng.int rng 3 with
    | 0 -> Generators.Shared_point { cap_bound = 6 } (* KP instance *)
    | 1 -> Generators.Private_point { cap_bound = 6 }
    | _ -> Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 }
  in
  Generators.game rng ~n ~m ~weights ~beliefs

let random_initial rng m =
  if Rng.bool rng then None
  else Some (Array.init m (fun _ -> Rng.rational rng ~den_bound:5))

(* ------------------------------------------------------------------ *)
(* Lockstep comparison                                                 *)

let check_state g ?initial v shadow =
  let m = Game.links g and n = Game.users g in
  let expected = Seed.loads g ?initial shadow in
  for l = 0 to m - 1 do
    if not (Rational.equal (View.load v l) expected.(l)) then
      Alcotest.failf "load(%d) diverged: view=%s seed=%s" l
        (Rational.to_string (View.load v l))
        (Rational.to_string expected.(l))
  done;
  for i = 0 to n - 1 do
    if View.link v i <> shadow.(i) then
      Alcotest.failf "link(%d) diverged: view=%d shadow=%d" i (View.link v i) shadow.(i);
    if not (Rational.equal (View.latency v i) (Seed.latency g ?initial shadow i)) then
      Alcotest.failf "latency(%d) diverged" i
  done

let check_predicates g ?initial v shadow =
  let n = Game.users g and m = Game.links g in
  if View.is_nash v <> Seed.is_nash g ?initial shadow then Alcotest.fail "is_nash diverged";
  let vd = View.defectors v and sd = Seed.defectors g ?initial shadow in
  if vd <> sd then Alcotest.fail "defectors diverged";
  (match View.first_and_last_defector v, sd with
   | None, [] -> ()
   | Some (first, last), (d0 :: _ as ds) ->
     if first <> d0 || last <> List.nth ds (List.length ds - 1) then
       Alcotest.fail "first_and_last_defector disagrees with defectors' ends"
   | Some _, [] | None, _ :: _ -> Alcotest.fail "first_and_last_defector presence diverged");
  for i = 0 to n - 1 do
    if View.improving_moves v i <> Seed.improving_moves g ?initial shadow i then
      Alcotest.failf "improving_moves(%d) diverged" i;
    let vl, vlat = View.best_response_for v i and sl, slat = Seed.best_response g ?initial shadow i in
    if vl <> sl || not (Rational.equal vlat slat) then
      Alcotest.failf "best_response_for(%d) diverged" i;
    for l = 0 to m - 1 do
      if
        not
          (Rational.equal (View.latency_on_link v i l) (Seed.latency_on_link g ?initial shadow i l))
      then Alcotest.failf "latency_on_link(%d,%d) diverged" i l
    done
  done

let test_move_undo_differential () =
  let rng = Rng.create 0x51EE7 in
  let total_ops = ref 0 in
  for _ = 1 to episodes do
    let g = random_game rng in
    let n = Game.users g and m = Game.links g in
    let initial = random_initial rng m in
    let origin = Array.init n (fun _ -> Rng.int rng m) in
    let v = View.of_profile g ?initial origin in
    let shadow = Array.copy origin in
    let stack = ref [] in
    let ops = 42 + Rng.int rng 12 in
    for op = 1 to ops do
      incr total_ops;
      (* Bias towards moves so the history grows, but exercise undo
         (including undo-of-a-no-op-move where l = old link). *)
      if Rng.int rng 3 = 0 && !stack <> [] then begin
        match !stack with
        | (i, old) :: rest ->
          View.undo v;
          shadow.(i) <- old;
          stack := rest
        | [] -> assert false
      end
      else begin
        let i = Rng.int rng n and l = Rng.int rng m in
        stack := (i, shadow.(i)) :: !stack;
        View.move v i l;
        shadow.(i) <- l
      end;
      if View.depth v <> List.length !stack then Alcotest.fail "history depth diverged";
      check_state g ?initial v shadow;
      if op mod 8 = 0 then check_predicates g ?initial v shadow
    done;
    check_predicates g ?initial v shadow;
    (* Unwind the whole history: the view must land exactly on the
       origin profile (exact rational add/sub round-trips). *)
    while View.depth v > 0 do
      match !stack with
      | (i, old) :: rest ->
        View.undo v;
        shadow.(i) <- old;
        stack := rest
      | [] -> assert false
    done;
    if not (Pure.equal (View.profile v) origin) then Alcotest.fail "undo did not restore origin";
    check_state g ?initial v origin
  done;
  if !total_ops < min_total_ops then
    Alcotest.failf "only %d move/undo ops executed (need >= %d)" !total_ops min_total_ops

(* ------------------------------------------------------------------ *)
(* Sweep order and invariants                                          *)

let test_sweep_matches_iter_profiles () =
  let rng = Rng.create 0x5EE9 in
  for _ = 1 to 60 do
    let n = Rng.int_in rng 2 4 and m = Rng.int_in rng 2 3 in
    let weights =
      if Rng.bool rng then Generators.Integer_weights 5 else Generators.Rational_weights 6
    in
    let beliefs =
      if Rng.bool rng then Generators.Private_point { cap_bound = 6 }
      else Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 }
    in
    let g = Generators.game rng ~n ~m ~weights ~beliefs in
    let initial = random_initial rng m in
    let reference = ref [] in
    Social.iter_profiles g (fun p -> reference := Array.copy p :: !reference);
    let swept = ref [] in
    View.sweep g ?initial (fun v ->
        (* A balanced move/undo inside the callback must not disturb
           the enumeration. *)
        if Rng.int rng 4 = 0 then begin
          View.move v (Rng.int rng n) (Rng.int rng m);
          View.undo v
        end;
        if View.depth v <> 0 then Alcotest.fail "sweep leaked history depth";
        check_state g ?initial v (View.profile v);
        swept := View.profile v :: !swept);
    let reference = List.rev !reference and swept = List.rev !swept in
    if List.length reference <> List.length swept then Alcotest.fail "sweep profile count diverged";
    List.iter2
      (fun a b -> if not (Pure.equal a b) then Alcotest.fail "sweep order diverged from iter_profiles")
      reference swept
  done

(* ------------------------------------------------------------------ *)
(* Two-lane agreement: the packed native-int lane and the exact
   big-rational lane must produce identical predicates and
   proportionally identical quantities.  Scaling every weight by 2^100
   leaves all equilibrium predicates invariant (latencies scale
   uniformly) but blows the packing bound, so the same instance can be
   evaluated on both lanes and compared. *)

let test_packed_lane_agreement () =
  let rng = Rng.create 0x9ACED in
  let k = Rational.of_bigint (Bigint.pow (Bigint.of_int 2) 100) in
  let packed_games = ref 0 in
  for _ = 1 to 150 do
    let g = random_game rng in
    match Game.packed_tables g with
    | None -> ()
    | Some _ ->
      incr packed_games;
      let n = Game.users g and m = Game.links g in
      let weights = Array.map (Rational.mul k) (Game.weights g) in
      let gx = Game.of_capacities ~weights (Game.capacity_matrix g) in
      for _ = 1 to 12 do
        let p = Array.init n (fun _ -> Rng.int rng m) in
        let v = View.of_profile g p and vx = View.of_profile gx p in
        if not (View.packed v) then Alcotest.fail "packable game built an exact view";
        if View.packed vx then Alcotest.fail "2^100-scaled game packed anyway";
        if View.is_nash v <> View.is_nash vx then Alcotest.fail "is_nash diverged across lanes";
        if View.defectors v <> View.defectors vx then
          Alcotest.fail "defectors diverged across lanes";
        for l = 0 to m - 1 do
          if not (Rational.equal (Rational.mul k (View.load v l)) (View.load vx l)) then
            Alcotest.failf "load(%d) not k-scaled across lanes" l
        done;
        for i = 0 to n - 1 do
          if View.improving_moves v i <> View.improving_moves vx i then
            Alcotest.failf "improving_moves(%d) diverged across lanes" i;
          let bl, blat = View.best_response_for v i in
          let xl, xlat = View.best_response_for vx i in
          if bl <> xl then Alcotest.failf "best_response_for(%d) link diverged across lanes" i;
          if not (Rational.equal (Rational.mul k blat) xlat) then
            Alcotest.failf "best_response_for(%d) latency not k-scaled" i;
          if not (Rational.equal (Rational.mul k (View.latency v i)) (View.latency vx i)) then
            Alcotest.failf "latency(%d) not k-scaled across lanes" i
        done
      done
  done;
  if !packed_games < 50 then
    Alcotest.failf "only %d of 150 random games packed (wanted >= 50)" !packed_games

let test_initial_spill_falls_back_exactly () =
  (* A packable game whose initial traffic cannot be rescaled into the
     native bound must spill to the exact lane and still agree with the
     seed recompute. *)
  let g =
    Game.kp
      ~weights:[| Rational.one; Rational.of_int 2; Rational.of_ints 1 2 |]
      ~capacities:[| Rational.one; Rational.of_ints 3 2 |]
  in
  let tiny = Rational.make Bigint.one (Bigint.pow (Bigint.of_int 2) 100) in
  let initial = [| tiny; Rational.zero |] in
  let p = [| 0; 1; 0 |] in
  let v = View.of_profile g ~initial p in
  if View.packed v then Alcotest.fail "2^-100 initial traffic packed anyway";
  check_state g ~initial v p;
  check_predicates g ~initial v p;
  (* The same profile without initial traffic packs. *)
  if not (View.packed (View.of_profile g p)) then Alcotest.fail "plain KP instance did not pack"

(* ------------------------------------------------------------------ *)
(* Parallel fold: sharded odometer folds must be bit-identical to the
   serial sweep for first-wins argmin reductions, at every domain
   count (1 = serial path, 2 and 5 = sharded; 5 typically exceeds the
   profile count of the smallest instances, exercising empty shards). *)

let test_fold_domains_bit_identity () =
  let rng = Rng.create 0xF01D in
  let argmin_fold ?initial ~domains g =
    View.fold ~domains ?initial g ~init:None
      ~f:(fun acc v ->
        let c = View.social_cost1 v in
        match acc with
        | Some (b, _) when Rational.compare b c <= 0 -> acc
        | _ -> Some (c, View.profile v))
      ~combine:(fun a b ->
        match a, b with
        | None, x | x, None -> x
        | Some (va, _), Some (vb, _) -> if Rational.compare va vb <= 0 then a else b)
  in
  for _ = 1 to 30 do
    let g = random_game rng in
    let initial = random_initial rng (Game.links g) in
    let count_serial =
      View.fold ?initial g ~init:0 ~f:(fun acc _ -> acc + 1) ~combine:( + )
    in
    (match Social.profile_count g with
     | Some c -> Alcotest.(check int) "fold visits every profile" c count_serial
     | None -> ());
    match argmin_fold ?initial ~domains:1 g with
    | None -> Alcotest.fail "serial fold on a non-empty game returned no argmin"
    | Some (vs, ps) ->
      List.iter
        (fun domains ->
          let count =
            View.fold ~domains ?initial g ~init:0 ~f:(fun acc _ -> acc + 1) ~combine:( + )
          in
          Alcotest.(check int)
            (Printf.sprintf "profile count at %d domains" domains)
            count_serial count;
          match argmin_fold ?initial ~domains g with
          | None -> Alcotest.failf "fold at %d domains returned no argmin" domains
          | Some (vp, pp) ->
            if not (Rational.equal vs vp) then
              Alcotest.failf "argmin value diverged at %d domains" domains;
            if not (Pure.equal ps pp) then
              Alcotest.failf "argmin profile diverged at %d domains (first-wins broken)" domains)
        [ 2; 5 ]
  done

let test_social_opt_domains_bit_identity () =
  let rng = Rng.create 0x50C1A1 in
  for _ = 1 to 15 do
    let g = random_game rng in
    let c1, p1 = Social.opt1 g in
    let c2, p2 = Social.opt2 g in
    List.iter
      (fun domains ->
        let c1', p1' = Social.opt1 ~domains g in
        let c2', p2' = Social.opt2 ~domains g in
        if not (Rational.equal c1 c1' && Pure.equal p1 p1') then
          Alcotest.failf "opt1 diverged at %d domains" domains;
        if not (Rational.equal c2 c2' && Pure.equal p2 p2') then
          Alcotest.failf "opt2 diverged at %d domains" domains)
      [ 2; 5 ]
  done

(* ------------------------------------------------------------------ *)
(* Guard rails                                                         *)

let test_validation () =
  let rng = Rng.create 0xFA11 in
  let g = random_game rng in
  let n = Game.users g and m = Game.links g in
  let p = Array.make n 0 in
  Alcotest.check_raises "short profile" (Invalid_argument
    "View.of_profile: profile length differs from user count")
    (fun () -> ignore (View.of_profile g (Array.make (n + 1) 0)));
  Alcotest.check_raises "link out of range" (Invalid_argument
    "View.of_profile: link out of range")
    (fun () -> ignore (View.of_profile g (Array.make n m)));
  Alcotest.check_raises "negative initial" (Invalid_argument
    "View.of_profile: negative initial traffic")
    (fun () ->
      ignore (View.of_profile g ~initial:(Array.make m (Rational.of_int (-1))) p));
  let v = View.of_profile g p in
  Alcotest.check_raises "undo on empty history" (Invalid_argument "View.undo: empty history")
    (fun () -> View.undo v);
  Alcotest.check_raises "move user out of range" (Invalid_argument "View.move: user out of range")
    (fun () -> View.move v n 0);
  Alcotest.check_raises "move link out of range" (Invalid_argument "View.move: link out of range")
    (fun () -> View.move v 0 m)

let test_ownership_guard () =
  (* Under SELFISH_OWNERSHIP, move/undo assert the calling domain is
     the creator.  The owner is forged through the test-only hook so a
     single-domain test can pin the exact failure message. *)
  let module O = Parallel.Ownership in
  let saved = !O.enabled in
  O.enabled := true;
  Fun.protect
    ~finally:(fun () -> O.enabled := saved)
    (fun () ->
      let rng = Rng.create 0x0FFE in
      let g = random_game rng in
      let p = Array.make (Game.users g) 0 in
      let v = View.of_profile g p in
      Alcotest.(check int) "owner is the creating domain" (O.self_id ()) (View.owner v);
      (* Same-domain mutation passes. *)
      View.move v 0 0;
      let expected =
        O.Violation
          (Printf.sprintf
             "SELFISH_OWNERSHIP: View cursor created on domain 12345 mutated from domain %d"
             (O.self_id ()))
      in
      View.unsafe_set_owner v 12345;
      Alcotest.check_raises "foreign-domain move trips the guard" expected (fun () ->
          View.move v 0 0);
      Alcotest.check_raises "foreign-domain undo trips the guard" expected (fun () ->
          View.undo v);
      (* Restoring the owner re-enables mutation; the guarded attempts
         above must not have corrupted the history. *)
      View.unsafe_set_owner v (O.self_id ());
      View.undo v;
      Alcotest.(check int) "history balanced after guarded attempts" 0 (View.depth v))

let () =
  Alcotest.run "view"
    [
      ( "incremental",
        [
          ("move/undo vs seed recompute", `Quick, test_move_undo_differential);
          ("sweep matches iter_profiles", `Quick, test_sweep_matches_iter_profiles);
          ("packed and exact lanes agree", `Quick, test_packed_lane_agreement);
          ("initial-traffic spill stays exact", `Quick, test_initial_spill_falls_back_exactly);
          ("fold is domain-count invariant", `Quick, test_fold_domains_bit_identity);
          ("opt1/opt2 are domain-count invariant", `Quick, test_social_opt_domains_bit_identity);
          ("validation and empty-history errors", `Quick, test_validation);
          ("ownership sanitizer guards move/undo", `Quick, test_ownership_guard);
        ] );
    ]
