(* Test entry point; no exported interface. *)
