(* Property tests for the shared combinatorics module
   (Numeric.Combinat): binomials against Pascal's rule, multinomials
   against the factorial ratio, composition enumeration against its
   closed-form count, and the overflow guard on native counts. *)

open Numeric

let check_big = Alcotest.testable Bigint.pp Bigint.equal

let test_choose_pascal () =
  (* C(n, k) = C(n-1, k-1) + C(n-1, k), edges C(n, 0) = C(n, n) = 1. *)
  for n = 1 to 40 do
    Alcotest.check check_big "left edge" Bigint.one (Combinat.choose n 0);
    Alcotest.check check_big "right edge" Bigint.one (Combinat.choose n n);
    for k = 1 to n - 1 do
      Alcotest.check check_big
        (Printf.sprintf "Pascal at (%d, %d)" n k)
        (Bigint.add (Combinat.choose (n - 1) (k - 1)) (Combinat.choose (n - 1) k))
        (Combinat.choose n k)
    done
  done;
  Alcotest.check check_big "out of range below" Bigint.zero (Combinat.choose 5 (-1));
  Alcotest.check check_big "out of range above" Bigint.zero (Combinat.choose 5 6);
  (* C(68, 34) overflows a native int but not a Bigint. *)
  Alcotest.check check_big "large binomial"
    (Bigint.of_string "28453041475240576740")
    (Combinat.choose 68 34)

let test_factorial () =
  let acc = ref Bigint.one in
  for n = 1 to 30 do
    acc := Bigint.mul !acc (Bigint.of_int n);
    Alcotest.check check_big (Printf.sprintf "%d!" n) !acc (Combinat.factorial n)
  done

(* multinomial = (Σ parts)! / Π parts! checked by cross-multiplication
   (no Bigint division needed). *)
let test_multinomial_factorial_ratio () =
  let rng = Prng.Rng.create 0xC0B1 in
  for _ = 1 to 500 do
    let k = Prng.Rng.int_in rng 1 4 in
    let parts = Array.init k (fun _ -> Prng.Rng.int rng 7) in
    let total = Array.fold_left ( + ) 0 parts in
    let denom =
      Array.fold_left (fun acc p -> Bigint.mul acc (Combinat.factorial p)) Bigint.one parts
    in
    Alcotest.check check_big "multinomial · Π parts! = total!"
      (Combinat.factorial total)
      (Bigint.mul (Combinat.multinomial parts) denom)
  done;
  Alcotest.check check_big "empty multinomial" Bigint.one (Combinat.multinomial [||]);
  Alcotest.check_raises "negative part"
    (Invalid_argument "Combinat.multinomial: negative part") (fun () ->
      ignore (Combinat.multinomial [| 2; -1 |]))

let test_compositions_enumeration () =
  (* iter_compositions must produce exactly [compositions] vectors, each
     summing to [total], in strictly increasing lexicographic order. *)
  for total = 0 to 7 do
    for parts = 1 to 4 do
      let seen = ref [] in
      Combinat.iter_compositions ~total ~parts (fun c ->
          Alcotest.(check int)
            (Printf.sprintf "parts length (total=%d, parts=%d)" total parts)
            parts (Array.length c);
          Alcotest.(check int) "composition sums to total" total (Array.fold_left ( + ) 0 c);
          Array.iter (fun e -> Alcotest.(check bool) "non-negative part" true (e >= 0)) c;
          seen := Array.copy c :: !seen);
      let seen = List.rev !seen in
      Alcotest.(check int)
        (Printf.sprintf "count = C(%d+%d-1, %d-1)" total parts parts)
        (Combinat.compositions_int ~total ~parts)
        (List.length seen);
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) ->
          compare (Array.to_list a) (Array.to_list b) < 0 (* lint: allow R1 — int lists *)
          && strictly_increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "lexicographic order, no duplicates" true (strictly_increasing seen)
    done
  done

let test_compositions_closed_form () =
  (* The count equals the stars-and-bars binomial. *)
  for total = 0 to 10 do
    for parts = 1 to 5 do
      Alcotest.check check_big "stars and bars"
        (Combinat.choose (total + parts - 1) (parts - 1))
        (Combinat.compositions ~total ~parts)
    done
  done

let test_compositions_int_overflow_guard () =
  (* C(10^6 + 15, 15) has ~90 digits: the native-count guard must trip
     with a message naming the overflow, not wrap silently. *)
  (match Combinat.compositions_int ~total:1_000_000 ~parts:16 with
  | exception Invalid_argument msg ->
    if
      not
        (let needle = "overflows" in
         let rec contains i =
           i + String.length needle <= String.length msg
           && (String.sub msg i (String.length needle) = needle || contains (i + 1))
         in
         contains 0)
    then Alcotest.failf "guard message %S does not mention overflow" msg
  | n -> Alcotest.failf "expected an overflow failure, got %d" n);
  (* Just inside the native range still works. *)
  Alcotest.(check int) "single part" 1 (Combinat.compositions_int ~total:1_000_000 ~parts:1);
  Alcotest.(check int) "two parts" 1_000_001 (Combinat.compositions_int ~total:1_000_000 ~parts:2)

let test_argument_guards () =
  Alcotest.check_raises "choose: negative n" (Invalid_argument "Combinat.choose: negative n")
    (fun () -> ignore (Combinat.choose (-1) 0));
  Alcotest.check_raises "factorial: negative"
    (Invalid_argument "Combinat.factorial: negative n") (fun () ->
      ignore (Combinat.factorial (-1)));
  Alcotest.check_raises "compositions: no parts"
    (Invalid_argument "Combinat.compositions: need at least one part") (fun () ->
      ignore (Combinat.compositions ~total:3 ~parts:0));
  Alcotest.check_raises "iter: negative total"
    (Invalid_argument "Combinat.iter_compositions: negative total") (fun () ->
      Combinat.iter_compositions ~total:(-1) ~parts:2 (fun _ -> ()))

let () =
  Alcotest.run "combinat"
    [
      ( "combinat",
        [
          Alcotest.test_case "binomials satisfy Pascal's rule" `Quick test_choose_pascal;
          Alcotest.test_case "factorials" `Quick test_factorial;
          Alcotest.test_case "multinomial = factorial ratio" `Quick
            test_multinomial_factorial_ratio;
          Alcotest.test_case "composition enumeration matches its count" `Quick
            test_compositions_enumeration;
          Alcotest.test_case "compositions closed form" `Quick test_compositions_closed_form;
          Alcotest.test_case "native count overflow guard" `Quick
            test_compositions_int_overflow_guard;
          Alcotest.test_case "argument guards" `Quick test_argument_guards;
        ] );
    ]
