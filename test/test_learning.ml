(* Tests for the learning extensions: belief estimation from samples,
   belief mixtures, fictitious play, and the E18 harness. *)

open Model
open Numeric

let q = Rational.of_ints
let qi = Rational.of_int
let check_q = Alcotest.testable Rational.pp Rational.equal

let prop name ?(count = 80) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

let space2 = State.space [ State.of_ints [| 2; 1 |]; State.of_ints [| 1; 3 |] ]

(* ------------------------------------------------------------------ *)
(* Belief.mixture                                                      *)

let test_mixture_endpoints () =
  let a = Belief.point space2 0 and b = Belief.point space2 1 in
  Alcotest.(check bool) "weight 0 keeps a" true
    (Belief.equal (Belief.mixture a b ~weight:Rational.zero) a);
  Alcotest.(check bool) "weight 1 gives b" true
    (Belief.equal (Belief.mixture a b ~weight:Rational.one) b);
  let mid = Belief.mixture a b ~weight:(q 1 2) in
  Alcotest.check check_q "even mixture" (q 1 2) (Belief.prob mid 0)

let test_mixture_validation () =
  let a = Belief.point space2 0 in
  let other = Belief.certain (State.of_ints [| 2; 1 |]) in
  Alcotest.check_raises "different spaces"
    (Invalid_argument "Belief.mixture: beliefs live on different spaces") (fun () ->
      ignore (Belief.mixture a other ~weight:(q 1 2)));
  Alcotest.check_raises "weight range" (Invalid_argument "Belief.mixture: weight outside [0, 1]")
    (fun () -> ignore (Belief.mixture a a ~weight:(qi 2)))

(* ------------------------------------------------------------------ *)
(* Belief.from_counts                                                  *)

let test_from_counts_empirical () =
  (* 3 observations of state 0, 1 of state 1, no smoothing. *)
  let b = Belief.from_counts space2 [| 3; 1 |] ~smoothing:Rational.zero in
  Alcotest.check check_q "p(φ1)" (q 3 4) (Belief.prob b 0);
  Alcotest.check check_q "p(φ2)" (q 1 4) (Belief.prob b 1)

let test_from_counts_smoothing () =
  (* Laplace smoothing: (0+1)/(4+2) and (4+1)/(4+2). *)
  let b = Belief.from_counts space2 [| 0; 4 |] ~smoothing:Rational.one in
  Alcotest.check check_q "smoothed zero count" (q 1 6) (Belief.prob b 0);
  Alcotest.check check_q "smoothed heavy count" (q 5 6) (Belief.prob b 1)

let test_from_counts_validation () =
  Alcotest.check_raises "no data" (Invalid_argument "Belief.from_counts: no observations and no smoothing")
    (fun () -> ignore (Belief.from_counts space2 [| 0; 0 |] ~smoothing:Rational.zero));
  Alcotest.check_raises "negative count" (Invalid_argument "Belief.from_counts: negative count")
    (fun () -> ignore (Belief.from_counts space2 [| -1; 2 |] ~smoothing:Rational.zero));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Belief.from_counts: one count per state required") (fun () ->
      ignore (Belief.from_counts space2 [| 1 |] ~smoothing:Rational.zero))

let from_counts_properties =
  [
    prop "estimated beliefs are valid distributions" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let counts = Array.init 2 (fun _ -> Prng.Rng.int rng 20) in
        let smoothing = Rational.of_ints (Prng.Rng.int_in rng 0 3) 1 in
        if Array.for_all (( = ) 0) counts && Rational.is_zero smoothing then true
        else begin
          let b = Belief.from_counts space2 counts ~smoothing in
          Qvec.is_distribution (Belief.probs b)
        end);
    prop "empirical belief converges to the sampling distribution" seed_gen (fun seed ->
        (* Draw many samples from a known distribution and check the
           total-variation distance is small. *)
        let rng = Prng.Rng.create seed in
        let truth = [| q 1 4; q 3 4 |] in
        let sampler = Prng.Alias.of_rationals truth in
        let counts = Array.make 2 0 in
        for _ = 1 to 4000 do
          let k = Prng.Alias.sample sampler rng in
          counts.(k) <- counts.(k) + 1
        done;
        let b = Belief.from_counts space2 counts ~smoothing:Rational.zero in
        let tv =
          Rational.to_float
            (Rational.abs (Rational.sub (Belief.prob b 0) truth.(0)))
        in
        tv < 0.05);
  ]

(* ------------------------------------------------------------------ *)
(* Belief.condition                                                    *)

let test_condition_posterior () =
  (* Prior (1/4, 1/4, 1/2) on a 3-state space; condition on {0, 2}:
     posterior (1/3, 0, 2/3). *)
  let sp =
    State.space [ State.of_ints [| 1; 1 |]; State.of_ints [| 2; 1 |]; State.of_ints [| 3; 1 |] ]
  in
  let b = Belief.make sp [| q 1 4; q 1 4; q 1 2 |] in
  let post = Belief.condition b ~event:(fun k -> k <> 1) in
  Alcotest.check check_q "p0" (q 1 3) (Belief.prob post 0);
  Alcotest.check check_q "p1" Rational.zero (Belief.prob post 1);
  Alcotest.check check_q "p2" (q 2 3) (Belief.prob post 2)

let test_condition_certain_event () =
  let b = Belief.uniform space2 in
  Alcotest.(check bool) "conditioning on everything is identity" true
    (Belief.equal b (Belief.condition b ~event:(fun _ -> true)))

let test_condition_null_event () =
  let b = Belief.point space2 0 in
  Alcotest.check_raises "null event"
    (Invalid_argument "Belief.condition: event has prior probability zero") (fun () ->
      ignore (Belief.condition b ~event:(fun k -> k = 1)))

let condition_properties =
  [
    prop "posteriors are valid distributions supported on the event" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let probs = Prng.Rng.positive_simplex rng ~dim:2 ~grain:5 in
        let b = Belief.make space2 probs in
        let keep = Prng.Rng.int rng 2 in
        let post = Belief.condition b ~event:(fun k -> k = keep) in
        Qvec.is_distribution (Belief.probs post)
        && Rational.equal (Belief.prob post keep) Rational.one);
  ]

(* ------------------------------------------------------------------ *)
(* Fictitious play                                                     *)

let test_fictitious_validation () =
  let g = Game.kp ~weights:[| qi 1; qi 1 |] ~capacities:[| qi 1; qi 2 |] in
  Alcotest.check_raises "rounds" (Invalid_argument "Fictitious.play: rounds must be positive")
    (fun () -> ignore (Algo.Fictitious.play g ~rounds:0 ~window:1 [| 0; 0 |]));
  Alcotest.check_raises "window" (Invalid_argument "Fictitious.play: window must be positive")
    (fun () -> ignore (Algo.Fictitious.play g ~rounds:10 ~window:0 [| 0; 0 |]))

let test_fictitious_stabilises_small () =
  let g = Game.kp ~weights:[| qi 2; qi 1 |] ~capacities:[| qi 2; qi 1 |] in
  let o = Algo.Fictitious.play g ~rounds:1000 ~window:5 [| 1; 0 |] in
  Alcotest.(check bool) "stabilised" true o.stabilised;
  Alcotest.(check bool) "at a pure NE" true (Pure.is_nash g o.last_profile)

let fictitious_properties =
  [
    prop "empirical frequencies are distributions" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
        let g =
          Experiments.Generators.game rng ~n ~m
            ~weights:(Experiments.Generators.Integer_weights 4)
            ~beliefs:(Experiments.Generators.Shared_space { states = 2; cap_bound = 5; grain = 3 })
        in
        let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
        let o = Algo.Fictitious.play g ~rounds:200 ~window:5 start in
        Array.for_all (fun row -> Qvec.is_distribution row) o.empirical);
    prop "stabilised play ends at a pure Nash equilibrium" seed_gen (fun seed ->
        let rng = Prng.Rng.create seed in
        let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
        let g =
          Experiments.Generators.game rng ~n ~m
            ~weights:(Experiments.Generators.Integer_weights 4)
            ~beliefs:(Experiments.Generators.Shared_space { states = 2; cap_bound = 5; grain = 3 })
        in
        let start = Array.init n (fun _ -> Prng.Rng.int rng m) in
        let o = Algo.Fictitious.play g ~rounds:2000 ~window:8 start in
        (not o.stabilised) || Pure.is_nash g o.last_profile);
  ]

(* ------------------------------------------------------------------ *)
(* E18 harness                                                         *)

let test_learning_rows () =
  let rows =
    Experiments.Learning.run ~seed:3 ~n:3 ~m:2 ~states:2 ~observations:[ 0; 64 ] ~trials:10 ()
  in
  match rows with
  | [ blind; informed ] ->
    Alcotest.(check bool) "belief error shrinks with data" true
      (informed.mean_belief_error < blind.mean_belief_error);
    Alcotest.(check bool) "ratios at least 1" true
      (blind.mean_ratio >= 1.0 -. 1e-9 && informed.mean_ratio >= 1.0 -. 1e-9)
  | _ -> Alcotest.fail "expected two rows"

let suite =
  [
    ("mixture endpoints", `Quick, test_mixture_endpoints);
    ("mixture validation", `Quick, test_mixture_validation);
    ("from_counts empirical", `Quick, test_from_counts_empirical);
    ("from_counts smoothing", `Quick, test_from_counts_smoothing);
    ("from_counts validation", `Quick, test_from_counts_validation);
    ("condition posterior", `Quick, test_condition_posterior);
    ("condition certain event", `Quick, test_condition_certain_event);
    ("condition null event", `Quick, test_condition_null_event);
    ("fictitious validation", `Quick, test_fictitious_validation);
    ("fictitious stabilises on a small game", `Quick, test_fictitious_stabilises_small);
    ("learning rows", `Slow, test_learning_rows);
  ]

let () =
  Alcotest.run "learning"
    [
      ("unit", suite);
      ("estimation", from_counts_properties);
      ("conditioning", condition_properties);
      ("fictitious", fictitious_properties);
    ]
