(* Differential harness for the class-compressed layer.

   Every class-level quantity must be BIT-IDENTICAL to its per-user
   counterpart through the compress/expand bridge: exact rational
   arithmetic makes re-associated sums canonical, so the class layer is
   not an approximation of the per-user layer but a re-grouping of the
   same computation.  The harness runs tens of thousands of randomized
   games (n ≤ 12) across all belief kinds — KP (shared certain
   capacities), point beliefs (per-user certain rows) and heterogeneous
   beliefs over shared state spaces — and compares:

     - compress/expand round trips (weights, capacity rows, counts)
     - pure-profile loads, latencies, is_nash, SC1/SC2 (Cview vs Pure)
     - the first-defector best-response step (Cview vs Best_response)
     - maximal improving blocks against single-move simulation
     - class-symmetric mixed evaluation (Cmixed.Eval vs Mixed.Eval)
     - FMNE closed forms (Cfully_mixed vs Fully_mixed)
     - LPT schedules (Cuniform_beliefs vs Uniform_beliefs)
     - block best-response convergence (Nash at both levels). *)

open Model
open Numeric

let check_q = Alcotest.testable Rational.pp Rational.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

(* Small pools make duplicate (weight, row) classes common, so the
   harness exercises real compression, not just k = n. *)
let random_kp rng ~n ~m =
  Game.kp
    ~weights:(Array.init n (fun _ -> Rational.of_int (1 + Prng.Rng.int rng 3)))
    ~capacities:(Array.init m (fun _ -> Rational.of_int (1 + Prng.Rng.int rng 5)))

let random_point rng ~n ~m =
  (* Point (certain) beliefs drawn from a pool of at most three
     (weight, capacity row) pairs: heavy duplication. *)
  let pool_size = 1 + Prng.Rng.int rng 3 in
  let pool_w = Array.init pool_size (fun _ -> Rational.of_int (1 + Prng.Rng.int rng 3)) in
  let pool_row =
    Array.init pool_size (fun _ ->
        Array.init m (fun _ -> Rational.of_int (1 + Prng.Rng.int rng 5)))
  in
  let pick = Array.init n (fun _ -> Prng.Rng.int rng pool_size) in
  Game.of_capacities
    ~weights:(Array.map (fun j -> pool_w.(j)) pick)
    (Array.map (fun j -> Array.copy pool_row.(j)) pick)

let random_heterogeneous rng ~n ~m =
  Experiments.Generators.game rng ~n ~m
    ~weights:(Experiments.Generators.Rational_weights 3)
    ~beliefs:(Experiments.Generators.Shared_space { states = 2; cap_bound = 4; grain = 3 })

let random_game rng ~kind ~n ~m =
  match kind mod 3 with
  | 0 -> random_kp rng ~n ~m
  | 1 -> random_point rng ~n ~m
  | _ -> random_heterogeneous rng ~n ~m

(* Class-block offsets of the expanded (class-major) layout. *)
let offsets cg =
  let k = Cgame.classes cg in
  let off = Array.make k 0 in
  for c = 1 to k - 1 do
    off.(c) <- off.(c - 1) + Cgame.count cg (c - 1)
  done;
  off

(* ------------------------------------------------------------------ *)
(* compress / expand round trips                                       *)

let check_bridge trial g =
  let n = Game.users g and m = Game.links g in
  let cg, class_of = Cgame.compress g in
  if Cgame.users cg <> n then Alcotest.failf "trial %d: user count drifted" trial;
  if Cgame.classes cg > n then Alcotest.failf "trial %d: more classes than users" trial;
  for i = 0 to n - 1 do
    let c = class_of.(i) in
    Alcotest.check check_q "class weight matches user" (Game.weight g i) (Cgame.weight cg c);
    for l = 0 to m - 1 do
      Alcotest.check check_q "class capacity matches user" (Game.capacity g i l)
        (Cgame.capacity cg c l)
    done
  done;
  (* expand is class-major: every user in class c's block carries class
     c's weight and row. *)
  let ex = Cgame.expand cg in
  if Game.users ex <> n then Alcotest.failf "trial %d: expand changed the user count" trial;
  let off = offsets cg in
  for c = 0 to Cgame.classes cg - 1 do
    for u = off.(c) to off.(c) + Cgame.count cg c - 1 do
      Alcotest.check check_q "expanded weight" (Cgame.weight cg c) (Game.weight ex u);
      for l = 0 to m - 1 do
        Alcotest.check check_q "expanded capacity" (Cgame.capacity cg c l) (Game.capacity ex u l)
      done
    done
  done;
  (* Compressing the expansion reproduces the class game exactly (the
     class-major layout makes first-seen order the class order). *)
  let cg', class_of' = Cgame.compress ex in
  if Cgame.classes cg' <> Cgame.classes cg then
    Alcotest.failf "trial %d: expand/compress changed the class count" trial;
  for c = 0 to Cgame.classes cg - 1 do
    if Cgame.count cg' c <> Cgame.count cg c then
      Alcotest.failf "trial %d: expand/compress changed a class count" trial;
    Alcotest.check check_q "expand/compress weight" (Cgame.weight cg c) (Cgame.weight cg' c)
  done;
  for c = 0 to Cgame.classes cg - 1 do
    for u = off.(c) to off.(c) + Cgame.count cg c - 1 do
      if class_of'.(u) <> c then Alcotest.failf "trial %d: class-major map drifted" trial
    done
  done;
  (cg, class_of)

(* ------------------------------------------------------------------ *)
(* Pure layer: Cview vs Pure/View through the bridge                   *)

let check_pure trial g (cg, class_of) p =
  let n = Game.users g and m = Game.links g in
  let x = Cgame.compress_profile cg ~class_of p in
  let v = Cview.of_profile cg x in
  let loads = Pure.loads g p in
  for l = 0 to m - 1 do
    Alcotest.check check_q "link load" loads.(l) (Cview.load v l)
  done;
  for i = 0 to n - 1 do
    Alcotest.check check_q "user latency" (Pure.latency g p i)
      (Cview.latency v class_of.(i) p.(i))
  done;
  if Pure.is_nash g p <> Cview.is_nash v then
    Alcotest.failf "trial %d: is_nash disagrees with Pure" trial;
  Alcotest.check check_q "SC1" (Pure.social_cost1 g p) (Cview.social_cost1 v);
  Alcotest.check check_q "SC2" (Pure.social_cost2 g p) (Cview.social_cost2 v);
  (* The first-defector step: the class move must be exactly the move
     the per-user policy makes on the expanded profile. *)
  let ex = Cgame.expand cg in
  let ex_p = Cgame.expand_profile cg x in
  let off = offsets cg in
  (match
     (Algo.Best_response.step ex ~policy:Algo.Best_response.First_defector ex_p,
      Cview.first_defector v)
   with
  | None, None -> ()
  | None, Some _ -> Alcotest.failf "trial %d: phantom class defector" trial
  | Some _, None -> Alcotest.failf "trial %d: class layer missed a defector" trial
  | Some stepped, Some (cls, src, dst) ->
    (* First user of class [cls] on [src]: users within a class are laid
       out link-ascending, so it sits right after the earlier links'
       blocks. *)
    let rank = ref 0 in
    for l = 0 to src - 1 do
      rank := !rank + x.(cls).(l)
    done;
    let u = off.(cls) + !rank in
    let expected = Array.copy ex_p in
    expected.(u) <- dst;
    if stepped <> expected then
      Alcotest.failf "trial %d: step mismatch (class %d, %d→%d, user %d)" trial cls src dst u);
  (* Nash agreement must also hold on the expanded pair. *)
  if Pure.is_nash ex ex_p <> Cview.is_nash v then
    Alcotest.failf "trial %d: is_nash disagrees on the expanded profile" trial

let test_pure_differential () =
  let rng = Prng.Rng.create 0xC1A5 in
  for trial = 1 to 10_000 do
    let n = 1 + Prng.Rng.int rng 6 and m = Prng.Rng.int_in rng 2 3 in
    let g = random_game rng ~kind:trial ~n ~m in
    let bridge = check_bridge trial g in
    let p = Array.init n (fun _ -> Prng.Rng.int rng m) in
    check_pure trial g bridge p
  done

(* A twelve-user game exercises the issue's n ≤ 12 bound explicitly. *)
let test_twelve_users () =
  let rng = Prng.Rng.create 0x7EA2 in
  for trial = 1 to 200 do
    let n = 12 and m = Prng.Rng.int_in rng 2 4 in
    let g = random_game rng ~kind:trial ~n ~m in
    let bridge = check_bridge trial g in
    let p = Array.init n (fun _ -> Prng.Rng.int rng m) in
    check_pure trial g bridge p
  done

(* ------------------------------------------------------------------ *)
(* Maximal improving blocks vs single-move simulation                  *)

let test_max_improving_block () =
  let rng = Prng.Rng.create 0xB10C in
  for trial = 1 to 2_000 do
    let n = Prng.Rng.int_in rng 2 9 and m = Prng.Rng.int_in rng 2 3 in
    let g = random_game rng ~kind:trial ~n ~m in
    let cg, class_of = Cgame.compress g in
    let p = Array.init n (fun _ -> Prng.Rng.int rng m) in
    let x = Cgame.compress_profile cg ~class_of p in
    let v = Cview.of_profile cg x in
    let cls = Prng.Rng.int rng (Cgame.classes cg) in
    let src = Prng.Rng.int rng m in
    let dst = (src + 1 + Prng.Rng.int rng (m - 1)) mod m in
    let t = Cview.max_improving_block v ~cls ~src ~dst in
    let avail = Cview.assigned v cls src in
    if t > avail then Alcotest.failf "trial %d: block exceeds available users" trial;
    (* Each of the t movers must improve in turn; the (t+1)-th must
       not.  [improves] evaluates the j-th comparison on the view state
       after j-1 single moves. *)
    let improves () =
      Rational.compare (Cview.latency_after_move v ~cls ~src dst) (Cview.latency v cls src) < 0
    in
    for j = 1 to t do
      if not (improves ()) then Alcotest.failf "trial %d: mover %d of %d does not improve" trial j t;
      Cview.move v ~cls ~src ~dst ~count:1
    done;
    if avail > t && improves () then
      Alcotest.failf "trial %d: block %d is not maximal (%d available)" trial t avail;
    for _ = 1 to t do
      Cview.undo v
    done;
    (* The view must be back at the start state after the undos. *)
    for l = 0 to m - 1 do
      Alcotest.check check_q "undo restores loads" (Pure.loads g p).(l) (Cview.load v l)
    done
  done

(* ------------------------------------------------------------------ *)
(* Mixed layer: Cmixed.Eval vs Mixed.Eval                              *)

let test_mixed_differential () =
  let rng = Prng.Rng.create 0x3ED1 in
  for trial = 1 to 2_000 do
    let n = 1 + Prng.Rng.int rng 6 and m = Prng.Rng.int_in rng 2 3 in
    let g = random_game rng ~kind:trial ~n ~m in
    let cg, _ = Cgame.compress g in
    let k = Cgame.classes cg in
    let q =
      Array.init k (fun _ ->
          if Prng.Rng.bool rng then Prng.Rng.positive_simplex rng ~dim:m ~grain:(m + 2)
          else Prng.Rng.simplex rng ~dim:m ~grain:(m + 1))
    in
    let ce = Cmixed.Eval.make cg q in
    let ex = Cgame.expand cg in
    let e = Mixed.Eval.make ex (Cmixed.expand cg q) in
    let off = offsets cg in
    for l = 0 to m - 1 do
      Alcotest.check check_q "expected traffic" (Mixed.Eval.expected_traffic e l)
        (Cmixed.Eval.expected_traffic ce l)
    done;
    for c = 0 to k - 1 do
      let u = off.(c) in
      for l = 0 to m - 1 do
        Alcotest.check check_q "latency on link" (Mixed.Eval.latency_on_link e u l)
          (Cmixed.Eval.latency_on_link ce c l)
      done;
      Alcotest.check check_q "min latency" (Mixed.Eval.min_latency e u)
        (Cmixed.Eval.min_latency ce c)
    done;
    Alcotest.check check_q "SC1" (Mixed.Eval.social_cost1 e) (Cmixed.Eval.social_cost1 ce);
    Alcotest.check check_q "SC2" (Mixed.Eval.social_cost2 e) (Cmixed.Eval.social_cost2 ce);
    if Mixed.Eval.is_nash e <> Cmixed.Eval.is_nash ce then
      Alcotest.failf "trial %d: mixed is_nash disagrees" trial
  done

(* ------------------------------------------------------------------ *)
(* FMNE closed forms: Cfully_mixed vs Fully_mixed                      *)

let test_fmne_differential () =
  let rng = Prng.Rng.create 0xF43E in
  let existed = ref 0 in
  for trial = 1 to 1_500 do
    let n = Prng.Rng.int_in rng 2 7 and m = Prng.Rng.int_in rng 2 3 in
    let g = random_game rng ~kind:trial ~n ~m in
    let cg, _ = Cgame.compress g in
    let ex = Cgame.expand cg in
    let off = offsets cg in
    let class_cand = Algo.Cfully_mixed.candidate cg in
    let user_cand = Algo.Fully_mixed.candidate ex in
    for c = 0 to Cgame.classes cg - 1 do
      Alcotest.check check_q "equilibrium latency"
        (Algo.Fully_mixed.equilibrium_latency ex off.(c))
        (Algo.Cfully_mixed.equilibrium_latency cg c);
      for l = 0 to m - 1 do
        Alcotest.check check_q "candidate row" user_cand.(off.(c)).(l) class_cand.(c).(l)
      done
    done;
    for l = 0 to m - 1 do
      Alcotest.check check_q "FMNE expected traffic"
        (Algo.Fully_mixed.expected_traffic ex l)
        (Algo.Cfully_mixed.expected_traffic cg l)
    done;
    let class_some = Algo.Cfully_mixed.exists cg in
    if class_some <> Algo.Fully_mixed.exists ex then
      Alcotest.failf "trial %d: FMNE existence disagrees" trial;
    (match Algo.Cfully_mixed.compute cg with
    | None -> ()
    | Some p ->
      incr existed;
      if not (Cmixed.is_nash cg p) then
        Alcotest.failf "trial %d: class FMNE fails the class Nash predicate" trial)
  done;
  if !existed = 0 then Alcotest.fail "no FMNE instance was ever exercised"

(* ------------------------------------------------------------------ *)
(* LPT: Cuniform_beliefs vs Uniform_beliefs                            *)

let test_uniform_differential () =
  let rng = Prng.Rng.create 0x14B7 in
  for trial = 1 to 2_000 do
    let n = 1 + Prng.Rng.int rng 8 and m = Prng.Rng.int_in rng 2 4 in
    (* Uniform beliefs: each user sees all links with one capacity
       value; pools keep classes fat. *)
    let g =
      Game.of_capacities
        ~weights:(Array.init n (fun _ -> Rational.of_int (1 + Prng.Rng.int rng 3)))
        (Array.init n (fun _ ->
             let c = Rational.of_int (1 + Prng.Rng.int rng 3) in
             Array.make m c))
    in
    let cg, _ = Cgame.compress g in
    let ex = Cgame.expand cg in
    let off = offsets cg in
    let initial =
      if Prng.Rng.bool rng then None
      else Some (Array.init m (fun _ -> Rational.of_ints (Prng.Rng.int rng 5) 2))
    in
    let x = Algo.Cuniform_beliefs.solve ?initial cg in
    let sigma = Algo.Uniform_beliefs.solve ?initial ex in
    (* Fold the expanded schedule back into class counts. *)
    for c = 0 to Cgame.classes cg - 1 do
      let counts = Array.make m 0 in
      for u = off.(c) to off.(c) + Cgame.count cg c - 1 do
        counts.(sigma.(u)) <- counts.(sigma.(u)) + 1
      done;
      if counts <> x.(c) then
        Alcotest.failf "trial %d: LPT class %d schedules disagree" trial c
    done;
    (* LPT on uniform beliefs is a Nash equilibrium (Theorem 3.6). *)
    let v = Cview.of_profile cg ?initial x in
    if not (Cview.is_nash v) then Alcotest.failf "trial %d: class LPT is not Nash" trial
  done

(* ------------------------------------------------------------------ *)
(* Block best-response dynamics                                        *)

let test_cbr_convergence () =
  let rng = Prng.Rng.create 0xCB12 in
  let converged = ref 0 in
  for trial = 1 to 1_500 do
    let n = 1 + Prng.Rng.int rng 8 and m = Prng.Rng.int_in rng 2 3 in
    let g = random_game rng ~kind:trial ~n ~m in
    let cg, class_of = Cgame.compress g in
    let p = Array.init n (fun _ -> Prng.Rng.int rng m) in
    let x = Cgame.compress_profile cg ~class_of p in
    let o = Algo.Cbr.converge ~max_steps:10_000 cg x in
    if o.converged then begin
      incr converged;
      let v = Cview.of_profile cg o.profile in
      if not (Cview.is_nash v) then
        Alcotest.failf "trial %d: converged to a non-equilibrium" trial;
      let ex = Cgame.expand cg in
      if not (Pure.is_nash ex (Cgame.expand_profile cg o.profile)) then
        Alcotest.failf "trial %d: class equilibrium is not a per-user equilibrium" trial;
      if o.users_moved < o.steps then
        Alcotest.failf "trial %d: %d steps moved only %d users" trial o.steps o.users_moved
    end
  done;
  if !converged < 1_000 then
    Alcotest.failf "block dynamics converged on only %d of 1500 instances" !converged

(* The proportional start is a valid profile and Csymmetric solves
   equal-weight instances end to end. *)
let test_csymmetric () =
  let rng = Prng.Rng.create 0x5E77 in
  for trial = 1 to 500 do
    let n = Prng.Rng.int_in rng 2 9 and m = Prng.Rng.int_in rng 2 3 in
    (* Equal weights; capacity rows proportional to a common base so a
       weighted potential exists and convergence is guaranteed. *)
    let base = Array.init m (fun _ -> Rational.of_int (1 + Prng.Rng.int rng 4)) in
    let g =
      Game.of_capacities
        ~weights:(Array.make n Rational.one)
        (Array.init n (fun _ ->
             let alpha = Rational.of_int (1 + Prng.Rng.int rng 3) in
             Array.map (Rational.mul alpha) base))
    in
    let cg, _ = Cgame.compress g in
    let start = Algo.Cbr.proportional_start cg in
    Cgame.validate cg start;
    let x = Algo.Csymmetric.solve cg in
    let v = Cview.of_profile cg x in
    if not (Cview.is_nash v) then Alcotest.failf "trial %d: Csymmetric output is not Nash" trial
  done

let test_ownership_guard () =
  (* Cview mutators carry the same SELFISH_OWNERSHIP guard as View;
     forge the owner to pin the Cview-specific failure message. *)
  let module O = Parallel.Ownership in
  let saved = !O.enabled in
  O.enabled := true;
  Fun.protect
    ~finally:(fun () -> O.enabled := saved)
    (fun () ->
      let g =
        Game.kp
          ~weights:[| Rational.one; Rational.one; Rational.of_int 2 |]
          ~capacities:[| Rational.one; Rational.of_int 2 |]
      in
      let cg, _ = Cgame.compress g in
      let v = Cview.of_profile cg (Algo.Cbr.proportional_start cg) in
      Alcotest.(check int) "owner is the creating domain" (O.self_id ()) (Cview.owner v);
      (* Same-domain recorded no-op move passes. *)
      Cview.move v ~cls:0 ~src:0 ~dst:0 ~count:0;
      let expected =
        O.Violation
          (Printf.sprintf
             "SELFISH_OWNERSHIP: Cview cursor created on domain 777 mutated from domain %d"
             (O.self_id ()))
      in
      Cview.unsafe_set_owner v 777;
      Alcotest.check_raises "foreign-domain move trips the guard" expected (fun () ->
          Cview.move v ~cls:0 ~src:0 ~dst:0 ~count:0);
      Alcotest.check_raises "foreign-domain undo trips the guard" expected (fun () ->
          Cview.undo v);
      Cview.unsafe_set_owner v (O.self_id ());
      Cview.undo v;
      Alcotest.(check int) "history balanced after guarded attempts" 0 (Cview.depth v))

let () =
  Alcotest.run "cgame"
    [
      ( "bridge+pure",
        [
          Alcotest.test_case "10k-game differential vs Pure/View" `Slow test_pure_differential;
          Alcotest.test_case "twelve-user games" `Quick test_twelve_users;
          Alcotest.test_case "maximal blocks vs single-move simulation" `Quick
            test_max_improving_block;
        ] );
      ( "mixed",
        [
          Alcotest.test_case "2k-game differential vs Mixed.Eval" `Slow test_mixed_differential;
          Alcotest.test_case "FMNE closed forms vs Fully_mixed" `Slow test_fmne_differential;
        ] );
      ( "algo",
        [
          Alcotest.test_case "LPT vs Uniform_beliefs" `Slow test_uniform_differential;
          Alcotest.test_case "block best-response convergence" `Slow test_cbr_convergence;
          Alcotest.test_case "Csymmetric end to end" `Quick test_csymmetric;
        ] );
      ( "ownership",
        [ Alcotest.test_case "sanitizer guards Cview mutators" `Quick test_ownership_guard ] );
    ]
