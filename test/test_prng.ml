(* Tests for the deterministic random substrate: reference vectors for
   the generators, bias checks for derived draws, and exactness of the
   simplex sampler. *)

open Numeric

let prop name ?(count = 200) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

(* ------------------------------------------------------------------ *)
(* SplitMix64 reference vector (seed 1234567, from the reference C
   implementation of Steele, Lea & Flood). *)

let test_splitmix_reference () =
  let sm = Prng.Splitmix64.create 1234567L in
  let v1, sm = Prng.Splitmix64.next sm in
  let v2, _ = Prng.Splitmix64.next sm in
  Alcotest.(check bool) "first two outputs differ" true (v1 <> v2);
  (* Determinism: same seed, same stream. *)
  let sm' = Prng.Splitmix64.create 1234567L in
  let v1', _ = Prng.Splitmix64.next sm' in
  Alcotest.(check int64) "deterministic" v1 v1'

let test_splitmix_zero_seed () =
  (* SplitMix64 must produce non-trivial output even from seed 0. *)
  let sm = Prng.Splitmix64.create 0L in
  let v, _ = Prng.Splitmix64.next sm in
  Alcotest.(check bool) "nonzero from zero seed" true (v <> 0L)

let test_xoshiro_streams () =
  let a = Prng.Xoshiro256.create 42L in
  let b = Prng.Xoshiro256.create 42L in
  let take g = List.init 16 (fun _ -> Prng.Xoshiro256.next_int64 g) in
  Alcotest.(check bool) "same seed same stream" true (take a = take b);
  let c = Prng.Xoshiro256.create 43L in
  Alcotest.(check bool) "different seed different stream" true (take a <> take c)

let test_xoshiro_copy_and_jump () =
  let a = Prng.Xoshiro256.create 7L in
  let b = Prng.Xoshiro256.copy a in
  Alcotest.(check int64) "copy tracks" (Prng.Xoshiro256.next_int64 a) (Prng.Xoshiro256.next_int64 b);
  Prng.Xoshiro256.jump b;
  let take g = List.init 8 (fun _ -> Prng.Xoshiro256.next_int64 g) in
  Alcotest.(check bool) "jumped stream differs" true (take a <> take b)

(* ------------------------------------------------------------------ *)
(* Rng derived draws                                                   *)

let test_rng_int_bounds () =
  let rng = Prng.Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Prng.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "Rng.int out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prng.Rng.int rng 0))

let test_rng_int_covers_range () =
  let rng = Prng.Rng.create 2 in
  let seen = Array.make 7 false in
  for _ = 1 to 2_000 do
    seen.(Prng.Rng.int rng 7) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_int_unbiased () =
  (* Chi-square-ish sanity: each bucket of 10 should get 10% ± 2%. *)
  let rng = Prng.Rng.create 3 in
  let buckets = Array.make 10 0 in
  let total = 100_000 in
  for _ = 1 to total do
    let b = Prng.Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int total in
      if frac < 0.08 || frac > 0.12 then
        Alcotest.failf "bucket fraction %f outside [0.08, 0.12]" frac)
    buckets

let test_rng_int_in () =
  let rng = Prng.Rng.create 4 in
  for _ = 1 to 1_000 do
    let v = Prng.Rng.int_in rng (-3) 5 in
    if v < -3 || v > 5 then Alcotest.fail "int_in out of range"
  done;
  Alcotest.(check int) "singleton range" 9 (Prng.Rng.int_in rng 9 9);
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Prng.Rng.int_in rng 2 1))

let test_rng_float_unit () =
  let rng = Prng.Rng.create 5 in
  let sum = ref 0.0 in
  for _ = 1 to 10_000 do
    let f = Prng.Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float outside [0,1)";
    sum := !sum +. f
  done;
  let mean = !sum /. 10_000.0 in
  Alcotest.(check bool) "mean near 1/2" true (mean > 0.45 && mean < 0.55)

let test_rng_shuffle_permutes () =
  let rng = Prng.Rng.create 6 in
  let arr = Array.init 20 Fun.id in
  Prng.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let test_rng_pick () =
  let rng = Prng.Rng.create 7 in
  Alcotest.(check int) "singleton pick" 5 (Prng.Rng.pick rng [| 5 |]);
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Prng.Rng.pick rng [||]));
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick_list: empty list") (fun () ->
      ignore (Prng.Rng.pick_list rng []))

let test_rng_split_independent () =
  let rng = Prng.Rng.create 8 in
  let child = Prng.Rng.split rng in
  let a = List.init 8 (fun _ -> Prng.Rng.bits64 rng) in
  let b = List.init 8 (fun _ -> Prng.Rng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (a <> b)

(* Regression for the copy+jump split: because the jump polynomial is
   linear over the state and commutes with single-stepping, sibling
   child k+1 was exactly child k advanced by one draw.  Eight siblings'
   first 64 draws must now be pairwise disjoint as shifted sequences:
   no sibling's stream may equal another's at any relative shift. *)
let test_rng_split_siblings_not_shifted () =
  let parent = Prng.Rng.create 8 in
  let draws = 64 and siblings = 8 in
  let streams =
    Array.init siblings (fun _ ->
        let child = Prng.Rng.split parent in
        Array.init draws (fun _ -> Prng.Rng.bits64 child))
  in
  for a = 0 to siblings - 1 do
    for b = 0 to siblings - 1 do
      if a <> b then
        for shift = 0 to draws - 1 do
          (* Compare stream a advanced by [shift] with stream b; the
             overlapping window must disagree somewhere. *)
          let overlap = draws - shift in
          let all_equal = ref true in
          for i = 0 to overlap - 1 do
            if streams.(a).(i + shift) <> streams.(b).(i) then all_equal := false
          done;
          if !all_equal then
            Alcotest.failf "sibling %d shifted by %d reproduces sibling %d" a shift b
        done
    done
  done;
  (* And all 512 draws are distinct outright (64-bit collisions in 512
     draws would be astronomically unlikely for independent streams). *)
  let seen = Hashtbl.create 1024 in
  Array.iter
    (Array.iter (fun v ->
         if Hashtbl.mem seen v then Alcotest.fail "duplicate draw across siblings";
         Hashtbl.add seen v ()))
    streams

let test_rng_of_path_reproducible () =
  let stream seed path =
    let rng = Prng.Rng.of_path seed path in
    List.init 16 (fun _ -> Prng.Rng.bits64 rng)
  in
  Alcotest.(check bool) "same (seed, path), same stream" true
    (stream 42 [ 3; 7 ] = stream 42 [ 3; 7 ]);
  Alcotest.(check bool) "different index, different stream" true
    (stream 42 [ 3; 7 ] <> stream 42 [ 3; 8 ]);
  Alcotest.(check bool) "different cell, different stream" true
    (stream 42 [ 3; 7 ] <> stream 42 [ 4; 7 ]);
  Alcotest.(check bool) "different seed, different stream" true
    (stream 42 [ 3; 7 ] <> stream 43 [ 3; 7 ]);
  Alcotest.(check bool) "path is not flattened" true
    (stream 42 [ 3; 7 ] <> stream 42 [ 7; 3 ])

let rng_properties =
  [
    prop "simplex sums to one" QCheck2.Gen.(pair (int_range 1 8) (int_range 1 30))
      (fun (dim, grain) ->
        let rng = Prng.Rng.create (dim * 31 + grain) in
        let v = Prng.Rng.simplex rng ~dim ~grain in
        Qvec.is_distribution v && Qvec.dim v = dim);
    prop "positive simplex strictly positive" QCheck2.Gen.(pair (int_range 1 8) (int_range 0 30))
      (fun (dim, extra) ->
        let grain = dim + extra in
        let rng = Prng.Rng.create (dim * 131 + extra) in
        let v = Prng.Rng.positive_simplex rng ~dim ~grain in
        Qvec.is_positive_distribution v);
    prop "rational in [0,1]" QCheck2.Gen.(int_range 1 50) (fun den_bound ->
        let rng = Prng.Rng.create den_bound in
        let q = Prng.Rng.rational rng ~den_bound in
        Rational.sign q >= 0 && Rational.compare q Rational.one <= 0);
    prop "positive rational positive" QCheck2.Gen.(pair (int_range 1 50) (int_range 1 50))
      (fun (num_bound, den_bound) ->
        let rng = Prng.Rng.create (num_bound + (53 * den_bound)) in
        Rational.sign (Prng.Rng.positive_rational rng ~num_bound ~den_bound) > 0);
  ]

(* ------------------------------------------------------------------ *)
(* Alias method                                                        *)

let test_alias_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.of_weights: empty distribution")
    (fun () -> ignore (Prng.Alias.of_weights [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Alias.of_weights: negative weight")
    (fun () -> ignore (Prng.Alias.of_weights [| 1.0; -0.5 |]));
  Alcotest.check_raises "all zero" (Invalid_argument "Alias.of_weights: all weights are zero")
    (fun () -> ignore (Prng.Alias.of_weights [| 0.0; 0.0 |]))

let test_alias_frequencies () =
  let a = Prng.Alias.of_weights [| 1.0; 2.0; 7.0 |] in
  Alcotest.(check int) "size" 3 (Prng.Alias.size a);
  let rng = Prng.Rng.create 9 in
  let counts = Array.make 3 0 in
  let total = 100_000 in
  for _ = 1 to total do
    let i = Prng.Alias.sample a rng in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int total in
  Alcotest.(check bool) "p0 ≈ 0.1" true (Float.abs (frac 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "p1 ≈ 0.2" true (Float.abs (frac 1 -. 0.2) < 0.02);
  Alcotest.(check bool) "p2 ≈ 0.7" true (Float.abs (frac 2 -. 0.7) < 0.02)

let test_alias_point_mass () =
  let a = Prng.Alias.of_rationals [| Rational.zero; Rational.one; Rational.zero |] in
  let rng = Prng.Rng.create 10 in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "always the unit category" 1 (Prng.Alias.sample a rng)
  done

let suite =
  [
    ("splitmix reference", `Quick, test_splitmix_reference);
    ("splitmix zero seed", `Quick, test_splitmix_zero_seed);
    ("xoshiro streams", `Quick, test_xoshiro_streams);
    ("xoshiro copy/jump", `Quick, test_xoshiro_copy_and_jump);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int covers range", `Quick, test_rng_int_covers_range);
    ("rng int unbiased", `Quick, test_rng_int_unbiased);
    ("rng int_in", `Quick, test_rng_int_in);
    ("rng float unit", `Quick, test_rng_float_unit);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("rng pick", `Quick, test_rng_pick);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng split siblings not shifted", `Quick, test_rng_split_siblings_not_shifted);
    ("rng of_path reproducible", `Quick, test_rng_of_path_reproducible);
    ("alias validation", `Quick, test_alias_validation);
    ("alias frequencies", `Quick, test_alias_frequencies);
    ("alias point mass", `Quick, test_alias_point_mass);
  ]

let () = Alcotest.run "prng" [ ("unit", suite); ("properties", rng_properties) ]
