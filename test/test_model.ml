(* Tests for the game model: states, beliefs, effective capacities,
   pure/mixed latencies, the exact Nash predicates, social costs, the
   exhaustive optimum, and the bound values of Theorems 4.13/4.14. *)

open Model
open Numeric

let q = Rational.of_ints
let qi = Rational.of_int
let check_q = Alcotest.testable Rational.pp Rational.equal

let prop name ?(count = 150) gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen law)

(* A two-state space over two links used by several fixtures:
   φ1 = ⟨2, 1⟩, φ2 = ⟨1, 3⟩. *)
let space2 =
  State.space [ State.make [| qi 2; qi 1 |]; State.make [| qi 1; qi 3 |] ]

(* ------------------------------------------------------------------ *)
(* State                                                               *)

let test_state_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "State.make: no links") (fun () ->
      ignore (State.make [||]));
  Alcotest.check_raises "non-positive" (Invalid_argument "State.make: capacities must be positive")
    (fun () -> ignore (State.make [| qi 1; Rational.zero |]));
  Alcotest.check_raises "empty space" (Invalid_argument "State.space: empty state space")
    (fun () -> ignore (State.space []));
  Alcotest.check_raises "ragged space"
    (Invalid_argument "State.space: inconsistent link counts") (fun () ->
      ignore (State.space [ State.make [| qi 1 |]; State.make [| qi 1; qi 2 |] ]))

let test_state_accessors () =
  let s = State.of_ints [| 2; 5 |] in
  Alcotest.(check int) "links" 2 (State.links s);
  Alcotest.check check_q "capacity" (qi 5) (State.capacity s 1);
  Alcotest.check_raises "out of range" (Invalid_argument "State.capacity: link out of range")
    (fun () -> ignore (State.capacity s 2));
  Alcotest.(check int) "space size" 2 (State.space_size space2);
  Alcotest.(check int) "space links" 2 (State.space_links space2)

(* ------------------------------------------------------------------ *)
(* Belief                                                              *)

let test_belief_validation () =
  Alcotest.check_raises "wrong dimension"
    (Invalid_argument "Belief.make: distribution dimension differs from state-space size")
    (fun () -> ignore (Belief.make space2 [| Rational.one |]));
  Alcotest.check_raises "not a distribution"
    (Invalid_argument "Belief.make: probabilities must be non-negative and sum to 1") (fun () ->
      ignore (Belief.make space2 [| q 1 2; q 1 3 |]));
  Alcotest.check_raises "point out of range"
    (Invalid_argument "Belief.point: state index out of range") (fun () ->
      ignore (Belief.point space2 2))

let test_belief_condition_impossible_event () =
  (* The exact message is part of the API: conditioning on an event the
     prior rules out has no posterior. *)
  let b = Belief.point space2 0 in
  Alcotest.check_raises "prior-null event"
    (Invalid_argument "Belief.condition: event has prior probability zero") (fun () ->
      ignore (Belief.condition b ~event:(fun k -> k = 1)));
  Alcotest.check_raises "empty event"
    (Invalid_argument "Belief.condition: event has prior probability zero") (fun () ->
      ignore (Belief.condition b ~event:(fun _ -> false)))

let test_effective_capacity_harmonic () =
  (* b = (1/2, 1/2): 1/c^0 = (1/2)(1/2) + (1/2)(1/1) = 3/4, so c^0 = 4/3;
     1/c^1 = (1/2)(1/1) + (1/2)(1/3) = 2/3, so c^1 = 3/2. *)
  let b = Belief.uniform space2 in
  Alcotest.check check_q "link 0" (q 4 3) (Belief.effective_capacity b 0);
  Alcotest.check check_q "link 1" (q 3 2) (Belief.effective_capacity b 1);
  Alcotest.check check_q "expected inverse" (q 3 4) (Belief.expected_inverse_capacity b 0)

let test_point_belief_capacity () =
  let b = Belief.point space2 1 in
  Alcotest.check check_q "link 0 of φ2" (qi 1) (Belief.effective_capacity b 0);
  Alcotest.check check_q "link 1 of φ2" (qi 3) (Belief.effective_capacity b 1)

let test_uniform_link_view_predicate () =
  let flat = Belief.certain (State.make [| qi 5; qi 5 |]) in
  Alcotest.(check bool) "flat is uniform" true (Belief.is_uniform_link_view flat);
  Alcotest.(check bool) "space2 point is not" false
    (Belief.is_uniform_link_view (Belief.point space2 0))

(* ------------------------------------------------------------------ *)
(* Game                                                                *)

let game_fixture () =
  (* Two users: user 0 believes φ1 surely, user 1 believes uniformly. *)
  Game.make
    ~weights:[| qi 3; qi 2 |]
    ~beliefs:[| Belief.point space2 0; Belief.uniform space2 |]

let test_game_validation () =
  Alcotest.check_raises "no users" (Invalid_argument "Game.make: no users") (fun () ->
      ignore (Game.make ~weights:[||] ~beliefs:[||]));
  Alcotest.check_raises "bad weight" (Invalid_argument "Game.make: traffics must be positive")
    (fun () ->
      ignore (Game.make ~weights:[| Rational.zero |] ~beliefs:[| Belief.point space2 0 |]));
  Alcotest.check_raises "belief count"
    (Invalid_argument "Game.make: one belief per user required") (fun () ->
      ignore (Game.make ~weights:[| qi 1; qi 1 |] ~beliefs:[| Belief.point space2 0 |]));
  Alcotest.check_raises "single link" (Invalid_argument "Game.make: at least two links required")
    (fun () ->
      ignore
        (Game.make ~weights:[| qi 1 |] ~beliefs:[| Belief.certain (State.make [| qi 1 |]) |]))

let test_game_accessors () =
  let g = game_fixture () in
  Alcotest.(check int) "users" 2 (Game.users g);
  Alcotest.(check int) "links" 2 (Game.links g);
  Alcotest.check check_q "weight" (qi 3) (Game.weight g 0);
  Alcotest.check check_q "total" (qi 5) (Game.total_traffic g);
  Alcotest.check check_q "cap user0 link0" (qi 2) (Game.capacity g 0 0);
  Alcotest.check check_q "cap user1 link0" (q 4 3) (Game.capacity g 1 0);
  Alcotest.(check bool) "not kp" false (Game.is_kp g);
  Alcotest.(check bool) "not uniform" false (Game.has_uniform_beliefs g);
  Alcotest.(check bool) "not symmetric" false (Game.is_symmetric g)

let test_game_predicates () =
  let kp = Game.kp ~weights:[| qi 1; qi 2 |] ~capacities:[| qi 1; qi 2 |] in
  Alcotest.(check bool) "kp is kp" true (Game.is_kp kp);
  let flat = Game.of_capacities ~weights:[| qi 1; qi 1 |] [| [| qi 2; qi 2 |]; [| qi 5; qi 5 |] |] in
  Alcotest.(check bool) "uniform beliefs" true (Game.has_uniform_beliefs flat);
  Alcotest.(check bool) "symmetric" true (Game.is_symmetric flat);
  Alcotest.(check bool) "flat not kp" false (Game.is_kp flat)

let test_game_restrict () =
  let g = game_fixture () in
  let g' = Game.restrict g ~drop:0 in
  Alcotest.(check int) "one user left" 1 (Game.users g');
  Alcotest.check check_q "kept weight" (qi 2) (Game.weight g' 0);
  Alcotest.check check_q "kept capacity" (q 4 3) (Game.capacity g' 0 0);
  Alcotest.check_raises "cannot drop last" (Invalid_argument "Game.restrict: cannot drop the last user")
    (fun () -> ignore (Game.restrict g' ~drop:0))

let test_of_capacities_matches_beliefs () =
  (* The reduced form must agree with the generative form. *)
  let g = game_fixture () in
  let reduced = Game.of_capacities ~weights:(Game.weights g) (Game.capacity_matrix g) in
  for i = 0 to 1 do
    for l = 0 to 1 do
      Alcotest.check check_q "capacity agrees" (Game.capacity g i l) (Game.capacity reduced i l)
    done
  done

(* ------------------------------------------------------------------ *)
(* Pure profiles                                                       *)

let test_pure_latency_hand () =
  let g = game_fixture () in
  (* σ = ⟨0, 0⟩: load on link 0 is 5.  user0: 5/2; user1: 5/(4/3) = 15/4. *)
  let sigma = [| 0; 0 |] in
  Alcotest.check check_q "user0" (q 5 2) (Pure.latency g sigma 0);
  Alcotest.check check_q "user1" (q 15 4) (Pure.latency g sigma 1);
  (* σ = ⟨0, 1⟩: user0 alone on 0: 3/2; user1 alone on 1: 2/(3/2) = 4/3. *)
  let sigma = [| 0; 1 |] in
  Alcotest.check check_q "split user0" (q 3 2) (Pure.latency g sigma 0);
  Alcotest.check check_q "split user1" (q 4 3) (Pure.latency g sigma 1)

let test_pure_latency_on_link () =
  let g = game_fixture () in
  let sigma = [| 0; 1 |] in
  (* user0 moving to link 1 would see (2 + 3)/1 = 5. *)
  Alcotest.check check_q "hypothetical move" (qi 5) (Pure.latency_on_link g sigma 0 1);
  Alcotest.check check_q "current link unchanged" (q 3 2) (Pure.latency_on_link g sigma 0 0)

let test_pure_nash_hand () =
  let g = game_fixture () in
  (* ⟨0, 1⟩: user0 has 3/2 vs moving 5 — stays; user1 has 4/3 vs moving
     (2+3)/(4/3) = 15/4 — stays.  It is a NE. *)
  Alcotest.(check bool) "split is NE" true (Pure.is_nash g [| 0; 1 |]);
  (* ⟨0, 0⟩: user1 has 15/4 vs moving 2/(3/2) = 4/3 — defects. *)
  Alcotest.(check bool) "pile is not NE" false (Pure.is_nash g [| 0; 0 |]);
  Alcotest.(check (list int)) "defector list" [ 1 ] (Pure.defectors g [| 0; 0 |])

let test_pure_best_response () =
  let g = game_fixture () in
  let link, latency = Pure.best_response g [| 0; 0 |] 1 in
  Alcotest.(check int) "target" 1 link;
  Alcotest.check check_q "value" (q 4 3) latency;
  Alcotest.(check (list int)) "improving moves" [ 1 ] (Pure.improving_moves g [| 0; 0 |] 1)

let test_pure_initial_traffic () =
  let g = game_fixture () in
  (* Heavy initial traffic on link 0 pushes user0 off it. *)
  let initial = [| qi 10; Rational.zero |] in
  Alcotest.(check bool) "former NE broken" false (Pure.is_nash g ~initial [| 0; 1 |]);
  let loads = Pure.loads g ~initial [| 0; 1 |] in
  Alcotest.check check_q "load includes initial" (qi 13) loads.(0);
  Alcotest.check_raises "negative initial"
    (Invalid_argument "Pure.validate: negative initial traffic") (fun () ->
      Pure.validate g ~initial:[| qi (-1); qi 0 |] [| 0; 1 |])

let test_pure_validate () =
  let g = game_fixture () in
  Alcotest.check_raises "length" (Invalid_argument "Pure.validate: profile length differs from user count")
    (fun () -> Pure.validate g [| 0 |]);
  Alcotest.check_raises "range" (Invalid_argument "Pure.validate: link out of range") (fun () ->
      Pure.validate g [| 0; 2 |])

let test_pure_social_costs () =
  let g = game_fixture () in
  let sigma = [| 0; 1 |] in
  Alcotest.check check_q "SC1 sums" (Rational.add (q 3 2) (q 4 3)) (Pure.social_cost1 g sigma);
  Alcotest.check check_q "SC2 maxes" (q 3 2) (Pure.social_cost2 g sigma)

(* ------------------------------------------------------------------ *)
(* Mixed profiles                                                      *)

let test_mixed_validation () =
  let g = game_fixture () in
  Alcotest.check_raises "row count" (Invalid_argument "Mixed.validate: one distribution per user required")
    (fun () -> Mixed.validate g [| [| Rational.one; Rational.zero |] |]);
  Alcotest.check_raises "not distribution"
    (Invalid_argument "Mixed.validate: rows must be probability distributions") (fun () ->
      Mixed.validate g [| [| q 1 2; q 1 3 |]; [| Rational.one; Rational.zero |] |])

let test_mixed_of_pure_consistency () =
  let g = game_fixture () in
  let sigma = [| 0; 1 |] in
  let p = Mixed.of_pure g sigma in
  Mixed.validate g p;
  (* Expected traffic equals the pure loads. *)
  Alcotest.check check_q "W^0" (qi 3) (Mixed.expected_traffic g p 0);
  Alcotest.check check_q "W^1" (qi 2) (Mixed.expected_traffic g p 1);
  (* Latency of each user on its own link equals the pure latency. *)
  Alcotest.check check_q "latency user0" (Pure.latency g sigma 0) (Mixed.latency_on_link g p 0 0);
  Alcotest.check check_q "latency user1" (Pure.latency g sigma 1) (Mixed.latency_on_link g p 1 1);
  (* A pure NE embeds as a mixed NE. *)
  Alcotest.(check bool) "NE preserved" true (Mixed.is_nash g p);
  Alcotest.(check bool) "non-NE preserved" false (Mixed.is_nash g (Mixed.of_pure g [| 0; 0 |]))

let test_mixed_support_and_fully_mixed () =
  let g = game_fixture () in
  let p = [| [| q 1 2; q 1 2 |]; [| Rational.one; Rational.zero |] |] in
  Alcotest.(check (list int)) "support user0" [ 0; 1 ] (Mixed.support p 0);
  Alcotest.(check (list int)) "support user1" [ 0 ] (Mixed.support p 1);
  Alcotest.(check bool) "not fully mixed" false (Mixed.is_fully_mixed p);
  Alcotest.(check bool) "uniform fully mixed" true (Mixed.is_fully_mixed (Mixed.uniform g))

let test_mixed_latency_formula () =
  let g = game_fixture () in
  let p = Mixed.uniform g in
  (* user0 on link0: ((1 - 1/2)·3 + W^0)/c with W^0 = 3/2 + 1 = 5/2:
     (3/2 + 5/2)/2 = 2. *)
  Alcotest.check check_q "W^0" (q 5 2) (Mixed.expected_traffic g p 0);
  Alcotest.check check_q "λ^0_0" (qi 2) (Mixed.latency_on_link g p 0 0)

(* ------------------------------------------------------------------ *)
(* Social optimum and bounds                                           *)

let test_social_optimum () =
  let g = game_fixture () in
  (* Profiles: ⟨0,0⟩ SC1 = 5/2 + 15/4 = 25/4;  ⟨0,1⟩ 3/2 + 4/3 = 17/6;
     ⟨1,0⟩ 3/1 + 2/(4/3) = 3 + 3/2 = 9/2;  ⟨1,1⟩ 5/1 + 5/(3/2) = 25/3. *)
  let v1, p1 = Social.opt1 g in
  Alcotest.check check_q "OPT1 value" (q 17 6) v1;
  Alcotest.(check (array int)) "OPT1 profile" [| 0; 1 |] p1;
  let v2, p2 = Social.opt2 g in
  Alcotest.check check_q "OPT2 value" (q 3 2) v2;
  Alcotest.(check (array int)) "OPT2 profile" [| 0; 1 |] p2

let test_social_guard () =
  let g = game_fixture () in
  Alcotest.check_raises "limit" (Invalid_argument "Social.opt1: 2^2 pure profiles exceed the limit 3")
    (fun () -> ignore (Social.opt1 ~limit:3 g))

let test_profile_count () =
  let g = game_fixture () in
  Alcotest.(check (option int)) "2^2" (Some 4) (Social.profile_count g)

let test_ratios_at_least_one_at_opt () =
  let g = game_fixture () in
  let _, p = Social.opt1 g in
  Alcotest.check check_q "ratio1 of OPT is 1" Rational.one (Social.ratio1 g (Mixed.of_pure g p))

let test_bounds_values () =
  (* Uniform-view game: caps user0 = 2, user1 = 5 on both links. *)
  let g = Game.of_capacities ~weights:[| qi 1; qi 1 |] [| [| qi 2; qi 2 |]; [| qi 5; qi 5 |] |] in
  (* cmax/cmin · (m+n-1)/m = (5/2)·(3/2) = 15/4. *)
  Alcotest.check check_q "thm 4.13" (q 15 4) (Bounds.theorem_4_13 g);
  (* thm 4.14: cmax²/cmin · (m+n-1)/Σ_l min_i c^l_i = 25/2 · 3/4 = 75/8. *)
  Alcotest.check check_q "thm 4.14" (q 75 8) (Bounds.theorem_4_14 g);
  let nonuniform = game_fixture () in
  Alcotest.check_raises "4.13 requires hypothesis"
    (Invalid_argument "Bounds.theorem_4_13: game does not have uniform user beliefs") (fun () ->
      ignore (Bounds.theorem_4_13 nonuniform))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let game_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Prng.Rng.create seed in
        let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
        Experiments.Generators.game rng ~n ~m
          ~weights:(Experiments.Generators.Rational_weights 5)
          ~beliefs:(Experiments.Generators.Shared_space { states = 3; cap_bound = 5; grain = 4 }))
      (int_bound 1_000_000))

(* A rational in [0, 1] with a small denominator. *)
let unit_rational rng =
  let den = 1 + Prng.Rng.int rng 6 in
  q (Prng.Rng.int rng (den + 1)) den

let model_properties =
  [
    prop "mixture re-associates with the matching weights"
      QCheck2.Gen.(int_bound 1_000_000)
      (fun seed ->
        (* (1-v)·[(1-u)·a + u·b] + v·c is also a right-nested mixture:
           the outer weight becomes v' = 1 - (1-u)(1-v) and the inner
           one w' = v/v'.  Exact rationals make the two association
           orders literally equal, not just close. *)
        let rng = Prng.Rng.create seed in
        let dist () = Prng.Rng.positive_simplex rng ~dim:2 ~grain:5 in
        let a = Belief.make space2 (dist ())
        and b = Belief.make space2 (dist ())
        and c = Belief.make space2 (dist ()) in
        let u = unit_rational rng and v = unit_rational rng in
        let left = Belief.mixture (Belief.mixture a b ~weight:u) c ~weight:v in
        let v' =
          Rational.sub Rational.one
            (Rational.mul (Rational.sub Rational.one u) (Rational.sub Rational.one v))
        in
        if Rational.is_zero v' then true
        else
          let w' = Rational.div v v' in
          Belief.equal left (Belief.mixture a (Belief.mixture b c ~weight:w') ~weight:v'));
    prop "from_counts normalises to (count + s)/(total + K·s)"
      QCheck2.Gen.(int_bound 1_000_000)
      (fun seed ->
        let rng = Prng.Rng.create seed in
        let states = State.space_size space2 in
        let counts = Array.init states (fun _ -> Prng.Rng.int rng 7) in
        let smoothing =
          if Array.for_all (fun c -> c = 0) counts then Rational.one else unit_rational rng
        in
        (* Regenerate when both the counts and the smoothing vanish —
           that input is rejected (and pinned as such below). *)
        if Array.for_all (fun c -> c = 0) counts && Rational.is_zero smoothing then true
        else
          let b = Belief.from_counts space2 counts ~smoothing in
          let total =
            Rational.add
              (Rational.of_int (Array.fold_left ( + ) 0 counts))
              (Rational.mul (Rational.of_int states) smoothing)
          in
          Rational.equal (Rational.sum_array (Belief.probs b)) Rational.one
          && List.for_all
               (fun k ->
                 Rational.equal (Belief.prob b k)
                   (Rational.div (Rational.add (Rational.of_int counts.(k)) smoothing) total))
               (List.init states Fun.id));
    prop "expected latency factors through effective capacity" game_gen (fun g ->
        let rng = Prng.Rng.create (Game.users g) in
        let sigma = Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g)) in
        List.for_all
          (fun i ->
            Rational.equal (Pure.latency g sigma i) (Pure.expected_latency_via_states g sigma i))
          (List.init (Game.users g) Fun.id));
    prop "OPT1 is a lower bound for every profile's SC1" game_gen (fun g ->
        let opt, _ = Social.opt1 g in
        let ok = ref true in
        Social.iter_profiles g (fun p ->
            if Rational.compare (Pure.social_cost1 g p) opt < 0 then ok := false);
        !ok);
    prop "branch-and-bound optima equal the exhaustive optima" game_gen (fun g ->
        let v1, p1 = Social.opt1 g and v1', p1' = Social.opt1_bb g in
        let v2, p2 = Social.opt2 g and v2', p2' = Social.opt2_bb g in
        ignore (p1, p1', p2, p2');
        Rational.equal v1 v1' && Rational.equal v2 v2'
        && Rational.equal (Pure.social_cost1 g p1') v1
        && Rational.equal (Pure.social_cost2 g p2') v2);
    prop "OPT2 <= OPT1 (max of positives <= their sum)" game_gen (fun g ->
        let o1, _ = Social.opt1 g and o2, _ = Social.opt2 g in
        Rational.compare o2 o1 <= 0);
    prop "mixed embedding preserves the Nash property" game_gen (fun g ->
        let nes = Algo.Enumerate.pure_nash g in
        List.for_all (fun ne -> Mixed.is_nash g (Mixed.of_pure g ne)) nes);
    prop "expected traffics sum to the total traffic" game_gen (fun g ->
        let rng = Prng.Rng.create 99 in
        let p =
          Array.init (Game.users g) (fun _ ->
              Prng.Rng.positive_simplex rng ~dim:(Game.links g) ~grain:(Game.links g + 3))
        in
        Rational.equal
          (Rational.sum_array (Mixed.expected_traffics g p))
          (Game.total_traffic g));
    prop "uniform mixed profile is valid" game_gen (fun g ->
        Mixed.validate g (Mixed.uniform g);
        true);
    prop "coordination ratios are at least 1 at every pure NE" game_gen (fun g ->
        List.for_all
          (fun ne ->
            let mx = Mixed.of_pure g ne in
            Rational.compare (Social.ratio1 g mx) Rational.one >= 0
            && Rational.compare (Social.ratio2 g mx) Rational.one >= 0)
          (Algo.Enumerate.pure_nash g));
    prop "restrict preserves the kept users' data" game_gen (fun g ->
        Game.users g < 2
        ||
        let drop = Game.users g - 1 in
        let g' = Game.restrict g ~drop in
        List.for_all
          (fun i ->
            Rational.equal (Game.weight g i) (Game.weight g' i)
            && List.for_all
                 (fun l -> Rational.equal (Game.capacity g i l) (Game.capacity g' i l))
                 (List.init (Game.links g) Fun.id))
          (List.init (Game.users g - 1) Fun.id));
    prop "best_response attains the minimal post-move latency" game_gen (fun g ->
        let rng = Prng.Rng.create 7 in
        let p = Array.init (Game.users g) (fun _ -> Prng.Rng.int rng (Game.links g)) in
        List.for_all
          (fun i ->
            let _, best = Pure.best_response g p i in
            List.for_all
              (fun l -> Rational.compare best (Pure.latency_on_link g p i l) <= 0)
              (List.init (Game.links g) Fun.id))
          (List.init (Game.users g) Fun.id));
    prop "KP games have no better-response cycles (classical FIP control)"
      QCheck2.Gen.(int_bound 1_000_000)
      (fun seed ->
        (* With common capacities the sorted latency vector decreases
           lexicographically on every improvement move, so the belief
           model's cyclic witness is impossible here — a sanity anchor
           for the E6 search machinery. *)
        let rng = Prng.Rng.create seed in
        let n = Prng.Rng.int_in rng 2 4 and m = Prng.Rng.int_in rng 2 3 in
        let g =
          Experiments.Generators.game rng ~n ~m
            ~weights:(Experiments.Generators.Integer_weights 5)
            ~beliefs:(Experiments.Generators.Shared_point { cap_bound = 6 })
        in
        Algo.Game_graph.find_cycle g ~kind:Algo.Game_graph.Better_response = None);
  ]

let suite =
  [
    ("state validation", `Quick, test_state_validation);
    ("state accessors", `Quick, test_state_accessors);
    ("belief validation", `Quick, test_belief_validation);
    ("belief condition on impossible event", `Quick, test_belief_condition_impossible_event);
    ("effective capacity harmonic mean", `Quick, test_effective_capacity_harmonic);
    ("point belief capacity", `Quick, test_point_belief_capacity);
    ("uniform link view predicate", `Quick, test_uniform_link_view_predicate);
    ("game validation", `Quick, test_game_validation);
    ("game accessors", `Quick, test_game_accessors);
    ("game predicates", `Quick, test_game_predicates);
    ("game restrict", `Quick, test_game_restrict);
    ("reduced form agrees", `Quick, test_of_capacities_matches_beliefs);
    ("pure latency hand computed", `Quick, test_pure_latency_hand);
    ("pure latency on link", `Quick, test_pure_latency_on_link);
    ("pure nash hand computed", `Quick, test_pure_nash_hand);
    ("pure best response", `Quick, test_pure_best_response);
    ("pure initial traffic", `Quick, test_pure_initial_traffic);
    ("pure validate", `Quick, test_pure_validate);
    ("pure social costs", `Quick, test_pure_social_costs);
    ("mixed validation", `Quick, test_mixed_validation);
    ("mixed of_pure consistency", `Quick, test_mixed_of_pure_consistency);
    ("mixed support", `Quick, test_mixed_support_and_fully_mixed);
    ("mixed latency formula", `Quick, test_mixed_latency_formula);
    ("social optimum", `Quick, test_social_optimum);
    ("social guard", `Quick, test_social_guard);
    ("profile count", `Quick, test_profile_count);
    ("ratio at OPT", `Quick, test_ratios_at_least_one_at_opt);
    ("bound values", `Quick, test_bounds_values);
  ]

let () = Alcotest.run "model" [ ("unit", suite); ("properties", model_properties) ]
